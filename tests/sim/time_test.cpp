// Virtual-time arithmetic: Duration scaling must round half away from zero
// for both signs, matching Duration::us — the regression here was
// `Duration * double` adding +0.5 unconditionally, which dragged scaled
// negative durations toward zero (ns(-3) * 0.5 came out as -1, not -2).
#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace gdrshmem::sim {
namespace {

TEST(Duration, UsRoundsHalfAwayFromZero) {
  EXPECT_EQ(Duration::us(1.0005).count_ns(), 1001);
  EXPECT_EQ(Duration::us(-1.0005).count_ns(), -1001);
}

TEST(Duration, ScaleRoundsHalfAwayFromZero) {
  EXPECT_EQ((Duration::ns(3) * 0.5).count_ns(), 2);    // 1.5 -> 2
  EXPECT_EQ((Duration::ns(-3) * 0.5).count_ns(), -2);  // -1.5 -> -2 (was -1)
  EXPECT_EQ((Duration::ns(5) * -0.5).count_ns(), -3);  // -2.5 -> -3 (was -2)
  EXPECT_EQ((Duration::ns(-5) * 0.5).count_ns(), -3);
  EXPECT_EQ((Duration::ns(0) * 123.0).count_ns(), 0);
}

TEST(Duration, ScaleIsSignSymmetric) {
  for (std::int64_t ns : {1, 3, 7, 999, 123456789}) {
    for (double k : {0.1, 0.5, 1.5, 2.25, 1000.0}) {
      EXPECT_EQ((Duration::ns(-ns) * k).count_ns(),
                -(Duration::ns(ns) * k).count_ns())
          << "ns=" << ns << " k=" << k;
      EXPECT_EQ((Duration::ns(ns) * -k).count_ns(),
                (Duration::ns(-ns) * k).count_ns())
          << "ns=" << ns << " k=" << k;
    }
  }
}

TEST(Duration, ScaleMatchesUsConversion) {
  // Scaling a microsecond by k must agree with constructing k microseconds.
  for (double k : {0.0015, 2.7135, -0.0015, -2.7135}) {
    EXPECT_EQ((Duration::us(1) * k).count_ns(), Duration::us(k).count_ns())
        << "k=" << k;
  }
}

}  // namespace
}  // namespace gdrshmem::sim
