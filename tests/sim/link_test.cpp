// Unit tests for bandwidth links and transfer paths: serialization, FIFO
// queuing, path combination and cut-through cost.
#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace gdrshmem::sim {
namespace {

TEST(Link, SerializationTimeMatchesBandwidth) {
  Link l("l", 1000.0);  // 1000 MB/s = 1 byte/ns
  Path p{Duration::zero(), 1000.0, {&l}};
  EXPECT_EQ(p.serialization(1000).count_ns(), 1000);
  EXPECT_EQ(p.serialization(0).count_ns(), 0);
}

TEST(Link, FifoQueuing) {
  Link l("l", 1000.0);
  Path p{Duration::us(1), 1000.0, {&l}};
  // First transfer: starts at 0, occupies link for 4000 ns, done at 5000 ns.
  Time t1 = p.schedule(Time::zero(), 4000);
  EXPECT_EQ(t1.count_ns(), 5000);
  // Second transfer issued at the same instant queues behind the first.
  Time t2 = p.schedule(Time::zero(), 1000);
  EXPECT_EQ(t2.count_ns(), 4000 + 1000 + 1000);
  EXPECT_EQ(l.bytes_transferred(), 5000u);
}

TEST(Link, IdleLinkStartsImmediately) {
  Link l("l", 2000.0);
  Path p{Duration::zero(), 2000.0, {&l}};
  Time t = p.schedule(Time::ns(500), 2000);
  EXPECT_EQ(t.count_ns(), 500 + 1000);
}

TEST(Path, PureLatencyPath) {
  Path p{Duration::us(2), 0, {}};
  EXPECT_EQ(p.cost(1 << 20), Duration::us(2));
  EXPECT_EQ(p.schedule(Time::zero(), 1 << 20), Time::zero() + Duration::us(2));
}

TEST(Path, CombineAddsLatencyAndTakesMinBandwidth) {
  Link a("a", 6397.0), b("b", 3421.0);
  Path first{Duration::us(0.5), 6397.0, {&a}};
  Path second{Duration::us(0.3), 3421.0, {&b}};
  Path both = combine({first, second});
  EXPECT_EQ(both.latency, Duration::us(0.8));
  EXPECT_DOUBLE_EQ(both.bw_mbps, 3421.0);
  EXPECT_EQ(both.links.size(), 2u);
}

TEST(Path, CombineIgnoresUnlimitedSegments) {
  Path limited{Duration::zero(), 100.0, {}};
  Path unlimited{Duration::us(1), 0, {}};
  Path both = combine({unlimited, limited});
  EXPECT_DOUBLE_EQ(both.bw_mbps, 100.0);
}

TEST(Path, CutThroughNotStoreAndForward) {
  // Two links in one path: one serialization at min bandwidth, not two.
  Link a("a", 1000.0), b("b", 1000.0);
  Path p{Duration::zero(), 1000.0, {&a, &b}};
  EXPECT_EQ(p.schedule(Time::zero(), 1000).count_ns(), 1000);
}

TEST(Path, CombineDeduplicatesSharedLinks) {
  // A loopback route mentions the same PCIe link in both directions'
  // segments; the physical resource must appear (and be charged) once.
  Link pcie("pcie", 1000.0);
  Path down{Duration::us(0.5), 1000.0, {&pcie}};
  Path up{Duration::us(0.5), 1000.0, {&pcie}};
  Path both = combine({down, up});
  ASSERT_EQ(both.links.size(), 1u);

  // One 1000-byte transfer holds the link for one serialization (1 us), not
  // two — a second transfer can start at 1 us, not 2 us.
  Time t1 = both.schedule(Time::zero(), 1000);
  EXPECT_EQ(t1.count_ns(), 1000 + 1000);  // latency + one serialization
  EXPECT_EQ(pcie.next_free().count_ns(), 1000);
  EXPECT_EQ(pcie.bytes_transferred(), 1000u);  // counted once, not twice
}

TEST(Path, ContentionAcrossDistinctPathsSharingALink) {
  Link shared("shared", 1000.0);
  Link fast("fast", 100000.0);
  Path p1{Duration::zero(), 1000.0, {&shared}};
  Path p2{Duration::zero(), 1000.0, {&shared, &fast}};
  Time t1 = p1.schedule(Time::zero(), 10000);  // occupies shared until 10 us
  EXPECT_EQ(t1.count_ns(), 10000);
  Time t2 = p2.schedule(Time::zero(), 1000);  // queues behind on shared
  EXPECT_EQ(t2.count_ns(), 11000);
}

}  // namespace
}  // namespace gdrshmem::sim
