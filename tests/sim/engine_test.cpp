// Unit tests for the virtual-time engine: event ordering, process
// scheduling, notifications, mailboxes, daemons, and deadlock detection.
//
// Process-scheduling behaviour must be identical under every execution
// backend, so those tests are parameterized over {threads, fibers} — the
// same body runs against both and must pass bit-identically.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/callback.hpp"
#include "sim/future.hpp"
#include "sim/mailbox.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {
namespace {

class EngineBackendTest : public ::testing::TestWithParam<BackendKind> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineBackendTest,
    ::testing::Values(BackendKind::kThreads, BackendKind::kFibers),
    [](const ::testing::TestParamInfo<BackendKind>& param_info) {
      return std::string(to_string(param_info.param));
    });

TEST(Time, ArithmeticAndConversions) {
  Duration d = Duration::us(2.5);
  EXPECT_EQ(d.count_ns(), 2500);
  EXPECT_DOUBLE_EQ(d.to_us(), 2.5);
  Time t = Time::zero() + d;
  EXPECT_EQ(t.count_ns(), 2500);
  EXPECT_EQ((t + Duration::ns(1)) - t, Duration::ns(1));
  EXPECT_LT(Duration::us(1.0), Duration::us(1.5));
  EXPECT_EQ(Duration::us(1.0) * 3.0, Duration::us(3.0));
}

TEST(Time, RoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::us(0.0001).count_ns(), 0);
  EXPECT_EQ(Duration::us(0.0006).count_ns(), 1);
  EXPECT_EQ(Duration::us(0.35).count_ns(), 350);
}

TEST(EventFn, InlineAndHeapCallablesInvoke) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // A capture larger than the inline buffer must fall back to the heap and
  // still invoke/move/destroy correctly.
  struct Big {
    long long pad[16];
  } big{};
  big.pad[15] = 7;
  EventFn large([&hits, big] { hits += static_cast<int>(big.pad[15]); });
  EventFn moved(std::move(large));
  EXPECT_FALSE(static_cast<bool>(large));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 8);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(Time::ns(30), [&] { order.push_back(3); });
  eng.schedule_at(Time::ns(10), [&] { order.push_back(1); });
  eng.schedule_at(Time::ns(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::ns(30));
}

TEST(Engine, EqualTimeEventsRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.schedule_at(Time::ns(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventSlotsAreRecycled) {
  // Interleaved schedule/execute must keep order and reuse pool slots; the
  // ordering contract is observable, the recycling is what keeps it cheap.
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.schedule_at(Time::ns(10 * (i + 1)), [&eng, &order, i] {
      order.push_back(i);
      eng.schedule_at(eng.now() + Duration::ns(5), [&order, i] {
        order.push_back(100 + i);
      });
    });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 101, 2, 102, 3, 103}));
  EXPECT_EQ(eng.events_executed(), 8u);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule_at(Time::ns(10), [&] {
    EXPECT_THROW(eng.schedule_at(Time::ns(5), [] {}), std::invalid_argument);
  });
  eng.run();
}

TEST(Engine, BackendEnvSelection) {
  const char* saved = std::getenv("GDRSHMEM_SIM_BACKEND");
  std::string saved_val = saved ? saved : "";
  ::setenv("GDRSHMEM_SIM_BACKEND", "threads", 1);
  EXPECT_EQ(backend_from_env(), BackendKind::kThreads);
  ::setenv("GDRSHMEM_SIM_BACKEND", "fibers", 1);
  EXPECT_EQ(backend_from_env(), BackendKind::kFibers);
  ::setenv("GDRSHMEM_SIM_BACKEND", "bogus", 1);
  EXPECT_THROW(backend_from_env(), std::invalid_argument);
  ::unsetenv("GDRSHMEM_SIM_BACKEND");
  EXPECT_EQ(backend_from_env(), BackendKind::kFibers);  // fibers is the default
  if (saved) ::setenv("GDRSHMEM_SIM_BACKEND", saved_val.c_str(), 1);
}

TEST_P(EngineBackendTest, ProcessDelayAdvancesVirtualTime) {
  Engine eng(GetParam());
  Time observed;
  eng.spawn("worker", [&](Process& p) {
    p.delay(Duration::us(7));
    observed = p.engine().now();
    p.delay(Duration::us(3));
  });
  eng.run();
  EXPECT_EQ(observed, Time::zero() + Duration::us(7));
  EXPECT_EQ(eng.now(), Time::zero() + Duration::us(10));
}

TEST_P(EngineBackendTest, NegativeDelayThrows) {
  Engine eng(GetParam());
  bool threw = false;
  eng.spawn("worker", [&](Process& p) {
    try {
      p.delay(Duration::ns(-1));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
}

TEST_P(EngineBackendTest, TwoProcessesInterleaveDeterministically) {
  Engine eng(GetParam());
  std::vector<std::pair<char, std::int64_t>> trace;
  eng.spawn("a", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      trace.emplace_back('a', eng.now().count_ns());
      p.delay(Duration::ns(10));
    }
  });
  eng.spawn("b", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      trace.emplace_back('b', eng.now().count_ns());
      p.delay(Duration::ns(15));
    }
  });
  eng.run();
  std::vector<std::pair<char, std::int64_t>> expected{
      {'a', 0}, {'b', 0}, {'a', 10}, {'b', 15}, {'a', 20}, {'b', 30}};
  EXPECT_EQ(trace, expected);
}

TEST_P(EngineBackendTest, NotificationWakesAllWaiters) {
  Engine eng(GetParam());
  Notification n;
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("waiter" + std::to_string(i), [&](Process& p) {
      p.await(n);
      ++woken;
    });
  }
  eng.spawn("notifier", [&](Process& p) {
    p.delay(Duration::us(5));
    n.notify();
  });
  eng.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(eng.now(), Time::zero() + Duration::us(5));
}

TEST_P(EngineBackendTest, AwaitUntilRechecksPredicate) {
  Engine eng(GetParam());
  Notification n;
  int value = 0;
  Time done;
  eng.spawn("waiter", [&](Process& p) {
    p.await_until(n, [&] { return value >= 2; });
    done = eng.now();
  });
  eng.spawn("setter", [&](Process& p) {
    p.delay(Duration::us(1));
    value = 1;
    n.notify();  // predicate still false; waiter must keep waiting
    p.delay(Duration::us(1));
    value = 2;
    n.notify();
  });
  eng.run();
  EXPECT_EQ(done, Time::zero() + Duration::us(2));
}

TEST_P(EngineBackendTest, DeadlockIsReported) {
  Engine eng(GetParam());
  Notification never;
  eng.spawn("stuck", [&](Process& p) { p.await(never); });
  EXPECT_THROW(eng.run(), DeadlockError);
}

TEST_P(EngineBackendTest, DaemonDoesNotKeepRunAlive) {
  Engine eng(GetParam());
  Notification never;
  bool worker_done = false;
  eng.spawn("daemon", [&](Process& p) { p.await(never); }, /*daemon=*/true);
  eng.spawn("worker", [&](Process& p) {
    p.delay(Duration::us(1));
    worker_done = true;
  });
  eng.run();  // must terminate despite the blocked daemon
  EXPECT_TRUE(worker_done);
}

TEST_P(EngineBackendTest, DaemonKillUnwindsProcessStack) {
  // When a blocked daemon is killed at shutdown, ProcessKilled must unwind
  // its (possibly deep) stack so destructors of locals run — under the fiber
  // backend that exercises exception propagation through a fiber stack.
  struct Tracker {
    std::vector<std::string>& log;
    std::string tag;
    ~Tracker() { log.push_back(tag); }
  };
  std::vector<std::string> destroyed;
  bool saw_kill = false;
  {
    Engine eng(GetParam());
    Notification never;
    eng.spawn(
        "daemon",
        [&](Process& p) {
          Tracker outer{destroyed, "outer"};
          // One more frame so the unwind crosses a call boundary.
          [&] {
            Tracker inner{destroyed, "inner"};
            try {
              p.await(never);
            } catch (const ProcessKilled&) {
              saw_kill = true;
              throw;  // bodies must let ProcessKilled propagate
            }
          }();
        },
        /*daemon=*/true);
    eng.spawn("worker", [&](Process& p) { p.delay(Duration::us(1)); });
    eng.run();
  }
  EXPECT_TRUE(saw_kill);
  EXPECT_EQ(destroyed, (std::vector<std::string>{"inner", "outer"}));
}

TEST_P(EngineBackendTest, NeverStartedProcessIsKilledCleanly) {
  // A daemon that never gets its first timeslice (killed while kCreated)
  // must not run its body at all.
  Engine eng(GetParam());
  bool body_ran = false;
  {
    Notification never;
    eng.spawn("worker", [&](Process& p) { p.delay(Duration::us(1)); });
    eng.run();
    // Spawn after run(): the start event stays queued forever; the engine
    // destructor must reap the process without running it.
    eng.spawn("late-daemon", [&](Process&) { body_ran = true; },
              /*daemon=*/true);
    eng.shutdown_daemons();
  }
  EXPECT_FALSE(body_ran);
}

TEST_P(EngineBackendTest, ProcessErrorPropagatesFromRun) {
  Engine eng(GetParam());
  eng.spawn("boom", [&](Process& p) {
    p.delay(Duration::us(1));
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST_P(EngineBackendTest, CurrentProcessIsTracked) {
  Engine eng(GetParam());
  EXPECT_EQ(Process::current(), nullptr);
  Process* seen = nullptr;
  Process* spawned = nullptr;
  eng.schedule_at(Time::ns(5), [&] {
    // Event callbacks run in engine context, not process context.
    EXPECT_EQ(Process::current(), nullptr);
  });
  spawned = &eng.spawn("worker", [&](Process& p) {
    seen = Process::current();
    p.delay(Duration::ns(10));
    EXPECT_EQ(Process::current(), &p);  // still tracked after a handoff
  });
  eng.run();
  EXPECT_EQ(seen, spawned);
  EXPECT_EQ(Process::current(), nullptr);
}

TEST_P(EngineBackendTest, SpawnFromRunningProcess) {
  Engine eng(GetParam());
  std::vector<std::string> started;
  eng.spawn("parent", [&](Process& p) {
    p.delay(Duration::us(1));
    eng.spawn("child", [&](Process& c) {
      started.push_back(c.name());
      c.delay(Duration::us(1));
    });
    p.delay(Duration::us(5));
    started.push_back("parent-done");
  });
  eng.run();
  EXPECT_EQ(started, (std::vector<std::string>{"child", "parent-done"}));
}

TEST_P(EngineBackendTest, ManyProcessesScale) {
  Engine eng(GetParam());
  int finished = 0;
  for (int i = 0; i < 128; ++i) {
    eng.spawn("p" + std::to_string(i), [&finished, i](Process& p) {
      p.delay(Duration::ns(i));
      ++finished;
    });
  }
  eng.run();
  EXPECT_EQ(finished, 128);
}

TEST_P(EngineBackendTest, MailboxPostThenReceive) {
  Engine eng(GetParam());
  Mailbox<int> box;
  std::vector<int> got;
  eng.spawn("consumer", [&](Process& p) {
    for (int i = 0; i < 3; ++i) got.push_back(box.receive(p));
  });
  eng.spawn("producer", [&](Process& p) {
    for (int i = 1; i <= 3; ++i) {
      p.delay(Duration::us(1));
      box.post(i * 10);
    }
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, TryReceiveNonBlocking) {
  Mailbox<int> box;
  EXPECT_FALSE(box.try_receive().has_value());
  box.post(42);
  EXPECT_EQ(box.size(), 1u);
  auto v = box.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(box.empty());
}

TEST_P(EngineBackendTest, CompletionFiresAndWakes) {
  Engine eng(GetParam());
  bool waited = false;
  eng.spawn("waiter", [&](Process& p) {
    auto c = fire_at(eng, eng.now() + Duration::us(4));
    EXPECT_FALSE(c->done());
    c->wait(p);
    EXPECT_TRUE(c->done());
    waited = true;
    EXPECT_EQ(eng.now(), Time::zero() + Duration::us(4));
  });
  eng.run();
  EXPECT_TRUE(waited);
}

TEST_P(EngineBackendTest, DeterministicAcrossRuns) {
  auto run_once = [&] {
    Engine eng(GetParam());
    std::vector<std::int64_t> stamps;
    Notification n;
    eng.spawn("a", [&](Process& p) {
      p.delay(Duration::ns(3));
      n.notify();
      p.delay(Duration::ns(9));
      stamps.push_back(eng.now().count_ns());
    });
    eng.spawn("b", [&](Process& p) {
      p.await(n);
      stamps.push_back(eng.now().count_ns());
      p.delay(Duration::ns(2));
      stamps.push_back(eng.now().count_ns());
    });
    eng.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gdrshmem::sim
