// Unit tests for the virtual-time engine: event ordering, process
// scheduling, notifications, mailboxes, daemons, and deadlock detection.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/future.hpp"
#include "sim/mailbox.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {
namespace {

TEST(Time, ArithmeticAndConversions) {
  Duration d = Duration::us(2.5);
  EXPECT_EQ(d.count_ns(), 2500);
  EXPECT_DOUBLE_EQ(d.to_us(), 2.5);
  Time t = Time::zero() + d;
  EXPECT_EQ(t.count_ns(), 2500);
  EXPECT_EQ((t + Duration::ns(1)) - t, Duration::ns(1));
  EXPECT_LT(Duration::us(1.0), Duration::us(1.5));
  EXPECT_EQ(Duration::us(1.0) * 3.0, Duration::us(3.0));
}

TEST(Time, RoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::us(0.0001).count_ns(), 0);
  EXPECT_EQ(Duration::us(0.0006).count_ns(), 1);
  EXPECT_EQ(Duration::us(0.35).count_ns(), 350);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(Time::ns(30), [&] { order.push_back(3); });
  eng.schedule_at(Time::ns(10), [&] { order.push_back(1); });
  eng.schedule_at(Time::ns(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::ns(30));
}

TEST(Engine, EqualTimeEventsRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.schedule_at(Time::ns(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule_at(Time::ns(10), [&] {
    EXPECT_THROW(eng.schedule_at(Time::ns(5), [] {}), std::invalid_argument);
  });
  eng.run();
}

TEST(Engine, ProcessDelayAdvancesVirtualTime) {
  Engine eng;
  Time observed;
  eng.spawn("worker", [&](Process& p) {
    p.delay(Duration::us(7));
    observed = p.engine().now();
    p.delay(Duration::us(3));
  });
  eng.run();
  EXPECT_EQ(observed, Time::zero() + Duration::us(7));
  EXPECT_EQ(eng.now(), Time::zero() + Duration::us(10));
}

TEST(Engine, NegativeDelayThrows) {
  Engine eng;
  bool threw = false;
  eng.spawn("worker", [&](Process& p) {
    try {
      p.delay(Duration::ns(-1));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(Engine, TwoProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<std::pair<char, std::int64_t>> trace;
  eng.spawn("a", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      trace.emplace_back('a', eng.now().count_ns());
      p.delay(Duration::ns(10));
    }
  });
  eng.spawn("b", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      trace.emplace_back('b', eng.now().count_ns());
      p.delay(Duration::ns(15));
    }
  });
  eng.run();
  std::vector<std::pair<char, std::int64_t>> expected{
      {'a', 0}, {'b', 0}, {'a', 10}, {'b', 15}, {'a', 20}, {'b', 30}};
  EXPECT_EQ(trace, expected);
}

TEST(Engine, NotificationWakesAllWaiters) {
  Engine eng;
  Notification n;
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("waiter" + std::to_string(i), [&](Process& p) {
      p.await(n);
      ++woken;
    });
  }
  eng.spawn("notifier", [&](Process& p) {
    p.delay(Duration::us(5));
    n.notify();
  });
  eng.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(eng.now(), Time::zero() + Duration::us(5));
}

TEST(Engine, AwaitUntilRechecksPredicate) {
  Engine eng;
  Notification n;
  int value = 0;
  Time done;
  eng.spawn("waiter", [&](Process& p) {
    p.await_until(n, [&] { return value >= 2; });
    done = eng.now();
  });
  eng.spawn("setter", [&](Process& p) {
    p.delay(Duration::us(1));
    value = 1;
    n.notify();  // predicate still false; waiter must keep waiting
    p.delay(Duration::us(1));
    value = 2;
    n.notify();
  });
  eng.run();
  EXPECT_EQ(done, Time::zero() + Duration::us(2));
}

TEST(Engine, DeadlockIsReported) {
  Engine eng;
  Notification never;
  eng.spawn("stuck", [&](Process& p) { p.await(never); });
  EXPECT_THROW(eng.run(), DeadlockError);
}

TEST(Engine, DaemonDoesNotKeepRunAlive) {
  Engine eng;
  Notification never;
  bool worker_done = false;
  eng.spawn("daemon", [&](Process& p) { p.await(never); }, /*daemon=*/true);
  eng.spawn("worker", [&](Process& p) {
    p.delay(Duration::us(1));
    worker_done = true;
  });
  eng.run();  // must terminate despite the blocked daemon
  EXPECT_TRUE(worker_done);
}

TEST(Engine, SpawnFromRunningProcess) {
  Engine eng;
  std::vector<std::string> started;
  eng.spawn("parent", [&](Process& p) {
    p.delay(Duration::us(1));
    eng.spawn("child", [&](Process& c) {
      started.push_back(c.name());
      c.delay(Duration::us(1));
    });
    p.delay(Duration::us(5));
    started.push_back("parent-done");
  });
  eng.run();
  EXPECT_EQ(started, (std::vector<std::string>{"child", "parent-done"}));
}

TEST(Engine, ManyProcessesScale) {
  Engine eng;
  int finished = 0;
  for (int i = 0; i < 128; ++i) {
    eng.spawn("p" + std::to_string(i), [&finished, i](Process& p) {
      p.delay(Duration::ns(i));
      ++finished;
    });
  }
  eng.run();
  EXPECT_EQ(finished, 128);
}

TEST(Mailbox, PostThenReceive) {
  Engine eng;
  Mailbox<int> box;
  std::vector<int> got;
  eng.spawn("consumer", [&](Process& p) {
    for (int i = 0; i < 3; ++i) got.push_back(box.receive(p));
  });
  eng.spawn("producer", [&](Process& p) {
    for (int i = 1; i <= 3; ++i) {
      p.delay(Duration::us(1));
      box.post(i * 10);
    }
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, TryReceiveNonBlocking) {
  Mailbox<int> box;
  EXPECT_FALSE(box.try_receive().has_value());
  box.post(42);
  EXPECT_EQ(box.size(), 1u);
  auto v = box.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(box.empty());
}

TEST(Completion, FiresAndWakes) {
  Engine eng;
  bool waited = false;
  eng.spawn("waiter", [&](Process& p) {
    auto c = fire_at(eng, eng.now() + Duration::us(4));
    EXPECT_FALSE(c->done());
    c->wait(p);
    EXPECT_TRUE(c->done());
    waited = true;
    EXPECT_EQ(eng.now(), Time::zero() + Duration::us(4));
  });
  eng.run();
  EXPECT_TRUE(waited);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng;
    std::vector<std::int64_t> stamps;
    Notification n;
    eng.spawn("a", [&](Process& p) {
      p.delay(Duration::ns(3));
      n.notify();
      p.delay(Duration::ns(9));
      stamps.push_back(eng.now().count_ns());
    });
    eng.spawn("b", [&](Process& p) {
      p.await(n);
      stamps.push_back(eng.now().count_ns());
      p.delay(Duration::ns(2));
      stamps.push_back(eng.now().count_ns());
    });
    eng.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gdrshmem::sim
