// FaultPlan grammar and FaultInjector determinism, independent of the
// runtime: the plan is plain data, the injector a seeded decision stream.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/fault.hpp"

namespace gdrshmem::sim {
namespace {

TEST(FaultPlan, EmptySpecIsDisabled) {
  FaultPlan plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_EQ(plan.wire_error_rate, 0.0);
  EXPECT_DOUBLE_EQ(plan.proxy_restart_us, 300.0);
  EXPECT_FALSE(FaultInjector(plan).enabled());
}

TEST(FaultPlan, ParsesEveryKey) {
  FaultPlan plan = FaultPlan::parse(
      "seed=42,wire_error_rate=1e-3,atomic_error_rate=2e-4,restart_us=450,"
      "flap=1@100+50,crash=2@700,revoke=0@1200");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.wire_error_rate, 1e-3);
  EXPECT_DOUBLE_EQ(plan.atomic_error_rate, 2e-4);
  EXPECT_DOUBLE_EQ(plan.proxy_restart_us, 450.0);
  ASSERT_EQ(plan.flaps.size(), 1u);
  EXPECT_EQ(plan.flaps[0].node, 1);
  EXPECT_DOUBLE_EQ(plan.flaps[0].at_us, 100.0);
  EXPECT_DOUBLE_EQ(plan.flaps[0].duration_us, 50.0);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].node, 2);
  EXPECT_DOUBLE_EQ(plan.crashes[0].at_us, 700.0);
  ASSERT_EQ(plan.revokes.size(), 1u);
  EXPECT_EQ(plan.revokes[0].node, 0);
  EXPECT_DOUBLE_EQ(plan.revokes[0].at_us, 1200.0);
}

TEST(FaultPlan, SpecRoundTrips) {
  FaultPlan plan = FaultPlan::parse(
      "seed=7,wire_error_rate=0.01,flap=0@10+20,flap=3@500+80,crash=1@250,"
      "revoke=2@0");
  FaultPlan reparsed = FaultPlan::parse(plan.spec());
  EXPECT_EQ(reparsed.spec(), plan.spec());
  EXPECT_EQ(reparsed.seed, plan.seed);
  EXPECT_DOUBLE_EQ(reparsed.wire_error_rate, plan.wire_error_rate);
  EXPECT_EQ(reparsed.flaps.size(), plan.flaps.size());
  EXPECT_EQ(reparsed.crashes.size(), plan.crashes.size());
  EXPECT_EQ(reparsed.revokes.size(), plan.revokes.size());
}

TEST(FaultPlan, ToleratesStrayCommas) {
  FaultPlan plan = FaultPlan::parse(",seed=9,,wire_error_rate=1e-2,");
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.wire_error_rate, 1e-2);
}

TEST(FaultPlan, RejectsBadSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wire_error_rate=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wire_error_rate=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("wire_error_rate=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("atomic_error_rate=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("flap=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("flap=1@100"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash=1@-5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash=99999@0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("revoke=x@0"), std::invalid_argument);
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan = FaultPlan::parse("seed=123,wire_error_rate=0.05");
  FaultInjector a(plan), b(plan);
  int failures = 0;
  for (int i = 0; i < 4096; ++i) {
    Time now = Time::zero() + Duration::us(i);
    bool fa = a.wire_attempt_fails(0, 1, now);
    bool fb = b.wire_attempt_fails(0, 1, now);
    ASSERT_EQ(fa, fb) << "attempt " << i;
    failures += fa ? 1 : 0;
  }
  // Rate 5% over 4096 attempts: some must fail, most must succeed.
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 4096 / 2);
}

TEST(FaultInjector, ZeroRateConsumesNoRandomnessAndNeverFails) {
  FaultPlan plan;  // empty: all rates zero
  FaultInjector inj(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.wire_attempt_fails(0, 1, Time::zero()));
    EXPECT_FALSE(inj.atomic_attempt_fails(0, 1, Time::zero()));
  }
}

TEST(FaultInjector, LinkDownTracksFlapWindows) {
  FaultPlan plan = FaultPlan::parse("flap=1@100+50");
  FaultInjector inj(plan);
  auto at = [](double us) { return Time::zero() + Duration::us(us); };
  // Before, inside, and after the [100, 150) window, on either endpoint.
  EXPECT_FALSE(inj.link_down(0, 1, at(99)));
  EXPECT_TRUE(inj.link_down(0, 1, at(100)));
  EXPECT_TRUE(inj.link_down(1, 0, at(125)));
  EXPECT_FALSE(inj.link_down(0, 1, at(150)));
  // A link not touching node 1 never sees the flap.
  EXPECT_FALSE(inj.link_down(0, 2, at(125)));
  // During the window every attempt on the flapped link fails
  // deterministically, with no probabilistic rate configured.
  EXPECT_TRUE(inj.wire_attempt_fails(0, 1, at(125)));
  EXPECT_FALSE(inj.wire_attempt_fails(0, 2, at(125)));
}

TEST(FaultInjector, CountsAndHook) {
  FaultInjector inj(FaultPlan::parse("wire_error_rate=1e-3"));
  std::vector<std::pair<FaultEvent, int>> seen;
  inj.set_hook([&](FaultEvent ev, int endpoint) { seen.emplace_back(ev, endpoint); });
  inj.on_event(FaultEvent::kRetransmit, 3);
  inj.on_event(FaultEvent::kRetransmit, 4);
  inj.on_event(FaultEvent::kSwReplay, 3);
  EXPECT_EQ(inj.count(FaultEvent::kRetransmit), 2u);
  EXPECT_EQ(inj.count(FaultEvent::kSwReplay), 1u);
  EXPECT_EQ(inj.count(FaultEvent::kCompletionError), 0u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<FaultEvent, int>{FaultEvent::kRetransmit, 3}));
  EXPECT_EQ(seen[2], (std::pair<FaultEvent, int>{FaultEvent::kSwReplay, 3}));
}

TEST(FaultEventNames, AllDistinctAndNonNull) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(FaultEvent::kCount_); ++i) {
    const char* name = to_string(static_cast<FaultEvent>(i));
    ASSERT_NE(name, nullptr);
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_STRNE(name, to_string(static_cast<FaultEvent>(j)));
    }
  }
}

}  // namespace
}  // namespace gdrshmem::sim
