// Engine behaviour at simulation scale (thousands of PEs).
//
// These tests run raw-engine workloads — no runtime, no transports — so 4K
// processes stay cheap enough for CI. They pin down the three scale-out
// mechanisms of the engine:
//   * the timing-wheel queue stays bit-identical to the heap per seed,
//   * the queue/slot-pool high-water marks reflect the O(PE) burst and the
//     capacity is dropped again at quiescence,
//   * fiber stacks are recycled through the pool instead of re-mmapped.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/stack_pool.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {
namespace {

struct ScaleResult {
  std::uint64_t checksum = 0;  // order-sensitive digest of every observable step
  std::int64_t end_ns = 0;
  std::size_t queue_hwm = 0;

  bool operator==(const ScaleResult&) const = default;
};

/// A 3-round barrier + neighbour-exchange over `pes` processes with seeded
/// pseudo-random per-PE delays: the (at, seq) stream covers same-instant
/// bursts of the full PE count and scattered timestamps in between.
ScaleResult run_scaled(QueueKind queue, int pes, std::uint32_t seed) {
  ScaleResult out;
  Engine eng(BackendKind::kFibers, queue);
  Notification barrier;
  int waiting = 0;
  std::vector<std::int64_t> cells(static_cast<std::size_t>(pes), 0);

  for (int pe = 0; pe < pes; ++pe) {
    // Per-PE deterministic jitter; seeding by (seed, pe) keeps the schedule
    // independent of spawn order internals.
    std::mt19937 rng(seed ^ static_cast<std::uint32_t>(pe) * 2654435761u);
    std::uniform_int_distribution<int> jitter(0, 997);
    const int d0 = jitter(rng), d1 = jitter(rng), d2 = jitter(rng);
    eng.spawn("pe" + std::to_string(pe), [&, pe, d0, d1, d2](Process& p) {
      const auto me = static_cast<std::size_t>(pe);
      for (int round = 0; round < 3; ++round) {
        p.delay(Duration::ns(round == 0 ? d0 : round == 1 ? d1 : d2));
        cells[me] += pe + round;
        if (++waiting == pes) {
          waiting = 0;
          barrier.notify();
        } else {
          p.await(barrier);
        }
        // Neighbour read after the barrier: order-sensitive state.
        const std::size_t right = static_cast<std::size_t>((pe + 1) % pes);
        cells[me] ^= static_cast<std::int64_t>(cells[right] << (round + 1));
      }
    });
  }
  eng.run();

  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the final cells
  for (std::int64_t c : cells) {
    h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ull;
  }
  out.checksum = h;
  out.end_ns = eng.now().count_ns();
  out.queue_hwm = eng.queue_size_hwm();

  // Release-on-quiescence: after run() the O(PE) burst capacity is gone.
  EXPECT_EQ(0u, eng.retained_bytes());
  EXPECT_GE(eng.queue_size_hwm(), static_cast<std::size_t>(pes))
      << "a full-PE barrier release must show up in the queue HWM";
  EXPECT_GE(eng.slot_pool_hwm(), 1u);
  return out;
}

TEST(Scale, FourKPeBitIdenticalPerSeed) {
  for (std::uint32_t seed : {11u, 42u}) {
    ScaleResult a = run_scaled(QueueKind::kWheel, 4096, seed);
    ScaleResult b = run_scaled(QueueKind::kWheel, 4096, seed);
    EXPECT_EQ(a, b) << "4K-PE run diverged across repeats, seed " << seed;
  }
  // Different seeds must actually change the schedule, or the test is vacuous.
  EXPECT_NE(run_scaled(QueueKind::kWheel, 4096, 11u).checksum,
            run_scaled(QueueKind::kWheel, 4096, 42u).checksum);
}

TEST(Scale, FourKPeWheelMatchesHeap) {
  ScaleResult heap = run_scaled(QueueKind::kHeap, 4096, 7u);
  ScaleResult wheel = run_scaled(QueueKind::kWheel, 4096, 7u);
  EXPECT_EQ(heap, wheel);
}

TEST(Scale, StackPoolRecyclesAcrossEngines) {
  FiberStackPool& pool = FiberStackPool::instance();
  auto run_once = [] {
    Engine eng(BackendKind::kFibers);
    for (int pe = 0; pe < 64; ++pe) {
      eng.spawn("pe" + std::to_string(pe),
                [](Process& p) { p.delay(Duration::ns(1)); });
    }
    eng.run();
  };
  run_once();  // warm: 64 stacks now pooled (or reused from earlier tests)
  const std::uint64_t mapped_before = pool.mapped();
  const std::uint64_t reused_before = pool.reused();
  run_once();
  EXPECT_EQ(mapped_before, pool.mapped())
      << "second engine of the same geometry must not mmap new stacks";
  EXPECT_GE(pool.reused(), reused_before + 64);
  EXPECT_GE(pool.pooled(), 64u);
}

TEST(Scale, StackPoolTrimAndDisable) {
  FiberStackPool& pool = FiberStackPool::instance();
  const std::size_t original_cap = pool.capacity();
  {
    Engine eng(BackendKind::kFibers);
    eng.spawn("p", [](Process& p) { p.delay(Duration::ns(1)); });
    eng.run();
  }
  EXPECT_GE(pool.pooled(), 1u);
  pool.trim();
  EXPECT_EQ(0u, pool.pooled());

  // capacity 0 disables pooling: stacks are unmapped on release.
  pool.set_capacity(0);
  {
    Engine eng(BackendKind::kFibers);
    eng.spawn("p", [](Process& p) { p.delay(Duration::ns(1)); });
    eng.run();
  }
  EXPECT_EQ(0u, pool.pooled());
  pool.set_capacity(original_cap);
}

}  // namespace
}  // namespace gdrshmem::sim
