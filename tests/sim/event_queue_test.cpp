// EventQueue unit + differential tests.
//
// The pop order (at, seq) is a strict total order, so the timing wheel and
// the binary heap must produce bit-identical pop sequences for any legal
// push/pop interleaving ("legal" = never push before the time of the last
// pop, which is what the engine guarantees). The differential tests drive
// both structures with the same randomized-but-seeded operation streams and
// demand equality; the directed tests pin down the wheel's edge cases
// (slot/level boundaries, cascades into partially filled slots, the overflow
// heap, seq tie-breaks across a cascade splice).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {
namespace {

EventQueue::Entry entry(std::int64_t at_ns, std::uint64_t seq) {
  return EventQueue::Entry{Time::zero() + Duration::ns(at_ns), seq,
                           static_cast<std::uint32_t>(seq & 0xffffffffu)};
}

/// Push `entries` into both structures in order, then pop everything and
/// compare the full sequences element-wise.
void expect_identical_drain(const std::vector<EventQueue::Entry>& entries) {
  EventQueue heap(QueueKind::kHeap);
  EventQueue wheel(QueueKind::kWheel);
  for (const auto& e : entries) {
    heap.push(e);
    wheel.push(e);
  }
  ASSERT_EQ(heap.size(), wheel.size());
  std::size_t i = 0;
  while (!heap.empty()) {
    EventQueue::Entry h = heap.pop();
    EventQueue::Entry w = wheel.pop();
    ASSERT_EQ(h.at.count_ns(), w.at.count_ns()) << "pop #" << i;
    ASSERT_EQ(h.seq, w.seq) << "pop #" << i;
    ASSERT_EQ(h.slot, w.slot) << "pop #" << i;
    ++i;
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventQueue, EnvSelection) {
  EXPECT_EQ(QueueKind::kWheel, queue_from_env());  // unset -> wheel
  EXPECT_STREQ("heap", to_string(QueueKind::kHeap));
  EXPECT_STREQ("wheel", to_string(QueueKind::kWheel));
}

TEST(EventQueue, PopsInTimeThenSeqOrder) {
  for (QueueKind kind : {QueueKind::kHeap, QueueKind::kWheel}) {
    EventQueue q(kind);
    q.push(entry(50, 0));
    q.push(entry(10, 1));
    q.push(entry(10, 2));
    q.push(entry(0, 3));
    EXPECT_EQ(4u, q.size());
    EXPECT_EQ(3u, q.pop().seq);   // t=0
    EXPECT_EQ(1u, q.pop().seq);   // t=10, seq ties broken by seq
    EXPECT_EQ(2u, q.pop().seq);
    EXPECT_EQ(0u, q.pop().seq);   // t=50
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueue, SlotAndLevelBoundaries) {
  // Times straddling every level boundary: 63|64, 4095|4096, 64^2..64^5,
  // plus the exact wheel horizon where entries spill into the overflow heap.
  std::vector<EventQueue::Entry> es;
  std::uint64_t seq = 0;
  for (int level = 0; level < 7; ++level) {
    const std::int64_t edge = std::int64_t{1} << (6 * level);
    es.push_back(entry(edge - 1, seq++));
    es.push_back(entry(edge, seq++));
    es.push_back(entry(edge + 1, seq++));
  }
  expect_identical_drain(es);
}

TEST(EventQueue, OverflowBeyondWheelHorizon) {
  // 2^36 ns past zero is outside the wheel; these must come back in order
  // interleaved correctly with near-term entries.
  std::vector<EventQueue::Entry> es = {
      entry((std::int64_t{1} << 36) + 5, 0),
      entry(3, 1),
      entry((std::int64_t{1} << 40), 2),
      entry((std::int64_t{1} << 36) + 5, 3),  // same time as seq 0
      entry(0, 4),
  };
  expect_identical_drain(es);
}

TEST(EventQueue, CascadeWithInterleavedPushes) {
  // Entries at one far time land at level >= 1, the wheel advances via pops,
  // later same-time pushes land at lower levels, and a cascade finally
  // merges both populations into level 0. (The slot re-sort path in the
  // wheel is a defensive net: cascaded entries always carry older seqs than
  // any direct push made after cur advanced, so slots arrive seq-sorted —
  // this test pins the merge order either way, against the heap.)
  EventQueue heap(QueueKind::kHeap);
  EventQueue wheel(QueueKind::kWheel);
  for (auto* q : {&heap, &wheel}) {
    q->push(entry(70, 0));   // level 1 from cur=0
    q->push(entry(10, 4));   // level 0
  }
  ASSERT_EQ(4u, heap.pop().seq);
  ASSERT_EQ(4u, wheel.pop().seq);  // cur -> 10
  for (auto* q : {&heap, &wheel}) {
    q->push(entry(70, 5));   // still level 1 (crosses the 64 boundary)
    q->push(entry(70, 6));
    q->push(entry(65, 7));   // same level-1 slot, earlier time
  }
  // Draining forces the cascade of slot [64,128) holding two timestamps and
  // four entries; pops must interleave them identically to the heap.
  for (int i = 0; i < 4; ++i) {
    EventQueue::Entry h = heap.pop();
    EventQueue::Entry w = wheel.pop();
    EXPECT_EQ(h.at.count_ns(), w.at.count_ns()) << "pop " << i;
    EXPECT_EQ(h.seq, w.seq) << "pop " << i;
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_TRUE(wheel.empty());
}

TEST(EventQueue, DifferentialRandomizedInterleaving) {
  // Seeded random push/pop streams, including same-time bursts (the barrier
  // pattern), zero-delay pushes, and far-future outliers. Any divergence in
  // pop order between the two structures fails the run.
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    std::mt19937 rng(seed);
    EventQueue heap(QueueKind::kHeap);
    EventQueue wheel(QueueKind::kWheel);
    std::int64_t now = 0;
    std::uint64_t seq = 0;
    std::uniform_int_distribution<int> op(0, 99);
    std::uniform_int_distribution<std::int64_t> small(0, 200);
    std::uniform_int_distribution<std::int64_t> medium(0, 1 << 20);
    std::uniform_int_distribution<std::int64_t> huge(std::int64_t{1} << 36,
                                                     std::int64_t{1} << 44);
    for (int step = 0; step < 20000; ++step) {
      const int r = op(rng);
      if (r < 55 || heap.empty()) {
        std::int64_t at = now;
        if (r < 25) {
          at += small(rng);
        } else if (r < 50) {
          at += medium(rng);
        } else if (r < 52) {
          at += huge(rng);  // overflow-heap territory
        }  // else: exactly `now` (same-time burst)
        EventQueue::Entry e = entry(at, seq++);
        heap.push(e);
        wheel.push(e);
      } else {
        EventQueue::Entry h = heap.pop();
        EventQueue::Entry w = wheel.pop();
        ASSERT_EQ(h.at.count_ns(), w.at.count_ns())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(h.seq, w.seq) << "seed " << seed << " step " << step;
        ASSERT_GE(h.at.count_ns(), now) << "time went backwards";
        now = h.at.count_ns();
      }
    }
    while (!heap.empty()) {
      EventQueue::Entry h = heap.pop();
      EventQueue::Entry w = wheel.pop();
      ASSERT_EQ(h.at.count_ns(), w.at.count_ns()) << "seed " << seed;
      ASSERT_EQ(h.seq, w.seq) << "seed " << seed;
    }
    EXPECT_TRUE(wheel.empty());
  }
}

TEST(EventQueue, BarrierBurstAtOneTimestamp) {
  // 16K entries at a single instant — the N-PE barrier-release shape the
  // wheel's per-slot vectors are designed for.
  std::vector<EventQueue::Entry> es;
  for (std::uint64_t s = 0; s < 16384; ++s) es.push_back(entry(1000, s));
  expect_identical_drain(es);
}

TEST(EventQueue, HwmAndReleaseRetained) {
  EventQueue q(QueueKind::kWheel);
  for (std::uint64_t s = 0; s < 4096; ++s) q.push(entry(64, s));
  EXPECT_EQ(4096u, q.size_hwm());
  EXPECT_GE(q.retained_bytes(), 4096 * sizeof(EventQueue::Entry));
  while (!q.empty()) q.pop();
  EXPECT_EQ(4096u, q.size_hwm()) << "HWM must be sticky";
  // Drained slot vectors keep their capacity until release is requested.
  EXPECT_GE(q.retained_bytes(), 4096 * sizeof(EventQueue::Entry));
  q.release_retained();
  EXPECT_EQ(0u, q.retained_bytes());
  EXPECT_EQ(4096u, q.size_hwm());
  // The queue stays usable after a release.
  q.push(entry(100, 9999));
  EXPECT_EQ(9999u, q.pop().seq);
}

}  // namespace
}  // namespace gdrshmem::sim
