// Determinism regression tests for the execution backends.
//
// The engine's contract is that virtual-time results are bit-identical
// across runs AND across backends: the fiber and thread backends may differ
// only in wall-clock cost, never in event order, event count, or any
// simulated state. These tests run a contended multi-process workload
// (mailbox ring + notifications + nested spawns + a daemon) and compare full
// execution traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {
namespace {

struct RunTrace {
  std::vector<std::string> log;  // "<name>@<ns>" at every observable step
  std::uint64_t events_executed = 0;
  std::int64_t end_ns = 0;

  bool operator==(const RunTrace&) const = default;
};

/// A deliberately messy workload: a token ring over mailboxes, a broadcast
/// notification that releases all PEs mid-run, a child process spawned from
/// a running process, and a daemon that ticks forever in the background.
RunTrace run_workload(BackendKind kind, int pes, int rounds,
                      QueueKind queue = queue_from_env()) {
  RunTrace out;
  Engine eng(kind, queue);
  std::vector<Mailbox<int>> ring(static_cast<std::size_t>(pes));
  Notification phase2;
  int phase1_done = 0;

  // Daemon: ticks a bounded number of times, then blocks forever (a daemon
  // that self-schedules unboundedly would keep the event queue alive and
  // run() would never terminate).
  Notification never;
  eng.spawn(
      "ticker",
      [&](Process& p) {
        for (int i = 0; i < 40; ++i) {
          p.delay(Duration::ns(37));
          out.log.push_back("tick@" + std::to_string(eng.now().count_ns()));
        }
        p.await(never);
      },
      /*daemon=*/true);

  for (int pe = 0; pe < pes; ++pe) {
    eng.spawn("pe" + std::to_string(pe), [&, pe](Process& p) {
      if (pe == 0) ring[0].post(0);
      for (int r = 0; r < rounds; ++r) {
        int token = ring[static_cast<std::size_t>(pe)].receive(p);
        out.log.push_back("pe" + std::to_string(pe) + ":tok" +
                          std::to_string(token) + "@" +
                          std::to_string(eng.now().count_ns()));
        p.delay(Duration::ns(10 + pe));
        ring[static_cast<std::size_t>((pe + 1) % pes)].post(token + 1);
      }
      ++phase1_done;
      if (phase1_done == pes) {
        phase2.notify();
      } else {
        p.await(phase2);
      }
      if (pe == 1) {
        eng.spawn("child", [&](Process& c) {
          c.delay(Duration::ns(5));
          out.log.push_back("child@" + std::to_string(eng.now().count_ns()));
        });
      }
      p.delay(Duration::ns(pe * 3));
      out.log.push_back("pe" + std::to_string(pe) + ":done@" +
                        std::to_string(eng.now().count_ns()));
    });
  }

  eng.run();
  out.events_executed = eng.events_executed();
  out.end_ns = eng.now().count_ns();
  return out;
}

TEST(Determinism, RepeatedRunsAreBitIdenticalPerBackend) {
  for (BackendKind kind : {BackendKind::kThreads, BackendKind::kFibers}) {
    RunTrace a = run_workload(kind, 8, 6);
    RunTrace b = run_workload(kind, 8, 6);
    EXPECT_EQ(a, b) << "backend " << to_string(kind)
                    << " is not deterministic across runs";
    EXPECT_FALSE(a.log.empty());
  }
}

TEST(Determinism, FibersAndThreadsProduceIdenticalTraces) {
  RunTrace threads = run_workload(BackendKind::kThreads, 8, 6);
  RunTrace fibers = run_workload(BackendKind::kFibers, 8, 6);
  EXPECT_EQ(threads.events_executed, fibers.events_executed);
  EXPECT_EQ(threads.end_ns, fibers.end_ns);
  EXPECT_EQ(threads, fibers);
}

TEST(Determinism, CrossBackendAtScale) {
  // More PEs and rounds: the trace grows past 10k entries, so any
  // scheduling divergence between backends has plenty of room to surface.
  RunTrace threads = run_workload(BackendKind::kThreads, 32, 12);
  RunTrace fibers = run_workload(BackendKind::kFibers, 32, 12);
  ASSERT_EQ(threads.log.size(), fibers.log.size());
  EXPECT_EQ(threads, fibers);
}

TEST(Determinism, HeapAndWheelQueuesProduceIdenticalTraces) {
  // The pending-event queue is swappable under the (at, seq) total order:
  // the timing wheel and the reference binary heap must be bit-identical —
  // on both execution backends.
  for (BackendKind kind : {BackendKind::kThreads, BackendKind::kFibers}) {
    RunTrace heap = run_workload(kind, 16, 8, QueueKind::kHeap);
    RunTrace wheel = run_workload(kind, 16, 8, QueueKind::kWheel);
    EXPECT_EQ(heap, wheel) << "queue divergence on backend " << to_string(kind);
  }
}

TEST(Determinism, AllFourQueueBackendCombinationsAgree) {
  const RunTrace ref =
      run_workload(BackendKind::kFibers, 12, 6, QueueKind::kHeap);
  for (BackendKind kind : {BackendKind::kThreads, BackendKind::kFibers}) {
    for (QueueKind queue : {QueueKind::kHeap, QueueKind::kWheel}) {
      RunTrace t = run_workload(kind, 12, 6, queue);
      EXPECT_EQ(ref, t) << to_string(kind) << "/" << to_string(queue);
    }
  }
}

TEST(Determinism, FastAndUcontextFiberSwitchesProduceIdenticalTraces) {
  // The fiber backend's context-switch mechanism (raw register swap vs
  // swapcontext) changes only wall-clock cost; control transfers at the same
  // points, so the trace must be bit-identical. The mode is read per Engine
  // construction, so flipping the env between runs is enough.
  auto run_with_switch = [](const char* mode) {
    ::setenv("GDRSHMEM_SIM_FIBER_SWITCH", mode, 1);
    RunTrace t = run_workload(BackendKind::kFibers, 16, 8);
    ::unsetenv("GDRSHMEM_SIM_FIBER_SWITCH");
    return t;
  };
  RunTrace fast = run_with_switch("fast");
  RunTrace uctx = run_with_switch("ucontext");
  EXPECT_EQ(fast, uctx);
  // And against the thread backend, which has no fiber switch at all.
  RunTrace threads = run_workload(BackendKind::kThreads, 16, 8);
  EXPECT_EQ(fast, threads);
}

TEST(Determinism, WakeupBatchingPreservesTraceOrder) {
  // Batched notification fan-out coalesces K wakeup events into one; the
  // observable trace and end time must not move (events_executed legally
  // differs, so compare log + end_ns, not the whole struct).
  auto run_batched = [](bool batch) {
    RunTrace out;
    Engine eng(BackendKind::kFibers);
    eng.set_batch_wakeups(batch);
    Notification gate;
    int arrived = 0;
    const int pes = 24;
    for (int pe = 0; pe < pes; ++pe) {
      eng.spawn("pe" + std::to_string(pe), [&, pe](Process& p) {
        p.delay(Duration::ns(pe % 5));
        if (++arrived == pes) {
          gate.notify();
        } else {
          p.await(gate);
        }
        p.delay(Duration::ns(3 + pe));
        out.log.push_back("pe" + std::to_string(pe) + "@" +
                          std::to_string(eng.now().count_ns()));
      });
    }
    eng.run();
    out.events_executed = eng.events_executed();
    out.end_ns = eng.now().count_ns();
    return out;
  };
  RunTrace batched = run_batched(true);
  RunTrace unbatched = run_batched(false);
  EXPECT_EQ(unbatched.log, batched.log);
  EXPECT_EQ(unbatched.end_ns, batched.end_ns);
  EXPECT_LT(batched.events_executed, unbatched.events_executed)
      << "batching should execute fewer queue events on a broadcast wakeup";
}

}  // namespace
}  // namespace gdrshmem::sim
