// Stencil2D application tests: functional correctness against the serial
// reference, invariance across transports and process grids, and the
// paper's Fig 11 shape (Enhanced-GDR faster at scale).
#include <gtest/gtest.h>

#include "apps/stencil2d.hpp"

namespace gdrshmem::apps {
namespace {

hw::ClusterConfig cluster_for(int pes, int ppn = 2) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = (pes + ppn - 1) / ppn;
  cfg.pes_per_node = ppn;
  return cfg;
}

core::RuntimeOptions opts_for(core::TransportKind k,
                              std::size_t gpu_bytes = 32u << 20) {
  core::RuntimeOptions o;
  o.transport = k;
  o.gpu_heap_bytes = gpu_bytes;
  return o;
}

TEST(Stencil2D, MatchesSerialReference2x2) {
  Stencil2DConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 10;
  auto res = run_stencil2d(cluster_for(4), opts_for(core::TransportKind::kEnhancedGdr),
                           cfg);
  double ref = stencil2d_reference_checksum(cfg);
  EXPECT_NEAR(res.checksum, ref, std::abs(ref) * 1e-9 + 1e-9);
  EXPECT_EQ(res.cells_updated, 32u * 32u * 10u);
  EXPECT_GT(res.exec_time_ms, 0.0);
}

TEST(Stencil2D, MatchesSerialReference1x4AndBaseline) {
  Stencil2DConfig cfg;
  cfg.nx = 16;
  cfg.ny = 64;
  cfg.px = 1;
  cfg.py = 4;
  cfg.iterations = 7;
  double ref = stencil2d_reference_checksum(cfg);
  for (auto k : {core::TransportKind::kEnhancedGdr,
                 core::TransportKind::kHostPipeline}) {
    auto res = run_stencil2d(cluster_for(4), opts_for(k), cfg);
    EXPECT_NEAR(res.checksum, ref, std::abs(ref) * 1e-9 + 1e-9)
        << core::to_string(k);
  }
}

TEST(Stencil2D, SinglePeDegenerateGrid) {
  Stencil2DConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.px = 1;
  cfg.py = 1;
  cfg.iterations = 3;
  auto res = run_stencil2d(cluster_for(1, 1),
                           opts_for(core::TransportKind::kEnhancedGdr), cfg);
  EXPECT_NEAR(res.checksum, stencil2d_reference_checksum(cfg), 1e-9);
}

TEST(Stencil2D, RejectsBadDecomposition) {
  Stencil2DConfig cfg;
  cfg.px = 3;
  cfg.py = 1;  // 3 != 4 PEs
  EXPECT_THROW(run_stencil2d(cluster_for(4),
                             opts_for(core::TransportKind::kEnhancedGdr), cfg),
               core::ShmemError);
  cfg.px = 4;
  cfg.py = 1;
  cfg.nx = 30;  // not divisible by 4
  EXPECT_THROW(run_stencil2d(cluster_for(4),
                             opts_for(core::TransportKind::kEnhancedGdr), cfg),
               core::ShmemError);
}

TEST(Stencil2D, EnhancedFasterThanBaselineAtScale) {
  // Fig 11 shape: on multiple nodes the GDR design cuts execution time.
  Stencil2DConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.px = 4;
  cfg.py = 2;
  cfg.iterations = 25;
  cfg.functional = false;  // timing-only
  auto enhanced = run_stencil2d(
      cluster_for(8), opts_for(core::TransportKind::kEnhancedGdr), cfg);
  auto baseline = run_stencil2d(
      cluster_for(8), opts_for(core::TransportKind::kHostPipeline), cfg);
  EXPECT_LT(enhanced.exec_time_ms, baseline.exec_time_ms);
  double improvement = 1.0 - enhanced.exec_time_ms / baseline.exec_time_ms;
  EXPECT_GT(improvement, 0.05);  // paper reports 14-24%
  EXPECT_LT(improvement, 0.60);
}

TEST(Stencil2D, FunctionalFlagDoesNotChangeTiming) {
  Stencil2DConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 5;
  cfg.functional = true;
  auto a = run_stencil2d(cluster_for(4),
                         opts_for(core::TransportKind::kEnhancedGdr), cfg);
  cfg.functional = false;
  auto b = run_stencil2d(cluster_for(4),
                         opts_for(core::TransportKind::kEnhancedGdr), cfg);
  EXPECT_DOUBLE_EQ(a.exec_time_ms, b.exec_time_ms);
}

}  // namespace
}  // namespace gdrshmem::apps
