// Stencil2D application tests: functional correctness against the serial
// reference, invariance across transports and process grids, and the
// paper's Fig 11 shape (Enhanced-GDR faster at scale).
#include <gtest/gtest.h>

#include "apps/stencil2d.hpp"

namespace gdrshmem::apps {
namespace {

hw::ClusterConfig cluster_for(int pes, int ppn = 2) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = (pes + ppn - 1) / ppn;
  cfg.pes_per_node = ppn;
  return cfg;
}

core::RuntimeOptions opts_for(core::TransportKind k,
                              std::size_t gpu_bytes = 32u << 20) {
  core::RuntimeOptions o;
  o.transport = k;
  o.gpu_heap_bytes = gpu_bytes;
  return o;
}

TEST(Stencil2D, MatchesSerialReference2x2) {
  Stencil2DConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 10;
  auto res = run_stencil2d(cluster_for(4), opts_for(core::TransportKind::kEnhancedGdr),
                           cfg);
  double ref = stencil2d_reference_checksum(cfg);
  EXPECT_NEAR(res.checksum, ref, std::abs(ref) * 1e-9 + 1e-9);
  EXPECT_EQ(res.cells_updated, 32u * 32u * 10u);
  EXPECT_GT(res.exec_time_ms, 0.0);
}

TEST(Stencil2D, MatchesSerialReference1x4AndBaseline) {
  Stencil2DConfig cfg;
  cfg.nx = 16;
  cfg.ny = 64;
  cfg.px = 1;
  cfg.py = 4;
  cfg.iterations = 7;
  double ref = stencil2d_reference_checksum(cfg);
  for (auto k : {core::TransportKind::kEnhancedGdr,
                 core::TransportKind::kHostPipeline}) {
    auto res = run_stencil2d(cluster_for(4), opts_for(k), cfg);
    EXPECT_NEAR(res.checksum, ref, std::abs(ref) * 1e-9 + 1e-9)
        << core::to_string(k);
  }
}

TEST(Stencil2D, SinglePeDegenerateGrid) {
  Stencil2DConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.px = 1;
  cfg.py = 1;
  cfg.iterations = 3;
  auto res = run_stencil2d(cluster_for(1, 1),
                           opts_for(core::TransportKind::kEnhancedGdr), cfg);
  EXPECT_NEAR(res.checksum, stencil2d_reference_checksum(cfg), 1e-9);
}

TEST(Stencil2D, RejectsBadDecomposition) {
  Stencil2DConfig cfg;
  cfg.px = 3;
  cfg.py = 1;  // 3 != 4 PEs
  EXPECT_THROW(run_stencil2d(cluster_for(4),
                             opts_for(core::TransportKind::kEnhancedGdr), cfg),
               core::ShmemError);
  cfg.px = 4;
  cfg.py = 1;
  cfg.nx = 30;  // not divisible by 4
  EXPECT_THROW(run_stencil2d(cluster_for(4),
                             opts_for(core::TransportKind::kEnhancedGdr), cfg),
               core::ShmemError);
}

TEST(Stencil2D, EnhancedFasterThanBaselineAtScale) {
  // Fig 11 shape: on multiple nodes the GDR design cuts execution time.
  Stencil2DConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.px = 4;
  cfg.py = 2;
  cfg.iterations = 25;
  cfg.functional = false;  // timing-only
  auto enhanced = run_stencil2d(
      cluster_for(8), opts_for(core::TransportKind::kEnhancedGdr), cfg);
  auto baseline = run_stencil2d(
      cluster_for(8), opts_for(core::TransportKind::kHostPipeline), cfg);
  EXPECT_LT(enhanced.exec_time_ms, baseline.exec_time_ms);
  double improvement = 1.0 - enhanced.exec_time_ms / baseline.exec_time_ms;
  EXPECT_GT(improvement, 0.05);  // paper reports 14-24%
  EXPECT_LT(improvement, 0.60);
}

// ---------------------------------------------------------------------------
// Device-initiated variant: one resident kernel, in-kernel halo exchange.

core::RuntimeOptions device_opts(core::DeviceBackendKind kind) {
  core::RuntimeOptions o = opts_for(core::TransportKind::kEnhancedGdr);
  o.device_backend = kind;
  return o;
}

TEST(Stencil2DDevice, BackendsBitIdenticalWithHostDriven) {
  // The acceptance bar: gpu-ib, reverse offload, and the host-driven path
  // must agree to the last bit per seed — they run the same arithmetic in
  // the same order and differ only in modeled communication cost.
  Stencil2DConfig cfg;
  cfg.nx = 64;
  cfg.ny = 64;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 6;
  double ref = stencil2d_reference_checksum(cfg);
  for (sim::BackendKind engine :
       {sim::BackendKind::kFibers, sim::BackendKind::kThreads}) {
    auto host_o = device_opts(core::DeviceBackendKind::kGpuIb);
    host_o.sim_backend = engine;
    auto host = run_stencil2d(cluster_for(4), host_o, cfg);
    for (auto kind : {core::DeviceBackendKind::kGpuIb,
                      core::DeviceBackendKind::kReverseOffload}) {
      auto o = device_opts(kind);
      o.sim_backend = engine;
      auto dev = run_stencil2d_device(cluster_for(4), o, cfg);
      EXPECT_EQ(dev.checksum, host.checksum)
          << core::to_string(kind) << " on " << sim::to_string(engine);
      EXPECT_EQ(dev.cells_updated, host.cells_updated);
    }
    EXPECT_NEAR(host.checksum, ref, std::abs(ref) * 1e-9 + 1e-9);
  }
}

TEST(Stencil2DDevice, EnvSelectedBackendMatchesReference) {
  // Deliberately does NOT pin a device backend: RuntimeOptions' default
  // honors GDRSHMEM_DEVICE_BACKEND, so the tier-1 A/B stage drives this test
  // through both engines.
  Stencil2DConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 4;
  auto res = run_stencil2d_device(
      cluster_for(4), opts_for(core::TransportKind::kEnhancedGdr), cfg);
  double ref = stencil2d_reference_checksum(cfg);
  EXPECT_NEAR(res.checksum, ref, std::abs(ref) * 1e-9 + 1e-9);
}

TEST(Stencil2DDevice, MatchesReferenceOn1dGrid) {
  Stencil2DConfig cfg;
  cfg.nx = 16;
  cfg.ny = 64;
  cfg.px = 1;
  cfg.py = 4;
  cfg.iterations = 5;
  double ref = stencil2d_reference_checksum(cfg);
  auto res = run_stencil2d_device(
      cluster_for(4), device_opts(core::DeviceBackendKind::kGpuIb), cfg);
  EXPECT_NEAR(res.checksum, ref, std::abs(ref) * 1e-9 + 1e-9);
}

TEST(Stencil2DDevice, InKernelExchangeBeatsHostDriven) {
  // The tentpole's headline: keeping the kernel resident (no per-iteration
  // launches or barriers) must win on virtual time at scale.
  Stencil2DConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.px = 4;
  cfg.py = 2;
  cfg.iterations = 25;
  cfg.functional = false;
  cfg.per_cell_ns = 1.0;
  auto o = device_opts(core::DeviceBackendKind::kGpuIb);
  auto host = run_stencil2d(cluster_for(8), o, cfg);
  auto dev = run_stencil2d_device(cluster_for(8), o, cfg);
  EXPECT_LT(dev.exec_time_ms, host.exec_time_ms);
}

TEST(Stencil2DDevice, ProxyCrashMidKernelPreservesChecksum) {
  // Reverse offload under a fault plan that kills a serving proxy while the
  // resident kernels are mid-exchange: the run must recover and produce the
  // exact fault-free checksum.
  Stencil2DConfig cfg;
  cfg.nx = 64;
  cfg.ny = 64;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 6;
  auto clean_o = device_opts(core::DeviceBackendKind::kReverseOffload);
  auto clean = run_stencil2d_device(cluster_for(4), clean_o, cfg);
  auto faulty_o = device_opts(core::DeviceBackendKind::kReverseOffload);
  faulty_o.faults = sim::FaultPlan::parse("crash=0@120");
  auto faulty = run_stencil2d_device(cluster_for(4), faulty_o, cfg);
  EXPECT_EQ(faulty.checksum, clean.checksum);
}

TEST(Stencil2D, FunctionalFlagDoesNotChangeTiming) {
  Stencil2DConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iterations = 5;
  cfg.functional = true;
  auto a = run_stencil2d(cluster_for(4),
                         opts_for(core::TransportKind::kEnhancedGdr), cfg);
  cfg.functional = false;
  auto b = run_stencil2d(cluster_for(4),
                         opts_for(core::TransportKind::kEnhancedGdr), cfg);
  EXPECT_DOUBLE_EQ(a.exec_time_ms, b.exec_time_ms);
}

}  // namespace
}  // namespace gdrshmem::apps
