// GPULBM tests: mass conservation (the lattice invariant), correctness
// across transports/decompositions, and the paper's Fig 12 shape.
#include <gtest/gtest.h>

#include "apps/lbm.hpp"

namespace gdrshmem::apps {
namespace {

hw::ClusterConfig cluster_for(int pes, int ppn = 2) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = (pes + ppn - 1) / ppn;
  cfg.pes_per_node = ppn;
  return cfg;
}

core::RuntimeOptions opts_for(core::TransportKind k,
                              std::size_t gpu_bytes = 48u << 20) {
  core::RuntimeOptions o;
  o.transport = k;
  o.gpu_heap_bytes = gpu_bytes;
  return o;
}

TEST(Lbm, ConservesMassAcrossEvolution) {
  LbmConfig cfg;
  cfg.x = 16;
  cfg.y = 16;
  cfg.z = 16;
  cfg.iterations = 15;
  auto res = run_lbm(cluster_for(4), opts_for(core::TransportKind::kEnhancedGdr),
                     cfg);
  // Phase blob mixes +1/-1: magnitudes ~1e3; allow float rounding drift.
  EXPECT_NEAR(res.phase_mass_final, res.phase_mass_initial,
              1e-3 * std::abs(res.phase_mass_initial) + 1e-2);
  EXPECT_NEAR(res.fluid_mass_final, res.fluid_mass_initial,
              1e-4 * res.fluid_mass_initial);
  EXPECT_GT(res.fluid_mass_initial, 0.0);
  EXPECT_GT(res.evolution_ms, 0.0);
}

TEST(Lbm, HaloBytesMatchPaperFormula) {
  // Per step: (1 + 1 + 6) planes of X*Y floats in each z direction.
  LbmConfig cfg;
  cfg.x = 32;
  cfg.y = 16;
  cfg.z = 8;
  cfg.iterations = 1;
  auto res = run_lbm(cluster_for(2, 1),
                     opts_for(core::TransportKind::kEnhancedGdr), cfg);
  EXPECT_EQ(res.halo_bytes_per_step, 2u * 8u * 32u * 16u * sizeof(float));
}

TEST(Lbm, ResultIndependentOfDecomposition) {
  LbmConfig cfg;
  cfg.x = 8;
  cfg.y = 8;
  cfg.z = 16;
  cfg.iterations = 8;
  auto res2 = run_lbm(cluster_for(2, 1),
                      opts_for(core::TransportKind::kEnhancedGdr), cfg);
  auto res4 = run_lbm(cluster_for(4),
                      opts_for(core::TransportKind::kEnhancedGdr), cfg);
  // Same global lattice, different Z decomposition: identical physics.
  EXPECT_NEAR(res2.phase_mass_final, res4.phase_mass_final,
              1e-3 * std::abs(res2.phase_mass_final) + 1e-2);
  EXPECT_NEAR(res2.fluid_mass_final, res4.fluid_mass_final,
              1e-4 * res2.fluid_mass_final);
}

TEST(Lbm, BaselineTransportSameResultSlowerClock) {
  LbmConfig cfg;
  cfg.x = 16;
  cfg.y = 16;
  cfg.z = 8;
  cfg.iterations = 6;
  auto enh = run_lbm(cluster_for(4), opts_for(core::TransportKind::kEnhancedGdr),
                     cfg);
  auto base = run_lbm(cluster_for(4),
                      opts_for(core::TransportKind::kHostPipeline), cfg);
  EXPECT_NEAR(enh.phase_mass_final, base.phase_mass_final,
              1e-3 * std::abs(enh.phase_mass_final) + 1e-2);
  EXPECT_LT(enh.evolution_ms, base.evolution_ms);
}

TEST(Lbm, RejectsIndivisibleZ) {
  LbmConfig cfg;
  cfg.z = 10;  // 10 % 4 != 0
  EXPECT_THROW(
      run_lbm(cluster_for(4), opts_for(core::TransportKind::kEnhancedGdr), cfg),
      core::ShmemError);
}

TEST(Lbm, Fig12ShapeEvolutionImprovement) {
  // Strong-scaling-like point: small per-PE volume makes communication
  // dominate, where the paper reports 45-70% improvements.
  LbmConfig cfg;
  cfg.x = 64;
  cfg.y = 64;
  cfg.z = 16;  // 2 planes per PE: communication dominates
  cfg.iterations = 10;
  cfg.functional = false;
  cfg.per_cell_ns = 1.0;
  auto enh = run_lbm(cluster_for(8), opts_for(core::TransportKind::kEnhancedGdr),
                     cfg);
  auto base = run_lbm(cluster_for(8),
                      opts_for(core::TransportKind::kHostPipeline), cfg);
  double improvement = 1.0 - enh.evolution_ms / base.evolution_ms;
  EXPECT_GT(improvement, 0.15);
  EXPECT_LT(improvement, 0.85);
}

}  // namespace
}  // namespace gdrshmem::apps
