// Checkpoint/restore service coverage: the pmem pool allocator (first fit,
// keyed release, repack with pinning), the open-loop traffic generator's
// determinism, and the end-to-end service — fault-free, under eviction
// pressure, and under a seeded fault plan (proxy crash + P2P revocation
// mid-checkpoint) where the durability contract is zero lost acknowledged
// checkpoints and bit-identical digests on both engine backends.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/checkpoint/pool.hpp"
#include "apps/checkpoint/service.hpp"
#include "apps/checkpoint/traffic.hpp"

namespace gdrshmem::apps::ckpt {
namespace {

hw::ClusterConfig cluster(int nodes, int ppn) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.pes_per_node = ppn;
  return cfg;
}

core::RuntimeOptions service_options() {
  core::RuntimeOptions o;
  o.transport = core::TransportKind::kEnhancedGdr;
  o.pmem_heap_bytes = 1u << 16;
  return o;
}

CheckpointConfig small_config() {
  CheckpointConfig cfg;
  cfg.num_servers = 2;
  cfg.pool_bytes = 1u << 16;
  cfg.chunk_bytes = 1024;
  cfg.dir_slots = 4;
  cfg.traffic.seed = 7;
  cfg.traffic.mean_interarrival_us = 40.0;
  cfg.traffic.requests_per_client = 8;
  cfg.traffic.restore_fraction = 0.3;
  cfg.traffic.min_bytes = 1024;
  cfg.traffic.max_bytes = 8192;
  return cfg;
}

// ---- PmemPool ---------------------------------------------------------------

TEST(PmemPoolTest, FirstFitAndRelease) {
  PmemPool pool(16 * 1024, 1024);
  auto a = pool.allocate(1, 1000);   // rounds to 1K at offset 0
  auto b = pool.allocate(2, 2048);   // 2K at 1K
  auto c = pool.allocate(3, 1024);   // 1K at 3K
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->offset, 0u);
  EXPECT_EQ(a->bytes, 1024u);
  EXPECT_EQ(b->offset, 1024u);
  EXPECT_EQ(c->offset, 3072u);
  EXPECT_EQ(pool.used_bytes(), 4096u);
  // Release the middle extent: first fit reuses its gap for a small
  // allocation but skips it for a larger one.
  EXPECT_TRUE(pool.release(2));
  EXPECT_FALSE(pool.release(2));  // idempotent
  auto d = pool.allocate(4, 1024);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->offset, 1024u);
  auto e = pool.allocate(5, 4096);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->offset, 4096u);  // after c, not in the remaining 1K gap
}

TEST(PmemPoolTest, ExhaustionReturnsNullopt) {
  PmemPool pool(4096, 1024);
  EXPECT_TRUE(pool.allocate(1, 4096));
  EXPECT_FALSE(pool.allocate(2, 1));
  EXPECT_TRUE(pool.release(1));
  EXPECT_TRUE(pool.allocate(2, 1));
}

TEST(PmemPoolTest, FragmentationAndRepack) {
  PmemPool pool(8 * 1024, 1024);
  ASSERT_TRUE(pool.allocate(1, 2048));
  ASSERT_TRUE(pool.allocate(2, 2048));
  ASSERT_TRUE(pool.allocate(3, 2048));
  ASSERT_TRUE(pool.allocate(4, 2048));
  pool.release(1);
  pool.release(3);
  // 4K free but split into two 2K holes: a 4K allocation needs a repack.
  EXPECT_EQ(pool.free_bytes(), 4096u);
  EXPECT_EQ(pool.largest_free_run(), 2048u);
  EXPECT_FALSE(pool.allocate(9, 4096));
  std::vector<std::uint64_t> moved;
  std::size_t n = pool.repack(
      [&](std::uint64_t key, std::size_t old_off, std::size_t new_off,
          std::size_t bytes) {
        moved.push_back(key);
        EXPECT_LT(new_off, old_off);
        EXPECT_EQ(bytes, 2048u);
      });
  EXPECT_EQ(n, 2u);  // keys 2 and 4 slide down
  EXPECT_EQ(moved, (std::vector<std::uint64_t>{2, 4}));
  EXPECT_EQ(pool.largest_free_run(), 4096u);
  EXPECT_EQ(pool.find(2)->offset, 0u);
  EXPECT_EQ(pool.find(4)->offset, 2048u);
  EXPECT_TRUE(pool.allocate(9, 4096));
}

TEST(PmemPoolTest, RepackSkipsPinnedExtents) {
  PmemPool pool(8 * 1024, 1024);
  ASSERT_TRUE(pool.allocate(1, 1024));
  ASSERT_TRUE(pool.allocate(2, 1024));
  ASSERT_TRUE(pool.allocate(3, 1024));
  ASSERT_TRUE(pool.allocate(4, 1024));
  pool.release(1);
  pool.release(3);
  std::size_t n = pool.repack(
      [&](std::uint64_t, std::size_t, std::size_t, std::size_t) {},
      [](std::uint64_t key) { return key == 2; });  // 2 must not move
  // The gap below pinned 2 stays (compaction cannot cross a pinned extent);
  // only 4 slides into the gap freed by 3.
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(pool.find(2)->offset, 1024u);
  EXPECT_EQ(pool.find(4)->offset, 2048u);
  EXPECT_EQ(pool.largest_free_run(), 8 * 1024u - 3072u);
}

TEST(PmemPoolTest, RejectsBadGeometry) {
  EXPECT_THROW(PmemPool(4096, 1000), std::invalid_argument);  // not a pow2
  EXPECT_THROW(PmemPool(512, 1024), std::invalid_argument);   // < one chunk
  PmemPool pool(4096, 1024);
  ASSERT_TRUE(pool.allocate(1, 10));
  EXPECT_THROW(pool.allocate(1, 10), std::invalid_argument);  // key reuse
}

// ---- traffic ----------------------------------------------------------------

TEST(TrafficTest, DeterministicPerSeedAndClient) {
  OpenLoopParams p;
  p.seed = 42;
  p.requests_per_client = 32;
  auto a = make_open_loop(p, 3);
  auto b = make_open_loop(p, 3);
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_us, b[i].at_us);
    EXPECT_EQ(a[i].restore, b[i].restore);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
  auto c = make_open_loop(p, 4);  // a different client draws differently
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at_us != c[i].at_us || a[i].bytes != c[i].bytes) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficTest, ShapeRespectsParams) {
  OpenLoopParams p;
  p.seed = 9;
  p.requests_per_client = 200;
  p.min_bytes = 2048;
  p.max_bytes = 32768;
  p.restore_fraction = 0.25;
  auto reqs = make_open_loop(p, 0);
  EXPECT_FALSE(reqs.front().restore);  // first op is always a checkpoint
  double prev = 0;
  int restores = 0;
  for (const auto& r : reqs) {
    EXPECT_GT(r.at_us, prev);  // arrivals strictly increase
    prev = r.at_us;
    if (r.restore) {
      ++restores;
      EXPECT_EQ(r.bytes, 0u);
    } else {
      EXPECT_GE(r.bytes, p.min_bytes);
      EXPECT_LE(r.bytes, (p.max_bytes + 63) / 64 * 64);
      EXPECT_EQ(r.bytes % 64, 0u);
    }
  }
  EXPECT_GT(restores, 20);   // ~50 expected
  EXPECT_LT(restores, 100);
}

// ---- service end-to-end -----------------------------------------------------

TEST(CheckpointServiceTest, FaultFreeServesAndRestores) {
  auto res = run_checkpoint_service(cluster(3, 4), service_options(),
                                    small_config());
  EXPECT_GT(res.checkpoints_acked, 0u);
  EXPECT_GT(res.restores_ok, 0u);
  EXPECT_EQ(res.lost_acked, 0u);
  EXPECT_GT(res.bytes_acked, 0u);
  EXPECT_GT(res.goodput_mbps, 0.0);
  EXPECT_GT(res.makespan_ms, 0.0);
  EXPECT_GT(res.ckpt_p50_ns, 0u);
  EXPECT_GE(res.ckpt_p99_ns, res.ckpt_p50_ns);
  EXPECT_GE(res.ckpt_p999_ns, res.ckpt_p99_ns);
  EXPECT_GT(res.restore_p50_ns, 0u);
}

TEST(CheckpointServiceTest, EvictionPressureNeverLosesLatest) {
  // A deliberately tight pool under many large checkpoints: big enough that
  // second versions land (and then turn cold), small enough that grants must
  // evict them and repack — yet every restore of a latest-acked version is
  // byte-identical. (Smaller pools just reject everything: the latest acked
  // version per client is never evictable, and those alone overflow 16K.)
  auto cfg = small_config();
  cfg.pool_bytes = 32 * 1024;
  cfg.chunk_bytes = 1024;
  cfg.dir_slots = 2;
  cfg.traffic.requests_per_client = 10;
  cfg.traffic.min_bytes = 2048;
  cfg.traffic.max_bytes = 6144;
  auto res = run_checkpoint_service(cluster(3, 4), service_options(), cfg);
  EXPECT_GT(res.checkpoints_acked, 0u);
  EXPECT_EQ(res.lost_acked, 0u);
  // The pressure actually materialized: space was reclaimed some way —
  // eviction, slot supersede, or both.
  EXPECT_GT(res.evictions + res.supersedes, 0u);
}

TEST(CheckpointServiceTest, DeterministicAcrossEngineBackends) {
  auto cfg = small_config();
  auto opts = service_options();
  opts.sim_backend = sim::BackendKind::kFibers;
  auto a = run_checkpoint_service(cluster(3, 4), opts, cfg);
  opts.sim_backend = sim::BackendKind::kThreads;
  auto b = run_checkpoint_service(cluster(3, 4), opts, cfg);
  EXPECT_EQ(a.digest, b.digest);  // includes virtual-time latencies
  EXPECT_EQ(a.checkpoints_acked, b.checkpoints_acked);
  EXPECT_EQ(a.restores_ok, b.restores_ok);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
}

TEST(CheckpointServiceTest, SurvivesProxyCrashAndP2pRevokeMidCheckpoint) {
  auto cfg = small_config();
  auto opts = service_options();
  // Crash the proxy on the server node and revoke P2P on a client node
  // while traffic is in flight; staged transfers replay, GPU-source puts
  // reroute through host staging.
  opts.faults = sim::FaultPlan::parse("seed=5,crash=0@150,revoke=1@120");
  auto res = run_checkpoint_service(cluster(3, 4), opts, cfg);
  EXPECT_GT(res.checkpoints_acked, 0u);
  EXPECT_GT(res.restores_ok, 0u);
  EXPECT_EQ(res.lost_acked, 0u);  // zero lost acknowledged checkpoints
}

TEST(CheckpointServiceTest, FaultPlanDeterministicAcrossBackends) {
  auto cfg = small_config();
  auto opts = service_options();
  opts.faults = sim::FaultPlan::parse("seed=5,crash=0@150,revoke=1@120");
  opts.sim_backend = sim::BackendKind::kFibers;
  auto a = run_checkpoint_service(cluster(3, 4), opts, cfg);
  opts.sim_backend = sim::BackendKind::kThreads;
  auto b = run_checkpoint_service(cluster(3, 4), opts, cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.lost_acked, 0u);
  EXPECT_EQ(b.lost_acked, 0u);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
}

TEST(CheckpointServiceTest, RequiresPmemHeapAndServers) {
  auto cfg = small_config();
  core::RuntimeOptions no_pmem;
  no_pmem.transport = core::TransportKind::kEnhancedGdr;
  EXPECT_THROW(run_checkpoint_service(cluster(3, 4), no_pmem, cfg),
               core::ShmemError);
  auto opts = service_options();
  cfg.num_servers = 1;
  EXPECT_THROW(run_checkpoint_service(cluster(3, 4), opts, cfg),
               core::ShmemError);
  cfg.num_servers = 12;  // every PE a server, no clients
  EXPECT_THROW(run_checkpoint_service(cluster(3, 4), opts, cfg),
               core::ShmemError);
}

}  // namespace
}  // namespace gdrshmem::apps::ckpt
