// Protocol-selection tests: the Enhanced-GDR hybrid must pick exactly the
// protocol Section III prescribes for each configuration and size, and the
// resulting latencies must sit in the bands the paper reports.
#include <gtest/gtest.h>

#include <vector>

#include "core/proxy.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

struct ProtoExpect {
  bool intra;
  bool local_dev;
  Domain remote;
  std::size_t bytes;
  bool is_put;
  Protocol expected;
};

std::string proto_case_name(const ::testing::TestParamInfo<ProtoExpect>& info) {
  const ProtoExpect& c = info.param;
  std::string s = c.intra ? "Intra" : "Inter";
  s += c.local_dev ? "D" : "H";
  s += c.remote == Domain::kGpu ? "D" : "H";
  s += std::to_string(c.bytes);
  s += c.is_put ? "Put" : "Get";
  return s;
}

class EnhancedProtocolSelection : public ::testing::TestWithParam<ProtoExpect> {};

TEST_P(EnhancedProtocolSelection, PicksPaperProtocol) {
  const ProtoExpect c = GetParam();
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 8u << 20;
  opts.gpu_heap_bytes = 8u << 20;
  Runtime rt(make_cluster(2, 2), opts);
  const int target = c.intra ? 1 : 2;
  std::uint64_t ops_before = 0, bytes_before = 0, ops_after = 0, bytes_after = 0;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(c.bytes, c.remote);
    std::vector<std::byte> host_local(c.bytes);
    void* local = host_local.data();
    if (c.local_dev) local = ctx.cuda_malloc(c.bytes);
    if (ctx.my_pe() == 0) {
      ops_before = ctx.runtime().stats().ops(c.expected);
      bytes_before = ctx.runtime().stats().bytes_by_protocol[static_cast<std::size_t>(
          c.expected)];
      if (c.is_put) {
        ctx.putmem(sym, local, c.bytes, target);
      } else {
        ctx.getmem(local, sym, c.bytes, target);
      }
      ctx.quiet();
      ops_after = ctx.runtime().stats().ops(c.expected);
      bytes_after = ctx.runtime().stats().bytes_by_protocol[static_cast<std::size_t>(
          c.expected)];
    }
    ctx.barrier_all();
  });
  // Barrier/collective internals also move 8-byte flags over the host
  // protocols, so assert on deltas: the op itself must have been counted
  // under the expected protocol with its full payload.
  EXPECT_GE(ops_after - ops_before, 1u)
      << "expected protocol " << to_string(c.expected);
  EXPECT_GE(bytes_after - bytes_before, c.bytes);
}

constexpr std::size_t kSmall = 1024;
constexpr std::size_t kLarge = 1u << 20;

INSTANTIATE_TEST_SUITE_P(
    SectionIII, EnhancedProtocolSelection,
    ::testing::Values(
        // ---- intra-node (Figs 2, 3) ----
        ProtoExpect{true, false, Domain::kHost, kSmall, true, Protocol::kHostShm},
        ProtoExpect{true, false, Domain::kGpu, kSmall, true, Protocol::kLoopbackGdr},
        ProtoExpect{true, false, Domain::kGpu, kLarge, true, Protocol::kIpcCopy},
        ProtoExpect{true, true, Domain::kHost, kSmall, true, Protocol::kLoopbackGdr},
        ProtoExpect{true, true, Domain::kHost, kLarge, true, Protocol::kShmemPtrCopy},
        ProtoExpect{true, true, Domain::kGpu, kSmall, true, Protocol::kLoopbackGdr},
        ProtoExpect{true, true, Domain::kGpu, kLarge, true, Protocol::kIpcCopy},
        ProtoExpect{true, false, Domain::kGpu, kSmall, false, Protocol::kLoopbackGdr},
        ProtoExpect{true, false, Domain::kGpu, kLarge, false, Protocol::kIpcCopy},
        ProtoExpect{true, true, Domain::kHost, kLarge, false, Protocol::kShmemPtrCopy},
        // ---- inter-node (Figs 4, 5) ----
        ProtoExpect{false, false, Domain::kHost, kSmall, true, Protocol::kDirectRdma},
        ProtoExpect{false, true, Domain::kGpu, kSmall, true, Protocol::kDirectGdr},
        ProtoExpect{false, true, Domain::kGpu, kLarge, true, Protocol::kPipelineGdrWrite},
        ProtoExpect{false, true, Domain::kHost, kLarge, true, Protocol::kPipelineGdrWrite},
        ProtoExpect{false, false, Domain::kGpu, kSmall, true, Protocol::kDirectGdr},
        ProtoExpect{false, false, Domain::kGpu, kLarge, true, Protocol::kDirectGdr},
        ProtoExpect{false, true, Domain::kGpu, kSmall, false, Protocol::kDirectGdr},
        ProtoExpect{false, true, Domain::kGpu, kLarge, false, Protocol::kProxyGet},
        ProtoExpect{false, false, Domain::kGpu, kLarge, false, Protocol::kProxyGet},
        ProtoExpect{false, true, Domain::kHost, kLarge, false, Protocol::kDirectGdr}),
    proto_case_name);

TEST(ProtocolSelection, InterSocketLargePutUsesProxy) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  Runtime rt(make_cluster(2, 2, /*same_socket=*/false), opts);
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    std::vector<std::byte> host_src(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.putmem(g, host_src.data(), 1u << 20, 2);  // H-D large, inter-socket
      ctx.quiet();
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt.stats().ops(Protocol::kProxyPut), 1u);
  EXPECT_EQ(rt.proxy(1).puts_served(), 1u);
}

TEST(ProtocolSelection, InterSocketShrinksGdrWindow) {
  // 8 KB D-D put: direct GDR intra-socket, but beyond the shrunken window
  // inter-socket (32 KB / 4 = 8 KB limit still allows 8 KB; use 16 KB).
  auto run_cfg = [](bool same_socket) {
    RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
    Runtime rt(make_cluster(2, 2, same_socket), opts);
    rt.run([&](Ctx& ctx) {
      void* g = ctx.shmalloc(16 * 1024, Domain::kGpu);
      void* local = ctx.cuda_malloc(16 * 1024);
      if (ctx.my_pe() == 0) {
        ctx.putmem(g, local, 16 * 1024, 2);
        ctx.quiet();
      }
      ctx.barrier_all();
    });
    return std::pair{rt.stats().ops(Protocol::kDirectGdr),
                     rt.stats().ops(Protocol::kPipelineGdrWrite) +
                         rt.stats().ops(Protocol::kProxyPut)};
  };
  auto [direct_intra, staged_intra] = run_cfg(true);
  EXPECT_EQ(direct_intra, 1u);
  EXPECT_EQ(staged_intra, 0u);
  auto [direct_inter, staged_inter] = run_cfg(false);
  EXPECT_EQ(direct_inter, 0u);
  EXPECT_EQ(staged_inter, 1u);
}

TEST(ProtocolSelection, ProxyDisabledFallsBackToDirect) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.tuning.use_proxy = false;
  Runtime rt(make_cluster(2, 1), opts);
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.getmem(local, g, 1u << 20, 1);  // large D-D get
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt.stats().ops(Protocol::kProxyGet), 0u);
  EXPECT_EQ(rt.stats().ops(Protocol::kDirectGdr), 1u);
}

// ---------------------------------------------------------------------------
// Latency calibration: the bands the paper reports (Section V-B).

struct LatencyProbe {
  double put_us = 0;  // put+quiet, measured over iterations
};

double measure_put_us(TransportKind kind, bool intra, bool local_dev,
                      Domain remote, std::size_t bytes, int iters = 50) {
  RuntimeOptions opts = make_options(kind);
  Runtime rt(make_cluster(2, 2), opts);
  const int target = intra ? 1 : 2;
  sim::Duration elapsed;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(bytes, remote);
    std::vector<std::byte> host_local(bytes);
    void* local = host_local.data();
    if (local_dev) local = ctx.cuda_malloc(bytes);
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      // Warmup (registration, IPC opens).
      for (int i = 0; i < 5; ++i) {
        ctx.putmem(sym, local, bytes, target);
        ctx.quiet();
      }
      sim::Time t0 = ctx.now();
      for (int i = 0; i < iters; ++i) {
        ctx.putmem(sym, local, bytes, target);
        ctx.quiet();
      }
      elapsed = ctx.now() - t0;
    }
    ctx.barrier_all();
  });
  return elapsed.to_us() / iters;
}

TEST(Calibration, IntraNodeHdPutSmall) {
  // Paper: 2.4 us GDR vs 6.2 us IPC default for 4 B.
  double enhanced = measure_put_us(TransportKind::kEnhancedGdr, true, false,
                                   Domain::kGpu, 4);
  double baseline = measure_put_us(TransportKind::kHostPipeline, true, false,
                                   Domain::kGpu, 4);
  EXPECT_GT(enhanced, 1.2);
  EXPECT_LT(enhanced, 3.4);
  EXPECT_GT(baseline, 4.5);
  EXPECT_LT(baseline, 8.5);
  EXPECT_GT(baseline / enhanced, 2.0);  // the paper's >2x claim
}

TEST(Calibration, InterNodeDdPutSmall) {
  // Paper: 3.13 us direct GDR vs 20.9 us host pipeline for 8 B — 7x.
  double enhanced = measure_put_us(TransportKind::kEnhancedGdr, false, true,
                                   Domain::kGpu, 8);
  double baseline = measure_put_us(TransportKind::kHostPipeline, false, true,
                                   Domain::kGpu, 8);
  EXPECT_GT(enhanced, 2.0);
  EXPECT_LT(enhanced, 4.5);
  EXPECT_GT(baseline, 14.0);
  EXPECT_LT(baseline, 28.0);
  EXPECT_GT(baseline / enhanced, 4.5);
}

TEST(Calibration, InterNodeDd2KBUnder4us) {
  // Paper: "a 2KB message size transfer is achieved in under 4 us".
  double enhanced = measure_put_us(TransportKind::kEnhancedGdr, false, true,
                                   Domain::kGpu, 2048);
  EXPECT_LT(enhanced, 4.5);
}

TEST(Calibration, InterNodeHdPutSmall) {
  // Paper: 2.81 us for 8 B inter-node H-D put; 4 KB in 3.7 us.
  double small = measure_put_us(TransportKind::kEnhancedGdr, false, false,
                                Domain::kGpu, 8);
  double mid = measure_put_us(TransportKind::kEnhancedGdr, false, false,
                              Domain::kGpu, 4096);
  EXPECT_GT(small, 1.8);
  EXPECT_LT(small, 4.0);
  EXPECT_LT(mid, 5.5);
}

TEST(Calibration, IntraNodeDhLargePut40PercentWin) {
  // Paper Fig 7(b): shmem_ptr design reduces large D-H put latency ~40%.
  double enhanced = measure_put_us(TransportKind::kEnhancedGdr, true, true,
                                   Domain::kHost, 1u << 20, 10);
  double baseline = measure_put_us(TransportKind::kHostPipeline, true, true,
                                   Domain::kHost, 1u << 20, 10);
  double reduction = 1.0 - enhanced / baseline;
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.60);
}

TEST(Calibration, InterNodeLargePutConverges) {
  // Paper Fig 8(b): for large D-D puts both designs pipeline through
  // cudaMemcpy and should land close together.
  double enhanced = measure_put_us(TransportKind::kEnhancedGdr, false, true,
                                   Domain::kGpu, 4u << 20, 5);
  double baseline = measure_put_us(TransportKind::kHostPipeline, false, true,
                                   Domain::kGpu, 4u << 20, 5);
  EXPECT_LT(std::abs(enhanced - baseline) / baseline, 0.35);
}

}  // namespace
}  // namespace gdrshmem::core
