// Teams: split_strided membership and numbering, PE translation, nested
// splits, sync-pool slot lifecycle, and the team-variant collectives —
// including the C API handles.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gdrshmem/shmem.h"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

TEST(Team, WorldTeamShape) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             Team& w = ctx.team_world();
             EXPECT_EQ(w.n_pes(), ctx.n_pes());
             EXPECT_EQ(w.my_pe(), ctx.my_pe());
             EXPECT_EQ(w.slot(), 0);
             EXPECT_TRUE(w.is_world());
             EXPECT_THROW(ctx.team_destroy(&w), ShmemError);
           });
}

TEST(Team, SplitStridedMembershipAndNumbering) {
  run_spmd(make_cluster(2, 3), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             // Odd PEs of 6: {1, 3, 5}.
             Team* odds = ctx.team_split_strided(ctx.team_world(), 1, 2, 3);
             if (ctx.my_pe() % 2 == 1) {
               ASSERT_NE(odds, nullptr);
               EXPECT_EQ(odds->n_pes(), 3);
               EXPECT_EQ(odds->my_pe(), ctx.my_pe() / 2);
               EXPECT_EQ(odds->world_pe(2), 5);
               EXPECT_EQ(odds->index_of_world(3), 1);
               EXPECT_EQ(odds->index_of_world(2), -1);
               ctx.team_destroy(odds);
             } else {
               EXPECT_EQ(odds, nullptr);
             }
             ctx.barrier_all();
           });
}

TEST(Team, TranslateBetweenTeams) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             Team* evens = ctx.team_split_strided(ctx.team_world(), 0, 2, 2);
             Team* tail = ctx.team_split_strided(ctx.team_world(), 2, 1, 2);
             if (evens != nullptr) {
               // evens = {0, 2}; tail = {2, 3}. World 2 is evens#1, tail#0.
               EXPECT_EQ(Team::translate(*evens, 1, ctx.team_world()), 2);
               EXPECT_EQ(Team::translate(*evens, 0, ctx.team_world()), 0);
               if (tail != nullptr) {
                 EXPECT_EQ(Team::translate(*evens, 1, *tail), 0);
                 EXPECT_EQ(Team::translate(*evens, 0, *tail), -1);
               }
             }
             ctx.team_destroy(evens);
             ctx.team_destroy(tail);
             ctx.barrier_all();
           });
}

TEST(Team, NestedSplitComposesStride) {
  run_spmd(make_cluster(4, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             // evens = {0,2,4,6}; second-of-evens = {2, 6} (world stride 4).
             Team* evens = ctx.team_split_strided(ctx.team_world(), 0, 2, 4);
             Team* sub = nullptr;
             if (evens != nullptr) {
               sub = ctx.team_split_strided(*evens, 1, 2, 2);
             }
             if (sub != nullptr) {
               EXPECT_EQ(sub->n_pes(), 2);
               EXPECT_EQ(sub->world_pe(0), 2);
               EXPECT_EQ(sub->world_pe(1), 6);
               EXPECT_TRUE(ctx.my_pe() == 2 || ctx.my_pe() == 6);
               ctx.team_destroy(sub);
             }
             ctx.team_destroy(evens);
             ctx.barrier_all();
           });
}

TEST(Team, InvalidTripletThrows) {
  run_spmd(make_cluster(1, 4), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             EXPECT_THROW(ctx.team_split_strided(ctx.team_world(), 0, 1, 0),
                          ShmemError);
             EXPECT_THROW(ctx.team_split_strided(ctx.team_world(), 0, 2, 3),
                          ShmemError);
             EXPECT_THROW(ctx.team_split_strided(ctx.team_world(), -1, 1, 2),
                          ShmemError);
             EXPECT_THROW(ctx.team_split_strided(ctx.team_world(), 0, 0, 2),
                          ShmemError);
             ctx.barrier_all();
           });
}

TEST(Team, SlotExhaustionThrowsAndDestroyRecycles) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             // 15 team slots beyond the world's; the 16th split must fail
             // identically on every PE.
             std::vector<Team*> teams;
             for (int i = 0; i < 15; ++i) {
               teams.push_back(
                   ctx.team_split_strided(ctx.team_world(), 0, 1, 2));
               ASSERT_NE(teams.back(), nullptr);
             }
             EXPECT_THROW(ctx.team_split_strided(ctx.team_world(), 0, 1, 2),
                          ShmemError);
             // Destroy frees the slots for reuse.
             for (Team* t : teams) ctx.team_destroy(t);
             for (int round = 0; round < 20; ++round) {
               Team* t = ctx.team_split_strided(ctx.team_world(), 0, 1, 2);
               ASSERT_NE(t, nullptr);
               std::int64_t v = ctx.my_pe() + 1;
               std::int64_t sum = 0;
               auto* src = static_cast<std::int64_t*>(ctx.shmalloc(8));
               auto* dst = static_cast<std::int64_t*>(ctx.shmalloc(8));
               *src = v;
               ctx.team_reduce(*t, dst, src, 1, ReduceOp::kSum);
               sum = *dst;
               EXPECT_EQ(sum, 3);
               ctx.shfree(dst);
               ctx.shfree(src);
               ctx.team_destroy(t);
             }
             ctx.barrier_all();
           });
}

TEST(Team, CollectivesOnStridedTeam) {
  run_spmd(make_cluster(2, 3), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             constexpr std::size_t kN = 64;
             auto* buf = static_cast<std::int32_t*>(
                 ctx.shmalloc(kN * sizeof(std::int32_t)));
             auto* gathered = static_cast<std::int32_t*>(
                 ctx.shmalloc(3 * kN * sizeof(std::int32_t)));
             Team* odds = ctx.team_split_strided(ctx.team_world(), 1, 2, 3);
             if (odds != nullptr) {
               // Broadcast from team PE 1 (world 3).
               for (std::size_t i = 0; i < kN; ++i) {
                 buf[i] = ctx.my_pe() == 3 ? static_cast<std::int32_t>(1000 + i)
                                           : -1;
               }
               ctx.team_sync(*odds);
               ctx.team_broadcast(*odds, buf, buf, kN * sizeof(std::int32_t), 1);
               for (std::size_t i = 0; i < kN; ++i) {
                 ASSERT_EQ(buf[i], static_cast<std::int32_t>(1000 + i));
               }
               // Fcollect team-indexed blocks.
               for (std::size_t i = 0; i < kN; ++i) {
                 buf[i] = static_cast<std::int32_t>(100 * odds->my_pe() +
                                                    static_cast<int>(i % 7));
               }
               ctx.team_sync(*odds);
               ctx.team_fcollect(*odds, gathered, buf,
                                 kN * sizeof(std::int32_t));
               for (int p = 0; p < 3; ++p) {
                 for (std::size_t i = 0; i < kN; ++i) {
                   ASSERT_EQ(gathered[p * kN + i],
                             static_cast<std::int32_t>(100 * p +
                                                       static_cast<int>(i % 7)));
                 }
               }
               ctx.team_destroy(odds);
             }
             ctx.barrier_all();
           });
}

TEST(Team, DisjointTeamsReduceConcurrently) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             // Rows of a 2x2 grid: {0,1} and {2,3}. Both teams run their
             // reduction with no cross-team ordering.
             Team* mine = nullptr;
             for (int r = 0; r < 2; ++r) {
               Team* t = ctx.team_split_strided(ctx.team_world(), 2 * r, 1, 2);
               if (t != nullptr) mine = t;
             }
             ASSERT_NE(mine, nullptr);
             auto* src = static_cast<std::int64_t*>(ctx.shmalloc(8));
             auto* dst = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *src = 10 * ctx.my_pe() + 1;
             ctx.team_sync(*mine);
             ctx.team_reduce(*mine, dst, src, 1, ReduceOp::kSum);
             const std::int64_t expect = ctx.my_pe() < 2 ? 12 : 52;
             EXPECT_EQ(*dst, expect);
             ctx.team_destroy(mine);
             ctx.barrier_all();
           });
}

TEST(Team, CApiHandles) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             using capi::SHMEM_TEAM_INVALID;
             capi::shmem_team_t world = capi::shmem_team_world();
             EXPECT_EQ(capi::shmem_team_n_pes(world), 4);
             EXPECT_EQ(capi::shmem_team_my_pe(world), ctx.my_pe());
             EXPECT_EQ(capi::shmem_team_my_pe(SHMEM_TEAM_INVALID), -1);
             EXPECT_EQ(capi::shmem_team_n_pes(SHMEM_TEAM_INVALID), -1);

             capi::shmem_team_t evens = SHMEM_TEAM_INVALID;
             EXPECT_NE(capi::shmem_team_split_strided(SHMEM_TEAM_INVALID, 0, 2,
                                                      2, &evens),
                       0);
             EXPECT_EQ(capi::shmem_team_split_strided(world, 0, 2, 2, &evens),
                       0);
             if (ctx.my_pe() % 2 == 0) {
               ASSERT_NE(evens, SHMEM_TEAM_INVALID);
               EXPECT_EQ(capi::shmem_team_n_pes(evens), 2);
               EXPECT_EQ(capi::shmem_team_translate_pe(evens, 1, world), 2);
               EXPECT_EQ(capi::shmem_team_translate_pe(world, 1, evens), -1);
               capi::shmem_team_sync(evens);

               auto* src = static_cast<long long*>(capi::shmem_malloc(8));
               auto* dst = static_cast<long long*>(capi::shmem_malloc(8));
               *src = ctx.my_pe() + 1;
               capi::shmem_team_sync(evens);
               capi::shmem_long_sum_reduce(evens, dst, src, 1);
               EXPECT_EQ(*dst, 4);  // PEs 0 and 2 contribute 1 + 3
               capi::shmem_team_destroy(evens);
             } else {
               EXPECT_EQ(evens, SHMEM_TEAM_INVALID);
               // Non-members still made the collective shmalloc calls.
               auto* src = static_cast<long long*>(capi::shmem_malloc(8));
               auto* dst = static_cast<long long*>(capi::shmem_malloc(8));
               *src = 0;
               *dst = 0;
             }
             ctx.barrier_all();
           });
}

}  // namespace
}  // namespace gdrshmem::core
