// True one-sidedness (Fig 10): with the Enhanced-GDR design, put completion
// must not depend on what the target is doing; with the host-pipeline
// baseline, a busy target stalls the transfer.
#include <gtest/gtest.h>

#include "core/proxy.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

/// Measures source-side put+quiet time while the target busy-computes for
/// `target_compute_us` without entering the runtime.
double comm_time_with_busy_target(TransportKind kind, std::size_t bytes,
                                  double target_compute_us) {
  RuntimeOptions opts = make_options(kind);
  Runtime rt(make_cluster(2, 1), opts);
  sim::Duration comm;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(bytes, Domain::kGpu);
    void* local = ctx.cuda_malloc(bytes);
    // Warmup with an idle target.
    if (ctx.my_pe() == 0) {
      ctx.putmem(sym, local, bytes, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem(sym, local, bytes, 1);
      ctx.quiet();
      comm = ctx.now() - t0;
    } else {
      ctx.compute(sim::Duration::us(target_compute_us));  // no progress!
    }
    ctx.barrier_all();
  });
  return comm.to_us();
}

TEST(Overlap, EnhancedPutUnaffectedByBusyTarget8KB) {
  double idle = comm_time_with_busy_target(TransportKind::kEnhancedGdr, 8192, 0);
  double busy =
      comm_time_with_busy_target(TransportKind::kEnhancedGdr, 8192, 500);
  EXPECT_NEAR(busy, idle, idle * 0.05) << "communication time must not grow";
}

TEST(Overlap, EnhancedPutUnaffectedByBusyTarget1MB) {
  double idle =
      comm_time_with_busy_target(TransportKind::kEnhancedGdr, 1u << 20, 0);
  double busy =
      comm_time_with_busy_target(TransportKind::kEnhancedGdr, 1u << 20, 2000);
  EXPECT_NEAR(busy, idle, idle * 0.05);
}

TEST(Overlap, BaselinePutStallsOnBusyTarget8KB) {
  double idle =
      comm_time_with_busy_target(TransportKind::kHostPipeline, 8192, 0);
  double busy =
      comm_time_with_busy_target(TransportKind::kHostPipeline, 8192, 500);
  // The target performs the last hop only after its compute ends: the
  // source-observed communication time grows with the target compute.
  EXPECT_GT(busy, 400.0);
  EXPECT_GT(busy, 3.0 * idle);
}

TEST(Overlap, BaselinePutStallsOnBusyTarget1MB) {
  double idle =
      comm_time_with_busy_target(TransportKind::kHostPipeline, 1u << 20, 0);
  double busy =
      comm_time_with_busy_target(TransportKind::kHostPipeline, 1u << 20, 2000);
  EXPECT_GT(busy, 1800.0);
  EXPECT_GT(busy, 1.5 * idle);
}

TEST(Overlap, ProxyGetDoesNotInvolveTargetPe) {
  // A large get from a busy remote GPU: the proxy serves it while the
  // owning PE computes.
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  Runtime rt(make_cluster(2, 1), opts);
  sim::Duration comm;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.getmem(local, sym, 1u << 20, 1);
      comm = ctx.now() - t0;
    } else {
      ctx.compute(sim::Duration::us(5000));
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt.proxy(1).gets_served(), 1u);
  // 1 MB at wire speed ~ 160 us + pipeline latency; far below the 5 ms the
  // target spends computing.
  EXPECT_LT(comm.to_us(), 1000.0);
}

TEST(Overlap, NbiPutOverlapsSourceCompute) {
  // put_nbi returns immediately; source compute overlaps the wire time.
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  Runtime rt(make_cluster(2, 1), opts);
  sim::Duration total;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(64 * 1024, Domain::kHost);
    std::vector<std::byte> local(64 * 1024);
    if (ctx.my_pe() == 0) {  // warmup: absorb the registration miss
      ctx.putmem_nbi(sym, local.data(), local.size(), 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem_nbi(sym, local.data(), local.size(), 1);
      ctx.compute(sim::Duration::us(50));  // overlapped work
      ctx.quiet();
      total = ctx.now() - t0;
    }
    ctx.barrier_all();
  });
  // 64 KB at 6397 MB/s ~ 10 us; with overlap total ~ max(50, transfer) + eps.
  EXPECT_LT(total.to_us(), 70.0);
  EXPECT_GT(total.to_us(), 49.0);
}

}  // namespace
}  // namespace gdrshmem::core
