// The OpenSHMEM-1.4-shaped C API surface: new names vs the classic aliases
// (same bytes, same virtual time), shmem_calloc zeroing on both heaps, and
// RuntimeOptions::from_env validation of every GDRSHMEM_* variable.
// This file exercises the deprecated classic spellings on purpose.
#define GDRSHMEM_NO_DEPRECATE
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "gdrshmem/shmem.h"
#include "test_util.hpp"

namespace gdrshmem {
namespace {

using core::Ctx;
using core::Domain;
using core::RuntimeOptions;
using core::ShmemError;
using core::TransportKind;
using core::testing::make_cluster;
using core::testing::make_options;
using core::testing::run_spmd;

// ---- 1.4 names vs classic aliases -----------------------------------------

/// The same SPMD program written against either the 1.4 names or the classic
/// aliases; returns the run's final virtual time so both spellings can be
/// checked for bit-identical cost.
std::int64_t capi_workload(bool classic) {
  constexpr std::size_t kN = 64;
  auto rt = run_spmd(
      make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
      [&](Ctx& ctx) {
        capi::Bind bind(ctx);
        const int np = capi::shmem_n_pes();
        const int me = capi::shmem_my_pe();
        const int target = (me + 1) % np;
        auto* d = static_cast<double*>(
            classic ? capi::shmalloc(kN * sizeof(double))
                    : capi::shmem_malloc(kN * sizeof(double)));
        auto* ctr = static_cast<long long*>(
            classic ? capi::shmalloc(sizeof(long long))
                    : capi::shmem_malloc(sizeof(long long)));
        *ctr = 0;
        double vals[kN];
        for (std::size_t i = 0; i < kN; ++i) vals[i] = me * 100.0 + i;
        capi::shmem_barrier_all();

        long long old;
        if (classic) {
          capi::shmem_double_put(d, vals, kN, target);
          old = capi::shmem_longlong_fadd(ctr, 5, target);
          capi::shmem_longlong_add(ctr, 2, target);
        } else {
          capi::shmem_put(d, vals, kN, target);
          old = capi::shmem_atomic_fetch_add(ctr, 5LL, target);
          capi::shmem_atomic_add(ctr, 2LL, target);
        }
        EXPECT_EQ(old, 0);
        capi::shmem_quiet();
        capi::shmem_barrier_all();

        const int from = (me + np - 1) % np;
        for (std::size_t i = 0; i < kN; ++i) {
          EXPECT_DOUBLE_EQ(d[i], from * 100.0 + i);
        }
        EXPECT_EQ(*ctr, 7);
        capi::shmem_barrier_all();
        if (classic) {
          capi::shfree(d);
          capi::shfree(ctr);
        } else {
          capi::shmem_free(d);
          capi::shmem_free(ctr);
        }
      });
  return rt->engine().now().count_ns();
}

TEST(Api14, AliasesMatchNewNamesBitForBit) {
  std::int64_t modern = capi_workload(/*classic=*/false);
  std::int64_t classic = capi_workload(/*classic=*/true);
  EXPECT_EQ(modern, classic)
      << "classic aliases must be zero-cost wrappers over the 1.4 names";
}

TEST(Api14, TypedOverloadsMoveTheRightBytes) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             auto* ll = static_cast<long long*>(capi::shmem_malloc(4 * 8));
             auto* f = static_cast<float*>(capi::shmem_malloc(4 * 4));
             auto* ii = static_cast<int*>(capi::shmem_malloc(4 * 4));
             if (capi::shmem_my_pe() == 0) {
               long long lv[4] = {1, -2, 3, -4};
               float fv[4] = {0.5f, 1.5f, 2.5f, 3.5f};
               int iv[4] = {10, 20, 30, 40};
               capi::shmem_put(ll, lv, 4, 1);
               capi::shmem_put(f, fv, 4, 1);
               capi::shmem_put(ii, iv, 4, 1);
               capi::shmem_quiet();
             }
             capi::shmem_barrier_all();
             if (capi::shmem_my_pe() == 1) {
               EXPECT_EQ(ll[1], -2);
               EXPECT_FLOAT_EQ(f[3], 3.5f);
               EXPECT_EQ(ii[2], 30);
               long long back[4] = {};
               capi::shmem_get(back, ll, 4, 1);  // self-get via API
               EXPECT_EQ(back[3], -4);
             }
             capi::shmem_barrier_all();
           });
}

TEST(Api14, NbiOverloadsCompleteAtQuiet) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             auto* d = static_cast<double*>(capi::shmem_malloc(8 * 8));
             if (capi::shmem_my_pe() == 0) {
               double v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
               capi::shmem_put_nbi(d, v, 8, 1);
               capi::shmem_quiet();
             }
             capi::shmem_barrier_all();
             if (capi::shmem_my_pe() == 1) {
               EXPECT_DOUBLE_EQ(d[7], 8.0);
               double back[8] = {};
               capi::shmem_get_nbi(back, d, 8, 1);
               capi::shmem_quiet();
               EXPECT_DOUBLE_EQ(back[0], 1.0);
             }
             capi::shmem_barrier_all();
           });
}

TEST(Api14, CallocZeroesBothDomains) {
  run_spmd(make_cluster(1, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             constexpr std::size_t kN = 4096;
             for (Domain dom : {Domain::kHost, Domain::kGpu}) {
               // Dirty a block, free it, then calloc: the (likely recycled)
               // memory must come back zeroed, not stale.
               auto* dirty =
                   static_cast<unsigned char*>(capi::shmem_malloc(kN, dom));
               for (std::size_t i = 0; i < kN; ++i) dirty[i] = 0xab;
               capi::shmem_free(dirty);
               auto* z = static_cast<unsigned char*>(
                   capi::shmem_calloc(kN / 8, 8, dom));
               for (std::size_t i = 0; i < kN; ++i) {
                 ASSERT_EQ(z[i], 0u) << "domain " << static_cast<int>(dom)
                                     << " byte " << i;
               }
               capi::shmem_free(z);
             }
           });
}

// ---- RuntimeOptions::from_env ---------------------------------------------

/// Sets an environment variable for the current scope, restoring on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

TEST(FromEnv, NoVariablesGivesDefaults) {
  RuntimeOptions opts = RuntimeOptions::from_env();
  RuntimeOptions def;
  EXPECT_EQ(opts.transport, def.transport);
  EXPECT_EQ(opts.host_heap_bytes, def.host_heap_bytes);
  EXPECT_EQ(opts.tuning.use_proxy, def.tuning.use_proxy);
  EXPECT_FALSE(opts.faults.enabled());
}

TEST(FromEnv, ParsesAndValidatesKnownKeys) {
  ScopedEnv e1("GDRSHMEM_TRANSPORT", "host-pipeline");
  ScopedEnv e2("GDRSHMEM_HOST_HEAP", "4M");
  ScopedEnv e3("GDRSHMEM_GPU_HEAP", "512K");
  ScopedEnv e4("GDRSHMEM_USE_PROXY", "off");
  ScopedEnv e5("GDRSHMEM_PIPELINE_CHUNK", "32K");
  ScopedEnv e6("GDRSHMEM_SIM_BACKEND", "threads");
  ScopedEnv e7("GDRSHMEM_FAULTS", "seed=5,wire_error_rate=1e-3,crash=1@250");
  ScopedEnv e8("GDRSHMEM_SIM_QUEUE", "heap");
  ScopedEnv e9("GDRSHMEM_SIM_BATCH", "off");
  ScopedEnv e10("GDRSHMEM_SIM_STACK_POOL", "128");
  ScopedEnv e11("GDRSHMEM_SIM_FIBER_SWITCH", "ucontext");
  RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.transport, TransportKind::kHostPipeline);
  EXPECT_EQ(opts.sim_queue, sim::QueueKind::kHeap);
  EXPECT_FALSE(opts.sim_batch);
  EXPECT_EQ(opts.host_heap_bytes, 4u << 20);
  EXPECT_EQ(opts.gpu_heap_bytes, 512u << 10);
  EXPECT_FALSE(opts.tuning.use_proxy);
  EXPECT_EQ(opts.tuning.pipeline_chunk, 32u << 10);
  EXPECT_EQ(opts.sim_backend, sim::BackendKind::kThreads);
  EXPECT_TRUE(opts.faults.enabled());
  EXPECT_EQ(opts.faults.seed, 5u);
  EXPECT_DOUBLE_EQ(opts.faults.wire_error_rate, 1e-3);
  ASSERT_EQ(opts.faults.crashes.size(), 1u);
  EXPECT_EQ(opts.faults.crashes[0].node, 1);
}

TEST(FromEnv, UnknownVariableIsAnError) {
  ScopedEnv e("GDRSHMEM_PIPELINE_CHUNKS", "32K");  // note the typo
  EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
}

TEST(FromEnv, BadValuesAreErrors) {
  {
    ScopedEnv e("GDRSHMEM_TRANSPORT", "warp-drive");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_PIPELINE_CHUNK", "0");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_HOST_HEAP", "12Q");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_USE_PROXY", "maybe");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_SIM_BACKEND", "coroutines");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_SIM_QUEUE", "skiplist");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_SIM_BATCH", "maybe");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_SIM_FIBER_SWITCH", "longjmp");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    // Units are KiB per fiber; below the 64 KiB floor is an error, as is
    // trailing garbage.
    ScopedEnv e("GDRSHMEM_SIM_STACK_KB", "32");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_SIM_STACK_KB", "256bogus");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    // Units are pooled stacks (a count); negative or non-numeric is an error.
    ScopedEnv e("GDRSHMEM_SIM_STACK_POOL", "-1");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_SIM_STACK_POOL", "many");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_FAULTS", "wire_error_rate=2");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_TRACE", "maybe");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_TRACE_CAP", "0");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_TRACE_CAP", "lots");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
}

TEST(FromEnv, OversizedHeapIsAnErrorNotSilentWraparound) {
  // 99999999999 * 2^30 overflows std::size_t; the old code wrapped silently
  // and produced a tiny (or huge) bogus heap.
  {
    ScopedEnv e("GDRSHMEM_HOST_HEAP", "99999999999G");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_GPU_HEAP", "99999999999999999M");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    // Near the boundary but representable: must still parse.
    ScopedEnv e("GDRSHMEM_HOST_HEAP", "8G");
    EXPECT_EQ(RuntimeOptions::from_env().host_heap_bytes,
              std::size_t{8} << 30);
  }
}

TEST(FromEnv, TraceKnobsFlowIntoOptions) {
  ScopedEnv e1("GDRSHMEM_TRACE", "on");
  ScopedEnv e2("GDRSHMEM_TRACE_CAP", "4096");
  RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_TRUE(opts.trace);
  EXPECT_EQ(opts.trace_cap, 4096u);
  // The defaulted members consult the environment too, so programmatically
  // constructed options (the bench path) honor the same knobs.
  RuntimeOptions programmatic;
  EXPECT_TRUE(programmatic.trace);
  EXPECT_EQ(programmatic.trace_cap, 4096u);
}

TEST(FromEnv, FaultPlanDrivesARun) {
  ScopedEnv e("GDRSHMEM_FAULTS", "seed=3,wire_error_rate=5e-3");
  RuntimeOptions opts = RuntimeOptions::from_env();
  opts.transport = TransportKind::kEnhancedGdr;
  auto rt = run_spmd(make_cluster(2, 1), opts, [&](Ctx& ctx) {
    auto* h = static_cast<int*>(ctx.shmalloc(sizeof(int), Domain::kHost));
    if (ctx.my_pe() == 0) {
      for (int i = 0; i < 64; ++i) {
        int v = i;
        ctx.putmem(h, &v, sizeof(v), 1);
        ctx.quiet();
      }
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      EXPECT_EQ(*h, 63);
    }
  });
  EXPECT_TRUE(rt->faults_enabled());
  EXPECT_EQ(rt->faults().plan().seed, 3u);
}

TEST(FromEnv, CollAlgoSingleTokenForcesAllSupportingKinds) {
  ScopedEnv e("GDRSHMEM_COLL_ALGO", "ring");
  RuntimeOptions opts = RuntimeOptions::from_env();
  using core::CollAlgo;
  using core::CollKind;
  auto forced = [&](CollKind k) {
    return opts.tuning.coll_force[static_cast<std::size_t>(k)];
  };
  // Ring applies to bcast, allreduce, and fcollect; kinds that have no ring
  // variant keep auto selection.
  EXPECT_EQ(forced(CollKind::kBroadcast), CollAlgo::kRing);
  EXPECT_EQ(forced(CollKind::kAllreduce), CollAlgo::kRing);
  EXPECT_EQ(forced(CollKind::kFcollect), CollAlgo::kRing);
  EXPECT_EQ(forced(CollKind::kBarrier), CollAlgo::kAuto);
  EXPECT_EQ(forced(CollKind::kAlltoall), CollAlgo::kAuto);
}

TEST(FromEnv, CollAlgoPerKindListParses) {
  ScopedEnv e("GDRSHMEM_COLL_ALGO", "bcast=binomial,allreduce=recdbl");
  RuntimeOptions opts = RuntimeOptions::from_env();
  using core::CollAlgo;
  using core::CollKind;
  EXPECT_EQ(opts.tuning.coll_force[static_cast<std::size_t>(
                CollKind::kBroadcast)],
            CollAlgo::kBinomial);
  EXPECT_EQ(opts.tuning.coll_force[static_cast<std::size_t>(
                CollKind::kAllreduce)],
            CollAlgo::kRecDbl);
  EXPECT_EQ(opts.tuning.coll_force[static_cast<std::size_t>(
                CollKind::kFcollect)],
            CollAlgo::kAuto);
}

TEST(FromEnv, CollAlgoBadValuesAreErrors) {
  {
    ScopedEnv e("GDRSHMEM_COLL_ALGO", "quantum");  // no such algorithm
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_COLL_ALGO", "reduce=ring");  // no such kind
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_COLL_ALGO", "barrier=bruck");  // unsupported pair
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_COLL_ALGO", "pairwise");  // alltoall-only token is
    RuntimeOptions opts = RuntimeOptions::from_env();  // still a valid single
    EXPECT_EQ(opts.tuning.coll_force[static_cast<std::size_t>(
                  core::CollKind::kAlltoall)],
              core::CollAlgo::kPairwise);
  }
}

TEST(FromEnv, CollChunkParsesAndValidates) {
  {
    ScopedEnv e("GDRSHMEM_COLL_CHUNK", "8K");
    EXPECT_EQ(RuntimeOptions::from_env().tuning.coll_chunk, 8u << 10);
  }
  {
    ScopedEnv e("GDRSHMEM_COLL_CHUNK", "2K");  // below the 4K floor
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
}

TEST(FromEnv, CollAlgoFlowsIntoARun) {
  // Forcing the ring allreduce through the environment must actually steer
  // the engine: the per-algorithm metrics series appears in the report.
  ScopedEnv e("GDRSHMEM_COLL_ALGO", "allreduce=ring");
  RuntimeOptions opts = RuntimeOptions::from_env();
  opts.transport = TransportKind::kEnhancedGdr;
  auto rt = run_spmd(make_cluster(1, 4), opts, [&](Ctx& ctx) {
    auto* v = static_cast<std::int64_t*>(ctx.shmalloc(8));
    *v = ctx.my_pe();
    ctx.barrier_all();
    ctx.sum_to_all(v, v, 1);
    EXPECT_EQ(*v, 6);
    ctx.barrier_all();
  });
  const std::string report = core::format_report_json(*rt);
  EXPECT_NE(report.find("coll_bytes/allreduce/ring"), std::string::npos);
}

}  // namespace
}  // namespace gdrshmem
