// Property tests for the collectives engine: every forced algorithm must
// produce byte-identical results to a naive locally-computed reference, on
// world and strided teams, in both buffer domains, bit-identically across
// both execution backends, and unchanged under an active fault plan (the
// retransmit path must not reorder the data-before-flag protocol).
//
// All payloads are integer-valued so that algorithm choice (which changes
// reduction association order) cannot change the bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/collectives.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

constexpr int kWorldPes = 6;  // make_cluster(2, 3)

/// Deterministic per-element payload, integer-valued and sign-mixed.
std::int32_t pattern(int world_pe, std::size_t i) {
  return static_cast<std::int32_t>(
             (static_cast<std::uint64_t>(world_pe + 1) * 2654435761u +
              i * 40503u) %
             2001) -
         1000;
}

struct Scenario {
  CollKind kind;
  CollAlgo algo;
  int start = 0, stride = 1, size = kWorldPes;  // team triplet (world default)
  std::size_t nelems = 0;                       // int32 elements per block
  ReduceOp op = ReduceOp::kSum;
  Domain dom = Domain::kHost;
  const char* faults = nullptr;

  bool world() const {
    return start == 0 && stride == 1 && size == kWorldPes;
  }
  std::string label() const {
    std::string s = std::string(to_string(kind)) + "/" + to_string(algo) +
                    " team{" + std::to_string(start) + "," +
                    std::to_string(stride) + "," + std::to_string(size) +
                    "} n=" + std::to_string(nelems);
    if (dom == Domain::kGpu) s += " gpu";
    if (faults != nullptr) s += std::string(" faults[") + faults + "]";
    return s;
  }
};

struct Outcome {
  std::vector<std::int32_t> data;  // per-PE results, world-PE-major
  std::int64_t end_ns = 0;
};

/// Elements each member's destination holds.
std::size_t dst_elems(const Scenario& sc) {
  // Fcollect gathers one nelems-sized block per member; alltoall's send and
  // receive vectors are both nelems total (one block per peer inside).
  return sc.kind == CollKind::kFcollect
             ? static_cast<std::size_t>(sc.size) * sc.nelems
             : sc.nelems;
}

Outcome run_scenario(const Scenario& sc, sim::BackendKind backend) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.sim_backend = backend;
  opts.tuning.coll_force[static_cast<std::size_t>(sc.kind)] = sc.algo;
  if (sc.faults != nullptr) opts.faults = sim::FaultPlan::parse(sc.faults);

  const std::size_t per_pe = dst_elems(sc);
  Outcome out;
  out.data.assign(per_pe * kWorldPes, 0);

  auto rt = run_spmd(make_cluster(2, 3), opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const std::size_t src_bytes = sc.nelems * 4;
    const std::size_t dst_bytes = per_pe * 4;
    auto* src = static_cast<std::int32_t*>(ctx.shmalloc(src_bytes, sc.dom));
    auto* dst = static_cast<std::int32_t*>(ctx.shmalloc(dst_bytes, sc.dom));

    std::vector<std::int32_t> host_src(sc.nelems);
    for (std::size_t i = 0; i < sc.nelems; ++i) host_src[i] = pattern(me, i);
    ctx.cuda_memcpy(src, host_src.data(), src_bytes);
    std::memset(dst, 0, dst_bytes);
    ctx.barrier_all();

    Team* team = nullptr;
    if (!sc.world()) {
      team = ctx.team_split_strided(ctx.team_world(), sc.start, sc.stride,
                                    sc.size);
    }
    Team& t = team != nullptr ? *team : ctx.team_world();
    const bool member = sc.world() || team != nullptr;
    if (member) {
      switch (sc.kind) {
        case CollKind::kBroadcast:
          // Root is the last team member; its dst must also carry the data.
          ctx.team_broadcast(t, dst, src, src_bytes, t.n_pes() - 1);
          if (t.my_pe() == t.n_pes() - 1) ctx.cuda_memcpy(dst, src, src_bytes);
          break;
        case CollKind::kAllreduce:
          ctx.team_reduce(t, dst, src, sc.nelems, sc.op);
          break;
        case CollKind::kFcollect:
          ctx.team_fcollect(t, dst, src, src_bytes);
          break;
        case CollKind::kAlltoall:
          ctx.team_alltoall(t, dst, src, src_bytes / t.n_pes());
          break;
        default:
          ctx.team_sync(t);
          break;
      }
      ctx.cuda_memcpy(&out.data[static_cast<std::size_t>(me) * per_pe], dst,
                      dst_bytes);
      if (team != nullptr) ctx.team_destroy(team);
    }
    ctx.barrier_all();
  });
  out.end_ns = rt->engine().now().count_ns();
  return out;
}

/// Naive reference, computed without the runtime.
std::vector<std::int32_t> reference(const Scenario& sc) {
  const std::size_t per_pe = dst_elems(sc);
  std::vector<std::int32_t> ref(per_pe * kWorldPes, 0);
  std::vector<int> members(sc.size);
  for (int r = 0; r < sc.size; ++r) members[r] = sc.start + r * sc.stride;
  for (int r = 0; r < sc.size; ++r) {
    const int w = members[r];
    auto* mine = &ref[static_cast<std::size_t>(w) * per_pe];
    switch (sc.kind) {
      case CollKind::kBroadcast:
        for (std::size_t i = 0; i < sc.nelems; ++i) {
          mine[i] = pattern(members[sc.size - 1], i);
        }
        break;
      case CollKind::kAllreduce:
        for (std::size_t i = 0; i < sc.nelems; ++i) {
          std::int64_t acc = pattern(members[0], i);
          for (int m = 1; m < sc.size; ++m) {
            std::int64_t v = pattern(members[m], i);
            if (sc.op == ReduceOp::kSum) acc += v;
            if (sc.op == ReduceOp::kMin) acc = v < acc ? v : acc;
            if (sc.op == ReduceOp::kMax) acc = v > acc ? v : acc;
          }
          mine[i] = static_cast<std::int32_t>(acc);
        }
        break;
      case CollKind::kFcollect:
        for (int m = 0; m < sc.size; ++m) {
          for (std::size_t i = 0; i < sc.nelems; ++i) {
            mine[static_cast<std::size_t>(m) * sc.nelems + i] =
                pattern(members[m], i);
          }
        }
        break;
      case CollKind::kAlltoall: {
        // Member m's block r lands in member r's slot m.
        const std::size_t blk = sc.nelems / static_cast<std::size_t>(sc.size);
        for (int m = 0; m < sc.size; ++m) {
          for (std::size_t i = 0; i < blk; ++i) {
            mine[static_cast<std::size_t>(m) * blk + i] =
                pattern(members[m], static_cast<std::size_t>(r) * blk + i);
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return ref;
}

void check(const Scenario& sc) {
  SCOPED_TRACE(sc.label());
  Outcome fib = run_scenario(sc, sim::BackendKind::kFibers);
  std::vector<std::int32_t> ref = reference(sc);
  ASSERT_EQ(fib.data.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(fib.data[i], ref[i]) << "flat index " << i;
  }
  Outcome thr = run_scenario(sc, sim::BackendKind::kThreads);
  EXPECT_EQ(fib.data, thr.data) << "backends disagree on payload";
  EXPECT_EQ(fib.end_ns, thr.end_ns) << "backends disagree on virtual time";
}

// Workspace is 2 * coll_chunk = 128 KiB by default; capacity-limited
// algorithms (linear allreduce, bruck, recdbl) get sizes inside their caps.
constexpr std::size_t kWsBytes = 128u << 10;

TEST(CollProperty, AllreduceAllAlgorithmsMatchReference) {
  std::mt19937 rng(20260806);
  for (CollAlgo algo :
       {CollAlgo::kLinear, CollAlgo::kRecDbl, CollAlgo::kRing}) {
    const std::size_t cap_bytes =
        algo == CollAlgo::kLinear ? kWsBytes / kWorldPes : kWsBytes;
    for (int rep = 0; rep < 3; ++rep) {
      std::size_t nelems = 1 + rng() % (cap_bytes / 4);
      check({CollKind::kAllreduce, algo, 0, 1, kWorldPes, nelems});
    }
    // Strided team {1, 3, 5} with min instead of sum.
    check({CollKind::kAllreduce, algo, 1, 2, 3, 1 + rng() % 4096,
           ReduceOp::kMin});
  }
  // Ring streaming far beyond the workspace: nbytes * np > 256K (120000
  // int32 elements = 480 KB per PE across 6 PEs).
  check({CollKind::kAllreduce, CollAlgo::kRing, 0, 1, kWorldPes, 120000});
}

TEST(CollProperty, BroadcastAllAlgorithmsMatchReference) {
  std::mt19937 rng(7);
  for (CollAlgo algo :
       {CollAlgo::kLinear, CollAlgo::kBinomial, CollAlgo::kRing}) {
    for (std::size_t nelems :
         {std::size_t{1}, std::size_t{257}, std::size_t{1 + rng() % 50000}}) {
      check({CollKind::kBroadcast, algo, 0, 1, kWorldPes, nelems});
    }
    check({CollKind::kBroadcast, algo, 1, 2, 3, 1 + rng() % 9000});
  }
  // Multi-piece ring pipeline: > 4 chunks of the default 64K piece.
  check({CollKind::kBroadcast, CollAlgo::kRing, 0, 1, kWorldPes, 80000});
}

TEST(CollProperty, FcollectAllAlgorithmsMatchReference) {
  std::mt19937 rng(99);
  for (CollAlgo algo :
       {CollAlgo::kLinear, CollAlgo::kBruck, CollAlgo::kRing}) {
    const std::size_t cap_bytes =
        algo == CollAlgo::kBruck ? kWsBytes / kWorldPes : 64u << 10;
    for (int rep = 0; rep < 3; ++rep) {
      check({CollKind::kFcollect, algo, 0, 1, kWorldPes,
             1 + rng() % (cap_bytes / 4)});
    }
    check({CollKind::kFcollect, algo, 1, 2, 3, 1 + rng() % 2048});
  }
}

TEST(CollProperty, AlltoallAlgorithmsMatchReference) {
  std::mt19937 rng(4242);
  for (CollAlgo algo : {CollAlgo::kLinear, CollAlgo::kPairwise}) {
    for (int rep = 0; rep < 3; ++rep) {
      // nelems here is the full send vector; one block per peer.
      std::size_t blk = 1 + rng() % 8000;
      check({CollKind::kAlltoall, algo, 0, 1, kWorldPes,
             blk * kWorldPes});
      check({CollKind::kAlltoall, algo, 1, 2, 3, (1 + rng() % 2000) * 3});
    }
  }
}

TEST(CollProperty, GpuDomainCombinesMatchReference) {
  // GPU-heap destinations run their combine stage through the kernel cost
  // model; bytes must be unchanged.
  check({CollKind::kAllreduce, CollAlgo::kRecDbl, 0, 1, kWorldPes, 3000,
         ReduceOp::kSum, Domain::kGpu});
  check({CollKind::kAllreduce, CollAlgo::kRing, 0, 1, kWorldPes, 40000,
         ReduceOp::kMax, Domain::kGpu});
  check({CollKind::kBroadcast, CollAlgo::kRing, 1, 2, 3, 30000,
         ReduceOp::kSum, Domain::kGpu});
  check({CollKind::kFcollect, CollAlgo::kBruck, 0, 1, kWorldPes, 1024,
         ReduceOp::kSum, Domain::kGpu});
}

TEST(CollProperty, ResultsUnchangedUnderActiveFaultPlan) {
  // Wire errors force retransmits; the engine must still deliver correct
  // bytes (flag puts are quiesced so same-slot flags cannot reorder) and
  // stay bit-identical across backends under the same seed.
  const char* plan = "seed=3,wire_error_rate=5e-3";
  check({CollKind::kAllreduce, CollAlgo::kRing, 0, 1, kWorldPes, 50000,
         ReduceOp::kSum, Domain::kHost, plan});
  check({CollKind::kAllreduce, CollAlgo::kRecDbl, 1, 2, 3, 2048,
         ReduceOp::kSum, Domain::kHost, plan});
  check({CollKind::kBroadcast, CollAlgo::kBinomial, 0, 1, kWorldPes, 20000,
         ReduceOp::kSum, Domain::kHost, plan});
  check({CollKind::kFcollect, CollAlgo::kBruck, 0, 1, kWorldPes, 512,
         ReduceOp::kSum, Domain::kHost, plan});
  check({CollKind::kAlltoall, CollAlgo::kPairwise, 0, 1, kWorldPes,
         1000 * kWorldPes, ReduceOp::kSum, Domain::kHost, plan});
}

}  // namespace
}  // namespace gdrshmem::core
