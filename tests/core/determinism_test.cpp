// Cross-backend determinism at the full-runtime level.
//
// The fiber and thread execution backends must be indistinguishable in
// virtual time: same engine event count, same OpStats, same bytes landing in
// the symmetric heaps, same per-op trace. This is the regression gate for
// the fiber backend — any scheduling divergence in the proxy daemons,
// progress engines, or protocol state machines shows up here.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

struct RunResult {
  std::uint64_t events_executed = 0;
  std::int64_t end_ns = 0;
  OpStats stats;
  std::vector<std::int64_t> final_values;  // gathered symmetric heap contents
  std::string trace_csv;                   // per-op virtual-time trace

  bool same_as(const RunResult& o) const {
    return events_executed == o.events_executed && end_ns == o.end_ns &&
           stats.ops_by_protocol == o.stats.ops_by_protocol &&
           stats.bytes_by_protocol == o.stats.bytes_by_protocol &&
           stats.puts == o.stats.puts && stats.gets == o.stats.gets &&
           stats.atomics == o.stats.atomics &&
           stats.barriers == o.stats.barriers &&
           final_values == o.final_values && trace_csv == o.trace_csv;
  }
};

/// A mixed workload across 2 nodes x 2 PEs: GPU-domain ring puts (exercises
/// the proxy/pipeline paths), host gets, remote atomics, and barriers.
/// `faults` optionally layers a seeded fault plan (wire errors, a proxy
/// crash) on top, which exercises retransmits, replays and proxy restarts.
RunResult run_workload(sim::BackendKind backend,
                       sim::QueueKind queue = sim::queue_from_env(),
                       const char* faults = nullptr) {
  RunResult out;
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.sim_backend = backend;
  opts.sim_queue = queue;
  if (faults != nullptr) opts.faults = sim::FaultPlan::parse(faults);
  Runtime rt(make_cluster(2), opts);
  rt.tracer().enable();

  const int np = rt.num_pes();
  out.final_values.assign(static_cast<std::size_t>(np) * 2, 0);

  rt.run([&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const int right = (me + 1) % ctx.n_pes();
    auto* ring = static_cast<std::int64_t*>(
        ctx.shmalloc(sizeof(std::int64_t), Domain::kGpu));
    auto* counter = static_cast<std::int64_t*>(
        ctx.shmalloc(sizeof(std::int64_t), Domain::kHost));
    auto* big = static_cast<std::byte*>(ctx.shmalloc(64 * 1024, Domain::kGpu));
    *counter = 0;
    ctx.barrier_all();

    // Small GPU put ring + a large put that crosses the rendezvous/proxy
    // threshold, then a host get back from the left neighbour.
    std::vector<std::byte> buf(64 * 1024,
                               std::byte{static_cast<unsigned char>(me + 1)});
    for (int r = 0; r < 3; ++r) {
      std::int64_t v = me * 100 + r;
      ctx.putmem(ring, &v, sizeof v, right);
      ctx.putmem_nbi(big, buf.data(), buf.size(), right);
      ctx.quiet();
      ctx.atomic_fetch_add(counter, 1, right);
      ctx.barrier_all();
    }

    std::int64_t got = 0;
    ctx.getmem(&got, ring, sizeof got, right);
    ctx.barrier_all();

    out.final_values[static_cast<std::size_t>(me) * 2] = got;
    out.final_values[static_cast<std::size_t>(me) * 2 + 1] = *counter;
  });

  out.events_executed = rt.engine().events_executed();
  out.end_ns = (rt.engine().now() - sim::Time::zero()).count_ns();
  out.stats = rt.stats();
  out.trace_csv = rt.tracer().to_csv();
  return out;
}

TEST(RuntimeDeterminism, RepeatedRunsIdenticalPerBackend) {
  for (sim::BackendKind kind :
       {sim::BackendKind::kThreads, sim::BackendKind::kFibers}) {
    RunResult a = run_workload(kind);
    RunResult b = run_workload(kind);
    EXPECT_TRUE(a.same_as(b))
        << "backend " << sim::to_string(kind) << " diverged across runs";
    EXPECT_GT(a.events_executed, 0u);
    EXPECT_GT(a.stats.puts, 0u);
  }
}

TEST(RuntimeDeterminism, FibersMatchThreadsBitIdentically) {
  RunResult threads = run_workload(sim::BackendKind::kThreads);
  RunResult fibers = run_workload(sim::BackendKind::kFibers);
  EXPECT_EQ(threads.events_executed, fibers.events_executed);
  EXPECT_EQ(threads.end_ns, fibers.end_ns);
  EXPECT_EQ(threads.final_values, fibers.final_values);
  EXPECT_EQ(threads.trace_csv, fibers.trace_csv);
  EXPECT_TRUE(threads.same_as(fibers));
}

TEST(RuntimeDeterminism, HeapAndWheelQueuesMatchOnFaultInjectedRun) {
  // Cross-structure differential at full-runtime depth: a seeded
  // fault-injected run (wire errors forcing retransmits/replays plus a proxy
  // crash and restart) must produce the identical per-op trace, event count,
  // and heap contents whether the engine orders events with the binary heap
  // or the timing wheel — on both execution backends. Fault injection makes
  // the event stream as adversarial as this runtime can produce: failures
  // reschedule work at scattered future times while barriers keep producing
  // same-instant bursts.
  constexpr const char* kFaults = "seed=11,wire_error_rate=8e-3,crash=1@300";
  for (sim::BackendKind kind :
       {sim::BackendKind::kThreads, sim::BackendKind::kFibers}) {
    RunResult heap = run_workload(kind, sim::QueueKind::kHeap, kFaults);
    RunResult wheel = run_workload(kind, sim::QueueKind::kWheel, kFaults);
    EXPECT_EQ(heap.trace_csv, wheel.trace_csv)
        << "queue divergence on backend " << sim::to_string(kind);
    EXPECT_TRUE(heap.same_as(wheel))
        << "queue divergence on backend " << sim::to_string(kind);
  }
}

TEST(RuntimeDeterminism, ServiceThreadConfigMatchesAcrossBackends) {
  // The service-thread ablation spawns extra daemons racing the progress
  // engine — the most handoff-heavy configuration we have.
  auto run_once = [](sim::BackendKind kind) {
    RuntimeOptions opts = make_options(TransportKind::kHostPipeline);
    opts.sim_backend = kind;
    opts.service_thread = true;
    Runtime rt(make_cluster(2), opts);
    std::vector<std::int64_t> vals(4);
    rt.run([&](Ctx& ctx) {
      const int me = ctx.my_pe();
      auto* slot = static_cast<std::int64_t*>(
          ctx.shmalloc(sizeof(std::int64_t), Domain::kHost));
      *slot = 0;
      ctx.barrier_all();
      std::int64_t v = me + 1;
      ctx.putmem(slot, &v, sizeof v, (me + 1) % ctx.n_pes());
      ctx.barrier_all();
      vals[static_cast<std::size_t>(me)] = *slot;
    });
    return std::pair{rt.engine().events_executed(), vals};
  };
  auto threads = run_once(sim::BackendKind::kThreads);
  auto fibers = run_once(sim::BackendKind::kFibers);
  EXPECT_EQ(threads, fibers);
}

}  // namespace
}  // namespace gdrshmem::core
