// Distributed locks and team barriers.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

TEST(Lock, MutualExclusionAcrossNodes) {
  int in_critical = 0;
  int violations = 0;
  std::int64_t shared_value = 0;
  run_spmd(make_cluster(3, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* lock = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *lock = 0;
             ctx.barrier_all();
             for (int i = 0; i < 4; ++i) {
               ctx.set_lock(lock);
               if (in_critical != 0) ++violations;
               in_critical = 1;
               std::int64_t v = shared_value;
               ctx.compute(sim::Duration::us(3));
               shared_value = v + 1;  // read-modify-write under the lock
               in_critical = 0;
               ctx.clear_lock(lock);
             }
             ctx.barrier_all();
           });
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(shared_value, 6 * 4);  // no lost updates
}

TEST(Lock, TestLockAndMisuse) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* lock = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *lock = 0;
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               EXPECT_TRUE(ctx.test_lock(lock));
               EXPECT_FALSE(ctx.test_lock(lock));  // already held (by us)
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) {
               EXPECT_FALSE(ctx.test_lock(lock));  // held by PE 0
               EXPECT_THROW(ctx.clear_lock(lock), ShmemError);  // not holder
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 0) ctx.clear_lock(lock);
             ctx.barrier_all();
             if (ctx.my_pe() == 1) EXPECT_TRUE(ctx.test_lock(lock));
             ctx.barrier_all();
           });
}

TEST(TeamBarrier, SynchronizesSubsetOnly) {
  std::vector<int> phase(6, 0);
  run_spmd(make_cluster(3, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* psync = static_cast<std::int64_t*>(ctx.shmalloc(16));
             psync[0] = psync[1] = 0;
             ctx.barrier_all();
             std::vector<int> team{0, 2, 4};  // even PEs
             bool in_team = ctx.my_pe() % 2 == 0;
             if (in_team) {
               for (int round = 0; round < 8; ++round) {
                 ctx.compute(sim::Duration::us(
                     static_cast<double>(1 + (ctx.my_pe() * 7 + round) % 11)));
                 phase[ctx.my_pe()] = round + 1;
                 ctx.team_barrier(team, psync);
                 for (int p : team) {
                   ASSERT_GE(phase[p], round + 1) << "team PE behind";
                 }
               }
               EXPECT_THROW(ctx.team_barrier({1, 3}, psync), ShmemError);
             } else {
               // Odd PEs never block: they were not part of the team.
               ctx.compute(sim::Duration::us(1));
             }
             ctx.barrier_all();
           });
}

TEST(TeamBarrier, WholeWorldTeamEquivalentToBarrierAll) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* psync = static_cast<std::int64_t*>(ctx.shmalloc(16));
             psync[0] = psync[1] = 0;
             ctx.barrier_all();
             std::vector<int> world{0, 1, 2, 3};
             for (int i = 0; i < 5; ++i) ctx.team_barrier(world, psync);
             EXPECT_EQ(psync[1], 5);  // five release generations
             ctx.barrier_all();
           });
}

}  // namespace
}  // namespace gdrshmem::core
