// Differential tests across the IB queue-pair transports: the same workload
// under rc, ud, dc, and srd (and 1 vs 2 rails) must land bit-identical
// bytes — only the virtual clock may move — on both device backends, with
// and without a fault plan. Also covers the new GDRSHMEM_IB_* env
// validation and the shmem_info / shmemx transport query surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/device_api.hpp"
#include "gdrshmem/shmem.h"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

constexpr ib::QpKind kKinds[] = {ib::QpKind::kRc, ib::QpKind::kUd,
                                 ib::QpKind::kDc, ib::QpKind::kSrd};

std::uint64_t fnv1a(std::uint64_t h, const unsigned char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

unsigned char pattern(int pe, std::size_t size, std::size_t i) {
  return static_cast<unsigned char>(pe * 131 + size * 29 + i * 7 + 3);
}

struct DiffConfig {
  ib::QpKind kind = ib::QpKind::kRc;
  int rails = 1;
  DeviceBackendKind backend = DeviceBackendKind::kGpuIb;
  std::string faults;
};

/// The Fig 6-9-shaped mixed workload: ring puts and gets in both heap
/// domains at sizes spanning every protocol boundary, remote atomics, an
/// allreduce, and one device-initiated put — then a per-PE FNV checksum of
/// all destination memory, folded over PEs in rank order.
std::uint64_t run_checksum(const DiffConfig& cfg) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.ib_transport = cfg.kind;
  opts.ib_rails = cfg.rails;
  opts.device_backend = cfg.backend;
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  if (!cfg.faults.empty()) opts.faults = sim::FaultPlan::parse(cfg.faults);

  const std::size_t sizes[] = {7, 1024, 8192, 70000, 300001};
  const std::size_t kMax = 300001;
  std::vector<std::uint64_t> per_pe(4, 0);

  run_spmd(make_cluster(2, 2), opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const int np = ctx.n_pes();
    const int right = (me + 1) % np;
    std::uint64_t h = 0xcbf29ce484222325ull;

    for (Domain dom : {Domain::kHost, Domain::kGpu}) {
      auto* sym = static_cast<unsigned char*>(ctx.shmalloc(kMax, dom));
      std::vector<unsigned char> src(kMax), back(kMax);
      ctx.barrier_all();
      for (std::size_t n : sizes) {
        for (std::size_t i = 0; i < n; ++i) src[i] = pattern(me, n, i);
        ctx.putmem(sym, src.data(), n, right);
        ctx.quiet();
        ctx.barrier_all();
        h = fnv1a(h, sym, n);  // what the left neighbor wrote here
        ctx.getmem(back.data(), sym, n, right);  // round-trip via get
        h = fnv1a(h, back.data(), n);
        ctx.barrier_all();
      }
    }

    // Remote atomics: commutative, so the final value is order-independent.
    auto* ctr = static_cast<std::int64_t*>(
        ctx.shmalloc(sizeof(std::int64_t), Domain::kHost));
    *ctr = 0;
    ctx.barrier_all();
    for (int k = 0; k < 8; ++k) ctx.atomic_fetch_add(ctr, me + 1, k % np);
    ctx.barrier_all();
    h = fnv1a(h, reinterpret_cast<unsigned char*>(ctr), sizeof(*ctr));

    // Collective over the transport under test.
    auto* red = static_cast<std::int64_t*>(
        ctx.shmalloc(8 * sizeof(std::int64_t), Domain::kHost));
    for (int i = 0; i < 8; ++i) red[i] = (me + 1) * (i + 1);
    ctx.sum_to_all(red, red, 8);
    h = fnv1a(h, reinterpret_cast<unsigned char*>(red),
              8 * sizeof(std::int64_t));

    // One device-initiated exchange through the selected backend.
    const std::size_t dn = 8u << 10;
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(dn, Domain::kGpu));
    auto* sig = static_cast<std::uint64_t*>(
        ctx.shmalloc(sizeof(std::uint64_t), Domain::kGpu));
    std::vector<unsigned char> dsrc(dn);
    for (std::size_t i = 0; i < dn; ++i) dsrc[i] = pattern(me, dn, i);
    *sig = 0;
    ctx.barrier_all();
    ctx.launch_kernel_device(1.0, DeviceScope::kThread, [&](DeviceCtx& d) {
      d.put_signal(dev, dsrc.data(), dn, sig, 1, right);
      d.signal_wait_until(sig, Cmp::kGe, 1);
    });
    h = fnv1a(h, dev, dn);
    ctx.barrier_all();
    per_pe[static_cast<std::size_t>(me)] = h;
  });

  std::uint64_t all = 0xcbf29ce484222325ull;
  for (std::uint64_t h : per_pe) {
    all = fnv1a(all, reinterpret_cast<unsigned char*>(&h), sizeof(h));
  }
  return all;
}

TEST(TransportDiff, AllTransportsLandIdenticalBytes) {
  DiffConfig rc;
  const std::uint64_t want = run_checksum(rc);
  for (ib::QpKind kind : kKinds) {
    DiffConfig c;
    c.kind = kind;
    EXPECT_EQ(run_checksum(c), want) << ib::to_string(kind);
  }
}

TEST(TransportDiff, TwoRailStripingPreservesResults) {
  for (ib::QpKind kind :
       {ib::QpKind::kRc, ib::QpKind::kDc, ib::QpKind::kSrd}) {
    DiffConfig one{kind, 1, DeviceBackendKind::kGpuIb, ""};
    DiffConfig two{kind, 2, DeviceBackendKind::kGpuIb, ""};
    EXPECT_EQ(run_checksum(one), run_checksum(two)) << ib::to_string(kind);
  }
}

TEST(TransportDiff, BothDeviceBackendsAgreePerTransport) {
  for (ib::QpKind kind : kKinds) {
    DiffConfig gpu_ib{kind, 1, DeviceBackendKind::kGpuIb, ""};
    DiffConfig reverse{kind, 1, DeviceBackendKind::kReverseOffload, ""};
    EXPECT_EQ(run_checksum(gpu_ib), run_checksum(reverse))
        << ib::to_string(kind);
  }
}

TEST(TransportDiff, FaultPlanPreservesResultsOnEveryTransport) {
  const char* kPlan = "seed=11,wire_error_rate=8e-3,atomic_error_rate=5e-3";
  DiffConfig clean;
  const std::uint64_t want = run_checksum(clean);
  for (ib::QpKind kind : kKinds) {
    DiffConfig c;
    c.kind = kind;
    c.faults = kPlan;
    EXPECT_EQ(run_checksum(c), want) << ib::to_string(kind);
  }
}

TEST(TransportDiff, RunsAreDeterministicPerTransport) {
  for (ib::QpKind kind :
       {ib::QpKind::kUd, ib::QpKind::kDc, ib::QpKind::kSrd}) {
    DiffConfig c;
    c.kind = kind;
    c.rails = 2;
    EXPECT_EQ(run_checksum(c), run_checksum(c)) << ib::to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// Env validation for the new keys.

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

TEST(TransportFromEnv, ParsesTransportRailsAndSrq) {
  ScopedEnv e1("GDRSHMEM_IB_TRANSPORT", "dc");
  ScopedEnv e2("GDRSHMEM_IB_RAILS", "2");
  ScopedEnv e3("GDRSHMEM_IB_SRQ", "on");
  RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.ib_transport, ib::QpKind::kDc);
  EXPECT_EQ(opts.ib_rails, 2);
  EXPECT_TRUE(opts.ib_srq);
}

TEST(TransportFromEnv, ParsesSrdKnobs) {
  ScopedEnv e1("GDRSHMEM_IB_TRANSPORT", "srd");
  ScopedEnv e2("GDRSHMEM_IB_SRD_SEED", "42");
  ScopedEnv e3("GDRSHMEM_IB_SRD_JITTER_US", "2.5");
  RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.ib_transport, ib::QpKind::kSrd);
  EXPECT_EQ(opts.ib_srd_seed, 42u);
  EXPECT_DOUBLE_EQ(opts.ib_srd_jitter_us, 2.5);
}

TEST(TransportFromEnv, SrdKnobDefaults) {
  RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.ib_srd_seed, 1u);
  EXPECT_LT(opts.ib_srd_jitter_us, 0.0);  // negative: keep the params default
}

TEST(TransportFromEnv, RejectsBadValues) {
  {
    ScopedEnv e("GDRSHMEM_IB_TRANSPORT", "xrc");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_RAILS", "4");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_SRQ", "maybe");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_SRD_SEED", "-3");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_SRD_JITTER_US", "-1.5");
    EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  }
}

// ---------------------------------------------------------------------------
// The query surface: spec version, vendor name, active transport.

TEST(InfoQuery, VersionNameAndTransport) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.ib_transport = ib::QpKind::kDc;
  opts.ib_rails = 2;
  run_spmd(make_cluster(1, 2), opts, [&](Ctx& ctx) {
    capi::Bind bind(ctx);
    int major = 0, minor = 0;
    capi::shmem_info_get_version(&major, &minor);
    EXPECT_EQ(major, SHMEM_MAJOR_VERSION);
    EXPECT_EQ(minor, SHMEM_MINOR_VERSION);
    char name[capi::SHMEM_MAX_NAME_LEN];
    capi::shmem_info_get_name(name);
    EXPECT_EQ(std::string(name), SHMEM_VENDOR_STRING);
    EXPECT_EQ(std::string(capi::shmemx_transport_name()), "dc");
    EXPECT_EQ(capi::shmemx_rail_count(), 2);
  });
}

}  // namespace
}  // namespace gdrshmem::core
