// Synchronization and collectives: barrier, wait_until, broadcast,
// reductions, fcollect — on both transports, across node boundaries.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

class SyncBothTransports : public ::testing::TestWithParam<TransportKind> {};

INSTANTIATE_TEST_SUITE_P(Transports, SyncBothTransports,
                         ::testing::Values(TransportKind::kHostPipeline,
                                           TransportKind::kEnhancedGdr),
                         [](const auto& info) {
                           return info.param == TransportKind::kHostPipeline
                                      ? "Baseline"
                                      : "Enhanced";
                         });

TEST_P(SyncBothTransports, BarrierSynchronizesAllPes) {
  // Each PE contributes after a staggered delay; after the barrier every
  // PE must observe all contributions.
  constexpr int kNp = 8;
  std::vector<int> contributions(kNp, 0);
  run_spmd(make_cluster(4, 2), make_options(GetParam()), [&](Ctx& ctx) {
    ctx.compute(sim::Duration::us(10.0 * ctx.my_pe()));
    contributions[ctx.my_pe()] = 1;
    ctx.barrier_all();
    int sum = std::accumulate(contributions.begin(), contributions.end(), 0);
    EXPECT_EQ(sum, kNp) << "PE " << ctx.my_pe() << " passed the barrier early";
  });
}

TEST_P(SyncBothTransports, RepeatedBarriers) {
  std::vector<int> counters(4, 0);
  run_spmd(make_cluster(2, 2), make_options(GetParam()), [&](Ctx& ctx) {
    for (int round = 0; round < 20; ++round) {
      EXPECT_EQ(counters[ctx.my_pe()], round);
      counters[ctx.my_pe()] = round + 1;
      ctx.barrier_all();
      for (int pe = 0; pe < 4; ++pe) EXPECT_GE(counters[pe], round + 1);
    }
  });
}

TEST_P(SyncBothTransports, WaitUntilFlagFromRemotePut) {
  run_spmd(make_cluster(2, 1), make_options(GetParam()), [&](Ctx& ctx) {
    auto* flag = static_cast<std::int64_t*>(ctx.shmalloc(sizeof(std::int64_t)));
    auto* data = static_cast<int*>(ctx.shmalloc(sizeof(int)));
    if (ctx.my_pe() == 0) {
      int payload = 1234;
      ctx.putmem(data, &payload, sizeof(payload), 1);
      ctx.quiet();  // data strictly before flag
      std::int64_t one = 1;
      ctx.putmem(flag, &one, sizeof(one), 1);
      ctx.quiet();
    } else {
      ctx.wait_until<std::int64_t>(flag, Cmp::kEq, 1);
      EXPECT_EQ(*data, 1234);  // data ordered before the flag
    }
    ctx.barrier_all();
  });
}

TEST(Sync, WaitUntilComparisons) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* v = static_cast<std::int64_t*>(ctx.shmalloc(8));
             if (ctx.my_pe() == 0) {
               for (std::int64_t x : {2, 5, 9}) {
                 ctx.compute(sim::Duration::us(3));
                 ctx.putmem(v, &x, 8, 1);
                 ctx.quiet();
               }
             } else {
               ctx.wait_until<std::int64_t>(v, Cmp::kGt, 4);
               EXPECT_GE(*v, 5);
               ctx.wait_until<std::int64_t>(v, Cmp::kGe, 9);
               ctx.wait_until<std::int64_t>(v, Cmp::kNe, 0);
               ctx.wait_until<std::int64_t>(v, Cmp::kLe, 9);
               ctx.wait_until<std::int64_t>(v, Cmp::kLt, 10);
             }
             ctx.barrier_all();
           });
}

TEST_P(SyncBothTransports, BroadcastFromEveryRoot) {
  constexpr std::size_t kWords = 33;
  run_spmd(make_cluster(3, 2), make_options(GetParam()), [&](Ctx& ctx) {
    auto* buf = static_cast<std::uint64_t*>(
        ctx.shmalloc(kWords * sizeof(std::uint64_t)));
    auto* src = static_cast<std::uint64_t*>(
        ctx.shmalloc(kWords * sizeof(std::uint64_t)));
    for (int root = 0; root < ctx.n_pes(); ++root) {
      for (std::size_t i = 0; i < kWords; ++i) {
        src[i] = 1000u * static_cast<unsigned>(root) + i;
        buf[i] = 0;
      }
      ctx.barrier_all();
      ctx.broadcastmem(buf, src, kWords * sizeof(std::uint64_t), root);
      if (ctx.my_pe() != root) {
        for (std::size_t i = 0; i < kWords; ++i) {
          ASSERT_EQ(buf[i], 1000u * static_cast<unsigned>(root) + i)
              << "root " << root << " word " << i;
        }
      }
      ctx.barrier_all();
    }
  });
}

TEST_P(SyncBothTransports, SumToAllDouble) {
  run_spmd(make_cluster(2, 2), make_options(GetParam()), [&](Ctx& ctx) {
    constexpr std::size_t kN = 16;
    auto* src = static_cast<double*>(ctx.shmalloc(kN * sizeof(double)));
    auto* dst = static_cast<double*>(ctx.shmalloc(kN * sizeof(double)));
    for (std::size_t i = 0; i < kN; ++i) src[i] = ctx.my_pe() + 0.25 * i;
    ctx.barrier_all();
    ctx.sum_to_all(dst, src, kN);
    const int np = ctx.n_pes();
    for (std::size_t i = 0; i < kN; ++i) {
      double expect = np * (np - 1) / 2.0 + np * 0.25 * i;
      ASSERT_DOUBLE_EQ(dst[i], expect) << "element " << i;
    }
    ctx.barrier_all();
  });
}

TEST(Sync, MinMaxToAll) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* src = static_cast<std::int64_t*>(ctx.shmalloc(8));
             auto* mn = static_cast<std::int64_t*>(ctx.shmalloc(8));
             auto* mx = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *src = 10 - 3 * ctx.my_pe();
             ctx.barrier_all();
             ctx.min_to_all(mn, src, 1);
             ctx.max_to_all(mx, src, 1);
             EXPECT_EQ(*mn, 10 - 3 * (ctx.n_pes() - 1));
             EXPECT_EQ(*mx, 10);
             ctx.barrier_all();
           });
}

TEST(Sync, ReduceInPlaceAlias) {
  run_spmd(make_cluster(1, 4), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* buf = static_cast<std::int32_t*>(ctx.shmalloc(4 * sizeof(int)));
             for (int i = 0; i < 4; ++i) buf[i] = ctx.my_pe() + i;
             ctx.barrier_all();
             ctx.sum_to_all(buf, buf, 4);  // dst aliases src
             for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[i], 6 + 4 * i);
             ctx.barrier_all();
           });
}

// The ring allreduce streams through a fixed workspace, so reductions far
// larger than any internal scratch must complete (the old engine threw once
// nbytes * np exceeded a 256K region).
TEST(Sync, ReduceLargerThanWorkspaceCompletes) {
  constexpr std::size_t kElems = (1u << 20) / sizeof(double);  // 1 MB per PE
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* big = static_cast<double*>(ctx.shmalloc(1u << 20));
             for (std::size_t i = 0; i < kElems; ++i) {
               big[i] = static_cast<double>(ctx.my_pe() + 1) *
                        static_cast<double>(i % 257);
             }
             ctx.barrier_all();
             ctx.sum_to_all(big, big, kElems);
             for (std::size_t i = 0; i < kElems; ++i) {
               ASSERT_EQ(big[i], 3.0 * static_cast<double>(i % 257));
             }
             ctx.barrier_all();
           });
}

TEST_P(SyncBothTransports, FcollectGathersBlocks) {
  constexpr std::size_t kBlock = 24;
  run_spmd(make_cluster(2, 2), make_options(GetParam()), [&](Ctx& ctx) {
    const int np = ctx.n_pes();
    auto* src = static_cast<unsigned char*>(ctx.shmalloc(kBlock));
    auto* dst = static_cast<unsigned char*>(
        ctx.shmalloc(kBlock * static_cast<std::size_t>(np)));
    for (std::size_t i = 0; i < kBlock; ++i) {
      src[i] = static_cast<unsigned char>(16 * ctx.my_pe() + i);
    }
    ctx.barrier_all();
    ctx.fcollectmem(dst, src, kBlock);
    for (int pe = 0; pe < np; ++pe) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        ASSERT_EQ(dst[pe * kBlock + i], static_cast<unsigned char>(16 * pe + i));
      }
    }
    ctx.barrier_all();
  });
}

TEST(Sync, FcollectOnGpuDomain) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             constexpr std::size_t kBlock = 256;
             auto* src = static_cast<unsigned char*>(
                 ctx.shmalloc(kBlock, Domain::kGpu));
             auto* dst = static_cast<unsigned char*>(
                 ctx.shmalloc(kBlock * 2, Domain::kGpu));
             for (std::size_t i = 0; i < kBlock; ++i) {
               src[i] = static_cast<unsigned char>(ctx.my_pe() * 100 + i % 90);
             }
             ctx.barrier_all();
             ctx.fcollectmem(dst, src, kBlock);
             for (int pe = 0; pe < 2; ++pe) {
               for (std::size_t i = 0; i < kBlock; i += 17) {
                 ASSERT_EQ(dst[pe * kBlock + i],
                           static_cast<unsigned char>(pe * 100 + i % 90));
               }
             }
             ctx.barrier_all();
           });
}

TEST(Sync, BarrierCountsInStats) {
  auto rt = run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
                     [&](Ctx& ctx) { ctx.barrier_all(); });
  EXPECT_EQ(rt->stats().barriers, 2u);  // one entry per PE
}

}  // namespace
}  // namespace gdrshmem::core
