// Runtime report formatting (text and machine-readable JSON).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

TEST(Report, SummarizesProtocolsAndResources) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.putmem(g, local, 8, 1);           // direct GDR
      ctx.putmem(g, local, 1u << 20, 1);    // pipeline
      ctx.getmem(local, g, 1u << 20, 1);    // proxy get
      ctx.quiet();
    }
    ctx.barrier_all();
  });
  std::string report = format_report(rt);
  EXPECT_NE(report.find("enhanced-gdr"), std::string::npos);
  EXPECT_NE(report.find("direct-gdr"), std::string::npos);
  EXPECT_NE(report.find("pipeline-gdr-write"), std::string::npos);
  EXPECT_NE(report.find("proxy-get"), std::string::npos);
  EXPECT_NE(report.find("registration cache"), std::string::npos);
  EXPECT_NE(report.find("proxy daemons: 1 gets"), std::string::npos);
  EXPECT_NE(report.find("symmetric heaps"), std::string::npos);
}

TEST(Report, BaselineHasNoProxySection) {
  Runtime rt(make_cluster(1, 2), make_options(TransportKind::kHostPipeline));
  rt.run([&](Ctx& ctx) { ctx.barrier_all(); });
  std::string report = format_report(rt);
  EXPECT_EQ(report.find("proxy daemons"), std::string::npos);
  EXPECT_NE(report.find("host-pipeline"), std::string::npos);
}

TEST(ReportJson, WellFormedWithStableFieldOrder) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.putmem(g, local, 8, 1);
      ctx.getmem(local, g, 1u << 20, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
  });
  std::string json = format_report_json(rt);
  // Balanced structure.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Top-level sections appear in their documented order.
  std::size_t last = 0;
  for (const char* key :
       {"\"schema\":1", "\"transport\":\"enhanced-gdr\"", "\"pes\":2",
        "\"virtual_time_us\":", "\"ops\":", "\"protocols\":[",
        "\"reg_cache\":", "\"proxy\":", "\"heap\":", "\"trace\":",
        "\"metrics\":", "\"counters\":", "\"gauges\":", "\"histograms\":"}) {
    std::size_t pos = json.find(key, last);
    ASSERT_NE(pos, std::string::npos) << "missing or out of order: " << key;
    last = pos;
  }
  // The observability counters/gauges/histograms made it in.
  EXPECT_NE(json.find("\"reg_cache/hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"proxy/queue_depth\":"), std::string::npos);
  EXPECT_NE(json.find("\"op_bytes/get/proxy-get\":"), std::string::npos);
  EXPECT_NE(json.find("\"op_latency_ns/put/direct-gdr\":"), std::string::npos);
  // Identical state serializes identically (byte-stable output).
  EXPECT_EQ(json, format_report_json(rt));
}

TEST(ReportJson, HistogramTotalsMatchProtocolTable) {
  Runtime rt(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr));
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(512u << 10, Domain::kGpu);
    void* h = ctx.shmalloc(4096);
    void* local = ctx.cuda_malloc(512u << 10);
    std::vector<std::byte> hbuf(4096);
    int peer = (ctx.my_pe() + 1) % ctx.n_pes();
    ctx.putmem(g, local, 8, peer);
    ctx.putmem(g, local, 512u << 10, peer);
    ctx.getmem(local, g, 64u << 10, peer);
    ctx.putmem(h, hbuf.data(), hbuf.size(), peer);
    auto* ctr = static_cast<std::int64_t*>(ctx.shmalloc(8));
    ctx.atomic_fetch_add(ctr, 1, peer);
    ctx.barrier_all();
  });
  (void)format_report_json(rt);  // snapshots metrics as a side effect
  // Every operation counted in the protocol table is recorded in exactly one
  // op_bytes histogram (count_protocol is the single chokepoint for both),
  // so per-protocol totals must agree.
  const OpStats& st = rt.stats();
  std::array<std::uint64_t, static_cast<std::size_t>(Protocol::kCount_)>
      hist_ops{};
  std::array<std::uint64_t, static_cast<std::size_t>(Protocol::kCount_)>
      hist_bytes{};
  for (const auto& [name, h] : rt.metrics().histograms()) {
    if (name.rfind("op_bytes/", 0) != 0) continue;
    std::string proto_name = name.substr(name.rfind('/') + 1);
    for (std::size_t i = 0; i < static_cast<std::size_t>(Protocol::kCount_);
         ++i) {
      if (proto_name == to_string(static_cast<Protocol>(i))) {
        hist_ops[i] += h.count();
        hist_bytes[i] += h.sum();
      }
    }
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(Protocol::kCount_); ++i) {
    EXPECT_EQ(hist_ops[i], st.ops_by_protocol[i])
        << "op count mismatch for " << to_string(static_cast<Protocol>(i));
    EXPECT_EQ(hist_bytes[i], st.bytes_by_protocol[i])
        << "byte count mismatch for " << to_string(static_cast<Protocol>(i));
  }
}

}  // namespace
}  // namespace gdrshmem::core
