// Runtime report formatting.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

TEST(Report, SummarizesProtocolsAndResources) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.putmem(g, local, 8, 1);           // direct GDR
      ctx.putmem(g, local, 1u << 20, 1);    // pipeline
      ctx.getmem(local, g, 1u << 20, 1);    // proxy get
      ctx.quiet();
    }
    ctx.barrier_all();
  });
  std::string report = format_report(rt);
  EXPECT_NE(report.find("enhanced-gdr"), std::string::npos);
  EXPECT_NE(report.find("direct-gdr"), std::string::npos);
  EXPECT_NE(report.find("pipeline-gdr-write"), std::string::npos);
  EXPECT_NE(report.find("proxy-get"), std::string::npos);
  EXPECT_NE(report.find("registration cache"), std::string::npos);
  EXPECT_NE(report.find("proxy daemons: 1 gets"), std::string::npos);
  EXPECT_NE(report.find("symmetric heaps"), std::string::npos);
}

TEST(Report, BaselineHasNoProxySection) {
  Runtime rt(make_cluster(1, 2), make_options(TransportKind::kHostPipeline));
  rt.run([&](Ctx& ctx) { ctx.barrier_all(); });
  std::string report = format_report(rt);
  EXPECT_EQ(report.find("proxy daemons"), std::string::npos);
  EXPECT_NE(report.find("host-pipeline"), std::string::npos);
}

}  // namespace
}  // namespace gdrshmem::core
