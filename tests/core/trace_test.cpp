// Operation tracer tests: recording, the bounded ring, the Chrome
// trace-event exporter, and the contract that enabling the tracer never
// perturbs virtual time.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

TEST(Trace, DisabledByDefaultAndFree) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.run([&](Ctx& ctx) {
    void* p = ctx.shmalloc(64);
    int v = 1;
    if (ctx.my_pe() == 0) ctx.putmem(p, &v, sizeof(v), 1);
    ctx.barrier_all();
  });
  EXPECT_TRUE(rt.tracer().events().empty());
  EXPECT_EQ(rt.tracer().dropped(), 0u);
}

TEST(Trace, RecordsOpsWithProtocolAndTiming) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.tracer().enable();
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.putmem(g, local, 8, 1);
      ctx.getmem(local, g, 1u << 20, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
  });
  // Find the user ops among the barrier-internal flag puts.
  const std::vector<TraceEvent> evs = rt.tracer().events();
  const TraceEvent* small_put = nullptr;
  const TraceEvent* big_get = nullptr;
  for (const auto& e : evs) {
    if (e.kind == TraceEvent::Kind::kPut && e.bytes == 8 && e.target == 1 &&
        e.protocol == Protocol::kDirectGdr) {
      small_put = &e;
    }
    if (e.kind == TraceEvent::Kind::kGet && e.bytes == (1u << 20)) big_get = &e;
  }
  ASSERT_NE(small_put, nullptr);
  ASSERT_NE(big_get, nullptr);
  EXPECT_EQ(big_get->protocol, Protocol::kProxyGet);
  EXPECT_GT(big_get->end, big_get->start);
  EXPECT_GE(big_get->start, small_put->start);

  std::string csv = rt.tracer().to_csv();
  EXPECT_NE(csv.find("pe,kind,target,bytes,protocol,start_us,end_us"),
            std::string::npos);
  EXPECT_NE(csv.find("proxy-get"), std::string::npos);
  EXPECT_NE(csv.find("direct-gdr"), std::string::npos);
}

TEST(Trace, RingDropsOldestAndCountsThem) {
  Tracer tr(/*capacity=*/4);
  tr.enable();
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.pe = i;
    e.start = e.end = sim::Time::ns(i);
    tr.record(e);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  std::vector<TraceEvent> evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  // The newest four, in chronological order.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(evs[static_cast<std::size_t>(i)].pe, 6 + i);
}

TEST(Trace, SetCapacityShrinkKeepsNewest) {
  Tracer tr(/*capacity=*/8);
  tr.enable();
  for (int i = 0; i < 8; ++i) {
    TraceEvent e;
    e.pe = i;
    tr.record(e);
  }
  tr.set_capacity(3);
  EXPECT_EQ(tr.capacity(), 3u);
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 5u);
  std::vector<TraceEvent> evs = tr.events();
  ASSERT_EQ(evs.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(evs[static_cast<std::size_t>(i)].pe, 5 + i);
  // Ring behavior continues at the new capacity.
  TraceEvent e;
  e.pe = 99;
  tr.record(e);
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 6u);
  EXPECT_EQ(tr.events().back().pe, 99);
}

TEST(Trace, ChromeJsonGolden) {
  // Hand-built events -> byte-stable exporter output.
  Tracer tr;
  tr.enable();
  tr.record(TraceEvent{0, 1, TraceEvent::Kind::kPut, Protocol::kDirectGdr, 8,
                       sim::Time::ns(1500), sim::Time::ns(3000)});
  TraceEvent fault;
  fault.pe = 1;
  fault.target = -1;
  fault.kind = TraceEvent::Kind::kRetransmit;
  fault.start = fault.end = sim::Time::ns(5000);
  tr.record(fault);
  EXPECT_EQ(
      tr.to_chrome_json(),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"put\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":1.500,"
      "\"dur\":1.500,\"pid\":0,\"tid\":0,\"args\":{\"protocol\":\"direct-gdr\","
      "\"bytes\":8,\"target\":1}},"
      "{\"name\":\"retransmit\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":5.000,"
      "\"s\":\"t\",\"pid\":0,\"tid\":1,\"args\":{\"bytes\":0,\"target\":-1}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"PE 0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"PE 1\"}}],"
      "\"otherData\":{\"recorded_events\":2,\"dropped_events\":0}}\n");
}

TEST(Trace, ChromeJsonSurfacesDrops) {
  Tracer tr(/*capacity=*/1);
  tr.enable();
  for (int i = 0; i < 3; ++i) tr.record(TraceEvent{});
  std::string json = tr.to_chrome_json();
  EXPECT_NE(json.find("\"recorded_events\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":2"), std::string::npos);
}

TEST(Trace, ChromeJsonFromRealRunIsWellFormed) {
  Runtime rt(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr));
  rt.tracer().enable();
  rt.run([&](Ctx& ctx) {
    void* p = ctx.shmalloc(4096);
    std::vector<std::byte> buf(4096);
    ctx.putmem(p, buf.data(), buf.size(), (ctx.my_pe() + 1) % ctx.n_pes());
    ctx.barrier_all();
  });
  std::string json = rt.tracer().to_chrome_json();
  ASSERT_FALSE(rt.tracer().events().empty());
  // Structurally balanced and carrying the expected sections.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
}

// The core observability contract: an enabled tracer is bookkeeping only.
// The same workload must reach the identical virtual end time and execute
// the identical number of engine events with tracing on and off — on both
// execution backends.
TEST(Trace, EnabledTracerDoesNotPerturbVirtualTime) {
  auto run_once = [](sim::BackendKind backend, bool trace) {
    RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
    opts.sim_backend = backend;
    opts.trace = trace;
    Runtime rt(make_cluster(2, 2), opts);
    rt.run([&](Ctx& ctx) {
      void* g = ctx.shmalloc(256u << 10, Domain::kGpu);
      void* local = ctx.cuda_malloc(256u << 10);
      int peer = (ctx.my_pe() + 1) % ctx.n_pes();
      ctx.putmem(g, local, 8, peer);
      ctx.putmem(g, local, 256u << 10, peer);
      ctx.getmem(local, g, 64u << 10, peer);
      auto* ctr = static_cast<std::int64_t*>(ctx.shmalloc(8));
      ctx.atomic_fetch_add(ctr, 1, peer);
      ctx.barrier_all();
    });
    EXPECT_EQ(rt.tracer().enabled(), trace);
    if (trace) {
      EXPECT_GT(rt.tracer().size(), 0u);
    }
    return std::pair{rt.engine().now(), rt.engine().events_executed()};
  };
  for (auto backend : {sim::BackendKind::kFibers, sim::BackendKind::kThreads}) {
    auto off = run_once(backend, false);
    auto on = run_once(backend, true);
    EXPECT_EQ(off.first, on.first) << "virtual end time changed by tracing";
    EXPECT_EQ(off.second, on.second) << "event count changed by tracing";
  }
}

}  // namespace
}  // namespace gdrshmem::core
