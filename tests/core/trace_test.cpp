// Operation tracer tests.
#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;

TEST(Trace, DisabledByDefaultAndFree) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.run([&](Ctx& ctx) {
    void* p = ctx.shmalloc(64);
    int v = 1;
    if (ctx.my_pe() == 0) ctx.putmem(p, &v, sizeof(v), 1);
    ctx.barrier_all();
  });
  EXPECT_TRUE(rt.tracer().events().empty());
}

TEST(Trace, RecordsOpsWithProtocolAndTiming) {
  Runtime rt(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr));
  rt.tracer().enable();
  rt.run([&](Ctx& ctx) {
    void* g = ctx.shmalloc(1u << 20, Domain::kGpu);
    void* local = ctx.cuda_malloc(1u << 20);
    if (ctx.my_pe() == 0) {
      ctx.putmem(g, local, 8, 1);
      ctx.getmem(local, g, 1u << 20, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
  });
  // Find the user ops among the barrier-internal flag puts.
  const TraceEvent* small_put = nullptr;
  const TraceEvent* big_get = nullptr;
  for (const auto& e : rt.tracer().events()) {
    if (e.kind == TraceEvent::Kind::kPut && e.bytes == 8 && e.target == 1 &&
        e.protocol == Protocol::kDirectGdr) {
      small_put = &e;
    }
    if (e.kind == TraceEvent::Kind::kGet && e.bytes == (1u << 20)) big_get = &e;
  }
  ASSERT_NE(small_put, nullptr);
  ASSERT_NE(big_get, nullptr);
  EXPECT_EQ(big_get->protocol, Protocol::kProxyGet);
  EXPECT_GT(big_get->end, big_get->start);
  EXPECT_GE(big_get->start, small_put->start);

  std::string csv = rt.tracer().to_csv();
  EXPECT_NE(csv.find("pe,kind,target,bytes,protocol,start_us,end_us"),
            std::string::npos);
  EXPECT_NE(csv.find("proxy-get"), std::string::npos);
  EXPECT_NE(csv.find("direct-gdr"), std::string::npos);
}

}  // namespace
}  // namespace gdrshmem::core
