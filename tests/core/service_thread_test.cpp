// The service-thread alternative (Section III-C): restores asynchronous
// progress for the baseline transport — at the cost of application CPU.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;

double busy_target_put_us(bool service_thread) {
  RuntimeOptions opts;
  opts.transport = TransportKind::kHostPipeline;
  opts.service_thread = service_thread;
  Runtime rt(make_cluster(2, 1), opts);
  sim::Duration comm;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(8192, Domain::kGpu);
    void* local = ctx.cuda_malloc(8192);
    if (ctx.my_pe() == 0) {
      ctx.putmem(sym, local, 8192, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem(sym, local, 8192, 1);
      ctx.quiet();
      comm = ctx.now() - t0;
    } else {
      ctx.proc().delay(sim::Duration::us(500));  // raw busy time, no penalty
    }
    ctx.barrier_all();
  });
  return comm.to_us();
}

TEST(ServiceThread, RestoresProgressUnderBusyTarget) {
  double without = busy_target_put_us(false);
  double with = busy_target_put_us(true);
  EXPECT_GT(without, 400.0);  // stalls until the target computes through
  EXPECT_LT(with, 60.0);      // the service thread does the last hop
}

TEST(ServiceThread, StealsComputeResources) {
  // The paper's objection: the service thread consumes CPU the application
  // needs — modeled as a penalty on Ctx::compute.
  for (bool svc : {false, true}) {
    RuntimeOptions opts;
    opts.transport = TransportKind::kHostPipeline;
    opts.service_thread = svc;
    Runtime rt(make_cluster(1, 1), opts);
    sim::Duration took;
    rt.run([&](Ctx& ctx) {
      sim::Time t0 = ctx.now();
      ctx.compute(sim::Duration::us(100));
      took = ctx.now() - t0;
    });
    EXPECT_DOUBLE_EQ(took.to_us(), svc ? 200.0 : 100.0);
  }
}

TEST(ServiceThread, FunctionalCorrectnessPreserved) {
  RuntimeOptions opts;
  opts.transport = TransportKind::kHostPipeline;
  opts.service_thread = true;
  Runtime rt(make_cluster(2, 1), opts);
  rt.run([&](Ctx& ctx) {
    constexpr std::size_t kBytes = 256 * 1024;  // rendezvous path
    auto* sym = static_cast<unsigned char*>(ctx.shmalloc(kBytes, Domain::kGpu));
    std::vector<unsigned char> src(kBytes);
    void* dev_src = ctx.cuda_malloc(kBytes);
    auto* d = static_cast<unsigned char*>(dev_src);
    if (ctx.my_pe() == 0) {
      for (std::size_t i = 0; i < kBytes; ++i) d[i] = static_cast<unsigned char>(i % 251);
      ctx.putmem(sym, dev_src, kBytes, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (std::size_t i = 0; i < kBytes; i += 997) {
        ASSERT_EQ(sym[i], static_cast<unsigned char>(i % 251));
      }
    }
    ctx.barrier_all();
  });
}

}  // namespace
}  // namespace gdrshmem::core
