// Property-style tests: odd-size sweeps, run-to-run determinism, randomized
// operation fuzzing against a reference memory model, proxy stress, and
// collectives on awkward PE counts.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/proxy.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

// ---------------------------------------------------------------------------
// Odd-size put/get round trips across the protocol boundaries.

class OddSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OddSizes, PutGetRoundTripAllDomains) {
  const std::size_t n = GetParam();
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  run_spmd(make_cluster(2, 2), opts, [&](Ctx& ctx) {
    for (Domain d : {Domain::kHost, Domain::kGpu}) {
      auto* sym = static_cast<unsigned char*>(ctx.shmalloc(n, d));
      std::vector<unsigned char> out(n, 0);
      std::vector<unsigned char> in(n);
      for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<unsigned char>(i ^ 0x5a);
      if (ctx.my_pe() == 0) {
        ctx.putmem(sym, in.data(), n, 3);  // inter-node
        ctx.quiet();
        ctx.getmem(out.data(), sym, n, 3);
        EXPECT_EQ(out, in) << "domain " << to_string(d) << " size " << n;
      }
      ctx.barrier_all();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, OddSizes,
                         ::testing::Values(1, 3, 7, 17, 63, 127, 129, 255, 1000,
                                           4097, 8193, 65537, 300001),
                         [](const auto& info) {
                           return "bytes" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Determinism: identical configurations give bit-identical virtual time.

std::pair<std::int64_t, std::uint64_t> run_fingerprint() {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  Runtime rt(make_cluster(2, 2), opts);
  rt.run([&](Ctx& ctx) {
    auto* a = static_cast<std::int64_t*>(ctx.shmalloc(1024, Domain::kGpu));
    for (int i = 0; i < 10; ++i) {
      ctx.putmem(a, &i, sizeof(i), (ctx.my_pe() + 1) % 4);
      if (i % 3 == 0) ctx.atomic_add(a, 1, (ctx.my_pe() + 2) % 4);
      ctx.barrier_all();
    }
  });
  return {rt.engine().now().count_ns(), rt.verbs().ops_posted()};
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  auto a = run_fingerprint();
  auto b = run_fingerprint();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------------
// Randomized operation fuzz against a reference model of symmetric memory.

TEST(Fuzz, RandomOpsMatchReferenceModel) {
  constexpr int kNp = 4;
  constexpr std::size_t kWords = 64;
  // reference[pe][i] mirrors what PE pe's symmetric array should hold.
  std::vector<std::vector<std::uint64_t>> reference(
      kNp, std::vector<std::uint64_t>(kWords, 0));

  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  run_spmd(make_cluster(2, 2), opts, [&](Ctx& ctx) {
    auto* arr = static_cast<std::uint64_t*>(
        ctx.shmalloc(kWords * sizeof(std::uint64_t), Domain::kGpu));
    ctx.barrier_all();
    // Only PE 0 mutates (so the reference needs no ordering model), but it
    // targets every PE with a random mix of ops and verifies with gets.
    if (ctx.my_pe() == 0) {
      sim::Rng rng(0xfeedface);
      for (int step = 0; step < 200; ++step) {
        int target = static_cast<int>(rng.next_below(kNp));
        std::size_t idx = rng.next_below(kWords);
        std::uint64_t val = rng.next_u64();
        switch (rng.next_below(3)) {
          case 0: {
            ctx.putmem(arr + idx, &val, sizeof(val), target);
            ctx.quiet();
            reference[static_cast<std::size_t>(target)][idx] = val;
            break;
          }
          case 1: {
            auto add = static_cast<std::int64_t>(val % 1000);
            ctx.atomic_add(reinterpret_cast<std::int64_t*>(arr + idx), add, target);
            reference[static_cast<std::size_t>(target)][idx] +=
                static_cast<std::uint64_t>(add);
            break;
          }
          case 2: {
            std::uint64_t got = 0;
            ctx.getmem(&got, arr + idx, sizeof(got), target);
            ASSERT_EQ(got, reference[static_cast<std::size_t>(target)][idx])
                << "step " << step << " target " << target << " idx " << idx;
            break;
          }
        }
      }
    }
    ctx.barrier_all();
    // Final full verification on every PE's own memory.
    for (std::size_t i = 0; i < kWords; ++i) {
      ASSERT_EQ(arr[i], reference[static_cast<std::size_t>(ctx.my_pe())][i]);
    }
    ctx.barrier_all();
  });
}

// ---------------------------------------------------------------------------
// Proxy stress: several PEs pull large blocks from GPUs on one node at once.

TEST(ProxyStress, ConcurrentLargeGetsAreServedFifo) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.gpu_heap_bytes = 32u << 20;
  auto rt = run_spmd(
      make_cluster(3, 2), opts, [&](Ctx& ctx) {
        constexpr std::size_t kBytes = 1u << 20;
        auto* sym = static_cast<unsigned char*>(ctx.shmalloc(kBytes, Domain::kGpu));
        for (std::size_t i = 0; i < kBytes; i += 4096) {
          sym[i] = static_cast<unsigned char>(ctx.my_pe() + 1);
        }
        ctx.barrier_all();
        // PEs 2..5 all pull from node 0's two PEs simultaneously.
        if (ctx.my_pe() >= 2) {
          int victim = ctx.my_pe() % 2;
          std::vector<unsigned char> local(kBytes);
          ctx.getmem(local.data(), sym, kBytes, victim);
          for (std::size_t i = 0; i < kBytes; i += 4096) {
            ASSERT_EQ(local[i], static_cast<unsigned char>(victim + 1));
          }
        }
        ctx.barrier_all();
      });
  EXPECT_EQ(rt->proxy(0).gets_served(), 4u);
}

TEST(ProxyStress, MixedPutsAndGetsThroughOneProxy) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.gpu_heap_bytes = 32u << 20;
  hw::ClusterConfig cluster = make_cluster(2, 2, /*same_socket=*/false);
  run_spmd(cluster, opts, [&](Ctx& ctx) {
    constexpr std::size_t kBytes = 512 * 1024;
    auto* sym = static_cast<unsigned char*>(ctx.shmalloc(kBytes, Domain::kGpu));
    std::vector<unsigned char> host_buf(kBytes);
    ctx.barrier_all();
    if (ctx.my_pe() < 2) {
      // Node 0's PEs push large host->device puts into node 1 (proxy-put
      // because of the inter-socket write cap)...
      for (std::size_t i = 0; i < kBytes; ++i) {
        host_buf[i] = static_cast<unsigned char>(ctx.my_pe() * 3 + i % 7);
      }
      ctx.putmem(sym, host_buf.data(), kBytes, ctx.my_pe() + 2);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() >= 2) {
      for (std::size_t i = 0; i < kBytes; i += 1111) {
        ASSERT_EQ(sym[i],
                  static_cast<unsigned char>((ctx.my_pe() - 2) * 3 + i % 7));
      }
    }
    ctx.barrier_all();
  });
}

// ---------------------------------------------------------------------------
// Collectives on non-power-of-two PE counts.

class AwkwardPeCounts : public ::testing::TestWithParam<int> {};

TEST_P(AwkwardPeCounts, BarrierBroadcastReduceCollect) {
  const int np = GetParam();
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  run_spmd(make_cluster(np, 1), opts, [&](Ctx& ctx) {
    auto* v = static_cast<std::int64_t*>(ctx.shmalloc(8));
    auto* r = static_cast<std::int64_t*>(ctx.shmalloc(8));
    auto* blocks = static_cast<std::int64_t*>(
        ctx.shmalloc(8 * static_cast<std::size_t>(np)));
    *v = ctx.my_pe() + 1;
    ctx.barrier_all();
    ctx.sum_to_all(r, v, 1);
    EXPECT_EQ(*r, np * (np + 1) / 2);
    ctx.broadcastmem(v, r, 8, np - 1);  // root = last PE
    if (ctx.my_pe() != np - 1) EXPECT_EQ(*v, np * (np + 1) / 2);
    std::int64_t mine = 100 + ctx.my_pe();
    ctx.fcollectmem(blocks, &mine, 8);
    for (int i = 0; i < np; ++i) EXPECT_EQ(blocks[i], 100 + i);
    ctx.barrier_all();
  });
}

INSTANTIATE_TEST_SUITE_P(NonPow2, AwkwardPeCounts, ::testing::Values(1, 2, 3, 5, 6, 7),
                         [](const auto& info) {
                           return "np" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Skewed barrier stress: PEs with random compute patterns never desync.

TEST(BarrierStress, RandomSkewsStaySynchronized) {
  constexpr int kNp = 6;
  std::vector<int> phase(kNp, 0);
  run_spmd(make_cluster(3, 2), make_options(TransportKind::kHostPipeline),
           [&](Ctx& ctx) {
             sim::Rng rng(static_cast<std::uint64_t>(ctx.my_pe()) * 7919 + 13);
             for (int round = 0; round < 12; ++round) {
               ctx.compute(sim::Duration::us(static_cast<double>(rng.next_below(40))));
               phase[ctx.my_pe()] = round;
               ctx.barrier_all();
               for (int pe = 0; pe < kNp; ++pe) {
                 ASSERT_GE(phase[pe], round) << "PE " << pe << " behind at round "
                                             << round;
               }
             }
           });
}

}  // namespace
}  // namespace gdrshmem::core
