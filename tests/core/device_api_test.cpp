// Device-initiated OpenSHMEM: in-kernel RMA/atomics/signals through both
// backends (GPU-IB doorbell and reverse offload), the shmemx_* C surface,
// option validation, and recovery when the proxy serving a reverse-offload
// kernel crashes mid-flight.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/device_api.hpp"
#include "gdrshmem_device.h"
#include "test_util.hpp"

namespace gdrshmem {
namespace {

using core::Ctx;
using core::DeviceBackendKind;
using core::DeviceCtx;
using core::Domain;
using core::RuntimeOptions;
using core::TransportKind;
using core::testing::make_cluster;
using core::testing::make_options;
using core::testing::run_spmd;

constexpr DeviceBackendKind kBackends[] = {DeviceBackendKind::kGpuIb,
                                           DeviceBackendKind::kReverseOffload};

RuntimeOptions device_options(DeviceBackendKind kind,
                              std::size_t heap = 16u << 20) {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.device_backend = kind;
  opts.gpu_heap_bytes = heap;
  opts.host_heap_bytes = heap;
  return opts;
}

unsigned char pattern(int pe, std::size_t i) {
  return static_cast<unsigned char>((pe * 131 + i * 7) & 0xff);
}

struct ScopedEnv {
  ScopedEnv(const char* k, const char* v) : key(k) { setenv(k, v, 1); }
  ~ScopedEnv() { unsetenv(key); }
  const char* key;
};

// ---------------------------------------------------------------------------
// In-kernel RMA.

TEST(DeviceApi, InKernelRingPutSignalBothBackends) {
  const std::size_t n = 8u << 10;
  for (DeviceBackendKind kind : kBackends) {
    auto rt = run_spmd(make_cluster(2, 2), device_options(kind), [&](Ctx& ctx) {
      const int me = ctx.my_pe();
      const int np = ctx.n_pes();
      const int right = (me + 1) % np;
      auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
      auto* sig = static_cast<std::uint64_t*>(
          ctx.shmalloc(sizeof(std::uint64_t), Domain::kGpu));
      std::vector<unsigned char> src(n);
      for (std::size_t i = 0; i < n; ++i) src[i] = pattern(me, i);
      *sig = 0;
      ctx.barrier_all();
      ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                               [&](DeviceCtx& d) {
        d.put_signal(dev, src.data(), n, sig, 1, right);
        d.signal_wait_until(sig, core::Cmp::kGe, 1);
      });
      const int left = (me + np - 1) % np;
      for (std::size_t i = 0; i < n; i += 97) {
        ASSERT_EQ(dev[i], pattern(left, i)) << core::to_string(kind);
      }
      ctx.barrier_all();
    });
    EXPECT_GT(rt->stats().puts, 0u);
  }
}

TEST(DeviceApi, InKernelGetAndTypedOpsBothBackends) {
  for (DeviceBackendKind kind : kBackends) {
    auto rt = run_spmd(make_cluster(2, 1), device_options(kind), [&](Ctx& ctx) {
      const int me = ctx.my_pe();
      const int peer = 1 - me;
      auto* vals = static_cast<double*>(
          ctx.shmalloc(64 * sizeof(double), Domain::kGpu));
      for (int i = 0; i < 64; ++i) vals[i] = me * 1000.0 + i;
      ctx.barrier_all();
      double got[64] = {0};
      double single = -1;
      ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                               [&](DeviceCtx& d) {
        d.get(got, vals, 64, peer);
        single = d.g(vals + 7, peer);
        d.p(vals + 63, 4242.0 + me, peer);
        d.quiet();
      });
      for (int i = 0; i < 63; ++i) {
        ASSERT_EQ(got[i], peer * 1000.0 + i) << core::to_string(kind);
      }
      EXPECT_EQ(single, peer * 1000.0 + 7);
      ctx.barrier_all();
      EXPECT_EQ(vals[63], 4242.0 + peer);
      ctx.barrier_all();
    });
    EXPECT_GT(rt->stats().gets, 0u);
  }
}

TEST(DeviceApi, NbiPutsDrainThroughBoundedRing) {
  // Queue depth 2 with 16 outstanding nbi puts forces the ring to reap and
  // wait for free slots; quiet must still drain everything.
  RuntimeOptions opts = device_options(DeviceBackendKind::kReverseOffload);
  opts.device_queue_depth = 2;
  const std::size_t n = 4u << 10;
  run_spmd(make_cluster(2, 1), opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(16 * n, Domain::kGpu));
    std::vector<unsigned char> src(16 * n);
    for (std::size_t i = 0; i < 16 * n; ++i) src[i] = pattern(me, i);
    ctx.barrier_all();
    if (me == 0) {
      ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                               [&](DeviceCtx& d) {
        for (int k = 0; k < 16; ++k) {
          d.putmem_nbi(dev + k * n, src.data() + k * n, n, 1);
        }
        d.quiet();
      });
    }
    ctx.barrier_all();
    if (me == 1) {
      for (std::size_t i = 0; i < 16 * n; i += 61) {
        ASSERT_EQ(dev[i], pattern(0, i)) << "byte " << i;
      }
    }
    ctx.barrier_all();
  });
}

// ---------------------------------------------------------------------------
// In-kernel atomics.

TEST(DeviceApi, InKernelAtomicsBothBackends) {
  for (DeviceBackendKind kind : kBackends) {
    auto rt = run_spmd(make_cluster(2, 2), device_options(kind), [&](Ctx& ctx) {
      const int me = ctx.my_pe();
      const int np = ctx.n_pes();
      auto* counter = static_cast<std::int64_t*>(
          ctx.shmalloc(2 * sizeof(std::int64_t), Domain::kGpu));
      counter[0] = 0;
      counter[1] = -1;
      ctx.barrier_all();
      std::int64_t before = -7;
      std::int64_t cas_seen = -7;
      ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                               [&](DeviceCtx& d) {
        before = d.atomic_fetch_add(counter, 10 + me, 0);
        // Exactly one PE wins the swap from -1 to its rank.
        cas_seen = d.atomic_compare_swap(counter + 1, -1, me, 0);
      });
      ctx.barrier_all();
      EXPECT_GE(before, 0);
      EXPECT_TRUE(cas_seen == -1 || (cas_seen >= 0 && cas_seen < np));
      if (me == 0) {
        // 10+0 + 10+1 + 10+2 + 10+3.
        EXPECT_EQ(counter[0], 4 * 10 + 0 + 1 + 2 + 3) << core::to_string(kind);
        EXPECT_GE(counter[1], 0);
        EXPECT_LT(counter[1], np);
      }
      ctx.barrier_all();
    });
    EXPECT_GT(rt->stats().atomics, 0u);
  }
}

// ---------------------------------------------------------------------------
// shmem_ptr load/store from the kernel.

TEST(DeviceApi, PtrLoadStoreIntraNode) {
  auto opts = device_options(DeviceBackendKind::kGpuIb);
  run_spmd(make_cluster(1, 2), opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const int peer = 1 - me;
    auto* hostv = static_cast<std::int64_t*>(ctx.shmalloc(sizeof(std::int64_t)));
    auto* devv = static_cast<std::int64_t*>(
        ctx.shmalloc(sizeof(std::int64_t), Domain::kGpu));
    *hostv = 100 + me;
    *devv = 200 + me;
    ctx.barrier_all();
    ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                             [&](DeviceCtx& d) {
      auto* ph = static_cast<std::int64_t*>(d.ptr(hostv, peer));
      ASSERT_NE(ph, nullptr);
      EXPECT_EQ(d.ptr_load(ph), 100 + peer);
      d.ptr_store(ph, static_cast<std::int64_t>(500 + me), peer);
      // Same-node GPU heap is IPC-mappable while P2P is healthy.
      auto* pd = static_cast<std::int64_t*>(d.ptr(devv, peer));
      ASSERT_NE(pd, nullptr);
      EXPECT_EQ(d.ptr_load(pd), 200 + peer);
    });
    ctx.barrier_all();
    EXPECT_EQ(*hostv, 500 + peer);
    ctx.barrier_all();
  });
}

TEST(DeviceApi, PtrIsNullAcrossNodes) {
  run_spmd(make_cluster(2, 1), device_options(DeviceBackendKind::kGpuIb),
           [&](Ctx& ctx) {
    auto* v = static_cast<std::int64_t*>(ctx.shmalloc(sizeof(std::int64_t)));
    ctx.barrier_all();
    ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                             [&](DeviceCtx& d) {
      EXPECT_EQ(d.ptr(v, 1 - ctx.my_pe()), nullptr);
    });
    ctx.barrier_all();
  });
}

// ---------------------------------------------------------------------------
// Issue scopes: cooperative WQE assembly is cheaper, never costlier.

TEST(DeviceApi, WarpAndBlockScopesReduceIssueCost) {
  auto run_at = [&](core::DeviceScope scope) {
    double us = 0;
    run_spmd(make_cluster(2, 1), device_options(DeviceBackendKind::kGpuIb),
             [&](Ctx& ctx) {
      auto* dev = static_cast<unsigned char*>(ctx.shmalloc(256, Domain::kGpu));
      std::vector<unsigned char> src(256, 0x5a);
      ctx.barrier_all();
      sim::Time t0 = ctx.now();
      if (ctx.my_pe() == 0) {
        ctx.launch_kernel_device(1.0, scope, [&](DeviceCtx& d) {
          for (int i = 0; i < 32; ++i) d.putmem(dev, src.data(), 256, 1);
        });
        us = (ctx.now() - t0).to_us();
      }
      ctx.barrier_all();
    });
    return us;
  };
  double thread_us = run_at(core::DeviceScope::kThread);
  double warp_us = run_at(core::DeviceScope::kWarp);
  double block_us = run_at(core::DeviceScope::kBlock);
  EXPECT_LT(warp_us, thread_us);
  EXPECT_LT(block_us, warp_us);
}

// ---------------------------------------------------------------------------
// The shmemx_* C surface.

TEST(DeviceApi, ShmemxSurfaceDrivesAKernel) {
  using namespace capi;
  run_spmd(make_cluster(2, 1),
           device_options(DeviceBackendKind::kReverseOffload), [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(1024, Domain::kGpu));
    auto* sig = static_cast<std::uint64_t*>(
        ctx.shmalloc(sizeof(std::uint64_t), Domain::kGpu));
    auto* cnt = static_cast<long long*>(
        ctx.shmalloc(sizeof(long long), Domain::kGpu));
    std::vector<unsigned char> src(1024);
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = pattern(me, i);
    *sig = 0;
    *cnt = 0;
    ctx.barrier_all();
    shmemx_launch_kernel(ctx, 1.0, SHMEMX_SCOPE_WARP,
                         [&](shmemx_device_ctx_t d) {
      EXPECT_EQ(shmemx_my_pe(d), me);
      EXPECT_EQ(shmemx_n_pes(d), 2);
      shmemx_compute(d, 128);
      shmemx_putmem_signal(d, dev, src.data(), src.size(), sig, 1, 1 - me);
      shmemx_signal_wait_until(d, sig, SHMEMX_CMP_GE, 1);
      (void)shmemx_atomic_fetch_add(d, cnt, 5, 0);
      shmemx_quiet(d);
    });
    ctx.barrier_all();
    for (std::size_t i = 0; i < 1024; i += 37) {
      ASSERT_EQ(dev[i], pattern(1 - me, i));
    }
    if (me == 0) {
      EXPECT_EQ(*cnt, 10);
    }
    ctx.barrier_all();
  });
}

// ---------------------------------------------------------------------------
// Option validation.

TEST(DeviceApi, FromEnvValidatesBackendAndQueueDepth) {
  {
    ScopedEnv e("GDRSHMEM_DEVICE_BACKEND", "gpu-ib");
    EXPECT_EQ(RuntimeOptions::from_env().device_backend,
              DeviceBackendKind::kGpuIb);
  }
  {
    ScopedEnv e("GDRSHMEM_DEVICE_BACKEND", "reverse");
    EXPECT_EQ(RuntimeOptions::from_env().device_backend,
              DeviceBackendKind::kReverseOffload);
  }
  {
    ScopedEnv e("GDRSHMEM_DEVICE_BACKEND", "bogus");
    EXPECT_THROW(RuntimeOptions::from_env(), core::ShmemError);
  }
  {
    ScopedEnv e("GDRSHMEM_DEVICE_QUEUE_DEPTH", "16");
    EXPECT_EQ(RuntimeOptions::from_env().device_queue_depth, 16);
  }
  {
    ScopedEnv e("GDRSHMEM_DEVICE_QUEUE_DEPTH", "0");
    EXPECT_THROW(RuntimeOptions::from_env(), core::ShmemError);
  }
}

TEST(DeviceApi, ReverseOffloadRequiresProxy) {
  RuntimeOptions opts = device_options(DeviceBackendKind::kReverseOffload);
  opts.tuning.use_proxy = false;
  EXPECT_THROW(
      run_spmd(make_cluster(2, 1), opts, [&](Ctx& ctx) {
        auto* dev = static_cast<unsigned char*>(ctx.shmalloc(64, Domain::kGpu));
        unsigned char byte = 1;
        ctx.barrier_all();
        ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                                 [&](DeviceCtx& d) {
          d.putmem(dev, &byte, 1, 1 - ctx.my_pe());
        });
      }),
      core::ShmemError);
}

// ---------------------------------------------------------------------------
// Determinism: both execution engines, both device backends.

TEST(DeviceApi, BackendsDeterministicAcrossEngines) {
  for (DeviceBackendKind kind : kBackends) {
    std::uint64_t end_ns[2] = {0, 0};
    std::uint64_t sum[2] = {0, 0};
    int slot = 0;
    for (sim::BackendKind engine :
         {sim::BackendKind::kFibers, sim::BackendKind::kThreads}) {
      RuntimeOptions opts = device_options(kind);
      opts.sim_backend = engine;
      const std::size_t n = 16u << 10;
      auto rt = run_spmd(make_cluster(2, 2), opts, [&](Ctx& ctx) {
        const int me = ctx.my_pe();
        const int right = (me + 1) % ctx.n_pes();
        auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
        auto* sig = static_cast<std::uint64_t*>(
            ctx.shmalloc(sizeof(std::uint64_t), Domain::kGpu));
        std::vector<unsigned char> src(n);
        for (std::size_t i = 0; i < n; ++i) src[i] = pattern(me, i);
        *sig = 0;
        ctx.barrier_all();
        ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                                 [&](DeviceCtx& d) {
          for (int r = 0; r < 3; ++r) {
            d.put_signal(dev, src.data(), n, sig,
                         static_cast<std::uint64_t>(r) + 1, right);
            d.signal_wait_until(sig, core::Cmp::kGe,
                                static_cast<std::uint64_t>(r) + 1);
          }
          d.quiet();
        });
        ctx.barrier_all();
        if (me == 0) {
          std::uint64_t s = 0;
          for (std::size_t i = 0; i < n; ++i) s = s * 31 + dev[i];
          sum[slot] = s;
        }
        ctx.barrier_all();
      });
      end_ns[slot] = rt->engine().now().count_ns();
      ++slot;
    }
    EXPECT_EQ(sum[0], sum[1]) << core::to_string(kind);
    EXPECT_EQ(end_ns[0], end_ns[1]) << core::to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// Fault plans.

TEST(DeviceApi, ProxyCrashMidKernelRecoversReverseOffload) {
  // Kill the REQUESTER's node proxy (reverse commands are served by the
  // kernel's own node) mid-way through a 4 MB in-kernel put; the kernel's
  // per-attempt deadline must fire, reissue with fresh state, and land
  // exactly the same bytes the fault-free run lands.
  const std::size_t n = 4u << 20;
  auto run_once = [&](const char* plan) {
    RuntimeOptions opts = device_options(DeviceBackendKind::kReverseOffload);
    if (plan != nullptr) opts.faults = sim::FaultPlan::parse(plan);
    std::uint64_t digest = 0;
    auto rt = run_spmd(make_cluster(2, 1), opts, [&](Ctx& ctx) {
      const int me = ctx.my_pe();
      auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
      std::memset(dev, 0, n);
      std::vector<unsigned char> src(n);
      for (std::size_t i = 0; i < n; ++i) src[i] = pattern(0, i);
      ctx.barrier_all();
      if (me == 0) {
        ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                                 [&](DeviceCtx& d) {
          d.putmem(dev, src.data(), n, 1);
          d.quiet();
        });
      }
      ctx.barrier_all();
      if (me == 1) {
        std::uint64_t s = 0;
        for (std::size_t i = 0; i < n; i += 509) s = s * 31 + dev[i];
        digest = s;
      }
      ctx.barrier_all();
    });
    return std::make_pair(digest, std::move(rt));
  };

  auto [clean, clean_rt] = run_once(nullptr);
  auto [faulty, faulty_rt] = run_once("crash=0@300");
  EXPECT_EQ(clean, faulty);
  EXPECT_EQ(faulty_rt->faults().count(sim::FaultEvent::kProxyCrash), 1u);
  EXPECT_EQ(faulty_rt->faults().count(sim::FaultEvent::kProxyRestart), 1u);
  EXPECT_GE(faulty_rt->faults().count(sim::FaultEvent::kProxyReissue), 1u);
  EXPECT_EQ(clean_rt->faults().count(sim::FaultEvent::kProxyCrash), 0u);
}

TEST(DeviceApi, GpuIbFallsBackToProxyWhenP2pRevoked) {
  // Revoking P2P on the issuing node makes the GPU unable to build/ring its
  // own WQEs against GPU memory; the GPU-IB backend must reroute through the
  // reverse-offload path and stay correct.
  RuntimeOptions opts = device_options(DeviceBackendKind::kGpuIb);
  opts.faults = sim::FaultPlan::parse("revoke=0@0");
  const std::size_t n = 32u << 10;
  auto rt = run_spmd(make_cluster(2, 1), opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
    std::memset(dev, 0, n);
    // GPU-resident source: with node 0's P2P revoked, the device cannot post
    // this leg itself.
    auto* src = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
    for (std::size_t i = 0; i < n; ++i) src[i] = pattern(3, i);
    ctx.barrier_all();
    if (me == 0) {
      ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                               [&](DeviceCtx& d) {
        d.putmem(dev, src, n, 1);
        d.quiet();
      });
    }
    ctx.barrier_all();
    if (me == 1) {
      for (std::size_t i = 0; i < n; i += 101) {
        ASSERT_EQ(dev[i], pattern(3, i)) << "byte " << i;
      }
    }
    ctx.barrier_all();
  });
  EXPECT_GT(rt->faults().count(sim::FaultEvent::kGdrFallback), 0u);
}

}  // namespace
}  // namespace gdrshmem
