// Atomics tests: IB hardware 64-bit atomics on host and GPU symmetric
// memory, the <64-bit mask technique, and concurrent-correctness.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

TEST(Atomics, FetchAddOnHostSymmetric) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* c = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *c = 100;
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               EXPECT_EQ(ctx.atomic_fetch_add(c, 7, 1), 100);
               EXPECT_EQ(ctx.atomic_fetch(c, 1), 107);
               ctx.atomic_inc(c, 1);
               EXPECT_EQ(ctx.atomic_fetch(c, 1), 108);
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) EXPECT_EQ(*c, 108);
           });
}

TEST(Atomics, FetchAddOnGpuSymmetric) {
  // Section III-D: GDR lets the HCA run atomics on GPU memory directly.
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* c = static_cast<std::int64_t*>(ctx.shmalloc(8, Domain::kGpu));
             *c = 5;
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               EXPECT_EQ(ctx.atomic_fetch_add(c, 3, 1), 5);
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) EXPECT_EQ(*c, 8);
           });
}

TEST(Atomics, CompareSwapAndSwap) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* c = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *c = 10;
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               EXPECT_EQ(ctx.atomic_compare_swap(c, 99, 1, 1), 10);  // fails
               EXPECT_EQ(ctx.atomic_compare_swap(c, 10, 42, 1), 10); // succeeds
               EXPECT_EQ(ctx.atomic_swap(c, 77, 1), 42);
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) EXPECT_EQ(*c, 77);
           });
}

TEST(Atomics, ConcurrentFetchAddIsLinearizable) {
  constexpr int kPerPe = 25;
  run_spmd(make_cluster(4, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* c = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *c = 0;
             ctx.barrier_all();
             std::vector<std::int64_t> seen;
             for (int i = 0; i < kPerPe; ++i) {
               seen.push_back(ctx.atomic_fetch_add(c, 1, 0));
             }
             // Old values must be strictly increasing per PE.
             for (std::size_t i = 1; i < seen.size(); ++i) {
               EXPECT_GT(seen[i], seen[i - 1]);
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 0) EXPECT_EQ(*c, 8 * kPerPe);
           });
}

TEST(Atomics, MaskTechnique32Bit) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             // Two adjacent 32-bit counters in one 64-bit word: updates to
             // one lane must not disturb the other.
             auto* pair = static_cast<std::int32_t*>(ctx.shmalloc(8));
             pair[0] = 11;
             pair[1] = 22;
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               EXPECT_EQ(ctx.atomic_fetch_add32(&pair[0], 5, 1), 11);
               EXPECT_EQ(ctx.atomic_fetch_add32(&pair[1], -2, 1), 22);
               EXPECT_EQ(ctx.atomic_compare_swap32(&pair[0], 16, 100, 1), 16);
               EXPECT_EQ(ctx.atomic_compare_swap32(&pair[0], 999, 0, 1), 100);
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) {
               EXPECT_EQ(pair[0], 100);
               EXPECT_EQ(pair[1], 20);
             }
           });
}

TEST(Atomics, MisalignedTargetRejected) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* buf = static_cast<std::byte*>(ctx.shmalloc(64));
             auto* misaligned = reinterpret_cast<std::int64_t*>(buf + 4);
             EXPECT_THROW(ctx.atomic_fetch_add(misaligned, 1, 0), ShmemError);
             ctx.barrier_all();
           });
}

TEST(Atomics, LockViaCompareSwap) {
  // The paper motivates atomics with locks/critical sections: build a
  // spinlock over cswap and verify mutual exclusion.
  int in_critical = 0;
  int violations = 0;
  int entries = 0;
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* lock = static_cast<std::int64_t*>(ctx.shmalloc(8));
             *lock = 0;
             ctx.barrier_all();
             for (int round = 0; round < 5; ++round) {
               while (ctx.atomic_compare_swap(lock, 0, 1 + ctx.my_pe(), 0) != 0) {
                 ctx.compute(sim::Duration::us(1));
               }
               if (in_critical != 0) ++violations;
               in_critical = 1;
               ++entries;
               ctx.compute(sim::Duration::us(2));
               in_critical = 0;
               // Release.
               std::int64_t expect = 1 + ctx.my_pe();
               EXPECT_EQ(ctx.atomic_compare_swap(lock, expect, 0, 0), expect);
             }
             ctx.barrier_all();
           });
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(entries, 20);
}

TEST(Atomics, LatencyIsMicrosecondScale) {
  auto rt = std::make_unique<Runtime>(make_cluster(2, 1),
                                      make_options(TransportKind::kEnhancedGdr));
  sim::Duration host_lat, gpu_lat;
  rt->run([&](Ctx& ctx) {
    auto* h = static_cast<std::int64_t*>(ctx.shmalloc(8, Domain::kHost));
    auto* g = static_cast<std::int64_t*>(ctx.shmalloc(8, Domain::kGpu));
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      for (int i = 0; i < 10; ++i) ctx.atomic_fetch_add(h, 1, 1);
      host_lat = (ctx.now() - t0) * 0.1;
      t0 = ctx.now();
      for (int i = 0; i < 10; ++i) ctx.atomic_fetch_add(g, 1, 1);
      gpu_lat = (ctx.now() - t0) * 0.1;
    }
    ctx.barrier_all();
  });
  EXPECT_GT(host_lat.to_us(), 1.0);
  EXPECT_LT(host_lat.to_us(), 6.0);
  EXPECT_GT(gpu_lat, host_lat);  // PCIe P2P RMW adds latency
  EXPECT_LT(gpu_lat.to_us(), 10.0);
}

}  // namespace
}  // namespace gdrshmem::core
