// Core runtime tests: symmetric heaps, shmalloc/shfree, address
// translation, shmem_ptr, and misuse detection.
#include <gtest/gtest.h>

#include "core/heap.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

TEST(SymmetricHeap, BumpAllocationAndAlignment) {
  std::vector<std::byte> storage(4096);
  SymmetricHeap h(Domain::kHost, storage.data(), storage.size());
  void* a = h.allocate(100);
  void* b = h.allocate(10);
  // Alignment is relative to the heap base (offsets must line up across
  // PEs; the bases themselves come from the allocator).
  EXPECT_EQ(h.offset_of(a) % 64, 0u);
  EXPECT_EQ(static_cast<std::byte*>(b) - static_cast<std::byte*>(a), 128);
  EXPECT_TRUE(h.contains(a));
  EXPECT_FALSE(h.contains(storage.data() + 4096));
  EXPECT_EQ(h.live_allocations(), 2u);
}

TEST(SymmetricHeap, ExhaustionThrows) {
  std::vector<std::byte> storage(256);
  SymmetricHeap h(Domain::kGpu, storage.data(), storage.size());
  EXPECT_THROW(h.allocate(512), ShmemError);
  EXPECT_THROW(h.allocate(0), ShmemError);
}

TEST(SymmetricHeap, LifoFreeReclaims) {
  std::vector<std::byte> storage(1024);
  SymmetricHeap h(Domain::kHost, storage.data(), storage.size());
  void* a = h.allocate(128);
  void* b = h.allocate(128);
  std::size_t used = h.used();
  h.deallocate(b);
  EXPECT_LT(h.used(), used);
  void* b2 = h.allocate(128);
  EXPECT_EQ(b2, b);  // space was actually reclaimed
  h.deallocate(b2);
  h.deallocate(a);
  EXPECT_EQ(h.used(), 0u);
  EXPECT_THROW(h.deallocate(a), ShmemError);  // double free
}

TEST(SymmetricHeap, NonLifoFreeDeferred) {
  std::vector<std::byte> storage(1024);
  SymmetricHeap h(Domain::kHost, storage.data(), storage.size());
  void* a = h.allocate(64);
  void* b = h.allocate(64);
  h.deallocate(a);  // below b: reclamation deferred
  EXPECT_GT(h.used(), 0u);
  h.deallocate(b);  // now everything unwinds
  EXPECT_EQ(h.used(), 0u);
}

TEST(Runtime, ShmallocSymmetricAcrossPes) {
  std::vector<void*> host_ptrs(4), gpu_ptrs(4);
  auto rt = run_spmd(make_cluster(2), make_options(TransportKind::kEnhancedGdr),
                     [&](Ctx& ctx) {
                       host_ptrs[ctx.my_pe()] = ctx.shmalloc(1024, Domain::kHost);
                       gpu_ptrs[ctx.my_pe()] = ctx.shmalloc(2048, Domain::kGpu);
                     });
  // Same offset in every PE's heap.
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(rt->heap(pe, Domain::kHost).offset_of(host_ptrs[pe]),
              rt->heap(0, Domain::kHost).offset_of(host_ptrs[0]));
    EXPECT_EQ(rt->heap(pe, Domain::kGpu).offset_of(gpu_ptrs[pe]),
              rt->heap(0, Domain::kGpu).offset_of(gpu_ptrs[0]));
  }
  // GPU-domain allocations are device memory under UVA.
  EXPECT_EQ(rt->cuda().attributes(gpu_ptrs[1]).space, cudart::MemSpace::kDevice);
  EXPECT_EQ(rt->cuda().attributes(host_ptrs[1]).space, cudart::MemSpace::kHost);
}

TEST(Runtime, ShmallocDivergenceDetected) {
  EXPECT_THROW(
      run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
               [&](Ctx& ctx) {
                 // PE 0 and PE 1 disagree about the collective allocation.
                 ctx.shmalloc(ctx.my_pe() == 0 ? 128 : 256, Domain::kHost);
               }),
      ShmemError);
}

TEST(Runtime, TranslateMapsOffsets) {
  run_spmd(make_cluster(2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* p = static_cast<std::byte*>(ctx.shmalloc(512, Domain::kHost));
             Runtime& rt = ctx.runtime();
             Domain dom;
             void* remote = rt.translate(p + 17, ctx.my_pe(),
                                         (ctx.my_pe() + 1) % 4, 4, &dom);
             EXPECT_EQ(dom, Domain::kHost);
             // Same offset within the peer's heap.
             int peer = (ctx.my_pe() + 1) % 4;
             EXPECT_EQ(static_cast<std::byte*>(remote) -
                           rt.heap(peer, Domain::kHost).base(),
                       p + 17 - rt.heap(ctx.my_pe(), Domain::kHost).base());
             ctx.barrier_all();
           });
}

TEST(Runtime, TranslateRejectsNonSymmetric) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             int local = 0;
             EXPECT_THROW(ctx.putmem(&local, &local, 4, 0), ShmemError);
             ctx.barrier_all();
           });
}

TEST(Runtime, TranslateRejectsOverrun) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             void* p = ctx.shmalloc(64, Domain::kHost);
             int v = 0;
             // Put that would run past the end of the heap.
             EXPECT_THROW(
                 ctx.putmem(static_cast<std::byte*>(p), &v,
                            ctx.runtime().options().host_heap_bytes, 0),
                 ShmemError);
             ctx.barrier_all();
           });
}

TEST(Runtime, ShmemPtrSemantics) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             void* h = ctx.shmalloc(64, Domain::kHost);
             void* g = ctx.shmalloc(64, Domain::kGpu);
             if (ctx.my_pe() == 0) {
               EXPECT_NE(ctx.shmem_ptr(h, 1), nullptr);   // same node, host
               EXPECT_EQ(ctx.shmem_ptr(h, 2), nullptr);   // other node
               EXPECT_EQ(ctx.shmem_ptr(g, 1), nullptr);   // GPU domain
               EXPECT_EQ(ctx.shmem_ptr(h, 0), h);         // self
             }
             ctx.barrier_all();
           });
}

TEST(Runtime, TargetPeValidated) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             void* p = ctx.shmalloc(64, Domain::kHost);
             int v = 0;
             EXPECT_THROW(ctx.putmem(p, &v, 4, 7), ShmemError);
             EXPECT_THROW(ctx.putmem(p, &v, 4, -1), ShmemError);
             ctx.barrier_all();
           });
}

TEST(Runtime, RunIsSingleShot) {
  Runtime rt(make_cluster(1, 1), make_options(TransportKind::kEnhancedGdr));
  rt.run([](Ctx&) {});
  EXPECT_THROW(rt.run([](Ctx&) {}), ShmemError);
}

TEST(Runtime, ApiOutsideRunThrows) {
  Runtime rt(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr));
  EXPECT_THROW(rt.ctx(0).barrier_all(), ShmemError);
}

TEST(Runtime, ShfreeReclaimsAndChecks) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             void* a = ctx.shmalloc(128, Domain::kGpu);
             std::size_t used = ctx.runtime().heap(ctx.my_pe(), Domain::kGpu).used();
             ctx.shfree(a);
             EXPECT_LT(ctx.runtime().heap(ctx.my_pe(), Domain::kGpu).used(), used);
             int not_symmetric;
             EXPECT_THROW(ctx.shfree(&not_symmetric), ShmemError);
             ctx.barrier_all();
           });
}

TEST(Runtime, GdrInterSocketDetection) {
  {
    Runtime rt(make_cluster(2, 2, /*same_socket=*/true),
               make_options(TransportKind::kEnhancedGdr));
    EXPECT_FALSE(rt.gdr_inter_socket(0));
    EXPECT_FALSE(rt.gdr_inter_socket(1));
  }
  {
    Runtime rt(make_cluster(2, 2, /*same_socket=*/false),
               make_options(TransportKind::kEnhancedGdr));
    EXPECT_TRUE(rt.gdr_inter_socket(0));
  }
}

}  // namespace
}  // namespace gdrshmem::core
