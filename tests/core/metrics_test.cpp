// Histogram percentile estimation: the log2 bins only bound a value's
// magnitude, so percentile() interpolates inside the target bin and clamps
// with the exact tracked min/max. These tests pin the cases the checkpoint
// service's latency reporting relies on.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/report.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

TEST(HistogramPercentileTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(0.999), 0u);
}

TEST(HistogramPercentileTest, SingleValueIsExact) {
  Histogram h;
  h.record(12345);
  EXPECT_EQ(h.percentile(0.0), 12345u);
  EXPECT_EQ(h.percentile(0.5), 12345u);
  EXPECT_EQ(h.percentile(0.99), 12345u);
  EXPECT_EQ(h.percentile(1.0), 12345u);
}

TEST(HistogramPercentileTest, ZeroOnlyHistogram) {
  Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(0.999), 0u);
}

TEST(HistogramPercentileTest, EstimatesStayWithinMinMax) {
  Histogram h;
  for (std::uint64_t v = 100; v <= 1000; v += 9) h.record(v);
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::uint64_t est = h.percentile(p);
    EXPECT_GE(est, h.min()) << "p=" << p;
    EXPECT_LE(est, h.max()) << "p=" << p;
  }
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(HistogramPercentileTest, MonotonicInP) {
  Histogram h;
  // Geometric-ish spread across many bins.
  for (std::uint64_t v = 1; v < (1u << 20); v = v * 3 + 1) h.record(v);
  std::uint64_t prev = 0;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    std::uint64_t est = h.percentile(p);
    EXPECT_GE(est, prev) << "p=" << p;
    prev = est;
  }
}

TEST(HistogramPercentileTest, SeparatedModesLandInTheirBins) {
  Histogram h;
  // 90 small values (bin of 100) and 10 large ones (bin of 100000).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(100000);
  // p50 lands in the small mode's bin [64, 127]; interpolation inside the
  // bin is approximate, exactness only holds for single-bin histograms.
  std::uint64_t p50 = h.percentile(0.5);
  EXPECT_GE(p50, 100u);  // tightened by the tracked min
  EXPECT_LE(p50, 127u);
  std::uint64_t p99 = h.percentile(0.99);
  // p99 must land in the large mode's bin: [65536, 100000].
  EXPECT_GE(p99, 65536u);
  EXPECT_LE(p99, 100000u);
}

TEST(HistogramPercentileTest, LastBinUsesTrackedMax) {
  Histogram h;
  h.record(~std::uint64_t{0});  // the 2^63.. bin, where floor(i+1) overflows
  h.record(~std::uint64_t{0} - 10);
  EXPECT_LE(h.percentile(0.999), h.max());
  EXPECT_GE(h.percentile(0.999), h.min());
}

TEST(HistogramPercentileTest, ReportJsonCarriesPercentiles) {
  using testing::make_cluster;
  using testing::make_options;
  using testing::run_spmd;
  auto rt = run_spmd(make_cluster(1, 2),
                     make_options(TransportKind::kEnhancedGdr), [](Ctx& ctx) {
                       auto* x = static_cast<std::uint64_t*>(
                           ctx.shmalloc(sizeof(std::uint64_t)));
                       ctx.p(x, std::uint64_t{1},
                             (ctx.my_pe() + 1) % ctx.n_pes());
                       ctx.barrier_all();
                       ctx.shfree(x);
                     });
  std::string json = format_report_json(*rt);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"pmem_used_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace gdrshmem::core
