// Fault injection end-to-end: correctness of every recovery path under a
// seeded plan, bit-identical determinism across runs and across execution
// backends, and the report/trace surfacing of fault counters.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/trace.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

constexpr std::size_t kNumFaultEvents =
    static_cast<std::size_t>(sim::FaultEvent::kCount_);

std::array<std::uint64_t, kNumFaultEvents> fault_counts(Runtime& rt) {
  std::array<std::uint64_t, kNumFaultEvents> c{};
  for (std::size_t i = 0; i < kNumFaultEvents; ++i) {
    c[i] = rt.faults().count(static_cast<sim::FaultEvent>(i));
  }
  return c;
}

unsigned char pattern(int pe, int iter, std::size_t i) {
  return static_cast<unsigned char>(pe * 131 + iter * 17 + i * 7 + 3);
}

/// A mixed RMA + atomics workload that exercises direct RDMA, the chunked
/// GDR pipeline, and remote atomics; every byte is verified at the target.
void mixed_workload(Ctx& ctx, int iters, std::size_t n) {
  const int np = ctx.n_pes();
  const int me = ctx.my_pe();
  const int target = (me + 1) % np;
  const int from = (me + np - 1) % np;
  auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
  auto* host = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kHost));
  auto* ctr = static_cast<std::int64_t*>(
      ctx.shmalloc(sizeof(std::int64_t), Domain::kHost));
  *ctr = 0;
  auto* src = static_cast<unsigned char*>(ctx.cuda_malloc(n));
  std::vector<unsigned char> hsrc(n);
  ctx.barrier_all();

  for (int iter = 0; iter < iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i) src[i] = pattern(me, iter, i);
    for (std::size_t i = 0; i < n; ++i) hsrc[i] = pattern(me, iter + 100, i);
    ctx.putmem(dev, src, n, target);           // D->D: pipeline / proxy
    ctx.putmem(host, hsrc.data(), n, target);  // H->H: direct RDMA
    for (int k = 0; k < 8; ++k) ctx.atomic_fetch_add(ctr, 1, iter % np);
    ctx.quiet();
    ctx.barrier_all();
    for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 64)) {
      ASSERT_EQ(dev[i], pattern(from, iter, i)) << "dev byte " << i;
      ASSERT_EQ(host[i], pattern(from, iter + 100, i)) << "host byte " << i;
    }
    ctx.barrier_all();
  }
  ctx.barrier_all();
  // Every PE added 8 per iteration to one rotating counter owner; each
  // owner's total must be exact — lost or double-applied atomics both fail.
  std::int64_t expect = 0;
  for (int iter = 0; iter < iters; ++iter) {
    if (iter % np == me) expect += 8 * np;
  }
  ASSERT_EQ(*ctr, expect);
  ctx.barrier_all();
}

struct RunResult {
  std::int64_t end_ns = 0;
  std::array<std::uint64_t, kNumFaultEvents> counts{};
  bool operator==(const RunResult&) const = default;
};

RunResult run_mixed(sim::BackendKind backend, const std::string& plan) {
  hw::ClusterConfig cluster = make_cluster(2, 2);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.sim_backend = backend;
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  opts.faults = sim::FaultPlan::parse(plan);
  auto rt = run_spmd(cluster, opts,
                     [&](Ctx& ctx) { mixed_workload(ctx, 3, 256u << 10); });
  RunResult r;
  r.end_ns = rt->engine().now().count_ns();
  r.counts = fault_counts(*rt);
  return r;
}

const char* kMixedPlan = "seed=11,wire_error_rate=8e-3,atomic_error_rate=5e-3";

TEST(FaultInjection, WireErrorsAreRecoveredAndDeterministic) {
  RunResult a = run_mixed(sim::BackendKind::kFibers, kMixedPlan);
  RunResult b = run_mixed(sim::BackendKind::kFibers, kMixedPlan);
  EXPECT_EQ(a, b) << "same seed must give a bit-identical run";
  EXPECT_GT(a.counts[static_cast<std::size_t>(sim::FaultEvent::kRetransmit)], 0u)
      << "plan with wire_error_rate=8e-3 should have caused retransmits";
}

TEST(FaultInjection, FiberAndThreadBackendsAgreeUnderFaults) {
  RunResult fib = run_mixed(sim::BackendKind::kFibers, kMixedPlan);
  RunResult thr = run_mixed(sim::BackendKind::kThreads, kMixedPlan);
  EXPECT_EQ(fib, thr)
      << "fault behaviour must be bit-identical on fibers and threads";
}

TEST(FaultInjection, ShortFlapRidesThroughOnHcaRetransmits) {
  hw::ClusterConfig cluster = make_cluster(2, 1);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 8u << 20;
  // 300 us outage starting at t=40 us: well inside the 7-retry exponential
  // envelope, so the HCA alone must absorb it — no CQ error surfaces.
  opts.faults = sim::FaultPlan::parse("flap=1@40+300");
  const std::size_t n = 256u << 10;
  auto rt = run_spmd(cluster, opts, [&](Ctx& ctx) {
    auto* host = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kHost));
    std::vector<unsigned char> buf(n);
    if (ctx.my_pe() == 0) {
      for (int iter = 0; iter < 20; ++iter) {
        for (std::size_t i = 0; i < n; ++i) buf[i] = pattern(0, iter, i);
        ctx.putmem(host, buf.data(), n, 1);
        ctx.quiet();
      }
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (std::size_t i = 0; i < n; i += 997) {
        ASSERT_EQ(host[i], pattern(0, 19, i));
      }
    }
  });
  EXPECT_GT(rt->faults().count(sim::FaultEvent::kRetransmit), 0u);
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kCompletionError), 0u);
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kSwReplay), 0u);
}

TEST(FaultInjection, LongFlapSurfacesErrorsAndSoftwareReplays) {
  hw::ClusterConfig cluster = make_cluster(2, 1);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 8u << 20;
  // 2.5 ms outage: longer than the whole tier-1 retry envelope, so at least
  // one op must exhaust its HCA retries and be replayed by software.
  opts.faults = sim::FaultPlan::parse("flap=1@40+2500");
  const std::size_t n = 256u << 10;
  auto rt = run_spmd(cluster, opts, [&](Ctx& ctx) {
    auto* host = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kHost));
    std::vector<unsigned char> buf(n);
    if (ctx.my_pe() == 0) {
      for (int iter = 0; iter < 6; ++iter) {
        for (std::size_t i = 0; i < n; ++i) buf[i] = pattern(0, iter, i);
        ctx.putmem(host, buf.data(), n, 1);
        ctx.quiet();
      }
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (std::size_t i = 0; i < n; i += 997) {
        ASSERT_EQ(host[i], pattern(0, 5, i));
      }
    }
  });
  EXPECT_GT(rt->faults().count(sim::FaultEvent::kCompletionError), 0u);
  EXPECT_GT(rt->faults().count(sim::FaultEvent::kSwReplay), 0u);
}

TEST(FaultInjection, ProxyCrashMidGetIsRecovered) {
  hw::ClusterConfig cluster = make_cluster(2, 1);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  // Kill the serving node's proxy 300 us into a ~multi-hundred-us 4 MB
  // proxied get; the requester must time out, reissue, and still read the
  // right bytes from the restarted daemon.
  opts.faults = sim::FaultPlan::parse("crash=1@300");
  const std::size_t n = 4u << 20;
  auto rt = run_spmd(cluster, opts, [&](Ctx& ctx) {
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
    if (ctx.my_pe() == 1) {
      for (std::size_t i = 0; i < n; ++i) dev[i] = pattern(1, 0, i);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      std::vector<unsigned char> out(n, 0xee);
      ctx.getmem(out.data(), dev, n, 1);
      for (std::size_t i = 0; i < n; i += 4093) {
        ASSERT_EQ(out[i], pattern(1, 0, i)) << "byte " << i;
      }
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kProxyCrash), 1u);
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kProxyRestart), 1u);
  EXPECT_GE(rt->faults().count(sim::FaultEvent::kProxyReissue), 1u);
}

TEST(FaultInjection, ProxyCrashMidPutIsRecovered) {
  // Inter-socket HCA<->GPU so a large H->D put takes the proxy pipeline.
  hw::ClusterConfig cluster = make_cluster(2, 1, /*same_socket=*/false);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  opts.faults = sim::FaultPlan::parse("crash=1@300");
  const std::size_t n = 4u << 20;
  auto rt = run_spmd(cluster, opts, [&](Ctx& ctx) {
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
    if (ctx.my_pe() == 0) {
      std::vector<unsigned char> src(n);
      for (std::size_t i = 0; i < n; ++i) src[i] = pattern(0, 1, i);
      ctx.putmem(dev, src.data(), n, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (std::size_t i = 0; i < n; i += 4093) {
        ASSERT_EQ(dev[i], pattern(0, 1, i)) << "byte " << i;
      }
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kProxyCrash), 1u);
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kProxyRestart), 1u);
  EXPECT_GE(rt->faults().count(sim::FaultEvent::kProxyReissue), 1u);
}

TEST(FaultInjection, P2pRevocationFallsBackAndStaysCorrect) {
  hw::ClusterConfig cluster = make_cluster(2, 2);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  // Node 1 loses GPUDirect before any traffic flows: every D-D transfer
  // touching it must reroute (proxy / host staging) yet move the same bytes.
  opts.faults = sim::FaultPlan::parse("revoke=1@0");
  const std::size_t n = 512u << 10;
  auto rt = run_spmd(cluster, opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    auto* dev = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kGpu));
    auto* src = static_cast<unsigned char*>(ctx.cuda_malloc(n));
    ctx.barrier_all();
    if (me == 0) {
      // Healthy node -> revoked node, large and small.
      for (std::size_t i = 0; i < n; ++i) src[i] = pattern(0, 0, i);
      ctx.putmem(dev, src, n, 2);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (me == 2) {
      for (std::size_t i = 0; i < n; i += 1021) {
        ASSERT_EQ(dev[i], pattern(0, 0, i));
      }
      // Revoked node -> healthy node.
      for (std::size_t i = 0; i < n; ++i) src[i] = pattern(2, 1, i);
      ctx.putmem(dev, src, n, 0);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (me == 0) {
      for (std::size_t i = 0; i < n; i += 1021) {
        ASSERT_EQ(dev[i], pattern(2, 1, i));
      }
      // Large get from the revoked node's GPU (served by its proxy).
      std::vector<unsigned char> out(n);
      ctx.getmem(out.data(), dev, n, 2);
      for (std::size_t i = 0; i < n; i += 1021) {
        ASSERT_EQ(out[i], pattern(0, 0, i));
      }
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt->faults().count(sim::FaultEvent::kP2pRevoke), 1u);
  EXPECT_GT(rt->faults().count(sim::FaultEvent::kGdrFallback), 0u);
}

TEST(FaultInjection, EmptyPlanLeavesNoTrace) {
  auto rt = run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
                     [&](Ctx& ctx) {
                       auto* h = static_cast<int*>(ctx.shmalloc(sizeof(int)));
                       int v = 7;
                       ctx.putmem(h, &v, sizeof(v), (ctx.my_pe() + 1) % 4);
                       ctx.quiet();
                       ctx.barrier_all();
                     });
  EXPECT_FALSE(rt->faults_enabled());
  for (std::size_t i = 0; i < kNumFaultEvents; ++i) {
    EXPECT_EQ(rt->faults().count(static_cast<sim::FaultEvent>(i)), 0u);
  }
  EXPECT_EQ(format_report(*rt).find("fault injection"), std::string::npos);
}

TEST(FaultInjection, ReportAndTracerSurfaceFaultCounters) {
  hw::ClusterConfig cluster = make_cluster(2, 2);
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  opts.faults = sim::FaultPlan::parse(kMixedPlan);
  Runtime rt(cluster, opts);
  rt.tracer().enable();
  rt.run([&](Ctx& ctx) { mixed_workload(ctx, 2, 256u << 10); });

  std::string report = format_report(rt);
  EXPECT_NE(report.find("fault injection (plan:"), std::string::npos);
  EXPECT_NE(report.find("retransmit"), std::string::npos);

  std::uint64_t traced_retransmits = 0;
  for (const TraceEvent& ev : rt.tracer().events()) {
    if (ev.kind == TraceEvent::Kind::kRetransmit) ++traced_retransmits;
  }
  EXPECT_EQ(traced_retransmits,
            rt.faults().count(sim::FaultEvent::kRetransmit))
      << "every injector event must be mirrored into the tracer";
}

}  // namespace
}  // namespace gdrshmem::core
