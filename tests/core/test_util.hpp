// Shared helpers for the core-runtime tests.
#pragma once

#include "core/ctx.hpp"
#include "core/runtime.hpp"

namespace gdrshmem::core::testing {

inline hw::ClusterConfig make_cluster(int nodes, int ppn = 2,
                                      bool same_socket = true) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.pes_per_node = ppn;
  cfg.hca_gpu_same_socket = same_socket;
  return cfg;
}

inline RuntimeOptions make_options(TransportKind k) {
  RuntimeOptions o;
  o.transport = k;
  return o;
}

/// Run an SPMD program on a fresh runtime and return the runtime for
/// post-mortem inspection (stats, virtual time).
template <typename Fn>
std::unique_ptr<Runtime> run_spmd(const hw::ClusterConfig& cluster,
                                  const RuntimeOptions& opts, Fn&& body) {
  auto rt = std::make_unique<Runtime>(cluster, opts);
  rt->run([&](Ctx& ctx) { body(ctx); });
  return rt;
}

}  // namespace gdrshmem::core::testing
