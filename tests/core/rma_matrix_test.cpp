// Parameterized functional matrix: put and get must move the right bytes
// for every (transport) x (intra/inter node) x (H/D local) x (H/D remote)
// x (message size) combination — or throw UnsupportedError exactly where
// the paper says the baseline has no path.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

struct RmaCase {
  TransportKind kind;
  bool intra;       // same-node target
  bool local_dev;   // local buffer on GPU
  Domain remote;    // symmetric destination domain
  std::size_t bytes;
  bool is_put;
};

std::string case_name(const ::testing::TestParamInfo<RmaCase>& info) {
  const RmaCase& c = info.param;
  std::string s;
  s += c.kind == TransportKind::kHostPipeline ? "Baseline" : "Enhanced";
  s += c.intra ? "Intra" : "Inter";
  s += c.local_dev ? "D" : "H";
  s += c.remote == Domain::kGpu ? "D" : "H";
  s += std::to_string(c.bytes) + (c.is_put ? "Put" : "Get");
  return s;
}

bool expected_unsupported(const RmaCase& c) {
  if (c.kind != TransportKind::kHostPipeline) return false;
  if (c.intra) return false;
  // Baseline has no inter-node H-D / D-H path.
  return c.local_dev != (c.remote == Domain::kGpu);
}

class RmaMatrix : public ::testing::TestWithParam<RmaCase> {};

TEST_P(RmaMatrix, MovesBytes) {
  const RmaCase c = GetParam();
  hw::ClusterConfig cluster = make_cluster(2, 2);
  RuntimeOptions opts = make_options(c.kind);
  opts.host_heap_bytes = 8u << 20;
  opts.gpu_heap_bytes = 8u << 20;

  const int target = c.intra ? 1 : 2;
  const std::size_t n = c.bytes;
  bool threw_unsupported = false;

  run_spmd(cluster, opts, [&](Ctx& ctx) {
    auto* sym = static_cast<unsigned char*>(ctx.shmalloc(n, c.remote));
    std::vector<unsigned char> host_local(n);
    unsigned char* local = host_local.data();
    if (c.local_dev) local = static_cast<unsigned char*>(ctx.cuda_malloc(n));

    if (c.is_put) {
      if (ctx.my_pe() == 0) {
        for (std::size_t i = 0; i < n; ++i) local[i] = static_cast<unsigned char>(i * 7 + 3);
        try {
          ctx.putmem(sym, local, n, target);
          ctx.quiet();
        } catch (const UnsupportedError&) {
          threw_unsupported = true;
        }
      }
      ctx.barrier_all();
      if (ctx.my_pe() == target && !expected_unsupported(c)) {
        for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 64)) {
          ASSERT_EQ(sym[i], static_cast<unsigned char>(i * 7 + 3)) << "at " << i;
        }
      }
    } else {
      if (ctx.my_pe() == target) {
        for (std::size_t i = 0; i < n; ++i) sym[i] = static_cast<unsigned char>(i * 5 + 1);
      }
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        try {
          ctx.getmem(local, sym, n, target);
          for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 64)) {
            ASSERT_EQ(local[i], static_cast<unsigned char>(i * 5 + 1)) << "at " << i;
          }
        } catch (const UnsupportedError&) {
          threw_unsupported = true;
        }
      }
      ctx.barrier_all();
    }
  });
  EXPECT_EQ(threw_unsupported, expected_unsupported(c));
}

std::vector<RmaCase> all_cases() {
  std::vector<RmaCase> cases;
  for (TransportKind k : {TransportKind::kHostPipeline, TransportKind::kEnhancedGdr}) {
    for (bool intra : {true, false}) {
      for (bool ldev : {false, true}) {
        for (Domain rd : {Domain::kHost, Domain::kGpu}) {
          for (std::size_t bytes : {std::size_t{8}, std::size_t{4096},
                                    std::size_t{1} << 20}) {
            for (bool is_put : {true, false}) {
              cases.push_back(RmaCase{k, intra, ldev, rd, bytes, is_put});
            }
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, RmaMatrix, ::testing::ValuesIn(all_cases()),
                         case_name);

// --- non-parameterized RMA behaviours --------------------------------------

TEST(Rma, NbiCompletesAtQuiet) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* sym = static_cast<std::uint64_t*>(
                 ctx.shmalloc(sizeof(std::uint64_t), Domain::kHost));
             if (ctx.my_pe() == 0) {
               std::uint64_t v = 0xdeadbeef;
               ctx.putmem_nbi(sym, &v, sizeof(v), 1);
               ctx.quiet();
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) EXPECT_EQ(*sym, 0xdeadbeefu);
           });
}

TEST(Rma, TypedAndSingleElementOps) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* d = static_cast<double*>(ctx.shmalloc(8 * sizeof(double)));
             if (ctx.my_pe() == 0) {
               double vals[8];
               std::iota(vals, vals + 8, 1.5);
               ctx.put(d, vals, 8, 1);
               ctx.p(d, 99.25, 1);  // overwrite element 0
               ctx.quiet();
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) {
               EXPECT_DOUBLE_EQ(d[0], 99.25);
               EXPECT_DOUBLE_EQ(d[7], 8.5);
               EXPECT_DOUBLE_EQ(ctx.g(d + 3, 0), 0.0);  // PE 0 never wrote its own
             }
             ctx.barrier_all();
           });
}

TEST(Rma, ZeroByteOpsAreNoops) {
  run_spmd(make_cluster(1, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             void* p = ctx.shmalloc(64);
             int v = 0;
             ctx.putmem(p, &v, 0, 0);
             ctx.getmem(&v, p, 0, 0);
             ctx.barrier_all();
             EXPECT_EQ(ctx.runtime().stats().puts, 0u + ctx.runtime().stats().puts);
           });
}

TEST(Rma, PutToSelfWorks) {
  run_spmd(make_cluster(1, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* p = static_cast<int*>(ctx.shmalloc(sizeof(int)));
             int v = 41;
             ctx.putmem(p, &v, sizeof(v), 0);
             ctx.quiet();
             EXPECT_EQ(*p, 41);
             int out = 0;
             ctx.getmem(&out, p, sizeof(out), 0);
             EXPECT_EQ(out, 41);
           });
}

TEST(Rma, ManySmallPutsKeepOrderPerTarget) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             constexpr int kN = 300;  // exceeds the inline ring to force reuse
             auto* arr = static_cast<std::uint32_t*>(
                 ctx.shmalloc(kN * sizeof(std::uint32_t)));
             if (ctx.my_pe() == 0) {
               for (std::uint32_t i = 0; i < kN; ++i) {
                 ctx.p(arr + i, i + 1, 1);
               }
               ctx.quiet();
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) {
               for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(arr[i], i + 1);
             }
           });
}

TEST(Rma, NaiveTransportHostOnly) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kNaive),
           [&](Ctx& ctx) {
             auto* h = static_cast<int*>(ctx.shmalloc(sizeof(int), Domain::kHost));
             auto* g = ctx.shmalloc(64, Domain::kGpu);
             if (ctx.my_pe() == 0) {
               int v = 5;
               ctx.putmem(h, &v, sizeof(v), 2);  // host inter-node: fine
               ctx.quiet();
               EXPECT_THROW(ctx.putmem(g, &v, sizeof(v), 2), UnsupportedError);
               int* dev = static_cast<int*>(ctx.cuda_malloc(sizeof(int)));
               EXPECT_THROW(ctx.putmem(h, dev, sizeof(int), 2), UnsupportedError);
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 2) EXPECT_EQ(*h, 5);
           });
}

}  // namespace
}  // namespace gdrshmem::core
