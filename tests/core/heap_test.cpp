// SymmetricHeap unit coverage (non-LIFO deferred reclaim, exhaustion
// diagnostics) and end-to-end coverage of the pmem symmetric-heap domain:
// collective allocation on every PE, one-sided writes into it, exhaustion,
// and the GDRSHMEM_PMEM_HEAP environment knob.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/heap.hpp"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

std::vector<std::byte> storage(std::size_t n) {
  return std::vector<std::byte>(n);
}

TEST(SymmetricHeapTest, BumpAllocatesAligned) {
  auto mem = storage(4096);
  SymmetricHeap h(Domain::kHost, mem.data(), mem.size());
  void* a = h.allocate(10);
  void* b = h.allocate(10);
  EXPECT_EQ(h.offset_of(a), 0u);
  EXPECT_EQ(h.offset_of(b), 64u);  // default 64-byte alignment
  EXPECT_EQ(h.used(), 74u);
  EXPECT_EQ(h.live_allocations(), 2u);
}

TEST(SymmetricHeapTest, ExhaustionMessageNamesSizesAndAlignment) {
  auto mem = storage(256);
  SymmetricHeap h(Domain::kGpu, mem.data(), mem.size());
  h.allocate(100);  // leaves 156 bytes above the bump pointer
  try {
    h.allocate(500, 128);
    FAIL() << "expected ShmemError";
  } catch (const ShmemError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("gpu domain"), std::string::npos) << msg;
    EXPECT_NE(msg.find("500"), std::string::npos)
        << "requested size missing: " << msg;
    EXPECT_NE(msg.find("128"), std::string::npos)
        << "alignment missing: " << msg;
    EXPECT_NE(msg.find("156"), std::string::npos)
        << "remaining bytes missing: " << msg;
    EXPECT_NE(msg.find("256"), std::string::npos)
        << "heap size missing: " << msg;
  }
}

TEST(SymmetricHeapTest, ExhaustionAtExactBoundaryStillFits) {
  auto mem = storage(256);
  SymmetricHeap h(Domain::kHost, mem.data(), mem.size());
  EXPECT_NO_THROW(h.allocate(256));  // exactly full
  EXPECT_THROW(h.allocate(1), ShmemError);
}

TEST(SymmetricHeapTest, LifoFreeReclaimsImmediately) {
  auto mem = storage(4096);
  SymmetricHeap h(Domain::kHost, mem.data(), mem.size());
  void* a = h.allocate(64);
  void* b = h.allocate(64);
  h.deallocate(b);
  EXPECT_EQ(h.used(), 64u);
  void* b2 = h.allocate(64);
  EXPECT_EQ(b2, b);  // the freed slot is reused
  h.deallocate(b2);
  h.deallocate(a);
  EXPECT_EQ(h.used(), 0u);
  EXPECT_EQ(h.live_allocations(), 0u);
}

TEST(SymmetricHeapTest, NonLifoFreeIsDeferredUntilCovered) {
  auto mem = storage(4096);
  SymmetricHeap h(Domain::kHost, mem.data(), mem.size());
  void* a = h.allocate(64);
  void* b = h.allocate(64);
  void* c = h.allocate(64);
  // Free the middle block first: nothing is reclaimed (b is buried).
  h.deallocate(b);
  EXPECT_EQ(h.used(), 192u);
  EXPECT_EQ(h.live_allocations(), 2u);
  // Freeing the top block reclaims both it and the deferred middle one.
  h.deallocate(c);
  EXPECT_EQ(h.used(), 64u);
  EXPECT_EQ(h.live_allocations(), 1u);
  // The reclaimed region is allocatable again, right above `a`.
  void* d = h.allocate(128);
  EXPECT_EQ(h.offset_of(d), 64u);
  h.deallocate(d);
  h.deallocate(a);
  EXPECT_EQ(h.used(), 0u);
}

TEST(SymmetricHeapTest, InterleavedAllocFreePatterns) {
  auto mem = storage(1u << 16);
  SymmetricHeap h(Domain::kHost, mem.data(), mem.size());
  // alloc a b c d; free b d; alloc e (tops above c); free c -> reclaims c
  // only (b still buried under e? no: e sits above c's old slot).
  void* a = h.allocate(256);
  void* b = h.allocate(256);
  void* c = h.allocate(256);
  void* d = h.allocate(256);
  h.deallocate(b);
  h.deallocate(d);  // top: reclaimed immediately
  EXPECT_EQ(h.used(), 768u);
  void* e = h.allocate(256);  // reuses d's slot
  EXPECT_EQ(h.offset_of(e), 768u);
  h.deallocate(e);
  h.deallocate(c);  // reclaims c and the deferred b
  EXPECT_EQ(h.used(), 256u);
  h.deallocate(a);
  EXPECT_EQ(h.used(), 0u);
  EXPECT_EQ(h.live_allocations(), 0u);
}

TEST(SymmetricHeapTest, DoubleFreeAndForeignPointerThrow) {
  auto mem = storage(4096);
  SymmetricHeap h(Domain::kHost, mem.data(), mem.size());
  void* a = h.allocate(64);
  void* b = h.allocate(64);
  h.deallocate(a);  // deferred (b on top)
  EXPECT_THROW(h.deallocate(a), ShmemError);
  int local = 0;
  EXPECT_THROW(h.deallocate(&local), ShmemError);
  h.deallocate(b);
}

TEST(SymmetricHeapTest, ZeroSizeHeapContainsNothingAndExhaustsWithContext) {
  SymmetricHeap h(Domain::kPmem, nullptr, 0);
  int local = 0;
  EXPECT_FALSE(h.contains(&local));
  try {
    h.allocate(64);
    FAIL() << "expected ShmemError";
  } catch (const ShmemError& e) {
    EXPECT_NE(std::string(e.what()).find("pmem domain"), std::string::npos);
  }
}

// ---- pmem domain end-to-end -------------------------------------------------

TEST(PmemDomainTest, CollectiveAllocAndOneSidedWrite) {
  auto opts = make_options(TransportKind::kEnhancedGdr);
  opts.pmem_heap_bytes = 1u << 16;
  auto rt = run_spmd(make_cluster(2, 2), opts, [](Ctx& ctx) {
    auto* buf = static_cast<std::uint64_t*>(
        ctx.shmalloc(8 * sizeof(std::uint64_t), Domain::kPmem));
    // Everyone writes a tagged word into the next PE's pmem copy.
    int peer = (ctx.my_pe() + 1) % ctx.n_pes();
    std::uint64_t tag = 0xd00d0000u + static_cast<std::uint64_t>(ctx.my_pe());
    ctx.p(&buf[0], tag, peer);
    ctx.barrier_all();
    int writer = (ctx.my_pe() + ctx.n_pes() - 1) % ctx.n_pes();
    EXPECT_EQ(buf[0], 0xd00d0000u + static_cast<std::uint64_t>(writer));
    // And reads it back one-sidedly from the peer it wrote.
    std::uint64_t readback = ctx.g(&buf[0], peer);
    std::uint64_t expect =
        0xd00d0000u + static_cast<std::uint64_t>(ctx.my_pe());
    EXPECT_EQ(readback, expect);
    ctx.barrier_all();
    ctx.shfree(buf);
  });
  EXPECT_GT(rt->heap(0, Domain::kPmem).size(), 0u);
}

TEST(PmemDomainTest, ExhaustionReportsPmemDomain) {
  auto opts = make_options(TransportKind::kEnhancedGdr);
  opts.pmem_heap_bytes = 1u << 16;
  auto rt = run_spmd(make_cluster(1, 2), opts, [&](Ctx& ctx) {
    ctx.shmalloc(1u << 15, Domain::kPmem);
    try {
      ctx.shmalloc(1u << 15, Domain::kPmem);  // 32K + 32K > 64K - alignment? fits
      ctx.shmalloc(64, Domain::kPmem);        // now past the end
      FAIL() << "expected pmem exhaustion";
    } catch (const ShmemError& e) {
      EXPECT_NE(std::string(e.what()).find("pmem domain"), std::string::npos)
          << e.what();
    }
  });
}

TEST(PmemDomainTest, DisabledByDefault) {
  auto opts = make_options(TransportKind::kEnhancedGdr);
  ASSERT_EQ(opts.pmem_heap_bytes, 0u);
  run_spmd(make_cluster(1, 2), opts, [](Ctx& ctx) {
    EXPECT_THROW(ctx.shmalloc(64, Domain::kPmem), ShmemError);
  });
}

TEST(PmemDomainTest, FromEnvParsesPmemHeap) {
  ::setenv("GDRSHMEM_PMEM_HEAP", "2M", 1);
  RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.pmem_heap_bytes, 2u << 20);
  ::setenv("GDRSHMEM_PMEM_HEAP", "0", 1);
  EXPECT_EQ(RuntimeOptions::from_env().pmem_heap_bytes, 0u);
  ::setenv("GDRSHMEM_PMEM_HEAP", "1K", 1);  // below the 64K floor
  EXPECT_THROW(RuntimeOptions::from_env(), ShmemError);
  ::unsetenv("GDRSHMEM_PMEM_HEAP");
}

}  // namespace
}  // namespace gdrshmem::core
