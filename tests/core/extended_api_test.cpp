// Extended OpenSHMEM surface: strided iput/iget, put-with-signal,
// non-blocking test, all-to-all, and the classic C API bindings.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gdrshmem/shmem.h"
#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

TEST(ExtendedApi, IputStridedScatter) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* mat = static_cast<std::int64_t*>(
                 ctx.shmalloc(16 * sizeof(std::int64_t)));
             std::fill_n(mat, 16, -1);
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               std::int64_t col[4] = {10, 11, 12, 13};
               // Write a column into the remote 4x4 row-major matrix.
               ctx.iput(mat + 2, col, /*dst_stride=*/4, /*src_stride=*/1, 4, 1);
               ctx.quiet();
             }
             ctx.barrier_all();
             if (ctx.my_pe() == 1) {
               for (int r = 0; r < 4; ++r) {
                 EXPECT_EQ(mat[r * 4 + 2], 10 + r);
                 EXPECT_EQ(mat[r * 4 + 1], -1);  // neighbors untouched
               }
             }
             ctx.barrier_all();
           });
}

TEST(ExtendedApi, IgetStridedGather) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* mat = static_cast<std::int64_t*>(
                 ctx.shmalloc(16 * sizeof(std::int64_t)));
             std::iota(mat, mat + 16, 100 * ctx.my_pe());
             ctx.barrier_all();
             if (ctx.my_pe() == 0) {
               std::int64_t row_of_col[4] = {0, 0, 0, 0};
               ctx.iget(row_of_col, mat + 3, 1, 4, 4, 1);  // column 3 of PE 1
               for (int r = 0; r < 4; ++r) EXPECT_EQ(row_of_col[r], 100 + r * 4 + 3);
             }
             ctx.barrier_all();
           });
}

TEST(ExtendedApi, PutSignalOrdersDataBeforeSignal) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             constexpr std::size_t kBytes = 512 * 1024;  // pipeline path
             auto* data = static_cast<unsigned char*>(
                 ctx.shmalloc(kBytes, Domain::kGpu));
             auto* sig = static_cast<std::uint64_t*>(ctx.shmalloc(8));
             if (ctx.my_pe() == 0) {
               void* src = ctx.cuda_malloc(kBytes);
               auto* s = static_cast<unsigned char*>(src);
               for (std::size_t i = 0; i < kBytes; ++i) s[i] = 7;
               ctx.put_signal(data, src, kBytes, sig, 42, 1);
             } else {
               ctx.signal_wait_until(sig, Cmp::kEq, 42);
               // Signal implies the whole payload landed, even across the
               // mixed GDR/pipeline protocol split.
               EXPECT_EQ(data[0], 7);
               EXPECT_EQ(data[kBytes - 1], 7);
             }
             ctx.barrier_all();
           });
}

TEST(ExtendedApi, TestProbesWithoutBlocking) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             auto* flag = static_cast<std::int64_t*>(ctx.shmalloc(8));
             ctx.barrier_all();
             if (ctx.my_pe() == 1) {
               EXPECT_FALSE(ctx.test<std::int64_t>(flag, Cmp::kEq, 1));
               int polls = 0;
               while (!ctx.test<std::int64_t>(flag, Cmp::kEq, 1)) {
                 ctx.compute(sim::Duration::us(1));
                 ++polls;
                 ASSERT_LT(polls, 100000);
               }
               EXPECT_GT(polls, 0);
             } else {
               ctx.compute(sim::Duration::us(25));
               std::int64_t one = 1;
               ctx.putmem(flag, &one, sizeof(one), 1);
               ctx.quiet();
             }
             ctx.barrier_all();
           });
}

TEST(ExtendedApi, AlltoallExchangesBlocks) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             const int np = ctx.n_pes();
             constexpr std::size_t kBlock = 32;
             auto* src = static_cast<unsigned char*>(
                 ctx.shmalloc(kBlock * static_cast<std::size_t>(np)));
             auto* dst = static_cast<unsigned char*>(
                 ctx.shmalloc(kBlock * static_cast<std::size_t>(np)));
             for (int j = 0; j < np; ++j) {
               for (std::size_t i = 0; i < kBlock; ++i) {
                 src[j * kBlock + i] =
                     static_cast<unsigned char>(ctx.my_pe() * 16 + j * 4 + i % 4);
               }
             }
             ctx.barrier_all();
             ctx.alltoallmem(dst, src, kBlock);
             for (int sender = 0; sender < np; ++sender) {
               for (std::size_t i = 0; i < kBlock; ++i) {
                 ASSERT_EQ(dst[sender * kBlock + i],
                           static_cast<unsigned char>(sender * 16 +
                                                      ctx.my_pe() * 4 + i % 4))
                     << "sender " << sender;
               }
             }
             ctx.barrier_all();
           });
}

TEST(ExtendedApi, AlltoallOnGpuDomainAcrossTransports) {
  for (auto kind : {TransportKind::kEnhancedGdr, TransportKind::kHostPipeline}) {
    run_spmd(make_cluster(2, 1), make_options(kind), [&](Ctx& ctx) {
      const int np = ctx.n_pes();
      constexpr std::size_t kBlock = 4096;
      auto* src = static_cast<unsigned char*>(
          ctx.shmalloc(kBlock * static_cast<std::size_t>(np), Domain::kGpu));
      auto* dst = static_cast<unsigned char*>(
          ctx.shmalloc(kBlock * static_cast<std::size_t>(np), Domain::kGpu));
      for (std::size_t i = 0; i < kBlock * static_cast<std::size_t>(np); ++i) {
        src[i] = static_cast<unsigned char>((ctx.my_pe() * 131 + i) % 255);
      }
      ctx.barrier_all();
      ctx.alltoallmem(dst, src, kBlock);
      for (int sender = 0; sender < np; ++sender) {
        std::size_t block_in_sender = static_cast<std::size_t>(ctx.my_pe()) * kBlock;
        for (std::size_t i = 0; i < kBlock; i += 111) {
          ASSERT_EQ(dst[sender * kBlock + i],
                    static_cast<unsigned char>(
                        (sender * 131 + block_in_sender + i) % 255));
        }
      }
      ctx.barrier_all();
    });
  }
}

// ---- the classic C API ------------------------------------------------------

TEST(CApi, RoundTripThroughClassicCalls) {
  run_spmd(make_cluster(2, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             using namespace capi;
             EXPECT_EQ(shmem_n_pes(), 2);
             auto* v = static_cast<long long*>(shmalloc(sizeof(long long)));
             auto* d = static_cast<double*>(
                 shmalloc(4 * sizeof(double), Domain::kGpu));
             if (shmem_my_pe() == 0) {
               double vals[4] = {1.5, 2.5, 3.5, 4.5};
               shmem_double_put(d, vals, 4, 1);
               shmem_quiet();
               long long one = 1;
               shmem_putmem(v, &one, sizeof(one), 1);
               shmem_quiet();
             } else {
               shmem_longlong_wait_until(v, SHMEM_CMP_EQ, 1);
               EXPECT_DOUBLE_EQ(d[3], 4.5);
               EXPECT_EQ(shmem_longlong_fadd(v, 5, 0), 0);
             }
             shmem_barrier_all();
             if (shmem_my_pe() == 0) EXPECT_EQ(*v, 5);
             shmem_barrier_all();
           });
}

TEST(CApi, UnboundCallsThrow) {
  EXPECT_THROW(capi::shmem_my_pe(), ShmemError);
}

TEST(CApi, DoubleBindRejected) {
  run_spmd(make_cluster(1, 1), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             EXPECT_THROW(capi::Bind second(ctx), ShmemError);
           });
}

TEST(CApi, ReductionsAndCollect) {
  run_spmd(make_cluster(2, 2), make_options(TransportKind::kEnhancedGdr),
           [&](Ctx& ctx) {
             capi::Bind bind(ctx);
             using namespace capi;
             auto* src = static_cast<double*>(shmalloc(sizeof(double)));
             auto* dst = static_cast<double*>(shmalloc(sizeof(double)));
             *src = shmem_my_pe() + 1.0;
             shmem_barrier_all();
             shmem_double_sum_to_all(dst, src, 1);
             EXPECT_DOUBLE_EQ(*dst, 1 + 2 + 3 + 4);
             auto* mx = static_cast<long long*>(shmalloc(8));
             auto* mxr = static_cast<long long*>(shmalloc(8));
             *mx = 10 * shmem_my_pe();
             shmem_barrier_all();
             shmem_longlong_max_to_all(mxr, mx, 1);
             EXPECT_EQ(*mxr, 30);
             shmem_barrier_all();
           });
}

}  // namespace
}  // namespace gdrshmem::core
