// Property tests for the srd relaxed-ordering transport: on a fabric where
// segments of one op (and back-to-back ops on one flow) arrive out of issue
// order, quiet() must still mean "every prior put is fully visible at its
// target", and the generation-tagged collective flags must never be
// overtaken by a stale write — including under a wire-error fault plan, on
// both engine backends.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "test_util.hpp"

namespace gdrshmem::core {
namespace {

using testing::make_cluster;
using testing::make_options;
using testing::run_spmd;

RuntimeOptions srd_options(sim::BackendKind backend, const char* faults = "") {
  RuntimeOptions opts = make_options(TransportKind::kEnhancedGdr);
  opts.ib_transport = ib::QpKind::kSrd;
  opts.ib_srd_jitter_us = 10.0;  // wide window: reordering actually happens
  opts.sim_backend = backend;
  if (faults != nullptr && *faults != '\0') {
    opts.faults = sim::FaultPlan::parse(faults);
  }
  return opts;
}

class SrdOrdering : public ::testing::TestWithParam<sim::BackendKind> {};

TEST_P(SrdOrdering, QuietMakesPriorPutsFullyVisible) {
  // PE 0 sprays a large put (dozens of jittered segments) at PE 1, quiets,
  // then announces it with a flag put. Whenever PE 1 observes the flag,
  // every byte of the data put must already be in place — quiet must not
  // return while any segment is still in flight.
  const std::size_t n = 300001;
  RuntimeOptions opts = srd_options(GetParam());
  run_spmd(make_cluster(2, 1), opts, [&](Ctx& ctx) {
    auto* data = static_cast<unsigned char*>(ctx.shmalloc(n, Domain::kHost));
    auto* flag = static_cast<std::uint64_t*>(
        ctx.shmalloc(sizeof(std::uint64_t), Domain::kHost));
    *flag = 0;
    ctx.barrier_all();
    for (std::uint64_t round = 1; round <= 3; ++round) {
      if (ctx.my_pe() == 0) {
        std::vector<unsigned char> src(n);
        for (std::size_t i = 0; i < n; ++i) {
          src[i] = static_cast<unsigned char>(i * 31 + round);
        }
        ctx.putmem(data, src.data(), n, 1);
        ctx.quiet();  // the ordering point under test
        ctx.putmem(flag, &round, sizeof(round), 1);
        ctx.quiet();
      } else {
        ctx.wait_until<std::uint64_t>(flag, Cmp::kGe, round);
        std::vector<unsigned char> want(n);
        for (std::size_t i = 0; i < n; ++i) {
          want[i] = static_cast<unsigned char>(i * 31 + round);
        }
        ASSERT_EQ(std::memcmp(data, want.data(), n), 0)
            << "stale bytes visible after the flag, round " << round;
      }
      ctx.barrier_all();
    }
  });
}

TEST_P(SrdOrdering, GenerationTaggedCollectivesSurviveReorderAndFaults) {
  // Repeated collectives reuse generation-tagged flag slots; under srd's
  // delivery jitter plus a fault plan's retransmits, a stale flag write
  // overtaking a fresh one would deadlock a waiter or corrupt a round.
  // Every round is checked against a locally computed reference.
  const char* kPlan = "seed=11,wire_error_rate=8e-3,atomic_error_rate=5e-3";
  RuntimeOptions opts = srd_options(GetParam(), kPlan);
  constexpr int kNp = 4;
  constexpr int kRounds = 6;
  constexpr std::size_t kBcast = 4096;
  run_spmd(make_cluster(2, 2), opts, [&](Ctx& ctx) {
    const int me = ctx.my_pe();
    ASSERT_EQ(ctx.n_pes(), kNp);
    auto* red = static_cast<std::int64_t*>(
        ctx.shmalloc(16 * sizeof(std::int64_t), Domain::kHost));
    auto* bc =
        static_cast<unsigned char*>(ctx.shmalloc(kBcast, Domain::kHost));
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < 16; ++i) red[i] = (me + 1) * (i + 1) + r;
      ctx.sum_to_all(red, red, 16);
      for (int i = 0; i < 16; ++i) {
        std::int64_t want = 0;
        for (int pe = 0; pe < kNp; ++pe) want += (pe + 1) * (i + 1) + r;
        ASSERT_EQ(red[i], want) << "allreduce round " << r << " elt " << i;
      }
      const int root = r % kNp;
      std::vector<unsigned char> src(kBcast);
      for (std::size_t i = 0; i < kBcast; ++i) {
        src[i] = static_cast<unsigned char>(i * 7 + r * 13 + root);
      }
      if (me == root) std::memcpy(bc, src.data(), kBcast);
      ctx.broadcastmem(bc, bc, kBcast, root);
      ctx.barrier_all();
      ASSERT_EQ(std::memcmp(bc, src.data(), kBcast), 0)
          << "broadcast round " << r << " root " << root;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    EngineBackends, SrdOrdering,
    ::testing::Values(sim::BackendKind::kFibers, sim::BackendKind::kThreads),
    [](const ::testing::TestParamInfo<sim::BackendKind>& info) {
      return info.param == sim::BackendKind::kFibers ? "fibers" : "threads";
    });

}  // namespace
}  // namespace gdrshmem::core
