// Unit tests for the transport-generic endpoint API: RC passthrough
// bit-identity, the RC QP-context-cache penalty at scale, UD segmentation
// and MTU limits, DC initiator-pool reconnects, 2-rail striping, the QP
// memory-footprint model, the bounded registration cache, and env parsing.
#include "ib/transport.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <tuple>
#include <utility>
#include <vector>

namespace gdrshmem::ib {
namespace {

hw::ClusterConfig two_node_cluster() {
  hw::ClusterConfig c;
  c.num_nodes = 2;
  c.pes_per_node = 2;
  return c;
}

struct Fixture {
  sim::Engine eng;
  hw::Cluster cluster;
  cudart::CudaRuntime cuda;
  Verbs verbs;
  std::unique_ptr<Transport> transport;

  explicit Fixture(TransportConfig cfg = {},
                   hw::ClusterConfig cc = two_node_cluster())
      : cluster(cc),
        cuda(eng, cluster),
        verbs(eng, cluster, cuda),
        transport(make_transport(verbs, cfg)) {}

  /// Time a single inter-node host-to-host write of `n` bytes (PE 0 -> 2).
  sim::Time timed_write(std::size_t n) {
    std::vector<std::byte> src(n, std::byte{0x2a}), dst(n);
    verbs.reg_cache().register_at_init(0, src.data(), n);
    verbs.reg_cache().register_at_init(2, dst.data(), n);
    sim::Time done;
    eng.spawn("pe0", [&](sim::Process& p) {
      auto c = transport->endpoint(0).rdma_write(p, src.data(), 2, dst.data(), n);
      c->wait(p);
      done = eng.now();
      EXPECT_EQ(dst.front(), std::byte{0x2a});
      EXPECT_EQ(dst.back(), std::byte{0x2a});
    });
    eng.run();
    return done;
  }
};

struct ScopedEnv {
  ScopedEnv(const char* k, const char* v) : key(k) { setenv(k, v, 1); }
  ~ScopedEnv() { unsetenv(key); }
  const char* key;
};

// ---------------------------------------------------------------------------
// Environment parsing.

TEST(TransportEnv, KindParsesAndDefaults) {
  unsetenv("GDRSHMEM_IB_TRANSPORT");
  EXPECT_EQ(qp_kind_from_env(), QpKind::kRc);
  {
    ScopedEnv e("GDRSHMEM_IB_TRANSPORT", "ud");
    EXPECT_EQ(qp_kind_from_env(), QpKind::kUd);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_TRANSPORT", "dc");
    EXPECT_EQ(qp_kind_from_env(), QpKind::kDc);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_TRANSPORT", "srd");
    EXPECT_EQ(qp_kind_from_env(), QpKind::kSrd);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_TRANSPORT", "xrc");
    EXPECT_THROW(qp_kind_from_env(), std::invalid_argument);
  }
}

TEST(TransportEnv, RailsParseAndDefault) {
  unsetenv("GDRSHMEM_IB_RAILS");
  EXPECT_EQ(rails_from_env(), 1);
  {
    ScopedEnv e("GDRSHMEM_IB_RAILS", "2");
    EXPECT_EQ(rails_from_env(), 2);
  }
  {
    ScopedEnv e("GDRSHMEM_IB_RAILS", "3");
    EXPECT_THROW(rails_from_env(), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// RC: the default must be a pure passthrough at sub-cache scale.

TEST(RcTransport, DefaultConfigMatchesRawVerbsExactly) {
  const std::size_t n = 128u << 10;
  sim::Time raw;
  std::uint64_t raw_events;
  {
    Fixture f;  // build the transport but post through verbs directly
    std::vector<std::byte> src(n, std::byte{1}), dst(n);
    f.verbs.reg_cache().register_at_init(0, src.data(), n);
    f.verbs.reg_cache().register_at_init(2, dst.data(), n);
    f.eng.spawn("pe0", [&](sim::Process& p) {
      f.verbs.rdma_write(p, 0, src.data(), 2, dst.data(), n)->wait(p);
      raw = f.eng.now();
    });
    f.eng.run();
    raw_events = f.eng.events_executed();
  }
  Fixture f;
  sim::Time through = f.timed_write(n);
  EXPECT_EQ(through, raw);
  EXPECT_EQ(f.eng.events_executed(), raw_events);
  EXPECT_EQ(std::string(f.transport->name()), "rc");
  EXPECT_EQ(f.transport->striped_ops(), 0u);
}

TEST(RcTransport, QpCachePenaltyKicksInPastContextCache) {
  hw::ClusterConfig big = two_node_cluster();
  big.num_nodes = 64;  // 127 peers per endpoint >> 16 cached contexts
  auto time_with_cache = [&](int entries) {
    hw::ClusterConfig cc = big;
    cc.params.hca_qp_cache_entries = entries;
    Fixture f(TransportConfig{}, cc);
    return f.timed_write(4096);
  };
  sim::Time cold = time_with_cache(16);
  sim::Time warm = time_with_cache(1 << 20);
  EXPECT_GT(cold, warm);  // overflowing the QP-context cache costs latency
  EXPECT_GT((cold - warm).to_us(), 0.5);
}

TEST(RcTransport, LoopbackPaysNoQpCachePenalty) {
  // Regression: the QP-context-cache miss penalty was charged on same-node
  // loopback ops too, which never touch the wire-facing QP working set. A
  // loopback op's event stream must be identical whether the cache thrashes
  // or not.
  hw::ClusterConfig big = two_node_cluster();
  big.num_nodes = 64;  // remote ops do overflow a 16-entry context cache
  auto run_loopback = [&](int entries) {
    hw::ClusterConfig cc = big;
    cc.params.hca_qp_cache_entries = entries;
    Fixture f(TransportConfig{}, cc);
    std::vector<std::byte> src(4096, std::byte{7}), dst(4096);
    f.verbs.reg_cache().register_at_init(0, src.data(), src.size());
    f.verbs.reg_cache().register_at_init(1, dst.data(), dst.size());
    sim::Time done;
    f.eng.spawn("pe0", [&](sim::Process& p) {
      // PE 1 is on-node.
      f.transport->endpoint(0).rdma_write(p, src.data(), 1, dst.data(), 4096)
          ->wait(p);
      done = f.eng.now();
    });
    f.eng.run();
    return std::pair<sim::Time, std::uint64_t>(done, f.eng.events_executed());
  };
  EXPECT_EQ(run_loopback(16), run_loopback(1 << 20));
}

TEST(RcTransport, PenaltyIsZeroAtSmallScale) {
  Fixture f;  // 4 PEs: 3 peers, cache holds 2048 contexts
  sim::Time a = f.timed_write(4096);
  hw::ClusterConfig cc = two_node_cluster();
  cc.params.hca_qp_cache_entries = 1;  // force the penalty on
  Fixture g(TransportConfig{}, cc);
  sim::Time b = g.timed_write(4096);
  EXPECT_LT(a, b);
}

// ---------------------------------------------------------------------------
// UD: segmentation, per-packet cost, MTU-bounded sends.

TEST(UdTransport, LargeWriteSegmentsIntoMtuDatagrams) {
  const std::size_t n = 64u << 10;  // 16 segments at the 4 KiB MTU
  Fixture ud(TransportConfig{QpKind::kUd, 1, true});
  sim::Time t_ud = ud.timed_write(n);
  EXPECT_EQ(ud.transport->ud_packets(),
            n / ud.cluster.params().ud_mtu_bytes);
  Fixture rc;
  sim::Time t_rc = rc.timed_write(n);
  EXPECT_GT(t_ud, t_rc);  // per-packet overhead makes UD strictly slower
}

TEST(UdTransport, SmallWriteIsOneDatagram) {
  Fixture ud(TransportConfig{QpKind::kUd, 1, true});
  ud.timed_write(2048);
  EXPECT_EQ(ud.transport->ud_packets(), 1u);
}

TEST(UdTransport, OversizeSendThrows) {
  Fixture ud(TransportConfig{QpKind::kUd, 1, true});
  bool threw = false;
  ud.eng.spawn("pe0", [&](sim::Process& p) {
    try {
      ud.transport->endpoint(0).post_send(p, 2, 8192, [] {});
    } catch (const IbError&) {
      threw = true;
    }
  });
  ud.eng.run();
  EXPECT_TRUE(threw);
}

TEST(UdTransport, AtomicsStillWorkViaServiceQp) {
  Fixture ud(TransportConfig{QpKind::kUd, 1, true});
  std::uint64_t word = 5;
  ud.verbs.reg_cache().register_at_init(2, &word, sizeof(word));
  std::uint64_t old = 0;
  ud.eng.spawn("pe0", [&](sim::Process& p) {
    ud.transport->endpoint(0).atomic_fadd64(p, 2, &word, 3, &old)->wait(p);
  });
  ud.eng.run();
  EXPECT_EQ(old, 5u);
  EXPECT_EQ(word, 8u);
}

// ---------------------------------------------------------------------------
// DC: constant-size initiator pool, reconnect on working-set overflow.

TEST(DcTransport, ReconnectsOnlyWhenPoolThrashes) {
  hw::ClusterConfig cc;
  cc.num_nodes = 4;
  cc.pes_per_node = 1;
  cc.params.dc_initiator_pool = 2;
  Fixture dc(TransportConfig{QpKind::kDc, 1, true}, cc);
  std::vector<std::byte> src(64), dst(64);
  dc.verbs.reg_cache().register_at_init(0, src.data(), src.size());
  for (int pe = 1; pe <= 3; ++pe) {
    dc.verbs.reg_cache().register_at_init(pe, dst.data(), dst.size());
  }
  dc.eng.spawn("pe0", [&](sim::Process& p) {
    auto& ep = dc.transport->endpoint(0);
    // Working set of 2 targets fits the pool: 2 connects, then all hits.
    for (int i = 0; i < 4; ++i) {
      ep.rdma_write(p, src.data(), 1 + (i % 2), dst.data(), 64)->wait(p);
    }
    EXPECT_EQ(dc.transport->dc_reconnects(), 2u);
    // A third target evicts the LRU initiator; cycling all three thrashes.
    ep.rdma_write(p, src.data(), 3, dst.data(), 64)->wait(p);
    EXPECT_EQ(dc.transport->dc_reconnects(), 3u);
  });
  dc.eng.run();
}

TEST(DcTransport, LoopbackNeedsNoInitiator) {
  Fixture dc(TransportConfig{QpKind::kDc, 1, true});
  std::vector<std::byte> src(64), dst(64);
  dc.verbs.reg_cache().register_at_init(0, src.data(), src.size());
  dc.verbs.reg_cache().register_at_init(1, dst.data(), dst.size());
  dc.eng.spawn("pe0", [&](sim::Process& p) {
    // PE 1 is on-node: the op never leaves the adapter.
    dc.transport->endpoint(0).rdma_write(p, src.data(), 1, dst.data(), 64)
        ->wait(p);
  });
  dc.eng.run();
  EXPECT_EQ(dc.transport->dc_reconnects(), 0u);
}

TEST(DcTransport, StripedOpAcquiresBothRailsDcis) {
  // Regression: 2-rail striping drove the second HCA without acquiring a
  // DCI on it — no reconnect cost, no LRU entry. Each rail's pool must pay
  // its own connection to a fresh target.
  const std::size_t n = 1u << 20;  // above rail_stripe_min_bytes
  auto reconnects = [&](int rails) {
    Fixture dc(TransportConfig{QpKind::kDc, rails, true});
    std::vector<std::byte> src(n), dst(n);
    dc.verbs.reg_cache().register_at_init(0, src.data(), n);
    dc.verbs.reg_cache().register_at_init(2, dst.data(), n);
    dc.eng.spawn("pe0", [&](sim::Process& p) {
      auto& ep = dc.transport->endpoint(0);
      ep.rdma_write(p, src.data(), 2, dst.data(), n)->wait(p);
      // Both rails now hold the target: a second striped op reconnects
      // nothing.
      ep.rdma_write(p, src.data(), 2, dst.data(), n)->wait(p);
    });
    dc.eng.run();
    return dc.transport->dc_reconnects();
  };
  EXPECT_EQ(reconnects(1), 1u);
  EXPECT_EQ(reconnects(2), 2u);
}

// ---------------------------------------------------------------------------
// Footprint model: the paper-motivated memory argument for DC at scale.

TEST(Footprint, DcBeatsRcByOrdersOfMagnitudeAt4kEndpoints) {
  Fixture rc;
  Fixture dc(TransportConfig{QpKind::kDc, 1, true});
  Fixture ud(TransportConfig{QpKind::kUd, 1, true});
  QpFootprint frc = rc.transport->footprint(4096);
  QpFootprint fdc = dc.transport->footprint(4096);
  QpFootprint fud = ud.transport->footprint(4096);
  EXPECT_EQ(frc.qps, 4095u);
  EXPECT_EQ(fdc.qps,
            static_cast<std::uint64_t>(rc.cluster.params().dc_initiator_pool) + 1);
  EXPECT_EQ(fud.qps, 1u);
  EXPECT_GT(frc.total_bytes(), 100 * fdc.total_bytes());
  EXPECT_LT(fud.total_bytes(), fdc.total_bytes());
}

TEST(Footprint, SrqCollapsesRcRecvMemory) {
  Fixture rc;
  Fixture rc_srq(TransportConfig{QpKind::kRc, 1, true});
  QpFootprint per_qp = rc.transport->footprint(1024);
  QpFootprint shared = rc_srq.transport->footprint(1024);
  EXPECT_EQ(per_qp.context_bytes, shared.context_bytes);
  EXPECT_GT(per_qp.recv_bytes, shared.recv_bytes);
  EXPECT_EQ(shared.recv_bytes, rc.cluster.params().ib_srq_bytes);
}

// ---------------------------------------------------------------------------
// 2-rail striping.

TEST(Striping, LargeTransfersUseBothRailsAndGoFaster) {
  const std::size_t n = 1u << 20;
  Fixture one_rail;
  sim::Time t1 = one_rail.timed_write(n);
  Fixture two_rail(TransportConfig{QpKind::kRc, 2, false});
  sim::Time t2 = two_rail.timed_write(n);
  EXPECT_EQ(two_rail.transport->striped_ops(), 1u);
  EXPECT_LT(t2, t1);
  EXPECT_GE(t1.to_us() / t2.to_us(), 1.5);
}

TEST(Striping, OddSizeLandsEveryByte) {
  const std::size_t n = (1u << 20) + 13;
  std::vector<std::byte> src(n), dst(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = static_cast<std::byte>(i * 7 + 3);
  }
  Fixture f(TransportConfig{QpKind::kRc, 2, false});
  f.verbs.reg_cache().register_at_init(0, src.data(), n);
  f.verbs.reg_cache().register_at_init(2, dst.data(), n);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.transport->endpoint(0).rdma_write(p, src.data(), 2, dst.data(), n)->wait(p);
  });
  f.eng.run();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.transport->striped_ops(), 1u);
}

TEST(Striping, SmallMessagesStayOnOneRail) {
  Fixture one_rail;
  sim::Time t1 = one_rail.timed_write(4096);
  Fixture two_rail(TransportConfig{QpKind::kRc, 2, false});
  sim::Time t2 = two_rail.timed_write(4096);
  EXPECT_EQ(two_rail.transport->striped_ops(), 0u);
  EXPECT_EQ(t1, t2);  // sub-threshold: identical schedule
}

TEST(Striping, ReadsStripeToo) {
  const std::size_t n = 1u << 20;
  std::vector<std::byte> local(n), remote(n, std::byte{0x5c});
  Fixture f(TransportConfig{QpKind::kDc, 2, true});
  f.verbs.reg_cache().register_at_init(0, local.data(), n);
  f.verbs.reg_cache().register_at_init(2, remote.data(), n);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.transport->endpoint(0).rdma_read(p, local.data(), 2, remote.data(), n)
        ->wait(p);
  });
  f.eng.run();
  EXPECT_EQ(local, remote);
  EXPECT_EQ(f.transport->striped_ops(), 1u);
}

// ---------------------------------------------------------------------------
// Bounded registration cache.

TEST(RegCacheBound, LruEvictionPastCapacity) {
  hw::ClusterConfig cc = two_node_cluster();
  cc.params.mr_cache_capacity = 2;
  Fixture f(TransportConfig{}, cc);
  RegistrationCache& rcache = f.verbs.reg_cache();
  EXPECT_EQ(rcache.capacity(), 2u);
  std::vector<std::vector<std::byte>> bufs;
  for (int i = 0; i < 3; ++i) bufs.emplace_back(4096);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    for (auto& b : bufs) rcache.get_or_register(p, 0, b.data(), b.size());
    // Third insert evicted buffer 0; re-touching it is a fresh miss.
    EXPECT_FALSE(rcache.covered(0, bufs[0].data(), 64));
    EXPECT_TRUE(rcache.covered(0, bufs[2].data(), 64));
    rcache.get_or_register(p, 0, bufs[0].data(), bufs[0].size());
  });
  f.eng.run();
  EXPECT_EQ(rcache.evictions(), 2u);  // one for the overflow, one re-insert
  EXPECT_EQ(rcache.misses(), 4u);
}

TEST(RegCacheBound, HitsRefreshLruOrder) {
  hw::ClusterConfig cc = two_node_cluster();
  cc.params.mr_cache_capacity = 2;
  Fixture f(TransportConfig{}, cc);
  RegistrationCache& rcache = f.verbs.reg_cache();
  std::vector<std::byte> a(4096), b(4096), c(4096);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    rcache.get_or_register(p, 0, a.data(), a.size());
    rcache.get_or_register(p, 0, b.data(), b.size());
    rcache.get_or_register(p, 0, a.data(), a.size());  // hit: a becomes MRU
    rcache.get_or_register(p, 0, c.data(), c.size());  // evicts b, not a
  });
  f.eng.run();
  EXPECT_TRUE(rcache.covered(0, a.data(), 64));
  EXPECT_FALSE(rcache.covered(0, b.data(), 64));
}

TEST(RegCacheBound, InitTimeRegistrationsArePinned) {
  hw::ClusterConfig cc = two_node_cluster();
  cc.params.mr_cache_capacity = 1;
  Fixture f(TransportConfig{}, cc);
  RegistrationCache& rcache = f.verbs.reg_cache();
  std::vector<std::byte> heap(8192), x(4096), y(4096);
  rcache.register_at_init(0, heap.data(), heap.size());  // e.g. the symmetric heap
  f.eng.spawn("pe0", [&](sim::Process& p) {
    rcache.get_or_register(p, 0, x.data(), x.size());
    rcache.get_or_register(p, 0, y.data(), y.size());
  });
  f.eng.run();
  // Dynamic entries churned through the 1-slot cache; the heap never moves.
  EXPECT_TRUE(rcache.covered(0, heap.data(), 64));
  EXPECT_GE(rcache.evictions(), 1u);
}

TEST(RegCacheBound, GrowingAPinnedRangeKeepsItPinned) {
  // Regression: a miss at the base address of a shorter *pinned* entry
  // rewrote it as a dynamic one — silently demoting e.g. the symmetric heap
  // into the evictable LRU. The grow must keep the entry pinned.
  hw::ClusterConfig cc = two_node_cluster();
  cc.params.mr_cache_capacity = 1;
  Fixture f(TransportConfig{}, cc);
  RegistrationCache& rcache = f.verbs.reg_cache();
  std::vector<std::byte> heap(8192), x(4096), y(4096);
  rcache.register_at_init(0, heap.data(), 100);  // short pinned entry
  f.eng.spawn("pe0", [&](sim::Process& p) {
    rcache.get_or_register(p, 0, heap.data(), 200);  // grow in place
    EXPECT_EQ(rcache.grows(), 1u);
    EXPECT_TRUE(rcache.covered(0, heap.data(), 200));
    // Churn the 1-slot dynamic cache; the grown pinned entry must survive.
    rcache.get_or_register(p, 0, x.data(), x.size());
    rcache.get_or_register(p, 0, y.data(), y.size());
  });
  f.eng.run();
  EXPECT_TRUE(rcache.covered(0, heap.data(), 200));
}

TEST(RegCacheBound, GrowingADynamicRangeLeavesOneLruNode) {
  // Regression: the same grow path minted a second LRU node for a dynamic
  // entry while orphaning the old one — inflating lru.size(), shrinking
  // effective capacity, and corrupting eviction order.
  hw::ClusterConfig cc = two_node_cluster();
  cc.params.mr_cache_capacity = 2;
  Fixture f(TransportConfig{}, cc);
  RegistrationCache& rcache = f.verbs.reg_cache();
  std::vector<std::byte> a(8192), b(4096), c(4096);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    rcache.get_or_register(p, 0, a.data(), 4096);
    rcache.get_or_register(p, 0, a.data(), 8192);  // grow in place
    EXPECT_EQ(rcache.grows(), 1u);
    // Capacity 2 must still hold two distinct ranges: a stale duplicate
    // node for `a` would make this insert evict spuriously.
    rcache.get_or_register(p, 0, b.data(), b.size());
    EXPECT_TRUE(rcache.covered(0, a.data(), 8192));
    EXPECT_TRUE(rcache.covered(0, b.data(), 64));
    EXPECT_EQ(rcache.evictions(), 0u);
    // Overflow: exactly one eviction, and it is the true LRU (`a`).
    rcache.get_or_register(p, 0, c.data(), c.size());
    EXPECT_EQ(rcache.evictions(), 1u);
    EXPECT_FALSE(rcache.covered(0, a.data(), 64));
    EXPECT_TRUE(rcache.covered(0, b.data(), 64));
    EXPECT_TRUE(rcache.covered(0, c.data(), 64));
  });
  f.eng.run();
}

// ---------------------------------------------------------------------------
// SRD: segment spraying, deterministic reorder, tracking-buffer gauges.

TEST(SrdTransport, LandsEveryByteDespiteReordering) {
  const std::size_t n = 300001;  // 37 segments at the 8 KiB MTU, odd tail
  std::vector<std::byte> src(n), dst(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = static_cast<std::byte>(i * 13 + 5);
  }
  TransportConfig cfg;
  cfg.kind = QpKind::kSrd;
  cfg.srd_jitter_us = 10.0;  // wide window: adjacent segments do invert
  Fixture f(cfg);
  EXPECT_FALSE(f.transport->in_order_delivery());
  f.verbs.reg_cache().register_at_init(0, src.data(), n);
  f.verbs.reg_cache().register_at_init(2, dst.data(), n);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.transport->endpoint(0).rdma_write(p, src.data(), 2, dst.data(), n)
        ->wait(p);
  });
  f.eng.run();
  EXPECT_EQ(dst, src);
  const std::size_t mtu = f.cluster.params().srd_mtu_bytes;
  EXPECT_EQ(f.transport->srd_segments(), (n + mtu - 1) / mtu);
  // The whole point: segments arrived out of order, and the reorder buffer
  // had to hold more than one in-flight tracking entry.
  EXPECT_GT(f.transport->srd_ooo_deliveries(), 0u);
  EXPECT_GT(f.transport->srd_reorder_entries_hwm(), 1u);
  EXPECT_GT(f.transport->srd_reorder_bytes_hwm(), mtu);
}

TEST(SrdTransport, ZeroJitterDeliversInOrder) {
  // GDRSHMEM_IB_SRD_JITTER_US=0 is the A/B isolation knob: srd segmentation
  // with the reordering switched off must deliver strictly in order.
  const std::size_t n = 300001;
  std::vector<std::byte> src(n, std::byte{0x11}), dst(n);
  TransportConfig cfg;
  cfg.kind = QpKind::kSrd;
  cfg.srd_jitter_us = 0.0;
  Fixture f(cfg);
  f.verbs.reg_cache().register_at_init(0, src.data(), n);
  f.verbs.reg_cache().register_at_init(2, dst.data(), n);
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.transport->endpoint(0).rdma_write(p, src.data(), 2, dst.data(), n)
        ->wait(p);
  });
  f.eng.run();
  EXPECT_EQ(dst, src);
  EXPECT_EQ(f.transport->srd_ooo_deliveries(), 0u);
}

TEST(SrdTransport, ReorderingIsBitIdenticalPerSeed) {
  const std::size_t n = 300001;
  auto run = [&](std::uint64_t seed) {
    TransportConfig cfg;
    cfg.kind = QpKind::kSrd;
    cfg.srd_seed = seed;
    cfg.srd_jitter_us = 10.0;
    Fixture f(cfg);
    std::vector<std::byte> src(n, std::byte{0x3c}), dst(n);
    f.verbs.reg_cache().register_at_init(0, src.data(), n);
    f.verbs.reg_cache().register_at_init(2, dst.data(), n);
    sim::Time done;
    f.eng.spawn("pe0", [&](sim::Process& p) {
      f.transport->endpoint(0).rdma_write(p, src.data(), 2, dst.data(), n)
          ->wait(p);
      done = f.eng.now();
    });
    f.eng.run();
    EXPECT_EQ(dst, src);
    return std::make_tuple(done, f.eng.events_executed(),
                           f.transport->srd_ooo_deliveries());
  };
  auto a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);  // same seed: bit-identical schedule and reordering
  EXPECT_NE(a, c);  // different seed: a different (still valid) schedule
}

TEST(SrdTransport, FootprintIsConstantWithReorderBuffer) {
  TransportConfig cfg;
  cfg.kind = QpKind::kSrd;
  Fixture f(cfg);
  const hw::SystemParams& p = f.cluster.params();
  QpFootprint fp = f.transport->footprint(4096);
  EXPECT_EQ(fp.qps, 1u);  // one datagram QP regardless of peer count
  EXPECT_EQ(fp.context_bytes,
            p.ib_qp_context_bytes + p.ib_qp_ring_bytes +
                static_cast<std::uint64_t>(p.srd_reorder_entries) *
                    p.srd_reorder_entry_bytes);
  EXPECT_EQ(fp.recv_bytes, p.ib_srq_bytes);
}

TEST(SrdTransport, AtomicsAndSendsStayOrdered) {
  // Control messages and atomics ride the ordered service channel; they must
  // work unchanged and never count as sprayed segments.
  TransportConfig cfg;
  cfg.kind = QpKind::kSrd;
  Fixture f(cfg);
  std::uint64_t word = 5;
  f.verbs.reg_cache().register_at_init(2, &word, sizeof(word));
  std::uint64_t old = 0;
  bool delivered = false;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.transport->endpoint(0).atomic_fadd64(p, 2, &word, 3, &old)->wait(p);
    f.transport->endpoint(0)
        .post_send(p, 2, 64, [&] { delivered = true; })
        ->wait(p);
  });
  f.eng.run();
  EXPECT_EQ(old, 5u);
  EXPECT_EQ(word, 8u);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.transport->srd_segments(), 0u);
}

}  // namespace
}  // namespace gdrshmem::ib
