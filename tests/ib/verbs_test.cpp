// Unit tests for the verbs layer: registration cache, RDMA read/write over
// host and GDR paths, rkey faults, sends, atomics, and latency ordering
// properties the paper's protocol selection depends on.
#include "ib/verbs.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace gdrshmem::ib {
namespace {

struct Fixture {
  sim::Engine eng;
  hw::Cluster cluster;
  cudart::CudaRuntime cuda;
  Verbs verbs;

  explicit Fixture(int nodes = 2, bool same_socket = true)
      : cluster([nodes, same_socket] {
          hw::ClusterConfig c;
          c.num_nodes = nodes;
          c.pes_per_node = 2;
          c.hca_gpu_same_socket = same_socket;
          return hw::Cluster(c);
        }()),
        cuda(eng, cluster),
        verbs(eng, cluster, cuda) {}
};

TEST(RegistrationCache, MissChargesHitIsFree) {
  Fixture f;
  std::vector<std::byte> buf(1 << 20);
  sim::Time after_miss, after_hit;
  f.eng.spawn("pe", [&](sim::Process& p) {
    f.verbs.reg_cache().get_or_register(p, 0, buf.data(), buf.size());
    after_miss = f.eng.now();
    f.verbs.reg_cache().get_or_register(p, 0, buf.data(), buf.size());
    after_hit = f.eng.now();
    // Subrange of a registered range is also a hit.
    f.verbs.reg_cache().get_or_register(p, 0, buf.data() + 100, 64);
  });
  f.eng.run();
  EXPECT_GT(after_miss.to_us(), 100.0);  // base 55 us + ~90 us/MB
  EXPECT_EQ(after_hit, after_miss);
  EXPECT_EQ(f.verbs.reg_cache().misses(), 1u);
  EXPECT_EQ(f.verbs.reg_cache().hits(), 2u);
}

TEST(RegistrationCache, PerPeIsolation) {
  Fixture f;
  std::vector<std::byte> buf(4096);
  f.verbs.reg_cache().register_at_init(0, buf.data(), buf.size());
  EXPECT_TRUE(f.verbs.reg_cache().covered(0, buf.data(), 64));
  EXPECT_FALSE(f.verbs.reg_cache().covered(1, buf.data(), 64));
}

TEST(Verbs, RdmaWriteHostToHostMovesBytes) {
  Fixture f;
  std::vector<std::byte> src(256, std::byte{7}), dst(256);
  f.verbs.reg_cache().register_at_init(2, dst.data(), dst.size());
  f.verbs.reg_cache().register_at_init(0, src.data(), src.size());
  sim::Time done;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    auto c = f.verbs.rdma_write(p, 0, src.data(), 2, dst.data(), 256);
    c->wait(p);
    done = f.eng.now();
    EXPECT_EQ(dst[0], std::byte{7});
    EXPECT_EQ(dst[255], std::byte{7});
  });
  f.eng.run();
  // Inter-node small write: ~1-3 us, never 10+.
  EXPECT_GT(done.to_us(), 0.5);
  EXPECT_LT(done.to_us(), 5.0);
}

TEST(Verbs, RdmaWriteUnregisteredRemoteFaults) {
  Fixture f;
  std::vector<std::byte> src(64), dst(64);
  bool threw = false;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    try {
      f.verbs.rdma_write(p, 0, src.data(), 2, dst.data(), 64);
    } catch (const IbError&) {
      threw = true;
    }
  });
  f.eng.run();
  EXPECT_TRUE(threw);
}

TEST(Verbs, RdmaReadPullsRemoteData) {
  Fixture f;
  std::vector<std::byte> remote(128, std::byte{9}), local(128);
  f.verbs.reg_cache().register_at_init(2, remote.data(), remote.size());
  f.verbs.reg_cache().register_at_init(0, local.data(), local.size());
  f.eng.spawn("pe0", [&](sim::Process& p) {
    auto c = f.verbs.rdma_read(p, 0, local.data(), 2, remote.data(), 128);
    EXPECT_EQ(local[0], std::byte{0});  // not yet arrived
    c->wait(p);
    EXPECT_EQ(local[0], std::byte{9});
  });
  f.eng.run();
}

TEST(Verbs, GdrWriteToGpuUsesP2pPath) {
  Fixture f;
  void* gpu_buf = f.cuda.malloc_device(1, 0, 4096);  // PE 2's GPU
  std::vector<std::byte> src(4096, std::byte{3});
  f.verbs.reg_cache().register_at_init(2, gpu_buf, 4096);
  f.verbs.reg_cache().register_at_init(0, src.data(), src.size());
  sim::Time done;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    auto c = f.verbs.rdma_write(p, 0, src.data(), 2, gpu_buf, 4096);
    c->wait(p);
    done = f.eng.now();
    EXPECT_EQ(static_cast<std::byte*>(gpu_buf)[4095], std::byte{3});
  });
  f.eng.run();
  // GDR adds a PCIe hop but stays in the low single-digit microseconds —
  // the entire point of the paper's Direct GDR protocol.
  EXPECT_LT(done.to_us(), 6.0);
}

TEST(Verbs, GdrLargeWriteSlowerThanHostLargeWrite) {
  // The P2P write cap (6396 intra) is just below the wire; the *read* cap
  // (3421) makes large GDR reads-from-GPU much slower than host sourcing.
  Fixture f;
  constexpr std::size_t kBytes = 4u << 20;
  void* gpu_src = f.cuda.malloc_device(0, 0, kBytes);
  std::vector<std::byte> host_src(kBytes);
  std::vector<std::byte> dst_a(kBytes), dst_b(kBytes);
  f.verbs.reg_cache().register_at_init(2, dst_a.data(), kBytes);
  f.verbs.reg_cache().register_at_init(2, dst_b.data(), kBytes);
  f.verbs.reg_cache().register_at_init(0, gpu_src, kBytes);
  f.verbs.reg_cache().register_at_init(0, host_src.data(), kBytes);
  sim::Duration gpu_time, host_time;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    sim::Time t0 = f.eng.now();
    f.verbs.rdma_write(p, 0, gpu_src, 2, dst_a.data(), kBytes)->wait(p);
    gpu_time = f.eng.now() - t0;
    t0 = f.eng.now();
    f.verbs.rdma_write(p, 0, host_src.data(), 2, dst_b.data(), kBytes)->wait(p);
    host_time = f.eng.now() - t0;
  });
  f.eng.run();
  // 4 MB at 3421 MB/s ~ 1170 us vs at 6397 MB/s ~ 625 us.
  EXPECT_GT(gpu_time.to_us(), 1.5 * host_time.to_us());
}

TEST(Verbs, InterSocketGdrReadIsCatastrophic) {
  Fixture f(2, /*same_socket=*/false);
  constexpr std::size_t kBytes = 1u << 20;
  void* gpu_src = f.cuda.malloc_device(0, 0, kBytes);
  std::vector<std::byte> dst(kBytes);
  f.verbs.reg_cache().register_at_init(2, dst.data(), kBytes);
  f.verbs.reg_cache().register_at_init(0, gpu_src, kBytes);
  sim::Duration dur;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    sim::Time t0 = f.eng.now();
    f.verbs.rdma_write(p, 0, gpu_src, 2, dst.data(), kBytes)->wait(p);
    dur = f.eng.now() - t0;
  });
  f.eng.run();
  // 1 MB at 247 MB/s ~ 4 ms.
  EXPECT_GT(dur.to_ms(), 3.0);
}

TEST(Verbs, LoopbackWriteFasterThanNetworkWrite) {
  Fixture f;
  std::vector<std::byte> src(8), dst_local(8), dst_remote(8);
  f.verbs.reg_cache().register_at_init(1, dst_local.data(), 8);   // same node
  f.verbs.reg_cache().register_at_init(2, dst_remote.data(), 8);  // other node
  f.verbs.reg_cache().register_at_init(0, src.data(), 8);
  sim::Duration loopback, network;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    sim::Time t0 = f.eng.now();
    f.verbs.rdma_write(p, 0, src.data(), 1, dst_local.data(), 8)->wait(p);
    loopback = f.eng.now() - t0;
    t0 = f.eng.now();
    f.verbs.rdma_write(p, 0, src.data(), 2, dst_remote.data(), 8)->wait(p);
    network = f.eng.now() - t0;
  });
  f.eng.run();
  EXPECT_LT(loopback, network);
}

TEST(Verbs, PostSendDeliversInOrder) {
  Fixture f;
  std::vector<int> delivered;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.verbs.post_send(p, 0, 2, 16, [&] { delivered.push_back(1); });
    f.verbs.post_send(p, 0, 2, 16, [&] { delivered.push_back(2); });
    auto c = f.verbs.post_send(p, 0, 2, 16, [&] { delivered.push_back(3); });
    c->wait(p);
  });
  f.eng.run();
  EXPECT_EQ(delivered, (std::vector<int>{1, 2, 3}));
}

TEST(Verbs, AtomicFadd64ReturnsOldValue) {
  Fixture f;
  std::uint64_t word = 100;
  std::uint64_t result = 0;
  f.verbs.reg_cache().register_at_init(2, &word, sizeof(word));
  f.eng.spawn("pe0", [&](sim::Process& p) {
    f.verbs.atomic_fadd64(p, 0, 2, &word, 5, &result)->wait(p);
    EXPECT_EQ(result, 100u);
    EXPECT_EQ(word, 105u);
    f.verbs.atomic_fadd64(p, 0, 2, &word, 1, &result)->wait(p);
    EXPECT_EQ(result, 105u);
  });
  f.eng.run();
}

TEST(Verbs, AtomicCswap64) {
  Fixture f;
  std::uint64_t word = 7;
  std::uint64_t result = 0;
  f.verbs.reg_cache().register_at_init(2, &word, sizeof(word));
  f.eng.spawn("pe0", [&](sim::Process& p) {
    // Failed compare: word unchanged, old value returned.
    f.verbs.atomic_cswap64(p, 0, 2, &word, 99, 1, &result)->wait(p);
    EXPECT_EQ(result, 7u);
    EXPECT_EQ(word, 7u);
    // Successful compare.
    f.verbs.atomic_cswap64(p, 0, 2, &word, 7, 42, &result)->wait(p);
    EXPECT_EQ(result, 7u);
    EXPECT_EQ(word, 42u);
  });
  f.eng.run();
}

TEST(Verbs, AtomicOnGpuMemoryWorks) {
  Fixture f;
  auto* word = static_cast<std::uint64_t*>(f.cuda.malloc_device(1, 0, 8));
  *word = 10;
  std::uint64_t result = 0;
  f.verbs.reg_cache().register_at_init(2, word, 8);
  sim::Duration gpu_lat;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    sim::Time t0 = f.eng.now();
    f.verbs.atomic_fadd64(p, 0, 2, word, 1, &result)->wait(p);
    gpu_lat = f.eng.now() - t0;
    EXPECT_EQ(result, 10u);
    EXPECT_EQ(*word, 11u);
  });
  f.eng.run();
  EXPECT_LT(gpu_lat.to_us(), 10.0);
}

TEST(Verbs, ConcurrentWritersContendOnTargetPort) {
  // Two source nodes streaming to one target node must serialize on the
  // target HCA port link.
  Fixture f(3);
  constexpr std::size_t kBytes = 4u << 20;
  std::vector<std::byte> src1(kBytes), src2(kBytes), dst1(kBytes), dst2(kBytes);
  f.verbs.reg_cache().register_at_init(0, dst1.data(), kBytes);
  f.verbs.reg_cache().register_at_init(0, dst2.data(), kBytes);
  f.verbs.reg_cache().register_at_init(2, src1.data(), kBytes);
  f.verbs.reg_cache().register_at_init(4, src2.data(), kBytes);
  sim::Time done1, done2;
  f.eng.spawn("pe2", [&](sim::Process& p) {
    f.verbs.rdma_write(p, 2, src1.data(), 0, dst1.data(), kBytes)->wait(p);
    done1 = f.eng.now();
  });
  f.eng.spawn("pe4", [&](sim::Process& p) {
    f.verbs.rdma_write(p, 4, src2.data(), 0, dst2.data(), kBytes)->wait(p);
    done2 = f.eng.now();
  });
  f.eng.run();
  double serial_us = static_cast<double>(kBytes) / 6397.0;  // one transfer
  double last = std::max(done1.to_us(), done2.to_us());
  EXPECT_GT(last, 1.8 * serial_us);  // second writer queued behind the first
}

}  // namespace
}  // namespace gdrshmem::ib
