// Microbenchmark-harness tests: sweep sanity, the paper's headline ratios,
// overlap, and bandwidth plausibility.
#include <gtest/gtest.h>

#include "omb/omb.hpp"

namespace gdrshmem::omb {
namespace {

using core::Domain;
using core::TransportKind;

LatencyConfig base_cfg() {
  LatencyConfig cfg;
  cfg.iters = 30;
  cfg.warmup = 5;
  return cfg;
}

TEST(Omb, LabelsMatchPaperNaming) {
  LatencyConfig cfg = base_cfg();
  cfg.intra_node = true;
  cfg.local = Loc::kHost;
  cfg.remote = Domain::kGpu;
  cfg.is_put = true;
  EXPECT_EQ(config_label(cfg), "intra H-D put");
  cfg.intra_node = false;
  cfg.local = Loc::kDevice;
  cfg.is_put = false;
  EXPECT_EQ(config_label(cfg), "inter D-D get");
}

TEST(Omb, SizeListsAreSorted) {
  auto s = small_message_sizes();
  auto l = large_message_sizes();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_TRUE(std::is_sorted(l.begin(), l.end()));
  EXPECT_LT(s.back(), l.front());
}

TEST(Omb, LatencyMonotonicInSizeForLargeMessages) {
  LatencyConfig cfg = base_cfg();
  cfg.intra_node = false;
  cfg.local = Loc::kDevice;
  cfg.remote = Domain::kGpu;
  cfg.sizes = {64u << 10, 256u << 10, 1u << 20, 4u << 20};
  auto pts = run_latency(cfg);
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].latency_us, pts[i - 1].latency_us);
  }
  // 4 MB at ~6.4 GB/s wire: at least ~600 us.
  EXPECT_GT(pts.back().latency_us, 500.0);
}

TEST(Omb, EmptySizesRejected) {
  LatencyConfig cfg = base_cfg();
  EXPECT_THROW(run_latency(cfg), core::ShmemError);
}

TEST(Omb, Fig8ShapeSmallDd) {
  // Inter-node D-D small messages: Enhanced ~7x better than baseline.
  LatencyConfig cfg = base_cfg();
  cfg.intra_node = false;
  cfg.local = Loc::kDevice;
  cfg.remote = Domain::kGpu;
  cfg.sizes = {8};
  cfg.transport = TransportKind::kEnhancedGdr;
  double enhanced = run_latency(cfg)[0].latency_us;
  cfg.transport = TransportKind::kHostPipeline;
  double baseline = run_latency(cfg)[0].latency_us;
  EXPECT_GT(baseline / enhanced, 4.0);
  EXPECT_LT(baseline / enhanced, 10.0);
}

TEST(Omb, Fig6ShapeSmallIntraHd) {
  LatencyConfig cfg = base_cfg();
  cfg.intra_node = true;
  cfg.local = Loc::kHost;
  cfg.remote = Domain::kGpu;
  cfg.sizes = {4};
  cfg.transport = TransportKind::kEnhancedGdr;
  double enhanced = run_latency(cfg)[0].latency_us;
  cfg.transport = TransportKind::kHostPipeline;
  double baseline = run_latency(cfg)[0].latency_us;
  EXPECT_GT(baseline / enhanced, 2.0);
}

TEST(Omb, GetLatencyComparableToPut) {
  LatencyConfig cfg = base_cfg();
  cfg.intra_node = true;
  cfg.local = Loc::kHost;
  cfg.remote = Domain::kGpu;
  cfg.sizes = {4};
  cfg.is_put = false;
  double get_us = run_latency(cfg)[0].latency_us;
  EXPECT_GT(get_us, 1.0);
  EXPECT_LT(get_us, 4.0);  // paper: 2.02 us
}

TEST(Omb, OverlapFig10Shape) {
  OverlapConfig cfg;
  cfg.bytes = 8 * 1024;
  cfg.target_compute_us = {50, 200};
  cfg.iters = 5;
  cfg.transport = TransportKind::kEnhancedGdr;
  auto enhanced = run_overlap(cfg);
  ASSERT_EQ(enhanced.size(), 2u);
  for (const auto& p : enhanced) EXPECT_GT(p.overlap_pct, 95.0);

  cfg.transport = TransportKind::kHostPipeline;
  auto baseline = run_overlap(cfg);
  // Baseline communication time tracks the target's compute time.
  EXPECT_GT(baseline[1].comm_time_us, 150.0);
  EXPECT_LT(baseline[1].overlap_pct, 40.0);
}

TEST(Omb, BandwidthApproachesWireSpeed) {
  BandwidthConfig cfg;
  cfg.intra_node = false;
  cfg.local = Loc::kHost;
  cfg.remote = Domain::kHost;
  cfg.bytes = 1u << 20;
  cfg.window = 8;
  cfg.iters = 5;
  auto res = run_bandwidth(cfg);
  EXPECT_GT(res.mbps, 0.8 * 6397.0);
  EXPECT_LT(res.mbps, 1.02 * 6397.0);
}

TEST(Omb, GdrLargePutBandwidthCappedByP2pWrite) {
  // Large H-D put (intra-socket): direct GDR write capped at 6396 MB/s;
  // effectively the wire. D-D goes through the pipeline at similar speed.
  BandwidthConfig cfg;
  cfg.intra_node = false;
  cfg.local = Loc::kDevice;
  cfg.remote = Domain::kGpu;
  cfg.bytes = 2u << 20;
  cfg.window = 4;
  cfg.iters = 5;
  auto res = run_bandwidth(cfg);
  EXPECT_GT(res.mbps, 0.6 * 6397.0);
  EXPECT_LT(res.mbps, 1.02 * 6397.0);
}

}  // namespace
}  // namespace gdrshmem::omb
