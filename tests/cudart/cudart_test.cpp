// Unit tests for the CUDA-like runtime: UVA classification, memcpy
// functional + timing behaviour, streams, IPC, and kernels.
#include "cudart/cudart.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace gdrshmem::cudart {
namespace {

struct Fixture {
  hw::ClusterConfig cfg;
  sim::Engine eng;
  hw::Cluster cluster;
  CudaRuntime cuda;

  explicit Fixture(int nodes = 2)
      : cfg([nodes] {
          hw::ClusterConfig c;
          c.num_nodes = nodes;
          c.pes_per_node = 2;
          return c;
        }()),
        cluster(cfg),
        cuda(eng, cluster) {}
};

TEST(PointerRegistry, QueryClassifiesRanges) {
  PointerRegistry reg;
  alignas(8) static std::byte arena[256];
  reg.insert(arena, 128, /*node=*/1, /*device=*/0);
  auto mid = reg.query(arena + 64);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->node, 1);
  EXPECT_EQ(mid->alloc_base, arena);
  EXPECT_EQ(mid->alloc_size, 128u);
  EXPECT_FALSE(reg.query(arena + 128).has_value());  // one-past-end is host
  EXPECT_FALSE(reg.query(nullptr).has_value());
  reg.erase(arena);
  EXPECT_FALSE(reg.query(arena).has_value());
}

TEST(PointerRegistry, RejectsOverlap) {
  PointerRegistry reg;
  static std::byte arena[256];
  reg.insert(arena, 128, 0, 0);
  EXPECT_THROW(reg.insert(arena + 64, 16, 0, 0), CudaError);
  EXPECT_THROW(reg.insert(arena, 128, 0, 0), CudaError);
  EXPECT_THROW(reg.erase(arena + 4), CudaError);
}

TEST(CudaRuntime, MallocRegistersUva) {
  Fixture f;
  void* d = f.cuda.malloc_device(1, 1, 4096);
  PtrAttr a = f.cuda.attributes(d);
  EXPECT_EQ(a.space, MemSpace::kDevice);
  EXPECT_EQ(a.node, 1);
  EXPECT_EQ(a.device, 1);
  int host_var = 0;
  EXPECT_EQ(f.cuda.attributes(&host_var).space, MemSpace::kHost);
  f.cuda.free_device(d);
  EXPECT_EQ(f.cuda.attributes(d).space, MemSpace::kHost);
  EXPECT_THROW(f.cuda.free_device(d), CudaError);
}

TEST(CudaRuntime, MallocValidatesArguments) {
  Fixture f;
  EXPECT_THROW(f.cuda.malloc_device(-1, 0, 16), CudaError);
  EXPECT_THROW(f.cuda.malloc_device(0, 99, 16), CudaError);
  EXPECT_THROW(f.cuda.malloc_device(0, 0, 0), CudaError);
}

TEST(CudaRuntime, MemcpyMovesBytesAndChargesTime) {
  Fixture f;
  void* d = f.cuda.malloc_device(0, 0, 1024);
  std::vector<std::byte> host(1024);
  std::iota(reinterpret_cast<unsigned char*>(host.data()),
            reinterpret_cast<unsigned char*>(host.data()) + 1024, 0);
  sim::Time h2d_done;
  f.eng.spawn("pe", [&](sim::Process& p) {
    f.cuda.memcpy_sync(p, d, host.data(), 1024);
    h2d_done = f.eng.now();
    std::vector<std::byte> back(1024);
    f.cuda.memcpy_sync(p, back.data(), d, 1024);
    EXPECT_EQ(std::memcmp(back.data(), host.data(), 1024), 0);
  });
  f.eng.run();
  // H2D of 1 KB: launch overhead dominates; must be > 5 us and < 10 us.
  EXPECT_GT(h2d_done.to_us(), 5.0);
  EXPECT_LT(h2d_done.to_us(), 10.0);
}

TEST(CudaRuntime, MemcpyCrossNodeDeviceToDeviceThrows) {
  Fixture f;
  void* d0 = f.cuda.malloc_device(0, 0, 64);
  void* d1 = f.cuda.malloc_device(1, 0, 64);
  bool threw = false;
  f.eng.spawn("pe", [&](sim::Process& p) {
    try {
      f.cuda.memcpy_sync(p, d1, d0, 64);
    } catch (const CudaError&) {
      threw = true;
    }
  });
  f.eng.run();
  EXPECT_TRUE(threw);
}

TEST(CudaRuntime, LargeCopyTimeScalesWithSize) {
  Fixture f;
  void* d = f.cuda.malloc_device(0, 0, 8u << 20);
  std::vector<std::byte> host(8u << 20);
  sim::Time t_small, t_large;
  f.eng.spawn("pe", [&](sim::Process& p) {
    sim::Time start = f.eng.now();
    f.cuda.memcpy_sync(p, d, host.data(), 1u << 20);
    t_small = f.eng.now();
    f.cuda.memcpy_sync(p, d, host.data(), 8u << 20);
    t_large = f.eng.now();
    (void)start;
  });
  f.eng.run();
  double small_us = t_small.to_us();
  double large_us = (t_large - t_small).to_us();
  // Serialization: bytes / (10'000 MB/s) plus ~6 us launch+hop overhead.
  double overhead = f.cfg.params.cuda_copy_launch_us + f.cfg.params.pcie_hop_latency_us;
  EXPECT_NEAR(small_us, (1u << 20) / 10000.0 + overhead, 1.0);
  EXPECT_NEAR(large_us, (8u << 20) / 10000.0 + overhead, 1.0);
}

TEST(CudaRuntime, AsyncStreamOrdering) {
  Fixture f;
  void* d = f.cuda.malloc_device(0, 0, 256);
  std::vector<std::byte> a(256, std::byte{1}), b(256, std::byte{2});
  Stream s(0, 0);
  f.eng.spawn("pe", [&](sim::Process& p) {
    auto e1 = f.cuda.memcpy_async(d, a.data(), 256, s);
    auto e2 = f.cuda.memcpy_async(d, b.data(), 256, s);
    EXPECT_FALSE(e1->done(f.eng));
    e2->synchronize(p);
    EXPECT_TRUE(e1->done(f.eng));  // stream order: e1 before e2
    EXPECT_EQ(static_cast<const std::byte*>(d)[0], std::byte{2});
  });
  f.eng.run();
}

TEST(CudaRuntime, IpcHandleRoundTrip) {
  Fixture f;
  void* d = f.cuda.malloc_device(0, 1, 512);
  IpcHandle h = f.cuda.ipc_get_handle(d);
  EXPECT_EQ(h.len, 512u);
  sim::Time first_open, second_open_cost_start, second_open_done;
  f.eng.spawn("pe", [&](sim::Process& p) {
    void* mapped = f.cuda.ipc_open_handle(p, h, /*opener_node=*/0, /*opener_pe=*/1);
    EXPECT_EQ(mapped, d);
    first_open = f.eng.now();
    second_open_cost_start = f.eng.now();
    // Second open by the same PE is cached: free.
    f.cuda.ipc_open_handle(p, h, 0, 1);
    second_open_done = f.eng.now();
  });
  f.eng.run();
  EXPECT_GT(first_open.to_us(), 50.0);  // one-time mapping cost
  EXPECT_EQ(second_open_done, second_open_cost_start);
}

TEST(CudaRuntime, IpcCrossNodeRejected) {
  Fixture f;
  void* d = f.cuda.malloc_device(0, 0, 64);
  IpcHandle h = f.cuda.ipc_get_handle(d);
  bool threw = false;
  f.eng.spawn("pe", [&](sim::Process& p) {
    try {
      f.cuda.ipc_open_handle(p, h, /*opener_node=*/1, /*opener_pe=*/2);
    } catch (const CudaError&) {
      threw = true;
    }
  });
  f.eng.run();
  EXPECT_TRUE(threw);
}

TEST(CudaRuntime, IpcHandleRequiresAllocationBase) {
  Fixture f;
  void* d = f.cuda.malloc_device(0, 0, 128);
  EXPECT_THROW(f.cuda.ipc_get_handle(static_cast<std::byte*>(d) + 8), CudaError);
  int host_var;
  EXPECT_THROW(f.cuda.ipc_get_handle(&host_var), CudaError);
}

TEST(CudaRuntime, KernelChargesPerCellCost) {
  Fixture f;
  int ran = 0;
  sim::Time done;
  f.eng.spawn("pe", [&](sim::Process& p) {
    f.cuda.launch_kernel_sync(p, /*cells=*/1000000, /*per_cell_ns=*/1.0,
                              [&] { ran = 1; });
    done = f.eng.now();
  });
  f.eng.run();
  EXPECT_EQ(ran, 1);
  // 1e6 cells * 1 ns = 1 ms plus ~6 us launch.
  EXPECT_NEAR(done.to_ms(), 1.006, 0.01);
}

TEST(CudaRuntime, AsyncKernelOverlapsWithHostDelay) {
  Fixture f;
  Stream s(0, 0);
  sim::Time done;
  f.eng.spawn("pe", [&](sim::Process& p) {
    auto ev = f.cuda.launch_kernel_async(100000, 1.0, [] {}, s);
    p.delay(sim::Duration::us(50));  // host work overlapping the kernel
    ev->synchronize(p);
    done = f.eng.now();
  });
  f.eng.run();
  // Kernel ~106 us dominates the 50 us host work: total ~106 us, not 156.
  EXPECT_NEAR(done.to_us(), 106.0, 2.0);
}

}  // namespace
}  // namespace gdrshmem::cudart
