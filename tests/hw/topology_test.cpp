// Unit tests for the cluster topology model: placement, path construction,
// and the Table III P2P bandwidth asymmetries the paper's designs react to.
#include "hw/topology.hpp"

#include <gtest/gtest.h>

namespace gdrshmem::hw {
namespace {

ClusterConfig wilkes_like(int nodes = 2, int pes = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.pes_per_node = pes;
  return cfg;
}

TEST(Cluster, RejectsDegenerateConfigs) {
  ClusterConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
  cfg = ClusterConfig{};
  cfg.gpus_per_node = 0;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
}

TEST(Cluster, PlacementIsDeterministicAndRoundRobin) {
  Cluster c(wilkes_like(2, 2));
  EXPECT_EQ(c.num_pes(), 4);
  PePlacement p0 = c.placement(0), p1 = c.placement(1), p2 = c.placement(2);
  EXPECT_EQ(p0.node, 0);
  EXPECT_EQ(p1.node, 0);
  EXPECT_EQ(p2.node, 1);
  EXPECT_EQ(p0.gpu, 0);
  EXPECT_EQ(p1.gpu, 1);
  EXPECT_NE(p0.socket, p1.socket);  // 2 GPUs spread across 2 sockets
  EXPECT_TRUE(c.same_node(0, 1));
  EXPECT_FALSE(c.same_node(0, 2));
  // Ids beyond the PEs are per-node service (proxy) endpoints.
  EXPECT_EQ(c.service_endpoint(1), 5);
  PePlacement svc = c.placement(c.service_endpoint(1));
  EXPECT_EQ(svc.node, 1);
  EXPECT_EQ(svc.local_rank, -1);
  EXPECT_EQ(svc.hca, 0);
  EXPECT_THROW(c.placement(6), std::out_of_range);
  EXPECT_THROW(c.placement(-1), std::out_of_range);
}

TEST(Cluster, SameSocketHcaPreferred) {
  Cluster c(wilkes_like());
  for (int pe = 0; pe < 2; ++pe) {
    PePlacement p = c.placement(pe);
    const auto& hca = c.node(p.node).hcas.at(static_cast<std::size_t>(p.hca));
    EXPECT_EQ(hca.socket, p.socket);
  }
}

TEST(Cluster, InterSocketPlacementWhenRequested) {
  ClusterConfig cfg = wilkes_like();
  cfg.hca_gpu_same_socket = false;
  Cluster c(cfg);
  PePlacement p = c.placement(0);
  const auto& hca = c.node(p.node).hcas.at(static_cast<std::size_t>(p.hca));
  EXPECT_NE(hca.socket, p.socket);
}

TEST(Cluster, GdrLegEncodesTableIIIAsymmetry) {
  Cluster c(wilkes_like());
  const SystemParams& p = c.params();
  // GPU 0 and HCA 0 share socket 0; GPU 1 is on socket 1.
  sim::Path read_intra = c.gdr_leg(0, 0, 0, P2pDir::kRead);
  sim::Path read_inter = c.gdr_leg(0, 0, 1, P2pDir::kRead);
  sim::Path write_intra = c.gdr_leg(0, 0, 0, P2pDir::kWrite);
  sim::Path write_inter = c.gdr_leg(0, 0, 1, P2pDir::kWrite);
  EXPECT_DOUBLE_EQ(read_intra.bw_mbps, p.p2p_read_intra_socket_bw_mbps);
  EXPECT_DOUBLE_EQ(read_inter.bw_mbps, p.p2p_read_inter_socket_bw_mbps);
  EXPECT_DOUBLE_EQ(write_intra.bw_mbps, p.p2p_write_intra_socket_bw_mbps);
  EXPECT_DOUBLE_EQ(write_inter.bw_mbps, p.p2p_write_inter_socket_bw_mbps);
  EXPECT_GT(read_inter.latency, read_intra.latency);  // extra QPI hop
  // The paper's headline asymmetry: inter-socket P2P read is catastrophic.
  EXPECT_LT(read_inter.bw_mbps, 0.05 * p.ib_bandwidth_mbps);
  EXPECT_DOUBLE_EQ(write_intra.bw_mbps / p.ib_bandwidth_mbps, 6396.0 / 6397.0);
}

TEST(Cluster, WireLoopbackVersusNetwork) {
  Cluster c(wilkes_like());
  sim::Path loop = c.wire(0, 0, 0, 0);
  sim::Path net = c.wire(0, 0, 1, 0);
  EXPECT_LT(loop.latency, net.latency);
  EXPECT_EQ(loop.links.size(), 1u);
  EXPECT_EQ(net.links.size(), 2u);
  EXPECT_DOUBLE_EQ(net.bw_mbps, c.params().ib_bandwidth_mbps);
}

TEST(Cluster, CudaCopyPathsShareGpuPcieLink) {
  Cluster c(wilkes_like());
  sim::Path h2d = c.cuda_h2d(0, 0);
  sim::Path gdr = c.gdr_leg(0, 0, 0, P2pDir::kWrite);
  // Both cross the GPU's PCIe slot, so they contend.
  bool shared = false;
  for (auto* a : h2d.links) {
    for (auto* b : gdr.links) shared |= (a == b);
  }
  EXPECT_TRUE(shared);
}

TEST(Cluster, DeviceLocalCopyIsFastest) {
  Cluster c(wilkes_like());
  EXPECT_GT(c.cuda_d2d(0, 0, 0).bw_mbps, c.cuda_d2d(0, 0, 1).bw_mbps);
  EXPECT_GT(c.cuda_d2d(0, 0, 1).latency, c.cuda_d2d(0, 0, 0).latency);
}

TEST(Cluster, PeOutOfRangeGpuHcaAccessorsThrow) {
  Cluster c(wilkes_like());
  EXPECT_THROW(c.node(5), std::out_of_range);
  EXPECT_THROW(c.cuda_h2d(0, 7), std::out_of_range);
}

}  // namespace
}  // namespace gdrshmem::hw
