// True one-sidedness demo (the Fig 10 experiment as a program): PE 0 puts
// into PE 1's GPU while PE 1 is deep in a kernel. With the Enhanced-GDR
// runtime the put completes at hardware speed; with the host pipeline it
// waits for the target to come up for air.
#include <cstdio>

#include "core/ctx.hpp"

using namespace gdrshmem;
using core::Ctx;

namespace {

void demo(core::TransportKind kind) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 1;
  core::RuntimeOptions opts;
  opts.transport = kind;
  core::Runtime rt(cluster, opts);
  rt.run([&](Ctx& ctx) {
    constexpr std::size_t kBytes = 64 * 1024;
    void* dst = ctx.shmalloc(kBytes, core::Domain::kGpu);
    void* src = ctx.cuda_malloc(kBytes);
    if (ctx.my_pe() == 0) {  // warmup
      ctx.putmem(dst, src, kBytes, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem(dst, src, kBytes, 1);
      ctx.quiet();
      std::printf("  [%s] 64 KB put to a busy GPU target: %.1f us\n",
                  core::to_string(kind), (ctx.now() - t0).to_us());
    } else {
      // A 1 ms "kernel": the PE never enters the OpenSHMEM runtime.
      ctx.launch_kernel(1'000'000, 1.0, [] {});
    }
    ctx.barrier_all();
  });
}

}  // namespace

int main() {
  std::printf("how long does a put take while the target computes for 1 ms?\n");
  demo(core::TransportKind::kHostPipeline);
  demo(core::TransportKind::kEnhancedGdr);
  std::printf("the Enhanced-GDR runtime never involves the target PE:\n"
              "the HCA writes straight into its GPU (true one-sided).\n");
  return 0;
}
