// Quickstart: GPU-domain symmetric allocation and one-sided puts around a
// ring — the smallest end-to-end program using the OpenSHMEM 1.4 C API
// on a simulated 4-node GPU cluster.
//
//   $ ./quickstart
//
// Each PE allocates a symmetric buffer on its GPU with the paper's
// shmem_malloc(size, domain) extension, puts a message into its right
// neighbor's GPU memory, flags it, and verifies what it received.
#include <cstdio>
#include <cstring>

#include "core/ctx.hpp"
#include "gdrshmem/shmem.h"

using namespace gdrshmem;
using namespace gdrshmem::capi;

int main() {
  // 4 nodes x 2 PEs, each PE owning one (simulated) Tesla K20 behind a
  // shared FDR InfiniBand fabric with GPUDirect RDMA.
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;

  core::RuntimeOptions opts;
  opts.transport = core::TransportKind::kEnhancedGdr;

  core::Runtime rt(cluster, opts);
  rt.run([](core::Ctx& ctx) {
    Bind bind(ctx);  // enable the shmem_* calls on this PE

    const int me = shmem_my_pe();
    const int np = shmem_n_pes();
    const int right = (me + 1) % np;

    // Symmetric allocation on the GPU domain — the paper's extension.
    char* inbox = static_cast<char*>(shmem_malloc(64, core::Domain::kGpu));
    auto* flag = static_cast<long long*>(
        shmem_calloc(1, sizeof(long long)));

    char message[64];
    std::snprintf(message, sizeof message, "hello from PE %d's GPU", me);

    sim::Time t0 = ctx.now();
    shmem_putmem(inbox, message, sizeof message, right);  // GPU -> remote GPU
    shmem_quiet();                                        // delivered
    long long one = 1;
    shmem_putmem(flag, &one, sizeof one, right);          // then raise the flag
    double put_us = (ctx.now() - t0).to_us();

    shmem_longlong_wait_until(flag, SHMEM_CMP_EQ, 1);
    const int left = (me + np - 1) % np;
    char expected[64];
    std::snprintf(expected, sizeof expected, "hello from PE %d's GPU", left);

    std::printf("PE %d received \"%s\" (%s) — put+quiet took %.2f us\n", me,
                inbox, std::strcmp(inbox, expected) == 0 ? "correct" : "WRONG",
                put_us);
    shmem_barrier_all();
  });
  return 0;
}
