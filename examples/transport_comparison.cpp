// Compares the three runtime designs of Table I on the same workload: a
// GPU-to-remote-GPU put across the full message range — demonstrating why
// GDR-awareness matters (and what "naive" costs the programmer).
#include <cstdio>
#include <vector>

#include "core/ctx.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;
using core::TransportKind;

namespace {

double measure(TransportKind kind, std::size_t bytes) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 1;
  core::RuntimeOptions opts;
  opts.transport = kind;
  core::Runtime rt(cluster, opts);
  double us = 0;
  rt.run([&](Ctx& ctx) {
    auto* dst = static_cast<std::byte*>(ctx.shmalloc(bytes, Domain::kGpu));
    auto* host_stage = static_cast<std::byte*>(
        ctx.shmalloc(bytes, Domain::kHost));  // for the naive design
    void* src = ctx.cuda_malloc(bytes);
    ctx.barrier_all();
    constexpr int kIters = 30;
    auto one_iteration = [&] {
      if (kind == TransportKind::kNaive) {
        // The naive model: the USER stages GPU data through the host and
        // the target must copy it back down — shown here from the source
        // side only (the real pattern also burns the target's time).
        ctx.cuda_memcpy(host_stage, src, bytes);            // D2H
        ctx.putmem(host_stage, host_stage, bytes, 1);       // H2H
        ctx.quiet();
      } else {
        ctx.putmem(dst, src, bytes, 1);  // CUDA-aware: one call
        ctx.quiet();
      }
    };
    if (ctx.my_pe() == 0) {
      one_iteration();  // warmup
      sim::Time t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) one_iteration();
      us = (ctx.now() - t0).to_us() / kIters;
    }
    ctx.barrier_all();
  });
  return us;
}

}  // namespace

int main() {
  std::printf("inter-node GPU->GPU put latency (us) by runtime design\n");
  std::printf("%-8s %-14s %-16s %-14s\n", "size", "naive*", "host-pipeline",
              "enhanced-gdr");
  for (std::size_t bytes : {8u, 1024u, 65536u, 1048576u}) {
    double naive = measure(TransportKind::kNaive, bytes);
    double base = measure(TransportKind::kHostPipeline, bytes);
    double enh = measure(TransportKind::kEnhancedGdr, bytes);
    std::printf("%-8zu %-14.2f %-16.2f %-14.2f\n", bytes, naive, base, enh);
  }
  std::printf("* naive = user-managed staging; source side only, and the\n"
              "  data still has to reach the target GPU somehow.\n");
  return 0;
}
