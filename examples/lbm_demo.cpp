// GPULBM demo: the paper's Section IV application — a multiphase lattice
// Boltzmann evolution with three one-sided GPU halo exchanges per step.
// Runs real lattice math on 8 simulated GPUs, checks mass conservation,
// and compares the redesigned OpenSHMEM version against the MPI-style
// blocking baseline (the comparison behind Fig 12).
#include <cmath>
#include <cstdio>

#include "apps/lbm.hpp"

using namespace gdrshmem;

int main() {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;

  apps::LbmConfig cfg;
  cfg.x = 32;
  cfg.y = 32;
  cfg.z = 64;
  cfg.iterations = 40;
  cfg.functional = true;

  std::printf("GPULBM %zux%zux%zu, %d evolution steps on %d GPUs "
              "(Z-decomposition)\n",
              cfg.x, cfg.y, cfg.z, cfg.iterations,
              cluster.num_nodes * cluster.pes_per_node);
  std::printf("per-step halo traffic per PE: %zu KB in 3 exchanges "
              "(1+1+6 elements)\n\n",
              2 * 8 * cfg.x * cfg.y * sizeof(float) / 1024);

  struct Row {
    const char* name;
    core::TransportKind kind;
    bool blocking;
  };
  for (Row row : {Row{"CUDA-aware MPI-style (host pipeline)",
                      core::TransportKind::kHostPipeline, true},
                  Row{"OpenSHMEM Enhanced-GDR (this paper)",
                      core::TransportKind::kEnhancedGdr, false}}) {
    core::RuntimeOptions opts;
    opts.transport = row.kind;
    opts.gpu_heap_bytes = 64u << 20;
    apps::LbmConfig c = cfg;
    c.blocking_exchange = row.blocking;
    auto res = run_lbm(cluster, opts, c);
    double phase_drift = std::abs(res.phase_mass_final - res.phase_mass_initial);
    double fluid_drift =
        std::abs(res.fluid_mass_final - res.fluid_mass_initial) /
        res.fluid_mass_initial;
    std::printf("%-38s evolution %8.2f ms\n", row.name, res.evolution_ms);
    std::printf("%-38s phase mass %0.4f -> %0.4f (drift %.2e)\n", "",
                res.phase_mass_initial, res.phase_mass_final, phase_drift);
    std::printf("%-38s fluid mass conserved to %.2e relative\n\n", "",
                fluid_drift);
  }
  return 0;
}
