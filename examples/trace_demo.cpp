// Observability demo: run a fault-injected workload with the tracer on and
// write both machine-readable artifacts next to the binary:
//
//   trace.json   Chrome trace-event format — open in chrome://tracing or
//                https://ui.perfetto.dev (one track per PE; ops are slices,
//                faults/recovery are instants)
//   report.json  runtime report: protocol table + the full metrics registry
//                (counters, gauges, log2 histograms)
//
//   $ ./trace_demo
//
// The fault plan and tracing can also come from the environment
// (GDRSHMEM_FAULTS / GDRSHMEM_TRACE / GDRSHMEM_TRACE_CAP); the defaults
// below inject wire errors and a proxy crash so the trace has something
// interesting to show.
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/ctx.hpp"
#include "core/report.hpp"
#include "core/trace.hpp"

using namespace gdrshmem;

int main() {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;

  core::RuntimeOptions opts = core::RuntimeOptions::from_env();
  opts.transport = core::TransportKind::kEnhancedGdr;
  opts.trace = true;  // GDRSHMEM_TRACE=1
  if (!opts.faults.enabled()) {
    // A busy plan: 0.2% wire errors plus a proxy crash mid-run.
    opts.faults = sim::FaultPlan::parse("seed=11,wire_error_rate=2e-3,crash=1@300");
  }

  core::Runtime rt(cluster, opts);
  rt.run([](core::Ctx& ctx) {
    void* gpu = ctx.shmalloc(1u << 20, core::Domain::kGpu);
    void* host = ctx.shmalloc(1u << 16);
    void* local = ctx.cuda_malloc(1u << 20);
    std::vector<std::byte> hbuf(1u << 16);
    const int peer = (ctx.my_pe() + 1) % ctx.n_pes();
    for (int iter = 0; iter < 8; ++iter) {
      ctx.putmem(gpu, local, 8, peer);              // direct GDR
      ctx.putmem(gpu, local, 1u << 20, peer);       // pipeline / proxy
      ctx.getmem(local, gpu, 64u << 10, peer);      // proxy get
      ctx.putmem(host, hbuf.data(), 4096, peer);    // host path
      ctx.quiet();
    }
    auto* ctr = static_cast<std::int64_t*>(ctx.shmalloc(8));
    ctx.atomic_fetch_add(ctr, 1, peer);
    ctx.barrier_all();
  });

  std::ofstream("trace.json") << rt.tracer().to_chrome_json();
  std::ofstream("report.json") << core::format_report_json(rt);
  std::printf("%s\nwrote trace.json (%zu events, %zu dropped) and report.json\n",
              core::format_report(rt).c_str(), rt.tracer().size(),
              rt.tracer().dropped());
  return 0;
}
