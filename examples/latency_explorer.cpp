// Interactive experiment driver: sweep any configuration from the command
// line and optionally dump an operation trace as CSV.
//
//   latency_explorer [transport] [scope] [config] [op] [--trace]
//     transport: enhanced | baseline | naive       (default enhanced)
//     scope:     intra | inter                     (default inter)
//     config:    hh | hd | dh | dd                 (default dd)
//     op:        put | get                         (default put)
//
//   $ ./latency_explorer baseline inter dd put
//   $ ./latency_explorer enhanced intra hd get --trace > trace.csv
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/ctx.hpp"
#include "core/report.hpp"
#include "core/trace.hpp"
#include "omb/omb.hpp"

using namespace gdrshmem;

int main(int argc, char** argv) {
  omb::LatencyConfig cfg;
  cfg.sizes = omb::small_message_sizes();
  for (std::size_t s : omb::large_message_sizes()) cfg.sizes.push_back(s);
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "enhanced") cfg.transport = core::TransportKind::kEnhancedGdr;
    else if (a == "baseline") cfg.transport = core::TransportKind::kHostPipeline;
    else if (a == "naive") cfg.transport = core::TransportKind::kNaive;
    else if (a == "intra") cfg.intra_node = true;
    else if (a == "inter") cfg.intra_node = false;
    else if (a == "hh") { cfg.local = omb::Loc::kHost; cfg.remote = core::Domain::kHost; }
    else if (a == "hd") { cfg.local = omb::Loc::kHost; cfg.remote = core::Domain::kGpu; }
    else if (a == "dh") { cfg.local = omb::Loc::kDevice; cfg.remote = core::Domain::kHost; }
    else if (a == "dd") { cfg.local = omb::Loc::kDevice; cfg.remote = core::Domain::kGpu; }
    else if (a == "put") cfg.is_put = true;
    else if (a == "get") cfg.is_put = false;
    else if (a == "--trace") trace = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [enhanced|baseline|naive] [intra|inter] "
                   "[hh|hd|dh|dd] [put|get] [--trace]\n",
                   argv[0]);
      return 2;
    }
  }

  std::fprintf(stderr, "# %s, %s (%s)\n", config_label(cfg).c_str(),
               core::to_string(cfg.transport), trace ? "tracing" : "timing");
  try {
    if (!trace) {
      auto pts = omb::run_latency(cfg);
      std::printf("%-10s %s\n", "bytes", "latency_us");
      for (const auto& p : pts) std::printf("%-10zu %.3f\n", p.bytes, p.latency_us);
      return 0;
    }
    // Trace mode: run one op per size with the tracer on, emit CSV.
    // Options seed from the environment, so e.g.
    //   GDRSHMEM_FAULTS='seed=7,wire_error_rate=1e-3' ./latency_explorer ... --trace
    // shows retransmit/replay events in the CSV and counters in the report.
    core::RuntimeOptions opts = core::RuntimeOptions::from_env();
    opts.transport = cfg.transport;
    opts.host_heap_bytes = opts.gpu_heap_bytes = 16u << 20;
    hw::ClusterConfig cluster;
    cluster.num_nodes = 2;
    cluster.pes_per_node = 2;
    core::Runtime rt(cluster, opts);
    rt.tracer().enable();
    const int target = cfg.intra_node ? 1 : 2;
    rt.run([&](core::Ctx& ctx) {
      auto* sym = static_cast<std::byte*>(ctx.shmalloc(8u << 20, cfg.remote));
      std::vector<std::byte> host_local(8u << 20);
      std::byte* local = host_local.data();
      if (cfg.local == omb::Loc::kDevice) {
        local = static_cast<std::byte*>(ctx.cuda_malloc(8u << 20));
      }
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        for (std::size_t bytes : cfg.sizes) {
          if (cfg.is_put) {
            ctx.putmem(sym, local, bytes, target);
            ctx.quiet();
          } else {
            ctx.getmem(local, sym, bytes, target);
          }
        }
      }
      ctx.barrier_all();
    });
    std::cout << rt.tracer().to_csv();
    core::print_report(rt, std::cerr);
  } catch (const core::UnsupportedError& e) {
    std::fprintf(stderr, "unsupported configuration: %s\n", e.what());
    return 1;
  }
  return 0;
}
