// Stencil2D demo: runs the SHOC-style 9-point stencil (Section V-C) on a
// simulated 8-GPU cluster with real math, verifies the distributed result
// against the serial reference, and compares both runtime designs.
#include <cmath>
#include <cstdio>

#include "apps/stencil2d.hpp"

using namespace gdrshmem;

int main() {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;

  apps::Stencil2DConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.px = 4;
  cfg.py = 2;
  cfg.iterations = 50;
  cfg.functional = true;

  double reference = apps::stencil2d_reference_checksum(cfg);
  std::printf("Stencil2D %zux%zu, %d iterations on %d GPUs (grid %dx%d)\n",
              cfg.nx, cfg.ny, cfg.iterations,
              cluster.num_nodes * cluster.pes_per_node, cfg.px, cfg.py);
  std::printf("serial reference checksum: %.10g\n\n", reference);

  for (auto kind : {core::TransportKind::kHostPipeline,
                    core::TransportKind::kEnhancedGdr}) {
    core::RuntimeOptions opts;
    opts.transport = kind;
    opts.gpu_heap_bytes = 32u << 20;
    auto res = run_stencil2d(cluster, opts, cfg);
    double rel_err = std::abs(res.checksum - reference) /
                     std::max(1.0, std::abs(reference));
    std::printf("%-16s exec %8.2f ms   checksum %.10g (rel err %.1e, %s)\n",
                core::to_string(kind), res.exec_time_ms, res.checksum, rel_err,
                rel_err < 1e-9 ? "matches" : "MISMATCH");
  }
  return 0;
}
