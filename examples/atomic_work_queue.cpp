// Distributed dynamic work-stealing counter built on IB hardware atomics
// (Section III-D): PEs grab work items with fetch-and-add on a symmetric
// counter living in PE 0's *GPU memory* — the GDR-enabled atomic path —
// and a lock built from compare-and-swap protects a shared tally.
#include <cstdio>

#include "core/ctx.hpp"
#include "gdrshmem/shmem.h"

using namespace gdrshmem;
using namespace gdrshmem::capi;

int main() {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;
  core::RuntimeOptions opts;
  core::Runtime rt(cluster, opts);

  constexpr long long kItems = 200;
  rt.run([](core::Ctx& ctx) {
    Bind bind(ctx);
    // Work counter on PE 0's GPU; results tally + lock on PE 0's host heap.
    auto* next_item = static_cast<long long*>(
        shmalloc(sizeof(long long), core::Domain::kGpu));
    auto* done_count = static_cast<long long*>(shmalloc(sizeof(long long)));
    auto* lock = static_cast<long long*>(shmalloc(sizeof(long long)));
    *next_item = 0;
    *done_count = 0;
    *lock = 0;
    shmem_barrier_all();

    int grabbed = 0;
    while (true) {
      long long item = shmem_longlong_fadd(next_item, 1, 0);  // GDR atomic
      if (item >= kItems) break;
      // "Process" the item: uneven cost so fast PEs steal more work.
      ctx.compute(sim::Duration::us(2.0 + (item % 7)));
      ++grabbed;
      // Critical section via cswap spinlock (paper: locks from atomics).
      while (shmem_longlong_cswap(lock, 0, 1 + shmem_my_pe(), 0) != 0) {
        ctx.compute(sim::Duration::us(1));
      }
      long long tally = 0;
      shmem_getmem(&tally, done_count, sizeof tally, 0);
      ++tally;
      shmem_putmem(done_count, &tally, sizeof tally, 0);
      shmem_quiet();
      shmem_longlong_cswap(lock, 1 + shmem_my_pe(), 0, 0);  // unlock
    }
    shmem_barrier_all();
    std::printf("PE %d processed %d items\n", shmem_my_pe(), grabbed);
    if (shmem_my_pe() == 0) {
      std::printf("total tallied: %lld / %lld (%s) in %.1f us virtual time\n",
                  *done_count, kItems,
                  *done_count == kItems ? "all accounted" : "LOST UPDATES",
                  ctx.now().to_us());
    }
  });
  return 0;
}
