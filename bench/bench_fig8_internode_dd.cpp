// Figure 8: inter-node Device-to-Device (D-D) put/get latency, host-based
// pipelining vs Direct GDR / pipeline-GDR-write / proxy designs.
#include "latency_figure.hpp"

int main(int argc, char** argv) {
  gdrshmem::bench::latency_figure("fig8", /*intra=*/false,
                                  gdrshmem::omb::Loc::kDevice,
                                  gdrshmem::core::Domain::kGpu,
                                  /*include_baseline=*/true);
  return gdrshmem::bench::report_and_run(argc, argv, "fig8");
}
