// Figure 10: communication/computation overlap during a put while the
// target busy-computes — medium (8 KB) and large (1 MB) messages, host
// pipeline vs the proposed truly one-sided design.
#include <cstdio>

#include "common.hpp"
#include "omb/omb.hpp"

using namespace gdrshmem;

namespace {

void panel(const char* name, std::size_t bytes,
           const std::vector<double>& compute_probes) {
  std::printf("== fig10 %s: put comm time (us) vs target compute (us), %s ==\n",
              name, bench::size_label(bytes).c_str());
  std::printf("%-14s %-24s %-24s\n", "target busy", "host-pipeline comm",
              "enhanced-gdr comm");
  omb::OverlapConfig cfg;
  cfg.bytes = bytes;
  cfg.target_compute_us = compute_probes;
  cfg.iters = 10;
  cfg.transport = core::TransportKind::kEnhancedGdr;
  auto enhanced = omb::run_overlap(cfg);
  cfg.transport = core::TransportKind::kHostPipeline;
  auto baseline = omb::run_overlap(cfg);
  for (std::size_t i = 0; i < enhanced.size(); ++i) {
    std::printf("%-14.0f %-10.2f (%3.0f%% ov) %-10.2f (%3.0f%% ov)\n",
                enhanced[i].target_compute_us, baseline[i].comm_time_us,
                baseline[i].overlap_pct, enhanced[i].comm_time_us,
                enhanced[i].overlap_pct);
    std::string tag = std::string("fig10/") + name + "/busy" +
                      std::to_string(static_cast<int>(enhanced[i].target_compute_us));
    bench::add_point(tag + "/enhanced", enhanced[i].comm_time_us);
    bench::add_point(tag + "/baseline", baseline[i].comm_time_us);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  panel("medium", 8 * 1024, {10, 25, 50, 100, 200, 400});
  panel("large", 1u << 20, {100, 250, 500, 1000, 2000, 4000});
  return bench::report_and_run(argc, argv, "fig10");
}
