// Extension bench: small-message rate (million messages/s) for GPU-GPU
// puts — the metric that matters for the irregular PGAS workloads the
// paper's introduction motivates (graph algorithms, dynamic load balance).
#include <cstdio>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;

namespace {

double message_rate_mps(core::TransportKind kind, std::size_t bytes, int window) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 1;
  core::RuntimeOptions opts;
  opts.transport = kind;
  core::Runtime rt(cluster, opts);
  double rate = 0;
  rt.run([&](Ctx& ctx) {
    constexpr int kIters = 20;
    auto* sym = static_cast<std::byte*>(
        ctx.shmalloc(bytes * static_cast<std::size_t>(window), Domain::kGpu));
    auto* src = static_cast<std::byte*>(ctx.cuda_malloc(bytes));
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      for (int w = 0; w < window; ++w) {  // warmup window
        ctx.putmem_nbi(sym + w * bytes, src, bytes, 1);
      }
      ctx.quiet();
      sim::Time t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) {
        for (int w = 0; w < window; ++w) {
          ctx.putmem_nbi(sym + w * bytes, src, bytes, 1);
        }
        ctx.quiet();
      }
      double us = (ctx.now() - t0).to_us();
      rate = (static_cast<double>(window) * kIters) / us;  // msgs per us
    }
    ctx.barrier_all();
  });
  return rate;  // == million msgs/s
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== message rate: D->D(remote GPU) nbi puts, window=64 "
              "(Mmsg/s) ==\n");
  std::printf("%-8s %-16s %-16s\n", "size", "host-pipeline", "enhanced-gdr");
  for (std::size_t bytes : {8u, 64u, 512u, 4096u}) {
    double base = message_rate_mps(core::TransportKind::kHostPipeline, bytes, 64);
    double enh = message_rate_mps(core::TransportKind::kEnhancedGdr, bytes, 64);
    std::printf("%-8zu %-16.3f %-16.3f\n", bytes, base, enh);
    std::string tag = "msgrate/" + std::to_string(bytes) + "B";
    bench::add_point(tag + "/baseline_mmps", base);
    bench::add_point(tag + "/enhanced_mmps", enh);
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "message_rate");
}
