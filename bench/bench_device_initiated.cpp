// Device-initiated communication: what keeping the kernel resident buys.
//
// Panel 1 — put+signal ping-pong between two GPUs on different nodes. The
// host-driven variant must terminate a kernel, issue the put from the host,
// and relaunch every round (the kernel-split pattern the paper's Section V
// applications are forced into); the device-initiated variants issue the
// same put+signal from inside one resident kernel through the GPU-IB
// doorbell or the reverse-offload proxy ring.
//
// Panel 2 — Stencil2D (SHOC) with in-kernel halo exchange: one resident
// kernel runs all iterations, replacing the 3-launch + 2-barrier iteration
// structure of the host-driven version with put-with-signal pairs.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/stencil2d.hpp"
#include "common.hpp"
#include "core/ctx.hpp"
#include "core/device_api.hpp"

using namespace gdrshmem;

namespace {

constexpr int kRounds = 50;

core::RuntimeOptions make_opts(core::DeviceBackendKind kind) {
  core::RuntimeOptions opts;
  opts.transport = core::TransportKind::kEnhancedGdr;
  opts.gpu_heap_bytes = 64u << 20;
  opts.host_heap_bytes = 4u << 20;
  opts.device_backend = kind;
  return opts;
}

/// Host-driven kernel-split ping-pong: each round ends the "kernel", puts
/// from the host, and relaunches — paying launch + host software overhead
/// per round.
double pingpong_host(std::size_t size) {
  hw::ClusterConfig cluster;
  cluster.pes_per_node = 1;
  cluster.num_nodes = 2;
  auto opts = make_opts(core::DeviceBackendKind::kGpuIb);
  double us = 0;
  core::Runtime rt(cluster, opts);
  rt.run([&](core::Ctx& ctx) {
    const int me = ctx.my_pe();
    const int peer = 1 - me;
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(size, core::Domain::kGpu));
    auto* sig = static_cast<std::uint64_t*>(
        ctx.shmalloc(sizeof(std::uint64_t), core::Domain::kGpu));
    *sig = 0;
    ctx.barrier_all();
    sim::Time t0 = ctx.now();
    for (int r = 0; r < kRounds; ++r) {
      const auto tick = static_cast<std::uint64_t>(r) + 1;
      if (me == 1) ctx.wait_until(sig, core::Cmp::kGe, tick);
      // The compute the application would do on the payload, split out of
      // the communication into its own launch.
      ctx.launch_kernel(size / 8, 1.0, [] {});
      ctx.putmem(buf, buf, size, peer);
      ctx.putmem(sig, &tick, sizeof(tick), peer);
      if (me == 0) ctx.wait_until(sig, core::Cmp::kGe, tick);
    }
    if (me == 0) us = (ctx.now() - t0).to_us() / kRounds;
    ctx.barrier_all();
  });
  return us;
}

/// Device-initiated ping-pong: one resident kernel per PE runs every round.
double pingpong_device(std::size_t size, core::DeviceBackendKind kind) {
  hw::ClusterConfig cluster;
  cluster.pes_per_node = 1;
  cluster.num_nodes = 2;
  auto opts = make_opts(kind);
  double us = 0;
  core::Runtime rt(cluster, opts);
  rt.run([&](core::Ctx& ctx) {
    const int me = ctx.my_pe();
    const int peer = 1 - me;
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(size, core::Domain::kGpu));
    auto* sig = static_cast<std::uint64_t*>(
        ctx.shmalloc(sizeof(std::uint64_t), core::Domain::kGpu));
    *sig = 0;
    ctx.barrier_all();
    sim::Time t0 = ctx.now();
    ctx.launch_kernel_device(1.0, core::DeviceScope::kThread,
                             [&](core::DeviceCtx& d) {
      for (int r = 0; r < kRounds; ++r) {
        const auto tick = static_cast<std::uint64_t>(r) + 1;
        if (me == 1) d.signal_wait_until(sig, core::Cmp::kGe, tick);
        d.compute(size / 8);
        d.put_signal(buf, buf, size, sig, tick, peer);
        if (me == 0) d.signal_wait_until(sig, core::Cmp::kGe, tick);
      }
      d.quiet();
    });
    if (me == 0) us = (ctx.now() - t0).to_us() / kRounds;
    ctx.barrier_all();
  });
  return us;
}

void panel_pingpong() {
  std::printf("== device-initiated: put+signal ping-pong, 2 GPUs / 2 nodes "
              "(us per round, %d rounds) ==\n", kRounds);
  std::printf("%-8s %-14s %-12s %-12s %s\n", "size", "host-driven", "gpu-ib",
              "reverse", "best speedup");
  for (std::size_t size : {std::size_t{8}, std::size_t{4} << 10,
                           std::size_t{64} << 10, std::size_t{1} << 20}) {
    double host = pingpong_host(size);
    double gpuib = pingpong_device(size, core::DeviceBackendKind::kGpuIb);
    double rev = pingpong_device(size, core::DeviceBackendKind::kReverseOffload);
    double best = gpuib < rev ? gpuib : rev;
    std::printf("%-8s %-14.2f %-12.2f %-12.2f %.2fx\n",
                bench::size_label(size).c_str(), host, gpuib, rev, host / best);
    std::string tag = "device_initiated/pingpong/" + bench::size_label(size);
    bench::add_point(tag + "/host", host);
    bench::add_point(tag + "/gpu-ib", gpuib);
    bench::add_point(tag + "/reverse", rev);
  }
  std::printf("\n");
}

struct GridPick {
  int gpus, px, py;
};

double stencil_once(std::size_t n, const GridPick& g,
                    core::DeviceBackendKind kind, bool device) {
  hw::ClusterConfig cluster;
  cluster.pes_per_node = 2;
  cluster.num_nodes = g.gpus / 2;
  auto opts = make_opts(kind);
  apps::Stencil2DConfig cfg;
  cfg.nx = cfg.ny = n;
  cfg.px = g.px;
  cfg.py = g.py;
  cfg.iterations = 100;
  cfg.functional = false;  // cost-only kernels at this scale
  cfg.per_cell_ns = 1.0;
  auto res = device ? apps::run_stencil2d_device(cluster, opts, cfg)
                    : apps::run_stencil2d(cluster, opts, cfg);
  return res.exec_time_ms;
}

void panel_stencil() {
  std::printf("== device-initiated: Stencil2D 1Kx1K, in-kernel halo exchange "
              "(ms, 100 iterations) ==\n");
  std::printf("%-8s %-14s %-12s %-12s %s\n", "GPUs", "host-driven", "gpu-ib",
              "reverse", "gpu-ib speedup");
  for (const GridPick& g : {GridPick{4, 2, 2}, GridPick{16, 4, 4}}) {
    double host = stencil_once(1024, g, core::DeviceBackendKind::kGpuIb, false);
    double gpuib = stencil_once(1024, g, core::DeviceBackendKind::kGpuIb, true);
    double rev =
        stencil_once(1024, g, core::DeviceBackendKind::kReverseOffload, true);
    std::printf("%-8d %-14.2f %-12.2f %-12.2f %.2fx\n", g.gpus, host, gpuib,
                rev, host / gpuib);
    std::string tag =
        "device_initiated/stencil2d/1024sq/gpus" + std::to_string(g.gpus);
    bench::add_point(tag + "/host", host * 1000.0);
    bench::add_point(tag + "/gpu-ib", gpuib * 1000.0);
    bench::add_point(tag + "/reverse", rev * 1000.0);
    bench::add_metric("stencil_gpuib_speedup_gpus" + std::to_string(g.gpus),
                      host / gpuib);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  panel_pingpong();
  panel_stencil();
  return bench::report_and_run(argc, argv, "device_initiated");
}
