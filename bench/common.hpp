// Shared plumbing for the per-table/per-figure benchmark binaries.
//
// Each binary computes its experiment data once (virtual-time simulation),
// prints the paper-style table/series, and registers one google-benchmark
// entry per data point that reports the cached virtual time as manual time —
// so `./bench_figX` emits both the paper-shaped table and standard
// benchmark output without re-running the simulations.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace gdrshmem::bench {

struct Point {
  std::string name;      // benchmark entry name, e.g. "fig6/put/enhanced/4B"
  double virtual_us = 0; // measured virtual time for the op/run
};

inline std::vector<Point>& points() {
  static std::vector<Point> pts;
  return pts;
}

inline void add_point(std::string name, double virtual_us) {
  points().push_back(Point{std::move(name), virtual_us});
}

/// Register every cached point as a manual-time benchmark and run them.
inline int report_and_run(int argc, char** argv) {
  for (const Point& p : points()) {
    benchmark::RegisterBenchmark(p.name.c_str(), [p](benchmark::State& state) {
      for (auto _ : state) {
        state.SetIterationTime(p.virtual_us * 1e-6);
      }
      state.counters["virtual_us"] = p.virtual_us;
    })->UseManualTime()->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Pretty size label (paper figures use powers of two).
inline std::string size_label(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%zuM", bytes >> 20);
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof buf, "%zuB", bytes);
  }
  return buf;
}

}  // namespace gdrshmem::bench
