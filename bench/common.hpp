// Shared plumbing for the per-table/per-figure benchmark binaries.
//
// Each binary computes its experiment data once (virtual-time simulation),
// prints the paper-style table/series, and registers one google-benchmark
// entry per data point that reports the cached virtual time as manual time —
// so `./bench_figX` emits both the paper-shaped table and standard
// benchmark output without re-running the simulations.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace gdrshmem::bench {

struct Point {
  std::string name;      // benchmark entry name, e.g. "fig6/put/enhanced/4B"
  double virtual_us = 0; // measured virtual time for the op/run
};

inline std::vector<Point>& points() {
  static std::vector<Point> pts;
  return pts;
}

inline void add_point(std::string name, double virtual_us) {
  points().push_back(Point{std::move(name), virtual_us});
}

/// Register every cached point as a manual-time benchmark and run them.
inline int report_and_run(int argc, char** argv) {
  for (const Point& p : points()) {
    benchmark::RegisterBenchmark(p.name.c_str(), [p](benchmark::State& state) {
      for (auto _ : state) {
        state.SetIterationTime(p.virtual_us * 1e-6);
      }
      state.counters["virtual_us"] = p.virtual_us;
    })->UseManualTime()->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// ---------------------------------------------------------------------------
// Wall-clock reporting.
//
// The paper-figure benches report *virtual* time (what the simulated
// hardware would take); engine-efficiency benches report *wall* time (what
// the simulation itself costs to run). Wall points carry an event count so
// throughput (events/sec) is comparable across engine changes, and are
// persisted as BENCH_<tag>.json so future PRs can track regressions.

struct WallPoint {
  std::string name;       // e.g. "engine/msgrate/fibers/64pe"
  double wall_seconds = 0;
  std::uint64_t events = 0;  // simulation events executed during the run

  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
};

inline std::vector<WallPoint>& wall_points() {
  static std::vector<WallPoint> pts;
  return pts;
}

inline void add_wall_point(std::string name, double wall_seconds,
                           std::uint64_t events) {
  wall_points().push_back(WallPoint{std::move(name), wall_seconds, events});
}

/// Monotonic wall-clock stamp for measuring simulation cost.
inline double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Write all registered wall points (plus caller-provided scalar metrics) to
/// `BENCH_<tag>.json` in the working directory.
inline void write_wall_json(
    const std::string& tag,
    const std::vector<std::pair<std::string, double>>& metrics = {}) {
  std::ofstream os("BENCH_" + tag + ".json");
  os << "{\n  \"bench\": \"" << tag << "\",\n  \"points\": [\n";
  const auto& pts = wall_points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                  "\"events\": %llu, \"events_per_sec\": %.1f}%s\n",
                  pts[i].name.c_str(), pts[i].wall_seconds,
                  static_cast<unsigned long long>(pts[i].events),
                  pts[i].events_per_sec(), i + 1 < pts.size() ? "," : "");
    os << buf;
  }
  os << "  ]";
  for (const auto& [k, v] : metrics) {
    char buf[128];
    std::snprintf(buf, sizeof buf, ",\n  \"%s\": %.4f", k.c_str(), v);
    os << buf;
  }
  os << "\n}\n";
}

/// Register every wall point as a manual-time benchmark entry (so engine
/// benches appear in standard google-benchmark output too).
inline void register_wall_benchmarks() {
  for (const WallPoint& p : wall_points()) {
    benchmark::RegisterBenchmark(p.name.c_str(), [p](benchmark::State& state) {
      for (auto _ : state) {
        state.SetIterationTime(p.wall_seconds);
      }
      state.counters["events_per_sec"] = p.events_per_sec();
      state.counters["events"] = static_cast<double>(p.events);
    })->UseManualTime()->Iterations(1);
  }
}

/// Pretty size label (paper figures use powers of two).
inline std::string size_label(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%zuM", bytes >> 20);
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof buf, "%zuB", bytes);
  }
  return buf;
}

}  // namespace gdrshmem::bench
