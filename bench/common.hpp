// Shared plumbing for the per-table/per-figure benchmark binaries.
//
// Each binary computes its experiment data once (virtual-time simulation),
// prints the paper-style table/series, and registers one google-benchmark
// entry per data point that reports the cached virtual time as manual time —
// so `./bench_figX` emits both the paper-shaped table and standard
// benchmark output without re-running the simulations.
//
// Every bench also writes BENCH_<tag>.json (uniform schema, rendered by the
// same core::json::Writer as the runtime's JSON report) — override the
// destination with `--out <path>`. scripts/check_perf.sh compares the
// deterministic virtual_us points in these files against the committed
// baselines in bench/baselines/.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/json.hpp"

namespace gdrshmem::bench {

struct Point {
  std::string name;      // benchmark entry name, e.g. "fig6/put/enhanced/4B"
  double virtual_us = 0; // measured virtual time for the op/run
};

inline std::vector<Point>& points() {
  static std::vector<Point> pts;
  return pts;
}

inline void add_point(std::string name, double virtual_us) {
  points().push_back(Point{std::move(name), virtual_us});
}

// ---------------------------------------------------------------------------
// Wall-clock reporting.
//
// The paper-figure benches report *virtual* time (what the simulated
// hardware would take); engine-efficiency benches report *wall* time (what
// the simulation itself costs to run). Wall points carry an event count so
// throughput (events/sec) is comparable across engine changes. The perf
// gate compares virtual_us points tightly (deterministic), wall-point
// `events` exactly (also deterministic), and events_per_sec only against a
// loose machine-variance floor (PERF_WALL_FRAC).

struct WallPoint {
  std::string name;       // e.g. "engine/msgrate/fibers/64pe"
  double wall_seconds = 0;
  std::uint64_t events = 0;  // simulation events executed during the run

  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
};

inline std::vector<WallPoint>& wall_points() {
  static std::vector<WallPoint> pts;
  return pts;
}

inline void add_wall_point(std::string name, double wall_seconds,
                           std::uint64_t events) {
  wall_points().push_back(WallPoint{std::move(name), wall_seconds, events});
}

/// Scalar headline metrics (speedups, configuration), landed in the JSON
/// under "metrics".
inline std::vector<std::pair<std::string, double>>& scalar_metrics() {
  static std::vector<std::pair<std::string, double>> ms;
  return ms;
}

inline void add_metric(std::string name, double v) {
  scalar_metrics().emplace_back(std::move(name), v);
}

/// Monotonic wall-clock stamp for measuring simulation cost.
inline double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// JSON output + google-benchmark driver.

/// Strip `--out <path>` / `--out=<path>` from argv (google-benchmark rejects
/// flags it does not know). Returns the path, or "" when absent.
inline std::string take_out_flag(int& argc, char** argv) {
  std::string out;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    std::string_view arg(argv[r]);
    if (arg == "--out" && r + 1 < argc) {
      out = argv[++r];
    } else if (arg.rfind("--out=", 0) == 0) {
      out = std::string(arg.substr(6));
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return out;
}

/// Write every registered point to `path` (default: BENCH_<tag>.json in the
/// working directory) in the uniform schema the perf gate consumes.
inline void write_bench_json(const std::string& tag, std::string path = "") {
  if (path.empty()) path = "BENCH_" + tag + ".json";
  core::json::Writer w;
  w.begin_object();
  w.field("schema", 1);
  w.field("bench", tag);
  w.key("points").begin_array();
  for (const Point& p : points()) {
    w.begin_object();
    w.field("name", p.name);
    w.field_fixed("virtual_us", p.virtual_us, 3);
    w.end_object();
  }
  w.end_array();
  w.key("wall_points").begin_array();
  for (const WallPoint& p : wall_points()) {
    w.begin_object();
    w.field("name", p.name);
    w.field_fixed("wall_seconds", p.wall_seconds, 6);
    w.field("events", p.events);
    w.field_fixed("events_per_sec", p.events_per_sec(), 1);
    w.end_object();
  }
  w.end_array();
  w.key("metrics").begin_object();
  for (const auto& [k, v] : scalar_metrics()) w.field(k, v);
  w.end_object();
  w.end_object();
  std::ofstream os(path);
  os << w.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Register every wall point as a manual-time benchmark entry (so engine
/// benches appear in standard google-benchmark output too).
inline void register_wall_benchmarks() {
  for (const WallPoint& p : wall_points()) {
    benchmark::RegisterBenchmark(p.name.c_str(), [p](benchmark::State& state) {
      for (auto _ : state) {
        state.SetIterationTime(p.wall_seconds);
      }
      state.counters["events_per_sec"] = p.events_per_sec();
      state.counters["events"] = static_cast<double>(p.events);
    })->UseManualTime()->Iterations(1);
  }
}

/// Register every cached point as a manual-time benchmark, run them, and
/// persist BENCH_<tag>.json (or the --out destination).
inline int report_and_run(int argc, char** argv, const std::string& tag) {
  std::string out = take_out_flag(argc, argv);
  for (const Point& p : points()) {
    benchmark::RegisterBenchmark(p.name.c_str(), [p](benchmark::State& state) {
      for (auto _ : state) {
        state.SetIterationTime(p.virtual_us * 1e-6);
      }
      state.counters["virtual_us"] = p.virtual_us;
    })->UseManualTime()->Iterations(1);
  }
  register_wall_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json(tag, out);
  return 0;
}

/// Pretty size label (paper figures use powers of two).
inline std::string size_label(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%zuM", bytes >> 20);
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof buf, "%zuB", bytes);
  }
  return buf;
}

}  // namespace gdrshmem::bench
