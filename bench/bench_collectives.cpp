// Collectives-engine bench: virtual-time latency of every (kind, algorithm)
// pair across message sizes and team spans on a 4x2 cluster, plus the ring
// allreduce scaling headline — time grows O(n) in the message size and stays
// nearly flat in the PE count (2(np-1)/np factor), unlike the old
// gather-to-root reduction.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/collectives.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::CollAlgo;
using core::CollKind;
using core::Ctx;
using core::Team;

namespace {

constexpr int kWorld = 8;  // 4 nodes x 2 PEs

/// Default workspace: 2 * coll_chunk (the engine streams larger payloads).
constexpr std::size_t kWs = 128u << 10;

bool fits(CollKind kind, CollAlgo algo, std::size_t nbytes, int np) {
  switch (algo) {
    case CollAlgo::kRecDbl:
      return nbytes <= kWs;
    case CollAlgo::kBruck:
      return nbytes * static_cast<std::size_t>(np) <= kWs;
    case CollAlgo::kLinear:
      return kind != CollKind::kAllreduce ||
             nbytes * static_cast<std::size_t>(np) <= kWs;
    default:
      return true;
  }
}

/// Virtual-time latency (us per operation) of one collective on the first
/// `span` PEs of the world.
double measure(CollKind kind, CollAlgo algo, std::size_t nbytes, int span) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;
  core::RuntimeOptions opts;
  opts.host_heap_bytes = 64u << 20;
  opts.tuning.coll_force[static_cast<std::size_t>(kind)] = algo;
  core::Runtime rt(cluster, opts);
  constexpr int kIters = 5;
  const std::size_t wide = nbytes * static_cast<std::size_t>(span);
  double us = 0;
  rt.run([&](Ctx& ctx) {
    // Both buffers sized for the widest layout any kind needs (fcollect and
    // alltoall carry one block per member).
    auto* src = static_cast<std::byte*>(ctx.shmalloc(wide > 0 ? wide : 8));
    auto* dst = static_cast<std::byte*>(ctx.shmalloc(wide > 0 ? wide : 8));
    Team* split = span < ctx.n_pes()
                      ? ctx.team_split_strided(ctx.team_world(), 0, 1, span)
                      : nullptr;
    Team* t = span < ctx.n_pes() ? split : &ctx.team_world();
    if (t != nullptr) {
      ctx.team_sync(*t);
      sim::Time t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) {
        switch (kind) {
          case CollKind::kBarrier:
            ctx.team_sync(*t);
            break;
          case CollKind::kBroadcast:
            ctx.team_broadcast(*t, dst, src, nbytes, 0);
            break;
          case CollKind::kAllreduce:
            ctx.team_reduce(*t, reinterpret_cast<std::int32_t*>(dst),
                            reinterpret_cast<const std::int32_t*>(src),
                            nbytes / 4, core::ReduceOp::kSum);
            break;
          case CollKind::kFcollect:
            ctx.team_fcollect(*t, dst, src, nbytes);
            break;
          default:
            ctx.team_alltoall(*t, dst, src, nbytes);
            break;
        }
      }
      if (ctx.my_pe() == 0) us = (ctx.now() - t0).to_us() / kIters;
      if (split != nullptr) ctx.team_destroy(split);
    }
    ctx.barrier_all();
  });
  return us;
}

struct Series {
  CollKind kind;
  std::vector<CollAlgo> algos;
};

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::size_t> sizes = {8, 4u << 10, 256u << 10, 1u << 20};
  const std::vector<Series> series = {
      {CollKind::kBroadcast,
       {CollAlgo::kLinear, CollAlgo::kBinomial, CollAlgo::kRing}},
      {CollKind::kAllreduce,
       {CollAlgo::kLinear, CollAlgo::kRecDbl, CollAlgo::kRing}},
      {CollKind::kFcollect,
       {CollAlgo::kLinear, CollAlgo::kBruck, CollAlgo::kRing}},
      {CollKind::kAlltoall, {CollAlgo::kLinear, CollAlgo::kPairwise}},
  };

  std::printf("== Collectives: virtual-time latency, %d PEs (us) ==\n", kWorld);
  double barrier_us = measure(CollKind::kBarrier, CollAlgo::kDissemination, 0,
                              kWorld);
  std::printf("%-30s %10.2f\n", "barrier/dissemination", barrier_us);
  bench::add_point("coll/barrier/dissemination/8pe", barrier_us);

  for (const Series& s : series) {
    for (CollAlgo algo : s.algos) {
      for (std::size_t nbytes : sizes) {
        if (!fits(s.kind, algo, nbytes, kWorld)) continue;
        double us = measure(s.kind, algo, nbytes, kWorld);
        std::string name = std::string("coll/") + core::to_string(s.kind) +
                           "/" + core::to_string(algo) + "/8pe/" +
                           bench::size_label(nbytes);
        std::printf("%-30s %10.2f\n", name.c_str(), us);
        bench::add_point(name, us);
      }
    }
  }

  // Ring allreduce scaling: O(n) in message size, near-flat in PE count.
  double ring_256k = measure(CollKind::kAllreduce, CollAlgo::kRing,
                             256u << 10, kWorld);
  double ring_1m_8 = measure(CollKind::kAllreduce, CollAlgo::kRing, 1u << 20,
                             kWorld);
  double ring_1m_4 = measure(CollKind::kAllreduce, CollAlgo::kRing, 1u << 20,
                             4);
  bench::add_point("coll/allreduce/ring/4pe/1M", ring_1m_4);
  bench::add_metric("allreduce_ring_size_scaling_1m_over_256k",
                    ring_1m_8 / ring_256k);
  bench::add_metric("allreduce_ring_np_scaling_8pe_over_4pe",
                    ring_1m_8 / ring_1m_4);
  std::printf(
      "\nring allreduce scaling: T(1M)/T(256K) = %.2f (O(n) ~ 4.0), "
      "T(8pe)/T(4pe) at 1M = %.2f (2(np-1)/np ~ 1.17)\n",
      ring_1m_8 / ring_256k, ring_1m_8 / ring_1m_4);

  return bench::report_and_run(argc, argv, "collectives");
}
