// Figure 12: GPULBM evolution-phase time, strong scaling (128^3 total) and
// weak scaling (64^3 per GPU), host pipeline vs Enhanced-GDR. The paper
// runs long production iteration counts; we simulate 30 evolution steps and
// report time per step x 1000 as the "evolution time" equivalent.
#include <cstdio>

#include "apps/lbm.hpp"
#include "common.hpp"

using namespace gdrshmem;

namespace {

constexpr int kIters = 30;
constexpr double kReportSteps = 1000.0;

double run_once(std::size_t x, std::size_t y, std::size_t z, int gpus,
                core::TransportKind kind) {
  hw::ClusterConfig cluster;
  cluster.pes_per_node = 2;
  cluster.num_nodes = gpus / 2;
  core::RuntimeOptions opts;
  opts.transport = kind;
  opts.host_heap_bytes = 4u << 20;
  // 35 float fields of X*Y*(lz+2) plus slack.
  std::size_t lz = z / static_cast<std::size_t>(gpus);
  std::size_t field = x * y * (lz + 2) * sizeof(float);
  opts.gpu_heap_bytes = 40 * field + (8u << 20);
  apps::LbmConfig cfg;
  cfg.x = x;
  cfg.y = y;
  cfg.z = z;
  cfg.iterations = kIters;
  cfg.functional = false;
  // The Fig 12 baseline is the original CUDA-aware MPI send/recv version:
  // host-staged pipeline transport with blocking per-message exchange.
  cfg.blocking_exchange = (kind == core::TransportKind::kHostPipeline);
  auto res = run_lbm(cluster, opts, cfg);
  return res.evolution_ms * (kReportSteps / kIters);
}

void strong_scaling() {
  std::printf("== fig12(a): LBM evolution time (ms per %0.f steps), strong "
              "scaling, 128x128x128 ==\n", kReportSteps);
  std::printf("%-8s %-18s %-18s %s\n", "GPUs", "host-pipeline", "enhanced-gdr",
              "improvement");
  for (int gpus : {8, 16, 32, 64}) {
    double base = run_once(128, 128, 128, gpus, core::TransportKind::kHostPipeline);
    double enh = run_once(128, 128, 128, gpus, core::TransportKind::kEnhancedGdr);
    std::printf("%-8d %-18.1f %-18.1f %.0f%%\n", gpus, base, enh,
                100.0 * (1.0 - enh / base));
    std::string tag = "fig12/strong128/gpus" + std::to_string(gpus);
    bench::add_point(tag + "/baseline", base * 1000.0);
    bench::add_point(tag + "/enhanced", enh * 1000.0);
  }
  std::printf("\n");
}

void weak_scaling() {
  std::printf("== fig12(b): LBM evolution time (ms per %0.f steps), weak "
              "scaling, 64^3 per GPU ==\n", kReportSteps);
  std::printf("%-8s %-18s %-18s %s\n", "GPUs", "host-pipeline", "enhanced-gdr",
              "improvement");
  for (int gpus : {8, 16, 32, 64}) {
    std::size_t z = 64 * static_cast<std::size_t>(gpus);
    double base = run_once(64, 64, z, gpus, core::TransportKind::kHostPipeline);
    double enh = run_once(64, 64, z, gpus, core::TransportKind::kEnhancedGdr);
    std::printf("%-8d %-18.1f %-18.1f %.0f%%\n", gpus, base, enh,
                100.0 * (1.0 - enh / base));
    std::string tag = "fig12/weak64/gpus" + std::to_string(gpus);
    bench::add_point(tag + "/baseline", base * 1000.0);
    bench::add_point(tag + "/enhanced", enh * 1000.0);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  strong_scaling();
  weak_scaling();
  return bench::report_and_run(argc, argv, "fig12");
}
