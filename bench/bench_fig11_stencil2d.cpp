// Figure 11: Stencil2D (SHOC) execution time on 4-64 GPUs, 1Kx1K and
// 2Kx2K inputs, host pipeline vs Enhanced-GDR. The paper runs 1,000
// internal iterations; we simulate 100 and report the 1,000-iteration
// equivalent (virtual time scales linearly).
#include <cstdio>

#include "apps/stencil2d.hpp"
#include "common.hpp"

using namespace gdrshmem;

namespace {

struct GridPick {
  int gpus, px, py;
};

constexpr GridPick kScales[] = {{4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8}};
constexpr int kIters = 100;
constexpr int kPaperIters = 1000;

double run_once(std::size_t n, const GridPick& g, core::TransportKind kind) {
  hw::ClusterConfig cluster;
  cluster.pes_per_node = 2;
  cluster.num_nodes = g.gpus / 2;
  core::RuntimeOptions opts;
  opts.transport = kind;
  opts.gpu_heap_bytes = 64u << 20;
  opts.host_heap_bytes = 4u << 20;
  apps::Stencil2DConfig cfg;
  cfg.nx = cfg.ny = n;
  cfg.px = g.px;
  cfg.py = g.py;
  cfg.iterations = kIters;
  cfg.functional = false;  // cost-only kernels at this scale
  // Double-precision 9-point SHOC stencil on a K20 sustains ~1 GLUP/s.
  cfg.per_cell_ns = 1.0;
  auto res = run_stencil2d(cluster, opts, cfg);
  return res.exec_time_ms * (static_cast<double>(kPaperIters) / kIters);
}

void panel(std::size_t n) {
  std::printf("== fig11: Stencil2D execution time (ms, %d-iteration equivalent), "
              "input %zux%zu ==\n", kPaperIters, n, n);
  std::printf("%-8s %-18s %-18s %s\n", "GPUs", "host-pipeline", "enhanced-gdr",
              "improvement");
  for (const GridPick& g : kScales) {
    double base = run_once(n, g, core::TransportKind::kHostPipeline);
    double enh = run_once(n, g, core::TransportKind::kEnhancedGdr);
    std::printf("%-8d %-18.1f %-18.1f %.0f%%\n", g.gpus, base, enh,
                100.0 * (1.0 - enh / base));
    std::string tag = "fig11/" + std::to_string(n) + "sq/gpus" + std::to_string(g.gpus);
    bench::add_point(tag + "/baseline", base * 1000.0);
    bench::add_point(tag + "/enhanced", enh * 1000.0);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  panel(1024);
  panel(2048);
  return bench::report_and_run(argc, argv, "fig11");
}
