// Shared driver for the latency figures (Figs 6-9): put/get, small/large
// sweeps, Host-Pipeline baseline vs Enhanced-GDR, printed as the paper's
// four panels per figure.
#pragma once

#include <cstdio>
#include <optional>

#include "common.hpp"
#include "omb/omb.hpp"

namespace gdrshmem::bench {

inline void latency_figure(const std::string& fig, bool intra, omb::Loc local,
                           core::Domain remote, bool include_baseline) {
  using omb::LatencyConfig;
  const char* cfg_name = local == omb::Loc::kHost
                             ? (remote == core::Domain::kGpu ? "H-D" : "H-H")
                             : (remote == core::Domain::kGpu ? "D-D" : "D-H");
  std::printf("== %s: %s-node %s latency (us) ==\n", fig.c_str(),
              intra ? "intra" : "inter", cfg_name);
  for (bool is_put : {true, false}) {
    for (bool small : {true, false}) {
      LatencyConfig cfg;
      cfg.intra_node = intra;
      cfg.local = local;
      cfg.remote = remote;
      cfg.is_put = is_put;
      cfg.sizes = small ? omb::small_message_sizes() : omb::large_message_sizes();
      cfg.iters = small ? 100 : 20;

      cfg.transport = core::TransportKind::kEnhancedGdr;
      auto enhanced = omb::run_latency(cfg);
      std::optional<std::vector<omb::LatencyPoint>> baseline;
      if (include_baseline) {
        cfg.transport = core::TransportKind::kHostPipeline;
        baseline = omb::run_latency(cfg);
      }

      std::printf("-- %s, %s messages --\n", is_put ? "Put" : "Get",
                  small ? "small" : "large");
      if (baseline) {
        std::printf("%-8s %-16s %-16s %s\n", "size", "host-pipeline",
                    "enhanced-gdr", "improvement");
      } else {
        std::printf("%-8s %-16s\n", "size", "enhanced-gdr");
      }
      for (std::size_t i = 0; i < enhanced.size(); ++i) {
        const auto& e = enhanced[i];
        std::string tag = fig + "/" + cfg_name + "/" + (is_put ? "put" : "get") +
                          "/" + (small ? "small" : "large") + "/" +
                          size_label(e.bytes);
        add_point(tag + "/enhanced", e.latency_us);
        if (baseline) {
          const auto& b = (*baseline)[i];
          add_point(tag + "/baseline", b.latency_us);
          std::printf("%-8s %-16.2f %-16.2f %.2fx\n", size_label(e.bytes).c_str(),
                      b.latency_us, e.latency_us, b.latency_us / e.latency_us);
        } else {
          std::printf("%-8s %-16.2f\n", size_label(e.bytes).c_str(), e.latency_us);
        }
      }
      std::printf("\n");
    }
  }
}

}  // namespace gdrshmem::bench
