// Engine execution overhead: how fast does the simulator itself run?
//
// Every other bench in this directory reports *virtual* time; this one
// reports *wall* time. Four sections:
//
//   1. backend A/B   — the original 64-PE message-rate workload under the
//                      thread and fiber backends (fiber speedup headline).
//   2. PE sweep      — the same workload at 64 -> 16384 PEs (fibers; 16K OS
//                      threads is not a thing), reporting events/sec per
//                      scale point. This is the scale-out regression series:
//                      events/sec collapsing at high PE counts means the
//                      event queue or the stack management stopped scaling.
//   3. 4K-PE A/B     — optimized configuration (timing-wheel queue, warm
//                      fiber-stack pool, batched wakeups, fast fiber switch)
//                      vs the PR-1 baseline (binary heap, cold unpooled
//                      stacks, per-waiter wakeups, swapcontext + its
//                      per-swap syscall) on a barrier+message-rate
//                      workload, measured end-to-end: engine construction,
//                      spawn, run, teardown. Headline: speedup_4kpe (target
//                      >= 5x; the pool only pays off across repeated runs in
//                      one process, which is exactly the sweep/CI shape).
//   4. cross-checks  — heap and wheel must execute identical event counts to
//                      identical virtual end times (and batching must not
//                      move virtual time) or the bench aborts: the perf
//                      numbers are meaningless if determinism broke.
//
// `--scale-smoke` runs a single 1K-PE barrier+message-rate round under a
// wall-clock budget and exits — the cheap scale canary for check_tier1.sh.
//
// Wall numbers are machine-dependent; the perf gate compares the
// deterministic `events` per wall point exactly, events/sec only against a
// loose floor (PERF_WALL_FRAC), and virtual_us points tightly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/stack_pool.hpp"
#include "sim/time.hpp"

using namespace gdrshmem;
using sim::BackendKind;
using sim::Duration;
using sim::Engine;
using sim::FiberStackPool;
using sim::Mailbox;
using sim::Process;
using sim::QueueKind;

namespace {

struct Result {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::int64_t virtual_end_ns = 0;
  std::size_t queue_hwm = 0;

  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
};

struct Config {
  BackendKind backend = BackendKind::kFibers;
  QueueKind queue = QueueKind::kWheel;
  bool batch = true;
  bool barrier = false;  ///< add a notification barrier per iteration
  bool time_lifecycle = false;  ///< include construct/spawn/teardown in wall_s
};

/// Message-rate workload: each PE posts a window of messages to its right
/// neighbour's mailbox, drains its own, and optionally joins a full-PE
/// barrier — so every message costs a blocked receive and a wakeup, and each
/// barrier release is a PE-count-sized same-instant burst.
Result run_message_rate(const Config& cfg, int pes, int iters, int window) {
  Result res;
  const double t0 = bench::wall_now();
  double run_wall = 0;
  {
    Engine eng(cfg.backend, cfg.queue);
    eng.set_batch_wakeups(cfg.batch);
    std::vector<Mailbox<int>> boxes(static_cast<std::size_t>(pes));
    sim::Notification barrier;
    int waiting = 0;

    for (int pe = 0; pe < pes; ++pe) {
      eng.spawn("pe" + std::to_string(pe), [&, pe](Process& p) {
        const int right = (pe + 1) % pes;
        for (int i = 0; i < iters; ++i) {
          for (int w = 0; w < window; ++w) {
            boxes[static_cast<std::size_t>(right)].post(w);
            p.delay(Duration::ns(5));  // per-message injection cost
          }
          for (int w = 0; w < window; ++w) {
            boxes[static_cast<std::size_t>(pe)].receive(p);
          }
          if (cfg.barrier) {
            if (++waiting == pes) {
              waiting = 0;
              barrier.notify();
            } else {
              p.await(barrier);
            }
          }
        }
      });
    }

    const double r0 = bench::wall_now();
    eng.run();
    run_wall = bench::wall_now() - r0;
    res.events = eng.events_executed();
    res.virtual_end_ns = (eng.now() - sim::Time::zero()).count_ns();
    res.queue_hwm = eng.queue_size_hwm();
  }  // engine teardown (stack release/unmap) inside the lifecycle window
  res.wall_s = cfg.time_lifecycle ? bench::wall_now() - t0 : run_wall;
  return res;
}

[[noreturn]] void die_divergence(const char* what, const Result& a,
                                 const Result& b) {
  std::fprintf(stderr,
               "FATAL: %s diverged (events %llu vs %llu, end %lld vs %lld "
               "ns) — determinism contract broken\n",
               what, static_cast<unsigned long long>(a.events),
               static_cast<unsigned long long>(b.events),
               static_cast<long long>(a.virtual_end_ns),
               static_cast<long long>(b.virtual_end_ns));
  std::exit(1);
}

/// --scale-smoke: one 1K-PE barrier+message-rate round under a wall budget.
/// The budget is deliberately loose (CI boxes vary wildly); it catches
/// catastrophic scale regressions, not percent-level drift.
int scale_smoke() {
  constexpr double kBudgetSeconds = 20.0;
  Config cfg;
  cfg.barrier = true;
  cfg.time_lifecycle = true;
  Result warm = run_message_rate(cfg, 128, 2, 4);  // warm the stack pool
  Result r = run_message_rate(cfg, 1024, 4, 8);
  std::printf("scale-smoke: 1024-PE barrier+msgrate: %llu events, %.3f s "
              "(budget %.0f s), queue hwm %zu\n",
              static_cast<unsigned long long>(r.events), r.wall_s,
              kBudgetSeconds, r.queue_hwm);
  (void)warm;
  if (r.wall_s > kBudgetSeconds) {
    std::fprintf(stderr, "scale-smoke FAILED: %.3f s exceeds %.0f s budget\n",
                 r.wall_s, kBudgetSeconds);
    return 1;
  }
  if (r.queue_hwm < 1024) {
    std::fprintf(stderr, "scale-smoke FAILED: queue hwm %zu < PE count — "
                 "barrier burst did not reach the queue\n", r.queue_hwm);
    return 1;
  }
  std::printf("scale-smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale-smoke") == 0) return scale_smoke();
  }

  // ---- 1. backend A/B at 64 PEs (the original headline) ------------------
  const int pes = 64, iters = 50, window = 16;
  std::printf("== engine overhead: %d-PE message-rate workload, "
              "%d iters x window %d ==\n", pes, iters, window);

  Config threads_cfg, fibers_cfg;
  threads_cfg.backend = BackendKind::kThreads;
  // Warm both backends once (thread pool spin-up, stack pool, page faults).
  run_message_rate(fibers_cfg, 8, 2, 4);
  run_message_rate(threads_cfg, 8, 2, 4);

  Result threads = run_message_rate(threads_cfg, pes, iters, window);
  Result fibers = run_message_rate(fibers_cfg, pes, iters, window);

  std::printf("%-10s %12s %14s %16s\n", "backend", "events", "wall (s)",
              "events/sec");
  std::printf("%-10s %12llu %14.4f %16.0f\n", "threads",
              static_cast<unsigned long long>(threads.events), threads.wall_s,
              threads.events_per_sec());
  std::printf("%-10s %12llu %14.4f %16.0f\n", "fibers",
              static_cast<unsigned long long>(fibers.events), fibers.wall_s,
              fibers.events_per_sec());
  if (threads.events != fibers.events ||
      threads.virtual_end_ns != fibers.virtual_end_ns) {
    die_divergence("backends", threads, fibers);
  }
  const double speedup = fibers.events_per_sec() / threads.events_per_sec();
  std::printf("fiber speedup: %.1fx (target: >= 5x)\n\n", speedup);

  const std::string base = "engine/msgrate/" + std::to_string(pes) + "pe";
  bench::add_wall_point(base + "/threads", threads.wall_s, threads.events);
  bench::add_wall_point(base + "/fibers", fibers.wall_s, fibers.events);
  bench::add_point(base + "/virtual_end",
                   static_cast<double>(fibers.virtual_end_ns) * 1e-3);
  bench::add_metric("speedup_fibers_vs_threads", speedup);
  bench::add_metric("pes", static_cast<double>(pes));

  // ---- 2. PE-count sweep 64 -> 16384 (fibers) ----------------------------
  // iters*window shrinks as PEs grow so each point stays seconds-scale; the
  // gated quantity is events (exact) and events/sec (floor), not wall time.
  struct SweepPoint { int pes, iters, window; };
  const SweepPoint sweep[] = {
      {64, 50, 16}, {256, 24, 16}, {1024, 12, 8}, {4096, 6, 8}, {16384, 2, 6},
  };
  std::printf("== PE-count sweep (fibers, wheel queue, batched wakeups, "
              "barrier each iter) ==\n");
  std::printf("%8s %12s %14s %16s %12s\n", "pes", "events", "wall (s)",
              "events/sec", "queue hwm");
  for (const SweepPoint& sp : sweep) {
    Config cfg;
    cfg.barrier = true;
    Result r = run_message_rate(cfg, sp.pes, sp.iters, sp.window);
    std::printf("%8d %12llu %14.4f %16.0f %12zu\n", sp.pes,
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec(), r.queue_hwm);
    const std::string name = "engine/sweep/" + std::to_string(sp.pes) + "pe";
    bench::add_wall_point(name + "/fibers", r.wall_s, r.events);
    bench::add_point(name + "/virtual_end",
                     static_cast<double>(r.virtual_end_ns) * 1e-3);
  }
  std::printf("\n");

  // ---- 3. 4K-PE optimized-vs-baseline A/B --------------------------------
  // End-to-end lifecycle timing (construct + spawn + run + teardown): the
  // pool's mmap/munmap savings, the wheel/batching queue savings, and the
  // syscall-free fiber switch all land in this window. Baseline = PR-1
  // engine shape: heap queue, per-waiter wakeups, pooling disabled (every
  // stack is a fresh mmap, torn down again), swapcontext handoffs (an
  // rt_sigprocmask syscall per switch). The switch mode is read per Engine
  // construction, so pinning it via the environment around each run is exact.
  // The unit under test is a *job*: construct, spawn 4K PEs, run a
  // barrier+message-rate round, tear down — repeated kReps times in one
  // process, which is exactly how the engine is used (every test, bench
  // point, and sweep iteration is its own Engine lifetime). The stack
  // pool's whole value is amortization across those lifetimes, so the A/B
  // must include them; a single long in-engine run would hide it.
  const int ab_pes = 4096, ab_iters = 1, ab_window = 4, ab_reps = 3;
  FiberStackPool& pool = FiberStackPool::instance();
  const std::size_t pool_cap = pool.capacity();

  auto run_reps = [&](const Config& cfg) {
    Result total;
    for (int rep = 0; rep < ab_reps; ++rep) {
      Result r = run_message_rate(cfg, ab_pes, ab_iters, ab_window);
      total.wall_s += r.wall_s;
      total.events += r.events;
      if (rep == 0) {
        total.virtual_end_ns = r.virtual_end_ns;
      } else if (r.virtual_end_ns != total.virtual_end_ns) {
        die_divergence("4K A/B repetitions", total, r);
      }
    }
    return total;
  };

  Config baseline_cfg;
  baseline_cfg.queue = QueueKind::kHeap;
  baseline_cfg.batch = false;
  baseline_cfg.barrier = true;
  baseline_cfg.time_lifecycle = true;
  pool.set_capacity(0);
  pool.trim();
  ::setenv("GDRSHMEM_SIM_FIBER_SWITCH", "ucontext", 1);
  Result ab_base = run_reps(baseline_cfg);

  Config opt_cfg = baseline_cfg;
  opt_cfg.queue = QueueKind::kWheel;
  opt_cfg.batch = true;
  pool.set_capacity(pool_cap);
  ::setenv("GDRSHMEM_SIM_FIBER_SWITCH", "fast", 1);
  run_message_rate(opt_cfg, ab_pes, 1, 1);  // warm the pool at 4K geometry
  Result ab_opt = run_reps(opt_cfg);
  ::unsetenv("GDRSHMEM_SIM_FIBER_SWITCH");

  if (ab_base.virtual_end_ns != ab_opt.virtual_end_ns) {
    die_divergence("4K A/B configs", ab_base, ab_opt);
  }
  const double ab_speedup = ab_base.wall_s / ab_opt.wall_s;
  std::printf("== 4K-PE A/B (%d jobs, lifecycle wall: "
              "construct+spawn+run+teardown each) ==\n", ab_reps);
  std::printf("baseline  (heap, unpooled, unbatched, ucontext): %.4f s, "
              "%llu events\n",
              ab_base.wall_s, static_cast<unsigned long long>(ab_base.events));
  std::printf("optimized (wheel, pooled, batched, fast switch): %.4f s, "
              "%llu events\n",
              ab_opt.wall_s, static_cast<unsigned long long>(ab_opt.events));
  std::printf("speedup: %.1fx (target: >= 5x)\n\n", ab_speedup);
  bench::add_wall_point("engine/4kpe_ab/baseline", ab_base.wall_s,
                        ab_base.events);
  bench::add_wall_point("engine/4kpe_ab/optimized", ab_opt.wall_s,
                        ab_opt.events);
  bench::add_metric("speedup_4kpe_vs_baseline", ab_speedup);

  // ---- 4. queue/batching determinism cross-checks ------------------------
  {
    Config heap_cfg, wheel_cfg;
    heap_cfg.queue = QueueKind::kHeap;
    heap_cfg.barrier = wheel_cfg.barrier = true;
    Result h = run_message_rate(heap_cfg, 256, 6, 8);
    Result w = run_message_rate(wheel_cfg, 256, 6, 8);
    if (h.events != w.events || h.virtual_end_ns != w.virtual_end_ns) {
      die_divergence("heap/wheel queues", h, w);
    }
    Config nobatch_cfg = wheel_cfg;
    nobatch_cfg.batch = false;
    Result nb = run_message_rate(nobatch_cfg, 256, 6, 8);
    if (nb.virtual_end_ns != w.virtual_end_ns) {
      die_divergence("batching (virtual time)", nb, w);
    }
    std::printf("cross-check OK: heap == wheel (%llu events), batching "
                "preserves virtual time\n\n",
                static_cast<unsigned long long>(h.events));
  }

  return bench::report_and_run(argc, argv, "engine");
}
