// Engine execution-backend overhead: how fast does the simulator itself run?
//
// Every other bench in this directory reports *virtual* time; this one
// reports *wall* time. It drives a message-rate-style workload (the shape of
// bench_message_rate: a window of small messages between many PEs, with a
// handoff at every post/receive) on the bare sim::Engine under both
// execution backends and reports events/sec. The fiber backend replaces two
// kernel context switches per handoff with a user-space swap; the measured
// speedup is the headline number of the backend (tracked in
// BENCH_engine.json; see EXPERIMENTS.md "Engine overhead").
//
// Determinism cross-check is built in: both backends must execute the exact
// same number of events and reach the same virtual end time, or the bench
// aborts.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/time.hpp"

using namespace gdrshmem;
using sim::BackendKind;
using sim::Duration;
using sim::Engine;
using sim::Mailbox;
using sim::Process;

namespace {

struct Result {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::int64_t virtual_end_ns = 0;

  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
};

/// 64-PE message-rate workload: each PE posts a window of messages to its
/// right neighbour's mailbox, drains its own, and synchronizes — so every
/// message costs a blocked receive and a wakeup, exactly the handoff pattern
/// of the put/quiet loops in bench_message_rate.
Result run_message_rate(BackendKind kind, int pes, int iters, int window) {
  Result res;
  Engine eng(kind);
  std::vector<Mailbox<int>> boxes(static_cast<std::size_t>(pes));

  for (int pe = 0; pe < pes; ++pe) {
    eng.spawn("pe" + std::to_string(pe), [&, pe](Process& p) {
      const int right = (pe + 1) % pes;
      for (int i = 0; i < iters; ++i) {
        for (int w = 0; w < window; ++w) {
          boxes[static_cast<std::size_t>(right)].post(w);
          p.delay(Duration::ns(5));  // per-message injection cost
        }
        for (int w = 0; w < window; ++w) {
          boxes[static_cast<std::size_t>(pe)].receive(p);
        }
      }
    });
  }

  const double t0 = bench::wall_now();
  eng.run();
  res.wall_s = bench::wall_now() - t0;
  res.events = eng.events_executed();
  res.virtual_end_ns = (eng.now() - sim::Time::zero()).count_ns();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const int pes = 64;
  const int iters = 50;
  const int window = 16;

  std::printf("== engine overhead: %d-PE message-rate workload, "
              "%d iters x window %d ==\n", pes, iters, window);

  // Warm both backends once (thread pool spin-up, page faults), then measure.
  run_message_rate(BackendKind::kFibers, 8, 2, 4);
  run_message_rate(BackendKind::kThreads, 8, 2, 4);

  Result threads = run_message_rate(BackendKind::kThreads, pes, iters, window);
  Result fibers = run_message_rate(BackendKind::kFibers, pes, iters, window);

  std::printf("%-10s %12s %14s %16s\n", "backend", "events", "wall (s)",
              "events/sec");
  std::printf("%-10s %12llu %14.4f %16.0f\n", "threads",
              static_cast<unsigned long long>(threads.events), threads.wall_s,
              threads.events_per_sec());
  std::printf("%-10s %12llu %14.4f %16.0f\n", "fibers",
              static_cast<unsigned long long>(fibers.events), fibers.wall_s,
              fibers.events_per_sec());

  if (threads.events != fibers.events ||
      threads.virtual_end_ns != fibers.virtual_end_ns) {
    std::fprintf(stderr,
                 "FATAL: backends diverged (events %llu vs %llu, end %lld vs "
                 "%lld ns) — determinism contract broken\n",
                 static_cast<unsigned long long>(threads.events),
                 static_cast<unsigned long long>(fibers.events),
                 static_cast<long long>(threads.virtual_end_ns),
                 static_cast<long long>(fibers.virtual_end_ns));
    return 1;
  }

  const double speedup = fibers.events_per_sec() / threads.events_per_sec();
  std::printf("fiber speedup: %.1fx (target: >= 5x)\n\n", speedup);

  const std::string base = "engine/msgrate/" + std::to_string(pes) + "pe";
  bench::add_wall_point(base + "/threads", threads.wall_s, threads.events);
  bench::add_wall_point(base + "/fibers", fibers.wall_s, fibers.events);
  // The virtual end time is deterministic, so the perf gate can watch it
  // (the wall numbers above are machine-dependent and ignored by the gate).
  bench::add_point(base + "/virtual_end",
                   static_cast<double>(fibers.virtual_end_ns) * 1e-3);
  bench::add_metric("speedup_fibers_vs_threads", speedup);
  bench::add_metric("pes", static_cast<double>(pes));
  return bench::report_and_run(argc, argv, "engine");
}
