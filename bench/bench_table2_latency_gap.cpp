// Table II: 4-byte put latency at the IB verbs level and at the OpenSHMEM
// level, for inter-node Host-Host and GPU-GPU. The paper uses this gap —
// raw GDR is fast, the then-current OpenSHMEM GPU path is ~20 us — to
// motivate the GDR-aware runtime; we print the baseline *and* what the
// proposed runtime closes the gap to.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "ib/verbs.hpp"
#include "omb/omb.hpp"

using namespace gdrshmem;

namespace {

/// Raw verbs-level RDMA write latency (post to ACK), 4 bytes.
double ib_level_latency(bool gpu_buffers) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.pes_per_node = 1;
  hw::Cluster cluster(cfg);
  sim::Engine eng;
  cudart::CudaRuntime cuda(eng, cluster);
  ib::Verbs verbs(eng, cluster, cuda);

  std::vector<std::byte> host_src(64), host_dst(64);
  void* src = host_src.data();
  void* dst = host_dst.data();
  if (gpu_buffers) {
    src = cuda.malloc_device(0, 0, 64);
    dst = cuda.malloc_device(1, 0, 64);
  }
  verbs.reg_cache().register_at_init(0, src, 64);
  verbs.reg_cache().register_at_init(1, dst, 64);

  double us = 0;
  eng.spawn("initiator", [&](sim::Process& p) {
    constexpr int kIters = 100;
    for (int i = 0; i < 5; ++i) verbs.rdma_write(p, 0, src, 1, dst, 4)->wait(p);
    sim::Time t0 = eng.now();
    for (int i = 0; i < kIters; ++i) verbs.rdma_write(p, 0, src, 1, dst, 4)->wait(p);
    us = (eng.now() - t0).to_us() / kIters;
  });
  eng.run();
  return us;
}

double shmem_level_latency(core::TransportKind kind, bool gpu) {
  omb::LatencyConfig cfg;
  cfg.transport = kind;
  cfg.intra_node = false;
  cfg.local = gpu ? omb::Loc::kDevice : omb::Loc::kHost;
  cfg.remote = gpu ? core::Domain::kGpu : core::Domain::kHost;
  cfg.sizes = {4};
  return omb::run_latency(cfg)[0].latency_us;
}

}  // namespace

int main(int argc, char** argv) {
  double ib_hh = ib_level_latency(false);
  double ib_dd = ib_level_latency(true);
  double shmem_hh = shmem_level_latency(core::TransportKind::kEnhancedGdr, false);
  double shmem_dd_base = shmem_level_latency(core::TransportKind::kHostPipeline, true);
  double shmem_dd_enh = shmem_level_latency(core::TransportKind::kEnhancedGdr, true);

  std::printf("== Table II: 4 B inter-node put latency (us) ==\n");
  std::printf("%-34s %-12s %-12s\n", "level", "Host-Host", "GPU-GPU");
  std::printf("%-34s %-12.2f %-12.2f\n", "IB verbs (RDMA write)", ib_hh, ib_dd);
  std::printf("%-34s %-12.2f %-12.2f\n", "OpenSHMEM put (host pipeline)",
              shmem_hh, shmem_dd_base);
  std::printf("%-34s %-12.2f %-12.2f\n", "OpenSHMEM put (enhanced GDR)",
              shmem_hh, shmem_dd_enh);
  std::printf("\n");

  bench::add_point("table2/ib/hh", ib_hh);
  bench::add_point("table2/ib/dd", ib_dd);
  bench::add_point("table2/shmem_baseline/dd", shmem_dd_base);
  bench::add_point("table2/shmem_enhanced/dd", shmem_dd_enh);
  bench::add_point("table2/shmem/hh", shmem_hh);
  return bench::report_and_run(argc, argv, "table2");
}
