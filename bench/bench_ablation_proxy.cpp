// Ablation: proxy-based asynchronous progress (DESIGN.md §5.2). Compares
// large inter-node D-D gets and their one-sidedness with the proxy enabled
// vs disabled (falling back to direct GDR reads through the P2P read cap).
#include <cstdio>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;

namespace {

struct ProxyProbe {
  double get_us = 0;        // blocking 1 MB get latency
  double busy_get_us = 0;   // same, while the owning PE busy-computes 2 ms
};

ProxyProbe measure(bool use_proxy, bool same_socket) {
  ProxyProbe probe;
  for (int busy = 0; busy < 2; ++busy) {
    hw::ClusterConfig cluster;
    cluster.num_nodes = 2;
    cluster.pes_per_node = 2;
    cluster.hca_gpu_same_socket = same_socket;
    core::RuntimeOptions opts;
    opts.tuning.use_proxy = use_proxy;
    core::Runtime rt(cluster, opts);
    double us = 0;
    rt.run([&](Ctx& ctx) {
      constexpr std::size_t kBytes = 1u << 20;
      void* sym = ctx.shmalloc(kBytes, Domain::kGpu);
      void* local = ctx.cuda_malloc(kBytes);
      if (ctx.my_pe() == 0) ctx.getmem(local, sym, kBytes, 2);  // warmup
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        sim::Time t0 = ctx.now();
        ctx.getmem(local, sym, kBytes, 2);
        us = (ctx.now() - t0).to_us();
      } else if (ctx.my_pe() == 2 && busy == 1) {
        ctx.compute(sim::Duration::us(2000));
      }
      ctx.barrier_all();
    });
    (busy == 0 ? probe.get_us : probe.busy_get_us) = us;
  }
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Ablation: 1 MB inter-node D-D get, proxy on/off (us) ==\n");
  std::printf("%-14s %-10s %-14s %-18s\n", "placement", "proxy", "idle target",
              "busy target (2ms)");
  for (bool same_socket : {true, false}) {
    for (bool proxy : {true, false}) {
      ProxyProbe p = measure(proxy, same_socket);
      std::printf("%-14s %-10s %-14.1f %-18.1f\n",
                  same_socket ? "intra-socket" : "inter-socket",
                  proxy ? "on" : "off", p.get_us, p.busy_get_us);
      std::string tag = std::string("ablation_proxy/") +
                        (same_socket ? "intra" : "inter") + "_socket/" +
                        (proxy ? "on" : "off");
      bench::add_point(tag + "/idle", p.get_us);
      bench::add_point(tag + "/busy", p.busy_get_us);
    }
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "ablation_proxy");
}
