// Extension bench: link contention — multiple PE pairs streaming large GPU
// messages across the same fabric. Validates that the modeled PCIe/IB links
// are genuinely shared resources (per-pair bandwidth drops as pairs fight
// over ports) and that one proxy per node remains sufficient, as the paper
// claims ("a single proxy is enough to saturate the PCIe and network
// bandwidths").
#include <cstdio>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;

namespace {

/// `pairs` PEs per node all put 4 MB D->D to their counterpart on the other
/// node; returns aggregate bandwidth (MB/s) and per-pair average.
std::pair<double, double> contended_bw(int pairs) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = pairs;
  cluster.gpus_per_node = 2;
  cluster.hcas_per_node = 2;
  core::RuntimeOptions opts;
  opts.gpu_heap_bytes = 16u << 20;
  core::Runtime rt(cluster, opts);
  constexpr std::size_t kBytes = 4u << 20;
  double total_us = 0;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(kBytes, Domain::kGpu);
    void* src = ctx.cuda_malloc(kBytes);
    ctx.barrier_all();
    sim::Time t0 = ctx.now();
    if (ctx.my_pe() < pairs) {  // node-0 PEs push to node-1 partners
      ctx.putmem(sym, src, kBytes, ctx.my_pe() + pairs);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) total_us = (ctx.now() - t0).to_us();
  });
  double aggregate = static_cast<double>(kBytes) * pairs / total_us;
  return {aggregate, aggregate / pairs};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== contention: concurrent 4 MB D-D streams across one fabric ==\n");
  std::printf("%-8s %-20s %-20s\n", "pairs", "aggregate MB/s", "per-pair MB/s");
  for (int pairs : {1, 2, 4, 8}) {
    auto [agg, per] = contended_bw(pairs);
    std::printf("%-8d %-20.0f %-20.0f\n", pairs, agg, per);
    bench::add_point("contention/pairs" + std::to_string(pairs) + "/aggregate",
                     agg);
  }
  std::printf("\n(two FDR HCAs per node: aggregate should plateau around\n"
              " 2 x 6397 MB/s while per-pair bandwidth shrinks)\n\n");
  return bench::report_and_run(argc, argv, "contention");
}
