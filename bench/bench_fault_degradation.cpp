// Graceful degradation under injected wire errors: aggregate put goodput on
// an 8-PE / 4-node enhanced-GDR cluster as the per-attempt completion-error
// rate sweeps from a clean fabric to 3% loss. The same seeded workload runs
// at every rate, so the slowdown is purely retransmit + software-replay
// overhead; the recovery counters are printed alongside the goodput.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"
#include "sim/fault.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;

namespace {

struct DegradationPoint {
  double elapsed_us = 0;
  double goodput_mbps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t cq_errors = 0;
  std::uint64_t sw_replays = 0;
};

DegradationPoint measure(double wire_error_rate) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.pes_per_node = 2;
  core::RuntimeOptions opts;
  opts.host_heap_bytes = 16u << 20;
  opts.gpu_heap_bytes = 16u << 20;
  // Small pipeline chunks: many wire attempts per put, so the error-rate
  // sweep actually exercises the retransmit machinery at depth.
  opts.tuning.pipeline_chunk = 32u << 10;
  if (wire_error_rate > 0) {
    sim::FaultPlan plan;
    plan.seed = 2015;
    plan.wire_error_rate = wire_error_rate;
    opts.faults = plan;
  }

  constexpr std::size_t kBytes = 256u << 10;
  constexpr int kIters = 32;
  core::Runtime rt(cluster, opts);
  double elapsed = 0;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(kBytes, Domain::kGpu);
    void* src = ctx.cuda_malloc(kBytes);
    const int target =
        (ctx.my_pe() + cluster.pes_per_node) % ctx.n_pes();  // next node
    ctx.putmem(sym, src, kBytes, target);  // warmup
    ctx.quiet();
    ctx.barrier_all();
    sim::Time t0 = ctx.now();
    for (int i = 0; i < kIters; ++i) {
      ctx.putmem_nbi(sym, src, kBytes, target);
    }
    ctx.quiet();
    ctx.barrier_all();
    if (ctx.my_pe() == 0) elapsed = (ctx.now() - t0).to_us();
  });

  DegradationPoint p;
  p.elapsed_us = elapsed;
  const double total_mb =
      static_cast<double>(kBytes) * kIters * rt.num_pes() / (1 << 20);
  p.goodput_mbps = total_mb / (elapsed * 1e-6);
  p.retransmits = rt.faults().count(sim::FaultEvent::kRetransmit);
  p.cq_errors = rt.faults().count(sim::FaultEvent::kCompletionError);
  p.sw_replays = rt.faults().count(sim::FaultEvent::kSwReplay);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "== Goodput degradation vs injected wire error rate "
      "(8 PEs / 4 nodes, 256 KiB D-D nbi puts) ==\n");
  std::printf("%-12s %-12s %-14s %-12s %-10s %-10s\n", "error rate",
              "time (us)", "goodput MB/s", "retransmit", "cq-error",
              "sw-replay");
  // rate=0 runs the legacy fast path verbatim (different chunk overlap
  // structure), so degradation is measured against the smallest nonzero
  // rate: fault machinery armed, essentially no faults firing.
  const std::vector<double> rates = {0, 1e-4, 1e-3, 1e-2, 3e-2};
  double armed_clean = 0, worst = 0;
  for (double rate : rates) {
    DegradationPoint p = measure(rate);
    if (rate == 1e-4) armed_clean = p.goodput_mbps;
    if (rate == rates.back()) worst = p.goodput_mbps;
    std::printf("%-12g %-12.1f %-14.1f %-12llu %-10llu %-10llu\n", rate,
                p.elapsed_us, p.goodput_mbps,
                static_cast<unsigned long long>(p.retransmits),
                static_cast<unsigned long long>(p.cq_errors),
                static_cast<unsigned long long>(p.sw_replays));
    char tag[64];
    std::snprintf(tag, sizeof tag, "fault_degradation/rate_%g", rate);
    bench::add_point(tag, p.elapsed_us);
  }
  if (armed_clean > 0) {
    std::printf("retained at %g: %.1f%% of the armed-but-clean goodput\n",
                rates.back(), 100.0 * worst / armed_clean);
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "fault_degradation");
}
