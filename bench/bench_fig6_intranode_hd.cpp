// Figure 6: intra-node Host-to-Device (H-D) put/get latency, host-based
// pipelining vs the proposed GDR-based designs, small and large messages.
#include "latency_figure.hpp"

int main(int argc, char** argv) {
  gdrshmem::bench::latency_figure("fig6", /*intra=*/true, gdrshmem::omb::Loc::kHost,
                                  gdrshmem::core::Domain::kGpu,
                                  /*include_baseline=*/true);
  return gdrshmem::bench::report_and_run(argc, argv, "fig6");
}
