// Portus-style checkpoint/restore service under open-loop load: client PEs
// snapshot GPU-resident model state into checkpoint-server pmem arenas with
// one-sided put/put_signal and restore with one-sided get. The sweep scales
// from 30 to 248 client PEs (thousands of seeded open-loop requests) and
// reports goodput plus p50/p99/p999 request latency measured from the
// scheduled arrival, so server queueing, eviction, and repack stalls are all
// visible. A faulted variant replays the same workload under a proxy crash
// plus P2P revocation mid-checkpoint; the acked-durability contract
// (lost_acked == 0) is asserted on every run.
//
// `--smoke` (used by scripts/check_tier1.sh) runs the faulted config on both
// engine backends and fails unless the digests match bit-for-bit and no
// acknowledged checkpoint is lost.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/checkpoint/service.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "sim/fault.hpp"

using namespace gdrshmem;
using apps::ckpt::CheckpointConfig;
using apps::ckpt::CheckpointResult;

namespace {

struct BenchCase {
  const char* name;
  int nodes;
  int ppn;
  int servers;
  int requests_per_client;
  std::size_t pool_bytes;
  const char* fault_plan;  // nullptr = clean run
};

// Large config: 248 client PEs, ~4K open-loop requests. Pool sized so the
// per-server working set of latest-acked versions fits but cold versions
// must be evicted/repacked.
const BenchCase kCases[] = {
    {"small", 8, 4, 2, 16, 256u << 10, nullptr},
    {"medium", 16, 8, 4, 16, 768u << 10, nullptr},
    {"large", 32, 8, 8, 16, 768u << 10, nullptr},
    {"faulted", 8, 4, 2, 16, 256u << 10, "seed=5,crash=1@400,revoke=2@300"},
};

core::RuntimeOptions scaled_options(const BenchCase& c) {
  core::RuntimeOptions opts;
  opts.transport = core::TransportKind::kEnhancedGdr;
  // Hundreds of PEs: shrink the per-PE heaps and the np^2 eager storage.
  opts.host_heap_bytes = 512u << 10;
  opts.gpu_heap_bytes = 128u << 10;
  opts.pmem_heap_bytes = c.pool_bytes + (64u << 10);
  opts.tuning.eager_limit = 1024;
  opts.tuning.pipeline_chunk = 64u << 10;
  if (c.fault_plan != nullptr) {
    opts.faults = sim::FaultPlan::parse(c.fault_plan);
  }
  return opts;
}

CheckpointConfig service_config(const BenchCase& c) {
  CheckpointConfig cfg;
  cfg.num_servers = c.servers;
  cfg.pool_bytes = c.pool_bytes;
  cfg.chunk_bytes = 4096;
  cfg.dir_slots = 4;
  cfg.verify_restores = false;  // crc always checked; skip the byte compare
  cfg.traffic.seed = 2015;
  cfg.traffic.mean_interarrival_us = 60.0;
  cfg.traffic.requests_per_client = c.requests_per_client;
  cfg.traffic.restore_fraction = 0.2;
  cfg.traffic.min_bytes = 2048;
  cfg.traffic.max_bytes = 32768;
  cfg.traffic.size_skew = 2.0;
  return cfg;
}

CheckpointResult measure(const BenchCase& c, sim::BackendKind backend) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = c.nodes;
  cluster.pes_per_node = c.ppn;
  core::RuntimeOptions opts = scaled_options(c);
  opts.sim_backend = backend;
  return apps::ckpt::run_checkpoint_service(cluster, opts, service_config(c));
}

/// --smoke: the faulted config on both engine backends; digests must match
/// and no acknowledged checkpoint may be lost. Exercised by check_tier1.sh.
int smoke() {
  const BenchCase& c = kCases[3];
  CheckpointResult a = measure(c, sim::BackendKind::kFibers);
  CheckpointResult b = measure(c, sim::BackendKind::kThreads);
  std::printf(
      "checkpoint smoke (%s, fault plan \"%s\"): acked=%llu restores=%llu "
      "lost=%llu digest=%016llx\n",
      c.name, c.fault_plan, static_cast<unsigned long long>(a.checkpoints_acked),
      static_cast<unsigned long long>(a.restores_ok),
      static_cast<unsigned long long>(a.lost_acked),
      static_cast<unsigned long long>(a.digest));
  bool ok = true;
  if (a.digest != b.digest || a.makespan_ms != b.makespan_ms) {
    std::fprintf(stderr,
                 "checkpoint smoke FAILED: fibers/threads diverge "
                 "(digest %016llx vs %016llx, makespan %.3f vs %.3f ms)\n",
                 static_cast<unsigned long long>(a.digest),
                 static_cast<unsigned long long>(b.digest), a.makespan_ms,
                 b.makespan_ms);
    ok = false;
  }
  if (a.lost_acked != 0 || b.lost_acked != 0) {
    std::fprintf(stderr,
                 "checkpoint smoke FAILED: lost acknowledged checkpoints "
                 "(%llu / %llu)\n",
                 static_cast<unsigned long long>(a.lost_acked),
                 static_cast<unsigned long long>(b.lost_acked));
    ok = false;
  }
  if (a.checkpoints_acked == 0 || a.restores_ok == 0) {
    std::fprintf(stderr,
                 "checkpoint smoke FAILED: workload did not materialize "
                 "(acked=%llu restores=%llu)\n",
                 static_cast<unsigned long long>(a.checkpoints_acked),
                 static_cast<unsigned long long>(a.restores_ok));
    ok = false;
  }
  if (ok) std::printf("checkpoint smoke OK\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return smoke();
  }
  std::printf(
      "== Checkpoint/restore service: open-loop goodput and latency ==\n");
  std::printf("%-9s %-8s %-8s %-9s %-9s %-11s %-12s %-22s %-8s\n", "config",
              "clients", "acked", "restores", "evict", "repack/mv",
              "goodput MB/s", "ckpt p50/p99/p999 us", "lost");
  for (const BenchCase& c : kCases) {
    CheckpointResult r = measure(c, sim::BackendKind::kFibers);
    const int clients = c.nodes * c.ppn - c.servers;
    char lat[64];
    std::snprintf(lat, sizeof lat, "%.0f/%.0f/%.0f",
                  static_cast<double>(r.ckpt_p50_ns) * 1e-3,
                  static_cast<double>(r.ckpt_p99_ns) * 1e-3,
                  static_cast<double>(r.ckpt_p999_ns) * 1e-3);
    std::printf("%-9s %-8d %-8llu %-9llu %-9llu %llu/%-9llu %-12.1f %-22s "
                "%-8llu\n",
                c.name, clients,
                static_cast<unsigned long long>(r.checkpoints_acked),
                static_cast<unsigned long long>(r.restores_ok),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.repacks),
                static_cast<unsigned long long>(r.extents_moved),
                r.goodput_mbps, lat,
                static_cast<unsigned long long>(r.lost_acked));
    if (r.lost_acked != 0) {
      std::fprintf(stderr, "FAILED: %s lost %llu acknowledged checkpoints\n",
                   c.name, static_cast<unsigned long long>(r.lost_acked));
      return 1;
    }
    std::string base = std::string("checkpoint/") + c.name;
    bench::add_point(base + "/makespan", r.makespan_ms * 1e3);
    bench::add_point(base + "/ckpt_p50",
                     static_cast<double>(r.ckpt_p50_ns) * 1e-3);
    bench::add_point(base + "/ckpt_p99",
                     static_cast<double>(r.ckpt_p99_ns) * 1e-3);
    bench::add_point(base + "/ckpt_p999",
                     static_cast<double>(r.ckpt_p999_ns) * 1e-3);
    bench::add_point(base + "/restore_p99",
                     static_cast<double>(r.restore_p99_ns) * 1e-3);
    bench::add_metric(base + "/goodput_mbps", r.goodput_mbps);
    bench::add_metric(base + "/acked",
                      static_cast<double>(r.checkpoints_acked));
    bench::add_metric(base + "/evictions",
                      static_cast<double>(r.evictions));
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "checkpoint");
}
