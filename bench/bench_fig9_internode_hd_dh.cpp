// Figure 9: inter-node D-H and H-D put/get latency. The existing solution
// has no inter-domain path (Section V-B), so only the proposed design runs.
#include "latency_figure.hpp"

int main(int argc, char** argv) {
  using gdrshmem::bench::latency_figure;
  latency_figure("fig9", /*intra=*/false, gdrshmem::omb::Loc::kDevice,
                 gdrshmem::core::Domain::kHost, /*include_baseline=*/false);
  latency_figure("fig9", /*intra=*/false, gdrshmem::omb::Loc::kHost,
                 gdrshmem::core::Domain::kGpu, /*include_baseline=*/false);
  return gdrshmem::bench::report_and_run(argc, argv, "fig9");
}
