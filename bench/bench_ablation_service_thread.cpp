// Ablation: proxy vs service-thread progress (the design decision of
// Section III-C). The service thread restores overlap for the host-staged
// baseline, but "will lead to a significant degradation in application
// efficiency as threads consume half the CPU resources" — quantified here
// on (a) the Fig 10 overlap probe and (b) a compute+exchange app loop.
#include <cstdio>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;
using core::TransportKind;

namespace {

struct Mode {
  const char* name;
  TransportKind kind;
  bool service_thread;
};

constexpr Mode kModes[] = {
    {"baseline", TransportKind::kHostPipeline, false},
    {"baseline+svc-thread", TransportKind::kHostPipeline, true},
    {"enhanced-gdr (proxy)", TransportKind::kEnhancedGdr, false},
};

double overlap_comm_us(const Mode& m) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 1;
  core::RuntimeOptions opts;
  opts.transport = m.kind;
  opts.service_thread = m.service_thread;
  core::Runtime rt(cluster, opts);
  sim::Duration comm;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(8192, Domain::kGpu);
    void* local = ctx.cuda_malloc(8192);
    if (ctx.my_pe() == 0) {
      ctx.putmem(sym, local, 8192, 1);
      ctx.quiet();
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem(sym, local, 8192, 1);
      ctx.quiet();
      comm = ctx.now() - t0;
    } else {
      ctx.proc().delay(sim::Duration::us(400));  // busy, never progressing
    }
    ctx.barrier_all();
  });
  return comm.to_us();
}

double app_loop_us(const Mode& m) {
  // Iterative app: 150 us of host compute + a 64 KB GPU exchange per step.
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 1;
  core::RuntimeOptions opts;
  opts.transport = m.kind;
  opts.service_thread = m.service_thread;
  core::Runtime rt(cluster, opts);
  sim::Duration total;
  rt.run([&](Ctx& ctx) {
    constexpr std::size_t kBytes = 64 * 1024;
    void* sym = ctx.shmalloc(kBytes, Domain::kGpu);
    void* local = ctx.cuda_malloc(kBytes);
    ctx.barrier_all();
    sim::Time t0 = ctx.now();
    for (int it = 0; it < 20; ++it) {
      ctx.compute(sim::Duration::us(150));  // host work (pays the svc tax)
      ctx.putmem_nbi(sym, local, kBytes, 1 - ctx.my_pe());
      ctx.quiet();
      ctx.barrier_all();
    }
    if (ctx.my_pe() == 0) total = ctx.now() - t0;
  });
  return total.to_us() / 20.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Ablation: asynchronous progress — proxy vs service thread ==\n");
  std::printf("%-24s %-26s %-22s\n", "design", "8K put, busy target (us)",
              "app step time (us)");
  for (const Mode& m : kModes) {
    double ov = overlap_comm_us(m);
    double app = app_loop_us(m);
    std::printf("%-24s %-26.1f %-22.1f\n", m.name, ov, app);
    std::string tag = std::string("ablation_svc/") + m.name;
    bench::add_point(tag + "/busy_put", ov);
    bench::add_point(tag + "/app_step", app);
  }
  std::printf("\nthe service thread fixes overlap but taxes every compute\n"
              "phase; the proxy gets both (the paper's choice).\n\n");
  return bench::report_and_run(argc, argv, "ablation_service_thread");
}
