// Ablation: the MVAPICH2-X registration cache (DESIGN.md §5.3). Measures
// the first-touch put latency (pays HCA memory registration) against the
// steady state (cache hit), plus the cache hit/miss counters.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;

namespace {

struct RegProbe {
  double first_us = 0;
  double steady_us = 0;
  std::uint64_t hits = 0, misses = 0;
};

RegProbe measure(std::size_t bytes) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 1;
  core::RuntimeOptions opts;
  core::Runtime rt(cluster, opts);
  RegProbe probe;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(bytes, Domain::kHost);
    std::vector<std::byte> fresh(bytes);  // never seen by the HCA
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem(sym, fresh.data(), bytes, 1);
      ctx.quiet();
      probe.first_us = (ctx.now() - t0).to_us();
      constexpr int kIters = 20;
      t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) {
        ctx.putmem(sym, fresh.data(), bytes, 1);
        ctx.quiet();
      }
      probe.steady_us = (ctx.now() - t0).to_us() / kIters;
    }
    ctx.barrier_all();
  });
  probe.hits = rt.verbs().reg_cache().hits();
  probe.misses = rt.verbs().reg_cache().misses();
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Ablation: registration cache — first-touch vs cached put (us) ==\n");
  std::printf("%-8s %-14s %-14s %-10s %-8s %-8s\n", "size", "first (miss)",
              "steady (hit)", "overhead", "hits", "misses");
  for (std::size_t bytes : {4096u, 65536u, 1048576u}) {
    RegProbe p = measure(bytes);
    std::printf("%-8s %-14.2f %-14.2f %-10.1fx %-8llu %-8llu\n",
                bench::size_label(bytes).c_str(), p.first_us, p.steady_us,
                p.first_us / p.steady_us,
                static_cast<unsigned long long>(p.hits),
                static_cast<unsigned long long>(p.misses));
    std::string tag = "ablation_regcache/" + bench::size_label(bytes);
    bench::add_point(tag + "/first_touch", p.first_us);
    bench::add_point(tag + "/steady", p.steady_us);
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "ablation_regcache");
}
