// Figure 7: intra-node Device-to-Host (D-H) put/get latency, host-based
// pipelining vs the proposed GDR/shmem_ptr designs.
#include "latency_figure.hpp"

int main(int argc, char** argv) {
  gdrshmem::bench::latency_figure("fig7", /*intra=*/true,
                                  gdrshmem::omb::Loc::kDevice,
                                  gdrshmem::core::Domain::kHost,
                                  /*include_baseline=*/true);
  return gdrshmem::bench::report_and_run(argc, argv, "fig7");
}
