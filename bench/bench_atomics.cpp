// Section III-D extension bench: OpenSHMEM atomics latency on host vs GPU
// symmetric memory, intra- vs inter-node, including the 32-bit mask
// technique (two hardware atomics per operation).
#include <cstdio>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;

namespace {

struct AtomicLat {
  double fadd64 = 0, cswap64 = 0, fadd32 = 0;
};

AtomicLat measure(bool intra, Domain domain) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 2;
  core::RuntimeOptions opts;
  core::Runtime rt(cluster, opts);
  const int target = intra ? 1 : 2;
  AtomicLat lat;
  constexpr int kIters = 50;
  rt.run([&](Ctx& ctx) {
    auto* w64 = static_cast<std::int64_t*>(ctx.shmalloc(8, domain));
    auto* w32 = static_cast<std::int32_t*>(ctx.shmalloc(8, domain));
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) ctx.atomic_fetch_add(w64, 1, target);
      lat.fadd64 = (ctx.now() - t0).to_us() / kIters;
      t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) ctx.atomic_compare_swap(w64, i, i + 1, target);
      lat.cswap64 = (ctx.now() - t0).to_us() / kIters;
      t0 = ctx.now();
      for (int i = 0; i < kIters; ++i) ctx.atomic_fetch_add32(w32, 1, target);
      lat.fadd32 = (ctx.now() - t0).to_us() / kIters;
    }
    ctx.barrier_all();
  });
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Atomics: IB hardware atomic latency (us) ==\n");
  std::printf("%-10s %-8s %-12s %-12s %-16s\n", "scope", "domain", "fadd64",
              "cswap64", "fadd32 (masked)");
  for (bool intra : {true, false}) {
    for (Domain d : {Domain::kHost, Domain::kGpu}) {
      AtomicLat lat = measure(intra, d);
      std::printf("%-10s %-8s %-12.2f %-12.2f %-16.2f\n",
                  intra ? "intra" : "inter", core::to_string(d), lat.fadd64,
                  lat.cswap64, lat.fadd32);
      std::string tag = std::string("atomics/") + (intra ? "intra" : "inter") +
                        "/" + core::to_string(d);
      bench::add_point(tag + "/fadd64", lat.fadd64);
      bench::add_point(tag + "/cswap64", lat.cswap64);
      bench::add_point(tag + "/fadd32_masked", lat.fadd32);
    }
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "atomics");
}
