// Ablation: the threshold-switched hybrid (DESIGN.md §5.1). Sweeps the
// inter-node D-D put size under three policies — GDR-always,
// pipeline-always, and the default hybrid — showing the crossover the
// tuning thresholds encode.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "omb/omb.hpp"

using namespace gdrshmem;

namespace {

std::vector<omb::LatencyPoint> sweep(core::Tuning tuning) {
  omb::LatencyConfig cfg;
  cfg.transport = core::TransportKind::kEnhancedGdr;
  cfg.intra_node = false;
  cfg.local = omb::Loc::kDevice;
  cfg.remote = core::Domain::kGpu;
  cfg.sizes = {1024,      4096,      16u << 10, 32u << 10, 64u << 10,
               128u << 10, 256u << 10, 1u << 20};
  cfg.iters = 30;
  cfg.tuning = tuning;
  return omb::run_latency(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  core::Tuning gdr_always;
  gdr_always.direct_gdr_read_limit = SIZE_MAX;
  gdr_always.direct_gdr_write_limit = SIZE_MAX;
  gdr_always.use_proxy = false;

  core::Tuning pipeline_always;
  pipeline_always.direct_gdr_read_limit = 0;
  pipeline_always.direct_gdr_write_limit = 0;

  core::Tuning hybrid;  // defaults

  auto gdr = sweep(gdr_always);
  auto pipe = sweep(pipeline_always);
  auto hyb = sweep(hybrid);

  std::printf("== Ablation: inter-node D-D put latency (us) by protocol policy ==\n");
  std::printf("%-8s %-14s %-16s %-14s %s\n", "size", "GDR-always",
              "pipeline-always", "hybrid", "hybrid picks");
  for (std::size_t i = 0; i < hyb.size(); ++i) {
    double d_gdr = std::abs(hyb[i].latency_us - gdr[i].latency_us);
    double d_pipe = std::abs(hyb[i].latency_us - pipe[i].latency_us);
    const char* pick = d_gdr <= d_pipe ? "gdr" : "pipeline";
    std::printf("%-8s %-14.2f %-16.2f %-14.2f %s\n",
                bench::size_label(hyb[i].bytes).c_str(), gdr[i].latency_us,
                pipe[i].latency_us, hyb[i].latency_us, pick);
    std::string tag = "ablation_thresholds/" + bench::size_label(hyb[i].bytes);
    bench::add_point(tag + "/gdr_always", gdr[i].latency_us);
    bench::add_point(tag + "/pipeline_always", pipe[i].latency_us);
    bench::add_point(tag + "/hybrid", hyb[i].latency_us);
  }
  // The hybrid tracks the best pure policy on pairwise latency to within
  // ~15%: the defaults deliberately switch to the pipeline slightly early
  // because under concurrent application traffic the P2P read serializes on
  // the GPU PCIe slot (see Tuning::direct_gdr_read_limit).
  std::printf("\nhybrid within 15%% of best policy at every size: ");
  bool ok = true;
  for (std::size_t i = 0; i < hyb.size(); ++i) {
    double best = std::min(gdr[i].latency_us, pipe[i].latency_us);
    if (hyb[i].latency_us > 1.15 * best) ok = false;
  }
  std::printf("%s\n\n", ok ? "yes" : "NO");
  return bench::report_and_run(argc, argv, "ablation_thresholds");
}
