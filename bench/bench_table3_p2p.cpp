// Table III: PCIe peer-to-peer (HCA <-> GPU) streaming bandwidth for
// intra-socket and inter-socket placement, as a percentage of the FDR IB
// peak (6,397 MB/s). Measured by timing a 64 MB DMA over the modeled P2P
// path — validating that the simulated fabric reproduces the asymmetry the
// paper's designs are built around.
#include <cstdio>

#include "common.hpp"
#include "hw/topology.hpp"
#include "sim/engine.hpp"

using namespace gdrshmem;

namespace {

double p2p_bandwidth(hw::P2pDir dir, bool intra_socket) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = 1;
  hw::Cluster cluster(cfg);
  // HCA 0 is on socket 0; GPU 0 shares it, GPU 1 is on socket 1.
  int gpu = intra_socket ? 0 : 1;
  sim::Path path = cluster.gdr_leg(0, 0, gpu, dir);
  constexpr std::size_t kBytes = 64u << 20;
  sim::Time done = path.schedule(sim::Time::zero(), kBytes);
  return static_cast<double>(kBytes) / done.to_us();  // bytes/us == MB/s
}

}  // namespace

int main(int argc, char** argv) {
  const double fdr = hw::SystemParams{}.ib_bandwidth_mbps;
  std::printf("== Table III: PCIe P2P bandwidth (MB/s, %% of FDR %.0f MB/s) ==\n",
              fdr);
  std::printf("%-12s %-24s %-24s\n", "", "intra-socket", "inter-socket");
  for (auto [dir, name] : {std::pair{hw::P2pDir::kRead, "P2P read"},
                           std::pair{hw::P2pDir::kWrite, "P2P write"}}) {
    double intra = p2p_bandwidth(dir, true);
    double inter = p2p_bandwidth(dir, false);
    std::printf("%-12s %8.0f MB/s (%3.0f%%)    %8.0f MB/s (%3.0f%%)\n", name,
                intra, 100 * intra / fdr, inter, 100 * inter / fdr);
    std::string tag = std::string("table3/") +
                      (dir == hw::P2pDir::kRead ? "read" : "write");
    bench::add_point(tag + "/intra_socket_mbps", intra);
    bench::add_point(tag + "/inter_socket_mbps", inter);
  }
  std::printf("\n");
  return bench::report_and_run(argc, argv, "table3");
}
