// Table I: feature/design/configuration support matrix of the three
// runtime designs — measured, not asserted: each configuration is probed
// for support (does the op complete?) and for true one-sidedness (does a
// busy target stall an 8 KB put?).
#include <cstdio>

#include "common.hpp"
#include "core/ctx.hpp"
#include "core/runtime.hpp"

using namespace gdrshmem;
using core::Ctx;
using core::Domain;
using core::TransportKind;

namespace {

bool probe_support(TransportKind kind, bool intra, bool local_dev, Domain remote) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 2;
  core::RuntimeOptions opts;
  opts.transport = kind;
  core::Runtime rt(cluster, opts);
  bool ok = true;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(4096, remote);
    std::vector<std::byte> host(4096);
    void* local = local_dev ? ctx.cuda_malloc(4096) : host.data();
    if (ctx.my_pe() == 0) {
      try {
        ctx.putmem(sym, local, 4096, intra ? 1 : 2);
        ctx.quiet();
      } catch (const core::UnsupportedError&) {
        ok = false;
      }
    }
    ctx.barrier_all();
  });
  return ok;
}

/// True one-sidedness probe: 8 KB D-D put with a 300 us busy target — does
/// the communication time stay flat?
bool probe_one_sided(TransportKind kind, bool intra) {
  hw::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.pes_per_node = 2;
  core::RuntimeOptions opts;
  opts.transport = kind;
  core::Runtime rt(cluster, opts);
  double comm_us = 0;
  bool supported = true;
  const int target = intra ? 1 : 2;
  rt.run([&](Ctx& ctx) {
    void* sym = ctx.shmalloc(8192, Domain::kGpu);
    void* local = ctx.cuda_malloc(8192);
    if (ctx.my_pe() == 0) {
      try {
        ctx.putmem(sym, local, 8192, target);
        ctx.quiet();
      } catch (const core::UnsupportedError&) {
        supported = false;
      }
    }
    ctx.barrier_all();
    if (!supported) return;
    if (ctx.my_pe() == 0) {
      sim::Time t0 = ctx.now();
      ctx.putmem(sym, local, 8192, target);
      ctx.quiet();
      comm_us = (ctx.now() - t0).to_us();
    } else if (ctx.my_pe() == target) {
      ctx.compute(sim::Duration::us(300));
    }
    ctx.barrier_all();
  });
  return supported && comm_us < 100.0;
}

const char* yn(bool b) { return b ? "yes" : "NO"; }

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Table I: configuration support and one-sidedness by design ==\n");
  std::printf("%-16s %-8s %-6s %-6s %-6s %-6s %-12s\n", "design", "scope", "H-H",
              "H-D", "D-H", "D-D", "one-sided");
  for (TransportKind kind : {TransportKind::kNaive, TransportKind::kHostPipeline,
                             TransportKind::kEnhancedGdr}) {
    for (bool intra : {true, false}) {
      bool hh = probe_support(kind, intra, false, Domain::kHost);
      bool hd = probe_support(kind, intra, false, Domain::kGpu);
      bool dh = probe_support(kind, intra, true, Domain::kHost);
      bool dd = probe_support(kind, intra, true, Domain::kGpu);
      bool os = dd && probe_one_sided(kind, intra);
      std::printf("%-16s %-8s %-6s %-6s %-6s %-6s %-12s\n", core::to_string(kind),
                  intra ? "intra" : "inter", yn(hh), yn(hd), yn(dh), yn(dd),
                  dd ? yn(os) : "n/a");
      gdrshmem::bench::add_point(
          std::string("table1/") + core::to_string(kind) + "/" +
              (intra ? "intra" : "inter") + "/supported_configs",
          static_cast<double>(hh + hd + dh + dd));
    }
  }
  std::printf("\n");
  return gdrshmem::bench::report_and_run(argc, argv, "table1");
}
