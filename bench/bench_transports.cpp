// Transport-layer bench: the paper-motivated scalability argument for DC.
//
// Three experiments over the endpoint API (verbs-level fixtures — no
// OpenSHMEM runtime, so the transport costs are unobscured):
//
//   * per-endpoint QP memory vs PE count (pure footprint model) — RC's
//     N-1 QP mesh vs DC's constant initiator pool vs UD's single QP;
//   * small-message rate at 4K endpoints — RC pays the QP-context-cache
//     overflow penalty on every op, DC pays at worst a reconnect;
//   * large-message bandwidth, 1 rail vs 2-rail striping.
//
// The bench self-checks the acceptance criteria (DC beats RC on both memory
// and message rate at 4K PEs; 2-rail >= 1.5x bandwidth from 256 KiB) and
// exits non-zero if the model stops delivering them.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "ib/transport.hpp"

using namespace gdrshmem;
using ib::QpKind;
using ib::Transport;
using ib::TransportConfig;

namespace {

struct Fixture {
  sim::Engine eng;
  hw::Cluster cluster;
  cudart::CudaRuntime cuda;
  ib::Verbs verbs;
  std::unique_ptr<Transport> transport;

  Fixture(const TransportConfig& cfg, int nodes, int ppn)
      : cluster([nodes, ppn] {
          hw::ClusterConfig c;
          c.num_nodes = nodes;
          c.pes_per_node = ppn;
          return hw::Cluster(c);
        }()),
        cuda(eng, cluster),
        verbs(eng, cluster, cuda),
        transport(make_transport(verbs, cfg)) {}
};

/// Small-message rate (millions of msgs/s of virtual time): PE 0 posts
/// windows of 8-byte writes round-robin over 64 remote endpoints — a
/// working set far past the DC initiator pool, so DC pays its worst-case
/// reconnect on every op, and still far under RC's all-peers QP mesh.
double message_rate_mmps(QpKind kind, int nodes) {
  Fixture f(TransportConfig{kind, 1, kind != QpKind::kRc}, nodes, 2);
  constexpr int kTargets = 64;
  constexpr int kWindows = 4;
  const int stride = f.cluster.num_pes() / (kTargets + 1);
  std::vector<std::uint64_t> src(1);
  std::vector<std::vector<std::uint64_t>> dst(kTargets,
                                              std::vector<std::uint64_t>(1));
  std::vector<int> targets;
  f.verbs.reg_cache().register_at_init(0, src.data(), sizeof(std::uint64_t));
  for (int t = 0; t < kTargets; ++t) {
    // Spread targets across remote nodes (node 0 hosts PE 0 and 1).
    int pe = 2 + t * stride;
    targets.push_back(pe);
    f.verbs.reg_cache().register_at_init(pe, dst[t].data(),
                                         sizeof(std::uint64_t));
  }
  double us = 0;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    auto& ep = f.transport->endpoint(0);
    sim::Time t0 = f.eng.now();
    for (int w = 0; w < kWindows; ++w) {
      std::vector<sim::CompletionPtr> comps;
      for (int t = 0; t < kTargets; ++t) {
        comps.push_back(ep.rdma_write(p, src.data(), targets[t],
                                      dst[t].data(), sizeof(std::uint64_t)));
      }
      for (auto& c : comps) c->wait(p);
    }
    us = (f.eng.now() - t0).to_us();
  });
  f.eng.run();
  return static_cast<double>(kTargets * kWindows) / us;
}

/// Bandwidth (GB/s of virtual time) of one inter-node host write.
double bandwidth_gbps(QpKind kind, int rails, std::size_t n,
                      double* out_us = nullptr,
                      std::uint64_t* out_segments = nullptr,
                      std::uint64_t* out_ooo = nullptr) {
  Fixture f(TransportConfig{kind, rails, kind != QpKind::kRc}, 2, 2);
  std::vector<std::byte> src(n), dst(n);
  f.verbs.reg_cache().register_at_init(0, src.data(), n);
  f.verbs.reg_cache().register_at_init(2, dst.data(), n);
  double us = 0;
  f.eng.spawn("pe0", [&](sim::Process& p) {
    sim::Time t0 = f.eng.now();
    f.transport->endpoint(0).rdma_write(p, src.data(), 2, dst.data(), n)
        ->wait(p);
    us = (f.eng.now() - t0).to_us();
  });
  f.eng.run();
  if (out_us != nullptr) *out_us = us;
  if (out_segments != nullptr) *out_segments = f.transport->srd_segments();
  if (out_ooo != nullptr) *out_ooo = f.transport->srd_ooo_deliveries();
  return static_cast<double>(n) / (us * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;

  // ---- per-endpoint QP memory vs PE count ---------------------------------
  std::printf("== per-endpoint QP memory (KiB) vs endpoints ==\n");
  std::printf("%-10s %-12s %-12s %-12s %-12s %-14s\n", "endpoints", "rc",
              "rc+srq", "dc", "ud", "srd");
  Fixture model(TransportConfig{}, 2, 2);
  auto rc_srq = make_transport(model.verbs, TransportConfig{QpKind::kRc, 1, true});
  auto dc = make_transport(model.verbs, TransportConfig{QpKind::kDc, 1, true});
  auto ud = make_transport(model.verbs, TransportConfig{QpKind::kUd, 1, true});
  auto srd = make_transport(model.verbs, TransportConfig{QpKind::kSrd, 1, true});
  double rc_mem_4k = 0, dc_mem_4k = 0;
  for (int n : {256, 1024, 4096, 16384}) {
    auto frc = model.transport->footprint(n);
    auto fsrq = rc_srq->footprint(n);
    auto fdc = dc->footprint(n);
    auto fud = ud->footprint(n);
    auto fsrd = srd->footprint(n);
    std::printf("%-10d %-12.1f %-12.1f %-12.1f %-12.1f %-14.1f\n", n,
                frc.total_bytes() / 1024.0, fsrq.total_bytes() / 1024.0,
                fdc.total_bytes() / 1024.0, fud.total_bytes() / 1024.0,
                fsrd.total_bytes() / 1024.0);
    std::string tag = "transports/qp_mem/" + std::to_string(n) + "ep";
    bench::add_metric(tag + "/rc_kib", frc.total_bytes() / 1024.0);
    bench::add_metric(tag + "/dc_kib", fdc.total_bytes() / 1024.0);
    bench::add_metric(tag + "/ud_kib", fud.total_bytes() / 1024.0);
    bench::add_metric(tag + "/srd_kib", fsrd.total_bytes() / 1024.0);
    if (n == 4096) {
      rc_mem_4k = static_cast<double>(frc.total_bytes());
      dc_mem_4k = static_cast<double>(fdc.total_bytes());
    }
  }

  // ---- message rate at scale ----------------------------------------------
  std::printf("\n== 8B message rate over 64 remote targets (Mmsg/s) ==\n");
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "pes", "rc", "dc", "ud",
              "srd");
  double rc_rate_4k = 0, dc_rate_4k = 0;
  for (int nodes : {128, 2048}) {
    const int pes = nodes * 2;
    double rc = message_rate_mmps(QpKind::kRc, nodes);
    double dcr = message_rate_mmps(QpKind::kDc, nodes);
    double udr = message_rate_mmps(QpKind::kUd, nodes);
    double srdr = message_rate_mmps(QpKind::kSrd, nodes);
    std::printf("%-10d %-12.3f %-12.3f %-12.3f %-12.3f\n", pes, rc, dcr, udr,
                srdr);
    std::string tag = "transports/msgrate/" + std::to_string(pes) + "pe";
    bench::add_point(tag + "/rc_us_per_msg", 1.0 / rc);
    bench::add_point(tag + "/dc_us_per_msg", 1.0 / dcr);
    bench::add_point(tag + "/ud_us_per_msg", 1.0 / udr);
    bench::add_point(tag + "/srd_us_per_msg", 1.0 / srdr);
    if (nodes == 2048) {
      rc_rate_4k = rc;
      dc_rate_4k = dcr;
    }
  }

  // ---- 1-rail vs 2-rail bandwidth -----------------------------------------
  std::printf("\n== inter-node H->H bandwidth, 1 vs 2 rails (GB/s) ==\n");
  std::printf("%-10s %-12s %-12s %-10s\n", "size", "1rail", "2rail", "speedup");
  double min_big_speedup = 1e9;
  for (std::size_t n : {64u << 10, 256u << 10, 1u << 20, 4u << 20}) {
    double us1 = 0, us2 = 0;
    double bw1 = bandwidth_gbps(QpKind::kRc, 1, n, &us1);
    double bw2 = bandwidth_gbps(QpKind::kRc, 2, n, &us2);
    double speedup = bw2 / bw1;
    std::printf("%-10s %-12.2f %-12.2f %-10.2f\n",
                bench::size_label(n).c_str(), bw1, bw2, speedup);
    std::string tag = "transports/rails/" + bench::size_label(n);
    bench::add_point(tag + "/1rail_us", us1);
    bench::add_point(tag + "/2rail_us", us2);
    if (n >= (256u << 10)) min_big_speedup = std::min(min_big_speedup, speedup);
  }

  // ---- srd: segment spraying vs in-order rc -------------------------------
  // Same one-op probe through the relaxed-ordering transport: per-segment
  // overhead and delivery jitter cost a few percent vs rc, and 2-rail
  // per-segment spraying recovers the striping speedup without rc's
  // stripe-threshold carve-up.
  std::printf("\n== srd H->H bandwidth, spray across rails (GB/s) ==\n");
  std::printf("%-10s %-12s %-12s %-12s %-10s\n", "size", "rc-1rail",
              "srd-1rail", "srd-2rail", "segs(ooo)");
  double srd_over_rc_4m = 0, srd_spray_speedup_4m = 0;
  for (std::size_t n : {256u << 10, 1u << 20, 4u << 20}) {
    double rc_us = 0, us1 = 0, us2 = 0;
    std::uint64_t segs = 0, ooo = 0;
    double rc_bw = bandwidth_gbps(QpKind::kRc, 1, n, &rc_us);
    double bw1 = bandwidth_gbps(QpKind::kSrd, 1, n, &us1);
    double bw2 = bandwidth_gbps(QpKind::kSrd, 2, n, &us2, &segs, &ooo);
    char seg_label[32];
    std::snprintf(seg_label, sizeof seg_label, "%llu(%llu)",
                  static_cast<unsigned long long>(segs),
                  static_cast<unsigned long long>(ooo));
    std::printf("%-10s %-12.2f %-12.2f %-12.2f %-10s\n",
                bench::size_label(n).c_str(), rc_bw, bw1, bw2, seg_label);
    std::string tag = "transports/srd/" + bench::size_label(n);
    bench::add_point(tag + "/1rail_us", us1);
    bench::add_point(tag + "/2rail_us", us2);
    if (n == (4u << 20)) {
      srd_over_rc_4m = bw1 / rc_bw;
      srd_spray_speedup_4m = bw2 / bw1;
      bench::add_metric("transports/srd/segments_4M",
                        static_cast<double>(segs));
      bench::add_metric("transports/srd/ooo_deliveries_4M",
                        static_cast<double>(ooo));
    }
  }

  // ---- acceptance self-checks ---------------------------------------------
  bench::add_metric("transports/rc_over_dc_mem_4k_x", rc_mem_4k / dc_mem_4k);
  bench::add_metric("transports/dc_over_rc_msgrate_4k_x",
                    dc_rate_4k / rc_rate_4k);
  bench::add_metric("transports/min_2rail_speedup_256K_up", min_big_speedup);
  if (dc_mem_4k >= rc_mem_4k) {
    std::fprintf(stderr, "FAIL: DC QP memory (%.0f B) not below RC (%.0f B) "
                 "at 4096 endpoints\n", dc_mem_4k, rc_mem_4k);
    ++failures;
  }
  if (dc_rate_4k <= rc_rate_4k) {
    std::fprintf(stderr, "FAIL: DC message rate (%.3f Mmsg/s) not above RC "
                 "(%.3f Mmsg/s) at 4096 PEs\n", dc_rate_4k, rc_rate_4k);
    ++failures;
  }
  if (min_big_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: 2-rail speedup %.2fx below 1.5x at >= 256 KiB\n",
                 min_big_speedup);
    ++failures;
  }
  bench::add_metric("transports/srd_over_rc_bw_4M_x", srd_over_rc_4m);
  bench::add_metric("transports/srd_2rail_spray_speedup_4M_x",
                    srd_spray_speedup_4m);
  if (srd_over_rc_4m < 0.80) {
    std::fprintf(stderr, "FAIL: srd 4 MiB bandwidth %.2fx of rc — "
                 "segmentation overhead above 20%%\n", srd_over_rc_4m);
    ++failures;
  }
  if (srd_spray_speedup_4m < 1.5) {
    std::fprintf(stderr, "FAIL: srd 2-rail spray speedup %.2fx below 1.5x "
                 "at 4 MiB\n", srd_spray_speedup_4m);
    ++failures;
  }
  if (failures != 0) return failures;

  std::printf("\n");
  return bench::report_and_run(argc, argv, "transports");
}
