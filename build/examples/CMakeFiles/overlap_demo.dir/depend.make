# Empty dependencies file for overlap_demo.
# This may be replaced when dependencies are built.
