file(REMOVE_RECURSE
  "CMakeFiles/overlap_demo.dir/overlap_demo.cpp.o"
  "CMakeFiles/overlap_demo.dir/overlap_demo.cpp.o.d"
  "overlap_demo"
  "overlap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
