# Empty dependencies file for stencil_demo.
# This may be replaced when dependencies are built.
