file(REMOVE_RECURSE
  "CMakeFiles/stencil_demo.dir/stencil_demo.cpp.o"
  "CMakeFiles/stencil_demo.dir/stencil_demo.cpp.o.d"
  "stencil_demo"
  "stencil_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
