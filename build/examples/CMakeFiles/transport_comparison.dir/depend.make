# Empty dependencies file for transport_comparison.
# This may be replaced when dependencies are built.
