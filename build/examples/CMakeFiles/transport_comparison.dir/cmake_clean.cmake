file(REMOVE_RECURSE
  "CMakeFiles/transport_comparison.dir/transport_comparison.cpp.o"
  "CMakeFiles/transport_comparison.dir/transport_comparison.cpp.o.d"
  "transport_comparison"
  "transport_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
