file(REMOVE_RECURSE
  "CMakeFiles/latency_explorer.dir/latency_explorer.cpp.o"
  "CMakeFiles/latency_explorer.dir/latency_explorer.cpp.o.d"
  "latency_explorer"
  "latency_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
