# Empty dependencies file for latency_explorer.
# This may be replaced when dependencies are built.
