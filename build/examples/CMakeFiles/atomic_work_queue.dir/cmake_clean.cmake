file(REMOVE_RECURSE
  "CMakeFiles/atomic_work_queue.dir/atomic_work_queue.cpp.o"
  "CMakeFiles/atomic_work_queue.dir/atomic_work_queue.cpp.o.d"
  "atomic_work_queue"
  "atomic_work_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
