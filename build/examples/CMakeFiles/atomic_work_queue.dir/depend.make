# Empty dependencies file for atomic_work_queue.
# This may be replaced when dependencies are built.
