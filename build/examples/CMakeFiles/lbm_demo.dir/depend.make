# Empty dependencies file for lbm_demo.
# This may be replaced when dependencies are built.
