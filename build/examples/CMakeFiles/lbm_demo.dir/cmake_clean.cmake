file(REMOVE_RECURSE
  "CMakeFiles/lbm_demo.dir/lbm_demo.cpp.o"
  "CMakeFiles/lbm_demo.dir/lbm_demo.cpp.o.d"
  "lbm_demo"
  "lbm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
