file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_sim.dir/engine.cpp.o"
  "CMakeFiles/gdrshmem_sim.dir/engine.cpp.o.d"
  "libgdrshmem_sim.a"
  "libgdrshmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
