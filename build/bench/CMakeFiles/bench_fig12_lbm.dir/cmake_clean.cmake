file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lbm.dir/bench_fig12_lbm.cpp.o"
  "CMakeFiles/bench_fig12_lbm.dir/bench_fig12_lbm.cpp.o.d"
  "bench_fig12_lbm"
  "bench_fig12_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
