file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_proxy.dir/bench_ablation_proxy.cpp.o"
  "CMakeFiles/bench_ablation_proxy.dir/bench_ablation_proxy.cpp.o.d"
  "bench_ablation_proxy"
  "bench_ablation_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
