# Empty dependencies file for bench_fig9_internode_hd_dh.
# This may be replaced when dependencies are built.
