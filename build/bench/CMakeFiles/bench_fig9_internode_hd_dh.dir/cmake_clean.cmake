file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_internode_hd_dh.dir/bench_fig9_internode_hd_dh.cpp.o"
  "CMakeFiles/bench_fig9_internode_hd_dh.dir/bench_fig9_internode_hd_dh.cpp.o.d"
  "bench_fig9_internode_hd_dh"
  "bench_fig9_internode_hd_dh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_internode_hd_dh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
