file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_overlap.dir/bench_fig10_overlap.cpp.o"
  "CMakeFiles/bench_fig10_overlap.dir/bench_fig10_overlap.cpp.o.d"
  "bench_fig10_overlap"
  "bench_fig10_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
