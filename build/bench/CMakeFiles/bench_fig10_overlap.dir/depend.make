# Empty dependencies file for bench_fig10_overlap.
# This may be replaced when dependencies are built.
