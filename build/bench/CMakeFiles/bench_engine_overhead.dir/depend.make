# Empty dependencies file for bench_engine_overhead.
# This may be replaced when dependencies are built.
