file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_overhead.dir/bench_engine_overhead.cpp.o"
  "CMakeFiles/bench_engine_overhead.dir/bench_engine_overhead.cpp.o.d"
  "bench_engine_overhead"
  "bench_engine_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
