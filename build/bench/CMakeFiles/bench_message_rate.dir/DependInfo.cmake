
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_message_rate.cpp" "bench/CMakeFiles/bench_message_rate.dir/bench_message_rate.cpp.o" "gcc" "bench/CMakeFiles/bench_message_rate.dir/bench_message_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/gdrshmem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/omb/CMakeFiles/gdrshmem_omb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gdrshmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/gdrshmem_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/cudart/CMakeFiles/gdrshmem_cudart.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gdrshmem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gdrshmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
