# Empty compiler generated dependencies file for bench_message_rate.
# This may be replaced when dependencies are built.
