file(REMOVE_RECURSE
  "CMakeFiles/bench_message_rate.dir/bench_message_rate.cpp.o"
  "CMakeFiles/bench_message_rate.dir/bench_message_rate.cpp.o.d"
  "bench_message_rate"
  "bench_message_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
