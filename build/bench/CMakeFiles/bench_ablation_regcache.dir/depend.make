# Empty dependencies file for bench_ablation_regcache.
# This may be replaced when dependencies are built.
