file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regcache.dir/bench_ablation_regcache.cpp.o"
  "CMakeFiles/bench_ablation_regcache.dir/bench_ablation_regcache.cpp.o.d"
  "bench_ablation_regcache"
  "bench_ablation_regcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
