file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_internode_dd.dir/bench_fig8_internode_dd.cpp.o"
  "CMakeFiles/bench_fig8_internode_dd.dir/bench_fig8_internode_dd.cpp.o.d"
  "bench_fig8_internode_dd"
  "bench_fig8_internode_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_internode_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
