# Empty dependencies file for bench_fig8_internode_dd.
# This may be replaced when dependencies are built.
