# Empty dependencies file for bench_fig11_stencil2d.
# This may be replaced when dependencies are built.
