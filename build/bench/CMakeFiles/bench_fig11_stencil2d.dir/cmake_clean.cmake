file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_stencil2d.dir/bench_fig11_stencil2d.cpp.o"
  "CMakeFiles/bench_fig11_stencil2d.dir/bench_fig11_stencil2d.cpp.o.d"
  "bench_fig11_stencil2d"
  "bench_fig11_stencil2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_stencil2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
