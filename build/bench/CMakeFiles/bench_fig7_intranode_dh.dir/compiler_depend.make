# Empty compiler generated dependencies file for bench_fig7_intranode_dh.
# This may be replaced when dependencies are built.
