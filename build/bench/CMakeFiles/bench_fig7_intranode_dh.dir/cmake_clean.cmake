file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_intranode_dh.dir/bench_fig7_intranode_dh.cpp.o"
  "CMakeFiles/bench_fig7_intranode_dh.dir/bench_fig7_intranode_dh.cpp.o.d"
  "bench_fig7_intranode_dh"
  "bench_fig7_intranode_dh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_intranode_dh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
