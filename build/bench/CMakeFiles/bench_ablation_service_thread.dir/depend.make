# Empty dependencies file for bench_ablation_service_thread.
# This may be replaced when dependencies are built.
