file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_service_thread.dir/bench_ablation_service_thread.cpp.o"
  "CMakeFiles/bench_ablation_service_thread.dir/bench_ablation_service_thread.cpp.o.d"
  "bench_ablation_service_thread"
  "bench_ablation_service_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_service_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
