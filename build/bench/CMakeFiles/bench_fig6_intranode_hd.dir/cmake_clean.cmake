file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_intranode_hd.dir/bench_fig6_intranode_hd.cpp.o"
  "CMakeFiles/bench_fig6_intranode_hd.dir/bench_fig6_intranode_hd.cpp.o.d"
  "bench_fig6_intranode_hd"
  "bench_fig6_intranode_hd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_intranode_hd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
