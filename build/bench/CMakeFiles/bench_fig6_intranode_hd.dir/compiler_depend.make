# Empty compiler generated dependencies file for bench_fig6_intranode_hd.
# This may be replaced when dependencies are built.
