# Empty dependencies file for bench_table2_latency_gap.
# This may be replaced when dependencies are built.
