file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_latency_gap.dir/bench_table2_latency_gap.cpp.o"
  "CMakeFiles/bench_table2_latency_gap.dir/bench_table2_latency_gap.cpp.o.d"
  "bench_table2_latency_gap"
  "bench_table2_latency_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_latency_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
