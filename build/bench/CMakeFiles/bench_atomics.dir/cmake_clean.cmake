file(REMOVE_RECURSE
  "CMakeFiles/bench_atomics.dir/bench_atomics.cpp.o"
  "CMakeFiles/bench_atomics.dir/bench_atomics.cpp.o.d"
  "bench_atomics"
  "bench_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
