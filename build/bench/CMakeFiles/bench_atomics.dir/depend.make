# Empty dependencies file for bench_atomics.
# This may be replaced when dependencies are built.
