// GPULBM: multiphase Lattice Boltzmann evolution redesigned over GPU-domain
// OpenSHMEM (paper Section IV). The original is Rosales' distributed CUDA
// multiphase code; we implement a compact D3Q7 two-distribution (phase f /
// momentum g) lattice with the paper's communication structure:
//
//   * 3D grid decomposed along Z; x/y periodic locally, z periodic globally,
//   * three one-sided halo exchanges per evolution step, with the paper's
//     message sizes (X*Y*elems*sizeof(float)):
//       A: phase-field boundary planes            (1 element)
//       B: z-crossing phase distributions f       (1 element)
//       C: z-crossing momentum distributions g
//          plus boundary moments rho,u,mu         (6 elements)
//
// The lattice update is real arithmetic with exact per-site conservation of
// phase mass (sum f) and fluid mass (sum g) up to rounding — the invariant
// the tests check.
#pragma once

#include <cstddef>

#include "core/runtime.hpp"

namespace gdrshmem::apps {

struct LbmConfig {
  std::size_t x = 32, y = 32, z = 32;  // global lattice; z % n_pes == 0
  int iterations = 20;
  /// Real lattice math (tests) vs cost-only kernels (large sweeps).
  bool functional = true;
  /// Exchange halos with blocking per-message completion, like the original
  /// CUDA-aware MPI send/recv version the paper's Fig 12 baselines against;
  /// false = the redesigned asynchronous put_nbi + quiet exchange.
  bool blocking_exchange = false;
  /// Total GPU cost per lattice site per evolution step (ns), split across
  /// the moments/laplacian/collision/streaming kernels.
  double per_cell_ns = 3.0;
  // Physics knobs (stability: taus > 0.5).
  float tau_f = 0.9f;
  float tau_g = 0.8f;
  float gamma = 0.01f;       // interface mobility term
  float kforce = 1e-4f;      // bulk phase force (zero-sum across g5/g6)
  float kboundary = 1e-4f;   // boundary coupling using received moments
};

struct LbmResult {
  double evolution_ms = 0;   // virtual time of the evolution loop
  double phase_mass_initial = 0, phase_mass_final = 0;  // sum of phi
  double fluid_mass_initial = 0, fluid_mass_final = 0;  // sum of rho
  std::uint64_t halo_bytes_per_step = 0;  // per PE, all three exchanges
};

LbmResult run_lbm(const hw::ClusterConfig& cluster,
                  const core::RuntimeOptions& opts, const LbmConfig& cfg);

}  // namespace gdrshmem::apps
