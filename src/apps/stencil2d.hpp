// Stencil2D application kernel (SHOC benchmark suite), redesigned over
// GPU-domain OpenSHMEM as in the paper's Section V-C: a 9-point double
// precision stencil on a 2D process grid, halo exchange via one-sided puts
// directly from/to GPU symmetric memory.
#pragma once

#include <cstddef>

#include "core/runtime.hpp"

namespace gdrshmem::apps {

struct Stencil2DConfig {
  std::size_t nx = 1024;  // global rows
  std::size_t ny = 1024;  // global cols
  int px = 2;             // process grid rows (px * py == n_pes)
  int py = 2;
  int iterations = 100;
  /// Perform the real floating-point update (tests) or only charge its
  /// simulated cost (large benchmark runs).
  bool functional = true;
  /// GPU per-cell update cost (ns) — calibrated to a K20-class stencil.
  double per_cell_ns = 0.45;
  // 9-point weights (wc + 4*we + 4*wd should be ~1 for stability).
  double wc = 0.5;
  double we = 0.1;
  double wd = 0.025;
};

struct Stencil2DResult {
  double exec_time_ms = 0;   // evolution loop, virtual time
  double checksum = 0;       // sum over the interior (functional runs)
  std::uint64_t cells_updated = 0;
};

/// Runs the stencil on a fresh runtime built from `cluster`/`opts`.
/// Requires cfg.px * cfg.py == number of PEs and divisible tile sizes.
Stencil2DResult run_stencil2d(const hw::ClusterConfig& cluster,
                              const core::RuntimeOptions& opts,
                              const Stencil2DConfig& cfg);

/// Device-initiated variant: ONE resident kernel per PE runs every
/// iteration, exchanging halos with in-kernel put-with-signal through the
/// runtime's device backend (GPU-IB or reverse offload) instead of
/// terminating the kernel around each exchange — no kernel-split, no
/// per-iteration barrier. Column halos are parity-buffered (two slots,
/// alternating per iteration) and arrival is tracked by four monotonically
/// increasing signal words, so iteration i+1's puts can never overwrite a
/// halo iteration i has not consumed. Arithmetic order matches the
/// host-driven variant exactly: functional runs produce bit-identical
/// checksums on every backend.
Stencil2DResult run_stencil2d_device(
    const hw::ClusterConfig& cluster, const core::RuntimeOptions& opts,
    const Stencil2DConfig& cfg,
    core::DeviceScope scope = core::DeviceScope::kThread);

/// Serial reference implementation (host), for validating functional runs.
double stencil2d_reference_checksum(const Stencil2DConfig& cfg);

}  // namespace gdrshmem::apps
