#include "apps/lbm.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "core/ctx.hpp"

namespace gdrshmem::apps {

using core::Ctx;
using core::Domain;

namespace {

// D3Q7 lattice: rest + one velocity per axis direction.
constexpr int kQ = 7;
constexpr int kCx[kQ] = {0, 1, -1, 0, 0, 0, 0};
constexpr int kCy[kQ] = {0, 0, 0, 1, -1, 0, 0};
constexpr int kCz[kQ] = {0, 0, 0, 0, 0, 1, -1};
constexpr float kW[kQ] = {0.25f, 0.125f, 0.125f, 0.125f, 0.125f, 0.125f, 0.125f};
constexpr int kUp = 5;    // +z crossing distribution
constexpr int kDown = 6;  // -z crossing distribution

float initial_phi(std::size_t gx, std::size_t gy, std::size_t gz) {
  // A deterministic two-phase blob pattern.
  return ((gx * 13 + gy * 7 + gz * 3) % 97 < 40) ? 1.0f : -1.0f;
}

}  // namespace

LbmResult run_lbm(const hw::ClusterConfig& cluster,
                  const core::RuntimeOptions& opts, const LbmConfig& cfg) {
  core::Runtime rt(cluster, opts);
  const int np = rt.num_pes();
  if (cfg.z % static_cast<std::size_t>(np) != 0) {
    throw core::ShmemError("lbm: Z must divide evenly across PEs");
  }

  LbmResult result;
  rt.run([&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const std::size_t X = cfg.x, Y = cfg.y;
    const std::size_t lz = cfg.z / static_cast<std::size_t>(np);
    const std::size_t P = X * Y;                 // plane size (sites)
    const std::size_t S = (lz + 2) * P;          // field size incl. z halos
    const int up = (me + 1) % np;
    const int down = (me - 1 + np) % np;

    auto field = [&] {
      return static_cast<float*>(ctx.shmalloc(S * sizeof(float), Domain::kGpu));
    };
    std::array<float*, kQ> f{}, fn{}, g{}, gn{};
    for (int i = 0; i < kQ; ++i) f[i] = field();
    for (int i = 0; i < kQ; ++i) fn[i] = field();
    for (int i = 0; i < kQ; ++i) g[i] = field();
    for (int i = 0; i < kQ; ++i) gn[i] = field();
    float* phi = field();
    float* lap = field();
    float* rho = field();
    float* ux = field();
    float* uy = field();
    float* uz = field();
    float* mu = field();

    // Halo put: the redesigned code uses asynchronous one-sided puts; the
    // MPI-style baseline waits for each message (sendrecv semantics).
    auto halo_put = [&](void* dst_sym, const void* src, std::size_t n, int pe) {
      if (cfg.blocking_exchange) {
        ctx.putmem(dst_sym, src, n, pe);
        ctx.quiet();
      } else {
        ctx.putmem_nbi(dst_sym, src, n, pe);
      }
    };
    auto site = [&](std::size_t x, std::size_t y, std::size_t zz) {
      return (zz * Y + y) * X + x;
    };
    auto plane = [&](float* fld, std::size_t zz) { return fld + zz * P; };

    // ---- initialization ----------------------------------------------------
    for (std::size_t s = 0; s < S; ++s) {
      for (int i = 0; i < kQ; ++i) {
        f[i][s] = 0;
        g[i][s] = 0;
        fn[i][s] = 0;
        gn[i][s] = 0;
      }
      phi[s] = lap[s] = rho[s] = ux[s] = uy[s] = uz[s] = mu[s] = 0;
    }
    if (cfg.functional) {
      for (std::size_t zz = 1; zz <= lz; ++zz) {
        std::size_t gz = static_cast<std::size_t>(me) * lz + zz - 1;
        for (std::size_t y = 0; y < Y; ++y) {
          for (std::size_t x = 0; x < X; ++x) {
            float p0 = initial_phi(x, y, gz);
            for (int i = 0; i < kQ; ++i) {
              f[i][site(x, y, zz)] = kW[i] * p0;
              g[i][site(x, y, zz)] = kW[i] * 1.0f;  // rho0 = 1
            }
          }
        }
      }
    }
    ctx.barrier_all();

    auto local_mass = [&](const std::array<float*, kQ>& dist) {
      double m = 0;
      for (std::size_t zz = 1; zz <= lz; ++zz) {
        for (std::size_t s = zz * P; s < (zz + 1) * P; ++s) {
          for (int i = 0; i < kQ; ++i) m += dist[i][s];
        }
      }
      return m;
    };
    auto* partial = static_cast<double*>(ctx.shmalloc(2 * sizeof(double)));
    auto* total = static_cast<double*>(ctx.shmalloc(2 * sizeof(double)));
    partial[0] = local_mass(f);
    partial[1] = local_mass(g);
    ctx.team_reduce(ctx.team_world(), total, partial, 2, core::ReduceOp::kSum);
    double mass0_phase = total[0], mass0_fluid = total[1];

    const double kn = cfg.per_cell_ns;
    const std::size_t cells = lz * P;

    // ---- evolution loop (the phase the paper measures) ---------------------
    sim::Time t0 = ctx.now();
    for (int iter = 0; iter < cfg.iterations; ++iter) {
      // Kernel 1: moments.
      ctx.launch_kernel(cells, 0.20 * kn, [&] {
        if (!cfg.functional) return;
        for (std::size_t s = P; s < (lz + 1) * P; ++s) {
          float p = 0, r = 0, vx = 0, vy = 0, vz = 0;
          for (int i = 0; i < kQ; ++i) {
            p += f[i][s];
            r += g[i][s];
            vx += kCx[i] * g[i][s];
            vy += kCy[i] * g[i][s];
            vz += kCz[i] * g[i][s];
          }
          phi[s] = p;
          rho[s] = r;
          float inv = r != 0.0f ? 1.0f / r : 0.0f;
          ux[s] = vx * inv;
          uy[s] = vy * inv;
          uz[s] = vz * inv;
          mu[s] = p * p * p - p;  // double-well chemical potential (bulk)
        }
      });

      // Exchange A (1 element): phase-field boundary planes.
      halo_put(plane(phi, 0), plane(phi, lz), P * sizeof(float), up);
      halo_put(plane(phi, lz + 1), plane(phi, 1), P * sizeof(float), down);
      ctx.quiet();
      ctx.barrier_all();

      // Kernel 2: laplacian of phi (7-point; x/y periodic, z via halos).
      ctx.launch_kernel(cells, 0.15 * kn, [&] {
        if (!cfg.functional) return;
        for (std::size_t zz = 1; zz <= lz; ++zz) {
          for (std::size_t y = 0; y < Y; ++y) {
            for (std::size_t x = 0; x < X; ++x) {
              std::size_t s = site(x, y, zz);
              float c = phi[s];
              float sum = phi[site((x + 1) % X, y, zz)] +
                          phi[site((x + X - 1) % X, y, zz)] +
                          phi[site(x, (y + 1) % Y, zz)] +
                          phi[site(x, (y + Y - 1) % Y, zz)] +
                          phi[site(x, y, zz + 1)] + phi[site(x, y, zz - 1)];
              lap[s] = sum - 6.0f * c;
            }
          }
        }
      });

      // Kernel 3: collision (BGK, exactly mass-conserving) + forces.
      ctx.launch_kernel(cells, 0.40 * kn, [&] {
        if (!cfg.functional) return;
        for (std::size_t zz = 1; zz <= lz; ++zz) {
          for (std::size_t s = zz * P; s < (zz + 1) * P; ++s) {
            float p = phi[s], l = lap[s], r = rho[s];
            // Phase distribution: feq sums to phi by construction.
            float feq_side = 0.125f * p + cfg.gamma * l;
            float feq0 = p - 6.0f * feq_side;
            f[0][s] -= (f[0][s] - feq0) / cfg.tau_f;
            for (int i = 1; i < kQ; ++i) {
              f[i][s] -= (f[i][s] - feq_side) / cfg.tau_f;
            }
            // Momentum distribution: geq sums to rho (sum_i w_i c_i = 0).
            for (int i = 0; i < kQ; ++i) {
              float cu = kCx[i] * ux[s] + kCy[i] * uy[s] + kCz[i] * uz[s];
              float geq = kW[i] * r * (1.0f + 3.0f * cu);
              g[i][s] -= (g[i][s] - geq) / cfg.tau_g;
            }
            // Interface force along z: zero-sum (+F to g5, -F to g6).
            float fz = cfg.kforce * mu[s] * l;
            g[kUp][s] += fz;
            g[kDown][s] -= fz;
          }
          // Boundary coupling: the planes adjacent to a halo use the
          // neighbor moments received last step (exchange C) in a zero-sum
          // shear/pressure term.
          if (zz == 1 || zz == lz) {
            std::size_t hz = (zz == 1) ? 0 : lz + 1;
            for (std::size_t i2 = 0; i2 < P; ++i2) {
              std::size_t s = zz * P + i2;
              std::size_t h = hz * P + i2;
              float shear = cfg.kboundary *
                            ((ux[h] - ux[s]) + (uy[h] - uy[s]) + (uz[h] - uz[s]) +
                             (rho[h] - rho[s]) + (mu[h] - mu[s]));
              g[kUp][s] += shear;
              g[kDown][s] -= shear;
            }
          }
        }
      });

      // Exchange B (1 element): z-crossing phase distributions.
      halo_put(plane(f[kUp], 0), plane(f[kUp], lz), P * sizeof(float), up);
      halo_put(plane(f[kDown], lz + 1), plane(f[kDown], 1), P * sizeof(float),
               down);
      ctx.quiet();
      ctx.barrier_all();

      // Exchange C (6 elements): z-crossing momentum distributions plus the
      // boundary moments used by next step's boundary coupling.
      halo_put(plane(g[kUp], 0), plane(g[kUp], lz), P * sizeof(float), up);
      halo_put(plane(g[kDown], lz + 1), plane(g[kDown], 1), P * sizeof(float),
               down);
      for (float* m : {rho, ux, uy, uz, mu}) {
        halo_put(plane(m, 0), plane(m, lz), P * sizeof(float), up);
        halo_put(plane(m, lz + 1), plane(m, 1), P * sizeof(float), down);
      }
      ctx.quiet();
      ctx.barrier_all();

      // Kernel 4: streaming (pull), x/y periodic, z through the halos.
      ctx.launch_kernel(cells, 0.25 * kn, [&] {
        if (!cfg.functional) return;
        for (std::size_t zz = 1; zz <= lz; ++zz) {
          for (std::size_t y = 0; y < Y; ++y) {
            for (std::size_t x = 0; x < X; ++x) {
              std::size_t s = site(x, y, zz);
              for (int i = 0; i < kQ; ++i) {
                auto sx = static_cast<std::size_t>(
                    (static_cast<long>(x) - kCx[i] + static_cast<long>(X)) %
                    static_cast<long>(X));
                auto sy = static_cast<std::size_t>(
                    (static_cast<long>(y) - kCy[i] + static_cast<long>(Y)) %
                    static_cast<long>(Y));
                auto sz = static_cast<std::size_t>(static_cast<long>(zz) - kCz[i]);
                std::size_t src = site(sx, sy, sz);
                fn[i][s] = f[i][src];
                gn[i][s] = g[i][src];
              }
            }
          }
        }
      });
      std::swap(f, fn);
      std::swap(g, gn);
    }
    ctx.barrier_all();
    double elapsed_ms = (ctx.now() - t0).to_ms();

    partial[0] = local_mass(f);
    partial[1] = local_mass(g);
    ctx.team_reduce(ctx.team_world(), total, partial, 2, core::ReduceOp::kSum);
    if (me == 0) {
      result.evolution_ms = elapsed_ms;
      result.phase_mass_initial = mass0_phase;
      result.phase_mass_final = total[0];
      result.fluid_mass_initial = mass0_fluid;
      result.fluid_mass_final = total[1];
      result.halo_bytes_per_step = 2 * (1 + 1 + 6) * P * sizeof(float);
    }
    ctx.barrier_all();
  });
  return result;
}

}  // namespace gdrshmem::apps
