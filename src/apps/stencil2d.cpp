#include "apps/stencil2d.hpp"

#include <cstring>
#include <vector>

#include "core/ctx.hpp"
#include "core/device_api.hpp"

namespace gdrshmem::apps {

using core::Ctx;
using core::Domain;

namespace {

/// Deterministic initial condition by global coordinates.
double initial_value(std::size_t gi, std::size_t gj) {
  return static_cast<double>((gi * 31 + gj * 17) % 101) * 0.01;
}

struct Tile {
  std::size_t lnx, lny;  // interior rows/cols
  std::size_t pitch;     // lny + 2
  std::size_t idx(std::size_t i, std::size_t j) const { return i * pitch + j; }
};

/// Global checksum of the interior: a two-stage reduction along the process
/// grid — sum across my row team, then across my column team — so each stage
/// only spans one grid dimension. Shared by the host-driven and
/// device-initiated variants (identical reduction order keeps their
/// checksums bit-identical).
double global_checksum(core::Ctx& ctx, const Stencil2DConfig& cfg,
                       double my_partial) {
  auto* partial = static_cast<double*>(ctx.shmalloc(sizeof(double)));
  auto* rowsum = static_cast<double*>(ctx.shmalloc(sizeof(double)));
  auto* total = static_cast<double*>(ctx.shmalloc(sizeof(double)));
  *partial = my_partial;
  if (cfg.px > 1 && cfg.py > 1 &&
      cfg.px + cfg.py < core::coll::SyncLayout::kMaxTeams) {
    // Row r = PEs [r*py, (r+1)*py), stride 1; column c = {c, c+py, ...},
    // stride py. Splits are collective over the world team, so every PE
    // participates in all of them; each keeps only its own row/column.
    core::Team* row = nullptr;
    core::Team* col = nullptr;
    for (int r = 0; r < cfg.px; ++r) {
      core::Team* tm =
          ctx.team_split_strided(ctx.team_world(), r * cfg.py, 1, cfg.py);
      if (tm != nullptr) row = tm;
    }
    for (int c = 0; c < cfg.py; ++c) {
      core::Team* tm =
          ctx.team_split_strided(ctx.team_world(), c, cfg.py, cfg.px);
      if (tm != nullptr) col = tm;
    }
    ctx.team_reduce(*row, rowsum, partial, 1, core::ReduceOp::kSum);
    ctx.team_reduce(*col, total, rowsum, 1, core::ReduceOp::kSum);
    ctx.team_destroy(row);
    ctx.team_destroy(col);
  } else {
    // 1-D decompositions (or grids needing more team slots than the sync
    // pool holds) reduce over the world team directly.
    ctx.sum_to_all(total, partial, 1);
  }
  return *total;
}

}  // namespace

Stencil2DResult run_stencil2d(const hw::ClusterConfig& cluster,
                              const core::RuntimeOptions& opts,
                              const Stencil2DConfig& cfg) {
  core::Runtime rt(cluster, opts);
  const int np = rt.num_pes();
  if (cfg.px * cfg.py != np) {
    throw core::ShmemError("stencil2d: px*py must equal the PE count");
  }
  if (cfg.nx % static_cast<std::size_t>(cfg.px) != 0 ||
      cfg.ny % static_cast<std::size_t>(cfg.py) != 0) {
    throw core::ShmemError("stencil2d: grid must divide evenly");
  }

  Stencil2DResult result;
  rt.run([&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const int rx = me / cfg.py;  // my row in the process grid
    const int ry = me % cfg.py;
    Tile t;
    t.lnx = cfg.nx / static_cast<std::size_t>(cfg.px);
    t.lny = cfg.ny / static_cast<std::size_t>(cfg.py);
    t.pitch = t.lny + 2;
    const std::size_t tile_doubles = (t.lnx + 2) * t.pitch;

    auto* cur = static_cast<double*>(
        ctx.shmalloc(tile_doubles * sizeof(double), Domain::kGpu));
    auto* next = static_cast<double*>(
        ctx.shmalloc(tile_doubles * sizeof(double), Domain::kGpu));
    // Symmetric column-halo landing zones: [0] = from west, [1] = from east.
    auto* colhalo = static_cast<double*>(
        ctx.shmalloc(2 * t.lnx * sizeof(double), Domain::kGpu));
    // Local (non-symmetric) device pack buffers.
    auto* pack = static_cast<double*>(ctx.cuda_malloc(2 * t.lnx * sizeof(double)));

    const int north = rx > 0 ? me - cfg.py : -1;
    const int south = rx < cfg.px - 1 ? me + cfg.py : -1;
    const int west = ry > 0 ? me - 1 : -1;
    const int east = ry < cfg.py - 1 ? me + 1 : -1;

    // Initialize: interior by global coordinate, halo/boundary zero.
    for (std::size_t i = 0; i < t.lnx + 2; ++i) {
      for (std::size_t j = 0; j < t.pitch; ++j) {
        cur[t.idx(i, j)] = 0.0;
        next[t.idx(i, j)] = 0.0;
      }
    }
    if (cfg.functional) {
      for (std::size_t i = 1; i <= t.lnx; ++i) {
        for (std::size_t j = 1; j <= t.lny; ++j) {
          std::size_t gi = static_cast<std::size_t>(rx) * t.lnx + i - 1;
          std::size_t gj = static_cast<std::size_t>(ry) * t.lny + j - 1;
          cur[t.idx(i, j)] = initial_value(gi, gj);
        }
      }
    }
    ctx.barrier_all();

    sim::Time t0 = ctx.now();
    for (int iter = 0; iter < cfg.iterations; ++iter) {
      // (1) pack boundary columns.
      ctx.launch_kernel(2 * t.lnx, cfg.per_cell_ns, [&] {
        if (cfg.functional) {
          for (std::size_t i = 0; i < t.lnx; ++i) {
            pack[i] = cur[t.idx(i + 1, 1)];           // west column
            pack[t.lnx + i] = cur[t.idx(i + 1, t.lny)];  // east column
          }
        }
      });
      // (2) exchange columns: my west column becomes the west neighbor's
      // "from east" halo and vice versa.
      if (west >= 0) {
        ctx.putmem_nbi(colhalo + t.lnx, pack, t.lnx * sizeof(double), west);
      }
      if (east >= 0) {
        ctx.putmem_nbi(colhalo, pack + t.lnx, t.lnx * sizeof(double), east);
      }
      ctx.quiet();
      ctx.barrier_all();
      // (3) unpack column halos.
      ctx.launch_kernel(2 * t.lnx, cfg.per_cell_ns, [&] {
        if (cfg.functional) {
          for (std::size_t i = 0; i < t.lnx; ++i) {
            if (west >= 0) cur[t.idx(i + 1, 0)] = colhalo[i];
            if (east >= 0) cur[t.idx(i + 1, t.lny + 1)] = colhalo[t.lnx + i];
          }
        }
      });
      // (4) exchange full-width rows (carrying the diagonal corners).
      if (north >= 0) {
        ctx.putmem_nbi(cur + t.idx(t.lnx + 1, 0), cur + t.idx(1, 0),
                       t.pitch * sizeof(double), north);
      }
      if (south >= 0) {
        ctx.putmem_nbi(cur + t.idx(0, 0), cur + t.idx(t.lnx, 0),
                       t.pitch * sizeof(double), south);
      }
      ctx.quiet();
      ctx.barrier_all();
      // (5) 9-point update.
      ctx.launch_kernel(t.lnx * t.lny, cfg.per_cell_ns, [&] {
        if (!cfg.functional) return;
        for (std::size_t i = 1; i <= t.lnx; ++i) {
          for (std::size_t j = 1; j <= t.lny; ++j) {
            double c = cur[t.idx(i, j)];
            double edges = cur[t.idx(i - 1, j)] + cur[t.idx(i + 1, j)] +
                           cur[t.idx(i, j - 1)] + cur[t.idx(i, j + 1)];
            double diag = cur[t.idx(i - 1, j - 1)] + cur[t.idx(i - 1, j + 1)] +
                          cur[t.idx(i + 1, j - 1)] + cur[t.idx(i + 1, j + 1)];
            next[t.idx(i, j)] = cfg.wc * c + cfg.we * edges + cfg.wd * diag;
          }
        }
      });
      std::swap(cur, next);  // lockstep on every PE: stays symmetric
    }
    ctx.barrier_all();
    double elapsed_ms = (ctx.now() - t0).to_ms();

    double partial = 0;
    if (cfg.functional) {
      for (std::size_t i = 1; i <= t.lnx; ++i) {
        for (std::size_t j = 1; j <= t.lny; ++j) partial += cur[t.idx(i, j)];
      }
    }
    double total = global_checksum(ctx, cfg, partial);
    if (me == 0) {
      result.exec_time_ms = elapsed_ms;
      result.checksum = total;
      result.cells_updated = static_cast<std::uint64_t>(t.lnx) * t.lny *
                             static_cast<std::uint64_t>(np) *
                             static_cast<std::uint64_t>(cfg.iterations);
    }
    ctx.barrier_all();
  });
  return result;
}

Stencil2DResult run_stencil2d_device(const hw::ClusterConfig& cluster,
                                     const core::RuntimeOptions& opts,
                                     const Stencil2DConfig& cfg,
                                     core::DeviceScope scope) {
  core::Runtime rt(cluster, opts);
  const int np = rt.num_pes();
  if (cfg.px * cfg.py != np) {
    throw core::ShmemError("stencil2d: px*py must equal the PE count");
  }
  if (cfg.nx % static_cast<std::size_t>(cfg.px) != 0 ||
      cfg.ny % static_cast<std::size_t>(cfg.py) != 0) {
    throw core::ShmemError("stencil2d: grid must divide evenly");
  }

  Stencil2DResult result;
  rt.run([&](Ctx& ctx) {
    const int me = ctx.my_pe();
    const int rx = me / cfg.py;
    const int ry = me % cfg.py;
    Tile t;
    t.lnx = cfg.nx / static_cast<std::size_t>(cfg.px);
    t.lny = cfg.ny / static_cast<std::size_t>(cfg.py);
    t.pitch = t.lny + 2;
    const std::size_t tile_doubles = (t.lnx + 2) * t.pitch;

    auto* cur = static_cast<double*>(
        ctx.shmalloc(tile_doubles * sizeof(double), Domain::kGpu));
    auto* next = static_cast<double*>(
        ctx.shmalloc(tile_doubles * sizeof(double), Domain::kGpu));
    // Parity-buffered column-halo landing zones: two slots of [from west,
    // from east], alternating per iteration, so iteration i+1's puts can
    // never clobber a slot iteration i is still reading.
    auto* colhalo = static_cast<double*>(
        ctx.shmalloc(4 * t.lnx * sizeof(double), Domain::kGpu));
    auto* pack = static_cast<double*>(ctx.cuda_malloc(2 * t.lnx * sizeof(double)));
    // Arrival signals: [0] west column, [1] east column, [2] north row,
    // [3] south row. Monotonically increasing (iteration count), so they
    // never need a reset between iterations.
    auto* sig = static_cast<std::uint64_t*>(
        ctx.shmalloc(4 * sizeof(std::uint64_t), Domain::kGpu));
    for (int k = 0; k < 4; ++k) sig[k] = 0;

    const int north = rx > 0 ? me - cfg.py : -1;
    const int south = rx < cfg.px - 1 ? me + cfg.py : -1;
    const int west = ry > 0 ? me - 1 : -1;
    const int east = ry < cfg.py - 1 ? me + 1 : -1;

    for (std::size_t i = 0; i < t.lnx + 2; ++i) {
      for (std::size_t j = 0; j < t.pitch; ++j) {
        cur[t.idx(i, j)] = 0.0;
        next[t.idx(i, j)] = 0.0;
      }
    }
    if (cfg.functional) {
      for (std::size_t i = 1; i <= t.lnx; ++i) {
        for (std::size_t j = 1; j <= t.lny; ++j) {
          std::size_t gi = static_cast<std::size_t>(rx) * t.lnx + i - 1;
          std::size_t gj = static_cast<std::size_t>(ry) * t.lny + j - 1;
          cur[t.idx(i, j)] = initial_value(gi, gj);
        }
      }
    }
    ctx.barrier_all();

    sim::Time t0 = ctx.now();
    // The whole evolution loop is ONE resident kernel: halo exchange is
    // issued from inside it, synchronized by signals instead of host
    // barriers, and only the final iteration returns to the host.
    ctx.launch_kernel_device(cfg.per_cell_ns, scope, [&](core::DeviceCtx& d) {
      for (int iter = 0; iter < cfg.iterations; ++iter) {
        const std::uint64_t tick = static_cast<std::uint64_t>(iter) + 1;
        const std::size_t base = static_cast<std::size_t>(iter % 2) * 2 * t.lnx;
        // (1) pack boundary columns.
        d.compute(2 * t.lnx);
        if (cfg.functional) {
          for (std::size_t i = 0; i < t.lnx; ++i) {
            pack[i] = cur[t.idx(i + 1, 1)];              // west column
            pack[t.lnx + i] = cur[t.idx(i + 1, t.lny)];  // east column
          }
        }
        // (2) exchange columns: my west column becomes the west neighbor's
        // "from east" halo and vice versa, signal riding behind the data.
        if (west >= 0) {
          d.put_signal(colhalo + base + t.lnx, pack, t.lnx * sizeof(double),
                       sig + 1, tick, west);
        }
        if (east >= 0) {
          d.put_signal(colhalo + base, pack + t.lnx, t.lnx * sizeof(double),
                       sig + 0, tick, east);
        }
        if (west >= 0) d.signal_wait_until(sig + 0, core::Cmp::kGe, tick);
        if (east >= 0) d.signal_wait_until(sig + 1, core::Cmp::kGe, tick);
        // (3) unpack column halos from this iteration's parity slot.
        d.compute(2 * t.lnx);
        if (cfg.functional) {
          for (std::size_t i = 0; i < t.lnx; ++i) {
            if (west >= 0) cur[t.idx(i + 1, 0)] = colhalo[base + i];
            if (east >= 0) cur[t.idx(i + 1, t.lny + 1)] = colhalo[base + t.lnx + i];
          }
        }
        // (4) exchange full-width rows (carrying the diagonal corners). The
        // rows land in the neighbor's current-parity buffer, whose halo rows
        // nobody else touches this iteration.
        if (north >= 0) {
          d.put_signal(cur + t.idx(t.lnx + 1, 0), cur + t.idx(1, 0),
                       t.pitch * sizeof(double), sig + 3, tick, north);
        }
        if (south >= 0) {
          d.put_signal(cur + t.idx(0, 0), cur + t.idx(t.lnx, 0),
                       t.pitch * sizeof(double), sig + 2, tick, south);
        }
        if (north >= 0) d.signal_wait_until(sig + 2, core::Cmp::kGe, tick);
        if (south >= 0) d.signal_wait_until(sig + 3, core::Cmp::kGe, tick);
        // (5) 9-point update.
        d.compute(t.lnx * t.lny);
        if (cfg.functional) {
          for (std::size_t i = 1; i <= t.lnx; ++i) {
            for (std::size_t j = 1; j <= t.lny; ++j) {
              double c = cur[t.idx(i, j)];
              double edges = cur[t.idx(i - 1, j)] + cur[t.idx(i + 1, j)] +
                             cur[t.idx(i, j - 1)] + cur[t.idx(i, j + 1)];
              double diag = cur[t.idx(i - 1, j - 1)] + cur[t.idx(i - 1, j + 1)] +
                            cur[t.idx(i + 1, j - 1)] + cur[t.idx(i + 1, j + 1)];
              next[t.idx(i, j)] = cfg.wc * c + cfg.we * edges + cfg.wd * diag;
            }
          }
        }
        std::swap(cur, next);  // lockstep in program order: stays symmetric
      }
      d.quiet();
    });
    ctx.barrier_all();
    double elapsed_ms = (ctx.now() - t0).to_ms();

    double partial = 0;
    if (cfg.functional) {
      for (std::size_t i = 1; i <= t.lnx; ++i) {
        for (std::size_t j = 1; j <= t.lny; ++j) partial += cur[t.idx(i, j)];
      }
    }
    double total = global_checksum(ctx, cfg, partial);
    if (me == 0) {
      result.exec_time_ms = elapsed_ms;
      result.checksum = total;
      result.cells_updated = static_cast<std::uint64_t>(t.lnx) * t.lny *
                             static_cast<std::uint64_t>(np) *
                             static_cast<std::uint64_t>(cfg.iterations);
    }
    ctx.barrier_all();
  });
  return result;
}

double stencil2d_reference_checksum(const Stencil2DConfig& cfg) {
  const std::size_t pitch = cfg.ny + 2;
  std::vector<double> cur((cfg.nx + 2) * pitch, 0.0);
  std::vector<double> next((cfg.nx + 2) * pitch, 0.0);
  auto idx = [pitch](std::size_t i, std::size_t j) { return i * pitch + j; };
  for (std::size_t i = 1; i <= cfg.nx; ++i) {
    for (std::size_t j = 1; j <= cfg.ny; ++j) {
      cur[idx(i, j)] = initial_value(i - 1, j - 1);
    }
  }
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    for (std::size_t i = 1; i <= cfg.nx; ++i) {
      for (std::size_t j = 1; j <= cfg.ny; ++j) {
        double c = cur[idx(i, j)];
        double edges = cur[idx(i - 1, j)] + cur[idx(i + 1, j)] +
                       cur[idx(i, j - 1)] + cur[idx(i, j + 1)];
        double diag = cur[idx(i - 1, j - 1)] + cur[idx(i - 1, j + 1)] +
                      cur[idx(i + 1, j - 1)] + cur[idx(i + 1, j + 1)];
        next[idx(i, j)] = cfg.wc * c + cfg.we * edges + cfg.wd * diag;
      }
    }
    std::swap(cur, next);
  }
  double sum = 0;
  for (std::size_t i = 1; i <= cfg.nx; ++i) {
    for (std::size_t j = 1; j <= cfg.ny; ++j) sum += cur[idx(i, j)];
  }
  return sum;
}

}  // namespace gdrshmem::apps
