// Slab/pool allocator layered over a pmem symmetric-heap region (the shape
// of Portus's pool.cpp): the bump-pointer SymmetricHeap cannot reclaim out
// of order, so the checkpoint service carves one large pmem arena and
// manages chunk-granular extents inside it — first-fit allocation, keyed
// release, sliding repack to squeeze out fragmentation, and enough
// introspection (free bytes vs largest free run) for the eviction policy to
// decide between evicting cold checkpoints and repacking.
//
// The pool tracks offsets only; moving the bytes during repack (and
// publishing directory updates so one-sided readers notice) is the service's
// job via the on_move callback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>

namespace gdrshmem::apps::ckpt {

/// A contiguous run of chunks inside the arena: [offset, offset + bytes).
struct Extent {
  std::size_t offset = 0;
  std::size_t bytes = 0;  // chunk-rounded
};

class PmemPool {
 public:
  /// Manage [0, capacity) in units of chunk_bytes. capacity is rounded down
  /// to a whole number of chunks; chunk_bytes must be a power of two.
  PmemPool(std::size_t capacity, std::size_t chunk_bytes);

  /// First-fit allocate a chunk-rounded extent for `key` (one live extent
  /// per key). Returns nullopt when no contiguous run fits — the caller
  /// decides whether to evict, repack, or reject.
  std::optional<Extent> allocate(std::uint64_t key, std::size_t bytes);

  /// Release `key`'s extent. Returns false when the key has no live extent
  /// (already evicted), which callers treat as a no-op.
  bool release(std::uint64_t key);

  /// The live extent for `key`, if any.
  std::optional<Extent> find(std::uint64_t key) const;

  /// Slide live extents down toward offset 0, in offset order, closing the
  /// gaps. on_move(key, old_offset, new_offset, bytes) fires for each extent
  /// that actually moves, in ascending old_offset order — a destination
  /// never overlaps a not-yet-moved extent, so the service can memmove
  /// eagerly. Extents for which is_pinned(key) returns true stay put (the
  /// checkpoint service pins granted-but-uncommitted extents a client may be
  /// writing into), so compaction around them can be partial. Returns the
  /// number of extents moved.
  std::size_t repack(
      const std::function<void(std::uint64_t key, std::size_t old_offset,
                               std::size_t new_offset, std::size_t bytes)>&
          on_move,
      const std::function<bool(std::uint64_t key)>& is_pinned = nullptr);

  std::size_t capacity() const { return capacity_; }
  std::size_t chunk_bytes() const { return chunk_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t free_bytes() const { return capacity_ - used_; }
  std::size_t live_extents() const { return by_offset_.size(); }
  /// Largest contiguous free run: allocate(bytes) succeeds iff the rounded
  /// size fits in it. free_bytes() > largest_free_run() means fragmentation
  /// a repack would recover.
  std::size_t largest_free_run() const;
  /// `bytes` rounded up to whole chunks (the footprint allocate would take).
  std::size_t rounded(std::size_t bytes) const;

 private:
  struct Live {
    std::uint64_t key;
    std::size_t bytes;  // chunk-rounded
  };

  std::size_t capacity_;
  std::size_t chunk_;
  std::size_t used_ = 0;
  std::map<std::size_t, Live> by_offset_;
  std::map<std::uint64_t, std::size_t> offset_of_key_;
};

}  // namespace gdrshmem::apps::ckpt
