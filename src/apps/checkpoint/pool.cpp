#include "apps/checkpoint/pool.hpp"

#include <stdexcept>

namespace gdrshmem::apps::ckpt {

PmemPool::PmemPool(std::size_t capacity, std::size_t chunk_bytes)
    : capacity_(0), chunk_(chunk_bytes) {
  if (chunk_bytes == 0 || (chunk_bytes & (chunk_bytes - 1)) != 0) {
    throw std::invalid_argument("PmemPool: chunk_bytes must be a power of 2");
  }
  capacity_ = capacity / chunk_bytes * chunk_bytes;
  if (capacity_ == 0) {
    throw std::invalid_argument("PmemPool: capacity smaller than one chunk");
  }
}

std::size_t PmemPool::rounded(std::size_t bytes) const {
  if (bytes == 0) return chunk_;
  return (bytes + chunk_ - 1) / chunk_ * chunk_;
}

std::optional<Extent> PmemPool::allocate(std::uint64_t key, std::size_t bytes) {
  if (offset_of_key_.count(key) != 0) {
    throw std::invalid_argument("PmemPool: key already has a live extent");
  }
  const std::size_t need = rounded(bytes);
  // First fit: walk the gaps between live extents (and after the last one).
  std::size_t gap_start = 0;
  for (const auto& [off, live] : by_offset_) {
    if (off - gap_start >= need) break;
    gap_start = off + live.bytes;
  }
  if (capacity_ - gap_start < need) return std::nullopt;
  by_offset_.emplace(gap_start, Live{key, need});
  offset_of_key_.emplace(key, gap_start);
  used_ += need;
  return Extent{gap_start, need};
}

bool PmemPool::release(std::uint64_t key) {
  auto it = offset_of_key_.find(key);
  if (it == offset_of_key_.end()) return false;
  auto live = by_offset_.find(it->second);
  used_ -= live->second.bytes;
  by_offset_.erase(live);
  offset_of_key_.erase(it);
  return true;
}

std::optional<Extent> PmemPool::find(std::uint64_t key) const {
  auto it = offset_of_key_.find(key);
  if (it == offset_of_key_.end()) return std::nullopt;
  return Extent{it->second, by_offset_.at(it->second).bytes};
}

std::size_t PmemPool::largest_free_run() const {
  std::size_t best = 0;
  std::size_t gap_start = 0;
  for (const auto& [off, live] : by_offset_) {
    best = std::max(best, off - gap_start);
    gap_start = off + live.bytes;
  }
  return std::max(best, capacity_ - gap_start);
}

std::size_t PmemPool::repack(
    const std::function<void(std::uint64_t, std::size_t, std::size_t,
                             std::size_t)>& on_move,
    const std::function<bool(std::uint64_t)>& is_pinned) {
  std::size_t moved = 0;
  std::size_t next = 0;
  // Rebuild the offset map front-to-back. Moves are strictly downward and
  // processed in ascending old offset, so a destination never overlaps an
  // extent that has not been moved yet; a pinned extent keeps its offset and
  // advances the write pointer past itself.
  std::map<std::size_t, Live> packed;
  for (const auto& [off, live] : by_offset_) {
    if (is_pinned && is_pinned(live.key)) {
      packed.emplace(off, live);
      next = off + live.bytes;
      continue;
    }
    if (off != next) {
      on_move(live.key, off, next, live.bytes);
      offset_of_key_[live.key] = next;
      ++moved;
    }
    packed.emplace(next, live);
    next += live.bytes;
  }
  by_offset_ = std::move(packed);
  return moved;
}

}  // namespace gdrshmem::apps::ckpt
