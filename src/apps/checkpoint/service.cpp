#include "apps/checkpoint/service.hpp"

#include <cstring>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "apps/checkpoint/pool.hpp"
#include "core/ctx.hpp"

namespace gdrshmem::apps::ckpt {
namespace {

// ---- wire structures -------------------------------------------------------
// Every slot ends with a 64-bit `seq` signal word: the put_signal payload
// covers the fields before it, and the signal targets `seq` itself, so a
// reader that observes the new seq is guaranteed to see the fields (the
// signal never overtakes the data on any protocol path).

/// Client -> home server request slot, one per client on every server.
struct alignas(64) ReqSlot {
  std::uint64_t kind;     // 1 = checkpoint request, 2 = commit, 3 = done
  std::uint64_t version;
  std::uint64_t bytes;
  std::uint64_t crc;      // payload crc (commit only)
  std::uint64_t seq;      // signal: strictly increasing per client
};

/// Server -> client response slot; two per client (0 = grant/reject of a
/// request, 1 = ack of a commit).
struct alignas(64) RespSlot {
  std::uint64_t status;   // 1 = grant, 2 = reject, 3 = ack
  std::uint64_t offset;   // granted arena offset (grant only)
  std::uint64_t seq;
};

/// Replicated chunk-directory entry mapping (client, version) -> extent.
/// `gen` is a seqlock: even = stable, odd = the home server is moving the
/// payload (repack); a one-sided restore re-reads the entry after fetching
/// the payload and retries when gen changed.
struct alignas(64) DirEntry {
  std::uint64_t gen;
  std::uint64_t version;
  std::uint64_t state;    // 0 = empty/evicted, 1 = valid
  std::uint64_t server;   // home server PE owning the extent
  std::uint64_t offset;   // offset inside the home server's arena
  std::uint64_t bytes;    // exact payload bytes
  std::uint64_t crc;
};

constexpr std::uint64_t kKindRequest = 1;
constexpr std::uint64_t kKindCommit = 2;
constexpr std::uint64_t kKindDone = 3;
constexpr std::uint64_t kStatusGrant = 1;
constexpr std::uint64_t kStatusReject = 2;
constexpr std::uint64_t kStatusAck = 3;

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The deterministic "model state" of (client, version): both the
/// checkpoint fill and the restore verification regenerate it from the seed.
void fill_model_state(std::uint64_t seed, int ci, std::uint64_t version,
                      std::vector<std::byte>& buf, std::size_t bytes) {
  sim::Rng rng(seed ^ mix64(static_cast<std::uint64_t>(ci) + 1) ^
               mix64(version * 0x9e3779b97f4a7c15ULL + 7));
  buf.resize(bytes);
  std::size_t i = 0;
  while (i < bytes) {
    std::uint64_t w = rng.next_u64();
    std::size_t n = std::min<std::size_t>(8, bytes - i);
    std::memcpy(buf.data() + i, &w, n);
    i += n;
  }
}

std::uint64_t make_key(int ci, std::uint64_t version) {
  return (static_cast<std::uint64_t>(ci) << 32) | (version & 0xffffffffULL);
}

/// Per-client outcome, written by each client fiber into its own slot and
/// folded after the run (single process: plain shared memory, race-free
/// because the discrete-event engine runs one fiber at a time).
struct ClientOut {
  std::uint64_t acked = 0;
  std::uint64_t rejected = 0;
  std::uint64_t restores_ok = 0;
  std::uint64_t lost = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_restored = 0;
  std::uint64_t restore_retries = 0;
  std::uint64_t digest = 0;
};

struct ServerOut {
  std::uint64_t evictions = 0;
  std::uint64_t supersedes = 0;
  std::uint64_t repacks = 0;
  std::uint64_t extents_moved = 0;
};

/// Everything the SPMD lambda shares; symmetric pointers are per-PE.
struct Shared {
  const CheckpointConfig* cfg;
  int servers;
  int num_clients;
  std::vector<ClientOut>* client_out;
  std::vector<ServerOut>* server_out;
};

struct SymArrays {
  std::byte* arena;
  ReqSlot* req;
  RespSlot* resp;
  DirEntry* dir;
};

/// Collective symmetric setup, identical sequence on every PE.
SymArrays setup_symmetric(core::Ctx& ctx, const Shared& sh) {
  SymArrays a;
  a.arena = static_cast<std::byte*>(
      ctx.shmalloc(sh.cfg->pool_bytes, core::Domain::kPmem));
  a.req = static_cast<ReqSlot*>(ctx.shmalloc(
      sizeof(ReqSlot) * static_cast<std::size_t>(sh.num_clients)));
  a.resp = static_cast<RespSlot*>(ctx.shmalloc(
      sizeof(RespSlot) * 2 * static_cast<std::size_t>(sh.num_clients)));
  a.dir = static_cast<DirEntry*>(ctx.shmalloc(
      sizeof(DirEntry) * static_cast<std::size_t>(sh.num_clients) *
      static_cast<std::size_t>(sh.cfg->dir_slots)));
  return a;
}

// ---- server ----------------------------------------------------------------

class Server {
 public:
  Server(core::Ctx& ctx, const Shared& sh, const SymArrays& a)
      : ctx_(ctx), sh_(sh), a_(a),
        pool_(sh.cfg->pool_bytes, sh.cfg->chunk_bytes),
        last_seq_(static_cast<std::size_t>(sh.num_clients), 0),
        resp_seq_(static_cast<std::size_t>(sh.num_clients) * 2, 0),
        out_(&(*sh.server_out)[static_cast<std::size_t>(ctx.my_pe())]) {
    replica_ = (ctx_.my_pe() + 1) % sh_.servers;
    for (int ci = 0; ci < sh_.num_clients; ++ci) {
      if (ci % sh_.servers == ctx_.my_pe()) ++my_clients_;
    }
  }

  void run() {
    int done = 0;
    while (done < my_clients_) {
      ctx_.wait_for([&] { return scan_ready(); });
      // Serve every ready request, in client order — the scan order is
      // deterministic because virtual-time delivery order is.
      for (int ci = 0; ci < sh_.num_clients; ++ci) {
        if (ci % sh_.servers != ctx_.my_pe()) continue;
        auto i = static_cast<std::size_t>(ci);
        while (a_.req[i].seq > last_seq_[i]) {
          ++last_seq_[i];
          ReqSlot rq;
          std::memcpy(&rq, &a_.req[i], sizeof(rq));
          switch (rq.kind) {
            case kKindRequest: handle_request(ci, rq); break;
            case kKindCommit: handle_commit(ci, rq); break;
            case kKindDone: ++done; break;
            default:
              throw core::ShmemError("checkpoint server: bad request kind");
          }
        }
      }
    }
  }

 private:
  bool scan_ready() {
    for (int ci = 0; ci < sh_.num_clients; ++ci) {
      if (ci % sh_.servers != ctx_.my_pe()) continue;
      if (a_.req[static_cast<std::size_t>(ci)].seq >
          last_seq_[static_cast<std::size_t>(ci)]) {
        return true;
      }
    }
    return false;
  }

  void respond(int ci, int which, std::uint64_t status, std::uint64_t offset) {
    RespSlot r;
    r.status = status;
    r.offset = offset;
    auto slot = static_cast<std::size_t>(ci) * 2 + static_cast<std::size_t>(which);
    r.seq = ++resp_seq_[slot];
    RespSlot* dst = a_.resp + slot;
    ctx_.put_signal(dst, &r, offsetof(RespSlot, seq), &dst->seq, r.seq,
                    sh_.servers + ci);
  }

  DirEntry& dir_entry(int ci, std::uint64_t version) {
    auto slot = static_cast<std::size_t>(ci) *
                    static_cast<std::size_t>(sh_.cfg->dir_slots) +
                static_cast<std::size_t>(version %
                                         static_cast<std::uint64_t>(
                                             sh_.cfg->dir_slots));
    return a_.dir[slot];
  }

  /// Push this server's local copy of the entry to the replica and wait for
  /// remote completion, so later local mutations cannot be observed first.
  void publish_entry(DirEntry& e) {
    ctx_.putmem(&e, &e, sizeof(DirEntry), replica_);
    ctx_.quiet();
  }

  /// Mark the entry unstable on the replica *before* its payload moves.
  void publish_odd_gen(DirEntry& e) {
    ctx_.putmem(&e.gen, &e.gen, sizeof(e.gen), replica_);
    ctx_.quiet();
  }

  void do_repack() {
    auto moved = pool_.repack(
        [&](std::uint64_t key, std::size_t old_off, std::size_t new_off,
            std::size_t bytes) {
          // Every movable extent is committed, so it has a live dir entry.
          int ci = static_cast<int>(key >> 32);
          std::uint64_t version = key & 0xffffffffULL;
          DirEntry& e = dir_entry(ci, version);
          e.gen += 1;  // odd: one-sided readers must retry
          publish_odd_gen(e);
          // A restore get in flight against old_off now races this move; the
          // even-gen publish below is what lets the reader detect it.
          std::memmove(a_.arena + new_off, a_.arena + old_off, bytes);
          ctx_.proc().delay(sim::Duration::ns(
              static_cast<std::int64_t>(bytes / 16)));  // ~16 B/ns host copy
          e.offset = new_off;
          e.gen += 1;  // even: stable again
          publish_entry(e);
          ++out_->extents_moved;
        },
        [&](std::uint64_t key) { return pending_keys_.count(key) != 0; });
    if (moved > 0) {
      ++out_->repacks;
      ctx_.runtime().metrics().counter("ckpt/repacks").add();
    }
    last_repack_moved_ = moved;
  }

  /// Evict the least-recently-acked checkpoint that is not some client's
  /// latest acknowledged version. Returns false when nothing is evictable.
  bool evict_one() {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      std::uint64_t key = *it;
      int ci = static_cast<int>(key >> 32);
      std::uint64_t version = key & 0xffffffffULL;
      auto latest = latest_acked_.find(ci);
      if (latest != latest_acked_.end() && latest->second == version) continue;
      DirEntry& e = dir_entry(ci, version);
      e.gen += 2;  // stays even: the entry flips atomically to "gone"
      e.state = 0;
      publish_entry(e);
      pool_.release(key);
      lru_.erase(it);
      ++out_->evictions;
      ctx_.runtime().metrics().counter("ckpt/evictions").add();
      return true;
    }
    return false;
  }

  void handle_request(int ci, const ReqSlot& rq) {
    const std::uint64_t key = make_key(ci, rq.version);
    const std::size_t need = pool_.rounded(rq.bytes);
    std::optional<Extent> ext;
    for (;;) {
      ext = pool_.allocate(key, rq.bytes);
      if (ext) break;
      if (pool_.free_bytes() >= need && pool_.largest_free_run() < need) {
        // Fragmented, not full: compaction may recover a large-enough run.
        do_repack();
        if (last_repack_moved_ > 0) continue;
      }
      if (evict_one()) continue;
      break;  // nothing left to evict or compact — reject
    }
    if (!ext) {
      ctx_.runtime().metrics().counter("ckpt/rejects").add();
      respond(ci, 0, kStatusReject, 0);
      return;
    }
    Pending p;
    p.version = rq.version;
    p.bytes = rq.bytes;
    p.offset = ext->offset;
    pending_[ci] = p;
    pending_keys_.insert(key);
    respond(ci, 0, kStatusGrant, ext->offset);
  }

  void handle_commit(int ci, const ReqSlot& rq) {
    auto it = pending_.find(ci);
    if (it == pending_.end() || it->second.version != rq.version) {
      throw core::ShmemError("checkpoint server: commit without grant");
    }
    Pending p = it->second;
    pending_.erase(it);
    const std::uint64_t key = make_key(ci, p.version);
    pending_keys_.erase(key);
    // The client's quiet() before the commit guarantees the payload is fully
    // delivered; a crc mismatch here would mean the transport lost or
    // corrupted acknowledged bytes — surface it, never ack it.
    std::uint64_t crc = fnv1a64(a_.arena + p.offset, p.bytes);
    if (crc != rq.crc) {
      throw core::ShmemError(
          "checkpoint server: payload crc mismatch at commit (client " +
          std::to_string(ci) + " version " + std::to_string(p.version) + ")");
    }
    // If this version's dir slot still holds an older live version, it is
    // displaced now — only at commit time, so the older checkpoint stayed
    // restorable until the new one became durable.
    DirEntry& e = dir_entry(ci, p.version);
    const std::uint64_t displaced = e.state == 1 ? make_key(ci, e.version) : 0;
    e.gen += 2;  // even -> even: readers see old-or-new, never torn
    e.version = p.version;
    e.state = 1;
    e.server = static_cast<std::uint64_t>(ctx_.my_pe());
    e.offset = p.offset;
    e.bytes = p.bytes;
    e.crc = crc;
    publish_entry(e);
    if (displaced != 0) {
      // The older version in this dir slot is no longer reachable; free its
      // extent (it may already have been LRU-evicted).
      if (pool_.release(displaced)) {
        lru_.remove(displaced);
        ++out_->supersedes;
      }
    }
    latest_acked_[ci] = p.version;
    lru_.push_back(key);
    respond(ci, 1, kStatusAck, 0);
  }

  struct Pending {
    std::uint64_t version = 0;
    std::size_t bytes = 0;
    std::size_t offset = 0;
  };

  core::Ctx& ctx_;
  const Shared& sh_;
  SymArrays a_;
  PmemPool pool_;
  int replica_;
  int my_clients_ = 0;
  std::vector<std::uint64_t> last_seq_;
  std::vector<std::uint64_t> resp_seq_;
  std::map<int, Pending> pending_;
  std::set<std::uint64_t> pending_keys_;
  std::map<int, std::uint64_t> latest_acked_;
  std::list<std::uint64_t> lru_;
  std::size_t last_repack_moved_ = 0;
  ServerOut* out_;
};

// ---- client ----------------------------------------------------------------

class Client {
 public:
  Client(core::Ctx& ctx, const Shared& sh, const SymArrays& a)
      : ctx_(ctx), sh_(sh), a_(a),
        ci_(ctx.my_pe() - sh.servers),
        out_(&(*sh.client_out)[static_cast<std::size_t>(ctx.my_pe() -
                                                        sh.servers)]) {
    home_ = ci_ % sh_.servers;
    replica_ = (home_ + 1) % sh_.servers;
    // Local (non-symmetric) GPU buffers standing in for model state: the
    // checkpoint source and the restore destination.
    const std::size_t cap = sh_.cfg->traffic.max_bytes;
    dev_src_ = static_cast<std::byte*>(ctx_.cuda_malloc(cap));
    dev_rst_ = static_cast<std::byte*>(ctx_.cuda_malloc(cap));
    host_.reserve(cap);
    verify_.reserve(cap);
  }

  void run() {
    auto reqs = make_open_loop(sh_.cfg->traffic, ci_);
    const sim::Time t0 = ctx_.now();
    for (const Request& r : reqs) {
      sim::Time arrival = t0 + sim::Duration::us(r.at_us);
      if (ctx_.now() < arrival) ctx_.proc().delay(arrival - ctx_.now());
      // Open-loop latency: measured from the scheduled arrival, so time
      // spent queued behind this client's own previous request counts.
      if (r.restore && latest_version_ != 0) {
        do_restore(arrival);
      } else {
        do_checkpoint(arrival, r.bytes != 0 ? r.bytes
                                            : sh_.cfg->traffic.min_bytes);
      }
    }
    send(kKindDone, 0, 0, 0);
  }

 private:
  void send(std::uint64_t kind, std::uint64_t version, std::uint64_t bytes,
            std::uint64_t crc) {
    ReqSlot rq;
    rq.kind = kind;
    rq.version = version;
    rq.bytes = bytes;
    rq.crc = crc;
    rq.seq = ++req_seq_;
    ReqSlot* dst = a_.req + ci_;
    ctx_.put_signal(dst, &rq, offsetof(ReqSlot, seq), &dst->seq, rq.seq, home_);
  }

  /// Await the next response in `which` (0 grant, 1 ack) and copy it out.
  RespSlot await_resp(int which) {
    auto slot = static_cast<std::size_t>(ci_) * 2 +
                static_cast<std::size_t>(which);
    std::uint64_t expect = ++resp_seen_[which];
    ctx_.wait_until(&a_.resp[slot].seq, core::Cmp::kEq, expect);
    RespSlot r;
    std::memcpy(&r, &a_.resp[slot], sizeof(r));
    return r;
  }

  void fold(std::uint64_t kind, std::uint64_t version, std::uint64_t crc,
            std::uint64_t latency_ns) {
    out_->digest = mix64(out_->digest ^ mix64(kind * 0x9e3779b97f4a7c15ULL +
                                              version) ^
                         mix64(crc) ^ mix64(latency_ns + 1));
  }

  void do_checkpoint(sim::Time arrival, std::size_t bytes) {
    const std::uint64_t version = ++next_version_;
    fill_model_state(sh_.cfg->traffic.seed, ci_, version, host_, bytes);
    const std::uint64_t crc = fnv1a64(host_.data(), bytes);
    ctx_.cuda_memcpy(dev_src_, host_.data(), bytes);  // model state on GPU
    send(kKindRequest, version, bytes, 0);
    RespSlot grant = await_resp(0);
    if (grant.status == kStatusReject) {
      ++out_->rejected;
      --next_version_;  // the version number was never materialized
      fold(9, version, 0, 0);
      return;
    }
    // One-sided payload write straight from GPU memory into the home
    // server's pmem arena; quiet() is the durability point — after it, the
    // bytes (and any fault-plan replays) are remotely complete.
    ctx_.putmem(a_.arena + grant.offset, dev_src_, bytes, home_);
    ctx_.quiet();
    send(kKindCommit, version, bytes, crc);
    RespSlot ack = await_resp(1);
    if (ack.status != kStatusAck) {
      throw core::ShmemError("checkpoint client: commit not acked");
    }
    auto lat = static_cast<std::uint64_t>((ctx_.now() - arrival).count_ns());
    ctx_.runtime().metrics().histogram("ckpt/checkpoint_latency_ns").record(lat);
    ++out_->acked;
    out_->bytes_acked += bytes;
    latest_version_ = version;
    latest_bytes_ = bytes;
    latest_crc_ = crc;
    fold(1, version, crc, lat);
  }

  void do_restore(sim::Time arrival) {
    const std::uint64_t version = latest_version_;
    const auto slot = static_cast<std::size_t>(ci_) *
                          static_cast<std::size_t>(sh_.cfg->dir_slots) +
                      static_cast<std::size_t>(
                          version %
                          static_cast<std::uint64_t>(sh_.cfg->dir_slots));
    DirEntry* esym = a_.dir + slot;
    bool ok = false;
    DirEntry e{};
    for (int attempt = 0; attempt < 64; ++attempt) {
      ctx_.getmem(&e, esym, sizeof(e), replica_);
      if (e.gen % 2 != 0) {  // repack in progress: back off and re-read
        ++out_->restore_retries;
        ctx_.proc().delay(sim::Duration::us(2));
        continue;
      }
      if (e.state != 1 || e.version != version) break;  // lost: never evictable
      ctx_.getmem(dev_rst_, a_.arena + e.offset,
                  static_cast<std::size_t>(e.bytes),
                  static_cast<int>(e.server));
      DirEntry e2{};
      ctx_.getmem(&e2, esym, sizeof(e2), replica_);
      if (e2.gen != e.gen) {  // the payload moved underneath the get
        ++out_->restore_retries;
        continue;
      }
      ok = true;
      break;
    }
    std::uint64_t lat = 0;
    if (ok) {
      verify_.resize(static_cast<std::size_t>(e.bytes));
      ctx_.cuda_memcpy(verify_.data(), dev_rst_,
                       static_cast<std::size_t>(e.bytes));
      std::uint64_t crc = fnv1a64(verify_.data(),
                                  static_cast<std::size_t>(e.bytes));
      ok = crc == e.crc && crc == latest_crc_ &&
           e.bytes == latest_bytes_;
      if (ok && sh_.cfg->verify_restores) {
        fill_model_state(sh_.cfg->traffic.seed, ci_, version, host_,
                         latest_bytes_);
        ok = std::memcmp(verify_.data(), host_.data(), latest_bytes_) == 0;
      }
    }
    if (ok) {
      lat = static_cast<std::uint64_t>((ctx_.now() - arrival).count_ns());
      ctx_.runtime().metrics().histogram("ckpt/restore_latency_ns").record(lat);
      ++out_->restores_ok;
      out_->bytes_restored += latest_bytes_;
    } else {
      // An acknowledged latest version must always restore byte-identical;
      // anything else is a lost checkpoint.
      ++out_->lost;
    }
    fold(2, version, latest_crc_, lat);
  }

  core::Ctx& ctx_;
  const Shared& sh_;
  SymArrays a_;
  int ci_;
  int home_;
  int replica_;
  std::byte* dev_src_;
  std::byte* dev_rst_;
  std::vector<std::byte> host_;
  std::vector<std::byte> verify_;
  std::uint64_t req_seq_ = 0;
  std::uint64_t resp_seen_[2] = {0, 0};
  std::uint64_t next_version_ = 0;
  std::uint64_t latest_version_ = 0;
  std::size_t latest_bytes_ = 0;
  std::uint64_t latest_crc_ = 0;
  ClientOut* out_;
};

}  // namespace

CheckpointResult run_checkpoint_service(const hw::ClusterConfig& cluster,
                                        const core::RuntimeOptions& opts,
                                        const CheckpointConfig& cfg) {
  const int np = cluster.num_nodes * cluster.pes_per_node;
  if (cfg.num_servers < 2) {
    throw core::ShmemError(
        "checkpoint service: need >= 2 servers (directory replication)");
  }
  if (np <= cfg.num_servers) {
    throw core::ShmemError("checkpoint service: no client PEs");
  }
  if (opts.pmem_heap_bytes < cfg.pool_bytes) {
    throw core::ShmemError(
        "checkpoint service: pool_bytes exceeds the pmem heap "
        "(set RuntimeOptions::pmem_heap_bytes / GDRSHMEM_PMEM_HEAP)");
  }
  if (cfg.dir_slots < 1) {
    throw core::ShmemError("checkpoint service: dir_slots must be >= 1");
  }

  std::vector<ClientOut> client_out(
      static_cast<std::size_t>(np - cfg.num_servers));
  std::vector<ServerOut> server_out(static_cast<std::size_t>(cfg.num_servers));
  Shared sh;
  sh.cfg = &cfg;
  sh.servers = cfg.num_servers;
  sh.num_clients = np - cfg.num_servers;
  sh.client_out = &client_out;
  sh.server_out = &server_out;

  core::Runtime rt(cluster, opts);
  rt.run([&](core::Ctx& ctx) {
    SymArrays a = setup_symmetric(ctx, sh);
    if (ctx.my_pe() < sh.servers) {
      Server server(ctx, sh, a);
      ctx.barrier_all();  // traffic epoch starts here on every PE
      server.run();
    } else {
      Client client(ctx, sh, a);
      ctx.barrier_all();
      client.run();
    }
    ctx.barrier_all();
  });

  CheckpointResult res;
  for (std::size_t i = 0; i < client_out.size(); ++i) {
    const ClientOut& c = client_out[i];
    res.checkpoints_acked += c.acked;
    res.checkpoints_rejected += c.rejected;
    res.restores_ok += c.restores_ok;
    res.lost_acked += c.lost;
    res.bytes_acked += c.bytes_acked;
    res.bytes_restored += c.bytes_restored;
    res.restore_retries += c.restore_retries;
    res.digest ^= mix64(c.digest + i + 1);
  }
  for (const ServerOut& s : server_out) {
    res.evictions += s.evictions;
    res.supersedes += s.supersedes;
    res.repacks += s.repacks;
    res.extents_moved += s.extents_moved;
  }
  res.makespan_ms = rt.engine().now().to_ms();
  if (res.makespan_ms > 0) {
    res.goodput_mbps = static_cast<double>(res.bytes_acked) /
                       (res.makespan_ms * 1e-3) / 1e6;
  }
  const core::Histogram& ch =
      rt.metrics().histogram("ckpt/checkpoint_latency_ns");
  res.ckpt_p50_ns = ch.percentile(0.50);
  res.ckpt_p99_ns = ch.percentile(0.99);
  res.ckpt_p999_ns = ch.percentile(0.999);
  const core::Histogram& rh = rt.metrics().histogram("ckpt/restore_latency_ns");
  res.restore_p50_ns = rh.percentile(0.50);
  res.restore_p99_ns = rh.percentile(0.99);
  res.restore_p999_ns = rh.percentile(0.999);
  return res;
}

}  // namespace gdrshmem::apps::ckpt
