// Open-loop traffic for the checkpoint service: each client PE draws a
// seeded schedule of requests with exponential interarrivals and skewed
// sizes, computed up front so arrival instants are absolute — a slow service
// does not slow the offered load, it grows the measured latency (queueing is
// visible, unlike closed-loop think-time drivers). Everything is a pure
// function of (seed, client index), so runs are bit-identical per seed on
// both engine backends.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace gdrshmem::apps::ckpt {

struct OpenLoopParams {
  std::uint64_t seed = 1;
  /// Mean of the exponential interarrival distribution, per client.
  double mean_interarrival_us = 50.0;
  /// Requests per client (checkpoints + restores).
  int requests_per_client = 16;
  /// Probability a request is a restore of the latest acknowledged
  /// checkpoint instead of a new checkpoint. The first request of every
  /// client is always a checkpoint.
  double restore_fraction = 0.2;
  /// Checkpoint payload size range; sizes are min + (max - min) * u^skew
  /// rounded up to 64 bytes, so skew > 1 makes small checkpoints common and
  /// large ones a heavy tail.
  std::size_t min_bytes = 2048;
  std::size_t max_bytes = 32768;
  double size_skew = 2.0;
};

struct Request {
  double at_us = 0;  // absolute arrival, relative to the traffic start
  bool restore = false;
  std::size_t bytes = 0;  // checkpoint payload (0 for restores)
};

/// The full request schedule for one client. Deterministic in
/// (params.seed, client_index); independent streams per client.
inline std::vector<Request> make_open_loop(const OpenLoopParams& p,
                                           int client_index) {
  sim::Rng rng(p.seed * 0x9e3779b97f4a7c15ULL +
               static_cast<std::uint64_t>(client_index) * 0x2545f4914f6cdd1dULL +
               1);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(p.requests_per_client));
  double t = 0;
  for (int i = 0; i < p.requests_per_client; ++i) {
    // Inverse-CDF exponential draw; 1 - u is in (0, 1] so the log is finite.
    t += -p.mean_interarrival_us * std::log(1.0 - rng.next_double());
    Request r;
    r.at_us = t;
    r.restore = i > 0 && rng.next_double() < p.restore_fraction;
    if (!r.restore) {
      double u = std::pow(rng.next_double(), p.size_skew);
      auto raw = static_cast<std::size_t>(
          static_cast<double>(p.min_bytes) +
          u * static_cast<double>(p.max_bytes - p.min_bytes));
      r.bytes = (raw + 63) / 64 * 64;
    }
    reqs.push_back(r);
  }
  return reqs;
}

}  // namespace gdrshmem::apps::ckpt
