// Portus-style GPU checkpoint/restore service over GPU-aware OpenSHMEM
// (ROADMAP item 4): the first `num_servers` PEs form a checkpoint-server
// group owning pmem arenas (Domain::kPmem symmetric heap); the remaining PEs
// are clients that snapshot GPU-resident model state into their home
// server's arena with one-sided put/put_signal, and restore it with
// one-sided get — the server never touches payload bytes on the data path.
//
// Protocol per checkpoint (client c, home server h = c % S):
//   1. c -> h   put_signal request {version, bytes, crc} into c's ReqSlot
//   2. h        reserves a pool extent (LRU-evicting cold checkpoints and
//               repacking the arena when fragmented), put_signals a grant
//               {arena offset} — or a reject when nothing can make room
//   3. c -> h   putmem of the GPU payload into arena + offset, quiet()
//   4. c -> h   put_signal commit; h verifies the payload crc in its arena,
//               publishes the (client, version) -> extent directory entry to
//               the replica server (h + 1) % S, and put_signals the ack.
//               Only then is the checkpoint acknowledged — and an
//               acknowledged latest version is never evicted.
// Restore is fully one-sided: the client gets the directory entry from the
// replica, gets the payload from the home arena, then re-gets the entry and
// retries when the generation seqlock changed (repack moved the bytes
// underneath the read).
//
// Under a sim::FaultPlan, proxy crashes replay staged transfers and P2P
// revocation reroutes GPU-source puts through host staging; the ack rule
// above is what makes "zero lost acknowledged checkpoints" checkable.
#pragma once

#include <cstddef>
#include <cstdint>

#include "apps/checkpoint/traffic.hpp"
#include "core/runtime.hpp"

namespace gdrshmem::apps::ckpt {

struct CheckpointConfig {
  /// PEs [0, num_servers) serve; the rest are clients. At least 2 servers
  /// (the directory replica must live on a different PE than the home).
  int num_servers = 2;
  /// Pmem arena carved per server (<= RuntimeOptions::pmem_heap_bytes).
  std::size_t pool_bytes = 1u << 20;
  /// Pool chunk granularity (power of two).
  std::size_t chunk_bytes = 4096;
  /// Directory ring depth per client: version v lives in slot v % dir_slots,
  /// so at most dir_slots versions of one client are restorable at once.
  int dir_slots = 4;
  OpenLoopParams traffic;
  /// Byte-compare every restore against the regenerated model state (tests);
  /// crc verification always runs.
  bool verify_restores = true;
};

struct CheckpointResult {
  std::uint64_t checkpoints_acked = 0;
  std::uint64_t checkpoints_rejected = 0;
  std::uint64_t restores_ok = 0;
  /// Acked checkpoints whose restore failed or returned wrong bytes. The
  /// service's durability claim is exactly lost_acked == 0, fault plan or
  /// not.
  std::uint64_t lost_acked = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_restored = 0;
  std::uint64_t evictions = 0;   // cold checkpoints dropped for space
  std::uint64_t supersedes = 0;  // old versions displaced by their dir slot
  std::uint64_t repacks = 0;     // arena compactions
  std::uint64_t extents_moved = 0;
  std::uint64_t restore_retries = 0;  // seqlock conflicts with repack
  double makespan_ms = 0;
  double goodput_mbps = 0;  // acked checkpoint bytes / makespan
  // Request latencies (virtual ns, measured from the scheduled open-loop
  // arrival so queueing is included), from core::Metrics histograms.
  std::uint64_t ckpt_p50_ns = 0, ckpt_p99_ns = 0, ckpt_p999_ns = 0;
  std::uint64_t restore_p50_ns = 0, restore_p99_ns = 0, restore_p999_ns = 0;
  /// Order-independent fold of every client's (version, crc, latency)
  /// stream: equal digests mean bit-identical application behavior AND
  /// bit-identical virtual-time latencies.
  std::uint64_t digest = 0;
};

/// Run the service on a fresh runtime built from `cluster`/`opts`.
/// Requires opts.pmem_heap_bytes >= cfg.pool_bytes and more PEs than
/// servers. Fault plans come in through opts.faults.
CheckpointResult run_checkpoint_service(const hw::ClusterConfig& cluster,
                                        const core::RuntimeOptions& opts,
                                        const CheckpointConfig& cfg);

}  // namespace gdrshmem::apps::ckpt
