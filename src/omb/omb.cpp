#include "omb/omb.hpp"

#include <algorithm>

#include "core/ctx.hpp"

namespace gdrshmem::omb {

using core::Ctx;
using core::Domain;
using core::Runtime;
using core::RuntimeOptions;

namespace {

hw::ClusterConfig two_party_cluster(bool same_socket) {
  hw::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.pes_per_node = 2;
  cfg.hca_gpu_same_socket = same_socket;
  return cfg;
}

RuntimeOptions options_for(core::TransportKind kind, const core::Tuning& tuning,
                           std::size_t max_bytes) {
  RuntimeOptions opts;
  opts.transport = kind;
  opts.tuning = tuning;
  opts.host_heap_bytes = std::max<std::size_t>(2 * max_bytes + (1u << 20), 16u << 20);
  opts.gpu_heap_bytes = opts.host_heap_bytes;
  return opts;
}

}  // namespace

std::string config_label(const LatencyConfig& cfg) {
  std::string s = cfg.intra_node ? "intra " : "inter ";
  s += to_string(cfg.local);
  s += "-";
  s += cfg.remote == Domain::kGpu ? "D" : "H";
  s += cfg.is_put ? " put" : " get";
  return s;
}

std::vector<std::size_t> small_message_sizes() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

std::vector<std::size_t> large_message_sizes() {
  return {16u << 10, 32u << 10, 64u << 10, 128u << 10, 256u << 10,
          512u << 10, 1u << 20, 2u << 20, 4u << 20};
}

std::vector<LatencyPoint> run_latency(const LatencyConfig& cfg) {
  if (cfg.sizes.empty()) throw core::ShmemError("latency sweep needs sizes");
  std::size_t max_bytes = *std::max_element(cfg.sizes.begin(), cfg.sizes.end());
  Runtime rt(two_party_cluster(cfg.hca_gpu_same_socket),
             options_for(cfg.transport, cfg.tuning, max_bytes));
  const int target = cfg.intra_node ? 1 : 2;
  std::vector<LatencyPoint> out;
  rt.run([&](Ctx& ctx) {
    auto* sym = static_cast<std::byte*>(ctx.shmalloc(max_bytes, cfg.remote));
    std::vector<std::byte> host_local(max_bytes);
    std::byte* local = host_local.data();
    if (cfg.local == Loc::kDevice) {
      local = static_cast<std::byte*>(ctx.cuda_malloc(max_bytes));
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      for (std::size_t bytes : cfg.sizes) {
        for (int i = 0; i < cfg.warmup; ++i) {
          if (cfg.is_put) {
            ctx.putmem(sym, local, bytes, target);
            ctx.quiet();
          } else {
            ctx.getmem(local, sym, bytes, target);
          }
        }
        sim::Time t0 = ctx.now();
        for (int i = 0; i < cfg.iters; ++i) {
          if (cfg.is_put) {
            ctx.putmem(sym, local, bytes, target);
            ctx.quiet();
          } else {
            ctx.getmem(local, sym, bytes, target);
          }
        }
        double us = (ctx.now() - t0).to_us() / cfg.iters;
        out.push_back(LatencyPoint{bytes, us});
      }
    }
    ctx.barrier_all();
  });
  return out;
}

std::vector<OverlapPoint> run_overlap(const OverlapConfig& cfg) {
  std::vector<OverlapPoint> out;
  double base_us = 0;
  bool first = true;
  std::vector<double> probes = cfg.target_compute_us;
  probes.insert(probes.begin(), 0.0);  // baseline: idle (but progressing) target
  for (double compute_us : probes) {
    Runtime rt(two_party_cluster(true),
               options_for(cfg.transport, core::Tuning{}, cfg.bytes));
    double comm_us = 0;
    rt.run([&](Ctx& ctx) {
      auto* sym = static_cast<std::byte*>(ctx.shmalloc(cfg.bytes, Domain::kGpu));
      void* local = ctx.cuda_malloc(cfg.bytes);
      // Warmup with a responsive target.
      if (ctx.my_pe() == 0) {
        ctx.putmem(sym, local, cfg.bytes, 2);
        ctx.quiet();
      }
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        sim::Time t0 = ctx.now();
        for (int i = 0; i < cfg.iters; ++i) {
          ctx.putmem(sym, local, cfg.bytes, 2);
          ctx.quiet();
        }
        comm_us = (ctx.now() - t0).to_us() / cfg.iters;
      } else if (ctx.my_pe() == 2) {
        // Busy compute per iteration, never entering the runtime.
        for (int i = 0; i < cfg.iters; ++i) {
          ctx.compute(sim::Duration::us(compute_us));
        }
      }
      ctx.barrier_all();
    });
    if (first) {
      base_us = comm_us;
      first = false;
      continue;
    }
    OverlapPoint p;
    p.target_compute_us = compute_us;
    p.comm_time_us = comm_us;
    double extra = std::max(0.0, comm_us - base_us);
    p.overlap_pct = comm_us > 0 ? 100.0 * (1.0 - extra / comm_us) : 100.0;
    out.push_back(p);
  }
  return out;
}

BandwidthResult run_bandwidth(const BandwidthConfig& cfg) {
  Runtime rt(two_party_cluster(true),
             options_for(cfg.transport, core::Tuning{},
                         cfg.bytes * static_cast<std::size_t>(cfg.window)));
  const int target = cfg.intra_node ? 1 : 2;
  BandwidthResult res;
  res.bytes = cfg.bytes;
  rt.run([&](Ctx& ctx) {
    std::size_t region = cfg.bytes * static_cast<std::size_t>(cfg.window);
    auto* sym = static_cast<std::byte*>(ctx.shmalloc(region, cfg.remote));
    std::vector<std::byte> host_local(region);
    std::byte* local = host_local.data();
    if (cfg.local == Loc::kDevice) {
      local = static_cast<std::byte*>(ctx.cuda_malloc(region));
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      // Warmup window.
      for (int w = 0; w < cfg.window; ++w) {
        ctx.putmem_nbi(sym + w * cfg.bytes, local + w * cfg.bytes, cfg.bytes, target);
      }
      ctx.quiet();
      sim::Time t0 = ctx.now();
      for (int i = 0; i < cfg.iters; ++i) {
        for (int w = 0; w < cfg.window; ++w) {
          ctx.putmem_nbi(sym + w * cfg.bytes, local + w * cfg.bytes, cfg.bytes,
                         target);
        }
        ctx.quiet();
      }
      double us = (ctx.now() - t0).to_us();
      double total_bytes = static_cast<double>(cfg.bytes) * cfg.window * cfg.iters;
      res.mbps = total_bytes / us;  // bytes/us == MB/s
    }
    ctx.barrier_all();
  });
  return res;
}

}  // namespace gdrshmem::omb
