// OMB-GPU-style microbenchmark harness (the paper evaluates with [25]):
// point-to-point put/get latency sweeps for every {H,D} x {H,D} x
// {intra,inter} configuration, bandwidth, and the Fig 10 overlap benchmark.
//
// Measurement convention: "latency" is the source-side time of one
// putmem+quiet (data guaranteed delivered) or one blocking getmem, the
// median over `iters` iterations after `warmup` untimed ones.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace gdrshmem::omb {

/// Where the *local* (non-symmetric) buffer lives.
enum class Loc { kHost, kDevice };

inline const char* to_string(Loc l) { return l == Loc::kHost ? "H" : "D"; }

struct LatencyConfig {
  core::TransportKind transport = core::TransportKind::kEnhancedGdr;
  bool intra_node = false;
  Loc local = Loc::kDevice;
  core::Domain remote = core::Domain::kGpu;
  bool is_put = true;
  bool hca_gpu_same_socket = true;
  std::vector<std::size_t> sizes;
  int warmup = 10;
  int iters = 100;
  core::Tuning tuning;  // threshold knobs (ablations)
};

struct LatencyPoint {
  std::size_t bytes = 0;
  double latency_us = 0;
};

/// Label like "inter D-D put": the paper's configuration naming, where
/// X-Y is (local buffer location)-(remote symmetric domain).
std::string config_label(const LatencyConfig& cfg);

/// Runs a fresh 2-node (or 1-node for intra) job and sweeps the sizes.
std::vector<LatencyPoint> run_latency(const LatencyConfig& cfg);

/// Small/large default sweeps matching the paper's figures.
std::vector<std::size_t> small_message_sizes();   // 1 B .. 8 KB
std::vector<std::size_t> large_message_sizes();   // 16 KB .. 4 MB

// ---------------------------------------------------------------------------

struct OverlapConfig {
  core::TransportKind transport = core::TransportKind::kEnhancedGdr;
  std::size_t bytes = 8 * 1024;
  /// Target-side busy-compute durations to probe (us).
  std::vector<double> target_compute_us;
  int iters = 20;
};

struct OverlapPoint {
  double target_compute_us = 0;
  double comm_time_us = 0;   // source-observed put+quiet time
  double overlap_pct = 0;    // 100 * (1 - (comm - base) / comm) clamped
};

/// Fig 10: source put+quiet latency while the target busy-computes.
std::vector<OverlapPoint> run_overlap(const OverlapConfig& cfg);

// ---------------------------------------------------------------------------

struct BandwidthConfig {
  core::TransportKind transport = core::TransportKind::kEnhancedGdr;
  bool intra_node = false;
  Loc local = Loc::kDevice;
  core::Domain remote = core::Domain::kGpu;
  std::size_t bytes = 1u << 20;
  int window = 16;  // nbi puts per quiet
  int iters = 20;
};

struct BandwidthResult {
  std::size_t bytes = 0;
  double mbps = 0;
};

BandwidthResult run_bandwidth(const BandwidthConfig& cfg);

}  // namespace gdrshmem::omb
