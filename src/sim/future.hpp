// A one-shot completion flag processes can block on — the simulation analog
// of a CQ entry / future.
#pragma once

#include <memory>

#include "sim/engine.hpp"

namespace gdrshmem::sim {

class Completion {
 public:
  bool done() const { return fired_; }

  /// Fired, but in error state (the CQ analog of a flushed/failed WQE).
  bool failed() const { return fired_ && !ok_; }

  /// Fired successfully.
  bool ok() const { return fired_ && ok_; }

  /// Mark complete and wake waiters (call from engine/event context at the
  /// completion instant).
  void fire() {
    fired_ = true;
    done_.notify();
  }

  /// Mark complete *with error* and wake waiters. Waiters must check
  /// failed() and decide whether to re-post the operation.
  void fire_error() {
    ok_ = false;
    fired_ = true;
    done_.notify();
  }

  /// Block the calling process until fire() or fire_error(); check failed()
  /// afterwards when fault injection is active.
  void wait(Process& proc) {
    proc.await_until(done_, [this] { return fired_; });
  }

 private:
  bool fired_ = false;
  bool ok_ = true;
  Notification done_;
};

using CompletionPtr = std::shared_ptr<Completion>;

/// Create a completion that fires at absolute time `at`.
inline CompletionPtr fire_at(Engine& eng, Time at) {
  auto c = std::make_shared<Completion>();
  eng.schedule_at(at, [c] { c->fire(); });
  return c;
}

}  // namespace gdrshmem::sim
