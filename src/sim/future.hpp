// A one-shot completion flag processes can block on — the simulation analog
// of a CQ entry / future.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace gdrshmem::sim {

class Completion {
 public:
  bool done() const { return fired_; }

  /// Fired, but in error state (the CQ analog of a flushed/failed WQE).
  bool failed() const { return fired_ && !ok_; }

  /// Fired successfully.
  bool ok() const { return fired_ && ok_; }

  /// Mark complete and wake waiters (call from engine/event context at the
  /// completion instant).
  void fire() {
    fired_ = true;
    done_.notify();
    run_subscribers();
  }

  /// Mark complete *with error* and wake waiters. Waiters must check
  /// failed() and decide whether to re-post the operation.
  void fire_error() {
    ok_ = false;
    fired_ = true;
    done_.notify();
    run_subscribers();
  }

  /// Block the calling process until fire() or fire_error(); check failed()
  /// afterwards when fault injection is active.
  void wait(Process& proc) {
    proc.await_until(done_, [this] { return fired_; });
  }

  /// Run `fn` (in event context) when this completion fires, in either
  /// state; runs immediately if it already fired. Used to compose multi-part
  /// hardware operations (rail stripes, datagram segments) into one CQ-level
  /// completion without spawning a waiter process.
  void subscribe(std::function<void()> fn) {
    if (fired_) {
      fn();
      return;
    }
    subscribers_.push_back(std::move(fn));
  }

 private:
  void run_subscribers() {
    // Move out first: a subscriber may (transitively) subscribe again.
    std::vector<std::function<void()>> subs = std::move(subscribers_);
    subscribers_.clear();
    for (auto& fn : subs) fn();
  }

  bool fired_ = false;
  bool ok_ = true;
  Notification done_;
  std::vector<std::function<void()>> subscribers_;
};

using CompletionPtr = std::shared_ptr<Completion>;

/// Create a completion that fires at absolute time `at`.
inline CompletionPtr fire_at(Engine& eng, Time at) {
  auto c = std::make_shared<Completion>();
  eng.schedule_at(at, [c] { c->fire(); });
  return c;
}

/// One completion that fires when every part has fired — successfully only
/// if every part succeeded. The parts must eventually fire.
inline CompletionPtr aggregate(std::vector<CompletionPtr> parts) {
  auto master = std::make_shared<Completion>();
  auto pending = std::make_shared<std::size_t>(parts.size());
  auto any_failed = std::make_shared<bool>(false);
  if (parts.empty()) {
    master->fire();
    return master;
  }
  for (auto& part : parts) {
    Completion* raw = part.get();
    part->subscribe([master, pending, any_failed, raw] {
      if (raw->failed()) *any_failed = true;
      if (--*pending == 0) {
        if (*any_failed) {
          master->fire_error();
        } else {
          master->fire();
        }
      }
    });
  }
  return master;
}

}  // namespace gdrshmem::sim
