// Execution backends for the virtual-time engine.
//
// A `Process` is a cooperative thread of control; *how* control transfers
// between the engine loop and a process body is a backend concern:
//
//   * fibers  — user-space stackful contexts (makecontext/swapcontext) with
//               guard-paged stacks; a handoff is a function-call-cost context
//               swap on the engine's own OS thread. Default.
//   * threads — one OS thread per process with a mutex/condvar baton; a
//               handoff costs two kernel context switches. Kept as a
//               fallback and as the determinism cross-check.
//
// Exactly one context (engine or one process) runs at any instant under
// either backend, so event order — and therefore every simulation result —
// is bit-identical across backends.
#pragma once

#include <functional>
#include <memory>

namespace gdrshmem::sim {

class Engine;
class Process;

enum class BackendKind { kThreads, kFibers };

/// Backend chosen by GDRSHMEM_SIM_BACKEND ("threads" | "fibers");
/// fibers when unset. Unknown values throw std::invalid_argument.
BackendKind backend_from_env();

const char* to_string(BackendKind k);

/// How the fiber backend swaps contexts:
///   * fast     — a ~20-instruction register swap (callee-saved GPRs, mxcsr,
///                x87 control word). No syscall. x86-64 only; on other
///                architectures it silently degrades to ucontext.
///   * ucontext — swapcontext(3). Portable, but glibc performs an
///                rt_sigprocmask syscall per swap, which dominates handoff
///                cost (~1 us each) at 4K-16K PEs. Kept as the reference and
///                as the A/B baseline for bench_engine_overhead.
/// Both modes transfer control at the same points, so results are
/// bit-identical. Selected by GDRSHMEM_SIM_FIBER_SWITCH; fast when unset.
enum class FiberSwitch { kFast, kUcontext };

/// Mode chosen by GDRSHMEM_SIM_FIBER_SWITCH ("fast" | "ucontext"); fast when
/// unset. Unknown values throw std::invalid_argument. Read at FiberBackend
/// construction (i.e. per Engine), not cached per process.
FiberSwitch fiber_switch_from_env();

const char* to_string(FiberSwitch m);

/// Per-process execution state (a fiber stack + context, or an OS thread +
/// condvar). Owned by the Process; destroyed only once the process is done.
class ProcessExec {
 public:
  virtual ~ProcessExec() = default;
};

/// Strategy for transferring control between the engine and processes.
/// All calls happen on the engine's OS thread or inside a process context it
/// resumed — never concurrently.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Create the execution state for `p`, primed to run its body on the first
  /// resume(). Called from Engine::spawn (engine or process context).
  virtual std::unique_ptr<ProcessExec> create(Process& p) = 0;

  /// Engine context: run `p` until it yields back or finishes.
  virtual void resume(Process& p) = 0;

  /// Process context (called from within `p`): give control back to the
  /// engine; returns when the engine next resumes `p`.
  virtual void yield(Process& p) = 0;

 protected:
  // Backend implementations are written against these helpers instead of
  // being friends of Process/Engine themselves.
  static void run_body(Process& p);          ///< standard body + kill/error wrap
  static ProcessExec* exec(Process& p);
  /// Maintain Process::current() for the calling OS thread. Thread backend:
  /// set once per process thread. Fiber backend: set/cleared around each
  /// context swap on the engine thread.
  static void set_current(Process* p);
};

std::unique_ptr<ExecutionBackend> make_thread_backend();
std::unique_ptr<ExecutionBackend> make_fiber_backend();
std::unique_ptr<ExecutionBackend> make_backend(BackendKind k);

}  // namespace gdrshmem::sim
