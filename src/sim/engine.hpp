// Deterministic virtual-time discrete-event engine with cooperative
// processes.
//
// Each simulated processing element (PE), proxy daemon, or service runs as a
// `Process`: a cooperative thread of control that is scheduled so that
// exactly one context (either the engine or one process) executes at any
// instant, with control transferring only at explicit wait points. This
// gives:
//   * determinism: event order is (time, sequence-number) and handoffs are
//     strictly serialized, so every run is bit-identical;
//   * simplicity: functional state (heaps, queues) needs no locking.
//
// *How* control transfers is pluggable (see exec_backend.hpp): user-space
// fibers by default, one-OS-thread-per-process as a fallback — selected by
// GDRSHMEM_SIM_BACKEND=fibers|threads or the Engine constructor. Both
// backends produce identical virtual-time results.
//
// Timing is virtual: `Process::delay()` advances the simulated clock without
// consuming wall time beyond the handoff cost.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/exec_backend.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {

class Engine;
class Process;

/// Thrown inside a daemon process when the engine shuts it down; the process
/// body should let it propagate (it unwinds the process's stack).
struct ProcessKilled {};

/// Thrown by Engine::run() when no event is pending but non-daemon processes
/// are still blocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// A broadcast wakeup point. Processes block on it with Process::await();
/// notify() wakes every current waiter at the present virtual time.
/// Level-triggered conditions are built on top by re-checking a predicate
/// after each wakeup (see Process::await_until).
class Notification {
 public:
  /// Wake all processes currently waiting. Safe to call from event callbacks
  /// and from process context.
  void notify();

 private:
  friend class Process;
  std::vector<Process*> waiters_;
};

/// A cooperative simulated thread of control.
class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  Engine& engine() const { return *engine_; }

  /// The process whose context is currently executing, or nullptr when the
  /// caller is in engine/event context. Works under both backends — with
  /// fibers every process shares the engine's OS thread, so per-OS-thread
  /// state cannot identify the running PE; use this instead.
  static Process* current();

  /// Arbitrary per-process slot for layered APIs (e.g. the C-API context
  /// binding). The engine does not interpret it.
  void* user_slot() const { return user_slot_; }
  void set_user_slot(void* v) { user_slot_ = v; }

  /// Advance virtual time by `d` (callable only from this process's context).
  void delay(Duration d);

  /// Block until `n` is notified.
  void await(Notification& n);

  /// Block on `n` until `pred()` holds; re-checks after every notification.
  /// The predicate is evaluated once before waiting.
  template <typename Pred>
  void await_until(Notification& n, Pred&& pred) {
    while (!pred()) await(n);
  }

 private:
  friend class Engine;
  friend class Notification;
  friend class ExecutionBackend;
  Process(Engine& eng, std::string name, bool daemon);

  /// Hand control back to the engine; throws ProcessKilled on wakeup if a
  /// kill was requested while we were out.
  void yield_to_engine();
  void check_killed() const;

  Engine* engine_;
  std::string name_;
  bool daemon_;
  bool kill_requested_ = false;
  enum class State { kCreated, kReady, kRunning, kBlocked, kDone } state_ = State::kCreated;
  std::function<void(Process&)> body_;
  std::unique_ptr<ProcessExec> exec_;
  void* user_slot_ = nullptr;
};

/// Wakeup batching chosen by GDRSHMEM_SIM_BATCH (0/1, on/off, true/false);
/// on when unset. Unknown values throw std::invalid_argument.
bool batch_from_env();

/// The event loop. Owns all processes, the pending-event queue, and the
/// execution backend.
class Engine {
 public:
  explicit Engine(BackendKind backend = backend_from_env(),
                  QueueKind queue = queue_from_env());
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const { return now_; }
  BackendKind backend_kind() const { return backend_->kind(); }
  QueueKind queue_kind() const { return queue_.kind(); }

  /// When true (default), Notification::notify schedules one queue event
  /// that resumes the whole woken cohort in registration order, instead of
  /// one event per waiter — a 16K-PE barrier release costs one queue
  /// operation rather than 16K. Virtual times and process execution order
  /// are unchanged; only events_executed() differs. Toggle for A/B runs.
  bool batch_wakeups() const { return batch_wakeups_; }
  void set_batch_wakeups(bool b) { batch_wakeups_ = b; }

  /// Schedule `fn` to run in engine context at absolute time `at`
  /// (must be >= now()). Events at equal times run in scheduling order.
  void schedule_at(Time at, EventFn fn);
  void schedule_after(Duration d, EventFn fn) {
    schedule_at(now_ + d, std::move(fn));
  }

  /// Create a process whose body starts running at virtual time now().
  /// Daemon processes do not keep the simulation alive: once the event queue
  /// drains, the run ends and daemons are killed.
  Process& spawn(std::string name, std::function<void(Process&)> body,
                 bool daemon = false);

  /// Run until the event queue is empty. Throws DeadlockError if non-daemon
  /// processes remain blocked with nothing pending; rethrows the first
  /// exception a process body raised, after releasing everything blocked.
  void run();

  /// Kill and unwind all daemon processes (also done by run() on completion).
  void shutdown_daemons();

  /// Forcibly unwind one process: ProcessKilled is raised at its current
  /// wait point and its stack is reclaimed. Safe to call from event context
  /// on blocked or ready processes; no-op if the process already finished.
  /// Used by fault injection to crash a proxy daemon mid-transfer.
  void kill(Process& p) { kill_process(p); }

  /// Number of events executed so far (diagnostic).
  std::uint64_t events_executed() const { return events_executed_; }

  // ---- retained-capacity bookkeeping ------------------------------------
  // Exported as core::Metrics gauges by Runtime::snapshot_metrics. The
  // high-water marks are sticky: they survive release_retained_memory().

  /// Largest number of simultaneously pending events ever observed.
  std::size_t queue_size_hwm() const { return queue_.size_hwm(); }
  /// Largest callback-slot pool ever grown to.
  std::size_t slot_pool_hwm() const { return slot_pool_hwm_; }
  /// Bytes currently retained by the event queue and slot pool (capacity).
  std::size_t retained_bytes() const;
  /// Shrink queue and slot-pool storage to fit the current contents. Called
  /// automatically when run() drains the queue (release-on-quiescence);
  /// safe to call at any time.
  void release_retained_memory();

 private:
  friend class Process;
  friend class Notification;
  friend class ExecutionBackend;

  // Pending events live in a slot pool (`slots_` + `free_slots_`) so the
  // callback storage is recycled instead of reallocated; the ordering
  // structure (EventQueue: timing wheel by default, binary heap for A/B and
  // differential testing) holds only lightweight {time, seq, slot} entries.
  // Order is the strict total order (at, seq) — queue layout can never
  // affect pop order, which keeps runs bit-identical across backends *and*
  // across queue kinds.

  // Runs `p` (engine context) until it yields back; the engine context is
  // suspended meanwhile.
  void run_process(Process& p);
  void kill_process(Process& p);

  std::unique_ptr<ExecutionBackend> backend_;
  Time now_ = Time::zero();
  std::exception_ptr first_error_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  EventQueue queue_;
  bool batch_wakeups_ = batch_from_env();
  std::size_t slot_pool_hwm_ = 0;
  std::vector<EventFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::unique_ptr<Process>> processes_;
  bool running_ = false;
};

}  // namespace gdrshmem::sim
