// Deterministic virtual-time discrete-event engine with cooperative
// processes.
//
// Each simulated processing element (PE), proxy daemon, or service runs as a
// `Process`: a dedicated OS thread that is scheduled cooperatively — exactly
// one thread (either the engine or one process) executes at any instant, and
// control transfers only at explicit wait points. This gives:
//   * determinism: event order is (time, sequence-number) and handoffs are
//     strictly serialized, so every run is bit-identical;
//   * simplicity: functional state (heaps, queues) needs no locking.
//
// Timing is virtual: `Process::delay()` advances the simulated clock without
// consuming wall time beyond the handoff cost.
#pragma once

#include <condition_variable>
#include <exception>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/time.hpp"

namespace gdrshmem::sim {

class Engine;
class Process;

/// Thrown inside a daemon process when the engine shuts it down; the process
/// body should let it propagate.
struct ProcessKilled {};

/// Thrown by Engine::run() when no event is pending but non-daemon processes
/// are still blocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// A broadcast wakeup point. Processes block on it with Process::await();
/// notify() wakes every current waiter at the present virtual time.
/// Level-triggered conditions are built on top by re-checking a predicate
/// after each wakeup (see Process::await_until).
class Notification {
 public:
  /// Wake all processes currently waiting. Safe to call from event callbacks
  /// and from process context.
  void notify();

 private:
  friend class Process;
  std::vector<Process*> waiters_;
};

/// A cooperative simulated thread of control.
class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  Engine& engine() const { return *engine_; }

  /// Advance virtual time by `d` (callable only from this process's thread).
  void delay(Duration d);

  /// Block until `n` is notified.
  void await(Notification& n);

  /// Block on `n` until `pred()` holds; re-checks after every notification.
  /// The predicate is evaluated once before waiting.
  template <typename Pred>
  void await_until(Notification& n, Pred&& pred) {
    while (!pred()) await(n);
  }

 private:
  friend class Engine;
  friend class Notification;
  Process(Engine& eng, std::string name, bool daemon);

  void yield_to_engine_locked(std::unique_lock<std::mutex>& lk);
  void check_killed() const;

  Engine* engine_;
  std::string name_;
  bool daemon_;
  bool kill_requested_ = false;
  enum class State { kCreated, kReady, kRunning, kBlocked, kDone } state_ = State::kCreated;
  std::thread thread_;
  std::condition_variable cv_;
};

/// The event loop. Owns all processes and the pending-event queue.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const { return now_; }

  /// Schedule `fn` to run in engine context at absolute time `at`
  /// (must be >= now()). Events at equal times run in scheduling order.
  void schedule_at(Time at, std::function<void()> fn);
  void schedule_after(Duration d, std::function<void()> fn) {
    schedule_at(now_ + d, std::move(fn));
  }

  /// Create a process whose body starts running at virtual time now().
  /// Daemon processes do not keep the simulation alive: once the event queue
  /// drains, the run ends and daemons are killed.
  Process& spawn(std::string name, std::function<void(Process&)> body,
                 bool daemon = false);

  /// Run until the event queue is empty. Throws DeadlockError if non-daemon
  /// processes remain blocked with nothing pending; rethrows the first
  /// exception a process body raised, after releasing everything blocked.
  void run();

  /// Kill and join all daemon processes (also done by run() on completion).
  void shutdown_daemons();

  /// Number of events executed so far (diagnostic).
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  friend class Process;
  friend class Notification;

  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  // Runs `p` (engine context) until it yields back; engine thread blocks
  // meanwhile. All handoffs serialize on mutex_.
  void run_process(Process& p);
  void kill_process(Process& p);

  Time now_ = Time::zero();
  std::exception_ptr first_error_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<std::unique_ptr<Process>> processes_;

  // Handoff machinery: `active_` designates who may run (nullptr = engine).
  std::mutex mutex_;
  std::condition_variable engine_cv_;
  Process* active_ = nullptr;
  bool running_ = false;
};

}  // namespace gdrshmem::sim
