// Bandwidth-limited links and multi-link transfer paths.
//
// A Link is a FIFO serialization server: transfers occupy it for their
// serialization time and queue behind each other. A Path is an end-to-end
// route with a fixed one-way latency, an *effective* bandwidth (the min of
// every segment the transfer crosses — e.g. a GDR write is capped by the
// PCIe P2P write bandwidth even though the IB wire is faster), and the set
// of shared links it occupies. Transfers are modeled cut-through: one
// serialization at the effective bandwidth plus the path latency, which is
// how pipelined PCIe/IB hardware behaves for a single message.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace gdrshmem::sim {

class Link {
 public:
  /// `bandwidth_mbps` in MB/s (1 MB = 1e6 bytes), matching the units the
  /// paper reports (e.g. FDR IB = 6,397 MB/s).
  Link(std::string name, double bandwidth_mbps)
      : name_(std::move(name)), bandwidth_mbps_(bandwidth_mbps) {}

  const std::string& name() const { return name_; }
  double bandwidth_mbps() const { return bandwidth_mbps_; }

  /// Earliest instant a new transfer may start serializing.
  Time next_free() const { return next_free_; }

  /// Occupy the link from max(earliest, next_free()) for `busy`.
  /// Returns the occupation start time.
  Time reserve(Time earliest, Duration busy) {
    Time start = max(earliest, next_free_);
    next_free_ = start + busy;
    return start;
  }

  /// Total bytes ever carried (utilization accounting).
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  void account(std::size_t bytes) { bytes_transferred_ += bytes; }

 private:
  std::string name_;
  double bandwidth_mbps_;
  Time next_free_ = Time::zero();
  std::uint64_t bytes_transferred_ = 0;
};

/// An end-to-end route for one hardware transfer.
struct Path {
  Duration latency = Duration::zero();
  /// Effective end-to-end bandwidth in MB/s; <= 0 means "not bandwidth
  /// limited" (pure latency, e.g. a doorbell write).
  double bw_mbps = 0;
  /// Shared resources this transfer occupies for its serialization time.
  std::vector<Link*> links;

  Duration serialization(std::size_t bytes) const {
    if (bw_mbps <= 0) return Duration::zero();
    return Duration::us(static_cast<double>(bytes) / bw_mbps);
  }

  /// Pure cost, ignoring contention.
  Duration cost(std::size_t bytes) const { return latency + serialization(bytes); }

  /// Reserve the shared links and return the completion time of a transfer
  /// of `bytes` issued at `now`: queue behind busy links, then latency +
  /// serialization.
  Time schedule(Time now, std::size_t bytes) {
    Duration ser = serialization(bytes);
    Time start = now;
    for (Link* l : links) start = max(start, l->next_free());
    for (Link* l : links) {
      l->reserve(start, ser);
      l->account(bytes);
    }
    return start + latency + ser;
  }
};

/// Concatenate path segments: latencies add, bandwidth is the minimum of the
/// bandwidth-limited segments, link sets union. A link shared by several
/// segments (e.g. the HCA's PCIe slot on a loopback route, crossed once per
/// direction) appears once: a transfer occupies each physical resource for
/// one serialization, not one per segment that mentions it.
inline Path combine(std::initializer_list<Path> segments) {
  Path out;
  for (const Path& s : segments) {
    out.latency += s.latency;
    if (s.bw_mbps > 0 && (out.bw_mbps <= 0 || s.bw_mbps < out.bw_mbps)) {
      out.bw_mbps = s.bw_mbps;
    }
    for (Link* l : s.links) {
      if (std::find(out.links.begin(), out.links.end(), l) == out.links.end()) {
        out.links.push_back(l);
      }
    }
  }
  return out;
}

}  // namespace gdrshmem::sim
