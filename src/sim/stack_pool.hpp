// Process-lifetime free-list of guard-paged fiber stacks.
//
// Creating a fiber stack costs an mmap + mprotect syscall pair plus the page
// faults of first touch; at 4K-16K PEs that cold-start cost (and the VMA
// churn of creating/destroying 16K mappings per simulation) dominates short
// runs. The pool recycles mappings across Process and Engine lifetimes:
// releasing a stack returns it (guard page intact, pages still committed) to
// a size-keyed free list, and the next acquire of the same geometry is a
// list pop — no syscalls, no faults.
//
// Stacks are lazily committed by the kernel on creation, so pooled capacity
// costs address space plus only the pages a fiber actually touched. The pool
// is bounded (GDRSHMEM_SIM_STACK_POOL, default 16384 stacks; 0 disables
// pooling); stacks beyond the bound are munmapped on release, and trim()
// drops everything pooled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace gdrshmem::sim {

/// A guard-paged fiber stack mapping: [guard page][usable stack].
struct FiberStack {
  void* map_base = nullptr;
  std::size_t map_len = 0;
  void* stack_lo = nullptr;  ///< usable stack bottom, just above the guard
  std::size_t stack_len = 0;
};

class FiberStackPool {
 public:
  /// The process-wide pool (fiber stacks outlive any one Engine).
  static FiberStackPool& instance();

  /// A guard-paged stack with `stack_bytes` usable bytes (page-rounded):
  /// pooled if one of that geometry is free, freshly mapped otherwise.
  /// Throws std::system_error if the kernel refuses the mapping.
  FiberStack acquire(std::size_t stack_bytes);

  /// Return a stack to the pool (or unmap it if the pool is full/disabled).
  void release(const FiberStack& s) noexcept;

  /// Unmap every pooled stack (e.g. to re-baseline an A/B benchmark).
  void trim() noexcept;

  /// Max stacks retained across all geometries; 0 disables pooling.
  /// Programmatic override of GDRSHMEM_SIM_STACK_POOL for A/B runs.
  void set_capacity(std::size_t max_pooled);
  std::size_t capacity() const;

  // Cumulative stats (process lifetime), for tests and the engine bench.
  std::uint64_t mapped() const;  ///< stacks created via mmap
  std::uint64_t reused() const;  ///< acquires served from the free list
  std::size_t pooled() const;    ///< stacks currently in the free list

 private:
  FiberStackPool();

  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<FiberStack>> free_;  // keyed by map_len
  std::size_t capacity_;
  std::size_t pooled_ = 0;
  std::uint64_t mapped_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace gdrshmem::sim
