// Small deterministic PRNG (splitmix64) for workload generation.
// The simulation itself never consumes randomness — determinism comes from
// the engine — but synthetic workloads and property tests do.
#pragma once

#include <cstdint>

namespace gdrshmem::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace gdrshmem::sim
