// Deterministic fault injection for the simulated fabric.
//
// A FaultPlan is a declarative, seeded schedule of failures expressed in
// virtual time: per-attempt wire/atomic completion-error rates, transient
// link flaps (an HCA port down for a window), proxy-daemon crashes, and
// P2P (GPUDirect) capability revocation on a node. The plan is plain data —
// it can be built programmatically or parsed from the GDRSHMEM_FAULTS
// environment variable — and a FaultInjector turns it into per-attempt
// decisions using a splitmix64 stream, so the same seed yields bit-identical
// failure sequences on both execution backends.
//
// The injector also centralizes fault/recovery accounting: every layer
// (verbs retransmit logic, transport replay, proxy restart) reports through
// on_event(), and an optional hook lets the runtime mirror events into the
// operation tracer.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace gdrshmem::sim {

/// HCA port on `node` is down during [at_us, at_us + duration_us).
struct LinkFlap {
  int node = 0;
  double at_us = 0;
  double duration_us = 0;
};

/// The proxy daemon on `node` is killed at at_us (it restarts after the
/// plan's restart delay).
struct ProxyCrash {
  int node = 0;
  double at_us = 0;
};

/// GPUDirect P2P capability on `node` is revoked at at_us (permanently).
struct P2pRevoke {
  int node = 0;
  double at_us = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  double wire_error_rate = 0;    // per-attempt RDMA/send completion error
  double atomic_error_rate = 0;  // per-attempt remote-atomic request loss
  double proxy_restart_us = 300; // daemon respawn delay after a crash
  std::vector<LinkFlap> flaps;
  std::vector<ProxyCrash> crashes;
  std::vector<P2pRevoke> revokes;

  /// True when the plan injects anything at all. An empty plan guarantees
  /// the legacy (fault-free) code paths run verbatim.
  bool enabled() const {
    return wire_error_rate > 0 || atomic_error_rate > 0 || !flaps.empty() ||
           !crashes.empty() || !revokes.empty();
  }

  /// Parse the GDRSHMEM_FAULTS grammar: comma-separated key=value pairs.
  ///   seed=42,wire_error_rate=1e-3,atomic_error_rate=1e-3,restart_us=300,
  ///   flap=NODE@START_US+DURATION_US,crash=NODE@TIME_US,revoke=NODE@TIME_US
  /// flap/crash/revoke may repeat. Unknown keys and out-of-range values
  /// throw std::invalid_argument naming the offending entry.
  static FaultPlan parse(std::string_view spec);

  /// Canonical spec string; parse(spec()) round-trips the plan.
  std::string spec() const;
};

/// Categories of injected faults and recovery actions, used for counters and
/// trace mirroring.
enum class FaultEvent {
  kRetransmit,       // tier-1 HCA retransmit of a failed attempt
  kCompletionError,  // tier-1 retries exhausted; error surfaced in the CQ
  kSwReplay,         // software re-posted an op after a surfaced error
  kGdrFallback,      // op rerouted off a GDR protocol (P2P revoked)
  kProxyCrash,       // proxy daemon killed
  kProxyRestart,     // proxy daemon respawned
  kProxyReissue,     // requester timed out and re-sent a proxy request
  kStaleCtrlDrop,    // restarted/recovering proxy discarded a stale message
  kP2pRevoke,        // P2P capability withdrawn on a node
  kCount_,
};

const char* to_string(FaultEvent ev);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  bool enabled() const { return plan_.enabled(); }
  const FaultPlan& plan() const { return plan_; }

  /// Is either endpoint's HCA port inside a flap window at `now`?
  bool link_down(int src_node, int dst_node, Time now) const;

  /// Decide one wire attempt (RDMA write/read or send) between two nodes.
  /// Consumes randomness only when a probabilistic rate is configured.
  bool wire_attempt_fails(int src_node, int dst_node, Time now);

  /// Decide one remote-atomic attempt. A failed attempt models the request
  /// lost before the RMW executed, so replaying it is safe.
  bool atomic_attempt_fails(int src_node, int dst_node, Time now);

  /// Record a fault/recovery event (counted; forwarded to the hook if set).
  void on_event(FaultEvent ev, int endpoint);

  std::uint64_t count(FaultEvent ev) const {
    return counts_[static_cast<std::size_t>(ev)];
  }

  /// Observer invoked on every on_event (e.g. to mirror into a tracer).
  void set_hook(std::function<void(FaultEvent, int endpoint)> hook) {
    hook_ = std::move(hook);
  }

 private:
  FaultPlan plan_;
  Rng rng_;
  std::array<std::uint64_t, static_cast<std::size_t>(FaultEvent::kCount_)>
      counts_{};
  std::function<void(FaultEvent, int)> hook_;
};

}  // namespace gdrshmem::sim
