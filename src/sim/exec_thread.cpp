// Thread execution backend: one OS thread per process, handed a baton
// through a mutex/condvar pair. Exactly one thread (engine or one process)
// runs at any instant; every handoff costs two kernel context switches.
//
// This was the original engine implementation; it is kept as a fallback and
// as the reference the fiber backend is cross-checked against for
// determinism (both must produce bit-identical virtual-time results).
#include <condition_variable>
#include <mutex>
#include <thread>

#include "sim/engine.hpp"
#include "sim/exec_backend.hpp"

namespace gdrshmem::sim {
namespace {

class ThreadBackend;

struct ThreadExec final : ProcessExec {
  std::thread thread;
  std::condition_variable cv;

  ~ThreadExec() override {
    if (thread.joinable()) thread.join();
  }
};

class ThreadBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::kThreads; }

  std::unique_ptr<ProcessExec> create(Process& p) override {
    auto ex = std::make_unique<ThreadExec>();
    ThreadExec* t = ex.get();
    t->thread = std::thread([this, &p, t] {
      set_current(&p);  // this OS thread belongs to `p` for its whole life
      {
        // Wait for the engine to hand us the baton for the first time.
        std::unique_lock lk(mutex_);
        t->cv.wait(lk, [&] { return active_ == &p; });
      }
      run_body(p);
      std::unique_lock lk(mutex_);
      active_ = nullptr;
      engine_cv_.notify_all();
    });
    return ex;
  }

  void resume(Process& p) override {
    auto* t = static_cast<ThreadExec*>(exec(p));
    std::unique_lock lk(mutex_);
    active_ = &p;
    t->cv.notify_all();
    engine_cv_.wait(lk, [&] { return active_ == nullptr; });
  }

  void yield(Process& p) override {
    auto* t = static_cast<ThreadExec*>(exec(p));
    std::unique_lock lk(mutex_);
    active_ = nullptr;
    engine_cv_.notify_all();
    t->cv.wait(lk, [&] { return active_ == &p; });
  }

 private:
  // Handoff machinery: `active_` designates who may run (nullptr = engine).
  std::mutex mutex_;
  std::condition_variable engine_cv_;
  Process* active_ = nullptr;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_thread_backend() {
  return std::make_unique<ThreadBackend>();
}

}  // namespace gdrshmem::sim
