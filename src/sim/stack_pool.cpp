#include "sim/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <system_error>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GDRSHMEM_ASAN_STACKS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GDRSHMEM_ASAN_STACKS 1
#endif

#ifdef GDRSHMEM_ASAN_STACKS
#include <sanitizer/asan_interface.h>
#endif

namespace gdrshmem::sim {
namespace {

std::size_t pool_capacity_from_env() {
  constexpr std::size_t kDefault = 16384;
  const char* v = std::getenv("GDRSHMEM_SIM_STACK_POOL");
  if (v == nullptr || *v == '\0') return kDefault;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) {
    throw std::invalid_argument(
        "GDRSHMEM_SIM_STACK_POOL must be a non-negative stack count, got '" +
        std::string(v) + "'");
  }
  return static_cast<std::size_t>(n);
}

void unmap(const FiberStack& s) noexcept {
  if (s.map_base != nullptr) ::munmap(s.map_base, s.map_len);
}

}  // namespace

FiberStackPool::FiberStackPool() : capacity_(pool_capacity_from_env()) {}

FiberStackPool& FiberStackPool::instance() {
  static FiberStackPool pool;
  return pool;
}

FiberStack FiberStackPool::acquire(std::size_t stack_bytes) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t stack = (stack_bytes + page - 1) / page * page;
  const std::size_t map_len = stack + page;

  {
    std::lock_guard lk(mu_);
    auto it = free_.find(map_len);
    if (it != free_.end() && !it->second.empty()) {
      FiberStack s = it->second.back();
      it->second.pop_back();
      --pooled_;
      ++reused_;
      return s;
    }
  }

  FiberStack s;
  s.map_len = map_len;
  s.map_base = ::mmap(nullptr, s.map_len, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (s.map_base == MAP_FAILED) {
    throw std::system_error(errno, std::generic_category(),
                            "mmap fiber stack");
  }
  // Guard page at the low end: stacks grow down, so overflow faults instead
  // of silently corrupting the neighbouring fiber's stack.
  if (::mprotect(s.map_base, page, PROT_NONE) != 0) {
    const int err = errno;
    ::munmap(s.map_base, s.map_len);
    throw std::system_error(err, std::generic_category(),
                            "mprotect fiber guard page");
  }
  s.stack_lo = static_cast<char*>(s.map_base) + page;
  s.stack_len = stack;
  std::lock_guard lk(mu_);
  ++mapped_;
  return s;
}

void FiberStackPool::release(const FiberStack& s) noexcept {
  if (s.map_base == nullptr) return;
#ifdef GDRSHMEM_ASAN_STACKS
  // The dead fiber's shadow memory may still mark parts of the stack as
  // poisoned; the next fiber reusing it would fault spuriously.
  __asan_unpoison_memory_region(s.stack_lo, s.stack_len);
#endif
  {
    std::lock_guard lk(mu_);
    if (pooled_ < capacity_) {
      free_[s.map_len].push_back(s);
      ++pooled_;
      return;
    }
  }
  unmap(s);
}

void FiberStackPool::trim() noexcept {
  std::lock_guard lk(mu_);
  for (auto& [len, stacks] : free_) {
    for (const FiberStack& s : stacks) unmap(s);
    stacks.clear();
  }
  free_.clear();
  pooled_ = 0;
}

void FiberStackPool::set_capacity(std::size_t max_pooled) {
  std::vector<FiberStack> excess;
  {
    std::lock_guard lk(mu_);
    capacity_ = max_pooled;
    for (auto& [len, stacks] : free_) {
      while (pooled_ > capacity_ && !stacks.empty()) {
        excess.push_back(stacks.back());
        stacks.pop_back();
        --pooled_;
      }
    }
  }
  for (const FiberStack& s : excess) unmap(s);
}

std::size_t FiberStackPool::capacity() const {
  std::lock_guard lk(mu_);
  return capacity_;
}

std::uint64_t FiberStackPool::mapped() const {
  std::lock_guard lk(mu_);
  return mapped_;
}

std::uint64_t FiberStackPool::reused() const {
  std::lock_guard lk(mu_);
  return reused_;
}

std::size_t FiberStackPool::pooled() const {
  std::lock_guard lk(mu_);
  return pooled_;
}

}  // namespace gdrshmem::sim
