// Pending-event priority queue for the virtual-time engine.
//
// The engine pops events in the strict total order (at, seq): earliest
// virtual time first, scheduling order within a time. Because that order is
// total, *any* correct priority queue produces the exact same pop sequence —
// so the data structure is swappable without touching the determinism
// contract. Two implementations live behind `QueueKind`:
//
//   * heap  — explicit binary min-heap (the PR 1 structure). O(log n)
//             push/pop where n is the number of pending events; n grows with
//             the PE count, so at 4K-16K PEs every push/pop walks a ~12-14
//             level sift path. Kept for A/B benchmarking and as the
//             differential-testing reference.
//   * wheel — hierarchical timing wheel (Varghese & Lauck): 6 levels of 64
//             slots each, one uint64 occupancy bitmap per level. Level g has
//             granularity 64^g ns, so the wheel spans 64^6 ns (~68 s) of
//             virtual time beyond the current instant; events scheduled
//             farther out land in an overflow binary heap and are compared
//             against the wheel head at pop time, which keeps arbitrary
//             far-future timers correct. Push and pop are amortized O(1).
//             Default.
//
// Why pops stay bit-identical to the heap (sketch; see DESIGN.md for the
// full argument):
//   * an event's level is the lowest g where `at` and the wheel's current
//     time agree on all bits >= 6(g+1). Entries in one level therefore share
//     their high bits with `cur`, so slot indices never wrap and
//     countr_zero(bitmap) finds the earliest slot directly;
//   * a level-0 slot holds exactly one timestamp; within it, entries are
//     drained in ascending seq (direct pushes arrive seq-ordered; a cascade
//     can splice older seqs in, which marks the slot for one re-sort);
//   * the overflow heap is itself (at, seq)-ordered and its top is compared
//     against the wheel minimum on every pop, with (at, seq) deciding.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace gdrshmem::sim {

enum class QueueKind { kHeap, kWheel };

/// Queue chosen by GDRSHMEM_SIM_QUEUE ("heap" | "wheel"); wheel when unset.
/// Unknown values throw std::invalid_argument.
QueueKind queue_from_env();

const char* to_string(QueueKind k);

class EventQueue {
 public:
  /// A pending event: ordering key (at, seq) plus the engine's callback-slot
  /// index. 24 bytes, so slot vectors and sift paths stay cache-friendly.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool sooner(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  explicit EventQueue(QueueKind kind);

  QueueKind kind() const { return kind_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Insert an event. `e.at` must be >= the time of the last pop (the engine
  /// already enforces "no scheduling in the past").
  void push(Entry e);

  /// Remove and return the pending event with the smallest (at, seq).
  /// Precondition: !empty().
  Entry pop();

  // ---- retained-capacity bookkeeping --------------------------------------
  // Burst workloads (a 16K-PE barrier release) grow the internal vectors;
  // without intervention that capacity is retained for the life of the
  // engine. The high-water mark is tracked for the metrics registry and
  // release() drops the excess once the queue is quiescent.

  /// Largest number of simultaneously pending events ever observed.
  std::size_t size_hwm() const { return size_hwm_; }
  /// Bytes currently retained by internal storage (capacity, not size).
  std::size_t retained_bytes() const;
  /// Shrink internal storage to fit the current contents. Intended to be
  /// called at quiescence (empty queue); safe at any time.
  void release_retained();

 private:
  // Wheel geometry: 6 levels x 64 slots; level g covers bits
  // [6g, 6(g+1)) of the event time.
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;     // 64
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr int kLevels = 6;
  static constexpr int kWheelBits = kSlotBits * kLevels;  // 36

  struct Level {
    std::array<std::vector<Entry>, kSlots> slots;
    std::uint64_t occupied = 0;
  };

  void heap_push(Entry e);
  Entry heap_pop_top(std::vector<Entry>& heap);

  void wheel_push(Entry e);
  Entry wheel_pop();
  /// Place `e` into the level/slot implied by (e.at, cur_ns_). Precondition:
  /// e.at differs from cur_ns_ only in the low kWheelBits bits.
  void wheel_place(Entry e);

  QueueKind kind_;
  std::size_t size_ = 0;
  std::size_t size_hwm_ = 0;

  // heap mode storage (also the overflow heap in wheel mode).
  std::vector<Entry> heap_;

  // wheel mode storage.
  std::int64_t cur_ns_ = 0;  ///< wheel time: time of the last pop (ns)
  std::array<Level, kLevels> levels_;
  std::array<std::uint32_t, kSlots> head0_{};  ///< level-0 per-slot drain cursor
  std::uint64_t unsorted0_ = 0;  ///< level-0 slots needing a seq re-sort
};

}  // namespace gdrshmem::sim
