#include "sim/fault.hpp"

#include <cstdio>
#include <stdexcept>

namespace gdrshmem::sim {
namespace {

[[noreturn]] void bad(std::string_view entry, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad entry \"" + std::string(entry) +
                              "\": " + why);
}

double parse_double(std::string_view entry, std::string_view text) {
  try {
    std::size_t used = 0;
    double v = std::stod(std::string(text), &used);
    if (used != text.size()) bad(entry, "trailing characters in number");
    return v;
  } catch (const std::invalid_argument&) {
    bad(entry, "not a number: \"" + std::string(text) + "\"");
  } catch (const std::out_of_range&) {
    bad(entry, "number out of range: \"" + std::string(text) + "\"");
  }
}

std::uint64_t parse_u64(std::string_view entry, std::string_view text) {
  try {
    std::size_t used = 0;
    unsigned long long v = std::stoull(std::string(text), &used);
    if (used != text.size()) bad(entry, "trailing characters in number");
    return v;
  } catch (const std::exception&) {
    bad(entry, "not an unsigned integer: \"" + std::string(text) + "\"");
  }
}

int parse_node(std::string_view entry, std::string_view text) {
  auto v = parse_u64(entry, text);
  if (v > 4096) bad(entry, "node index out of range");
  return static_cast<int>(v);
}

double parse_time_us(std::string_view entry, std::string_view text) {
  double v = parse_double(entry, text);
  if (v < 0) bad(entry, "time must be >= 0");
  return v;
}

/// Split "NODE@REST" and return {node, REST}.
std::pair<int, std::string_view> split_at(std::string_view entry,
                                          std::string_view value) {
  auto at = value.find('@');
  if (at == std::string_view::npos) bad(entry, "expected NODE@TIME_US");
  return {parse_node(entry, value.substr(0, at)), value.substr(at + 1)};
}

std::string fmt_us(double us) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", us);
  return buf;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;  // tolerate stray commas
    auto eq = entry.find('=');
    if (eq == std::string_view::npos) bad(entry, "expected key=value");
    std::string_view key = entry.substr(0, eq);
    std::string_view value = entry.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(entry, value);
    } else if (key == "wire_error_rate") {
      plan.wire_error_rate = parse_double(entry, value);
      if (plan.wire_error_rate < 0 || plan.wire_error_rate >= 1)
        bad(entry, "rate must be in [0, 1)");
    } else if (key == "atomic_error_rate") {
      plan.atomic_error_rate = parse_double(entry, value);
      if (plan.atomic_error_rate < 0 || plan.atomic_error_rate >= 1)
        bad(entry, "rate must be in [0, 1)");
    } else if (key == "restart_us") {
      plan.proxy_restart_us = parse_time_us(entry, value);
    } else if (key == "flap") {
      auto [node, rest] = split_at(entry, value);
      auto plus = rest.find('+');
      if (plus == std::string_view::npos)
        bad(entry, "expected NODE@START_US+DURATION_US");
      LinkFlap f{node, parse_time_us(entry, rest.substr(0, plus)),
                 parse_time_us(entry, rest.substr(plus + 1))};
      if (f.duration_us <= 0) bad(entry, "flap duration must be > 0");
      plan.flaps.push_back(f);
    } else if (key == "crash") {
      auto [node, rest] = split_at(entry, value);
      plan.crashes.push_back(ProxyCrash{node, parse_time_us(entry, rest)});
    } else if (key == "revoke") {
      auto [node, rest] = split_at(entry, value);
      plan.revokes.push_back(P2pRevoke{node, parse_time_us(entry, rest)});
    } else {
      bad(entry,
          "unknown key \"" + std::string(key) +
              "\" (known: seed, wire_error_rate, atomic_error_rate, "
              "restart_us, flap, crash, revoke)");
    }
  }
  return plan;
}

std::string FaultPlan::spec() const {
  std::string s = "seed=" + std::to_string(seed);
  if (wire_error_rate > 0) s += ",wire_error_rate=" + fmt_us(wire_error_rate);
  if (atomic_error_rate > 0)
    s += ",atomic_error_rate=" + fmt_us(atomic_error_rate);
  if (proxy_restart_us != 300)
    s += ",restart_us=" + fmt_us(proxy_restart_us);
  for (const auto& f : flaps)
    s += ",flap=" + std::to_string(f.node) + "@" + fmt_us(f.at_us) + "+" +
         fmt_us(f.duration_us);
  for (const auto& c : crashes)
    s += ",crash=" + std::to_string(c.node) + "@" + fmt_us(c.at_us);
  for (const auto& r : revokes)
    s += ",revoke=" + std::to_string(r.node) + "@" + fmt_us(r.at_us);
  return s;
}

const char* to_string(FaultEvent ev) {
  switch (ev) {
    case FaultEvent::kRetransmit: return "retransmit";
    case FaultEvent::kCompletionError: return "completion-error";
    case FaultEvent::kSwReplay: return "sw-replay";
    case FaultEvent::kGdrFallback: return "gdr-fallback";
    case FaultEvent::kProxyCrash: return "proxy-crash";
    case FaultEvent::kProxyRestart: return "proxy-restart";
    case FaultEvent::kProxyReissue: return "proxy-reissue";
    case FaultEvent::kStaleCtrlDrop: return "stale-ctrl-drop";
    case FaultEvent::kP2pRevoke: return "p2p-revoke";
    case FaultEvent::kCount_: break;
  }
  return "?";
}

bool FaultInjector::link_down(int src_node, int dst_node, Time now) const {
  const double now_us = now.to_us();
  for (const auto& f : plan_.flaps) {
    if (f.node != src_node && f.node != dst_node) continue;
    if (now_us >= f.at_us && now_us < f.at_us + f.duration_us) return true;
  }
  return false;
}

bool FaultInjector::wire_attempt_fails(int src_node, int dst_node, Time now) {
  if (link_down(src_node, dst_node, now)) return true;
  if (plan_.wire_error_rate <= 0) return false;
  return rng_.next_double() < plan_.wire_error_rate;
}

bool FaultInjector::atomic_attempt_fails(int src_node, int dst_node,
                                         Time now) {
  if (link_down(src_node, dst_node, now)) return true;
  if (plan_.atomic_error_rate <= 0) return false;
  return rng_.next_double() < plan_.atomic_error_rate;
}

void FaultInjector::on_event(FaultEvent ev, int endpoint) {
  ++counts_[static_cast<std::size_t>(ev)];
  if (hook_) hook_(ev, endpoint);
}

}  // namespace gdrshmem::sim
