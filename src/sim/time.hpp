// Virtual-time types for the discrete-event simulation core.
//
// All simulated time is kept as integral nanoseconds so that event ordering
// is exact and runs are bit-reproducible. Helpers convert to/from the
// double-microsecond units used by the hardware cost model.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace gdrshmem::sim {

/// A span of virtual time, in nanoseconds. Negative durations are invalid
/// as event delays but are representable so arithmetic stays closed.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration ms(double v) { return us(v * 1e3); }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration operator*(double k) const {
    // Round half away from zero, matching Duration::us — a scaled negative
    // duration must not creep toward zero.
    double v = static_cast<double>(ns_) * k;
    return Duration{static_cast<std::int64_t>(v + (v >= 0 ? 0.5 : -0.5))};
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the virtual timeline (nanoseconds since t=0).
class Time {
 public:
  constexpr Time() = default;
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time zero() { return Time{0}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Time operator+(Duration d) const { return Time{ns_ + d.count_ns()}; }
  constexpr Duration operator-(Time o) const { return Duration::ns(ns_ - o.ns_); }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  constexpr explicit Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

constexpr Time max(Time a, Time b) { return a < b ? b : a; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }

}  // namespace gdrshmem::sim
