// Typed FIFO mailbox for signalling between simulated processes
// (e.g. a PE signalling the per-node proxy daemon).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace gdrshmem::sim {

template <typename T>
class Mailbox {
 public:
  /// Deposit a message (from any simulation context) and wake waiters.
  void post(T msg) {
    queue_.push_back(std::move(msg));
    available_.notify();
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    if (queue_.empty()) return std::nullopt;
    T msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Blocking receive: the calling process sleeps until a message arrives.
  T receive(Process& self) {
    self.await_until(available_, [this] { return !queue_.empty(); });
    T msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Blocking receive with a deadline: returns nullopt if no message arrived
  /// by `deadline`. Schedules one wake event at the deadline, so use only
  /// where a timeout is genuinely needed (fault-recovery paths) — the event
  /// keeps the simulation alive until it fires.
  std::optional<T> receive_until(Process& self, Time deadline) {
    Engine& eng = self.engine();
    if (eng.now() < deadline) {
      eng.schedule_at(deadline, [this] { available_.notify(); });
    }
    self.await_until(available_, [this, &eng, deadline] {
      return !queue_.empty() || eng.now() >= deadline;
    });
    return try_receive();
  }

  /// Discard all queued messages (proxy restart drops stale in-flight ctrl
  /// traffic; requesters re-issue).
  std::size_t clear() {
    std::size_t n = queue_.size();
    queue_.clear();
    return n;
  }

 private:
  std::deque<T> queue_;
  Notification available_;
};

}  // namespace gdrshmem::sim
