// Fiber execution backend: every process runs on a user-space stackful
// context (makecontext/swapcontext) with its own guard-paged stack, all on
// the engine's OS thread. A process<->engine handoff is a register swap —
// no futex, no scheduler, no kernel context switch — which removes the
// dominant wall-clock cost from the simulation hot path.
//
// Exceptions (including ProcessKilled on daemon shutdown) unwind normally
// through a fiber stack and are contained by ExecutionBackend::run_body
// before the final swap back to the engine, so kill/unwind semantics match
// the thread backend exactly.
//
// Under AddressSanitizer the stack switches are announced through the
// __sanitizer_*_switch_fiber API so ASan tracks the live stack bounds;
// without that, fake-stack bookkeeping misfires across swapcontext.
#include <ucontext.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <system_error>

#include "sim/engine.hpp"
#include "sim/exec_backend.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GDRSHMEM_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GDRSHMEM_ASAN_FIBERS 1
#endif

#ifdef GDRSHMEM_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace gdrshmem::sim {
namespace {

/// Usable fiber stack bytes (excluding the guard page); override with
/// GDRSHMEM_SIM_STACK_KB. Stacks are lazily committed by the kernel, so a
/// generous default costs virtual address space only.
std::size_t fiber_stack_bytes() {
  static const std::size_t bytes = [] {
    constexpr std::size_t kDefault = 1u << 20;  // 1 MiB
    const char* v = std::getenv("GDRSHMEM_SIM_STACK_KB");
    if (v == nullptr || *v == '\0') return kDefault;
    const long kb = std::atol(v);
    if (kb < 64) {
      throw std::invalid_argument("GDRSHMEM_SIM_STACK_KB must be >= 64");
    }
    return static_cast<std::size_t>(kb) * 1024;
  }();
  return bytes;
}

class FiberBackend;

struct FiberExec final : ProcessExec {
  FiberBackend* owner = nullptr;
  Process* proc = nullptr;
  ucontext_t ctx{};
  void* map_base = nullptr;  ///< mmap base: [guard page][stack]
  std::size_t map_len = 0;
  void* stack_lo = nullptr;  ///< usable stack bottom (just above the guard)
  std::size_t stack_len = 0;
#ifdef GDRSHMEM_ASAN_FIBERS
  void* fake_stack = nullptr;
#endif

  ~FiberExec() override {
    if (map_base != nullptr) ::munmap(map_base, map_len);
  }
};

class FiberBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::kFibers; }

  std::unique_ptr<ProcessExec> create(Process& p) override {
    auto ex = std::make_unique<FiberExec>();
    ex->owner = this;
    ex->proc = &p;

    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t stack = (fiber_stack_bytes() + page - 1) / page * page;
    ex->map_len = stack + page;
    ex->map_base = ::mmap(nullptr, ex->map_len, PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (ex->map_base == MAP_FAILED) {
      ex->map_base = nullptr;
      throw std::system_error(errno, std::generic_category(),
                              "mmap fiber stack for " + p.name());
    }
    // Guard page at the low end: stacks grow down, so overflow faults
    // instead of silently corrupting the neighbouring fiber's stack.
    if (::mprotect(ex->map_base, page, PROT_NONE) != 0) {
      throw std::system_error(errno, std::generic_category(),
                              "mprotect fiber guard page for " + p.name());
    }
    ex->stack_lo = static_cast<char*>(ex->map_base) + page;
    ex->stack_len = stack;

    if (::getcontext(&ex->ctx) != 0) {
      throw std::system_error(errno, std::generic_category(), "getcontext");
    }
    ex->ctx.uc_stack.ss_sp = ex->stack_lo;
    ex->ctx.uc_stack.ss_size = ex->stack_len;
    ex->ctx.uc_link = nullptr;  // fibers exit via an explicit final swap
    // makecontext only passes ints; smuggle the FiberExec* as two halves.
    const auto ptr = reinterpret_cast<std::uintptr_t>(ex.get());
    ::makecontext(&ex->ctx, reinterpret_cast<void (*)()>(&FiberBackend::trampoline),
                  2, static_cast<unsigned>(ptr >> 32),
                  static_cast<unsigned>(ptr & 0xffffffffu));
    return ex;
  }

  void resume(Process& p) override {
    auto* fx = static_cast<FiberExec*>(exec(p));
    assert(current_ == nullptr && "resume must be called from engine context");
    current_ = fx;
    set_current(fx->proc);
#ifdef GDRSHMEM_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&engine_fake_stack_, fx->stack_lo,
                                   fx->stack_len);
#endif
    ::swapcontext(&engine_ctx_, &fx->ctx);
#ifdef GDRSHMEM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(engine_fake_stack_, nullptr, nullptr);
#endif
    set_current(nullptr);
    current_ = nullptr;
  }

  void yield(Process& p) override {
    auto* fx = static_cast<FiberExec*>(exec(p));
    assert(current_ == fx && "yield must be called from the running fiber");
    switch_to_engine(fx, /*dying=*/false);
  }

 private:
  static void trampoline(unsigned hi, unsigned lo) {
    auto* fx = reinterpret_cast<FiberExec*>(
        (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
    FiberBackend* be = fx->owner;
#ifdef GDRSHMEM_ASAN_FIBERS
    // First entry: tell ASan we landed on this fiber's stack, and learn the
    // engine stack's bounds (the context we came from) for switching back.
    __sanitizer_finish_switch_fiber(nullptr, &be->engine_stack_bottom_,
                                    &be->engine_stack_size_);
#endif
    run_body(*fx->proc);
    // Final swap: the fiber is done and will never be resumed again.
    be->switch_to_engine(fx, /*dying=*/true);
    // Resuming a finished fiber would land here and then fall off the end of
    // the entry function; with uc_link == nullptr ucontext responds with a
    // silent exit(). Abort unconditionally so such a bug is loud in every
    // build configuration, not just ones with asserts enabled.
    std::fprintf(stderr, "fatal: finished fiber '%s' was resumed\n",
                 fx->proc->name().c_str());
    std::abort();
  }

  void switch_to_engine(FiberExec* fx, bool dying) {
#ifdef GDRSHMEM_ASAN_FIBERS
    // fake_stack_save = nullptr tells ASan this fiber's stack is going away.
    __sanitizer_start_switch_fiber(dying ? nullptr : &fx->fake_stack,
                                   engine_stack_bottom_, engine_stack_size_);
#else
    (void)dying;
#endif
    ::swapcontext(&fx->ctx, &engine_ctx_);
#ifdef GDRSHMEM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fx->fake_stack, nullptr, nullptr);
#endif
  }

  ucontext_t engine_ctx_{};
  FiberExec* current_ = nullptr;
#ifdef GDRSHMEM_ASAN_FIBERS
  void* engine_fake_stack_ = nullptr;
  const void* engine_stack_bottom_ = nullptr;
  std::size_t engine_stack_size_ = 0;
#endif
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_fiber_backend() {
  return std::make_unique<FiberBackend>();
}

}  // namespace gdrshmem::sim
