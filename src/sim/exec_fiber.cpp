// Fiber execution backend: every process runs on a user-space stackful
// context with its own guard-paged stack, all on the engine's OS thread. A
// process<->engine handoff is a register swap — no futex, no scheduler, no
// kernel context switch — which removes the dominant wall-clock cost from
// the simulation hot path.
//
// Two swap mechanisms (GDRSHMEM_SIM_FIBER_SWITCH, see exec_backend.hpp):
//
//   * fast     — gdrshmem_fiber_switch (fiber_switch_x86_64.S): saves the
//                C-ABI callee-saved registers plus mxcsr/x87cw and swaps
//                rsp. ~20 instructions, no syscall. A never-started fiber
//                is entered through a hand-laid boot frame whose return
//                address is gdrshmem_fiber_boot.
//   * ucontext — makecontext/swapcontext. Portable reference; glibc's
//                swapcontext issues an rt_sigprocmask syscall per swap.
//
// Both mechanisms transfer control at exactly the same points, so the
// event trace — and every simulation result — is bit-identical.
//
// Exceptions (including ProcessKilled on daemon shutdown) unwind normally
// through a fiber stack and are contained by ExecutionBackend::run_body
// before the final swap back to the engine, so kill/unwind semantics match
// the thread backend exactly. No exception ever crosses a switch.
//
// Under AddressSanitizer the stack switches are announced through the
// __sanitizer_*_switch_fiber API so ASan tracks the live stack bounds;
// without that, fake-stack bookkeeping misfires across the swap. The
// annotations are identical for both switch mechanisms.
#include <ucontext.h>

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <system_error>

#include "sim/engine.hpp"
#include "sim/exec_backend.hpp"
#include "sim/stack_pool.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GDRSHMEM_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GDRSHMEM_ASAN_FIBERS 1
#endif

#ifdef GDRSHMEM_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__x86_64__)
#define GDRSHMEM_FAST_FIBERS 1
extern "C" {
/// Save callee-saved state on the current stack, store rsp through
/// `save_sp`, switch to `restore_sp`, restore and return on the new stack.
void gdrshmem_fiber_switch(void** save_sp, void* restore_sp);
/// First-entry shim: moves the boot frame's r12 slot (a FiberExec*) into
/// rdi and tail-jumps to the rbx slot (the C++ entry function).
void gdrshmem_fiber_boot();
}
#endif

namespace gdrshmem::sim {

FiberSwitch fiber_switch_from_env() {
  FiberSwitch m = FiberSwitch::kFast;
  const char* v = std::getenv("GDRSHMEM_SIM_FIBER_SWITCH");
  if (v != nullptr && *v != '\0') {
    const std::string s(v);
    if (s == "fast") {
      m = FiberSwitch::kFast;
    } else if (s == "ucontext") {
      m = FiberSwitch::kUcontext;
    } else {
      throw std::invalid_argument(
          "GDRSHMEM_SIM_FIBER_SWITCH must be 'fast' or 'ucontext', got '" +
          s + "'");
    }
  }
#ifndef GDRSHMEM_FAST_FIBERS
  m = FiberSwitch::kUcontext;  // no fast-switch implementation on this arch
#endif
  return m;
}

const char* to_string(FiberSwitch m) {
  return m == FiberSwitch::kFast ? "fast" : "ucontext";
}

namespace {

/// Usable fiber stack bytes (excluding the guard page); override with
/// GDRSHMEM_SIM_STACK_KB. Stacks are lazily committed by the kernel, so a
/// generous default costs virtual address space only.
std::size_t fiber_stack_bytes() {
  static const std::size_t bytes = [] {
    constexpr std::size_t kDefault = 1u << 20;  // 1 MiB
    const char* v = std::getenv("GDRSHMEM_SIM_STACK_KB");
    if (v == nullptr || *v == '\0') return kDefault;
    char* end = nullptr;
    const long kb = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || kb < 64) {
      throw std::invalid_argument(
          "GDRSHMEM_SIM_STACK_KB must be an integer stack size in KiB >= 64, "
          "got '" + std::string(v) + "'");
    }
    return static_cast<std::size_t>(kb) * 1024;
  }();
  return bytes;
}

class FiberBackend;

struct FiberExec final : ProcessExec {
  FiberBackend* owner = nullptr;
  Process* proc = nullptr;
  ucontext_t ctx{};        ///< ucontext mode only
  void* fast_sp = nullptr; ///< fast mode: suspended stack pointer / boot frame
  FiberStack stack{};      ///< guard-paged mapping, leased from the pool
#ifdef GDRSHMEM_ASAN_FIBERS
  void* fake_stack = nullptr;
#endif

  ~FiberExec() override {
    // Return the mapping (guard page intact, pages still committed) to the
    // process-wide pool so the next spawn of this geometry skips the
    // mmap/mprotect pair entirely.
    FiberStackPool::instance().release(stack);
  }
};

class FiberBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::kFibers; }

  std::unique_ptr<ProcessExec> create(Process& p) override {
    auto ex = std::make_unique<FiberExec>();
    ex->owner = this;
    ex->proc = &p;

    ex->stack = FiberStackPool::instance().acquire(fiber_stack_bytes());

#ifdef GDRSHMEM_FAST_FIBERS
    if (mode_ == FiberSwitch::kFast) {
      // Lay out the boot frame gdrshmem_fiber_switch will "return" through
      // on first entry. From the switch's restore sequence upward:
      //   +0  x87 control word (2B) | pad | mxcsr (4B at +4)
      //   +8  r15   +16 r14   +24 r13
      //   +32 r12  <- FiberExec*            (boot shim moves it to rdi)
      //   +40 rbx  <- &fiber_main           (boot shim jumps here)
      //   +48 rbp = 0 (frame-chain terminator for unwinders)
      //   +56 return address <- &gdrshmem_fiber_boot
      // With `top` 16-aligned and the frame at top-72, fiber_main is entered
      // with rsp = top-8, i.e. rsp % 16 == 8 — exactly the System V state
      // after a `call`, so its prologue aligns correctly.
      auto* top = static_cast<unsigned char*>(ex->stack.stack_lo) +
                  ex->stack.stack_len;
      const auto t =
          reinterpret_cast<std::uintptr_t>(top) & ~std::uintptr_t{15};
      auto* frame = reinterpret_cast<void**>(t - 72);
      std::memset(frame, 0, 72);
      std::uint32_t mxcsr = 0;
      std::uint16_t fcw = 0;
      asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
      std::memcpy(reinterpret_cast<unsigned char*>(frame) + 0, &fcw,
                  sizeof fcw);
      std::memcpy(reinterpret_cast<unsigned char*>(frame) + 4, &mxcsr,
                  sizeof mxcsr);
      frame[4] = ex.get();
      frame[5] = reinterpret_cast<void*>(&FiberBackend::fiber_main);
      frame[7] = reinterpret_cast<void*>(&gdrshmem_fiber_boot);
      ex->fast_sp = frame;
      return ex;
    }
#endif

    if (::getcontext(&ex->ctx) != 0) {
      throw std::system_error(errno, std::generic_category(), "getcontext");
    }
    ex->ctx.uc_stack.ss_sp = ex->stack.stack_lo;
    ex->ctx.uc_stack.ss_size = ex->stack.stack_len;
    ex->ctx.uc_link = nullptr;  // fibers exit via an explicit final swap
    // makecontext only passes ints; smuggle the FiberExec* as two halves.
    const auto ptr = reinterpret_cast<std::uintptr_t>(ex.get());
    ::makecontext(&ex->ctx, reinterpret_cast<void (*)()>(&FiberBackend::trampoline),
                  2, static_cast<unsigned>(ptr >> 32),
                  static_cast<unsigned>(ptr & 0xffffffffu));
    return ex;
  }

  void resume(Process& p) override {
    auto* fx = static_cast<FiberExec*>(exec(p));
    assert(current_ == nullptr && "resume must be called from engine context");
    current_ = fx;
    set_current(fx->proc);
#ifdef GDRSHMEM_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&engine_fake_stack_, fx->stack.stack_lo,
                                   fx->stack.stack_len);
#endif
#ifdef GDRSHMEM_FAST_FIBERS
    if (mode_ == FiberSwitch::kFast) {
      gdrshmem_fiber_switch(&engine_sp_, fx->fast_sp);
    } else {
      ::swapcontext(&engine_ctx_, &fx->ctx);
    }
#else
    ::swapcontext(&engine_ctx_, &fx->ctx);
#endif
#ifdef GDRSHMEM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(engine_fake_stack_, nullptr, nullptr);
#endif
    set_current(nullptr);
    current_ = nullptr;
  }

  void yield(Process& p) override {
    auto* fx = static_cast<FiberExec*>(exec(p));
    assert(current_ == fx && "yield must be called from the running fiber");
    switch_to_engine(fx, /*dying=*/false);
  }

 private:
  /// Shared fiber body: first-entry bookkeeping, the process body, and the
  /// final swap. Entered via the boot shim (fast) or trampoline (ucontext).
  static void fiber_main(FiberExec* fx) {
    FiberBackend* be = fx->owner;
#ifdef GDRSHMEM_ASAN_FIBERS
    // First entry: tell ASan we landed on this fiber's stack, and learn the
    // engine stack's bounds (the context we came from) for switching back.
    __sanitizer_finish_switch_fiber(nullptr, &be->engine_stack_bottom_,
                                    &be->engine_stack_size_);
#endif
    run_body(*fx->proc);
    // Final swap: the fiber is done and will never be resumed again.
    be->switch_to_engine(fx, /*dying=*/true);
    // Resuming a finished fiber would land here and then fall off the end of
    // the entry function; with uc_link == nullptr ucontext responds with a
    // silent exit() (and the fast path with a jump through a zeroed frame).
    // Abort unconditionally so such a bug is loud in every build
    // configuration, not just ones with asserts enabled.
    std::fprintf(stderr, "fatal: finished fiber '%s' was resumed\n",
                 fx->proc->name().c_str());
    std::abort();
  }

  static void trampoline(unsigned hi, unsigned lo) {
    fiber_main(reinterpret_cast<FiberExec*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo)));
  }

  void switch_to_engine(FiberExec* fx, bool dying) {
#ifdef GDRSHMEM_ASAN_FIBERS
    // fake_stack_save = nullptr tells ASan this fiber's stack is going away.
    __sanitizer_start_switch_fiber(dying ? nullptr : &fx->fake_stack,
                                   engine_stack_bottom_, engine_stack_size_);
#else
    (void)dying;
#endif
#ifdef GDRSHMEM_FAST_FIBERS
    if (mode_ == FiberSwitch::kFast) {
      gdrshmem_fiber_switch(&fx->fast_sp, engine_sp_);
    } else {
      ::swapcontext(&fx->ctx, &engine_ctx_);
    }
#else
    ::swapcontext(&fx->ctx, &engine_ctx_);
#endif
#ifdef GDRSHMEM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fx->fake_stack, nullptr, nullptr);
#endif
  }

  const FiberSwitch mode_ = fiber_switch_from_env();
  ucontext_t engine_ctx_{};
  void* engine_sp_ = nullptr;
  FiberExec* current_ = nullptr;
#ifdef GDRSHMEM_ASAN_FIBERS
  void* engine_fake_stack_ = nullptr;
  const void* engine_stack_bottom_ = nullptr;
  std::size_t engine_stack_size_ = 0;
#endif
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_fiber_backend() {
  return std::make_unique<FiberBackend>();
}

}  // namespace gdrshmem::sim
