// EventFn: a move-only callable with small-buffer storage, used for every
// scheduled event in the engine.
//
// `std::function` heap-allocates for captures beyond ~2 words, which put one
// malloc/free pair on the critical path of every simulated event. Engine
// callbacks are almost always tiny ([&eng, p], [this, c], a couple of ints
// and a shared_ptr), so a 64-byte inline buffer holds virtually all of them;
// larger callables fall back to the heap transparently. Move-only is
// deliberate — events are scheduled once and executed once.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gdrshmem::sim {

class EventFn {
 public:
  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): intended sink type
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move the callable from `src` storage into `dst` storage and leave `src`
    // destructed/released.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<Fn**>(dst) = *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  static constexpr std::size_t kInlineBytes = 64;

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace gdrshmem::sim
