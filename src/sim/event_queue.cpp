#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gdrshmem::sim {

QueueKind queue_from_env() {
  const char* v = std::getenv("GDRSHMEM_SIM_QUEUE");
  if (v == nullptr || *v == '\0') return QueueKind::kWheel;
  std::string s(v);
  if (s == "heap") return QueueKind::kHeap;
  if (s == "wheel") return QueueKind::kWheel;
  throw std::invalid_argument(
      "GDRSHMEM_SIM_QUEUE must be 'heap' or 'wheel', got '" + s + "'");
}

const char* to_string(QueueKind k) {
  return k == QueueKind::kHeap ? "heap" : "wheel";
}

EventQueue::EventQueue(QueueKind kind) : kind_(kind) {}

// ---------------------------------------------------------------------------
// Binary heap (heap mode, and the wheel's far-future overflow)

void EventQueue::heap_push(Entry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!sooner(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

EventQueue::Entry EventQueue::heap_pop_top(std::vector<Entry>& heap) {
  assert(!heap.empty());
  Entry top = heap.front();
  heap.front() = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  std::size_t i = 0;
  while (true) {
    std::size_t l = 2 * i + 1;
    std::size_t m = i;
    if (l < n && sooner(heap[l], heap[m])) m = l;
    if (l + 1 < n && sooner(heap[l + 1], heap[m])) m = l + 1;
    if (m == i) break;
    std::swap(heap[i], heap[m]);
    i = m;
  }
  return top;
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel

void EventQueue::wheel_place(Entry e) {
  const std::int64_t at = e.at.count_ns();
  const std::uint64_t diff = static_cast<std::uint64_t>(at ^ cur_ns_);
  assert((diff >> kWheelBits) == 0 && "entry outside the wheel horizon");
  const int g = diff == 0 ? 0 : (std::bit_width(diff) - 1) / kSlotBits;
  const auto idx = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(at) >> (kSlotBits * g)) & kSlotMask);
  std::vector<Entry>& v = levels_[static_cast<std::size_t>(g)].slots[idx];
  // A cascade can splice an entry with an older seq behind newer direct
  // pushes; mark the level-0 slot so the first pop from it re-sorts by seq.
  if (g == 0 && !v.empty() && v.back().seq > e.seq) {
    unsorted0_ |= std::uint64_t{1} << idx;
  }
  v.push_back(e);
  levels_[static_cast<std::size_t>(g)].occupied |= std::uint64_t{1} << idx;
}

void EventQueue::wheel_push(Entry e) {
  const std::uint64_t diff =
      static_cast<std::uint64_t>(e.at.count_ns() ^ cur_ns_);
  if ((diff >> kWheelBits) != 0) {
    heap_push(e);  // beyond the wheel horizon: overflow heap
  } else {
    wheel_place(e);
  }
}

EventQueue::Entry EventQueue::wheel_pop() {
  while (levels_[0].occupied == 0) {
    // Level 0 is dry: either the minimum lives in the overflow heap, or a
    // higher wheel level must cascade one slot down. The overflow check must
    // precede *every* cascade step — advancing the wheel's current time past
    // the overflow minimum would misplace later pushes.
    int g = 0;
    for (int l = 1; l < kLevels; ++l) {
      if (levels_[static_cast<std::size_t>(l)].occupied != 0) {
        g = l;
        break;
      }
    }
    if (g == 0) {
      // Wheel empty: the overflow heap owns the minimum.
      Entry top = heap_pop_top(heap_);
      cur_ns_ = top.at.count_ns();
      --size_;
      return top;
    }
    Level& lev = levels_[static_cast<std::size_t>(g)];
    const auto idx = static_cast<std::size_t>(std::countr_zero(lev.occupied));
    // Base virtual time of that slot: cur's bits above the level, the slot
    // index in the level's field, zero below. Every entry in the slot — and
    // every other wheel entry — is >= base.
    const std::int64_t span = std::int64_t{1} << (kSlotBits * (g + 1));
    const std::int64_t base =
        (cur_ns_ & ~(span - 1)) |
        (static_cast<std::int64_t>(idx) << (kSlotBits * g));
    if (!heap_.empty() && heap_[0].at.count_ns() < base) {
      // Overflow top beats everything still on the wheel. (A tie at `base`
      // would need the seq comparison below, hence `<`, not `<=`.)
      Entry top = heap_pop_top(heap_);
      cur_ns_ = top.at.count_ns();
      --size_;
      return top;
    }
    // Cascade one slot: entries land strictly below level g, so each entry
    // moves down at most kLevels times over its lifetime — amortized O(1).
    cur_ns_ = std::max(cur_ns_, base);
    lev.occupied &= ~(std::uint64_t{1} << idx);
    std::vector<Entry>& v = lev.slots[idx];
    for (const Entry& e : v) wheel_place(e);
    v.clear();
  }

  const auto idx =
      static_cast<std::size_t>(std::countr_zero(levels_[0].occupied));
  std::vector<Entry>& v = levels_[0].slots[idx];
  if (unsorted0_ & (std::uint64_t{1} << idx)) {
    assert(head0_[idx] == 0 && "cascade into a partially drained slot");
    std::sort(v.begin(), v.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
    unsorted0_ &= ~(std::uint64_t{1} << idx);
  }
  const Entry& wheel_min = v[head0_[idx]];
  if (!heap_.empty() && sooner(heap_[0], wheel_min)) {
    Entry top = heap_pop_top(heap_);
    cur_ns_ = top.at.count_ns();
    --size_;
    return top;
  }
  Entry out = wheel_min;
  if (++head0_[idx] == v.size()) {
    v.clear();  // keeps capacity for the next burst into this slot
    head0_[idx] = 0;
    levels_[0].occupied &= ~(std::uint64_t{1} << idx);
  }
  cur_ns_ = out.at.count_ns();
  --size_;
  return out;
}

// ---------------------------------------------------------------------------
// Public interface

void EventQueue::push(Entry e) {
  if (kind_ == QueueKind::kHeap) {
    heap_push(e);
  } else {
    assert(e.at.count_ns() >= cur_ns_ && "push before the wheel's current time");
    wheel_push(e);
  }
  ++size_;
  size_hwm_ = std::max(size_hwm_, size_);
}

EventQueue::Entry EventQueue::pop() {
  assert(size_ > 0);
  if (kind_ == QueueKind::kHeap) {
    --size_;
    return heap_pop_top(heap_);
  }
  return wheel_pop();
}

std::size_t EventQueue::retained_bytes() const {
  std::size_t cap = heap_.capacity();
  for (const Level& lev : levels_) {
    for (const std::vector<Entry>& v : lev.slots) cap += v.capacity();
  }
  return cap * sizeof(Entry);
}

void EventQueue::release_retained() {
  heap_.shrink_to_fit();
  for (Level& lev : levels_) {
    for (std::vector<Entry>& v : lev.slots) {
      if (v.empty()) {
        std::vector<Entry>().swap(v);
      } else {
        v.shrink_to_fit();
      }
    }
  }
}

}  // namespace gdrshmem::sim
