#include "sim/engine.hpp"

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace gdrshmem::sim {

// ---------------------------------------------------------------------------
// Backend selection

BackendKind backend_from_env() {
  const char* v = std::getenv("GDRSHMEM_SIM_BACKEND");
  if (v == nullptr || *v == '\0') return BackendKind::kFibers;
  std::string s(v);
  if (s == "fibers") return BackendKind::kFibers;
  if (s == "threads") return BackendKind::kThreads;
  throw std::invalid_argument(
      "GDRSHMEM_SIM_BACKEND must be 'fibers' or 'threads', got '" + s + "'");
}

const char* to_string(BackendKind k) {
  return k == BackendKind::kFibers ? "fibers" : "threads";
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind k) {
  return k == BackendKind::kFibers ? make_fiber_backend() : make_thread_backend();
}

// ---------------------------------------------------------------------------
// ExecutionBackend shared helpers

void ExecutionBackend::run_body(Process& p) {
  try {
    p.check_killed();
    p.state_ = Process::State::kRunning;
    p.body_(p);
  } catch (const ProcessKilled&) {
    // graceful daemon shutdown
  } catch (...) {
    // Surface the first process failure from Engine::run() instead of
    // terminating the program when it escapes the process context.
    if (!p.engine_->first_error_) {
      p.engine_->first_error_ = std::current_exception();
    }
  }
  p.body_ = nullptr;  // release captures as soon as the body is done
  p.state_ = Process::State::kDone;
}

ProcessExec* ExecutionBackend::exec(Process& p) { return p.exec_.get(); }

namespace {
thread_local Process* t_current_process = nullptr;
}

void ExecutionBackend::set_current(Process* p) { t_current_process = p; }

Process* Process::current() { return t_current_process; }

// ---------------------------------------------------------------------------
// Notification

void Notification::notify() {
  if (waiters_.empty()) return;
  std::vector<Process*> woken;
  woken.swap(waiters_);
  for (Process* p : woken) {
    // A process killed while blocked here has already been unwound; its
    // execution context is gone and must never be rescheduled. Process::await
    // deregisters on unwind, so this is a backstop against stale pointers.
    if (p->state_ == Process::State::kDone) continue;
    Engine& eng = p->engine();
    eng.schedule_at(eng.now(), [&eng, p] { eng.run_process(*p); });
    p->state_ = Process::State::kReady;
  }
}

// ---------------------------------------------------------------------------
// Process

Process::Process(Engine& eng, std::string name, bool daemon)
    : engine_(&eng), name_(std::move(name)), daemon_(daemon) {}

Process::~Process() = default;

void Process::check_killed() const {
  if (kill_requested_) throw ProcessKilled{};
}

void Process::yield_to_engine() {
  engine_->backend_->yield(*this);
  check_killed();
}

void Process::delay(Duration d) {
  check_killed();
  if (d < Duration::zero()) throw std::invalid_argument("negative delay");
  Engine& eng = *engine_;
  eng.schedule_at(eng.now() + d, [&eng, this] { eng.run_process(*this); });
  state_ = State::kReady;
  yield_to_engine();
  state_ = State::kRunning;
}

void Process::await(Notification& n) {
  check_killed();
  n.waiters_.push_back(this);
  state_ = State::kBlocked;
  try {
    yield_to_engine();
  } catch (...) {
    // Killed while blocked: a normal wakeup swaps us out of the waiter list
    // inside notify(), but a kill resumes us directly, so we are still
    // registered. Deregister before unwinding, or a later notify() would
    // resume this process's reclaimed execution context.
    std::erase(n.waiters_, this);
    throw;
  }
  state_ = State::kRunning;
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(BackendKind backend) : backend_(make_backend(backend)) {}

Engine::~Engine() {
  shutdown_daemons();
  // Any remaining non-daemon processes that never finished (e.g. after a
  // DeadlockError was thrown to the caller) must also be released so their
  // execution contexts can be unwound and reclaimed.
  for (auto& p : processes_) {
    if (p->state_ != Process::State::kDone) kill_process(*p);
  }
}

void Engine::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!sooner(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Engine::HeapEntry Engine::heap_pop() {
  assert(!heap_.empty());
  HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    std::size_t l = 2 * i + 1;
    std::size_t m = i;
    if (l < n && sooner(heap_[l], heap_[m])) m = l;
    if (l + 1 < n && sooner(heap_[l + 1], heap_[m])) m = l + 1;
    if (m == i) break;
    std::swap(heap_[i], heap_[m]);
    i = m;
  }
  return top;
}

void Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) throw std::invalid_argument("schedule_at in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  heap_push(HeapEntry{at, next_seq_++, slot});
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body,
                       bool daemon) {
  // Process is neither copyable nor movable, so construct it in place;
  // Engine is a friend of the private constructor.
  processes_.push_back(
      std::unique_ptr<Process>(new Process(*this, std::move(name), daemon)));
  Process& p = *processes_.back();
  p.body_ = std::move(body);
  p.exec_ = backend_->create(p);

  schedule_at(now_, [this, &p] { run_process(p); });
  p.state_ = Process::State::kReady;
  return p;
}

void Engine::run_process(Process& p) {
  if (p.state_ == Process::State::kDone) return;
  backend_->resume(p);
}

void Engine::kill_process(Process& p) {
  if (p.state_ == Process::State::kDone) return;
  p.kill_requested_ = true;
  backend_->resume(p);
  assert(p.state_ == Process::State::kDone);
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  running_ = true;
  while (!heap_.empty()) {
    HeapEntry e = heap_pop();
    EventFn fn = std::move(slots_[e.slot]);
    free_slots_.push_back(e.slot);
    now_ = e.at;
    ++events_executed_;
    fn();
  }
  running_ = false;

  if (first_error_) {
    // A process failed; release everything still blocked, then rethrow.
    shutdown_daemons();
    for (auto& p : processes_) {
      if (p->state_ != Process::State::kDone) kill_process(*p);
    }
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }

  // Detect stuck non-daemon processes: nothing left to run but they are not
  // done — the simulated program deadlocked.
  std::vector<std::string> stuck;
  for (auto& p : processes_) {
    if (!p->daemon_ && p->state_ != Process::State::kDone) stuck.push_back(p->name());
  }
  shutdown_daemons();
  if (!stuck.empty()) {
    std::ostringstream os;
    os << "simulation deadlock: " << stuck.size() << " process(es) blocked forever:";
    for (const auto& n : stuck) os << ' ' << n;
    // Release the stuck processes so their contexts can unwind before throwing.
    for (auto& p : processes_) {
      if (p->state_ != Process::State::kDone) kill_process(*p);
    }
    throw DeadlockError(os.str());
  }
}

void Engine::shutdown_daemons() {
  for (auto& p : processes_) {
    if (p->daemon_) kill_process(*p);
  }
}

}  // namespace gdrshmem::sim
