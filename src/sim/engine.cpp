#include "sim/engine.hpp"

#include <cassert>
#include <sstream>

namespace gdrshmem::sim {

// ---------------------------------------------------------------------------
// Notification

void Notification::notify() {
  if (waiters_.empty()) return;
  std::vector<Process*> woken;
  woken.swap(waiters_);
  for (Process* p : woken) {
    Engine& eng = p->engine();
    eng.schedule_at(eng.now(), [&eng, p] { eng.run_process(*p); });
    p->state_ = Process::State::kReady;
  }
}

// ---------------------------------------------------------------------------
// Process

Process::Process(Engine& eng, std::string name, bool daemon)
    : engine_(&eng), name_(std::move(name)), daemon_(daemon) {}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

void Process::check_killed() const {
  if (kill_requested_) throw ProcessKilled{};
}

void Process::yield_to_engine_locked(std::unique_lock<std::mutex>& lk) {
  Engine& eng = *engine_;
  eng.active_ = nullptr;
  eng.engine_cv_.notify_all();
  cv_.wait(lk, [&] { return eng.active_ == this; });
  check_killed();
}

void Process::delay(Duration d) {
  check_killed();
  if (d < Duration::zero()) throw std::invalid_argument("negative delay");
  Engine& eng = *engine_;
  eng.schedule_at(eng.now() + d, [&eng, this] { eng.run_process(*this); });
  std::unique_lock lk(eng.mutex_);
  state_ = State::kReady;
  yield_to_engine_locked(lk);
  state_ = State::kRunning;
}

void Process::await(Notification& n) {
  check_killed();
  Engine& eng = *engine_;
  n.waiters_.push_back(this);
  std::unique_lock lk(eng.mutex_);
  state_ = State::kBlocked;
  yield_to_engine_locked(lk);
  state_ = State::kRunning;
}

// ---------------------------------------------------------------------------
// Engine

Engine::~Engine() {
  shutdown_daemons();
  // Any remaining non-daemon processes that never finished (e.g. after a
  // DeadlockError was thrown to the caller) must also be released so their
  // threads can be joined.
  for (auto& p : processes_) {
    if (p->state_ != Process::State::kDone) kill_process(*p);
  }
}

void Engine::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at in the past");
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body,
                       bool daemon) {
  // Process is neither copyable nor movable (it owns a condition_variable),
  // so construct it in place; Engine is a friend of the private constructor.
  processes_.push_back(
      std::unique_ptr<Process>(new Process(*this, std::move(name), daemon)));
  Process& p = *processes_.back();

  p.thread_ = std::thread([this, &p, body = std::move(body)] {
    {
      // Wait for the engine to hand us the baton for the first time.
      std::unique_lock lk(mutex_);
      p.cv_.wait(lk, [&] { return active_ == &p; });
    }
    try {
      p.check_killed();
      p.state_ = Process::State::kRunning;
      body(p);
    } catch (const ProcessKilled&) {
      // graceful daemon shutdown
    } catch (...) {
      // Surface the first process failure from Engine::run() instead of
      // terminating the program when it escapes the thread.
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::unique_lock lk(mutex_);
    p.state_ = Process::State::kDone;
    active_ = nullptr;
    engine_cv_.notify_all();
  });

  schedule_at(now_, [this, &p] { run_process(p); });
  p.state_ = Process::State::kReady;
  return p;
}

void Engine::run_process(Process& p) {
  if (p.state_ == Process::State::kDone) return;
  std::unique_lock lk(mutex_);
  active_ = &p;
  p.cv_.notify_all();
  engine_cv_.wait(lk, [&] { return active_ == nullptr; });
}

void Engine::kill_process(Process& p) {
  if (p.state_ == Process::State::kDone) return;
  p.kill_requested_ = true;
  std::unique_lock lk(mutex_);
  active_ = &p;
  p.cv_.notify_all();
  engine_cv_.wait(lk, [&] { return active_ == nullptr; });
  assert(p.state_ == Process::State::kDone);
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  running_ = true;
  while (!events_.empty()) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  running_ = false;

  if (first_error_) {
    // A process failed; release everything still blocked, then rethrow.
    shutdown_daemons();
    for (auto& p : processes_) {
      if (p->state_ != Process::State::kDone) kill_process(*p);
    }
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }

  // Detect stuck non-daemon processes: nothing left to run but they are not
  // done — the simulated program deadlocked.
  std::vector<std::string> stuck;
  for (auto& p : processes_) {
    if (!p->daemon_ && p->state_ != Process::State::kDone) stuck.push_back(p->name());
  }
  shutdown_daemons();
  if (!stuck.empty()) {
    std::ostringstream os;
    os << "simulation deadlock: " << stuck.size() << " process(es) blocked forever:";
    for (const auto& n : stuck) os << ' ' << n;
    // Release the stuck processes so their threads can exit before throwing.
    for (auto& p : processes_) {
      if (p->state_ != Process::State::kDone) kill_process(*p);
    }
    throw DeadlockError(os.str());
  }
}

void Engine::shutdown_daemons() {
  for (auto& p : processes_) {
    if (p->daemon_) kill_process(*p);
  }
}

}  // namespace gdrshmem::sim
