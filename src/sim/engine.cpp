#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace gdrshmem::sim {

// ---------------------------------------------------------------------------
// Backend selection

BackendKind backend_from_env() {
  const char* v = std::getenv("GDRSHMEM_SIM_BACKEND");
  if (v == nullptr || *v == '\0') return BackendKind::kFibers;
  std::string s(v);
  if (s == "fibers") return BackendKind::kFibers;
  if (s == "threads") return BackendKind::kThreads;
  throw std::invalid_argument(
      "GDRSHMEM_SIM_BACKEND must be 'fibers' or 'threads', got '" + s + "'");
}

const char* to_string(BackendKind k) {
  return k == BackendKind::kFibers ? "fibers" : "threads";
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind k) {
  return k == BackendKind::kFibers ? make_fiber_backend() : make_thread_backend();
}

bool batch_from_env() {
  const char* v = std::getenv("GDRSHMEM_SIM_BATCH");
  if (v == nullptr || *v == '\0') return true;
  std::string s(v);
  if (s == "1" || s == "on" || s == "true") return true;
  if (s == "0" || s == "off" || s == "false") return false;
  throw std::invalid_argument(
      "GDRSHMEM_SIM_BATCH must be one of 0/1/on/off/true/false, got '" + s +
      "'");
}

// ---------------------------------------------------------------------------
// ExecutionBackend shared helpers

void ExecutionBackend::run_body(Process& p) {
  try {
    p.check_killed();
    p.state_ = Process::State::kRunning;
    p.body_(p);
  } catch (const ProcessKilled&) {
    // graceful daemon shutdown
  } catch (...) {
    // Surface the first process failure from Engine::run() instead of
    // terminating the program when it escapes the process context.
    if (!p.engine_->first_error_) {
      p.engine_->first_error_ = std::current_exception();
    }
  }
  p.body_ = nullptr;  // release captures as soon as the body is done
  p.state_ = Process::State::kDone;
}

ProcessExec* ExecutionBackend::exec(Process& p) { return p.exec_.get(); }

namespace {
thread_local Process* t_current_process = nullptr;
}

void ExecutionBackend::set_current(Process* p) { t_current_process = p; }

Process* Process::current() { return t_current_process; }

// ---------------------------------------------------------------------------
// Notification

void Notification::notify() {
  if (waiters_.empty()) return;
  std::vector<Process*> woken;
  woken.swap(waiters_);
  Engine& eng = woken.front()->engine();
  if (eng.batch_wakeups_) {
    // One queue event resumes the whole cohort in registration order. The
    // unbatched path gives the K wakeup events consecutive sequence numbers,
    // so nothing can interleave between them anyway (anything scheduled by a
    // resumed process sorts after the last wakeup) — resuming back-to-back
    // from a single event is trace-order identical and turns a 16K-PE
    // barrier release into one queue operation instead of 16K.
    for (Process* p : woken) {
      if (p->state_ == Process::State::kDone) continue;
      p->state_ = Process::State::kReady;
    }
    eng.schedule_at(eng.now(), [&eng, woken = std::move(woken)] {
      // run_process skips processes that reached kDone (e.g. killed by fault
      // injection) between the notify and this event executing.
      for (Process* p : woken) eng.run_process(*p);
    });
    return;
  }
  for (Process* p : woken) {
    // A process killed while blocked here has already been unwound; its
    // execution context is gone and must never be rescheduled. Process::await
    // deregisters on unwind, so this is a backstop against stale pointers.
    if (p->state_ == Process::State::kDone) continue;
    Engine& e = p->engine();
    e.schedule_at(e.now(), [&e, p] { e.run_process(*p); });
    p->state_ = Process::State::kReady;
  }
}

// ---------------------------------------------------------------------------
// Process

Process::Process(Engine& eng, std::string name, bool daemon)
    : engine_(&eng), name_(std::move(name)), daemon_(daemon) {}

Process::~Process() = default;

void Process::check_killed() const {
  if (kill_requested_) throw ProcessKilled{};
}

void Process::yield_to_engine() {
  engine_->backend_->yield(*this);
  check_killed();
}

void Process::delay(Duration d) {
  check_killed();
  if (d < Duration::zero()) throw std::invalid_argument("negative delay");
  Engine& eng = *engine_;
  eng.schedule_at(eng.now() + d, [&eng, this] { eng.run_process(*this); });
  state_ = State::kReady;
  yield_to_engine();
  state_ = State::kRunning;
}

void Process::await(Notification& n) {
  check_killed();
  n.waiters_.push_back(this);
  state_ = State::kBlocked;
  try {
    yield_to_engine();
  } catch (...) {
    // Killed while blocked: a normal wakeup swaps us out of the waiter list
    // inside notify(), but a kill resumes us directly, so we are still
    // registered. Deregister before unwinding, or a later notify() would
    // resume this process's reclaimed execution context.
    std::erase(n.waiters_, this);
    throw;
  }
  state_ = State::kRunning;
}

// ---------------------------------------------------------------------------
// Engine

Engine::Engine(BackendKind backend, QueueKind queue)
    : backend_(make_backend(backend)), queue_(queue) {}

Engine::~Engine() {
  shutdown_daemons();
  // Any remaining non-daemon processes that never finished (e.g. after a
  // DeadlockError was thrown to the caller) must also be released so their
  // execution contexts can be unwound and reclaimed.
  for (auto& p : processes_) {
    if (p->state_ != Process::State::kDone) kill_process(*p);
  }
}

void Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) throw std::invalid_argument("schedule_at in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
    slot_pool_hwm_ = std::max(slot_pool_hwm_, slots_.size());
  }
  queue_.push(EventQueue::Entry{at, next_seq_++, slot});
}

std::size_t Engine::retained_bytes() const {
  return queue_.retained_bytes() + slots_.capacity() * sizeof(EventFn) +
         free_slots_.capacity() * sizeof(std::uint32_t);
}

void Engine::release_retained_memory() {
  queue_.release_retained();
  if (queue_.empty()) {
    // Every slot is free: the indices parked in free_slots_ are all dead, so
    // both vectors can be emptied rather than merely shrunk.
    slots_.clear();
    free_slots_.clear();
  }
  slots_.shrink_to_fit();
  free_slots_.shrink_to_fit();
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body,
                       bool daemon) {
  // Process is neither copyable nor movable, so construct it in place;
  // Engine is a friend of the private constructor.
  processes_.push_back(
      std::unique_ptr<Process>(new Process(*this, std::move(name), daemon)));
  Process& p = *processes_.back();
  p.body_ = std::move(body);
  p.exec_ = backend_->create(p);

  schedule_at(now_, [this, &p] { run_process(p); });
  p.state_ = Process::State::kReady;
  return p;
}

void Engine::run_process(Process& p) {
  if (p.state_ == Process::State::kDone) return;
  backend_->resume(p);
}

void Engine::kill_process(Process& p) {
  if (p.state_ == Process::State::kDone) return;
  p.kill_requested_ = true;
  backend_->resume(p);
  assert(p.state_ == Process::State::kDone);
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  running_ = true;
  while (!queue_.empty()) {
    EventQueue::Entry e = queue_.pop();
    EventFn fn = std::move(slots_[e.slot]);
    free_slots_.push_back(e.slot);
    now_ = e.at;
    ++events_executed_;
    fn();
  }
  running_ = false;
  // Release-on-quiescence: a burst (e.g. a full-cluster barrier release)
  // grows the queue and slot pool to O(PE-count); without this the capacity
  // would be retained for the engine's lifetime. HWMs stay observable via
  // queue_size_hwm()/slot_pool_hwm().
  release_retained_memory();

  if (first_error_) {
    // A process failed; release everything still blocked, then rethrow.
    shutdown_daemons();
    for (auto& p : processes_) {
      if (p->state_ != Process::State::kDone) kill_process(*p);
    }
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }

  // Detect stuck non-daemon processes: nothing left to run but they are not
  // done — the simulated program deadlocked.
  std::vector<std::string> stuck;
  for (auto& p : processes_) {
    if (!p->daemon_ && p->state_ != Process::State::kDone) stuck.push_back(p->name());
  }
  shutdown_daemons();
  if (!stuck.empty()) {
    std::ostringstream os;
    os << "simulation deadlock: " << stuck.size() << " process(es) blocked forever:";
    for (const auto& n : stuck) os << ' ' << n;
    // Release the stuck processes so their contexts can unwind before throwing.
    for (auto& p : processes_) {
      if (p->state_ != Process::State::kDone) kill_process(*p);
    }
    throw DeadlockError(os.str());
  }
}

void Engine::shutdown_daemons() {
  for (auto& p : processes_) {
    if (p->daemon_) kill_process(*p);
  }
}

}  // namespace gdrshmem::sim
