#include "cudart/cudart.hpp"

#include <cstring>

namespace gdrshmem::cudart {

using sim::Duration;
using sim::Path;
using sim::Time;

// ---------------------------------------------------------------------------
// PointerRegistry

void PointerRegistry::insert(void* base, std::size_t len, int node, int device) {
  auto key = reinterpret_cast<std::uintptr_t>(base);
  // Reject overlap with an existing range: that would corrupt UVA lookups.
  auto it = ranges_.upper_bound(key);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > key) {
      throw CudaError("device range overlaps an existing registration");
    }
  }
  if (it != ranges_.end() && key + len > it->first) {
    throw CudaError("device range overlaps an existing registration");
  }
  ranges_.emplace(key, Range{len, node, device});
}

void PointerRegistry::erase(void* base) {
  if (ranges_.erase(reinterpret_cast<std::uintptr_t>(base)) == 0) {
    throw CudaError("unregistering unknown device range");
  }
}

std::optional<PtrAttr> PointerRegistry::query(const void* p) const {
  auto key = reinterpret_cast<std::uintptr_t>(p);
  auto it = ranges_.upper_bound(key);
  if (it == ranges_.begin()) return std::nullopt;
  --it;
  if (key >= it->first + it->second.len) return std::nullopt;
  PtrAttr a;
  a.space = MemSpace::kDevice;
  a.node = it->second.node;
  a.device = it->second.device;
  a.alloc_base = reinterpret_cast<void*>(it->first);
  a.alloc_size = it->second.len;
  return a;
}

// ---------------------------------------------------------------------------
// CudaRuntime: memory

void* CudaRuntime::malloc_device(int node, int gpu, std::size_t bytes) {
  if (node < 0 || node >= cluster_.num_nodes()) throw CudaError("bad node id");
  if (gpu < 0 || gpu >= cluster_.config().gpus_per_node) throw CudaError("bad GPU id");
  if (bytes == 0) throw CudaError("cudaMalloc of zero bytes");
  auto buf = std::make_unique<std::byte[]>(bytes);
  void* p = buf.get();
  registry_.insert(p, bytes, node, gpu);
  allocation_index_.emplace(p, bytes);
  allocations_.push_back(std::move(buf));
  return p;
}

void CudaRuntime::free_device(void* p) {
  auto it = allocation_index_.find(p);
  if (it == allocation_index_.end()) throw CudaError("cudaFree of unknown pointer");
  registry_.erase(p);
  allocation_index_.erase(it);
  // Backing store is intentionally retained until runtime destruction so
  // stale simulated DMA completions can never touch freed memory.
}

PtrAttr CudaRuntime::attributes(const void* p) const {
  if (auto a = registry_.query(p)) return *a;
  return PtrAttr{};  // host
}

// ---------------------------------------------------------------------------
// CudaRuntime: copies

Path CudaRuntime::copy_path(const PtrAttr& dst, const PtrAttr& src, int node_hint) {
  const bool src_dev = src.space == MemSpace::kDevice;
  const bool dst_dev = dst.space == MemSpace::kDevice;
  if (src_dev && dst_dev) {
    if (src.node != dst.node) {
      throw CudaError("cudaMemcpy between GPUs on different nodes");
    }
    return cluster_.cuda_d2d(src.node, src.device, dst.device);
  }
  if (src_dev) return cluster_.cuda_d2h(src.node, src.device);
  if (dst_dev) return cluster_.cuda_h2d(dst.node, dst.device);
  // Host to host: a plain CPU copy on the hinted node.
  return cluster_.host_copy(node_hint);
}

void CudaRuntime::memcpy_sync(sim::Process& proc, void* dst, const void* src,
                              std::size_t n) {
  if (n == 0) return;
  PtrAttr d = attributes(dst);
  PtrAttr s = attributes(src);
  int node_hint = d.space == MemSpace::kDevice ? d.node
                  : s.space == MemSpace::kDevice ? s.node
                                                 : 0;
  Path path = copy_path(d, s, node_hint);
  Time done = path.schedule(eng_.now(), n);
  proc.delay(done - eng_.now());
  std::memcpy(dst, src, n);
}

std::shared_ptr<CudaEvent> CudaRuntime::enqueue(Stream& stream, Duration cost,
                                                std::function<void()> body) {
  Time start = sim::max(eng_.now(), stream.busy_until_);
  Time done = start + cost;
  stream.busy_until_ = done;
  auto ev = std::make_shared<CudaEvent>();
  ev->ready_ = done;
  eng_.schedule_at(done, [ev, body = std::move(body)] {
    body();
    ev->fired_ = true;
    ev->completed_.notify();
  });
  return ev;
}

std::shared_ptr<CudaEvent> CudaRuntime::memcpy_async(void* dst, const void* src,
                                                     std::size_t n, Stream& stream) {
  PtrAttr d = attributes(dst);
  PtrAttr s = attributes(src);
  int node_hint = d.space == MemSpace::kDevice ? d.node
                  : s.space == MemSpace::kDevice ? s.node
                                                 : stream.node();
  Path path = copy_path(d, s, node_hint);
  // Stream ordering: the copy cannot start before earlier stream work ends.
  Time start = sim::max(eng_.now(), stream.busy_until_);
  Time done = path.schedule(start, n);
  stream.busy_until_ = done;
  auto ev = std::make_shared<CudaEvent>();
  ev->ready_ = done;
  eng_.schedule_at(done, [ev, dst, src, n] {
    std::memcpy(dst, src, n);
    ev->fired_ = true;
    ev->completed_.notify();
  });
  return ev;
}

// ---------------------------------------------------------------------------
// CudaRuntime: IPC

IpcHandle CudaRuntime::ipc_get_handle(void* dev_ptr) const {
  auto a = registry_.query(dev_ptr);
  if (!a) throw CudaError("cudaIpcGetMemHandle on a non-device pointer");
  if (a->alloc_base != dev_ptr) {
    throw CudaError("cudaIpcGetMemHandle must receive the allocation base");
  }
  return IpcHandle{a->alloc_base, a->alloc_size, a->node, a->device};
}

void* CudaRuntime::ipc_open_handle(sim::Process& proc, const IpcHandle& h,
                                   int opener_node, int opener_pe) {
  if (h.base == nullptr) throw CudaError("opening a null IPC handle");
  if (h.node != opener_node) {
    throw CudaError("CUDA IPC handles are only valid on the owning node");
  }
  auto key = std::make_pair(opener_pe, static_cast<const void*>(h.base));
  if (ipc_opened_.insert(key).second) {
    proc.delay(Duration::us(cluster_.params().cuda_ipc_open_us));
  }
  return h.base;
}

// ---------------------------------------------------------------------------
// CudaRuntime: kernels

void CudaRuntime::launch_kernel_sync(sim::Process& proc, std::size_t cells,
                                     double per_cell_ns,
                                     const std::function<void()>& body) {
  const auto& p = cluster_.params();
  Duration cost = Duration::us(p.cuda_kernel_launch_us) +
                  Duration::ns(static_cast<std::int64_t>(
                      static_cast<double>(cells) * per_cell_ns + 0.5));
  proc.delay(cost);
  body();
}

std::shared_ptr<CudaEvent> CudaRuntime::launch_kernel_async(
    std::size_t cells, double per_cell_ns, std::function<void()> body,
    Stream& stream) {
  const auto& p = cluster_.params();
  Duration cost = Duration::us(p.cuda_kernel_launch_us) +
                  Duration::ns(static_cast<std::int64_t>(
                      static_cast<double>(cells) * per_cell_ns + 0.5));
  return enqueue(stream, cost, std::move(body));
}

void CudaRuntime::launch_kernel_resident(
    sim::Process& proc, double per_cell_ns,
    const std::function<void(KernelContext&)>& body) {
  proc.delay(Duration::us(cluster_.params().cuda_kernel_launch_us));
  KernelContext kc(*this, proc, per_cell_ns);
  body(kc);
}

void KernelContext::compute(std::size_t cells) {
  if (cells == 0) return;
  proc_.delay(Duration::ns(static_cast<std::int64_t>(
      static_cast<double>(cells) * per_cell_ns_ + 0.5)));
}

void KernelContext::charge_us(double us) {
  if (us <= 0) return;
  proc_.delay(Duration::us(us));
}

}  // namespace gdrshmem::cudart
