// CUDA-like runtime over the simulated cluster.
//
// Mirrors the slice of CUDA the paper's runtime depends on:
//   * device allocations with real backing store (bytes actually move),
//   * UVA: any pointer can be classified host vs device (PointerRegistry),
//   * cudaMemcpy in all directions with copy-engine timing and PCIe
//     contention, sync and stream-ordered async,
//   * CUDA IPC: a process can map another process's device allocation on the
//     same node and copy to/from it,
//   * a kernel-launch cost hook used by the application kernels.
//
// All simulated PEs live in one OS process, so an "IPC mapping" is just the
// original pointer — but the open cost is charged and cross-node opens are
// rejected, preserving the semantics the runtime designs depend on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

#include "hw/topology.hpp"
#include "sim/engine.hpp"

namespace gdrshmem::cudart {

class CudaError : public std::runtime_error {
 public:
  explicit CudaError(const std::string& what) : std::runtime_error(what) {}
};

enum class MemSpace { kHost, kDevice };

/// What UVA knows about a pointer.
struct PtrAttr {
  MemSpace space = MemSpace::kHost;
  int node = -1;    // valid when space == kDevice
  int device = -1;  // GPU index within the node
  void* alloc_base = nullptr;
  std::size_t alloc_size = 0;
};

/// Interval map from device-allocation ranges to their attributes.
class PointerRegistry {
 public:
  void insert(void* base, std::size_t len, int node, int device);
  void erase(void* base);
  /// nullopt => not a registered device range, i.e. a host pointer.
  std::optional<PtrAttr> query(const void* p) const;
  std::size_t size() const { return ranges_.size(); }

 private:
  struct Range {
    std::size_t len;
    int node;
    int device;
  };
  std::map<std::uintptr_t, Range> ranges_;
};

/// Opaque IPC handle for a device allocation (cudaIpcGetMemHandle analog).
struct IpcHandle {
  void* base = nullptr;
  std::size_t len = 0;
  int node = -1;
  int device = -1;
};

/// Stream-ordered async work marker.
class CudaEvent {
 public:
  bool done(const sim::Engine& eng) const { return eng.now() >= ready_; }
  void synchronize(sim::Process& proc) {
    proc.await_until(completed_, [&] { return fired_; });
  }

 private:
  friend class CudaRuntime;
  sim::Time ready_;
  bool fired_ = false;
  sim::Notification completed_;
};

/// A CUDA stream: serializes the async operations enqueued on it.
class Stream {
 public:
  explicit Stream(int node, int gpu) : node_(node), gpu_(gpu) {}
  int node() const { return node_; }
  int gpu() const { return gpu_; }

 private:
  friend class CudaRuntime;
  int node_;
  int gpu_;
  sim::Time busy_until_;
};

class CudaRuntime;

/// Execution context of a *resident* "kernel": a kernel body that keeps
/// running on the GPU while issuing further work, instead of terminating so
/// the host can act. The body charges device compute incrementally through
/// `compute()`; the device-initiated OpenSHMEM surface (core::DeviceCtx)
/// charges its WQE-build/doorbell/descriptor costs through `charge_us()`.
class KernelContext {
 public:
  KernelContext(CudaRuntime& rt, sim::Process& proc, double per_cell_ns)
      : rt_(rt), proc_(proc), per_cell_ns_(per_cell_ns) {}
  KernelContext(const KernelContext&) = delete;
  KernelContext& operator=(const KernelContext&) = delete;

  /// Charge `cells` of device compute at the kernel's per-cell rate.
  void compute(std::size_t cells);
  /// Charge an explicit device-side cost in microseconds.
  void charge_us(double us);

  sim::Process& proc() { return proc_; }
  double per_cell_ns() const { return per_cell_ns_; }
  CudaRuntime& runtime() { return rt_; }

 private:
  CudaRuntime& rt_;
  sim::Process& proc_;
  double per_cell_ns_;
};

class CudaRuntime {
 public:
  CudaRuntime(sim::Engine& eng, hw::Cluster& cluster)
      : eng_(eng), cluster_(cluster) {}
  CudaRuntime(const CudaRuntime&) = delete;
  CudaRuntime& operator=(const CudaRuntime&) = delete;

  hw::Cluster& cluster() { return cluster_; }

  // ---- memory -------------------------------------------------------------
  /// cudaMalloc on a specific GPU. Backing store is real host memory.
  void* malloc_device(int node, int gpu, std::size_t bytes);
  void free_device(void* p);
  /// UVA classification (cudaPointerGetAttributes analog). Never fails:
  /// unknown pointers are host pointers.
  PtrAttr attributes(const void* p) const;

  // ---- copies ---------------------------------------------------------------
  /// Synchronous cudaMemcpy: direction inferred via UVA; charges the full
  /// hardware cost to the calling process, then moves the bytes.
  void memcpy_sync(sim::Process& proc, void* dst, const void* src, std::size_t n);
  /// Stream-ordered async copy; bytes move at simulated completion.
  std::shared_ptr<CudaEvent> memcpy_async(void* dst, const void* src,
                                          std::size_t n, Stream& stream);

  // ---- IPC ------------------------------------------------------------------
  IpcHandle ipc_get_handle(void* dev_ptr) const;
  /// Map a peer allocation. Charges the (one-time per opener PE) open cost.
  /// `opener_node` must equal the allocation's node, as in real CUDA IPC.
  void* ipc_open_handle(sim::Process& proc, const IpcHandle& h, int opener_node,
                        int opener_pe);

  // ---- kernels ----------------------------------------------------------------
  /// Launch a "kernel": charge launch overhead + per-cell cost, then run the
  /// functional update `body` at completion. Synchronous variant.
  void launch_kernel_sync(sim::Process& proc, std::size_t cells,
                          double per_cell_ns, const std::function<void()>& body);
  /// Stream-ordered async kernel.
  std::shared_ptr<CudaEvent> launch_kernel_async(std::size_t cells,
                                                 double per_cell_ns,
                                                 std::function<void()> body,
                                                 Stream& stream);
  /// Launch a resident kernel: charge the launch overhead once, then run
  /// `body` inline on the calling process. The body charges its own compute
  /// through the KernelContext and may block (waits, communication) without
  /// terminating the kernel — the persistent-kernel model device-initiated
  /// communication requires.
  void launch_kernel_resident(sim::Process& proc, double per_cell_ns,
                              const std::function<void(KernelContext&)>& body);

  // Exposed for the transports: the raw copy path between two locations on
  // one node (used to price pipeline stages without issuing them).
  sim::Path copy_path(const PtrAttr& dst, const PtrAttr& src, int node_hint);

 private:
  std::shared_ptr<CudaEvent> enqueue(Stream& stream, sim::Duration cost,
                                     std::function<void()> body);

  sim::Engine& eng_;
  hw::Cluster& cluster_;
  PointerRegistry registry_;
  std::vector<std::unique_ptr<std::byte[]>> allocations_;
  std::map<void*, std::size_t> allocation_index_;
  std::set<std::pair<int, const void*>> ipc_opened_;  // (opener_pe, base)
};

}  // namespace gdrshmem::cudart
