// The transport-generic endpoint API over the verbs engine: one
// ib::Transport per job models the queue-pair discipline every endpoint
// uses — RC (connected mesh), UD (datagram), or DC (dynamically connected)
// — plus shared receive queues and optional 2-rail striping across the node
// model's two HCAs. ib::Endpoint is the per-PE handle call sites hold.
//
// All three transports produce identical application results per seed: data
// lands bytewise the same, only the modeled cost differs. The default
// configuration (rc, 1 rail) is a pure passthrough to Verbs — bit-identical
// to the pre-transport event stream.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "ib/verbs.hpp"

namespace gdrshmem::ib {

/// Queue-pair discipline behind the endpoint API.
enum class QpKind {
  kRc,   // reliable connected: one QP per peer per endpoint (N^2 mesh)
  kUd,   // unreliable datagram: one QP per endpoint, MTU-limited, no RDMA
  kDc,   // dynamically connected: DCI pool + one DCT per endpoint
  kSrd,  // scalable reliable datagram: reliable, relaxed ordering (EFA-like)
};

inline const char* to_string(QpKind k) {
  switch (k) {
    case QpKind::kRc: return "rc";
    case QpKind::kUd: return "ud";
    case QpKind::kDc: return "dc";
    case QpKind::kSrd: return "srd";
  }
  return "?";
}

/// GDRSHMEM_IB_TRANSPORT (rc | ud | dc | srd; rc when unset). Consulted by
/// RuntimeOptions' defaulted member, mirroring device_backend_from_env, so
/// every runtime honors the variable unless code pins a transport.
QpKind qp_kind_from_env();

/// GDRSHMEM_IB_RAILS (1 | 2; 1 when unset).
int rails_from_env();

struct TransportConfig {
  QpKind kind = QpKind::kRc;
  /// HCAs a large message stripes across (>= SystemParams::
  /// rail_stripe_min_bytes; RC/DC only — UD segments stay on one rail).
  int rails = 1;
  /// Share one receive queue across an RC endpoint's QPs instead of per-QP
  /// recv rings. UD, DC and SRD always use the SRQ; for RC this only changes
  /// the modeled memory footprint, never timing.
  bool srq = false;
  /// Seed for srd's per-segment delivery jitter: the reordering a run sees
  /// is a pure function of (seed, op, segment), so runs are bit-identical
  /// per seed. Ignored by the ordered transports.
  std::uint64_t srd_seed = 1;
  /// srd jitter window override in us; < 0 keeps
  /// SystemParams::srd_jitter_window_us.
  double srd_jitter_us = -1.0;
};

/// Modeled HCA/host memory one endpoint pins under a transport, with every
/// endpoint talking to every other.
struct QpFootprint {
  std::uint64_t qps = 0;            // queue pairs (DC: DCIs + the DCT)
  std::uint64_t context_bytes = 0;  // QP contexts + send rings
  std::uint64_t recv_bytes = 0;     // recv rings, or the shared SRQ
  std::uint64_t total_bytes() const { return context_bytes + recv_bytes; }
};

class Endpoint;

/// The op surface mirrors Verbs (same signatures, same completion
/// semantics) so the protocol layers above — Ctx, the core transports, the
/// proxy, both device backends — swap in transparently; the fault
/// retransmit machinery runs unchanged underneath every QP kind.
class Transport {
 public:
  Transport(Verbs& verbs, const TransportConfig& cfg);
  virtual ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual const char* name() const = 0;
  QpKind kind() const { return cfg_.kind; }
  int rails() const { return cfg_.rails; }
  const TransportConfig& config() const { return cfg_; }
  Verbs& verbs() { return verbs_; }
  RegistrationCache& reg_cache() { return verbs_.reg_cache(); }
  std::uint64_t ops_posted() const { return verbs_.ops_posted(); }

  /// The per-endpoint handle for `id` (PE or service endpoint), created on
  /// first use.
  Endpoint& endpoint(int id);

  /// Memory model: what one endpoint pins when `num_endpoints` communicate
  /// all-to-all. Pure arithmetic — usable at any scale without simulating.
  virtual QpFootprint footprint(int num_endpoints) const = 0;

  /// False when the transport may deliver two data transfers (or segments
  /// of one transfer) between the same endpoint pair out of issue order —
  /// srd. Protocol code that sequences a notification behind a data write
  /// must then wait for the data completion explicitly instead of riding
  /// the wire's FIFO.
  virtual bool in_order_delivery() const { return true; }

  virtual sim::CompletionPtr rdma_write(sim::Process& proc, int src_pe,
                                        const void* lbuf, int dst_pe,
                                        void* rbuf, std::size_t n);
  virtual sim::CompletionPtr rdma_read(sim::Process& proc, int src_pe,
                                       void* lbuf, int dst_pe,
                                       const void* rbuf, std::size_t n);
  virtual sim::CompletionPtr post_send(sim::Process& proc, int src_pe,
                                       int dst_pe, std::size_t n,
                                       std::function<void()> deliver);
  virtual sim::CompletionPtr atomic_fadd64(sim::Process& proc, int src_pe,
                                           int dst_pe, std::uint64_t* raddr,
                                           std::uint64_t add,
                                           std::uint64_t* result);
  virtual sim::CompletionPtr atomic_cswap64(sim::Process& proc, int src_pe,
                                            int dst_pe, std::uint64_t* raddr,
                                            std::uint64_t compare,
                                            std::uint64_t swap,
                                            std::uint64_t* result);

  // ---- diagnostics --------------------------------------------------------
  std::uint64_t dc_reconnects() const { return dc_reconnects_; }
  std::uint64_t ud_packets() const { return ud_packets_; }
  std::uint64_t striped_ops() const { return striped_ops_; }
  std::uint64_t srd_segments() const { return srd_segments_; }
  /// Segment deliveries that arrived while an earlier-offset segment of the
  /// same op was still in flight (a reorder the target had to absorb).
  std::uint64_t srd_ooo_deliveries() const { return srd_ooo_deliveries_; }
  /// Reorder/tracking buffer high-water marks (bytes and entries held for
  /// ops whose completion had not yet been raised). Zero on the ordered
  /// transports.
  virtual std::uint64_t srd_reorder_bytes_hwm() const { return 0; }
  virtual std::uint64_t srd_reorder_entries_hwm() const { return 0; }

 protected:
  const hw::SystemParams& params() const { return verbs_.cluster().params(); }
  /// Large message on a 2-rail config with a second HCA available?
  bool stripe_eligible(std::size_t n) const;
  /// Split the transfer across both HCAs; one completion for both halves.
  sim::CompletionPtr striped_write(sim::Process& proc, int src_pe,
                                   const void* lbuf, int dst_pe, void* rbuf,
                                   std::size_t n);
  sim::CompletionPtr striped_read(sim::Process& proc, int src_pe, void* lbuf,
                                  int dst_pe, const void* rbuf, std::size_t n);

  Verbs& verbs_;
  TransportConfig cfg_;
  std::uint64_t dc_reconnects_ = 0;
  std::uint64_t ud_packets_ = 0;
  std::uint64_t striped_ops_ = 0;
  std::uint64_t srd_segments_ = 0;
  std::uint64_t srd_ooo_deliveries_ = 0;

 private:
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

/// Per-PE facade binding the source endpoint id — the handle protocol code
/// holds so op call sites never thread their own id around.
class Endpoint {
 public:
  Endpoint(Transport& transport, int id) : t_(transport), id_(id) {}
  int id() const { return id_; }
  Transport& transport() { return t_; }

  sim::CompletionPtr rdma_write(sim::Process& proc, const void* lbuf,
                                int dst_pe, void* rbuf, std::size_t n) {
    return t_.rdma_write(proc, id_, lbuf, dst_pe, rbuf, n);
  }
  sim::CompletionPtr rdma_read(sim::Process& proc, void* lbuf, int dst_pe,
                               const void* rbuf, std::size_t n) {
    return t_.rdma_read(proc, id_, lbuf, dst_pe, rbuf, n);
  }
  sim::CompletionPtr post_send(sim::Process& proc, int dst_pe, std::size_t n,
                               std::function<void()> deliver) {
    return t_.post_send(proc, id_, dst_pe, n, std::move(deliver));
  }
  sim::CompletionPtr atomic_fadd64(sim::Process& proc, int dst_pe,
                                   std::uint64_t* raddr, std::uint64_t add,
                                   std::uint64_t* result) {
    return t_.atomic_fadd64(proc, id_, dst_pe, raddr, add, result);
  }
  sim::CompletionPtr atomic_cswap64(sim::Process& proc, int dst_pe,
                                    std::uint64_t* raddr, std::uint64_t compare,
                                    std::uint64_t swap, std::uint64_t* result) {
    return t_.atomic_cswap64(proc, id_, dst_pe, raddr, compare, swap, result);
  }

 private:
  Transport& t_;
  int id_;
};

/// Build the transport selected by `cfg` over the shared verbs engine.
std::unique_ptr<Transport> make_transport(Verbs& verbs,
                                          const TransportConfig& cfg);

}  // namespace gdrshmem::ib
