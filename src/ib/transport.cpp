#include "ib/transport.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace gdrshmem::ib {

using sim::CompletionPtr;
using sim::Duration;

QpKind qp_kind_from_env() {
  const char* v = std::getenv("GDRSHMEM_IB_TRANSPORT");
  if (v == nullptr || *v == '\0') return QpKind::kRc;
  std::string s(v);
  if (s == "rc") return QpKind::kRc;
  if (s == "ud") return QpKind::kUd;
  if (s == "dc") return QpKind::kDc;
  throw std::invalid_argument(
      "GDRSHMEM_IB_TRANSPORT: expected 'rc', 'ud' or 'dc', got \"" + s + "\"");
}

int rails_from_env() {
  const char* v = std::getenv("GDRSHMEM_IB_RAILS");
  if (v == nullptr || *v == '\0') return 1;
  std::string s(v);
  if (s == "1") return 1;
  if (s == "2") return 2;
  throw std::invalid_argument("GDRSHMEM_IB_RAILS: expected '1' or '2', got \"" +
                              s + "\"");
}

// ---------------------------------------------------------------------------
// Transport base: endpoint registry + 2-rail striping shared by RC and DC.

Transport::Transport(Verbs& verbs, const TransportConfig& cfg)
    : verbs_(verbs), cfg_(cfg) {}

Transport::~Transport() = default;

Endpoint& Transport::endpoint(int id) {
  auto idx = static_cast<std::size_t>(id);
  if (idx >= endpoints_.size()) endpoints_.resize(idx + 1);
  if (!endpoints_[idx]) endpoints_[idx] = std::make_unique<Endpoint>(*this, id);
  return *endpoints_[idx];
}

bool Transport::stripe_eligible(std::size_t n) const {
  return cfg_.rails >= 2 && n >= params().rail_stripe_min_bytes &&
         verbs_.cluster().config().hcas_per_node >= 2;
}

namespace {
int other_hca(const hw::Cluster& cl, int hca) {
  return (hca + 1) % cl.config().hcas_per_node;
}
}  // namespace

CompletionPtr Transport::striped_write(sim::Process& proc, int src_pe,
                                       const void* lbuf, int dst_pe, void* rbuf,
                                       std::size_t n) {
  ++striped_ops_;
  hw::Cluster& cl = verbs_.cluster();
  hw::PePlacement sp = cl.placement(src_pe);
  hw::PePlacement dp = cl.placement(dst_pe);
  // One registration for the whole source range, so the two stripes don't
  // each pay (and cache) a half-range registration.
  verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
  const auto* lb = static_cast<const std::byte*>(lbuf);
  auto* rb = static_cast<std::byte*>(rbuf);
  std::size_t half = n / 2;
  std::vector<CompletionPtr> parts;
  parts.push_back(verbs_.rdma_write(proc, src_pe, lb, dst_pe, rb, half,
                                    Rail{sp.hca, dp.hca}));
  parts.push_back(verbs_.rdma_write(
      proc, src_pe, lb + half, dst_pe, rb + half, n - half,
      Rail{other_hca(cl, sp.hca), other_hca(cl, dp.hca)}));
  return sim::aggregate(std::move(parts));
}

CompletionPtr Transport::striped_read(sim::Process& proc, int src_pe,
                                      void* lbuf, int dst_pe, const void* rbuf,
                                      std::size_t n) {
  ++striped_ops_;
  hw::Cluster& cl = verbs_.cluster();
  hw::PePlacement sp = cl.placement(src_pe);
  hw::PePlacement dp = cl.placement(dst_pe);
  verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
  auto* lb = static_cast<std::byte*>(lbuf);
  const auto* rb = static_cast<const std::byte*>(rbuf);
  std::size_t half = n / 2;
  std::vector<CompletionPtr> parts;
  parts.push_back(verbs_.rdma_read(proc, src_pe, lb, dst_pe, rb, half,
                                   Rail{sp.hca, dp.hca}));
  parts.push_back(verbs_.rdma_read(
      proc, src_pe, lb + half, dst_pe, rb + half, n - half,
      Rail{other_hca(cl, sp.hca), other_hca(cl, dp.hca)}));
  return sim::aggregate(std::move(parts));
}

CompletionPtr Transport::rdma_write(sim::Process& proc, int src_pe,
                                    const void* lbuf, int dst_pe, void* rbuf,
                                    std::size_t n) {
  if (stripe_eligible(n)) return striped_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
  return verbs_.rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
}

CompletionPtr Transport::rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                                   int dst_pe, const void* rbuf, std::size_t n) {
  if (stripe_eligible(n)) return striped_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
  return verbs_.rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
}

CompletionPtr Transport::post_send(sim::Process& proc, int src_pe, int dst_pe,
                                   std::size_t n,
                                   std::function<void()> deliver) {
  return verbs_.post_send(proc, src_pe, dst_pe, n, std::move(deliver));
}

CompletionPtr Transport::atomic_fadd64(sim::Process& proc, int src_pe,
                                       int dst_pe, std::uint64_t* raddr,
                                       std::uint64_t add,
                                       std::uint64_t* result) {
  return verbs_.atomic_fadd64(proc, src_pe, dst_pe, raddr, add, result);
}

CompletionPtr Transport::atomic_cswap64(sim::Process& proc, int src_pe,
                                        int dst_pe, std::uint64_t* raddr,
                                        std::uint64_t compare,
                                        std::uint64_t swap,
                                        std::uint64_t* result) {
  return verbs_.atomic_cswap64(proc, src_pe, dst_pe, raddr, compare, swap,
                               result);
}

namespace {

// ---------------------------------------------------------------------------
// RC: the paper's implicit transport, now with its cost made explicit. Every
// endpoint holds one QP per peer, so the HCA's working set of QP contexts is
// endpoints_per_hca * (N - 1); once that overflows the on-die context cache,
// every op risks a context fetch from host memory. The penalty scales with
// the overflow ratio — deterministic, and exactly zero at the scales the
// original test/bench suite runs, keeping the default event stream
// bit-identical.

class RcTransport final : public Transport {
 public:
  RcTransport(Verbs& verbs, const TransportConfig& cfg) : Transport(verbs, cfg) {
    const hw::ClusterConfig& cc = verbs_.cluster().config();
    const hw::SystemParams& p = params();
    int per_hca = std::max(
        1, (cc.pes_per_node + cc.hcas_per_node - 1) / cc.hcas_per_node);
    double active = static_cast<double>(per_hca) *
                    static_cast<double>(verbs_.cluster().num_pes() - 1);
    double cache = static_cast<double>(p.hca_qp_cache_entries);
    if (active > cache && cache > 0) {
      qp_cache_penalty_us_ = p.hca_qp_cache_miss_us * (1.0 - cache / active);
    }
  }

  const char* name() const override { return "rc"; }

  QpFootprint footprint(int num_endpoints) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    f.qps = static_cast<std::uint64_t>(std::max(0, num_endpoints - 1));
    f.context_bytes = f.qps * (p.ib_qp_context_bytes + p.ib_qp_ring_bytes);
    f.recv_bytes = cfg_.srq ? p.ib_srq_bytes : f.qps * p.ib_recv_ring_bytes;
    return f;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    charge_qp_cache(proc);
    return Transport::rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    charge_qp_cache(proc);
    return Transport::rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                          std::size_t n, std::function<void()> deliver) override {
    charge_qp_cache(proc);
    return Transport::post_send(proc, src_pe, dst_pe, n, std::move(deliver));
  }
  CompletionPtr atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                              std::uint64_t* raddr, std::uint64_t add,
                              std::uint64_t* result) override {
    charge_qp_cache(proc);
    return Transport::atomic_fadd64(proc, src_pe, dst_pe, raddr, add, result);
  }
  CompletionPtr atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                               std::uint64_t* raddr, std::uint64_t compare,
                               std::uint64_t swap,
                               std::uint64_t* result) override {
    charge_qp_cache(proc);
    return Transport::atomic_cswap64(proc, src_pe, dst_pe, raddr, compare,
                                     swap, result);
  }

 private:
  void charge_qp_cache(sim::Process& proc) {
    // Zero in every sub-cache-capacity configuration: no delay call, no
    // event, no change to the legacy schedule.
    if (qp_cache_penalty_us_ > 0.0) {
      proc.delay(Duration::us(qp_cache_penalty_us_));
    }
  }

  double qp_cache_penalty_us_ = 0.0;
};

// ---------------------------------------------------------------------------
// UD: one datagram QP per endpoint, receives drawn from the SRQ. No RDMA and
// no HCA atomics — sends are MTU-limited, and RMA is segmented in software
// into MTU-sized datagrams, each paying the per-packet header/posting cost
// (the control/small-message profile: constant memory, poor large-message
// throughput). Atomics stay on a retained RC service QP, the standard
// fallback for transports without native atomics.

class UdTransport final : public Transport {
 public:
  using Transport::Transport;

  const char* name() const override { return "ud"; }

  QpFootprint footprint(int) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    f.qps = 1;
    f.context_bytes = p.ib_qp_context_bytes + p.ib_qp_ring_bytes;
    f.recv_bytes = p.ib_srq_bytes;
    return f;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    const std::size_t mtu = params().ud_mtu_bytes;
    if (n <= mtu) {
      charge_packets(proc, 1);
      return verbs_.rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
    }
    // Software segmentation: register the whole source once, then emulate
    // the write as a train of MTU-sized datagrams. Bytes land identically
    // (per-segment copies at per-segment arrival); only timing differs.
    verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
    const auto* lb = static_cast<const std::byte*>(lbuf);
    auto* rb = static_cast<std::byte*>(rbuf);
    std::vector<CompletionPtr> parts;
    for (std::size_t off = 0; off < n; off += mtu) {
      std::size_t seg = std::min(mtu, n - off);
      charge_packets(proc, 1);
      parts.push_back(
          verbs_.rdma_write(proc, src_pe, lb + off, dst_pe, rb + off, seg));
    }
    return sim::aggregate(std::move(parts));
  }

  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    const std::size_t mtu = params().ud_mtu_bytes;
    if (n <= mtu) {
      charge_packets(proc, 1);
      return verbs_.rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
    }
    verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
    auto* lb = static_cast<std::byte*>(lbuf);
    const auto* rb = static_cast<const std::byte*>(rbuf);
    std::vector<CompletionPtr> parts;
    for (std::size_t off = 0; off < n; off += mtu) {
      std::size_t seg = std::min(mtu, n - off);
      charge_packets(proc, 1);
      parts.push_back(
          verbs_.rdma_read(proc, src_pe, lb + off, dst_pe, rb + off, seg));
    }
    return sim::aggregate(std::move(parts));
  }

  CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                          std::size_t n, std::function<void()> deliver) override {
    if (n > params().ud_mtu_bytes) {
      throw IbError("UD send of " + std::to_string(n) +
                    " bytes exceeds the datagram MTU (" +
                    std::to_string(params().ud_mtu_bytes) +
                    "); segment the payload or use rc/dc");
    }
    charge_packets(proc, 1);
    return Transport::post_send(proc, src_pe, dst_pe, n, std::move(deliver));
  }

  // Atomics: delegated unchanged — modeled as the retained RC service QP.

 private:
  void charge_packets(sim::Process& proc, std::uint64_t count) {
    ud_packets_ += count;
    proc.delay(Duration::us(params().ud_packet_overhead_us *
                            static_cast<double>(count)));
  }
};

// ---------------------------------------------------------------------------
// DC: full RDMA/atomic semantics from a constant-size pool of DC initiators
// per endpoint, each connected on demand to the target's DCT. State is O(pool)
// instead of O(N), so the HCA cache never thrashes — the price is a reconnect
// handshake whenever an op targets a peer none of the DCIs currently holds.

class DcTransport final : public Transport {
 public:
  using Transport::Transport;

  const char* name() const override { return "dc"; }

  QpFootprint footprint(int) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    auto pool = static_cast<std::uint64_t>(p.dc_initiator_pool);
    f.qps = pool + 1;  // DCIs + this endpoint's DCT
    f.context_bytes = f.qps * p.ib_qp_context_bytes + pool * p.ib_qp_ring_bytes;
    f.recv_bytes = p.ib_srq_bytes;
    return f;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    acquire_dci(proc, src_pe, dst_pe);
    return Transport::rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    acquire_dci(proc, src_pe, dst_pe);
    return Transport::rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                          std::size_t n, std::function<void()> deliver) override {
    acquire_dci(proc, src_pe, dst_pe);
    return Transport::post_send(proc, src_pe, dst_pe, n, std::move(deliver));
  }
  CompletionPtr atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                              std::uint64_t* raddr, std::uint64_t add,
                              std::uint64_t* result) override {
    acquire_dci(proc, src_pe, dst_pe);
    return Transport::atomic_fadd64(proc, src_pe, dst_pe, raddr, add, result);
  }
  CompletionPtr atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                               std::uint64_t* raddr, std::uint64_t compare,
                               std::uint64_t swap,
                               std::uint64_t* result) override {
    acquire_dci(proc, src_pe, dst_pe);
    return Transport::atomic_cswap64(proc, src_pe, dst_pe, raddr, compare,
                                     swap, result);
  }

 private:
  /// An op needs a DCI holding a connection to `dst_pe`'s DCT. Loopback ops
  /// never leave the adapter and need no DCI. LRU over the pool: the
  /// least-recently-used initiator is the one retargeted.
  void acquire_dci(sim::Process& proc, int src_pe, int dst_pe) {
    if (verbs_.cluster().same_node(src_pe, dst_pe)) return;
    std::list<int>& lru = targets_[src_pe];
    auto it = std::find(lru.begin(), lru.end(), dst_pe);
    if (it != lru.end()) {
      lru.splice(lru.end(), lru, it);  // still connected: reuse, bump
      return;
    }
    auto pool = static_cast<std::size_t>(params().dc_initiator_pool);
    if (lru.size() >= pool) lru.pop_front();
    lru.push_back(dst_pe);
    ++dc_reconnects_;
    proc.delay(Duration::us(params().dc_reconnect_us));
  }

  // src endpoint -> targets its DCIs currently hold, LRU order.
  std::map<int, std::list<int>> targets_;
};

}  // namespace

std::unique_ptr<Transport> make_transport(Verbs& verbs,
                                          const TransportConfig& cfg) {
  switch (cfg.kind) {
    case QpKind::kRc: return std::make_unique<RcTransport>(verbs, cfg);
    case QpKind::kUd: return std::make_unique<UdTransport>(verbs, cfg);
    case QpKind::kDc: return std::make_unique<DcTransport>(verbs, cfg);
  }
  throw IbError("unknown QP transport kind");
}

}  // namespace gdrshmem::ib
