#include "ib/transport.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "sim/rng.hpp"

namespace gdrshmem::ib {

using sim::CompletionPtr;
using sim::Duration;

QpKind qp_kind_from_env() {
  const char* v = std::getenv("GDRSHMEM_IB_TRANSPORT");
  if (v == nullptr || *v == '\0') return QpKind::kRc;
  std::string s(v);
  if (s == "rc") return QpKind::kRc;
  if (s == "ud") return QpKind::kUd;
  if (s == "dc") return QpKind::kDc;
  if (s == "srd") return QpKind::kSrd;
  throw std::invalid_argument(
      "GDRSHMEM_IB_TRANSPORT: expected 'rc', 'ud', 'dc' or 'srd', got \"" + s +
      "\"");
}

int rails_from_env() {
  const char* v = std::getenv("GDRSHMEM_IB_RAILS");
  if (v == nullptr || *v == '\0') return 1;
  std::string s(v);
  if (s == "1") return 1;
  if (s == "2") return 2;
  throw std::invalid_argument("GDRSHMEM_IB_RAILS: expected '1' or '2', got \"" +
                              s + "\"");
}

// ---------------------------------------------------------------------------
// Transport base: endpoint registry + 2-rail striping shared by RC and DC.

Transport::Transport(Verbs& verbs, const TransportConfig& cfg)
    : verbs_(verbs), cfg_(cfg) {}

Transport::~Transport() = default;

Endpoint& Transport::endpoint(int id) {
  auto idx = static_cast<std::size_t>(id);
  if (idx >= endpoints_.size()) endpoints_.resize(idx + 1);
  if (!endpoints_[idx]) endpoints_[idx] = std::make_unique<Endpoint>(*this, id);
  return *endpoints_[idx];
}

bool Transport::stripe_eligible(std::size_t n) const {
  return cfg_.rails >= 2 && n >= params().rail_stripe_min_bytes &&
         verbs_.cluster().config().hcas_per_node >= 2;
}

namespace {
int other_hca(const hw::Cluster& cl, int hca) {
  return (hca + 1) % cl.config().hcas_per_node;
}
}  // namespace

CompletionPtr Transport::striped_write(sim::Process& proc, int src_pe,
                                       const void* lbuf, int dst_pe, void* rbuf,
                                       std::size_t n) {
  ++striped_ops_;
  hw::Cluster& cl = verbs_.cluster();
  hw::PePlacement sp = cl.placement(src_pe);
  hw::PePlacement dp = cl.placement(dst_pe);
  // One registration for the whole source range, so the two stripes don't
  // each pay (and cache) a half-range registration.
  verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
  const auto* lb = static_cast<const std::byte*>(lbuf);
  auto* rb = static_cast<std::byte*>(rbuf);
  std::size_t half = n / 2;
  std::vector<CompletionPtr> parts;
  parts.push_back(verbs_.rdma_write(proc, src_pe, lb, dst_pe, rb, half,
                                    Rail{sp.hca, dp.hca}));
  parts.push_back(verbs_.rdma_write(
      proc, src_pe, lb + half, dst_pe, rb + half, n - half,
      Rail{other_hca(cl, sp.hca), other_hca(cl, dp.hca)}));
  return sim::aggregate(std::move(parts));
}

CompletionPtr Transport::striped_read(sim::Process& proc, int src_pe,
                                      void* lbuf, int dst_pe, const void* rbuf,
                                      std::size_t n) {
  ++striped_ops_;
  hw::Cluster& cl = verbs_.cluster();
  hw::PePlacement sp = cl.placement(src_pe);
  hw::PePlacement dp = cl.placement(dst_pe);
  verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
  auto* lb = static_cast<std::byte*>(lbuf);
  const auto* rb = static_cast<const std::byte*>(rbuf);
  std::size_t half = n / 2;
  std::vector<CompletionPtr> parts;
  parts.push_back(verbs_.rdma_read(proc, src_pe, lb, dst_pe, rb, half,
                                   Rail{sp.hca, dp.hca}));
  parts.push_back(verbs_.rdma_read(
      proc, src_pe, lb + half, dst_pe, rb + half, n - half,
      Rail{other_hca(cl, sp.hca), other_hca(cl, dp.hca)}));
  return sim::aggregate(std::move(parts));
}

CompletionPtr Transport::rdma_write(sim::Process& proc, int src_pe,
                                    const void* lbuf, int dst_pe, void* rbuf,
                                    std::size_t n) {
  if (stripe_eligible(n)) return striped_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
  return verbs_.rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
}

CompletionPtr Transport::rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                                   int dst_pe, const void* rbuf, std::size_t n) {
  if (stripe_eligible(n)) return striped_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
  return verbs_.rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
}

CompletionPtr Transport::post_send(sim::Process& proc, int src_pe, int dst_pe,
                                   std::size_t n,
                                   std::function<void()> deliver) {
  return verbs_.post_send(proc, src_pe, dst_pe, n, std::move(deliver));
}

CompletionPtr Transport::atomic_fadd64(sim::Process& proc, int src_pe,
                                       int dst_pe, std::uint64_t* raddr,
                                       std::uint64_t add,
                                       std::uint64_t* result) {
  return verbs_.atomic_fadd64(proc, src_pe, dst_pe, raddr, add, result);
}

CompletionPtr Transport::atomic_cswap64(sim::Process& proc, int src_pe,
                                        int dst_pe, std::uint64_t* raddr,
                                        std::uint64_t compare,
                                        std::uint64_t swap,
                                        std::uint64_t* result) {
  return verbs_.atomic_cswap64(proc, src_pe, dst_pe, raddr, compare, swap,
                               result);
}

namespace {

// ---------------------------------------------------------------------------
// RC: the paper's implicit transport, now with its cost made explicit. Every
// endpoint holds one QP per peer, so the HCA's working set of QP contexts is
// endpoints_per_hca * (N - 1); once that overflows the on-die context cache,
// every op risks a context fetch from host memory. The penalty scales with
// the overflow ratio — deterministic, and exactly zero at the scales the
// original test/bench suite runs, keeping the default event stream
// bit-identical.

class RcTransport final : public Transport {
 public:
  RcTransport(Verbs& verbs, const TransportConfig& cfg) : Transport(verbs, cfg) {
    const hw::ClusterConfig& cc = verbs_.cluster().config();
    const hw::SystemParams& p = params();
    int per_hca = std::max(
        1, (cc.pes_per_node + cc.hcas_per_node - 1) / cc.hcas_per_node);
    double active = static_cast<double>(per_hca) *
                    static_cast<double>(verbs_.cluster().num_pes() - 1);
    double cache = static_cast<double>(p.hca_qp_cache_entries);
    if (active > cache && cache > 0) {
      qp_cache_penalty_us_ = p.hca_qp_cache_miss_us * (1.0 - cache / active);
    }
  }

  const char* name() const override { return "rc"; }

  QpFootprint footprint(int num_endpoints) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    f.qps = static_cast<std::uint64_t>(std::max(0, num_endpoints - 1));
    f.context_bytes = f.qps * (p.ib_qp_context_bytes + p.ib_qp_ring_bytes);
    f.recv_bytes = cfg_.srq ? p.ib_srq_bytes : f.qps * p.ib_recv_ring_bytes;
    return f;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    charge_qp_cache(proc, src_pe, dst_pe);
    return Transport::rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    charge_qp_cache(proc, src_pe, dst_pe);
    return Transport::rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                          std::size_t n, std::function<void()> deliver) override {
    charge_qp_cache(proc, src_pe, dst_pe);
    return Transport::post_send(proc, src_pe, dst_pe, n, std::move(deliver));
  }
  CompletionPtr atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                              std::uint64_t* raddr, std::uint64_t add,
                              std::uint64_t* result) override {
    charge_qp_cache(proc, src_pe, dst_pe);
    return Transport::atomic_fadd64(proc, src_pe, dst_pe, raddr, add, result);
  }
  CompletionPtr atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                               std::uint64_t* raddr, std::uint64_t compare,
                               std::uint64_t swap,
                               std::uint64_t* result) override {
    charge_qp_cache(proc, src_pe, dst_pe);
    return Transport::atomic_cswap64(proc, src_pe, dst_pe, raddr, compare,
                                     swap, result);
  }

 private:
  void charge_qp_cache(sim::Process& proc, int src_pe, int dst_pe) {
    // Zero in every sub-cache-capacity configuration: no delay call, no
    // event, no change to the legacy schedule.
    if (qp_cache_penalty_us_ <= 0.0) return;
    // Same-node loopback never touches the wire-facing QP working set (the
    // verbs layer likewise special-cases loopback in attempt_fails and
    // ack_latency), so it cannot suffer a context fetch.
    if (verbs_.cluster().same_node(src_pe, dst_pe)) return;
    proc.delay(Duration::us(qp_cache_penalty_us_));
  }

  double qp_cache_penalty_us_ = 0.0;
};

// ---------------------------------------------------------------------------
// UD: one datagram QP per endpoint, receives drawn from the SRQ. No RDMA and
// no HCA atomics — sends are MTU-limited, and RMA is segmented in software
// into MTU-sized datagrams, each paying the per-packet header/posting cost
// (the control/small-message profile: constant memory, poor large-message
// throughput). Atomics stay on a retained RC service QP, the standard
// fallback for transports without native atomics.

class UdTransport final : public Transport {
 public:
  using Transport::Transport;

  const char* name() const override { return "ud"; }

  QpFootprint footprint(int) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    f.qps = 1;
    f.context_bytes = p.ib_qp_context_bytes + p.ib_qp_ring_bytes;
    f.recv_bytes = p.ib_srq_bytes;
    return f;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    const std::size_t mtu = params().ud_mtu_bytes;
    if (n <= mtu) {
      charge_packets(proc, 1);
      return verbs_.rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
    }
    // Software segmentation: register the whole source once, then emulate
    // the write as a train of MTU-sized datagrams. Bytes land identically
    // (per-segment copies at per-segment arrival); only timing differs.
    verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
    const auto* lb = static_cast<const std::byte*>(lbuf);
    auto* rb = static_cast<std::byte*>(rbuf);
    std::vector<CompletionPtr> parts;
    for (std::size_t off = 0; off < n; off += mtu) {
      std::size_t seg = std::min(mtu, n - off);
      charge_packets(proc, 1);
      parts.push_back(
          verbs_.rdma_write(proc, src_pe, lb + off, dst_pe, rb + off, seg));
    }
    return sim::aggregate(std::move(parts));
  }

  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    const std::size_t mtu = params().ud_mtu_bytes;
    if (n <= mtu) {
      charge_packets(proc, 1);
      return verbs_.rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
    }
    verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
    auto* lb = static_cast<std::byte*>(lbuf);
    const auto* rb = static_cast<const std::byte*>(rbuf);
    std::vector<CompletionPtr> parts;
    for (std::size_t off = 0; off < n; off += mtu) {
      std::size_t seg = std::min(mtu, n - off);
      charge_packets(proc, 1);
      parts.push_back(
          verbs_.rdma_read(proc, src_pe, lb + off, dst_pe, rb + off, seg));
    }
    return sim::aggregate(std::move(parts));
  }

  CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                          std::size_t n, std::function<void()> deliver) override {
    if (n > params().ud_mtu_bytes) {
      throw IbError("UD send of " + std::to_string(n) +
                    " bytes exceeds the datagram MTU (" +
                    std::to_string(params().ud_mtu_bytes) +
                    "); segment the payload or use rc/dc");
    }
    charge_packets(proc, 1);
    return Transport::post_send(proc, src_pe, dst_pe, n, std::move(deliver));
  }

  // Atomics: delegated unchanged — modeled as the retained RC service QP.

 private:
  void charge_packets(sim::Process& proc, std::uint64_t count) {
    ud_packets_ += count;
    proc.delay(Duration::us(params().ud_packet_overhead_us *
                            static_cast<double>(count)));
  }
};

// ---------------------------------------------------------------------------
// DC: full RDMA/atomic semantics from a constant-size pool of DC initiators
// per endpoint, each connected on demand to the target's DCT. State is O(pool)
// instead of O(N), so the HCA cache never thrashes — the price is a reconnect
// handshake whenever an op targets a peer none of the DCIs currently holds.

class DcTransport final : public Transport {
 public:
  using Transport::Transport;

  const char* name() const override { return "dc"; }

  QpFootprint footprint(int) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    auto pool = static_cast<std::uint64_t>(p.dc_initiator_pool);
    f.qps = pool + 1;  // DCIs + this endpoint's DCT
    f.context_bytes = f.qps * p.ib_qp_context_bytes + pool * p.ib_qp_ring_bytes;
    f.recv_bytes = p.ib_srq_bytes;
    return f;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    acquire_dci(proc, src_pe, dst_pe, 0);
    // A striped op drives the second HCA's DCI pool too; it must pay that
    // rail's connection state as well, not ride rail 1's acquisition.
    if (stripe_eligible(n)) acquire_dci(proc, src_pe, dst_pe, 1);
    return Transport::rdma_write(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    acquire_dci(proc, src_pe, dst_pe, 0);
    if (stripe_eligible(n)) acquire_dci(proc, src_pe, dst_pe, 1);
    return Transport::rdma_read(proc, src_pe, lbuf, dst_pe, rbuf, n);
  }
  CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                          std::size_t n, std::function<void()> deliver) override {
    acquire_dci(proc, src_pe, dst_pe, 0);
    return Transport::post_send(proc, src_pe, dst_pe, n, std::move(deliver));
  }
  CompletionPtr atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                              std::uint64_t* raddr, std::uint64_t add,
                              std::uint64_t* result) override {
    acquire_dci(proc, src_pe, dst_pe, 0);
    return Transport::atomic_fadd64(proc, src_pe, dst_pe, raddr, add, result);
  }
  CompletionPtr atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                               std::uint64_t* raddr, std::uint64_t compare,
                               std::uint64_t swap,
                               std::uint64_t* result) override {
    acquire_dci(proc, src_pe, dst_pe, 0);
    return Transport::atomic_cswap64(proc, src_pe, dst_pe, raddr, compare,
                                     swap, result);
  }

 private:
  /// An op needs a DCI holding a connection to `dst_pe`'s DCT — on each HCA
  /// (rail) the op actually drives, since every adapter keeps its own DCI
  /// pool. Loopback ops never leave the adapter and need no DCI. LRU over
  /// the pool: the least-recently-used initiator is the one retargeted.
  void acquire_dci(sim::Process& proc, int src_pe, int dst_pe, int rail) {
    if (verbs_.cluster().same_node(src_pe, dst_pe)) return;
    std::list<int>& lru = targets_[{src_pe, rail}];
    auto it = std::find(lru.begin(), lru.end(), dst_pe);
    if (it != lru.end()) {
      lru.splice(lru.end(), lru, it);  // still connected: reuse, bump
      return;
    }
    auto pool = static_cast<std::size_t>(params().dc_initiator_pool);
    if (lru.size() >= pool) lru.pop_front();
    lru.push_back(dst_pe);
    ++dc_reconnects_;
    proc.delay(Duration::us(params().dc_reconnect_us));
  }

  // (src endpoint, rail) -> targets that HCA's DCIs currently hold, LRU order.
  std::map<std::pair<int, int>, std::list<int>> targets_;
};

// ---------------------------------------------------------------------------
// SRD: EFA-style scalable reliable datagram — reliable delivery, relaxed
// ordering. One datagram QP per endpoint; every RMA op is segmented into
// MTU-sized packets that are individually sprayed across the available
// rails, each with a deterministic seeded delivery jitter, so segments of
// one op (and back-to-back ops on one flow) arrive out of issue order. A
// per-op reorder/tracking structure at the receiving side lands each
// segment's payload on arrival but raises the op completion only once every
// segment has landed — the target-side reorder buffer of real SRD NICs.
// The jitter for (seed, op, segment) is a pure splitmix64 function, so the
// whole reordering pattern is bit-identical per GDRSHMEM_IB_SRD_SEED.
//
// Control messages (post_send) and atomics stay on an ordered service
// channel (delegated unchanged), matching how SRD providers funnel
// small/ordered traffic; bulk RMA is what gets sprayed.

class SrdTransport final : public Transport {
 public:
  SrdTransport(Verbs& verbs, const TransportConfig& cfg)
      : Transport(verbs, cfg),
        jitter_window_us_(cfg.srd_jitter_us >= 0.0
                              ? cfg.srd_jitter_us
                              : verbs.cluster().params().srd_jitter_window_us) {}

  const char* name() const override { return "srd"; }
  bool in_order_delivery() const override { return false; }

  QpFootprint footprint(int) const override {
    const hw::SystemParams& p = params();
    QpFootprint f;
    f.qps = 1;
    f.context_bytes =
        p.ib_qp_context_bytes + p.ib_qp_ring_bytes +
        static_cast<std::uint64_t>(p.srd_reorder_entries) *
            p.srd_reorder_entry_bytes;  // the reorder/tracking buffer
    f.recv_bytes = p.ib_srq_bytes;
    return f;
  }

  std::uint64_t srd_reorder_bytes_hwm() const override {
    return reorder_bytes_hwm_;
  }
  std::uint64_t srd_reorder_entries_hwm() const override {
    return reorder_entries_hwm_;
  }

  CompletionPtr rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                           int dst_pe, void* rbuf, std::size_t n) override {
    const std::size_t mtu = params().srd_mtu_bytes;
    const std::uint64_t op = next_op_id_++;
    if (n <= mtu) {
      // Single segment: no reassembly, but the packet still rides a jittered
      // path — back-to-back small ops on one flow can land out of order.
      charge_segment(proc);
      auto track = start_op(1);
      return finish_op(track, verbs_.rdma_write(
                                  proc, src_pe, lbuf, dst_pe, rbuf, n,
                                  rail_for(src_pe, dst_pe, 0),
                                  seg_opts(track, op, 0, n, src_pe, dst_pe)));
    }
    verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
    if (cfg_.rails >= 2 && verbs_.cluster().config().hcas_per_node >= 2) {
      ++striped_ops_;  // segments alternate HCAs: multi-rail spraying
    }
    const auto* lb = static_cast<const std::byte*>(lbuf);
    auto* rb = static_cast<std::byte*>(rbuf);
    auto track = start_op((n + mtu - 1) / mtu);
    std::vector<CompletionPtr> parts;
    std::size_t idx = 0;
    for (std::size_t off = 0; off < n; off += mtu, ++idx) {
      std::size_t seg = std::min(mtu, n - off);
      charge_segment(proc);
      parts.push_back(verbs_.rdma_write(
          proc, src_pe, lb + off, dst_pe, rb + off, seg,
          rail_for(src_pe, dst_pe, idx),
          seg_opts(track, op, idx, seg, src_pe, dst_pe)));
    }
    return finish_op(track, sim::aggregate(std::move(parts)));
  }

  CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                          int dst_pe, const void* rbuf, std::size_t n) override {
    // For a read, the response segments are the sprayed leg, so the
    // reorder/tracking buffer lives at the *initiator*.
    const std::size_t mtu = params().srd_mtu_bytes;
    const std::uint64_t op = next_op_id_++;
    if (n <= mtu) {
      charge_segment(proc);
      auto track = start_op(1);
      return finish_op(track, verbs_.rdma_read(
                                  proc, src_pe, lbuf, dst_pe, rbuf, n,
                                  rail_for(src_pe, dst_pe, 0),
                                  seg_opts(track, op, 0, n, src_pe, dst_pe)));
    }
    verbs_.reg_cache().get_or_register(proc, src_pe, lbuf, n);
    if (cfg_.rails >= 2 && verbs_.cluster().config().hcas_per_node >= 2) {
      ++striped_ops_;
    }
    auto* lb = static_cast<std::byte*>(lbuf);
    const auto* rb = static_cast<const std::byte*>(rbuf);
    auto track = start_op((n + mtu - 1) / mtu);
    std::vector<CompletionPtr> parts;
    std::size_t idx = 0;
    for (std::size_t off = 0; off < n; off += mtu, ++idx) {
      std::size_t seg = std::min(mtu, n - off);
      charge_segment(proc);
      parts.push_back(verbs_.rdma_read(
          proc, src_pe, lb + off, dst_pe, rb + off, seg,
          rail_for(src_pe, dst_pe, idx),
          seg_opts(track, op, idx, seg, src_pe, dst_pe)));
    }
    return finish_op(track, sim::aggregate(std::move(parts)));
  }

  // post_send and atomics: delegated unchanged — the ordered service channel.

 private:
  /// Per-op segment arrival bookkeeping: which segments have landed, and how
  /// much reorder-buffer state the (still-incomplete) op is holding.
  struct OpTrack {
    std::size_t nseg = 0;
    std::size_t next_contig = 0;  // lowest segment index not yet arrived
    std::vector<bool> arrived;
    std::uint64_t held_bytes = 0;
    std::uint64_t held_entries = 0;
  };

  std::shared_ptr<OpTrack> start_op(std::size_t nseg) {
    auto t = std::make_shared<OpTrack>();
    t->nseg = nseg;
    t->arrived.assign(nseg, false);
    return t;
  }

  void charge_segment(sim::Process& proc) {
    ++srd_segments_;
    proc.delay(Duration::us(params().srd_segment_overhead_us));
  }

  /// Spray segments round-robin across both HCAs when 2-rail.
  Rail rail_for(int src_pe, int dst_pe, std::size_t idx) {
    hw::Cluster& cl = verbs_.cluster();
    if (cfg_.rails < 2 || cl.config().hcas_per_node < 2) return {};
    hw::PePlacement sp = cl.placement(src_pe);
    hw::PePlacement dp = cl.placement(dst_pe);
    if (idx % 2 == 0) return Rail{sp.hca, dp.hca};
    return Rail{other_hca(cl, sp.hca), other_hca(cl, dp.hca)};
  }

  /// The delivery jitter for segment `idx` of op `op`: uniform in
  /// [0, jitter window), drawn from a splitmix64 stream keyed purely by
  /// (seed, op, segment) — no global RNG state, so concurrent ops can't
  /// perturb each other's reordering. Loopback never leaves the adapter and
  /// is never jittered.
  Duration segment_jitter(int src_pe, int dst_pe, std::uint64_t op,
                          std::size_t idx) const {
    if (jitter_window_us_ <= 0.0) return {};
    if (verbs_.cluster().same_node(src_pe, dst_pe)) return {};
    sim::Rng rng(cfg_.srd_seed * 0x9e3779b97f4a7c15ULL +
                 op * 0xbf58476d1ce4e5b9ULL + static_cast<std::uint64_t>(idx));
    return Duration::us(rng.next_double() * jitter_window_us_);
  }

  SegmentOpts seg_opts(const std::shared_ptr<OpTrack>& track, std::uint64_t op,
                       std::size_t idx, std::size_t bytes, int src_pe,
                       int dst_pe) {
    SegmentOpts s;
    s.jitter = segment_jitter(src_pe, dst_pe, op, idx);
    s.on_delivered = [this, track, idx, bytes] {
      on_segment_arrival(*track, idx, bytes);
    };
    return s;
  }

  /// Runs in event context when a segment's payload lands at the receiving
  /// side. The payload is already in place (delivered on arrival); the
  /// reorder buffer only tracks sequence state until the op completes.
  void on_segment_arrival(OpTrack& t, std::size_t idx, std::size_t bytes) {
    if (idx != t.next_contig) ++srd_ooo_deliveries_;
    t.arrived[idx] = true;
    while (t.next_contig < t.nseg && t.arrived[t.next_contig]) ++t.next_contig;
    t.held_bytes += bytes;
    ++t.held_entries;
    reorder_bytes_ += bytes;
    ++reorder_entries_;
    reorder_bytes_hwm_ = std::max(reorder_bytes_hwm_, reorder_bytes_);
    reorder_entries_hwm_ = std::max(reorder_entries_hwm_, reorder_entries_);
  }

  /// Release the op's reorder-buffer occupancy when its completion fires —
  /// on the subscribe, not at last arrival, so an op that completes in
  /// *error* (some segments lost for good) still releases exactly what
  /// actually landed and the gauges can't leak under fault plans.
  CompletionPtr finish_op(std::shared_ptr<OpTrack> track, CompletionPtr comp) {
    comp->subscribe([this, track = std::move(track)] {
      reorder_bytes_ -= track->held_bytes;
      reorder_entries_ -= track->held_entries;
      track->held_bytes = 0;
      track->held_entries = 0;
    });
    return comp;
  }

  double jitter_window_us_;
  std::uint64_t next_op_id_ = 0;
  std::uint64_t reorder_bytes_ = 0;
  std::uint64_t reorder_entries_ = 0;
  std::uint64_t reorder_bytes_hwm_ = 0;
  std::uint64_t reorder_entries_hwm_ = 0;
};

}  // namespace

std::unique_ptr<Transport> make_transport(Verbs& verbs,
                                          const TransportConfig& cfg) {
  switch (cfg.kind) {
    case QpKind::kRc: return std::make_unique<RcTransport>(verbs, cfg);
    case QpKind::kUd: return std::make_unique<UdTransport>(verbs, cfg);
    case QpKind::kDc: return std::make_unique<DcTransport>(verbs, cfg);
    case QpKind::kSrd: return std::make_unique<SrdTransport>(verbs, cfg);
  }
  throw IbError("unknown QP transport kind");
}

}  // namespace gdrshmem::ib
