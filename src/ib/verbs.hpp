// InfiniBand verbs model: memory registration (with a registration cache, as
// in MVAPICH2-X), one-sided RDMA read/write — including the GPUDirect RDMA
// legs when a buffer lives in GPU memory — send-style control messages, and
// 64-bit hardware atomics (fetch-and-add, compare-and-swap).
//
// Functional semantics: bytes land in the destination buffer exactly at the
// simulated completion instant; a local completion (CQ entry) fires after
// the hardware ACK returns. Remote buffers must be registered by their
// owning PE or the operation faults, mirroring rkey protection.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <stdexcept>

#include "cudart/cudart.hpp"
#include "hw/topology.hpp"
#include "sim/fault.hpp"
#include "sim/future.hpp"

namespace gdrshmem::ib {

class IbError : public std::runtime_error {
 public:
  explicit IbError(const std::string& what) : std::runtime_error(what) {}
};

/// Tracks, per PE, which address ranges are registered with the HCA, and
/// makes re-registration free (MVAPICH2-X registration cache). Bounded:
/// dynamically registered ranges are kept in per-PE LRU order and evicted
/// beyond SystemParams::mr_cache_capacity; init-time registrations (heaps,
/// eager slots, staging pools — anything a remote rkey check must always
/// pass for) are pinned and never counted against the bound.
class RegistrationCache {
 public:
  RegistrationCache(sim::Engine& eng, const hw::SystemParams& params)
      : eng_(eng), params_(params), capacity_(params.mr_cache_capacity) {}

  /// Ensure [addr, addr+len) is registered for `pe`, charging the calling
  /// process the registration cost on a miss (a re-registration after an
  /// LRU eviction pays it again).
  void get_or_register(sim::Process& proc, int pe, const void* addr,
                       std::size_t len);
  /// Register without a calling process (used at init before PEs run);
  /// charges nothing — init-time registration cost is charged by the caller.
  /// Pinned: never evicted.
  void register_at_init(int pe, const void* addr, std::size_t len);
  bool covered(int pe, const void* addr, std::size_t len) const;

  /// Dynamic (unpinned) ranges retained per PE; 0 = unbounded.
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Misses that extended an existing registration at the same base address
  /// in place (the entry keeps its pinned status and its single LRU node).
  std::uint64_t grows() const { return grows_; }

 private:
  struct Entry {
    std::size_t len = 0;
    bool pinned = false;
    // Position in the owning PE's LRU list (dynamic entries only).
    std::list<std::uintptr_t>::iterator lru_pos;
  };
  struct PeRanges {
    // range start -> entry; ranges are non-overlapping.
    std::map<std::uintptr_t, Entry> ranges;
    // Dynamic entries, least recently used first.
    std::list<std::uintptr_t> lru;
  };

  /// The registered range containing [addr, addr+len), or nullptr.
  Entry* find(int pe, const void* addr, std::size_t len);
  const Entry* find(int pe, const void* addr, std::size_t len) const;

  sim::Engine& eng_;
  const hw::SystemParams& params_;
  std::size_t capacity_;
  std::map<int, PeRanges> ranges_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t grows_ = 0;
};

/// Rail override for multi-HCA striping: which HCA index each side's leg
/// uses. -1 keeps the PE's placement default.
struct Rail {
  int src_hca = -1;
  int dst_hca = -1;
};

/// Per-segment scheduling extras for relaxed-ordering transports. `jitter`
/// defers the segment's data arrival past the path's deterministic schedule
/// (the ACK tracks the jittered instant); `on_delivered` runs in event
/// context immediately after the segment's bytes land, before the generic
/// delivery hook fires. The defaults are inert — the legacy schedule runs
/// verbatim, event for event.
struct SegmentOpts {
  sim::Duration jitter{};
  std::function<void()> on_delivered;
};

/// The verbs provider shared by all PEs of a simulated job.
class Verbs {
 public:
  Verbs(sim::Engine& eng, hw::Cluster& cluster, cudart::CudaRuntime& cuda);
  Verbs(const Verbs&) = delete;
  Verbs& operator=(const Verbs&) = delete;

  RegistrationCache& reg_cache() { return reg_cache_; }
  hw::Cluster& cluster() { return cluster_; }

  /// Invoked (in event context) with the destination endpoint id whenever
  /// data or an atomic lands in that endpoint's memory. The runtime uses it
  /// to wake PEs blocked in shmem_wait_until / progress loops.
  void set_delivery_hook(std::function<void(int endpoint)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Attach a fault injector (owned by the runtime). When the injector's
  /// plan is non-empty, every inter-node attempt consults it and failed
  /// attempts are retransmitted transparently up to SystemParams::
  /// ib_retry_count times (exponentially spaced, the RC-QP retry envelope)
  /// before the returned completion fires in *error* state. With no
  /// injector — or an empty plan — the legacy single-shot scheduling runs
  /// verbatim, preserving bit-identical event order.
  void set_fault_injector(sim::FaultInjector* inj) { faults_ = inj; }

  /// One-sided RDMA write of `n` bytes from `src_pe`-local `lbuf` into
  /// `dst_pe`'s `rbuf`. The caller is charged the post overhead; the
  /// returned completion fires when the hardware ACK lands (the source
  /// buffer is then reusable and the data is visible at the target).
  /// Works for any host/GPU buffer combination; GPU legs go through GDR.
  /// `rail` pins each side's HCA for multi-rail striping (placement default
  /// otherwise); `seg` adds relaxed-ordering per-segment scheduling.
  sim::CompletionPtr rdma_write(sim::Process& proc, int src_pe,
                                const void* lbuf, int dst_pe, void* rbuf,
                                std::size_t n, Rail rail = {},
                                SegmentOpts seg = {});

  /// One-sided RDMA read of `n` bytes from `dst_pe`'s `rbuf` into
  /// `src_pe`-local `lbuf`. Completion fires when the data is in `lbuf`.
  sim::CompletionPtr rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                               int dst_pe, const void* rbuf, std::size_t n,
                               Rail rail = {}, SegmentOpts seg = {});

  /// Two-sided send of a control message: `deliver` runs at the target at
  /// arrival time (the caller wires it to a mailbox). `n` models payload
  /// size (headers are free).
  sim::CompletionPtr post_send(sim::Process& proc, int src_pe, int dst_pe,
                               std::size_t n, std::function<void()> deliver);

  /// IB hardware fetch-and-add on a remote 64-bit word. `*result` receives
  /// the prior value when the completion fires. GDR path if the word is in
  /// GPU memory.
  sim::CompletionPtr atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                                   std::uint64_t* raddr, std::uint64_t add,
                                   std::uint64_t* result);

  /// IB hardware compare-and-swap on a remote 64-bit word.
  sim::CompletionPtr atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                                    std::uint64_t* raddr, std::uint64_t compare,
                                    std::uint64_t swap, std::uint64_t* result);

  // Diagnostics.
  std::uint64_t ops_posted() const { return ops_posted_; }

 private:
  /// The HCA-side DMA leg for a buffer: host DMA or a GDR P2P access.
  /// `hca` = -1 uses the PE's placement HCA; a rail override selects the
  /// node's other adapter.
  sim::Path local_leg(int pe, const void* buf, hw::P2pDir dir, int hca = -1);
  /// Charge post overhead + validate remote registration.
  void pre_post(sim::Process& proc, int dst_pe, const void* raddr, std::size_t n);
  sim::Duration ack_latency(int src_pe, int dst_pe) const;

  // ---- tier-1 retransmit machinery (fault plans only) ---------------------
  bool fault_active() const { return faults_ && faults_->enabled(); }
  /// Retransmit timeout before attempt `attempt + 1` (IB-style doubling,
  /// capped).
  sim::Duration retry_delay(int attempt) const;
  /// True if this attempt between the endpoints' nodes fails (flap window or
  /// random completion error). Loopback never consults the injector.
  bool attempt_fails(int src_pe, int dst_pe, bool atomic);
  /// Drive one attempt of `transmit` (which performs the legacy scheduling
  /// for the op); on failure, reschedule after the retransmit timeout, and
  /// after ib_retry_count retries surface an error completion at the source.
  void run_attempts(int src_pe, int dst_pe, bool atomic, bool unlimited,
                    int attempt, sim::CompletionPtr comp,
                    std::shared_ptr<std::function<void()>> transmit);

  void delivered(int endpoint) {
    if (delivery_hook_) delivery_hook_(endpoint);
  }

  sim::Engine& eng_;
  hw::Cluster& cluster_;
  cudart::CudaRuntime& cuda_;
  RegistrationCache reg_cache_;
  std::function<void(int)> delivery_hook_;
  sim::FaultInjector* faults_ = nullptr;
  std::uint64_t ops_posted_ = 0;
};

}  // namespace gdrshmem::ib
