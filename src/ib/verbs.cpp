#include "ib/verbs.hpp"

#include <cstring>

namespace gdrshmem::ib {

using cudart::MemSpace;
using sim::Completion;
using sim::CompletionPtr;
using sim::Duration;
using sim::Path;
using sim::Time;

// ---------------------------------------------------------------------------
// RegistrationCache

bool RegistrationCache::covered(int pe, const void* addr, std::size_t len) const {
  auto pit = ranges_.find(pe);
  if (pit == ranges_.end()) return false;
  auto key = reinterpret_cast<std::uintptr_t>(addr);
  auto it = pit->second.upper_bound(key);
  if (it == pit->second.begin()) return false;
  --it;
  return key >= it->first && key + len <= it->first + it->second;
}

void RegistrationCache::register_at_init(int pe, const void* addr, std::size_t len) {
  ranges_[pe][reinterpret_cast<std::uintptr_t>(addr)] = len;
}

void RegistrationCache::get_or_register(sim::Process& proc, int pe,
                                        const void* addr, std::size_t len) {
  if (covered(pe, addr, len)) {
    ++hits_;
    return;
  }
  ++misses_;
  double mb = static_cast<double>(len) / 1e6;
  proc.delay(Duration::us(params_.mr_register_base_us +
                          params_.mr_register_per_mb_us * mb));
  register_at_init(pe, addr, len);
}

// ---------------------------------------------------------------------------
// Verbs

Verbs::Verbs(sim::Engine& eng, hw::Cluster& cluster, cudart::CudaRuntime& cuda)
    : eng_(eng), cluster_(cluster), cuda_(cuda),
      reg_cache_(eng, cluster.params()) {}

Path Verbs::local_leg(int pe, const void* buf, hw::P2pDir dir) {
  hw::PePlacement pl = cluster_.placement(pe);
  cudart::PtrAttr a = cuda_.attributes(buf);
  if (a.space == MemSpace::kDevice) {
    if (a.node != pl.node) {
      throw IbError("buffer is device memory on a different node than its PE");
    }
    return cluster_.gdr_leg(pl.node, pl.hca, a.device, dir);
  }
  return cluster_.hca_host(pl.node, pl.hca);
}

void Verbs::pre_post(sim::Process& proc, int dst_pe, const void* raddr,
                     std::size_t n) {
  if (!reg_cache_.covered(dst_pe, raddr, n)) {
    throw IbError("remote access fault: target range not registered (rkey)");
  }
  ++ops_posted_;
  proc.delay(Duration::us(cluster_.params().ib_post_overhead_us));
}

Duration Verbs::ack_latency(int src_pe, int dst_pe) const {
  const auto& p = cluster_.params();
  if (cluster_.same_node(src_pe, dst_pe)) {
    // Loopback: the ACK never leaves the adapter.
    return Duration::us(p.hca_processing_us);
  }
  return Duration::us(2 * p.wire_latency_us + p.switch_latency_us +
                      p.hca_processing_us);
}

CompletionPtr Verbs::rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                                int dst_pe, void* rbuf, std::size_t n) {
  pre_post(proc, dst_pe, rbuf, n);
  reg_cache_.get_or_register(proc, src_pe, lbuf, n);
  hw::PePlacement src = cluster_.placement(src_pe);
  hw::PePlacement dst = cluster_.placement(dst_pe);
  // Source HCA *reads* the local buffer, target side *writes* the remote one.
  Path path = sim::combine({local_leg(src_pe, lbuf, hw::P2pDir::kRead),
                            cluster_.wire(src.node, src.hca, dst.node, dst.hca),
                            local_leg(dst_pe, rbuf, hw::P2pDir::kWrite)});
  Time data_at_target = path.schedule(eng_.now(), n);
  auto comp = std::make_shared<Completion>();
  eng_.schedule_at(data_at_target, [this, dst_pe, lbuf, rbuf, n] {
    std::memcpy(rbuf, lbuf, n);
    delivered(dst_pe);
  });
  eng_.schedule_at(data_at_target + ack_latency(src_pe, dst_pe), [this, comp, src_pe] {
    comp->fire();
    delivered(src_pe);  // CQ entry lands at the source
  });
  return comp;
}

CompletionPtr Verbs::rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                               int dst_pe, const void* rbuf, std::size_t n) {
  pre_post(proc, dst_pe, rbuf, n);
  reg_cache_.get_or_register(proc, src_pe, lbuf, n);
  hw::PePlacement src = cluster_.placement(src_pe);
  hw::PePlacement dst = cluster_.placement(dst_pe);
  // Request travels to the target, then data streams back: target side reads
  // its memory (GDR read if on GPU), initiator side writes into lbuf.
  Path request = cluster_.wire(src.node, src.hca, dst.node, dst.hca);
  Path back = sim::combine({local_leg(dst_pe, rbuf, hw::P2pDir::kRead),
                            cluster_.wire(dst.node, dst.hca, src.node, src.hca),
                            local_leg(src_pe, lbuf, hw::P2pDir::kWrite)});
  Time request_at_target = request.schedule(eng_.now(), 0);
  Time data_local = back.schedule(request_at_target, n);
  auto comp = std::make_shared<Completion>();
  eng_.schedule_at(data_local, [this, comp, src_pe, lbuf, rbuf, n] {
    std::memcpy(lbuf, rbuf, n);
    delivered(src_pe);
    comp->fire();
  });
  return comp;
}

CompletionPtr Verbs::post_send(sim::Process& proc, int src_pe, int dst_pe,
                               std::size_t n, std::function<void()> deliver) {
  ++ops_posted_;
  proc.delay(Duration::us(cluster_.params().ib_post_overhead_us));
  hw::PePlacement src = cluster_.placement(src_pe);
  hw::PePlacement dst = cluster_.placement(dst_pe);
  // Control messages live in host memory on both sides.
  Path path = sim::combine({cluster_.hca_host(src.node, src.hca),
                            cluster_.wire(src.node, src.hca, dst.node, dst.hca),
                            cluster_.hca_host(dst.node, dst.hca)});
  Time at_target = path.schedule(eng_.now(), n);
  auto comp = std::make_shared<Completion>();
  eng_.schedule_at(at_target, [deliver = std::move(deliver)] { deliver(); });
  eng_.schedule_at(at_target + ack_latency(src_pe, dst_pe), [this, comp, src_pe] {
    comp->fire();
    delivered(src_pe);
  });
  return comp;
}

CompletionPtr Verbs::atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                                   std::uint64_t* raddr, std::uint64_t add,
                                   std::uint64_t* result) {
  pre_post(proc, dst_pe, raddr, sizeof(std::uint64_t));
  hw::PePlacement src = cluster_.placement(src_pe);
  hw::PePlacement dst = cluster_.placement(dst_pe);
  const auto& p = cluster_.params();
  // Request to the target HCA, RMW over PCIe (read + write the word), then
  // the old value rides the ACK back.
  Path there = cluster_.wire(src.node, src.hca, dst.node, dst.hca);
  Time at_hca = there.schedule(eng_.now(), sizeof(std::uint64_t));
  Path rd = local_leg(dst_pe, raddr, hw::P2pDir::kRead);
  Path wr = local_leg(dst_pe, raddr, hw::P2pDir::kWrite);
  Time done_rmw = at_hca + Duration::us(p.ib_atomic_exec_us) +
                  rd.cost(sizeof(std::uint64_t)) + wr.cost(sizeof(std::uint64_t));
  Path backwire = cluster_.wire(dst.node, dst.hca, src.node, src.hca);
  Time reply_local = backwire.schedule(done_rmw, sizeof(std::uint64_t));
  auto comp = std::make_shared<Completion>();
  eng_.schedule_at(done_rmw, [this, dst_pe, raddr, add, result] {
    *result = *raddr;
    *raddr += add;
    delivered(dst_pe);
  });
  eng_.schedule_at(reply_local, [this, comp, src_pe] {
    comp->fire();
    delivered(src_pe);
  });
  return comp;
}

CompletionPtr Verbs::atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                                    std::uint64_t* raddr, std::uint64_t compare,
                                    std::uint64_t swap, std::uint64_t* result) {
  pre_post(proc, dst_pe, raddr, sizeof(std::uint64_t));
  hw::PePlacement src = cluster_.placement(src_pe);
  hw::PePlacement dst = cluster_.placement(dst_pe);
  const auto& p = cluster_.params();
  Path there = cluster_.wire(src.node, src.hca, dst.node, dst.hca);
  Time at_hca = there.schedule(eng_.now(), sizeof(std::uint64_t));
  Path rd = local_leg(dst_pe, raddr, hw::P2pDir::kRead);
  Path wr = local_leg(dst_pe, raddr, hw::P2pDir::kWrite);
  Time done_rmw = at_hca + Duration::us(p.ib_atomic_exec_us) +
                  rd.cost(sizeof(std::uint64_t)) + wr.cost(sizeof(std::uint64_t));
  Path backwire = cluster_.wire(dst.node, dst.hca, src.node, src.hca);
  Time reply_local = backwire.schedule(done_rmw, sizeof(std::uint64_t));
  auto comp = std::make_shared<Completion>();
  eng_.schedule_at(done_rmw, [this, dst_pe, raddr, compare, swap, result] {
    *result = *raddr;
    if (*raddr == compare) *raddr = swap;
    delivered(dst_pe);
  });
  eng_.schedule_at(reply_local, [this, comp, src_pe] {
    comp->fire();
    delivered(src_pe);
  });
  return comp;
}

}  // namespace gdrshmem::ib
