#include "ib/verbs.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace gdrshmem::ib {

using cudart::MemSpace;
using sim::Completion;
using sim::CompletionPtr;
using sim::Duration;
using sim::FaultEvent;
using sim::Path;
using sim::Time;

// ---------------------------------------------------------------------------
// RegistrationCache

RegistrationCache::Entry* RegistrationCache::find(int pe, const void* addr,
                                                  std::size_t len) {
  auto pit = ranges_.find(pe);
  if (pit == ranges_.end()) return nullptr;
  auto key = reinterpret_cast<std::uintptr_t>(addr);
  auto it = pit->second.ranges.upper_bound(key);
  if (it == pit->second.ranges.begin()) return nullptr;
  --it;
  if (key >= it->first && key + len <= it->first + it->second.len) {
    return &it->second;
  }
  return nullptr;
}

const RegistrationCache::Entry* RegistrationCache::find(int pe, const void* addr,
                                                        std::size_t len) const {
  return const_cast<RegistrationCache*>(this)->find(pe, addr, len);
}

bool RegistrationCache::covered(int pe, const void* addr, std::size_t len) const {
  return find(pe, addr, len) != nullptr;
}

void RegistrationCache::register_at_init(int pe, const void* addr, std::size_t len) {
  PeRanges& pr = ranges_[pe];
  auto [it, inserted] = pr.ranges.try_emplace(reinterpret_cast<std::uintptr_t>(addr));
  Entry& e = it->second;
  if (!inserted && !e.pinned) pr.lru.erase(e.lru_pos);  // promote dynamic -> pinned
  e.len = len;
  e.pinned = true;
}

void RegistrationCache::get_or_register(sim::Process& proc, int pe,
                                        const void* addr, std::size_t len) {
  PeRanges& pr = ranges_[pe];
  if (Entry* e = find(pe, addr, len)) {
    ++hits_;
    if (!e->pinned) {
      // LRU bump: move the containing range to the most-recent end.
      pr.lru.splice(pr.lru.end(), pr.lru, e->lru_pos);
    }
    return;
  }
  ++misses_;
  double mb = static_cast<double>(len) / 1e6;
  proc.delay(Duration::us(params_.mr_register_base_us +
                          params_.mr_register_per_mb_us * mb));
  auto key = reinterpret_cast<std::uintptr_t>(addr);
  auto [it, inserted] = pr.ranges.try_emplace(key);
  Entry& e = it->second;
  if (!inserted) {
    // Grow-in-place: a registration at this base exists but is too short to
    // cover [addr, addr+len). Extending it must keep a pinned entry pinned
    // and must not mint a second LRU node for a dynamic one — the stale node
    // would inflate lru.size(), shrink effective capacity, and eventually
    // evict through an orphaned iterator. A dynamic entry keeps its single
    // node, bumped to most-recent.
    ++grows_;
    e.len = std::max(e.len, len);
    if (!e.pinned) pr.lru.splice(pr.lru.end(), pr.lru, e.lru_pos);
    return;
  }
  e.len = len;
  e.pinned = false;
  e.lru_pos = pr.lru.insert(pr.lru.end(), key);
  while (capacity_ != 0 && pr.lru.size() > capacity_) {
    pr.ranges.erase(pr.lru.front());
    pr.lru.pop_front();
    ++evictions_;
  }
}

// ---------------------------------------------------------------------------
// Verbs

Verbs::Verbs(sim::Engine& eng, hw::Cluster& cluster, cudart::CudaRuntime& cuda)
    : eng_(eng), cluster_(cluster), cuda_(cuda),
      reg_cache_(eng, cluster.params()) {}

Path Verbs::local_leg(int pe, const void* buf, hw::P2pDir dir, int hca) {
  hw::PePlacement pl = cluster_.placement(pe);
  if (hca < 0) hca = pl.hca;
  cudart::PtrAttr a = cuda_.attributes(buf);
  if (a.space == MemSpace::kDevice) {
    if (a.node != pl.node) {
      throw IbError("buffer is device memory on a different node than its PE");
    }
    return cluster_.gdr_leg(pl.node, hca, a.device, dir);
  }
  return cluster_.hca_host(pl.node, hca);
}

void Verbs::pre_post(sim::Process& proc, int dst_pe, const void* raddr,
                     std::size_t n) {
  if (!reg_cache_.covered(dst_pe, raddr, n)) {
    throw IbError("remote access fault: target range not registered (rkey)");
  }
  ++ops_posted_;
  proc.delay(Duration::us(cluster_.params().ib_post_overhead_us));
}

Duration Verbs::ack_latency(int src_pe, int dst_pe) const {
  const auto& p = cluster_.params();
  if (cluster_.same_node(src_pe, dst_pe)) {
    // Loopback: the ACK never leaves the adapter.
    return Duration::us(p.hca_processing_us);
  }
  return Duration::us(2 * p.wire_latency_us + p.switch_latency_us +
                      p.hca_processing_us);
}

Duration Verbs::retry_delay(int attempt) const {
  const auto& p = cluster_.params();
  int exp = std::min(attempt - 1, 16);
  double t = p.ib_retry_timeout_us * static_cast<double>(1u << exp);
  return Duration::us(std::min(t, p.ib_retry_timeout_cap_us));
}

bool Verbs::attempt_fails(int src_pe, int dst_pe, bool atomic) {
  // Loopback traffic turns around inside the adapter: no cable, no flap,
  // no wire error — and no randomness consumed.
  if (cluster_.same_node(src_pe, dst_pe)) return false;
  int s = cluster_.placement(src_pe).node;
  int d = cluster_.placement(dst_pe).node;
  return atomic ? faults_->atomic_attempt_fails(s, d, eng_.now())
                : faults_->wire_attempt_fails(s, d, eng_.now());
}

void Verbs::run_attempts(int src_pe, int dst_pe, bool atomic, bool unlimited,
                         int attempt, CompletionPtr comp,
                         std::shared_ptr<std::function<void()>> transmit) {
  if (!attempt_fails(src_pe, dst_pe, atomic)) {
    (*transmit)();
    return;
  }
  if (!unlimited && attempt > cluster_.params().ib_retry_count) {
    // Retry envelope exhausted: the WQE is flushed and the CQ reports an
    // error after the final timeout. Software (tier 2) takes over.
    faults_->on_event(FaultEvent::kCompletionError, src_pe);
    eng_.schedule_after(retry_delay(attempt), [this, comp, src_pe] {
      comp->fire_error();
      delivered(src_pe);
    });
    return;
  }
  faults_->on_event(FaultEvent::kRetransmit, src_pe);
  eng_.schedule_after(
      retry_delay(attempt),
      [this, src_pe, dst_pe, atomic, unlimited, attempt, comp, transmit] {
        run_attempts(src_pe, dst_pe, atomic, unlimited, attempt + 1, comp,
                     transmit);
      });
}

CompletionPtr Verbs::rdma_write(sim::Process& proc, int src_pe, const void* lbuf,
                                int dst_pe, void* rbuf, std::size_t n,
                                Rail rail, SegmentOpts seg) {
  pre_post(proc, dst_pe, rbuf, n);
  reg_cache_.get_or_register(proc, src_pe, lbuf, n);
  auto comp = std::make_shared<Completion>();
  // The successful transmission, scheduled from the instant it runs. With no
  // fault plan it executes immediately below — the legacy single-shot path.
  auto transmit = [this, src_pe, lbuf, dst_pe, rbuf, n, rail, comp,
                   seg = std::move(seg)] {
    hw::PePlacement src = cluster_.placement(src_pe);
    hw::PePlacement dst = cluster_.placement(dst_pe);
    int shca = rail.src_hca >= 0 ? rail.src_hca : src.hca;
    int dhca = rail.dst_hca >= 0 ? rail.dst_hca : dst.hca;
    // Source HCA *reads* the local buffer, target side *writes* the remote
    // one.
    Path path =
        sim::combine({local_leg(src_pe, lbuf, hw::P2pDir::kRead, shca),
                      cluster_.wire(src.node, shca, dst.node, dhca),
                      local_leg(dst_pe, rbuf, hw::P2pDir::kWrite, dhca)});
    Time data_at_target = path.schedule(eng_.now(), n) + seg.jitter;
    eng_.schedule_at(data_at_target, [this, dst_pe, lbuf, rbuf, n,
                                      on_del = seg.on_delivered] {
      std::memcpy(rbuf, lbuf, n);
      if (on_del) on_del();
      delivered(dst_pe);
    });
    eng_.schedule_at(data_at_target + ack_latency(src_pe, dst_pe),
                     [this, comp, src_pe] {
                       comp->fire();
                       delivered(src_pe);  // CQ entry lands at the source
                     });
  };
  if (!fault_active()) {
    transmit();
    return comp;
  }
  run_attempts(src_pe, dst_pe, /*atomic=*/false, /*unlimited=*/false, 1, comp,
               std::make_shared<std::function<void()>>(std::move(transmit)));
  return comp;
}

CompletionPtr Verbs::rdma_read(sim::Process& proc, int src_pe, void* lbuf,
                               int dst_pe, const void* rbuf, std::size_t n,
                               Rail rail, SegmentOpts seg) {
  pre_post(proc, dst_pe, rbuf, n);
  reg_cache_.get_or_register(proc, src_pe, lbuf, n);
  auto comp = std::make_shared<Completion>();
  auto transmit = [this, src_pe, lbuf, dst_pe, rbuf, n, rail, comp,
                   seg = std::move(seg)] {
    hw::PePlacement src = cluster_.placement(src_pe);
    hw::PePlacement dst = cluster_.placement(dst_pe);
    int shca = rail.src_hca >= 0 ? rail.src_hca : src.hca;
    int dhca = rail.dst_hca >= 0 ? rail.dst_hca : dst.hca;
    // Request travels to the target, then data streams back: target side
    // reads its memory (GDR read if on GPU), initiator side writes into
    // lbuf.
    Path request = cluster_.wire(src.node, shca, dst.node, dhca);
    Path back =
        sim::combine({local_leg(dst_pe, rbuf, hw::P2pDir::kRead, dhca),
                      cluster_.wire(dst.node, dhca, src.node, shca),
                      local_leg(src_pe, lbuf, hw::P2pDir::kWrite, shca)});
    Time request_at_target = request.schedule(eng_.now(), 0);
    // Response segments ride the jittered path too: the reorder/tracking
    // buffer for a read lives at the *initiator*, where the data lands.
    Time data_local = back.schedule(request_at_target, n) + seg.jitter;
    eng_.schedule_at(data_local, [this, comp, src_pe, lbuf, rbuf, n,
                                  on_del = seg.on_delivered] {
      std::memcpy(lbuf, rbuf, n);
      if (on_del) on_del();
      delivered(src_pe);
      comp->fire();
    });
  };
  if (!fault_active()) {
    transmit();
    return comp;
  }
  run_attempts(src_pe, dst_pe, /*atomic=*/false, /*unlimited=*/false, 1, comp,
               std::make_shared<std::function<void()>>(std::move(transmit)));
  return comp;
}

CompletionPtr Verbs::post_send(sim::Process& proc, int src_pe, int dst_pe,
                               std::size_t n, std::function<void()> deliver) {
  ++ops_posted_;
  proc.delay(Duration::us(cluster_.params().ib_post_overhead_us));
  auto comp = std::make_shared<Completion>();
  auto transmit = [this, src_pe, dst_pe, n, comp,
                   deliver = std::move(deliver)] {
    hw::PePlacement src = cluster_.placement(src_pe);
    hw::PePlacement dst = cluster_.placement(dst_pe);
    // Control messages live in host memory on both sides.
    Path path =
        sim::combine({cluster_.hca_host(src.node, src.hca),
                      cluster_.wire(src.node, src.hca, dst.node, dst.hca),
                      cluster_.hca_host(dst.node, dst.hca)});
    Time at_target = path.schedule(eng_.now(), n);
    eng_.schedule_at(at_target, [deliver] { deliver(); });
    eng_.schedule_at(at_target + ack_latency(src_pe, dst_pe),
                     [this, comp, src_pe] {
                       comp->fire();
                       delivered(src_pe);
                     });
  };
  if (!fault_active()) {
    transmit();
    return comp;
  }
  // Control messages ride the reliable channel: the HCA retransmits until
  // the message gets through (capped-exponential spacing), so the protocol
  // state machines above never see a lost ctrl message — only delay.
  run_attempts(src_pe, dst_pe, /*atomic=*/false, /*unlimited=*/true, 1, comp,
               std::make_shared<std::function<void()>>(std::move(transmit)));
  return comp;
}

CompletionPtr Verbs::atomic_fadd64(sim::Process& proc, int src_pe, int dst_pe,
                                   std::uint64_t* raddr, std::uint64_t add,
                                   std::uint64_t* result) {
  pre_post(proc, dst_pe, raddr, sizeof(std::uint64_t));
  auto comp = std::make_shared<Completion>();
  auto transmit = [this, src_pe, dst_pe, raddr, add, result, comp] {
    hw::PePlacement src = cluster_.placement(src_pe);
    hw::PePlacement dst = cluster_.placement(dst_pe);
    const auto& p = cluster_.params();
    // Request to the target HCA, RMW over PCIe (read + write the word), then
    // the old value rides the ACK back.
    Path there = cluster_.wire(src.node, src.hca, dst.node, dst.hca);
    Time at_hca = there.schedule(eng_.now(), sizeof(std::uint64_t));
    Duration rmw_extra = Duration::us(p.ib_atomic_exec_us);
    Path rd, wr;
    cudart::PtrAttr a = cuda_.attributes(raddr);
    if (a.space == MemSpace::kDevice && !cluster_.p2p_available(dst.node)) {
      // P2P revoked: the HCA can no longer RMW GPU BAR memory directly. A
      // host agent bounces the word through host memory (CPU-assisted
      // atomic) — correct, but it pays two copy-engine launches.
      rd = cluster_.hca_host(dst.node, dst.hca);
      wr = cluster_.hca_host(dst.node, dst.hca);
      rmw_extra = rmw_extra + Duration::us(2 * p.cuda_copy_launch_us);
      if (faults_) faults_->on_event(FaultEvent::kGdrFallback, dst_pe);
    } else {
      rd = local_leg(dst_pe, raddr, hw::P2pDir::kRead);
      wr = local_leg(dst_pe, raddr, hw::P2pDir::kWrite);
    }
    Time done_rmw = at_hca + rmw_extra + rd.cost(sizeof(std::uint64_t)) +
                    wr.cost(sizeof(std::uint64_t));
    Path backwire = cluster_.wire(dst.node, dst.hca, src.node, src.hca);
    Time reply_local = backwire.schedule(done_rmw, sizeof(std::uint64_t));
    eng_.schedule_at(done_rmw, [this, dst_pe, raddr, add, result] {
      *result = *raddr;
      *raddr += add;
      delivered(dst_pe);
    });
    eng_.schedule_at(reply_local, [this, comp, src_pe] {
      comp->fire();
      delivered(src_pe);
    });
  };
  if (!fault_active()) {
    transmit();
    return comp;
  }
  // A failed atomic attempt models the request lost *before* the RMW
  // executed, so the hardware retransmit (and any software replay) cannot
  // double-apply it.
  run_attempts(src_pe, dst_pe, /*atomic=*/true, /*unlimited=*/false, 1, comp,
               std::make_shared<std::function<void()>>(std::move(transmit)));
  return comp;
}

CompletionPtr Verbs::atomic_cswap64(sim::Process& proc, int src_pe, int dst_pe,
                                    std::uint64_t* raddr, std::uint64_t compare,
                                    std::uint64_t swap, std::uint64_t* result) {
  pre_post(proc, dst_pe, raddr, sizeof(std::uint64_t));
  auto comp = std::make_shared<Completion>();
  auto transmit = [this, src_pe, dst_pe, raddr, compare, swap, result, comp] {
    hw::PePlacement src = cluster_.placement(src_pe);
    hw::PePlacement dst = cluster_.placement(dst_pe);
    const auto& p = cluster_.params();
    Path there = cluster_.wire(src.node, src.hca, dst.node, dst.hca);
    Time at_hca = there.schedule(eng_.now(), sizeof(std::uint64_t));
    Duration rmw_extra = Duration::us(p.ib_atomic_exec_us);
    Path rd, wr;
    cudart::PtrAttr a = cuda_.attributes(raddr);
    if (a.space == MemSpace::kDevice && !cluster_.p2p_available(dst.node)) {
      rd = cluster_.hca_host(dst.node, dst.hca);
      wr = cluster_.hca_host(dst.node, dst.hca);
      rmw_extra = rmw_extra + Duration::us(2 * p.cuda_copy_launch_us);
      if (faults_) faults_->on_event(FaultEvent::kGdrFallback, dst_pe);
    } else {
      rd = local_leg(dst_pe, raddr, hw::P2pDir::kRead);
      wr = local_leg(dst_pe, raddr, hw::P2pDir::kWrite);
    }
    Time done_rmw = at_hca + rmw_extra + rd.cost(sizeof(std::uint64_t)) +
                    wr.cost(sizeof(std::uint64_t));
    Path backwire = cluster_.wire(dst.node, dst.hca, src.node, src.hca);
    Time reply_local = backwire.schedule(done_rmw, sizeof(std::uint64_t));
    eng_.schedule_at(done_rmw, [this, dst_pe, raddr, compare, swap, result] {
      *result = *raddr;
      if (*raddr == compare) *raddr = swap;
      delivered(dst_pe);
    });
    eng_.schedule_at(reply_local, [this, comp, src_pe] {
      comp->fire();
      delivered(src_pe);
    });
  };
  if (!fault_active()) {
    transmit();
    return comp;
  }
  run_attempts(src_pe, dst_pe, /*atomic=*/true, /*unlimited=*/false, 1, comp,
               std::make_shared<std::function<void()>>(std::move(transmit)));
  return comp;
}

}  // namespace gdrshmem::ib
