// Device-initiated OpenSHMEM: the GPU-side API surface (DeviceCtx) plus the
// two engines that can carry an in-kernel operation to the network.
//
//   * GPU-IB: the device thread builds the work-queue entry in GPU memory
//     and rings the HCA doorbell over BAR1 itself (NVSHMEM/IBGDA style).
//     Cheapest critical path; needs a healthy GPUDirect P2P mapping for any
//     GPU-resident leg, falling back to reverse offload when P2P is revoked.
//   * Reverse offload: the device thread writes a command descriptor over
//     PCIe into a host ring that the node's proxy daemon polls; the proxy
//     issues the operation on the GPU's behalf. Higher per-op latency, but
//     works in every P2P regime and reuses the proxy's staged pipelines for
//     large messages.
//
// Both backends consult the same core::ProtocolSelector as the host API, so
// a device-initiated operation takes the same wire protocol a host call of
// the same shape would — the two backends (and the host path) are therefore
// bit-identical in application results per seed and differ only in modeled
// cost.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string_view>

#include "core/ctx.hpp"

namespace gdrshmem::core {

class DeviceCtx;

/// One reverse-offload command descriptor: what the GPU writes into the host
/// ring and the proxy daemon executes. Carried through the proxy mailbox as
/// CtrlMsg::state (the pointer models the descriptor's ring slot).
struct DeviceCmd {
  enum class Op { kPut, kGet, kAmoFadd, kAmoCswap };

  Op op = Op::kPut;
  RmaOp rma;  // fully resolved, like every transport-level operation
  /// Atomics: resolved remote 64-bit word and operands; the prior value is
  /// written into *amo_result before `done` fires.
  std::uint64_t* amo_word = nullptr;
  std::uint64_t amo_a = 0;  // add value / compare value
  std::uint64_t amo_b = 0;  // swap value (kAmoCswap only)
  std::shared_ptr<std::uint64_t> amo_result;
  /// Fired by the proxy's completion notification (the CQ entry the kernel
  /// polls). Fresh per attempt — a restarted proxy can never complete a
  /// command the requester has already reissued.
  std::shared_ptr<sim::Completion> done = std::make_shared<sim::Completion>();
  int requester = -1;
};

/// Engine behind DeviceCtx operations. One instance per Runtime, selected by
/// RuntimeOptions::device_backend; stateless across kernels except for the
/// reverse ring occupancy.
class DeviceBackend {
 public:
  explicit DeviceBackend(Runtime& rt) : rt_(rt) {}
  virtual ~DeviceBackend() = default;
  DeviceBackend(const DeviceBackend&) = delete;
  DeviceBackend& operator=(const DeviceBackend&) = delete;

  virtual std::string_view name() const = 0;
  virtual DeviceBackendKind backend_kind() const = 0;

  /// Carry one put (`is_get` false) or get (`is_get` true). Accounting
  /// (stats, op kind, latency) is done by DeviceCtx; this runs the protocol.
  virtual void rma(DeviceCtx& dctx, const RmaOp& op, bool is_get) = 0;

  /// 64-bit hardware atomics issued from the kernel.
  virtual std::int64_t amo_fetch_add(DeviceCtx& dctx, std::int64_t* sym,
                                     std::int64_t value, int pe) = 0;
  virtual std::int64_t amo_compare_swap(DeviceCtx& dctx, std::int64_t* sym,
                                        std::int64_t cond, std::int64_t value,
                                        int pe) = 0;

  /// In-kernel quiet: drain everything this PE has in flight (device ring
  /// and host-visible pending set), charging the device-side poll cost.
  virtual void quiet(DeviceCtx& dctx) = 0;

 protected:
  /// Submit `cmd` to the local node's proxy and honor its blocking flag.
  /// Shared by the reverse backend (every op) and the GPU-IB backend (its
  /// P2P-revoked / oversized-message fallback). Applies the bounded ring
  /// (options().device_queue_depth) and, under a fault plan, per-attempt
  /// deadlines with fresh-state reissue like the host proxy protocols.
  void offload(DeviceCtx& dctx, std::shared_ptr<DeviceCmd> cmd);

  /// The descriptor write itself (PCIe MMIO into the host ring).
  void post_cmd(DeviceCtx& dctx, const std::shared_ptr<DeviceCmd>& cmd);

  /// Shared quiet: charge the device-side completion poll, drain the host
  /// pending set, reap finished ring slots.
  void quiet_common(DeviceCtx& dctx);

  Runtime& rt_;
  /// Outstanding reverse commands per PE (the ring occupancy model).
  std::map<int, std::deque<std::shared_ptr<sim::Completion>>> inflight_;
};

std::unique_ptr<DeviceBackend> make_device_backend(Runtime& rt,
                                                   DeviceBackendKind kind);

/// The GPU-side OpenSHMEM context: what a resident kernel programs against.
/// Mirrors the host Ctx RMA/atomic/sync surface; every operation charges
/// device-side issue costs (WQE build + doorbell, or descriptor write)
/// instead of the host software overhead, and runs without terminating the
/// kernel. Created by Ctx::launch_kernel_device; one per kernel invocation.
class DeviceCtx {
 public:
  DeviceCtx(Ctx& ctx, cudart::KernelContext& kernel, DeviceScope scope)
      : ctx_(ctx),
        kernel_(kernel),
        scope_(scope),
        backend_(ctx.runtime().device_backend()) {}
  DeviceCtx(const DeviceCtx&) = delete;
  DeviceCtx& operator=(const DeviceCtx&) = delete;

  // ---- identity -----------------------------------------------------------
  int my_pe() const { return ctx_.my_pe(); }
  int n_pes() const { return ctx_.n_pes(); }
  DeviceScope scope() const { return scope_; }
  Ctx& host_ctx() { return ctx_; }
  cudart::KernelContext& kernel() { return kernel_; }

  // ---- RMA ----------------------------------------------------------------
  void putmem(void* dst_sym, const void* src, std::size_t n, int pe);
  void getmem(void* dst, const void* src_sym, std::size_t n, int pe);
  void putmem_nbi(void* dst_sym, const void* src, std::size_t n, int pe);
  void getmem_nbi(void* dst, const void* src_sym, std::size_t n, int pe);

  template <typename T>
  void put(T* dst_sym, const T* src, std::size_t nelems, int pe) {
    putmem(dst_sym, src, nelems * sizeof(T), pe);
  }
  template <typename T>
  void get(T* dst, const T* src_sym, std::size_t nelems, int pe) {
    getmem(dst, src_sym, nelems * sizeof(T), pe);
  }
  template <typename T>
  void p(T* dst_sym, T value, int pe) {
    putmem(dst_sym, &value, sizeof(T), pe);
  }
  template <typename T>
  T g(const T* src_sym, int pe) {
    T v{};
    getmem(&v, src_sym, sizeof(T), pe);
    return v;
  }

  /// In-kernel put-with-signal: the signal word is issued only after the
  /// payload is remotely complete, so it can never overtake the data.
  void put_signal(void* dst_sym, const void* src, std::size_t n,
                  std::uint64_t* sig_sym, std::uint64_t signal, int pe) {
    putmem(dst_sym, src, n, pe);
    quiet();
    putmem(sig_sym, &signal, sizeof(signal), pe);
  }

  // ---- ordering / synchronization ----------------------------------------
  void quiet() { backend_.quiet(*this); }
  void fence() { quiet(); }
  template <typename T>
  void wait_until(const T* sym_addr, Cmp op, T value) {
    // The kernel spins on delivered memory; progress runs on this PE's
    // simulated process exactly as for a host-side wait.
    ctx_.wait_until(sym_addr, op, value);
  }
  void signal_wait_until(const std::uint64_t* sig_sym, Cmp op, std::uint64_t v) {
    wait_until(sig_sym, op, v);
  }

  // ---- atomics ------------------------------------------------------------
  std::int64_t atomic_fetch_add(std::int64_t* sym, std::int64_t value, int pe);
  void atomic_add(std::int64_t* sym, std::int64_t value, int pe) {
    (void)atomic_fetch_add(sym, value, pe);
  }
  std::int64_t atomic_compare_swap(std::int64_t* sym, std::int64_t cond,
                                   std::int64_t value, int pe);

  // ---- shmem_ptr load/store -----------------------------------------------
  /// Direct pointer to `pe`'s copy of a symmetric object, when the GPU can
  /// load/store it: the peer's host heap on the same node (classic
  /// shmem_ptr), or the peer's GPU heap on the same node while P2P is
  /// healthy (IPC mapping, opened once). nullptr otherwise.
  void* ptr(const void* sym, int pe);
  /// Register-grade store/load through a ptr()-mapped location; the access
  /// cost is part of the kernel's compute model.
  template <typename T>
  void ptr_store(T* mapped, T value, int owner_pe) {
    std::memcpy(mapped, &value, sizeof(T));
    ctx_.runtime().notify_pe(owner_pe);
  }
  template <typename T>
  T ptr_load(const T* mapped) {
    T v{};
    std::memcpy(&v, mapped, sizeof(T));
    return v;
  }

  // ---- device compute -----------------------------------------------------
  void compute(std::size_t cells) { kernel_.compute(cells); }

 private:
  friend class DeviceBackend;

  /// Shared entry: accounting bracket around backend_.rma.
  void rma_entry(void* remote_sym, void* local, std::size_t n, int pe,
                 bool is_get, bool blocking);

  Ctx& ctx_;
  cudart::KernelContext& kernel_;
  DeviceScope scope_;
  DeviceBackend& backend_;
};

}  // namespace gdrshmem::core
