// The team-aware collectives engine: algorithm selection by message size x
// team span x buffer domain, and the sync-pool layout every algorithm's
// flags and workspace live in.
//
// Synchronization protocol (shared by every algorithm):
//   * The pool is the first symmetric allocation of every host heap:
//     kMaxTeams fixed-size blocks, one per team slot. A block holds
//     dissemination-barrier flags, per-writer data flags, per-writer
//     ack/ready flags, a small control-plane reserve (team splits), and a
//     staging workspace.
//   * Flag values are (generation << 32) | sequence. The generation is the
//     team's collective counter — it advances identically on every member —
//     and the sequence numbers steps/chunks within one collective. Values
//     are strictly monotone per (writer, slot), so Cmp::kGe waits can never
//     be released by a stale write and slots never need resetting.
//   * Data always travels via Ctx::put_sync (remote ACK) strictly before
//     the flag announcing it; workspace and forwarded-buffer reuse is
//     rendezvous-gated with ready flags so a PE that raced ahead into the
//     next collective cannot overwrite state a slower member still reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/team.hpp"
#include "core/tuning.hpp"
#include "core/types.hpp"

namespace gdrshmem::core {
class Ctx;
}

namespace gdrshmem::core::coll {

/// Parse an algorithm name ("ring", "recdbl", ...). Throws
/// std::invalid_argument on unknown names (options.cpp re-surfaces it).
CollAlgo algo_from_string(const std::string& s);

/// Whether `algo` is implemented for `kind` (kAuto counts as supported).
bool algo_supported(CollKind kind, CollAlgo algo);

// ---------------------------------------------------------------------------
// Sync-pool layout. Deterministic function of (np, tuning, heap size), so
// every PE computes the same geometry without communication.

struct SyncLayout {
  static constexpr int kMaxTeams = 16;
  static constexpr int kBarrierRounds = 32;  // supports up to 2^32 PEs
  static constexpr std::size_t kMinWorkspace = 256;

  int np = 0;
  std::size_t workspace_bytes = 0;

  /// Workspace defaults to 2 * tuning.coll_chunk per block, shrunk (never
  /// below kMinWorkspace) so the whole pool fits in a quarter of the host
  /// heap. Throws when even the flag arrays do not fit.
  static SyncLayout make(int np, const Tuning& t, std::size_t host_heap_bytes);

  std::size_t flags_bytes() const;
  std::size_t block_bytes() const;
  std::size_t pool_bytes() const {
    return block_bytes() * static_cast<std::size_t>(kMaxTeams);
  }

  // Accessors into one PE's copy of the pool (`pool` = its host heap base).
  std::uint64_t* barrier_flags(std::byte* pool, int slot) const;
  /// Per-writer data-arrival flags, indexed by the writer's team index.
  std::uint64_t* data_flags(std::byte* pool, int slot) const;
  /// Per-writer ready/ack flags (rendezvous gating), same indexing.
  std::uint64_t* ack_flags(std::byte* pool, int slot) const;
  /// np 64-bit words of control-plane scratch (team-split slot agreement).
  std::uint64_t* reserve(std::byte* pool, int slot) const;
  std::byte* workspace(std::byte* pool, int slot) const;
};

// ---------------------------------------------------------------------------
// Selection. Pure function, exposed so benches/tests can name the algorithm
// a configuration will run. Honors tuning.coll_force and throws ShmemError
// when a forced algorithm cannot work at this (size, team, workspace).

CollAlgo select(const Tuning& t, const SyncLayout& lay, CollKind kind, int np,
                std::size_t nbytes, bool gpu_domain);

// ---------------------------------------------------------------------------
// Engine entry points. Collective over `team`'s members; `dst`/`src` are
// symmetric. Each records coll_bytes/coll_latency_ns histograms (keyed
// kind x algo) and, when tracing, a collective trace slice.

/// Team sync (no implicit quiet — Ctx::barrier_all adds it).
void sync(Ctx& ctx, Team& team);
/// Broadcast `nbytes` from team-relative `root`'s src into every other
/// member's dst (root's dst untouched, per OpenSHMEM).
void broadcast(Ctx& ctx, Team& team, void* dst, const void* src,
               std::size_t nbytes, int root);
/// Allreduce over `nelems` elements (dst may alias src). No size cap: the
/// ring algorithm streams through the fixed workspace.
void allreduce(Ctx& ctx, Team& team, void* dst, const void* src,
               std::size_t nelems, ReduceOp op, ScalarType type);
/// Concatenate every member's nbytes block into each member's dst.
void fcollect(Ctx& ctx, Team& team, void* dst, const void* src,
              std::size_t nbytes);
/// Personalized exchange: block j of member i's src lands at block i of
/// member j's dst.
void alltoall(Ctx& ctx, Team& team, void* dst, const void* src,
              std::size_t nbytes);

}  // namespace gdrshmem::core::coll
