// The GDR-aware OpenSHMEM runtime: owns the simulated cluster, the CUDA and
// verbs layers, per-PE symmetric heaps (host + GPU domains), the selected
// transport, and the per-node proxy daemons. `run()` launches one simulated
// process per PE and executes the SPMD program to completion in virtual
// time.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/heap.hpp"
#include "core/metrics.hpp"
#include "core/transport.hpp"
#include "core/trace.hpp"
#include "core/tuning.hpp"
#include "core/types.hpp"
#include "cudart/cudart.hpp"
#include "hw/topology.hpp"
#include "ib/transport.hpp"
#include "ib/verbs.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace gdrshmem::core {

class Ctx;
class ProxyDaemon;
class ProtocolSelector;
class DeviceBackend;

struct RuntimeOptions {
  std::size_t host_heap_bytes = 16u << 20;
  std::size_t gpu_heap_bytes = 16u << 20;
  /// Persistent (pmem) symmetric heap per PE (GDRSHMEM_PMEM_HEAP; 0 — the
  /// default — means no pmem heap, so shmalloc(Domain::kPmem) throws).
  /// Host-like on the wire; backs the checkpoint service's durable store.
  std::size_t pmem_heap_bytes = 0;
  TransportKind transport = TransportKind::kEnhancedGdr;
  Tuning tuning;
  /// Execution backend for the simulation engine (fibers by default;
  /// overridable per-process via GDRSHMEM_SIM_BACKEND). Both backends are
  /// bit-identical in virtual time; threads is the slow fallback.
  sim::BackendKind sim_backend = sim::backend_from_env();
  /// Pending-event queue for the engine (timing wheel by default;
  /// overridable via GDRSHMEM_SIM_QUEUE). Both kinds pop the same strict
  /// (time, seq) order, so they are bit-identical; heap is kept for A/B
  /// benchmarking and differential testing.
  sim::QueueKind sim_queue = sim::queue_from_env();
  /// Coalesce notification fan-out into one queue event per cohort
  /// (GDRSHMEM_SIM_BATCH; on by default). Trace-order identical either way.
  bool sim_batch = sim::batch_from_env();
  /// The alternative Section III-C rejects in favor of the proxy: a service
  /// thread per PE progresses incoming transfers asynchronously — restoring
  /// overlap for the baseline, but stealing CPU from the application
  /// (Ctx::compute is slowed by service_thread_compute_penalty).
  bool service_thread = false;
  double service_thread_compute_penalty = 1.0;
  /// Seeded fault-injection schedule (empty by default — an empty plan
  /// guarantees the fault-free code paths run verbatim, event for event).
  /// Configurable via GDRSHMEM_FAULTS; see sim::FaultPlan::parse.
  sim::FaultPlan faults;
  /// Operation tracer: enabled via GDRSHMEM_TRACE, ring capacity (events)
  /// via GDRSHMEM_TRACE_CAP. Tracing is bookkeeping-only, so enabling it
  /// never changes virtual time or event order.
  bool trace = trace_from_env();
  std::size_t trace_cap = trace_cap_from_env();
  /// Engine behind device-initiated (in-kernel) operations
  /// (GDRSHMEM_DEVICE_BACKEND=gpu-ib|reverse; gpu-ib by default). Both are
  /// bit-identical in application results per seed; they differ only in
  /// modeled cost, so CI A/Bs the whole suite under each value.
  DeviceBackendKind device_backend = device_backend_from_env();
  /// Outstanding command descriptors the reverse-offload ring holds per PE
  /// before the kernel blocks on a free slot (GDRSHMEM_DEVICE_QUEUE_DEPTH).
  std::size_t device_queue_depth = 64;
  /// Queue-pair transport behind the ib::Transport endpoint API
  /// (GDRSHMEM_IB_TRANSPORT=rc|ud|dc|srd; rc by default). All four land
  /// identical application bytes per seed; they differ in modeled cost and
  /// per-QP memory, so CI A/Bs suites across values.
  ib::QpKind ib_transport = ib::qp_kind_from_env();
  /// HCA rails large messages stripe across (GDRSHMEM_IB_RAILS=1|2; 1 by
  /// default — the bit-identical legacy schedule).
  int ib_rails = ib::rails_from_env();
  /// Model an RC shared receive queue instead of per-QP recv rings
  /// (GDRSHMEM_IB_SRQ; footprint-only — never changes timing). UD, DC and
  /// SRD always use the SRQ.
  bool ib_srq = false;
  /// Seed for srd's deterministic per-segment delivery jitter
  /// (GDRSHMEM_IB_SRD_SEED; the reordering pattern is bit-identical per
  /// seed). Ignored by the ordered transports.
  std::uint64_t ib_srd_seed = 1;
  /// srd jitter window override in microseconds (GDRSHMEM_IB_SRD_JITTER_US;
  /// 0 disables jitter for A/B isolation). Negative keeps
  /// hw::SystemParams::srd_jitter_window_us.
  double ib_srd_jitter_us = -1.0;

  /// Build options from the environment: parses and validates every
  /// GDRSHMEM_* variable (backend, heap sizes, transport, tuning
  /// thresholds, fault plan) in one place. Unknown GDRSHMEM_* keys and
  /// out-of-range values throw ShmemError naming the variable.
  static RuntimeOptions from_env();
};

/// Operation accounting, mostly consumed by tests and the benchmark tables.
struct OpStats {
  std::array<std::uint64_t, static_cast<std::size_t>(Protocol::kCount_)>
      ops_by_protocol{};
  std::array<std::uint64_t, static_cast<std::size_t>(Protocol::kCount_)>
      bytes_by_protocol{};
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t atomics = 0;
  std::uint64_t barriers = 0;

  Protocol last_protocol = Protocol::kCount_;

  void count(Protocol p, std::size_t bytes) {
    ops_by_protocol[static_cast<std::size_t>(p)] += 1;
    bytes_by_protocol[static_cast<std::size_t>(p)] += bytes;
    last_protocol = p;
  }
  std::uint64_t ops(Protocol p) const {
    return ops_by_protocol[static_cast<std::size_t>(p)];
  }
};

class Runtime {
 public:
  explicit Runtime(const hw::ClusterConfig& cluster_cfg,
                   const RuntimeOptions& opts = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Launch the SPMD `program` on every PE and run the simulation to
  /// completion. Single-shot: a Runtime instance runs one job.
  void run(std::function<void(Ctx&)> program);

  // ---- accessors ----------------------------------------------------------
  sim::Engine& engine() { return engine_; }
  hw::Cluster& cluster() { return cluster_; }
  cudart::CudaRuntime& cuda() { return cuda_; }
  /// The low-level verbs engine (registration cache, op diagnostics).
  /// Protocol code posts operations through ib() / endpoint(), not here.
  ib::Verbs& verbs() { return verbs_; }
  /// The selected queue-pair transport (rc | ud | dc) behind the endpoint
  /// API; every RDMA/send/atomic the runtime issues routes through it.
  ib::Transport& ib() { return *ib_; }
  /// Per-endpoint handle binding the source id (PEs and service endpoints).
  ib::Endpoint& endpoint(int id) { return ib_->endpoint(id); }
  const RuntimeOptions& options() const { return opts_; }
  const Tuning& tuning() const { return opts_.tuning; }
  Transport& transport() { return *transport_; }
  OpStats& stats() { return stats_; }
  Tracer& tracer() { return tracer_; }
  Metrics& metrics() { return metrics_; }
  /// Mirror pull-style diagnostics (registration cache, verbs, proxies,
  /// heaps, tracer drops) into the metrics registry. Called by the report
  /// formatters; cheap and idempotent.
  void snapshot_metrics();
  int num_pes() const { return cluster_.num_pes(); }
  Ctx& ctx(int pe) { return *ctxs_.at(static_cast<std::size_t>(pe)); }
  sim::FaultInjector& faults() { return injector_; }
  bool faults_enabled() const { return injector_.enabled(); }
  /// GPUDirect P2P usable for `pe`'s GPU (false after a planned revocation).
  bool gdr_available(int pe) {
    return cluster_.p2p_available(cluster_.placement(pe).node);
  }
  ProxyDaemon& proxy(int node) { return *proxies_.at(static_cast<std::size_t>(node)); }
  bool proxies_enabled() const { return !proxies_.empty(); }
  /// The single source of protocol decisions (GDR vs IPC vs staged vs
  /// proxy), shared by the host transport, the device backends, and the
  /// proxy's device-command service.
  ProtocolSelector& selector() { return *selector_; }
  /// Engine behind in-kernel operations (per options().device_backend).
  DeviceBackend& device_backend() { return *device_backend_; }

  SymmetricHeap& heap(int pe, Domain d) {
    auto& hs = heaps_.at(static_cast<std::size_t>(pe));
    switch (d) {
      case Domain::kGpu: return hs.gpu;
      case Domain::kPmem: return hs.pmem;
      case Domain::kHost: break;
    }
    return hs.host;
  }

  /// Translate a symmetric address owned by `owner_pe` into `target_pe`'s
  /// copy; `n` bytes must fit inside one heap. Returns the domain through
  /// `domain_out`.
  void* translate(const void* sym, int owner_pe, int target_pe, std::size_t n,
                  Domain* domain_out);

  /// True when `pe`'s HCA and GPU sit on different sockets — the severe
  /// Table III P2P regime.
  bool gdr_inter_socket(int pe) const;

  /// Remote eager slot reserved for (src -> dst) baseline traffic.
  void* eager_slot(int dst_pe, int src_pe);
  std::size_t eager_slot_bytes() const;

  /// IPC-map `owner_pe`'s GPU heap from `opener`'s context (one-time cost).
  std::byte* map_peer_gpu_heap(sim::Process& proc, int opener_pe, int owner_pe);

  /// Wake `pe`'s progress engine (data/ctrl/ack landed for it).
  void notify_pe(int pe);

  /// Collective-allocation consistency check (shmalloc is collective): every
  /// PE must request the same (size, domain) for allocation number `seq`.
  void check_symmetric_alloc(std::uint64_t seq, std::size_t bytes, Domain d);

 private:
  struct PeHeaps {
    SymmetricHeap host;
    SymmetricHeap gpu;
    SymmetricHeap pmem;
  };
  struct AllocRecord {
    std::size_t bytes;
    Domain domain;
  };

  RuntimeOptions opts_;
  sim::Engine engine_;
  hw::Cluster cluster_;
  cudart::CudaRuntime cuda_;
  ib::Verbs verbs_;
  std::unique_ptr<ib::Transport> ib_;
  sim::FaultInjector injector_;
  OpStats stats_;
  Tracer tracer_;
  Metrics metrics_;

  std::vector<std::unique_ptr<std::byte[]>> host_heap_storage_;
  std::vector<std::unique_ptr<std::byte[]>> pmem_heap_storage_;
  std::vector<PeHeaps> heaps_;
  std::vector<std::unique_ptr<std::byte[]>> eager_storage_;
  std::vector<std::unique_ptr<Ctx>> ctxs_;
  std::vector<std::unique_ptr<ProxyDaemon>> proxies_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<ProtocolSelector> selector_;
  std::unique_ptr<DeviceBackend> device_backend_;
  std::vector<AllocRecord> alloc_log_;
  bool ran_ = false;
};

}  // namespace gdrshmem::core
