// Symmetric heap management: every PE owns one heap per domain (host and
// GPU), laid out identically across PEs so that a local symmetric address
// translates to any peer's copy by offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace gdrshmem::core {

/// One PE's heap in one domain. Allocation is a deterministic bump pointer:
/// as long as all PEs issue identical shmalloc sequences (shmalloc is
/// collective), offsets — and therefore symmetric addresses — line up.
/// shfree supports LIFO (stack) discipline; non-LIFO frees are deferred
/// until the whole region above them is freed.
class SymmetricHeap {
 public:
  SymmetricHeap(Domain domain, std::byte* base, std::size_t size)
      : domain_(domain), base_(base), size_(size) {}

  Domain domain() const { return domain_; }
  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  std::size_t used() const { return top_; }

  bool contains(const void* p) const {
    auto u = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(base_);
    return u >= b && u < b + size_;
  }

  std::size_t offset_of(const void* p) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(p) - base_);
  }

  /// Bump-allocate `bytes` aligned to `align`. Throws ShmemError when the
  /// heap is exhausted (the GPU heap size is a runtime parameter, III-A).
  void* allocate(std::size_t bytes, std::size_t align = 64) {
    if (bytes == 0) throw ShmemError("shmalloc of zero bytes");
    std::size_t aligned = (top_ + align - 1) / align * align;
    if (aligned > size_ || bytes > size_ - aligned) {
      throw ShmemError(
          "symmetric heap exhausted (" + std::string(to_string(domain_)) +
          " domain): requested " + std::to_string(bytes) + " bytes (align " +
          std::to_string(align) + "), " + std::to_string(size_ - top_) +
          " of " + std::to_string(size_) +
          " bytes free — increase the heap size runtime parameter");
    }
    void* p = base_ + aligned;
    live_.push_back({aligned, bytes, /*freed=*/false});
    top_ = aligned + bytes;
    return p;
  }

  /// Free a block previously returned by allocate(). Space is reclaimed
  /// only when the freed block is the most recent live one (LIFO); earlier
  /// frees are recorded and reclaimed once everything above them is freed.
  void deallocate(void* p) {
    std::size_t off = offset_of(p);
    for (auto it = live_.rbegin(); it != live_.rend(); ++it) {
      if (it->offset == off && !it->freed) {
        it->freed = true;
        while (!live_.empty() && live_.back().freed) {
          top_ = live_.back().offset;
          live_.pop_back();
        }
        return;
      }
    }
    throw ShmemError("shfree of a pointer not allocated from this heap");
  }

  std::size_t live_allocations() const {
    std::size_t n = 0;
    for (const auto& b : live_) n += b.freed ? 0 : 1;
    return n;
  }

 private:
  struct Block {
    std::size_t offset;
    std::size_t bytes;
    bool freed;
  };

  Domain domain_;
  std::byte* base_;
  std::size_t size_;
  std::size_t top_ = 0;
  std::vector<Block> live_;
};

}  // namespace gdrshmem::core
