// OpenSHMEM atomics (Section III-D): 64-bit operations map directly onto IB
// hardware atomics — including on GPU symmetric memory via GDR. Sub-64-bit
// operations use the paper's mask technique: a retry loop of hardware
// compare-and-swap on the containing aligned 64-bit word.
#include "core/ctx.hpp"

namespace gdrshmem::core {

using sim::Duration;

namespace {

/// Resolve a symmetric 64-bit word for hardware atomics.
std::uint64_t* resolve_word(Runtime& rt, int owner_pe, int target_pe,
                            const void* sym) {
  Domain dom;
  void* remote = rt.translate(sym, owner_pe, target_pe, sizeof(std::uint64_t), &dom);
  if (reinterpret_cast<std::uintptr_t>(remote) % 8 != 0) {
    throw ShmemError("atomic target must be 8-byte aligned");
  }
  return static_cast<std::uint64_t*>(remote);
}

/// Post a hardware atomic and wait for it. Under a fault plan an error
/// completion means the request was lost *before* the RMW executed, so
/// re-posting the identical descriptor is exact (never double-applies).
void await_atomic(Ctx& ctx, const std::function<sim::CompletionPtr()>& post) {
  auto comp = post();
  if (!ctx.runtime().faults_enabled()) {
    comp->wait(ctx.proc());
    return;
  }
  ctx.await_reliable(ctx.proc(), std::move(comp), post);
}

}  // namespace

std::int64_t Ctx::atomic_fetch_add(std::int64_t* sym, std::int64_t value, int pe) {
  rt_->stats().atomics++;
  op_kind_ = TraceEvent::Kind::kAtomic;
  sim::Time t0 = now();
  count_protocol(Protocol::kAtomicHw, 8);
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  std::uint64_t* word = resolve_word(*rt_, pe_, pe, sym);
  std::uint64_t old = 0;
  await_atomic(*this, [&] {
    return rt_->endpoint(pe_).atomic_fadd64(
        proc(), pe, word, static_cast<std::uint64_t>(value), &old);
  });
  finish_op(TraceEvent::Kind::kAtomic, pe, 8, t0);
  return static_cast<std::int64_t>(old);
}

void Ctx::atomic_add(std::int64_t* sym, std::int64_t value, int pe) {
  (void)atomic_fetch_add(sym, value, pe);
}

std::int64_t Ctx::atomic_compare_swap(std::int64_t* sym, std::int64_t cond,
                                      std::int64_t value, int pe) {
  rt_->stats().atomics++;
  op_kind_ = TraceEvent::Kind::kAtomic;
  sim::Time t0 = now();
  count_protocol(Protocol::kAtomicHw, 8);
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  std::uint64_t* word = resolve_word(*rt_, pe_, pe, sym);
  std::uint64_t old = 0;
  await_atomic(*this, [&] {
    return rt_->endpoint(pe_).atomic_cswap64(
        proc(), pe, word, static_cast<std::uint64_t>(cond),
        static_cast<std::uint64_t>(value), &old);
  });
  finish_op(TraceEvent::Kind::kAtomic, pe, 8, t0);
  return static_cast<std::int64_t>(old);
}

std::int64_t Ctx::atomic_swap(std::int64_t* sym, std::int64_t value, int pe) {
  // IB has no unconditional swap: emulate with a CAS retry loop.
  std::int64_t expected = atomic_fetch(sym, pe);
  while (true) {
    std::int64_t old = atomic_compare_swap(sym, expected, value, pe);
    if (old == expected) return old;
    expected = old;
  }
}

std::int64_t Ctx::atomic_fetch(const std::int64_t* sym, int pe) {
  return atomic_fetch_add(const_cast<std::int64_t*>(sym), 0, pe);
}

namespace {

struct Lane32 {
  std::uint64_t* word;  // containing aligned 64-bit word (remote)
  unsigned shift;       // bit offset of the 32-bit lane (little-endian)
};

Lane32 resolve_lane32(Runtime& rt, int owner_pe, int target_pe, const void* sym) {
  Domain dom;
  void* remote = rt.translate(sym, owner_pe, target_pe, sizeof(std::uint32_t), &dom);
  auto addr = reinterpret_cast<std::uintptr_t>(remote);
  if (addr % 4 != 0) throw ShmemError("32-bit atomic target must be 4-byte aligned");
  auto word_addr = addr & ~std::uintptr_t{7};
  return Lane32{reinterpret_cast<std::uint64_t*>(word_addr),
                static_cast<unsigned>((addr & 4) ? 32 : 0)};
}

}  // namespace

std::int32_t Ctx::atomic_fetch_add32(std::int32_t* sym, std::int32_t value, int pe) {
  rt_->stats().atomics++;
  op_kind_ = TraceEvent::Kind::kAtomic;
  sim::Time t0 = now();
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  Lane32 lane = resolve_lane32(*rt_, pe_, pe, sym);
  const std::uint64_t mask = std::uint64_t{0xffffffffu} << lane.shift;
  while (true) {
    // Fetch the current word (fadd 0), splice the updated lane, CAS it in.
    std::uint64_t cur = 0;
    count_protocol(Protocol::kAtomicHw, 8);
    await_atomic(*this, [&] {
      return rt_->endpoint(pe_).atomic_fadd64(proc(), pe, lane.word, 0, &cur);
    });
    auto lane_val = static_cast<std::uint32_t>((cur & mask) >> lane.shift);
    auto updated = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(lane_val) + value);
    std::uint64_t desired =
        (cur & ~mask) | (static_cast<std::uint64_t>(updated) << lane.shift);
    std::uint64_t old = 0;
    count_protocol(Protocol::kAtomicHw, 8);
    await_atomic(*this, [&] {
      return rt_->endpoint(pe_).atomic_cswap64(proc(), pe, lane.word, cur,
                                               desired, &old);
    });
    if (old == cur) {
      // One user-level op, however many hardware attempts the race cost.
      finish_op(TraceEvent::Kind::kAtomic, pe, 4, t0);
      return static_cast<std::int32_t>(lane_val);
    }
    // Another PE raced us (possibly on the sibling lane): retry.
  }
}

std::int32_t Ctx::atomic_compare_swap32(std::int32_t* sym, std::int32_t cond,
                                        std::int32_t value, int pe) {
  rt_->stats().atomics++;
  op_kind_ = TraceEvent::Kind::kAtomic;
  sim::Time t0 = now();
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  Lane32 lane = resolve_lane32(*rt_, pe_, pe, sym);
  const std::uint64_t mask = std::uint64_t{0xffffffffu} << lane.shift;
  while (true) {
    std::uint64_t cur = 0;
    count_protocol(Protocol::kAtomicHw, 8);
    await_atomic(*this, [&] {
      return rt_->endpoint(pe_).atomic_fadd64(proc(), pe, lane.word, 0, &cur);
    });
    auto lane_val = static_cast<std::uint32_t>((cur & mask) >> lane.shift);
    if (static_cast<std::int32_t>(lane_val) != cond) {
      finish_op(TraceEvent::Kind::kAtomic, pe, 4, t0);
      return static_cast<std::int32_t>(lane_val);  // compare failed: no swap
    }
    std::uint64_t desired =
        (cur & ~mask) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(value)) << lane.shift);
    std::uint64_t old = 0;
    count_protocol(Protocol::kAtomicHw, 8);
    await_atomic(*this, [&] {
      return rt_->endpoint(pe_).atomic_cswap64(proc(), pe, lane.word, cur,
                                               desired, &old);
    });
    if (old == cur) {
      finish_op(TraceEvent::Kind::kAtomic, pe, 4, t0);
      return static_cast<std::int32_t>(lane_val);
    }
  }
}

}  // namespace gdrshmem::core
