// The single source of protocol decisions: which executable path an RMA
// operation takes, given size, buffer domains, socket placement, and P2P
// health. Extracted from the branches that used to live inside
// EnhancedGdrTransport so the host transport, the device-initiated backends
// and the proxy's device-command service all consult the same policy (and so
// ROADMAP item 5's adaptive tuner has one place to hook).
//
// Selection is pure: no virtual time is charged and no state is mutated, so
// moving a decision between call sites never perturbs the simulation.
#pragma once

#include <cstddef>

#include "core/transport.hpp"

namespace gdrshmem::core {

class Runtime;

/// Executable path for one RMA operation. The first four are intra-node
/// (Figs 2-3), the rest inter-node (Figs 4-5). kStagedProxyPut is the
/// pipeline-GDR-write divert: bounce the whole message to host locally,
/// then run the proxy-put protocol from the bounce buffer.
enum class PathChoice {
  kHostShm,
  kLoopbackGdr,
  kIpcCopy,
  kShmemPtrCopy,
  kDirectRdma,
  kDirectGdr,
  kPipelineGdrWrite,
  kHostStagedGet,
  kProxyPut,
  kStagedProxyPut,
  kProxyGet,
};

const char* to_string(PathChoice c);

class ProtocolSelector {
 public:
  explicit ProtocolSelector(Runtime& rt) : rt_(rt) {}

  /// Path for a put issued by `issuer`. Throws ShmemError when no path can
  /// reach the target (device destination, P2P revoked, proxy disabled).
  PathChoice select_put(const RmaOp& op, int issuer) const;

  /// Path for a get issued by `issuer`; same throwing contract.
  PathChoice select_get(const RmaOp& op, int issuer) const;

  /// Largest message Direct/loopback GDR should carry for this op, given
  /// which legs touch a GPU and the socket placement of each side. Legs on
  /// a node whose P2P capability was revoked get a limit of 0, steering
  /// every size onto the GDR-free protocols.
  std::size_t gdr_limit(const RmaOp& op, bool is_get, bool intra_node,
                        int issuer) const;

  /// For the host-side progress engine serving a device-offloaded op: true
  /// when the op is too large for a single direct posting and must be
  /// chunked through the proxy's staging buffer.
  bool offload_staged(const RmaOp& op, bool is_get, int issuer) const;

 private:
  bool proxy_usable() const;

  Runtime& rt_;
};

}  // namespace gdrshmem::core
