// Compatibility shim: the public C API moved to the installed, versioned
// header <gdrshmem/shmem.h> (with the device-initiated surface in
// <gdrshmem/shmem_device.h>). Existing in-tree includes keep working;
// prefer the installed headers in new code.
#pragma once

#include "gdrshmem/shmem.h"
