// Deprecated compatibility shim: the public C API lives in the installed,
// versioned header <gdrshmem/shmem.h> (device-initiated surface in
// <gdrshmem/shmem_device.h>). This forward will be removed; update includes.
// Define GDRSHMEM_NO_DEPRECATE to silence the warning during migration.
#pragma once

#if !defined(GDRSHMEM_NO_DEPRECATE)
#warning \
    "core/shmem_api.hpp is deprecated: include <gdrshmem/shmem.h> instead"
#endif

#include "gdrshmem/shmem.h"
