// Common public types of the GDR-aware OpenSHMEM runtime.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace gdrshmem::core {

class ShmemError : public std::runtime_error {
 public:
  explicit ShmemError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a transport does not implement a configuration (e.g. the
/// host-based pipeline baseline has no inter-node H-D/D-H path).
class UnsupportedError : public ShmemError {
 public:
  explicit UnsupportedError(const std::string& what) : ShmemError(what) {}
};

/// Symmetric-heap domain, the paper's extension to shmalloc: where the
/// allocation lives (host DRAM or GPU device memory).
enum class Domain { kHost, kGpu };

/// Which runtime design services communication.
enum class TransportKind {
  kNaive,         // host-only; device buffers are the user's problem
  kHostPipeline,  // CUDA-aware baseline of [15]: host staging + target copy
  kEnhancedGdr,   // this paper: GDR/IPC hybrids, pipeline-GDR-write, proxy
};

inline const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kNaive: return "naive";
    case TransportKind::kHostPipeline: return "host-pipeline";
    case TransportKind::kEnhancedGdr: return "enhanced-gdr";
  }
  return "?";
}

inline const char* to_string(Domain d) {
  return d == Domain::kHost ? "host" : "gpu";
}

/// Protocols a transport can select; used for accounting and tests.
enum class Protocol {
  kHostShm,        // shared-memory copy between host heaps, same node
  kLoopbackGdr,    // intra-node RDMA loopback with a GDR leg
  kIpcCopy,        // CUDA IPC cudaMemcpy (direct, one copy)
  kIpcStaged,      // CUDA IPC copy via a host staging bounce (two copies)
  kShmemPtrCopy,   // cudaMemcpy straight into the peer's host heap (Fig 3)
  kDirectGdr,      // inter-node RDMA with GDR leg(s) (Fig 4 solid)
  kDirectRdma,     // inter-node host-to-host RDMA
  kPipelineGdrWrite,  // D->H IPC staging + GDR write chunks (Fig 4 dotted)
  kHostStagedGet,  // RDMA read to local host staging + local H2D copy
  kProxyGet,       // remote proxy executes the reverse pipeline (Fig 5)
  kProxyPut,       // remote proxy stages the last hop
  kEager,          // baseline eager: bounce + RDMA + target-side copy
  kRendezvous,     // baseline large-message pipeline with target involvement
  kAtomicHw,       // IB hardware atomic
  kCount_,
};

inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kHostShm: return "host-shm";
    case Protocol::kLoopbackGdr: return "loopback-gdr";
    case Protocol::kIpcCopy: return "ipc-copy";
    case Protocol::kIpcStaged: return "ipc-staged";
    case Protocol::kShmemPtrCopy: return "shmem-ptr-copy";
    case Protocol::kDirectGdr: return "direct-gdr";
    case Protocol::kDirectRdma: return "direct-rdma";
    case Protocol::kPipelineGdrWrite: return "pipeline-gdr-write";
    case Protocol::kHostStagedGet: return "host-staged-get";
    case Protocol::kProxyGet: return "proxy-get";
    case Protocol::kProxyPut: return "proxy-put";
    case Protocol::kEager: return "eager";
    case Protocol::kRendezvous: return "rendezvous";
    case Protocol::kAtomicHw: return "atomic-hw";
    case Protocol::kCount_: break;
  }
  return "?";
}

}  // namespace gdrshmem::core
