// Common public types of the GDR-aware OpenSHMEM runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gdrshmem::core {

class ShmemError : public std::runtime_error {
 public:
  explicit ShmemError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a transport does not implement a configuration (e.g. the
/// host-based pipeline baseline has no inter-node H-D/D-H path).
class UnsupportedError : public ShmemError {
 public:
  explicit UnsupportedError(const std::string& what) : ShmemError(what) {}
};

/// Symmetric-heap domain, the paper's extension to shmalloc: where the
/// allocation lives. kHost and kGpu are the paper's two domains; kPmem is a
/// persistent region on the host memory bus (NVDIMM-style, Portus's
/// checkpoint store) — host-like on the wire, durable in semantics: bytes
/// acknowledged by quiet() survive proxy crashes and reroutes. Sized by
/// GDRSHMEM_PMEM_HEAP (0 = no pmem heap).
enum class Domain { kHost, kGpu, kPmem };

/// Which runtime design services communication.
enum class TransportKind {
  kNaive,         // host-only; device buffers are the user's problem
  kHostPipeline,  // CUDA-aware baseline of [15]: host staging + target copy
  kEnhancedGdr,   // this paper: GDR/IPC hybrids, pipeline-GDR-write, proxy
};

inline const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kNaive: return "naive";
    case TransportKind::kHostPipeline: return "host-pipeline";
    case TransportKind::kEnhancedGdr: return "enhanced-gdr";
  }
  return "?";
}

inline const char* to_string(Domain d) {
  switch (d) {
    case Domain::kHost: return "host";
    case Domain::kGpu: return "gpu";
    case Domain::kPmem: return "pmem";
  }
  return "?";
}

/// Which engine services device-initiated (in-kernel) operations.
enum class DeviceBackendKind {
  kGpuIb,           // GPU builds WQEs and rings the HCA doorbell directly
  kReverseOffload,  // GPU enqueues command descriptors; the proxy drains them
};

inline const char* to_string(DeviceBackendKind k) {
  switch (k) {
    case DeviceBackendKind::kGpuIb: return "gpu-ib";
    case DeviceBackendKind::kReverseOffload: return "reverse";
  }
  return "?";
}

/// GDRSHMEM_DEVICE_BACKEND (gpu-ib | reverse; gpu-ib when unset). Consulted
/// by RuntimeOptions' defaulted member, mirroring sim::backend_from_env, so
/// every runtime honors the variable unless code pins a backend explicitly.
inline DeviceBackendKind device_backend_from_env() {
  const char* v = std::getenv("GDRSHMEM_DEVICE_BACKEND");
  if (v == nullptr || *v == '\0') return DeviceBackendKind::kGpuIb;
  std::string s(v);
  if (s == "gpu-ib") return DeviceBackendKind::kGpuIb;
  if (s == "reverse") return DeviceBackendKind::kReverseOffload;
  throw std::invalid_argument(
      "GDRSHMEM_DEVICE_BACKEND: expected 'gpu-ib' or 'reverse', got \"" + s +
      "\"");
}

/// Granularity at which device threads cooperate on one operation. Wider
/// scopes amortize the WQE build across lanes (hw::params divisors).
enum class DeviceScope { kThread, kWarp, kBlock };

inline const char* to_string(DeviceScope s) {
  switch (s) {
    case DeviceScope::kThread: return "thread";
    case DeviceScope::kWarp: return "warp";
    case DeviceScope::kBlock: return "block";
  }
  return "?";
}

/// Reduction operators of the collectives engine. kBand (bitwise AND) is
/// integer-only; the runtime uses it internally for team-slot agreement.
enum class ReduceOp { kSum, kMin, kMax, kBand };

/// Element types the typed reductions cover (OpenSHMEM 1.4 subset).
enum class ScalarType { kF32, kF64, kI32, kI64 };

template <typename T>
ScalarType scalar_tag();
template <> inline ScalarType scalar_tag<float>() { return ScalarType::kF32; }
template <> inline ScalarType scalar_tag<double>() { return ScalarType::kF64; }
template <> inline ScalarType scalar_tag<std::int32_t>() { return ScalarType::kI32; }
template <> inline ScalarType scalar_tag<std::int64_t>() { return ScalarType::kI64; }

inline std::size_t scalar_size(ScalarType t) {
  return (t == ScalarType::kF64 || t == ScalarType::kI64) ? 8 : 4;
}

inline const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kBand: return "band";
  }
  return "?";
}

/// Collective operations the engine implements (core/collectives.*).
enum class CollKind { kBarrier, kBroadcast, kAllreduce, kFcollect, kAlltoall, kCount_ };

/// Algorithms the engine can run; kAuto lets the size x team-span x domain
/// selection decide. Not every algorithm applies to every kind — see
/// coll::algo_supported.
enum class CollAlgo {
  kAuto,
  kLinear,         // flat: gather-to-root / root-to-all / all-pairs blast
  kDissemination,  // barrier
  kBinomial,       // broadcast tree
  kRing,           // chunked ring pipeline (bcast, allreduce, fcollect)
  kRecDbl,         // recursive doubling allreduce
  kBruck,          // log-step fcollect for small blocks
  kPairwise,       // round-structured alltoall exchange
  kCount_,
};

inline const char* to_string(CollKind k) {
  switch (k) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kBroadcast: return "bcast";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kFcollect: return "fcollect";
    case CollKind::kAlltoall: return "alltoall";
    case CollKind::kCount_: break;
  }
  return "?";
}

inline const char* to_string(CollAlgo a) {
  switch (a) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kLinear: return "linear";
    case CollAlgo::kDissemination: return "dissemination";
    case CollAlgo::kBinomial: return "binomial";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecDbl: return "recdbl";
    case CollAlgo::kBruck: return "bruck";
    case CollAlgo::kPairwise: return "pairwise";
    case CollAlgo::kCount_: break;
  }
  return "?";
}

/// Protocols a transport can select; used for accounting and tests.
enum class Protocol {
  kHostShm,        // shared-memory copy between host heaps, same node
  kLoopbackGdr,    // intra-node RDMA loopback with a GDR leg
  kIpcCopy,        // CUDA IPC cudaMemcpy (direct, one copy)
  kIpcStaged,      // CUDA IPC copy via a host staging bounce (two copies)
  kShmemPtrCopy,   // cudaMemcpy straight into the peer's host heap (Fig 3)
  kDirectGdr,      // inter-node RDMA with GDR leg(s) (Fig 4 solid)
  kDirectRdma,     // inter-node host-to-host RDMA
  kPipelineGdrWrite,  // D->H IPC staging + GDR write chunks (Fig 4 dotted)
  kHostStagedGet,  // RDMA read to local host staging + local H2D copy
  kProxyGet,       // remote proxy executes the reverse pipeline (Fig 5)
  kProxyPut,       // remote proxy stages the last hop
  kEager,          // baseline eager: bounce + RDMA + target-side copy
  kRendezvous,     // baseline large-message pipeline with target involvement
  kAtomicHw,       // IB hardware atomic
  kCount_,
};

inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kHostShm: return "host-shm";
    case Protocol::kLoopbackGdr: return "loopback-gdr";
    case Protocol::kIpcCopy: return "ipc-copy";
    case Protocol::kIpcStaged: return "ipc-staged";
    case Protocol::kShmemPtrCopy: return "shmem-ptr-copy";
    case Protocol::kDirectGdr: return "direct-gdr";
    case Protocol::kDirectRdma: return "direct-rdma";
    case Protocol::kPipelineGdrWrite: return "pipeline-gdr-write";
    case Protocol::kHostStagedGet: return "host-staged-get";
    case Protocol::kProxyGet: return "proxy-get";
    case Protocol::kProxyPut: return "proxy-put";
    case Protocol::kEager: return "eager";
    case Protocol::kRendezvous: return "rendezvous";
    case Protocol::kAtomicHw: return "atomic-hw";
    case Protocol::kCount_: break;
  }
  return "?";
}

}  // namespace gdrshmem::core
