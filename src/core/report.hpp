// Human-readable runtime diagnostics: which protocols carried how much
// traffic, registration-cache behaviour, proxy activity, heap usage.
#pragma once

#include <iosfwd>
#include <string>

#include "core/runtime.hpp"

namespace gdrshmem::core {

/// Render a post-run report (protocol table + resource counters).
std::string format_report(Runtime& rt);

/// Convenience: stream it.
void print_report(Runtime& rt, std::ostream& os);

}  // namespace gdrshmem::core
