// Post-run runtime diagnostics: which protocols carried how much traffic,
// registration-cache behaviour, proxy activity, heap usage — as a
// human-readable table (format_report) or as stable machine-readable JSON
// (format_report_json) consumed by the bench harness and the perf gate.
#pragma once

#include <iosfwd>
#include <string>

#include "core/runtime.hpp"

namespace gdrshmem::core {

/// Render a post-run report (protocol table + resource counters).
std::string format_report(Runtime& rt);

/// Machine-readable equivalent: protocol table plus the full metrics
/// registry (counters, gauges, log2 histograms), with stable field order.
/// Snapshots pull-style diagnostics into the registry first.
std::string format_report_json(Runtime& rt);

/// Convenience: stream it.
void print_report(Runtime& rt, std::ostream& os);

}  // namespace gdrshmem::core
