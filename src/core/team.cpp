#include "core/team.hpp"

#include <string>

namespace gdrshmem::core {

int Team::world_pe(int team_pe) const {
  if (team_pe < 0 || team_pe >= size_) {
    throw ShmemError("team PE " + std::to_string(team_pe) +
                     " out of range for a team of " + std::to_string(size_));
  }
  return start_ + team_pe * stride_;
}

int Team::index_of_world(int world_pe) const {
  int off = world_pe - start_;
  if (off < 0 || stride_ <= 0 || off % stride_ != 0) return -1;
  int idx = off / stride_;
  return idx < size_ ? idx : -1;
}

int Team::translate(const Team& src, int src_pe, const Team& dst) {
  return dst.index_of_world(src.world_pe(src_pe));
}

}  // namespace gdrshmem::core
