// The three transport designs compared in the paper (Table I).
#pragma once

#include "core/transport.hpp"

namespace gdrshmem::core {

class Runtime;

/// "Naive": the runtime moves host memory only; any GPU buffer is the
/// user's problem (explicit cudaMemcpy staging in application code).
class NaiveTransport final : public Transport {
 public:
  explicit NaiveTransport(Runtime& rt) : rt_(rt) {}
  std::string_view name() const override { return "naive"; }
  void put(Ctx& ctx, const RmaOp& op) override;
  void get(Ctx& ctx, const RmaOp& op) override;
  void handle_ctrl(Ctx& ctx, CtrlMsg& msg, sim::Process& worker) override;

 private:
  Runtime& rt_;
};

/// The CUDA-aware baseline of [15]: CUDA IPC copies intra-node; inter-node
/// D-D via a host-staged pipeline (eager below a threshold, rendezvous
/// above) whose last hop is performed *by the target PE* — breaking true
/// one-sidedness. Inter-node H-D / D-H are unsupported, as in the paper.
class HostPipelineTransport final : public Transport {
 public:
  explicit HostPipelineTransport(Runtime& rt) : rt_(rt) {}
  std::string_view name() const override { return "host-pipeline"; }
  void put(Ctx& ctx, const RmaOp& op) override;
  void get(Ctx& ctx, const RmaOp& op) override;
  void handle_ctrl(Ctx& ctx, CtrlMsg& msg, sim::Process& worker) override;

 private:
  void put_intra(Ctx& ctx, const RmaOp& op);
  void get_intra(Ctx& ctx, const RmaOp& op);
  void eager_put(Ctx& ctx, const RmaOp& op);
  void rendezvous_put(Ctx& ctx, const RmaOp& op);
  void remote_request_get(Ctx& ctx, const RmaOp& op);

  void on_eager_data(Ctx& ctx, CtrlMsg& msg, sim::Process& worker);
  void on_eager_get_req(Ctx& ctx, CtrlMsg& msg, sim::Process& worker);
  void on_rts(Ctx& ctx, CtrlMsg& msg, sim::Process& worker);
  void on_chunk(Ctx& ctx, CtrlMsg& msg, sim::Process& worker);
  void on_get_req(Ctx& ctx, CtrlMsg& msg, sim::Process& worker);
  void grant_cts(Ctx& ctx, CtrlMsg& rts, sim::Process& worker);

  Runtime& rt_;
};

/// This paper's design (Section III): GDR/IPC hybrids intra-node, Direct
/// GDR + pipeline-GDR-write + proxy inter-node. True one-sided everywhere.
class EnhancedGdrTransport final : public Transport {
 public:
  explicit EnhancedGdrTransport(Runtime& rt) : rt_(rt) {}
  std::string_view name() const override { return "enhanced-gdr"; }
  void put(Ctx& ctx, const RmaOp& op) override;
  void get(Ctx& ctx, const RmaOp& op) override;
  void handle_ctrl(Ctx& ctx, CtrlMsg& msg, sim::Process& worker) override;

 private:
  void direct_put(Ctx& ctx, const RmaOp& op, Protocol proto);
  void direct_get(Ctx& ctx, const RmaOp& op, Protocol proto);
  void pipeline_gdr_write(Ctx& ctx, const RmaOp& op);
  void host_staged_get(Ctx& ctx, const RmaOp& op);
  void proxy_put(Ctx& ctx, const RmaOp& op, const void* host_src);
  void proxy_get(Ctx& ctx, const RmaOp& op);

  /// One full proxy-put / proxy-get exchange under a fault plan; false means
  /// a stage timed out (proxy crashed mid-transfer) and the caller should
  /// reissue with fresh transfer state.
  bool attempt_proxy_put(Ctx& ctx, const RmaOp& op, const void* host_src);
  bool attempt_proxy_get(Ctx& ctx, const RmaOp& op);

  /// Record a gdr-fallback event when a device leg of `op` sits on a node
  /// whose P2P capability has been revoked (fault plans only).
  void note_gdr_fallback(const RmaOp& op);

  Runtime& rt_;
  /// PE issuing the operation being dispatched (set on entry; execution is
  /// serialized by the simulation, so a single slot is safe).
  int issuer_ = 0;
};

}  // namespace gdrshmem::core
