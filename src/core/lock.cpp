// Distributed locks and team barriers, built on the runtime's IB hardware
// atomics — the "locks and critical regions" use case of Section II-C.
#include "core/ctx.hpp"

namespace gdrshmem::core {

void Ctx::set_lock(std::int64_t* lock_sym) {
  // The lock word lives on PE 0 (OpenSHMEM convention for global locks).
  // Spin with compare-and-swap and linear backoff.
  std::int64_t ticket = pe_ + 1;
  double backoff_us = 0.5;
  while (atomic_compare_swap(lock_sym, 0, ticket, 0) != 0) {
    compute(sim::Duration::us(backoff_us));
    backoff_us = std::min(backoff_us * 2.0, 16.0);
  }
}

void Ctx::clear_lock(std::int64_t* lock_sym) {
  std::int64_t ticket = pe_ + 1;
  if (atomic_compare_swap(lock_sym, ticket, 0, 0) != ticket) {
    throw ShmemError("clear_lock by a PE that does not hold the lock");
  }
}

bool Ctx::test_lock(std::int64_t* lock_sym) {
  return atomic_compare_swap(lock_sym, 0, pe_ + 1, 0) == 0;
}

void Ctx::team_barrier(const std::vector<int>& pes, std::int64_t* psync) {
  // psync is a symmetric 2-word array: [0] arrival counter (on the team
  // root = pes.front()), [1] release generation (on every member). Standard
  // pSync rule: one barrier in flight per psync array.
  if (pes.empty()) throw ShmemError("team_barrier needs at least one PE");
  bool member = false;
  for (int p : pes) member |= (p == pe_);
  if (!member) throw ShmemError("calling PE is not in the team");
  const int root = pes.front();
  const auto size = static_cast<std::int64_t>(pes.size());

  std::int64_t my_gen = psync[1];  // release generation I have seen
  std::int64_t arrived = atomic_fetch_inc(&psync[0], root);
  if (arrived == size - 1) {
    // Last to arrive: reset the counter, then release everyone (self too).
    std::int64_t zero = 0;
    put_sync(&psync[0], &zero, sizeof(zero), root);
    std::int64_t next = my_gen + 1;
    for (int p : pes) {
      putmem(&psync[1], &next, sizeof(next), p);
    }
    quiet();
  } else {
    wait_until<std::int64_t>(&psync[1], Cmp::kGt, my_gen);
  }
}

}  // namespace gdrshmem::core
