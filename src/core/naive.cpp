// The "Naive" design of Table I: the runtime only understands host memory.
// Users must stage GPU data with explicit cudaMemcpy calls before/after
// every communication — the productivity problem motivating the paper.
#include "core/transport_util.hpp"
#include "core/transports.hpp"

namespace gdrshmem::core {

void NaiveTransport::put(Ctx& ctx, const RmaOp& op) {
  if (op.local_is_device || op.remote_domain == Domain::kGpu) {
    throw UnsupportedError(
        "naive transport cannot touch GPU memory: stage through the host "
        "with cudaMemcpy first");
  }
  if (op.same_node) {
    ctx.count_protocol(Protocol::kHostShm, op.bytes);
    detail::host_shm_copy(ctx, op.remote, op.local, op.bytes, op.target_pe);
    return;
  }
  detail::rdma_put(ctx, op, Protocol::kDirectRdma);
}

void NaiveTransport::get(Ctx& ctx, const RmaOp& op) {
  if (op.local_is_device || op.remote_domain == Domain::kGpu) {
    throw UnsupportedError(
        "naive transport cannot touch GPU memory: stage through the host "
        "with cudaMemcpy first");
  }
  if (op.same_node) {
    ctx.count_protocol(Protocol::kHostShm, op.bytes);
    detail::host_shm_copy(ctx, op.local, op.remote, op.bytes, -1);
    return;
  }
  detail::rdma_get(ctx, op, Protocol::kDirectRdma);
}

void NaiveTransport::handle_ctrl(Ctx&, CtrlMsg&, sim::Process&) {
  throw ShmemError("naive transport uses no control messages");
}

}  // namespace gdrshmem::core
