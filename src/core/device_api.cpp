// Device-initiated OpenSHMEM backends (see device_api.hpp for the model).
#include "core/device_api.hpp"

#include "core/protocol_selector.hpp"
#include "core/proxy.hpp"
#include "core/transport_util.hpp"

namespace gdrshmem::core {

using sim::Duration;

namespace {

/// Warp/block-scope contexts amortize WQE assembly across the cooperating
/// threads (one thread builds while the others run); the doorbell and the
/// descriptor write stay a single MMIO transaction regardless of scope.
double wqe_divisor(DeviceScope scope, const hw::SystemParams& p) {
  switch (scope) {
    case DeviceScope::kThread: return 1.0;
    case DeviceScope::kWarp: return p.wqe_warp_divisor;
    case DeviceScope::kBlock: return p.wqe_block_divisor;
  }
  return 1.0;
}

/// Resolve a symmetric 64-bit word for hardware atomics (same contract as
/// the host atomic path in atomics.cpp).
std::uint64_t* resolve_word(Runtime& rt, int owner_pe, int target_pe,
                            const void* sym) {
  Domain dom;
  void* remote = rt.translate(sym, owner_pe, target_pe, sizeof(std::uint64_t), &dom);
  if (reinterpret_cast<std::uintptr_t>(remote) % 8 != 0) {
    throw ShmemError("atomic target must be 8-byte aligned");
  }
  return static_cast<std::uint64_t*>(remote);
}

}  // namespace

// ---------------------------------------------------------------------------
// DeviceBackend shared machinery (reverse ring + fault-hardened submission)

void DeviceBackend::post_cmd(DeviceCtx& dctx,
                             const std::shared_ptr<DeviceCmd>& cmd) {
  // The descriptor lands in the host ring via one PCIe write the kernel has
  // already been charged for; the proxy daemon polls the ring, so no network
  // send is involved in the hand-off.
  (void)dctx;
  ProxyDaemon& proxy =
      rt_.proxy(rt_.cluster().placement(cmd->requester).node);
  CtrlMsg m;
  m.kind = CtrlMsg::Kind::kDeviceCmd;
  m.from = cmd->requester;
  m.bytes = cmd->rma.bytes;
  m.state = cmd;
  proxy.mailbox().post(m);
}

void DeviceBackend::offload(DeviceCtx& dctx, std::shared_ptr<DeviceCmd> cmd) {
  Ctx& ctx = dctx.host_ctx();
  const int me = cmd->requester;
  if (!rt_.tuning().use_proxy || !rt_.proxies_enabled()) {
    throw ShmemError(
        "device offload requires the per-node proxy daemon "
        "(enhanced-gdr transport with tuning.use_proxy)");
  }
  // Bounded command ring: the kernel blocks on a free slot once
  // device_queue_depth descriptors are outstanding.
  auto& ring = inflight_[me];
  const std::size_t depth = rt_.options().device_queue_depth;
  auto reap = [&ring] {
    while (!ring.empty() && ring.front()->done()) ring.pop_front();
  };
  reap();
  if (ring.size() >= depth) {
    ctx.wait_for([&] {
      reap();
      return ring.size() < depth;
    });
  }
  if (!rt_.faults_enabled()) {
    post_cmd(dctx, cmd);
    ring.push_back(cmd->done);
    if (cmd->rma.blocking) {
      ctx.wait_for([&] { return cmd->done->done(); });
    } else {
      ctx.track(cmd->done);
    }
    return;
  }
  // Fault plan: the proxy may crash holding our descriptor. Each attempt
  // uses fresh completion state (a restarted daemon can never complete a
  // command we already gave up on) and a deadline scaled to the staged
  // transfer size; timed-out attempts are reissued from scratch up to the
  // budget. The op becomes effectively blocking — a legal strengthening of
  // nbi. Puts and gets rewrite the same bytes on reissue (idempotent);
  // atomics may double-apply if the proxy crashes after executing the RMW
  // but before the completion notification — see DESIGN.md.
  const Duration timeout = Duration::us(
      rt_.tuning().proxy_timeout_us *
      (2.0 + static_cast<double>(cmd->rma.bytes) /
                 static_cast<double>(rt_.tuning().pipeline_chunk)));
  int reissues = 0;
  while (true) {
    auto attempt = std::make_shared<DeviceCmd>(*cmd);
    attempt->done = std::make_shared<sim::Completion>();
    post_cmd(dctx, attempt);
    if (ctx.wait_for_deadline([&] { return attempt->done->done(); },
                              ctx.now() + timeout)) {
      return;
    }
    if (++reissues > rt_.tuning().proxy_max_reissues) {
      throw ShmemError("device offload: reissue budget exhausted");
    }
    rt_.faults().on_event(sim::FaultEvent::kProxyReissue, me);
  }
}

// ---------------------------------------------------------------------------
// GPU-IB backend

class GpuIbBackend final : public DeviceBackend {
 public:
  using DeviceBackend::DeviceBackend;
  std::string_view name() const override { return "gpu-ib"; }
  DeviceBackendKind backend_kind() const override {
    return DeviceBackendKind::kGpuIb;
  }

  void rma(DeviceCtx& dctx, const RmaOp& op, bool is_get) override {
    Ctx& ctx = dctx.host_ctx();
    const int me = ctx.my_pe();
    const auto& p = rt_.cluster().params();
    dctx.kernel().charge_us(p.gpu_wqe_build_us / wqe_divisor(dctx.scope(), p) +
                            p.gpu_doorbell_us);
    if (op.same_node) return intra_node(ctx, op, is_get, me);

    const bool dev_leg = op.local_is_device || op.remote_domain == Domain::kGpu;
    const bool blocked =
        (op.local_is_device && !rt_.gdr_available(me)) ||
        (op.remote_domain == Domain::kGpu && !rt_.gdr_available(op.target_pe));
    if (blocked || rt_.selector().offload_staged(op, is_get, me)) {
      // Either the HCA can no longer DMA a GPU leg (P2P revoked) or the
      // message is too large for one direct GDR posting: hand the op to the
      // host proxy, which runs the staged protocols on our behalf.
      if (blocked) rt_.faults().on_event(sim::FaultEvent::kGdrFallback, me);
      if (rt_.tuning().use_proxy && rt_.proxies_enabled()) {
        auto cmd = std::make_shared<DeviceCmd>();
        cmd->op = is_get ? DeviceCmd::Op::kGet : DeviceCmd::Op::kPut;
        cmd->rma = op;
        cmd->requester = me;
        return offload(dctx, cmd);
      }
      if (blocked) {
        throw ShmemError(
            "gpu-ib: GPU leg unreachable (P2P revoked) and no proxy to fall "
            "back to");
      }
      // Oversized but no proxy configured: a single direct posting still
      // works, just at the degraded large-message GDR rate.
    }
    Protocol proto = dev_leg ? Protocol::kDirectGdr : Protocol::kDirectRdma;
    if (is_get) {
      detail::rdma_get(ctx, op, proto);
    } else {
      detail::rdma_put(ctx, op, proto);
    }
  }

  std::int64_t amo_fetch_add(DeviceCtx& dctx, std::int64_t* sym,
                             std::int64_t value, int pe) override {
    return amo(dctx, sym, pe, /*is_cswap=*/false,
               static_cast<std::uint64_t>(value), 0);
  }

  std::int64_t amo_compare_swap(DeviceCtx& dctx, std::int64_t* sym,
                                std::int64_t cond, std::int64_t value,
                                int pe) override {
    return amo(dctx, sym, pe, /*is_cswap=*/true,
               static_cast<std::uint64_t>(cond),
               static_cast<std::uint64_t>(value));
  }

  void quiet(DeviceCtx& dctx) override { quiet_common(dctx); }

 private:
  /// Execute the selector's intra-node choice — the same paths a host call
  /// would take, just issued (and the doorbell charged) from the kernel.
  void intra_node(Ctx& ctx, const RmaOp& op, bool is_get, int me) {
    PathChoice choice = is_get ? rt_.selector().select_get(op, me)
                               : rt_.selector().select_put(op, me);
    void* dst = is_get ? op.local : op.remote;
    const void* src = is_get ? op.remote : op.local;
    switch (choice) {
      case PathChoice::kHostShm:
        ctx.count_protocol(Protocol::kHostShm, op.bytes);
        return detail::host_shm_copy(ctx, dst, src, op.bytes,
                                     is_get ? -1 : op.target_pe);
      case PathChoice::kLoopbackGdr:
        if (is_get) return detail::rdma_get(ctx, op, Protocol::kLoopbackGdr);
        return detail::rdma_put(ctx, op, Protocol::kLoopbackGdr);
      case PathChoice::kIpcCopy:
        return detail::peer_cuda_copy(ctx, dst, src, op.bytes, op.target_pe,
                                      Protocol::kIpcCopy, true);
      case PathChoice::kShmemPtrCopy:
        return detail::peer_cuda_copy(ctx, dst, src, op.bytes, op.target_pe,
                                      Protocol::kShmemPtrCopy, false);
      default:
        throw ShmemError("gpu-ib: unreachable intra-node path");
    }
  }

  std::int64_t amo(DeviceCtx& dctx, std::int64_t* sym, int pe, bool is_cswap,
                   std::uint64_t a, std::uint64_t b) {
    Ctx& ctx = dctx.host_ctx();
    const int me = ctx.my_pe();
    const auto& p = rt_.cluster().params();
    dctx.kernel().charge_us(p.gpu_wqe_build_us / wqe_divisor(dctx.scope(), p) +
                            p.gpu_doorbell_us);
    ctx.count_protocol(Protocol::kAtomicHw, 8);
    std::uint64_t* word = resolve_word(rt_, me, pe, sym);
    std::uint64_t old = 0;
    auto post = [this, &ctx, me, pe, word, is_cswap, a, b, &old] {
      if (is_cswap) {
        return rt_.endpoint(me).atomic_cswap64(ctx.proc(), pe, word, a, b,
                                               &old);
      }
      return rt_.endpoint(me).atomic_fadd64(ctx.proc(), pe, word, a, &old);
    };
    auto comp = post();
    if (rt_.faults_enabled()) {
      // An error completion means the request was lost before the RMW
      // executed (see atomics.cpp), so re-posting is exact.
      ctx.await_reliable(ctx.proc(), std::move(comp), post);
    } else {
      comp->wait(ctx.proc());
    }
    return static_cast<std::int64_t>(old);
  }
};

// ---------------------------------------------------------------------------
// Reverse-offload backend

class ReverseOffloadBackend final : public DeviceBackend {
 public:
  using DeviceBackend::DeviceBackend;
  std::string_view name() const override { return "reverse"; }
  DeviceBackendKind backend_kind() const override {
    return DeviceBackendKind::kReverseOffload;
  }

  void rma(DeviceCtx& dctx, const RmaOp& op, bool is_get) override {
    dctx.kernel().charge_us(rt_.cluster().params().device_cmd_write_us);
    auto cmd = std::make_shared<DeviceCmd>();
    cmd->op = is_get ? DeviceCmd::Op::kGet : DeviceCmd::Op::kPut;
    cmd->rma = op;
    cmd->requester = dctx.my_pe();
    offload(dctx, cmd);
  }

  std::int64_t amo_fetch_add(DeviceCtx& dctx, std::int64_t* sym,
                             std::int64_t value, int pe) override {
    return amo(dctx, sym, pe, DeviceCmd::Op::kAmoFadd,
               static_cast<std::uint64_t>(value), 0);
  }

  std::int64_t amo_compare_swap(DeviceCtx& dctx, std::int64_t* sym,
                                std::int64_t cond, std::int64_t value,
                                int pe) override {
    return amo(dctx, sym, pe, DeviceCmd::Op::kAmoCswap,
               static_cast<std::uint64_t>(cond),
               static_cast<std::uint64_t>(value));
  }

  void quiet(DeviceCtx& dctx) override { quiet_common(dctx); }

 private:
  std::int64_t amo(DeviceCtx& dctx, std::int64_t* sym, int pe,
                   DeviceCmd::Op op, std::uint64_t a, std::uint64_t b) {
    dctx.kernel().charge_us(rt_.cluster().params().device_cmd_write_us);
    auto cmd = std::make_shared<DeviceCmd>();
    cmd->op = op;
    cmd->requester = dctx.my_pe();
    cmd->rma.target_pe = pe;
    cmd->rma.bytes = sizeof(std::uint64_t);
    cmd->rma.blocking = true;  // a fetch must return the prior value
    cmd->amo_word = resolve_word(rt_, dctx.my_pe(), pe, sym);
    cmd->amo_a = a;
    cmd->amo_b = b;
    cmd->amo_result = std::make_shared<std::uint64_t>(0);
    offload(dctx, cmd);
    return static_cast<std::int64_t>(*cmd->amo_result);
  }
};

// ---------------------------------------------------------------------------
// Shared quiet + factory

void DeviceBackend::quiet_common(DeviceCtx& dctx) {
  // The kernel polls its completion flags (CQ for gpu-ib, host-written ring
  // status for reverse), then the host-visible pending set drains — which
  // covers tracked nbi offload completions too.
  dctx.kernel().charge_us(rt_.cluster().params().gpu_cq_poll_us);
  dctx.host_ctx().quiet();
  auto it = inflight_.find(dctx.my_pe());
  if (it != inflight_.end()) {
    auto& ring = it->second;
    while (!ring.empty() && ring.front()->done()) ring.pop_front();
  }
}

std::unique_ptr<DeviceBackend> make_device_backend(Runtime& rt,
                                                   DeviceBackendKind kind) {
  switch (kind) {
    case DeviceBackendKind::kGpuIb:
      return std::make_unique<GpuIbBackend>(rt);
    case DeviceBackendKind::kReverseOffload:
      return std::make_unique<ReverseOffloadBackend>(rt);
  }
  throw ShmemError("unknown device backend");
}

// ---------------------------------------------------------------------------
// DeviceCtx

void DeviceCtx::rma_entry(void* remote_sym, void* local, std::size_t n, int pe,
                          bool is_get, bool blocking) {
  if (n == 0) return;
  Runtime& rt = ctx_.runtime();
  const TraceEvent::Kind kind =
      is_get ? TraceEvent::Kind::kGet : TraceEvent::Kind::kPut;
  if (is_get) {
    rt.stats().gets++;
  } else {
    rt.stats().puts++;
  }
  ctx_.op_kind_ = kind;
  sim::Time t0 = ctx_.now();
  // No host software overhead here — the device-side issue costs (WQE +
  // doorbell, or descriptor write) are charged by the backend instead.
  RmaOp op = ctx_.make_op(remote_sym, local, n, pe, blocking);
  backend_.rma(*this, op, is_get);
  if (blocking) ctx_.finish_op(kind, pe, n, t0);
}

void DeviceCtx::putmem(void* dst_sym, const void* src, std::size_t n, int pe) {
  rma_entry(dst_sym, const_cast<void*>(src), n, pe, /*is_get=*/false,
            /*blocking=*/true);
}

void DeviceCtx::putmem_nbi(void* dst_sym, const void* src, std::size_t n,
                           int pe) {
  rma_entry(dst_sym, const_cast<void*>(src), n, pe, /*is_get=*/false,
            /*blocking=*/false);
}

void DeviceCtx::getmem(void* dst, const void* src_sym, std::size_t n, int pe) {
  rma_entry(const_cast<void*>(src_sym), dst, n, pe, /*is_get=*/true,
            /*blocking=*/true);
}

void DeviceCtx::getmem_nbi(void* dst, const void* src_sym, std::size_t n,
                           int pe) {
  rma_entry(const_cast<void*>(src_sym), dst, n, pe, /*is_get=*/true,
            /*blocking=*/false);
}

std::int64_t DeviceCtx::atomic_fetch_add(std::int64_t* sym, std::int64_t value,
                                         int pe) {
  Runtime& rt = ctx_.runtime();
  rt.stats().atomics++;
  ctx_.op_kind_ = TraceEvent::Kind::kAtomic;
  sim::Time t0 = ctx_.now();
  std::int64_t old = backend_.amo_fetch_add(*this, sym, value, pe);
  ctx_.finish_op(TraceEvent::Kind::kAtomic, pe, 8, t0);
  return old;
}

std::int64_t DeviceCtx::atomic_compare_swap(std::int64_t* sym,
                                            std::int64_t cond,
                                            std::int64_t value, int pe) {
  Runtime& rt = ctx_.runtime();
  rt.stats().atomics++;
  ctx_.op_kind_ = TraceEvent::Kind::kAtomic;
  sim::Time t0 = ctx_.now();
  std::int64_t old = backend_.amo_compare_swap(*this, sym, cond, value, pe);
  ctx_.finish_op(TraceEvent::Kind::kAtomic, pe, 8, t0);
  return old;
}

void* DeviceCtx::ptr(const void* sym, int pe) {
  // Classic shmem_ptr: the peer's host heap, same node.
  if (void* p = ctx_.shmem_ptr(sym, pe)) return p;
  Runtime& rt = ctx_.runtime();
  if (!rt.cluster().same_node(my_pe(), pe)) return nullptr;
  Domain dom;
  void* remote = rt.translate(sym, my_pe(), pe, 1, &dom);
  if (dom != Domain::kGpu) return nullptr;
  if (!rt.gdr_available(pe)) return nullptr;  // P2P revoked: no peer mapping
  rt.map_peer_gpu_heap(ctx_.proc(), my_pe(), pe);
  return remote;
}

// ---------------------------------------------------------------------------
// Ctx entry point

void Ctx::launch_kernel_device(double per_cell_ns, DeviceScope scope,
                               const std::function<void(DeviceCtx&)>& body) {
  rt_->cuda().launch_kernel_resident(
      proc(), per_cell_ns, [&](cudart::KernelContext& kc) {
        DeviceCtx dctx(*this, kc, scope);
        body(dctx);
      });
}

}  // namespace gdrshmem::core
