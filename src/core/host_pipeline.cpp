// The CUDA-aware baseline of [15] ("Host-based Pipeline" in Table I).
//
// Intra-node: CUDA IPC copies. One copy when the destination can be mapped
// (H-D, D-D put; D-H, D-D get), two copies through a host bounce otherwise
// (D-H put, H-D get) — the paths the paper's shmem_ptr design beats by 40%.
//
// Inter-node: only same-domain configurations (H-H, D-D). Device transfers
// stage through host memory and the *target PE performs the final copy*
// inside its progress engine — the implicit synchronization that destroys
// the overlap in Fig 10. Small messages use an eager protocol, large ones a
// rendezvous pipeline (Fig 1).
#include "core/transport_util.hpp"
#include "core/transports.hpp"

namespace gdrshmem::core {

namespace {

/// Shared state of one rendezvous transfer (put: staging at the target;
/// get: staging at the requester).
struct RndvState {
  sim::Completion cts;
  std::byte* staging = nullptr;
  std::size_t total = 0;
  std::size_t copied = 0;
  int requester = -1;
  std::shared_ptr<sim::Completion> done = std::make_shared<sim::Completion>();
};

}  // namespace

// ---------------------------------------------------------------------------
// dispatch

void HostPipelineTransport::put(Ctx& ctx, const RmaOp& op) {
  if (op.same_node) return put_intra(ctx, op);
  const bool src_dev = op.local_is_device;
  const bool dst_dev = op.remote_domain == Domain::kGpu;
  if (!src_dev && !dst_dev) return detail::rdma_put(ctx, op, Protocol::kDirectRdma);
  if (src_dev != dst_dev) {
    throw UnsupportedError(
        "host-based pipeline does not support inter-node H-D/D-H "
        "configurations (see paper Section V-B)");
  }
  if (op.bytes <= rt_.tuning().eager_limit) return eager_put(ctx, op);
  return rendezvous_put(ctx, op);
}

void HostPipelineTransport::get(Ctx& ctx, const RmaOp& op) {
  if (op.same_node) return get_intra(ctx, op);
  const bool loc_dev = op.local_is_device;
  const bool rem_dev = op.remote_domain == Domain::kGpu;
  if (!loc_dev && !rem_dev) return detail::rdma_get(ctx, op, Protocol::kDirectRdma);
  if (loc_dev != rem_dev) {
    throw UnsupportedError(
        "host-based pipeline does not support inter-node H-D/D-H "
        "configurations (see paper Section V-B)");
  }
  return remote_request_get(ctx, op);
}

void HostPipelineTransport::handle_ctrl(Ctx& ctx, CtrlMsg& msg,
                                        sim::Process& worker) {
  switch (msg.kind) {
    case CtrlMsg::Kind::kEagerData: return on_eager_data(ctx, msg, worker);
    case CtrlMsg::Kind::kEagerGetReq: return on_eager_get_req(ctx, msg, worker);
    case CtrlMsg::Kind::kRendezvousRts: return on_rts(ctx, msg, worker);
    case CtrlMsg::Kind::kRendezvousChunk: return on_chunk(ctx, msg, worker);
    case CtrlMsg::Kind::kRendezvousGetReq: return on_get_req(ctx, msg, worker);
    default:
      throw ShmemError("host-pipeline: unexpected control message");
  }
}

// ---------------------------------------------------------------------------
// intra-node (CUDA IPC designs of [15])

void HostPipelineTransport::put_intra(Ctx& ctx, const RmaOp& op) {
  const bool src_dev = op.local_is_device;
  const bool dst_dev = op.remote_domain == Domain::kGpu;
  if (!src_dev && !dst_dev) {
    ctx.count_protocol(Protocol::kHostShm, op.bytes);
    return detail::host_shm_copy(ctx, op.remote, op.local, op.bytes, op.target_pe);
  }
  if (dst_dev) {
    // H-D or D-D put: map the destination, one IPC copy.
    return detail::peer_cuda_copy(ctx, op.remote, op.local, op.bytes,
                                  op.target_pe, Protocol::kIpcCopy, true);
  }
  // D-H put: IPC cannot map a host buffer — bounce D->H, then shm copy.
  ctx.count_protocol(Protocol::kIpcStaged, op.bytes);
  std::byte* b = ctx.bounce(op.bytes);
  rt_.cuda().memcpy_sync(ctx.proc(), b, op.local, op.bytes);
  detail::host_shm_copy(ctx, op.remote, b, op.bytes, op.target_pe);
}

void HostPipelineTransport::get_intra(Ctx& ctx, const RmaOp& op) {
  const bool loc_dev = op.local_is_device;
  const bool rem_dev = op.remote_domain == Domain::kGpu;
  if (!loc_dev && !rem_dev) {
    ctx.count_protocol(Protocol::kHostShm, op.bytes);
    return detail::host_shm_copy(ctx, op.local, op.remote, op.bytes, -1);
  }
  if (rem_dev && loc_dev) {
    // D-D get: one IPC copy.
    return detail::peer_cuda_copy(ctx, op.local, op.remote, op.bytes,
                                  op.target_pe, Protocol::kIpcCopy, true);
  }
  if (rem_dev) {
    // H-D get: IPC D->H into a bounce, then shm copy into the user buffer.
    ctx.count_protocol(Protocol::kIpcStaged, op.bytes);
    rt_.map_peer_gpu_heap(ctx.proc(), ctx.my_pe(), op.target_pe);
    std::byte* b = ctx.bounce(op.bytes);
    rt_.cuda().memcpy_sync(ctx.proc(), b, op.remote, op.bytes);
    detail::host_shm_copy(ctx, op.local, b, op.bytes, -1);
    return;
  }
  // D-H get: one H->D copy from the peer's host heap ("on par", Fig 7d).
  detail::peer_cuda_copy(ctx, op.local, op.remote, op.bytes, op.target_pe,
                         Protocol::kIpcCopy, false);
}

// ---------------------------------------------------------------------------
// inter-node eager

void HostPipelineTransport::eager_put(Ctx& ctx, const RmaOp& op) {
  ctx.count_protocol(Protocol::kEager, op.bytes);
  const int me = ctx.my_pe();
  const int dst = op.target_pe;

  // Flow control: one eager message in flight per peer (one slot each).
  auto& out = ctx.eager_outstanding();
  ctx.wait_for([&] {
    auto it = out.find(dst);
    return it == out.end() || it->second->done();
  });

  // Source staging: D->H bounce for device sources, small copy for host
  // sources — either way the user buffer is immediately reusable.
  std::byte* slot_src = ctx.eager_src_slot(dst);
  if (op.local_is_device) {
    rt_.cuda().memcpy_sync(ctx.proc(), slot_src, op.local, op.bytes);
  } else {
    detail::host_shm_copy(ctx, slot_src, op.local, op.bytes, -1);
  }

  void* remote_slot = rt_.eager_slot(dst, me);
  auto data_post = [this, &ctx, me, slot_src, dst, remote_slot,
                    bytes = op.bytes] {
    return rt_.ib().rdma_write(ctx.proc(), me, slot_src, dst, remote_slot,
                                  bytes);
  };
  if (rt_.faults_enabled() || !rt_.ib().in_order_delivery()) {
    // The payload must be in the remote eager slot before the notification:
    // a tier-2 replay of the data write could otherwise land after the
    // target's final copy read the slot. slot_src stays valid (one eager in
    // flight per peer), so the replay is exact. On a relaxed-ordering
    // transport (srd) the data write and the notification can also arrive
    // out of issue order, so the data wait is required even fault-free
    // (await_reliable is then a plain wait).
    ctx.await_reliable(ctx.proc(), data_post(), data_post);
  } else {
    ctx.track(data_post());
  }

  auto done = std::make_shared<sim::Completion>();
  CtrlMsg msg;
  msg.kind = CtrlMsg::Kind::kEagerData;
  msg.from = me;
  msg.remote = op.remote;
  msg.bytes = op.bytes;
  msg.state = done;
  Runtime& rt = rt_;
  rt_.ib().post_send(ctx.proc(), me, dst, 32, [&rt, dst, msg] {
    rt.ctx(dst).rx().post(msg);
    rt.ctx(dst).notify_progress();
  });
  out[dst] = done;
  ctx.track(std::move(done));
}

void HostPipelineTransport::on_eager_data(Ctx& ctx, CtrlMsg& msg,
                                          sim::Process& worker) {
  // Last pipeline hop, executed by the TARGET: eager slot -> final buffer.
  void* slot = rt_.eager_slot(ctx.my_pe(), msg.from);
  bool dst_dev =
      rt_.cuda().attributes(msg.remote).space == cudart::MemSpace::kDevice;
  if (dst_dev) {
    rt_.cuda().memcpy_sync(worker, msg.remote, slot, msg.bytes);
  } else {
    detail::host_shm_copy_by(ctx, worker, msg.remote, slot, msg.bytes, -1);
  }
  auto done = std::static_pointer_cast<sim::Completion>(msg.state);
  if (msg.is_reply) {
    // We are the get requester: data is local, complete in place.
    done->fire();
    ctx.notify_progress();
    return;
  }
  // ACK back to the source so its quiet() can retire the put.
  Runtime& rt = rt_;
  int requester = msg.from;
  rt_.ib().post_send(worker, ctx.my_pe(), requester, 0,
                        [done, &rt, requester] {
                          done->fire();
                          rt.notify_pe(requester);
                        });
}

void HostPipelineTransport::on_eager_get_req(Ctx& ctx, CtrlMsg& msg,
                                             sim::Process& worker) {
  // The TARGET of a small get eager-sends the data back.
  const int requester = msg.from;
  const int me = ctx.my_pe();
  std::byte* slot_src = ctx.eager_src_slot(requester);
  bool src_dev =
      rt_.cuda().attributes(msg.remote).space == cudart::MemSpace::kDevice;
  if (src_dev) {
    rt_.cuda().memcpy_sync(worker, slot_src, msg.remote, msg.bytes);
  } else {
    detail::host_shm_copy_by(ctx, worker, slot_src, msg.remote, msg.bytes, -1);
  }
  auto data_post = [this, &worker, me, slot_src, requester,
                    remote_slot = rt_.eager_slot(requester, me),
                    bytes = msg.bytes] {
    return rt_.ib().rdma_write(worker, me, slot_src, requester, remote_slot,
                                  bytes);
  };
  // Same data-before-notification requirement as eager_put: also needed
  // fault-free on a relaxed-ordering transport.
  if (rt_.faults_enabled() || !rt_.ib().in_order_delivery()) {
    ctx.await_reliable(worker, data_post(), data_post);
  } else {
    data_post();
  }
  CtrlMsg reply;
  reply.kind = CtrlMsg::Kind::kEagerData;
  reply.from = me;
  reply.remote = msg.local;  // requester's final destination
  reply.bytes = msg.bytes;
  reply.is_reply = true;
  reply.state = msg.state;
  Runtime& rt = rt_;
  rt_.ib().post_send(worker, me, requester, 32, [&rt, requester, reply] {
    rt.ctx(requester).rx().post(reply);
    rt.ctx(requester).notify_progress();
  });
}

// ---------------------------------------------------------------------------
// inter-node rendezvous (Fig 1 pipeline, target-side final hop)

void HostPipelineTransport::grant_cts(Ctx& ctx, CtrlMsg& rts,
                                      sim::Process& worker) {
  auto st = std::static_pointer_cast<RndvState>(rts.state);
  std::byte* staging = ctx.rendezvous_staging(rts.bytes, worker);
  ctx.set_staging_busy(true);
  Runtime& rt = rt_;
  const int requester = rts.from;
  rt_.ib().post_send(worker, ctx.my_pe(), requester, 16,
                        [st, staging, &rt, requester] {
                          st->staging = staging;
                          st->cts.fire();
                          rt.notify_pe(requester);
                        });
}

void HostPipelineTransport::on_rts(Ctx& ctx, CtrlMsg& msg, sim::Process& worker) {
  if (ctx.staging_busy()) {
    ctx.deferred_rts().push_back(msg);
    return;
  }
  grant_cts(ctx, msg, worker);
}

void HostPipelineTransport::rendezvous_put(Ctx& ctx, const RmaOp& op) {
  ctx.count_protocol(Protocol::kRendezvous, op.bytes);
  const int me = ctx.my_pe();
  const int dst = op.target_pe;
  Runtime& rt = rt_;

  auto st = std::make_shared<RndvState>();
  st->total = op.bytes;
  st->requester = me;

  CtrlMsg rts;
  rts.kind = CtrlMsg::Kind::kRendezvousRts;
  rts.from = me;
  rts.remote = op.remote;
  rts.bytes = op.bytes;
  rts.state = st;
  rt_.ib().post_send(ctx.proc(), me, dst, 32, [&rt, dst, rts] {
    rt.ctx(dst).rx().post(rts);
    rt.ctx(dst).notify_progress();
  });
  ctx.wait_for([&] { return st->cts.done(); });

  const std::size_t chunk = rt_.tuning().pipeline_chunk;
  std::byte* bounce = op.local_is_device ? ctx.bounce(2 * chunk) : nullptr;
  sim::CompletionPtr slot_comp[2];
  std::vector<sim::CompletionPtr> chunk_comps;
  auto* local_bytes = static_cast<const std::byte*>(op.local);
  for (std::size_t off = 0; off < op.bytes; off += chunk) {
    std::size_t c = std::min(chunk, op.bytes - off);
    const std::byte* buf;
    if (bounce != nullptr) {
      std::size_t s = (off / chunk) % 2;
      if (slot_comp[s]) slot_comp[s]->wait(ctx.proc());  // bounce slot reusable
      rt_.cuda().memcpy_sync(ctx.proc(), bounce + s * chunk, local_bytes + off, c);
      buf = bounce + s * chunk;
    } else {
      buf = local_bytes + off;
    }
    auto data_post = [this, &ctx, me, buf, dst, st, off, c] {
      return rt_.ib().rdma_write(ctx.proc(), me, buf, dst, st->staging + off,
                                    c);
    };
    if (rt_.faults_enabled() || !rt_.ib().in_order_delivery()) {
      // Chunk bytes must be in target staging before the chunk notification
      // (the target copies out of staging on receipt). Serializes the
      // pipeline, but only under a fault plan or a relaxed-ordering
      // transport, where the wire's FIFO can't sequence write vs. notify.
      // The wait also makes the bounce slot immediately reusable, so the
      // slot_comp bookkeeping of the pipelined branch is unnecessary here.
      ctx.await_reliable(ctx.proc(), data_post(), data_post);
    } else {
      auto comp = data_post();
      if (bounce != nullptr) slot_comp[(off / chunk) % 2] = comp;
      chunk_comps.push_back(comp);
      ctx.track(std::move(comp));
    }
    CtrlMsg chunk_msg;
    chunk_msg.kind = CtrlMsg::Kind::kRendezvousChunk;
    chunk_msg.from = me;
    chunk_msg.remote = op.remote;
    chunk_msg.bytes = c;
    chunk_msg.offset = off;
    chunk_msg.state = st;
    rt_.ib().post_send(ctx.proc(), me, dst, 0, [&rt, dst, chunk_msg] {
      rt.ctx(dst).rx().post(chunk_msg);
      rt.ctx(dst).notify_progress();
    });
  }
  ctx.track(st->done);
  if (op.blocking && bounce == nullptr) {
    // Host source: the chunks read the user buffer at delivery time, so a
    // blocking put must wait for the data to leave it.
    for (auto& c : chunk_comps) c->wait(ctx.proc());
  }
}

void HostPipelineTransport::on_chunk(Ctx& ctx, CtrlMsg& msg,
                                     sim::Process& worker) {
  auto st = std::static_pointer_cast<RndvState>(msg.state);
  auto* dst = static_cast<std::byte*>(msg.remote) + msg.offset;
  bool dst_dev = rt_.cuda().attributes(dst).space == cudart::MemSpace::kDevice;
  if (dst_dev) {
    rt_.cuda().memcpy_sync(worker, dst, st->staging + msg.offset, msg.bytes);
  } else {
    detail::host_shm_copy_by(ctx, worker, dst, st->staging + msg.offset,
                             msg.bytes, -1);
  }
  st->copied += msg.bytes;
  if (st->copied < st->total) return;

  // Transfer complete: release staging, service a deferred RTS, notify.
  ctx.set_staging_busy(false);
  if (!ctx.deferred_rts().empty()) {
    CtrlMsg next = ctx.deferred_rts().front();
    ctx.deferred_rts().pop_front();
    grant_cts(ctx, next, worker);
  }
  if (msg.is_reply) {
    // We are the get requester: done locally.
    st->done->fire();
    ctx.notify_progress();
    return;
  }
  Runtime& rt = rt_;
  auto done = st->done;
  const int requester = st->requester;
  rt_.ib().post_send(worker, ctx.my_pe(), requester, 0,
                        [done, &rt, requester] {
                          done->fire();
                          rt.notify_pe(requester);
                        });
}

// ---------------------------------------------------------------------------
// inter-node get (request/response — target involved on both protocols)

void HostPipelineTransport::remote_request_get(Ctx& ctx, const RmaOp& op) {
  const int me = ctx.my_pe();
  const int target = op.target_pe;
  Runtime& rt = rt_;

  if (op.bytes <= rt_.tuning().eager_limit) {
    ctx.count_protocol(Protocol::kEager, op.bytes);
    auto done = std::make_shared<sim::Completion>();
    CtrlMsg req;
    req.kind = CtrlMsg::Kind::kEagerGetReq;
    req.from = me;
    req.local = op.local;
    req.remote = op.remote;
    req.bytes = op.bytes;
    req.state = done;
    rt_.ib().post_send(ctx.proc(), me, target, 32, [&rt, target, req] {
      rt.ctx(target).rx().post(req);
      rt.ctx(target).notify_progress();
    });
    if (op.blocking) {
      ctx.wait_for([&] { return done->done(); });
    } else {
      ctx.track(std::move(done));
    }
    return;
  }

  ctx.count_protocol(Protocol::kRendezvous, op.bytes);
  // Requester-side staging for the reverse pipeline.
  ctx.wait_for([&] { return !ctx.staging_busy(); });
  auto st = std::make_shared<RndvState>();
  st->total = op.bytes;
  st->requester = me;
  st->staging = ctx.rendezvous_staging(op.bytes);
  ctx.set_staging_busy(true);

  CtrlMsg req;
  req.kind = CtrlMsg::Kind::kRendezvousGetReq;
  req.from = me;
  req.local = op.local;   // final destination at the requester
  req.remote = op.remote; // source range at the target
  req.bytes = op.bytes;
  req.state = st;
  rt_.ib().post_send(ctx.proc(), me, target, 32, [&rt, target, req] {
    rt.ctx(target).rx().post(req);
    rt.ctx(target).notify_progress();
  });
  if (op.blocking) {
    ctx.wait_for([&] { return st->done->done(); });
  } else {
    ctx.track(st->done);
  }
}

void HostPipelineTransport::on_get_req(Ctx& ctx, CtrlMsg& msg,
                                       sim::Process& worker) {
  // TARGET side of a large get: pipeline D->H then RDMA into the
  // requester's staging, flagging each chunk.
  auto st = std::static_pointer_cast<RndvState>(msg.state);
  const int me = ctx.my_pe();
  const int requester = msg.from;
  Runtime& rt = rt_;
  const std::size_t chunk = rt_.tuning().pipeline_chunk;
  bool src_dev = rt_.cuda().attributes(msg.remote).space == cudart::MemSpace::kDevice;
  std::byte* bounce = src_dev ? ctx.bounce(2 * chunk) : nullptr;
  sim::CompletionPtr slot_comp[2];
  auto* src_bytes = static_cast<const std::byte*>(msg.remote);
  for (std::size_t off = 0; off < msg.bytes; off += chunk) {
    std::size_t c = std::min(chunk, msg.bytes - off);
    const std::byte* buf;
    if (bounce != nullptr) {
      std::size_t s = (off / chunk) % 2;
      if (slot_comp[s]) slot_comp[s]->wait(worker);
      rt_.cuda().memcpy_sync(worker, bounce + s * chunk, src_bytes + off, c);
      buf = bounce + s * chunk;
    } else {
      buf = src_bytes + off;
    }
    auto data_post = [this, &worker, me, buf, requester, st, off, c] {
      return rt_.ib().rdma_write(worker, me, buf, requester,
                                    st->staging + off, c);
    };
    if (rt_.faults_enabled() || !rt_.ib().in_order_delivery()) {
      ctx.await_reliable(worker, data_post(), data_post);
    } else {
      auto comp = data_post();
      if (bounce != nullptr) slot_comp[(off / chunk) % 2] = comp;
      ctx.track(std::move(comp));
    }

    CtrlMsg chunk_msg;
    chunk_msg.kind = CtrlMsg::Kind::kRendezvousChunk;
    chunk_msg.from = me;
    chunk_msg.remote = msg.local;  // requester's final destination
    chunk_msg.bytes = c;
    chunk_msg.offset = off;
    chunk_msg.is_reply = true;
    chunk_msg.state = st;
    rt_.ib().post_send(worker, me, requester, 0, [&rt, requester, chunk_msg] {
      rt.ctx(requester).rx().post(chunk_msg);
      rt.ctx(requester).notify_progress();
    });
  }
}

}  // namespace gdrshmem::core
