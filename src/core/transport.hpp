// The transport strategy interface: how put/get are mapped onto hardware.
#pragma once

#include <cstddef>
#include <string_view>

#include "core/ctrl.hpp"
#include "sim/engine.hpp"
#include "core/types.hpp"

namespace gdrshmem::core {

class Ctx;

/// One RMA operation, fully resolved: symmetric address already translated
/// to the target's copy, buffer locations classified via UVA.
struct RmaOp {
  int target_pe = -1;
  void* remote = nullptr;          // address in the target PE's heap
  Domain remote_domain = Domain::kHost;
  void* local = nullptr;           // local buffer (source of put / dest of get)
  bool local_is_device = false;
  std::size_t bytes = 0;
  bool same_node = false;
  /// Blocking call (put/get) vs non-blocking-implicit (put_nbi/get_nbi).
  bool blocking = true;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string_view name() const = 0;

  /// Put: move op.bytes from op.local into op.remote at op.target_pe.
  /// On return the source buffer is reusable iff op.blocking; remote
  /// completion is tracked in ctx's pending set (drained by quiet()).
  virtual void put(Ctx& ctx, const RmaOp& op) = 0;

  /// Get: move op.bytes from op.remote at op.target_pe into op.local.
  /// Blocking gets return with the data in place; non-blocking gets
  /// complete at quiet().
  virtual void get(Ctx& ctx, const RmaOp& op) = 0;

  /// Service one control message addressed to `ctx` (target-side work).
  /// `worker` is the simulated process executing the work — the PE itself
  /// inside its progress engine, or its service thread when enabled.
  virtual void handle_ctrl(Ctx& ctx, CtrlMsg& msg, sim::Process& worker) = 0;
};

}  // namespace gdrshmem::core
