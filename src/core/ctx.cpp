#include "core/ctx.hpp"

#include <algorithm>
#include <cstring>

namespace gdrshmem::core {

using sim::Duration;

// ---------------------------------------------------------------------------
// Construction

Ctx::Ctx(Runtime& rt, int pe)
    : rt_(&rt),
      pe_(pe),
      stream_(rt.cluster().placement(pe).node, rt.cluster().placement(pe).gpu),
      coll_layout_(coll::SyncLayout::make(rt.num_pes(), rt.tuning(),
                                          rt.options().host_heap_bytes)),
      world_team_(0, 1, rt.num_pes(), pe, /*slot=*/0) {
  // Reserve the collectives sync pool — identical first allocation on every
  // PE. The heap is zero-initialized, so every flag starts below any
  // generation-tagged value the engine will ever wait for.
  coll_pool_ = static_cast<std::byte*>(
      rt_->heap(pe_, Domain::kHost).allocate(coll_layout_.pool_bytes()));

  const Tuning& t = rt.tuning();
  bounce_.resize(2 * t.pipeline_chunk);
  rt.verbs().reg_cache().register_at_init(pe_, bounce_.data(), bounce_.size());
  inline_ring_.resize(kInlineSlots * std::max<std::size_t>(t.inline_put_limit, 8));
  inline_comps_.resize(kInlineSlots);
  rt.verbs().reg_cache().register_at_init(pe_, inline_ring_.data(),
                                          inline_ring_.size());
}

Ctx::~Ctx() = default;

sim::Process& Ctx::proc() {
  if (proc_ == nullptr) {
    throw ShmemError("OpenSHMEM calls are only valid inside Runtime::run");
  }
  return *proc_;
}

sim::Time Ctx::now() { return rt_->engine().now(); }

// ---------------------------------------------------------------------------
// Symmetric memory

void* Ctx::shmalloc(std::size_t bytes, Domain domain) {
  rt_->check_symmetric_alloc(alloc_seq_++, bytes, domain);
  void* p = rt_->heap(pe_, domain).allocate(bytes);
  barrier_all();  // shmalloc is collective
  return p;
}

void Ctx::shfree(void* p) {
  barrier_all();  // nobody may still be targeting the block
  // Freeing from whichever heap owns the pointer.
  for (Domain d : {Domain::kHost, Domain::kGpu, Domain::kPmem}) {
    if (rt_->heap(pe_, d).contains(p)) {
      rt_->heap(pe_, d).deallocate(p);
      return;
    }
  }
  throw ShmemError("shfree of a non-symmetric pointer");
}

void* Ctx::shmem_ptr(const void* sym, int pe) {
  Domain dom;
  void* remote = rt_->translate(sym, pe_, pe, 1, &dom);
  if (dom == Domain::kHost && rt_->cluster().same_node(pe_, pe)) return remote;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Operation accounting

Ctx::OpHists& Ctx::op_hists(TraceEvent::Kind kind, Protocol proto) {
  OpHists& slot = op_hists_[static_cast<std::size_t>(kind)]
                           [static_cast<std::size_t>(proto)];
  if (slot.bytes == nullptr) {
    std::string suffix = std::string(to_string(kind)) + "/" + to_string(proto);
    Metrics& m = rt_->metrics();
    slot.bytes = &m.histogram("op_bytes/" + suffix);
    slot.latency = &m.histogram("op_latency_ns/" + suffix);
  }
  return slot;
}

void Ctx::count_protocol(Protocol proto, std::size_t bytes) {
  rt_->stats().count(proto, bytes);
  last_protocol_ = proto;
  op_hists(op_kind_, proto).bytes->record(bytes);
}

void Ctx::finish_op(TraceEvent::Kind kind, int target_pe, std::size_t bytes,
                    sim::Time t0) {
  sim::Time t1 = now();
  if (last_protocol_ != Protocol::kCount_) {
    op_hists(kind, last_protocol_)
        .latency->record(static_cast<std::uint64_t>((t1 - t0).count_ns()));
  }
  if (rt_->tracer().enabled()) {
    rt_->tracer().record(
        TraceEvent{pe_, target_pe, kind, last_protocol_, bytes, t0, t1});
  }
}

// ---------------------------------------------------------------------------
// RMA entry points

RmaOp Ctx::make_op(void* remote_sym, void* local, std::size_t n, int pe,
                   bool blocking) {
  if (pe < 0 || pe >= n_pes()) throw ShmemError("target PE out of range");
  RmaOp op;
  op.target_pe = pe;
  Domain dom;
  op.remote = rt_->translate(remote_sym, pe_, pe, n, &dom);
  op.remote_domain = dom;
  op.local = local;
  op.local_is_device =
      rt_->cuda().attributes(local).space == cudart::MemSpace::kDevice;
  op.bytes = n;
  op.same_node = rt_->cluster().same_node(pe_, pe);
  op.blocking = blocking;
  return op;
}

void Ctx::putmem(void* dst_sym, const void* src, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().puts++;
  op_kind_ = TraceEvent::Kind::kPut;
  sim::Time t0 = now();
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(dst_sym, const_cast<void*>(src), n, pe, /*blocking=*/true);
  rt_->transport().put(*this, op);
  finish_op(TraceEvent::Kind::kPut, pe, n, t0);
}

void Ctx::putmem_nbi(void* dst_sym, const void* src, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().puts++;
  op_kind_ = TraceEvent::Kind::kPut;
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(dst_sym, const_cast<void*>(src), n, pe, /*blocking=*/false);
  rt_->transport().put(*this, op);
}

void Ctx::getmem(void* dst, const void* src_sym, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().gets++;
  op_kind_ = TraceEvent::Kind::kGet;
  sim::Time t0 = now();
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(const_cast<void*>(src_sym), dst, n, pe, /*blocking=*/true);
  rt_->transport().get(*this, op);
  finish_op(TraceEvent::Kind::kGet, pe, n, t0);
}

void Ctx::getmem_nbi(void* dst, const void* src_sym, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().gets++;
  op_kind_ = TraceEvent::Kind::kGet;
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(const_cast<void*>(src_sym), dst, n, pe, /*blocking=*/false);
  rt_->transport().get(*this, op);
}

void Ctx::put_sync(void* dst_sym, const void* src, std::size_t n, int pe) {
  putmem(dst_sym, src, n, pe);
  quiet();
}

void Ctx::quiet() {
  if (!rt_->faults_enabled()) {
    // Healthy fabric: completions only ever fire successfully.
    wait_for([&] {
      std::erase_if(pending_, [](const PendingOp& p) { return p.comp->done(); });
      return pending_.empty();
    });
  } else {
    wait_for([&] {
      recover_pending();
      std::erase_if(pending_, [](const PendingOp& p) { return p.comp->ok(); });
      return pending_.empty();
    });
  }
  snapshots_.clear();
}

sim::Duration Ctx::replay_backoff(int replays) const {
  const Tuning& t = rt_->tuning();
  int exp = std::min(replays - 1, 16);
  double us = t.replay_backoff_base_us * static_cast<double>(1u << exp);
  return Duration::us(std::min(us, t.replay_backoff_cap_us));
}

void Ctx::recover_pending() {
  for (PendingOp& p : pending_) {
    if (!p.comp->failed()) continue;
    if (!p.repost) {
      throw ShmemError("pe " + std::to_string(pe_) +
                       ": non-replayable operation failed permanently");
    }
    if (++p.replays > rt_->tuning().max_sw_replays) {
      throw ShmemError("pe " + std::to_string(pe_) +
                       ": operation still failing after " +
                       std::to_string(rt_->tuning().max_sw_replays) +
                       " software replays");
    }
    proc().delay(replay_backoff(p.replays));
    rt_->faults().on_event(sim::FaultEvent::kSwReplay, pe_);
    p.comp = p.repost();
  }
}

sim::CompletionPtr Ctx::await_reliable(
    sim::Process& worker, sim::CompletionPtr comp,
    const std::function<sim::CompletionPtr()>& repost) {
  comp->wait(worker);
  if (!rt_->faults_enabled()) return comp;
  int replays = 0;
  while (comp->failed()) {
    if (++replays > rt_->tuning().max_sw_replays) {
      throw ShmemError("pe " + std::to_string(pe_) +
                       ": operation still failing after " +
                       std::to_string(rt_->tuning().max_sw_replays) +
                       " software replays");
    }
    worker.delay(replay_backoff(replays));
    rt_->faults().on_event(sim::FaultEvent::kSwReplay, pe_);
    comp = repost();
    comp->wait(worker);
  }
  return comp;
}

void Ctx::progress() {
  while (auto m = rx_.try_receive()) {
    proc().delay(Duration::us(rt_->cluster().params().progress_wakeup_us));
    rt_->transport().handle_ctrl(*this, *m, proc());
  }
}

// ---------------------------------------------------------------------------
// Staging helpers

std::byte* Ctx::bounce(std::size_t min_bytes) {
  if (bounce_.size() < min_bytes) {
    bounce_.assign(min_bytes, std::byte{0});
    rt_->verbs().reg_cache().get_or_register(proc(), pe_, bounce_.data(),
                                             bounce_.size());
  }
  return bounce_.data();
}

std::pair<std::byte*, sim::CompletionPtr*> Ctx::inline_slot() {
  sim::CompletionPtr& comp = inline_comps_[inline_next_];
  if (comp && !comp->done()) comp->wait(proc());
  comp = nullptr;
  std::size_t slot = inline_ring_.size() / kInlineSlots;
  std::byte* p = inline_ring_.data() + inline_next_ * slot;
  inline_next_ = (inline_next_ + 1) % kInlineSlots;
  return {p, &comp};
}

std::byte* Ctx::eager_src_slot(int peer) {
  auto [it, inserted] = eager_src_slots_.try_emplace(peer);
  if (inserted) {
    it->second.resize(rt_->eager_slot_bytes());
    rt_->verbs().reg_cache().register_at_init(pe_, it->second.data(),
                                              it->second.size());
  }
  return it->second.data();
}

std::byte* Ctx::rendezvous_staging(std::size_t bytes) {
  return rendezvous_staging(bytes, proc());
}

std::byte* Ctx::rendezvous_staging(std::size_t bytes, sim::Process& worker) {
  if (rendezvous_staging_.size() < bytes) {
    rendezvous_staging_.assign(bytes, std::byte{0});
    rt_->verbs().reg_cache().get_or_register(worker, pe_,
                                             rendezvous_staging_.data(),
                                             rendezvous_staging_.size());
  }
  return rendezvous_staging_.data();
}

// ---------------------------------------------------------------------------
// CUDA-side helpers

void* Ctx::cuda_malloc(std::size_t bytes) {
  hw::PePlacement pl = rt_->cluster().placement(pe_);
  return rt_->cuda().malloc_device(pl.node, pl.gpu, bytes);
}

void Ctx::cuda_memcpy(void* dst, const void* src, std::size_t n) {
  rt_->cuda().memcpy_sync(proc(), dst, src, n);
}

void Ctx::launch_kernel(std::size_t cells, double per_cell_ns,
                        const std::function<void()>& body) {
  rt_->cuda().launch_kernel_sync(proc(), cells, per_cell_ns, body);
}

void Ctx::compute(sim::Duration d) {
  // The service-thread design steals CPU resources from the application
  // (Section III-C: "threads will consume half of the CPU resources").
  if (rt_->options().service_thread) {
    d = d * (1.0 + rt_->options().service_thread_compute_penalty);
  }
  proc().delay(d);
}

// ---------------------------------------------------------------------------
// Collectives: thin wrappers over the core::coll engine on TEAM_WORLD.

void Ctx::barrier_all() {
  quiet();
  rt_->stats().barriers++;
  coll::sync(*this, world_team_);
}

void Ctx::broadcastmem(void* dst_sym, const void* src_sym, std::size_t n,
                       int root) {
  coll::broadcast(*this, world_team_, dst_sym, src_sym, n, root);
}

void Ctx::fcollectmem(void* dst_sym, const void* src_sym, std::size_t nbytes) {
  coll::fcollect(*this, world_team_, dst_sym, src_sym, nbytes);
}

void Ctx::alltoallmem(void* dst_sym, const void* src_sym, std::size_t nbytes) {
  coll::alltoall(*this, world_team_, dst_sym, src_sym, nbytes);
}

void Ctx::record_collective(CollKind kind, CollAlgo algo, std::size_t bytes,
                            sim::Time t0) {
  sim::Time t1 = now();
  OpHists& h =
      coll_hists_[{static_cast<int>(kind), static_cast<int>(algo)}];
  if (h.bytes == nullptr) {
    std::string suffix = std::string(to_string(kind)) + "/" + to_string(algo);
    Metrics& m = rt_->metrics();
    h.bytes = &m.histogram("coll_bytes/" + suffix);
    h.latency = &m.histogram("coll_latency_ns/" + suffix);
  }
  h.bytes->record(bytes);
  h.latency->record(static_cast<std::uint64_t>((t1 - t0).count_ns()));
  if (rt_->tracer().enabled()) {
    TraceEvent::Kind k = TraceEvent::Kind::kCollBarrier;
    switch (kind) {
      case CollKind::kBarrier: k = TraceEvent::Kind::kCollBarrier; break;
      case CollKind::kBroadcast: k = TraceEvent::Kind::kCollBcast; break;
      case CollKind::kAllreduce: k = TraceEvent::Kind::kCollReduce; break;
      case CollKind::kFcollect: k = TraceEvent::Kind::kCollFcollect; break;
      case CollKind::kAlltoall: k = TraceEvent::Kind::kCollAlltoall; break;
      case CollKind::kCount_: break;
    }
    rt_->tracer().record(
        TraceEvent{pe_, /*target=*/-1, k, Protocol::kCount_, bytes, t0, t1});
  }
}

// ---------------------------------------------------------------------------
// Teams

Team* Ctx::team_split_strided(Team& parent, int start, int stride, int size) {
  if (size <= 0 || start < 0 || stride <= 0 ||
      start + (size - 1) * stride >= parent.n_pes()) {
    throw ShmemError("team_split_strided: triplet (" + std::to_string(start) +
                     ", " + std::to_string(stride) + ", " +
                     std::to_string(size) + ") does not fit a team of " +
                     std::to_string(parent.n_pes()));
  }
  const int off = parent.my_pe() - start;
  const bool member = off >= 0 && off % stride == 0 && off / stride < size;

  // Agree on a sync-pool slot: AND-allreduce of per-PE free masks over the
  // parent, using the parent block's control-plane reserve word (disjoint
  // from the workspace the allreduce itself stages through).
  auto* mask = reinterpret_cast<std::int64_t*>(
      coll_layout_.reserve(coll_pool_, parent.slot()));
  *mask = static_cast<std::int64_t>(~static_cast<std::uint64_t>(team_slots_used_));
  coll::allreduce(*this, parent, mask, mask, 1, ReduceOp::kBand,
                  ScalarType::kI64);
  const auto common_free = static_cast<std::uint64_t>(*mask);

  int slot = -1;
  for (int b = 1; b < coll::SyncLayout::kMaxTeams; ++b) {
    if (common_free & (1ull << b)) {
      slot = b;
      break;
    }
  }
  if (slot < 0) {
    // Identical outcome on every member: the mask is an allreduce result.
    throw ShmemError("team_split_strided: no free sync-pool slot (at most " +
                     std::to_string(coll::SyncLayout::kMaxTeams - 1) +
                     " concurrent teams per PE)");
  }

  Team* out = nullptr;
  if (member) {
    team_slots_used_ |= 1u << slot;
    // A fresh team restarts its generation counter at zero, so every flag
    // in the block must restart below it. Only members' blocks are ever
    // written by the new team's collectives, and only after this split
    // returns — which the closing parent sync orders after the memset.
    std::memset(coll_layout_.barrier_flags(coll_pool_, slot), 0,
                coll_layout_.flags_bytes());
    teams_.push_back(std::make_unique<Team>(
        parent.world_pe(start), parent.stride() * stride, size,
        /*my_idx=*/off / stride, slot));
    out = teams_.back().get();
  }
  coll::sync(*this, parent);
  return out;
}

void Ctx::team_destroy(Team* team) {
  if (team == nullptr) return;
  if (team->is_world()) throw ShmemError("cannot destroy the world team");
  coll::sync(*this, *team);  // every member done with the team's collectives
  team_slots_used_ &= ~(1u << team->slot());
  std::erase_if(teams_,
                [team](const std::unique_ptr<Team>& t) { return t.get() == team; });
}

}  // namespace gdrshmem::core
