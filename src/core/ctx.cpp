#include "core/ctx.hpp"

#include <algorithm>
#include <cstring>

namespace gdrshmem::core {

using sim::Duration;

// ---------------------------------------------------------------------------
// Runtime-internal synchronization region: the first symmetric allocation of
// every host heap, used by barrier / broadcast / reduce / collect.

struct Ctx::SyncRegion {
  static constexpr int kRounds = 32;  // supports up to 2^32 PEs
  static constexpr std::size_t kScratchBytes = 256 * 1024;

  std::uint64_t barrier_flags[kRounds];
  std::uint64_t bcast_flag;
  std::uint64_t pad_;  // keep the tail 16-byte aligned

  std::uint64_t* coll_flags() { return reinterpret_cast<std::uint64_t*>(this + 1); }
  std::byte* scratch(int np) {
    return reinterpret_cast<std::byte*>(coll_flags() + np);
  }
  static std::size_t bytes(int np) {
    return sizeof(SyncRegion) + sizeof(std::uint64_t) * static_cast<std::size_t>(np) +
           kScratchBytes;
  }
};

Ctx::SyncRegion& Ctx::sync_region(int pe) {
  return *reinterpret_cast<SyncRegion*>(rt_->heap(pe, Domain::kHost).base());
}

// ---------------------------------------------------------------------------
// Construction

Ctx::Ctx(Runtime& rt, int pe)
    : rt_(&rt),
      pe_(pe),
      stream_(rt.cluster().placement(pe).node, rt.cluster().placement(pe).gpu) {
  // Reserve the sync region — identical first allocation on every PE.
  rt_->heap(pe_, Domain::kHost).allocate(SyncRegion::bytes(rt.num_pes()));

  const Tuning& t = rt.tuning();
  bounce_.resize(2 * t.pipeline_chunk);
  rt.verbs().reg_cache().register_at_init(pe_, bounce_.data(), bounce_.size());
  inline_ring_.resize(kInlineSlots * std::max<std::size_t>(t.inline_put_limit, 8));
  inline_comps_.resize(kInlineSlots);
  rt.verbs().reg_cache().register_at_init(pe_, inline_ring_.data(),
                                          inline_ring_.size());
}

Ctx::~Ctx() = default;

sim::Process& Ctx::proc() {
  if (proc_ == nullptr) {
    throw ShmemError("OpenSHMEM calls are only valid inside Runtime::run");
  }
  return *proc_;
}

sim::Time Ctx::now() { return rt_->engine().now(); }

// ---------------------------------------------------------------------------
// Symmetric memory

void* Ctx::shmalloc(std::size_t bytes, Domain domain) {
  rt_->check_symmetric_alloc(alloc_seq_++, bytes, domain);
  void* p = rt_->heap(pe_, domain).allocate(bytes);
  barrier_all();  // shmalloc is collective
  return p;
}

void Ctx::shfree(void* p) {
  barrier_all();  // nobody may still be targeting the block
  // Freeing from whichever heap owns the pointer.
  for (Domain d : {Domain::kHost, Domain::kGpu}) {
    if (rt_->heap(pe_, d).contains(p)) {
      rt_->heap(pe_, d).deallocate(p);
      return;
    }
  }
  throw ShmemError("shfree of a non-symmetric pointer");
}

void* Ctx::shmem_ptr(const void* sym, int pe) {
  Domain dom;
  void* remote = rt_->translate(sym, pe_, pe, 1, &dom);
  if (dom == Domain::kHost && rt_->cluster().same_node(pe_, pe)) return remote;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Operation accounting

Ctx::OpHists& Ctx::op_hists(TraceEvent::Kind kind, Protocol proto) {
  OpHists& slot = op_hists_[static_cast<std::size_t>(kind)]
                           [static_cast<std::size_t>(proto)];
  if (slot.bytes == nullptr) {
    std::string suffix = std::string(to_string(kind)) + "/" + to_string(proto);
    Metrics& m = rt_->metrics();
    slot.bytes = &m.histogram("op_bytes/" + suffix);
    slot.latency = &m.histogram("op_latency_ns/" + suffix);
  }
  return slot;
}

void Ctx::count_protocol(Protocol proto, std::size_t bytes) {
  rt_->stats().count(proto, bytes);
  last_protocol_ = proto;
  op_hists(op_kind_, proto).bytes->record(bytes);
}

void Ctx::finish_op(TraceEvent::Kind kind, int target_pe, std::size_t bytes,
                    sim::Time t0) {
  sim::Time t1 = now();
  if (last_protocol_ != Protocol::kCount_) {
    op_hists(kind, last_protocol_)
        .latency->record(static_cast<std::uint64_t>((t1 - t0).count_ns()));
  }
  if (rt_->tracer().enabled()) {
    rt_->tracer().record(
        TraceEvent{pe_, target_pe, kind, last_protocol_, bytes, t0, t1});
  }
}

// ---------------------------------------------------------------------------
// RMA entry points

RmaOp Ctx::make_op(void* remote_sym, void* local, std::size_t n, int pe,
                   bool blocking) {
  if (pe < 0 || pe >= n_pes()) throw ShmemError("target PE out of range");
  RmaOp op;
  op.target_pe = pe;
  Domain dom;
  op.remote = rt_->translate(remote_sym, pe_, pe, n, &dom);
  op.remote_domain = dom;
  op.local = local;
  op.local_is_device =
      rt_->cuda().attributes(local).space == cudart::MemSpace::kDevice;
  op.bytes = n;
  op.same_node = rt_->cluster().same_node(pe_, pe);
  op.blocking = blocking;
  return op;
}

void Ctx::putmem(void* dst_sym, const void* src, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().puts++;
  op_kind_ = TraceEvent::Kind::kPut;
  sim::Time t0 = now();
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(dst_sym, const_cast<void*>(src), n, pe, /*blocking=*/true);
  rt_->transport().put(*this, op);
  finish_op(TraceEvent::Kind::kPut, pe, n, t0);
}

void Ctx::putmem_nbi(void* dst_sym, const void* src, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().puts++;
  op_kind_ = TraceEvent::Kind::kPut;
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(dst_sym, const_cast<void*>(src), n, pe, /*blocking=*/false);
  rt_->transport().put(*this, op);
}

void Ctx::getmem(void* dst, const void* src_sym, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().gets++;
  op_kind_ = TraceEvent::Kind::kGet;
  sim::Time t0 = now();
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(const_cast<void*>(src_sym), dst, n, pe, /*blocking=*/true);
  rt_->transport().get(*this, op);
  finish_op(TraceEvent::Kind::kGet, pe, n, t0);
}

void Ctx::getmem_nbi(void* dst, const void* src_sym, std::size_t n, int pe) {
  if (n == 0) return;
  rt_->stats().gets++;
  op_kind_ = TraceEvent::Kind::kGet;
  proc().delay(Duration::us(rt_->cluster().params().shmem_sw_overhead_us));
  RmaOp op = make_op(const_cast<void*>(src_sym), dst, n, pe, /*blocking=*/false);
  rt_->transport().get(*this, op);
}

void Ctx::put_sync(void* dst_sym, const void* src, std::size_t n, int pe) {
  putmem(dst_sym, src, n, pe);
  quiet();
}

void Ctx::quiet() {
  if (!rt_->faults_enabled()) {
    // Healthy fabric: completions only ever fire successfully.
    wait_for([&] {
      std::erase_if(pending_, [](const PendingOp& p) { return p.comp->done(); });
      return pending_.empty();
    });
  } else {
    wait_for([&] {
      recover_pending();
      std::erase_if(pending_, [](const PendingOp& p) { return p.comp->ok(); });
      return pending_.empty();
    });
  }
  snapshots_.clear();
}

sim::Duration Ctx::replay_backoff(int replays) const {
  const Tuning& t = rt_->tuning();
  int exp = std::min(replays - 1, 16);
  double us = t.replay_backoff_base_us * static_cast<double>(1u << exp);
  return Duration::us(std::min(us, t.replay_backoff_cap_us));
}

void Ctx::recover_pending() {
  for (PendingOp& p : pending_) {
    if (!p.comp->failed()) continue;
    if (!p.repost) {
      throw ShmemError("pe " + std::to_string(pe_) +
                       ": non-replayable operation failed permanently");
    }
    if (++p.replays > rt_->tuning().max_sw_replays) {
      throw ShmemError("pe " + std::to_string(pe_) +
                       ": operation still failing after " +
                       std::to_string(rt_->tuning().max_sw_replays) +
                       " software replays");
    }
    proc().delay(replay_backoff(p.replays));
    rt_->faults().on_event(sim::FaultEvent::kSwReplay, pe_);
    p.comp = p.repost();
  }
}

sim::CompletionPtr Ctx::await_reliable(
    sim::Process& worker, sim::CompletionPtr comp,
    const std::function<sim::CompletionPtr()>& repost) {
  comp->wait(worker);
  if (!rt_->faults_enabled()) return comp;
  int replays = 0;
  while (comp->failed()) {
    if (++replays > rt_->tuning().max_sw_replays) {
      throw ShmemError("pe " + std::to_string(pe_) +
                       ": operation still failing after " +
                       std::to_string(rt_->tuning().max_sw_replays) +
                       " software replays");
    }
    worker.delay(replay_backoff(replays));
    rt_->faults().on_event(sim::FaultEvent::kSwReplay, pe_);
    comp = repost();
    comp->wait(worker);
  }
  return comp;
}

void Ctx::progress() {
  while (auto m = rx_.try_receive()) {
    proc().delay(Duration::us(rt_->cluster().params().progress_wakeup_us));
    rt_->transport().handle_ctrl(*this, *m, proc());
  }
}

// ---------------------------------------------------------------------------
// Staging helpers

std::byte* Ctx::bounce(std::size_t min_bytes) {
  if (bounce_.size() < min_bytes) {
    bounce_.assign(min_bytes, std::byte{0});
    rt_->verbs().reg_cache().get_or_register(proc(), pe_, bounce_.data(),
                                             bounce_.size());
  }
  return bounce_.data();
}

std::pair<std::byte*, sim::CompletionPtr*> Ctx::inline_slot() {
  sim::CompletionPtr& comp = inline_comps_[inline_next_];
  if (comp && !comp->done()) comp->wait(proc());
  comp = nullptr;
  std::size_t slot = inline_ring_.size() / kInlineSlots;
  std::byte* p = inline_ring_.data() + inline_next_ * slot;
  inline_next_ = (inline_next_ + 1) % kInlineSlots;
  return {p, &comp};
}

std::byte* Ctx::eager_src_slot(int peer) {
  auto [it, inserted] = eager_src_slots_.try_emplace(peer);
  if (inserted) {
    it->second.resize(rt_->eager_slot_bytes());
    rt_->verbs().reg_cache().register_at_init(pe_, it->second.data(),
                                              it->second.size());
  }
  return it->second.data();
}

std::byte* Ctx::rendezvous_staging(std::size_t bytes) {
  return rendezvous_staging(bytes, proc());
}

std::byte* Ctx::rendezvous_staging(std::size_t bytes, sim::Process& worker) {
  if (rendezvous_staging_.size() < bytes) {
    rendezvous_staging_.assign(bytes, std::byte{0});
    rt_->verbs().reg_cache().get_or_register(worker, pe_,
                                             rendezvous_staging_.data(),
                                             rendezvous_staging_.size());
  }
  return rendezvous_staging_.data();
}

// ---------------------------------------------------------------------------
// CUDA-side helpers

void* Ctx::cuda_malloc(std::size_t bytes) {
  hw::PePlacement pl = rt_->cluster().placement(pe_);
  return rt_->cuda().malloc_device(pl.node, pl.gpu, bytes);
}

void Ctx::cuda_memcpy(void* dst, const void* src, std::size_t n) {
  rt_->cuda().memcpy_sync(proc(), dst, src, n);
}

void Ctx::launch_kernel(std::size_t cells, double per_cell_ns,
                        const std::function<void()>& body) {
  rt_->cuda().launch_kernel_sync(proc(), cells, per_cell_ns, body);
}

void Ctx::compute(sim::Duration d) {
  // The service-thread design steals CPU resources from the application
  // (Section III-C: "threads will consume half of the CPU resources").
  if (rt_->options().service_thread) {
    d = d * (1.0 + rt_->options().service_thread_compute_penalty);
  }
  proc().delay(d);
}

// ---------------------------------------------------------------------------
// Collectives

void Ctx::barrier_all() {
  quiet();
  rt_->stats().barriers++;
  ++barrier_gen_;
  const int np = n_pes();
  SyncRegion& mine = sync_region(pe_);
  for (int r = 0; (1 << r) < np; ++r) {
    int peer = (pe_ + (1 << r)) % np;
    std::uint64_t gen = barrier_gen_;
    putmem(&mine.barrier_flags[r], &gen, sizeof(gen), peer);
    wait_until<std::uint64_t>(&mine.barrier_flags[r], Cmp::kGe, gen);
  }
}

void Ctx::broadcastmem(void* dst_sym, const void* src_sym, std::size_t n,
                       int root) {
  const int np = n_pes();
  if (np == 1) return;
  ++bcast_gen_;
  SyncRegion& mine = sync_region(pe_);
  int vrank = (pe_ - root + np) % np;
  int mask = 1;
  while (mask < np) {
    if (vrank & mask) {
      wait_until<std::uint64_t>(&mine.bcast_flag, Cmp::kGe, bcast_gen_);
      break;
    }
    mask <<= 1;
  }
  const void* data = (pe_ == root) ? src_sym : dst_sym;
  mask >>= 1;
  while (mask > 0) {
    int peer_v = vrank + mask;
    if (peer_v < np) {
      int peer = (peer_v + root) % np;
      // Data strictly before the flag (they may ride different paths).
      put_sync(dst_sym, data, n, peer);
      putmem(&mine.bcast_flag, &bcast_gen_, sizeof(bcast_gen_), peer);
    }
    mask >>= 1;
  }
  // Broadcast must be synchronizing: bcast_flag has a *different writer*
  // per generation (the binomial parent depends on the root), so without a
  // barrier a later generation's flag from a fast PE could overtake this
  // generation's data and release a waiter early.
  barrier_all();
}

void Ctx::fcollectmem(void* dst_sym, const void* src_sym, std::size_t nbytes) {
  const int np = n_pes();
  ++coll_gen_;
  SyncRegion& mine = sync_region(pe_);
  auto* dst_bytes = static_cast<std::byte*>(dst_sym);
  // Own block (local copy, charged as a real copy).
  cuda_memcpy(dst_bytes + static_cast<std::size_t>(pe_) * nbytes, src_sym, nbytes);
  for (int i = 1; i < np; ++i) {
    int peer = (pe_ + i) % np;
    putmem(dst_bytes + static_cast<std::size_t>(pe_) * nbytes, src_sym, nbytes, peer);
  }
  quiet();  // all data acked before any flag is raised
  for (int i = 1; i < np; ++i) {
    int peer = (pe_ + i) % np;
    putmem(&mine.coll_flags()[pe_], &coll_gen_, sizeof(coll_gen_), peer);
  }
  for (int i = 0; i < np; ++i) {
    if (i == pe_) continue;
    wait_until<std::uint64_t>(&mine.coll_flags()[i], Cmp::kGe, coll_gen_);
  }
}

void Ctx::alltoallmem(void* dst_sym, const void* src_sym, std::size_t nbytes) {
  const int np = n_pes();
  ++coll_gen_;
  SyncRegion& mine = sync_region(pe_);
  auto* dst_bytes = static_cast<std::byte*>(dst_sym);
  auto* src_bytes = static_cast<const std::byte*>(src_sym);
  // Own block.
  cuda_memcpy(dst_bytes + static_cast<std::size_t>(pe_) * nbytes,
              src_bytes + static_cast<std::size_t>(pe_) * nbytes, nbytes);
  for (int i = 1; i < np; ++i) {
    int peer = (pe_ + i) % np;
    // Block `peer` of my src -> block `me` of peer's dst.
    putmem(dst_bytes + static_cast<std::size_t>(pe_) * nbytes,
           src_bytes + static_cast<std::size_t>(peer) * nbytes, nbytes, peer);
  }
  quiet();
  for (int i = 1; i < np; ++i) {
    int peer = (pe_ + i) % np;
    putmem(&mine.coll_flags()[pe_], &coll_gen_, sizeof(coll_gen_), peer);
  }
  for (int i = 0; i < np; ++i) {
    if (i == pe_) continue;
    wait_until<std::uint64_t>(&mine.coll_flags()[i], Cmp::kGe, coll_gen_);
  }
}

void Ctx::reduce_impl(void* dst, const void* src, std::size_t nelems, ReduceOp op,
                      ScalarType t) {
  const int np = n_pes();
  std::size_t elsize = (t == ScalarType::kF64 || t == ScalarType::kI64) ? 8 : 4;
  std::size_t nbytes = nelems * elsize;
  if (nbytes * static_cast<std::size_t>(np) > SyncRegion::kScratchBytes) {
    throw ShmemError("reduction exceeds the internal scratch region");
  }
  ++coll_gen_;
  SyncRegion& mine = sync_region(pe_);

  if (pe_ != 0) {
    put_sync(mine.scratch(np) + static_cast<std::size_t>(pe_) * nbytes, src, nbytes, 0);
    putmem(&mine.coll_flags()[pe_], &coll_gen_, sizeof(coll_gen_), 0);
  } else {
    std::memmove(dst, src, nbytes);  // own contribution (dst may alias src)
    for (int i = 1; i < np; ++i) {
      wait_until<std::uint64_t>(&mine.coll_flags()[i], Cmp::kGe, coll_gen_);
    }
    // Combine in PE order for determinism.
    auto reduce_one = [op](auto* acc, auto v) {
      switch (op) {
        case ReduceOp::kSum: *acc += v; break;
        case ReduceOp::kMin: *acc = v < *acc ? v : *acc; break;
        case ReduceOp::kMax: *acc = v > *acc ? v : *acc; break;
      }
    };
    auto apply = [&](const std::byte* block) {
      auto* d = static_cast<std::byte*>(dst);
      for (std::size_t e = 0; e < nelems; ++e) {
        switch (t) {
          case ScalarType::kF32:
            reduce_one(reinterpret_cast<float*>(d) + e,
                       reinterpret_cast<const float*>(block)[e]);
            break;
          case ScalarType::kF64:
            reduce_one(reinterpret_cast<double*>(d) + e,
                       reinterpret_cast<const double*>(block)[e]);
            break;
          case ScalarType::kI32:
            reduce_one(reinterpret_cast<std::int32_t*>(d) + e,
                       reinterpret_cast<const std::int32_t*>(block)[e]);
            break;
          case ScalarType::kI64:
            reduce_one(reinterpret_cast<std::int64_t*>(d) + e,
                       reinterpret_cast<const std::int64_t*>(block)[e]);
            break;
        }
      }
    };
    for (int i = 1; i < np; ++i) {
      apply(mine.scratch(np) + static_cast<std::size_t>(i) * nbytes);
    }
    // Charge the combine like a kernel-free CPU pass.
    proc().delay(Duration::ns(static_cast<std::int64_t>(
        static_cast<double>(nbytes) * (np - 1) * 0.25)));
  }
  broadcastmem(dst, dst, nbytes, 0);
}

}  // namespace gdrshmem::core
