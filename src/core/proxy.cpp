#include "core/proxy.hpp"

#include "core/ctx.hpp"
#include "core/device_api.hpp"
#include "core/protocol_selector.hpp"
#include "core/runtime.hpp"

namespace gdrshmem::core {

using sim::Duration;

ProxyDaemon::ProxyDaemon(Runtime& rt, int node, std::size_t staging_bytes)
    : rt_(rt), node_(node), staging_(staging_bytes) {
  // Proxy staging is registered under the node's service endpoint so PEs
  // can RDMA-write into it.
  rt_.verbs().reg_cache().register_at_init(endpoint(), staging_.data(),
                                           staging_.size());
}

int ProxyDaemon::endpoint() const { return rt_.cluster().service_endpoint(node_); }

void ProxyDaemon::start() {
  proc_ = &rt_.engine().spawn(
      "proxy-node" + std::to_string(node_),
      [this](sim::Process& self) {
        // Map every local PE's GPU heap once, at startup (III-C: "the IPC
        // mapping is performed only during the heap creation").
        for (int pe = 0; pe < rt_.num_pes(); ++pe) {
          if (rt_.cluster().placement(pe).node == node_) {
            rt_.map_peer_gpu_heap(self, endpoint(), pe);
          }
        }
        serve(self);
      },
      /*daemon=*/true);
}

void ProxyDaemon::crash() {
  if (proc_ == nullptr) return;  // already down
  rt_.faults().on_event(sim::FaultEvent::kProxyCrash, node_);
  rt_.engine().kill(*proc_);
  proc_ = nullptr;
  rt_.engine().schedule_after(
      Duration::us(rt_.faults().plan().proxy_restart_us),
      [this] { restart(); });
}

void ProxyDaemon::restart() {
  // Everything queued or half-served at crash time is lost: requesters hold
  // per-stage deadlines and reissue with fresh transfer state. The GPU heap
  // IPC mappings are re-established by start() (cached, so effectively
  // free the second time).
  mb_.clear();
  stash_.clear();
  ++restarts_;
  rt_.faults().on_event(sim::FaultEvent::kProxyRestart, node_);
  start();
}

void ProxyDaemon::serve(sim::Process& self) {
  while (true) {
    CtrlMsg msg;
    if (!stash_.empty()) {
      msg = stash_.front();
      stash_.pop_front();
    } else {
      msg = mb_.receive(self);
    }
    self.delay(Duration::us(rt_.cluster().params().progress_wakeup_us));
    // Requests still waiting behind the one we just picked up (the gauge
    // keeps the peak, so bursts are visible in the report).
    rt_.metrics()
        .gauge("proxy/queue_depth")
        .set(mb_.size() + stash_.size());
    switch (msg.kind) {
      case CtrlMsg::Kind::kProxyGet:
        do_get(self, msg);
        break;
      case CtrlMsg::Kind::kProxyPutReq:
        do_put(self, msg);
        break;
      case CtrlMsg::Kind::kDeviceCmd:
        do_device_cmd(self, msg);
        break;
      case CtrlMsg::Kind::kProxyPutFin:
        if (rt_.faults_enabled()) {
          // A window notification for a transfer this (restarted) daemon no
          // longer knows about — the requester has already timed out and
          // reissued. Drop it.
          rt_.faults().on_event(sim::FaultEvent::kStaleCtrlDrop, node_);
          break;
        }
        [[fallthrough]];
      default:
        throw ShmemError("proxy: unexpected control message");
    }
  }
}

void ProxyDaemon::do_get(sim::Process& self, CtrlMsg& msg) {
  // Reverse pipeline GDR write (Fig 5): IPC-copy D->H out of the local PE's
  // GPU heap into proxy staging, RDMA-write chunks to the requester. The
  // owning PE never participates.
  ++gets_served_;
  auto st = std::static_pointer_cast<ProxyGetState>(msg.state);
  const int requester = msg.from;
  const bool faulty = rt_.faults_enabled();
  const std::size_t chunk =
      std::min(rt_.tuning().pipeline_chunk, staging_.size() / 2);
  rt_.metrics()
      .gauge("proxy/staging_used_bytes")
      .set(std::min(2 * chunk, msg.bytes));
  auto* src = static_cast<const std::byte*>(msg.remote);
  auto* dst = static_cast<std::byte*>(msg.local);
  sim::CompletionPtr slot_comp[2];
  std::function<sim::CompletionPtr()> slot_repost[2];
  for (std::size_t off = 0; off < msg.bytes; off += chunk) {
    std::size_t c = std::min(chunk, msg.bytes - off);
    std::size_t s = (off / chunk) % 2;
    if (slot_comp[s]) {
      // Replay error completions while the slot still holds the chunk
      // (fault plans only; the repost closure reads the staging slot).
      if (faulty) {
        slot_comp[s] = rt_.ctx(requester).await_reliable(
            self, std::move(slot_comp[s]), slot_repost[s]);
      } else {
        slot_comp[s]->wait(self);
      }
    }
    rt_.cuda().memcpy_sync(self, staging_.data() + s * chunk, src + off, c);
    auto post = [this, &self, requester, s, chunk, dst, off, c] {
      return rt_.ib().rdma_write(self, endpoint(),
                                    staging_.data() + s * chunk, requester,
                                    dst + off, c);
    };
    slot_comp[s] = post();
    if (faulty) slot_repost[s] = std::move(post);
  }
  if (faulty) {
    // Drain both slots reliably: done must not fire before every chunk
    // actually landed in the requester's buffer.
    for (std::size_t s = 0; s < 2; ++s) {
      if (!slot_comp[s]) continue;
      rt_.ctx(requester).await_reliable(self, std::move(slot_comp[s]),
                                        slot_repost[s]);
    }
  } else if (msg.bytes > 0) {
    if (rt_.ib().in_order_delivery()) {
      // FIFO wire: the other slot's chunk was posted earlier to the same
      // peer, so the last chunk's completion implies it landed.
      std::size_t last_slot = ((msg.bytes + chunk - 1) / chunk - 1) % 2;
      if (slot_comp[last_slot]) slot_comp[last_slot]->wait(self);
    } else {
      // Relaxed ordering (srd): an earlier chunk can still be in flight
      // when the later one completes; done must wait for both slots.
      for (auto& comp : slot_comp) {
        if (comp) comp->wait(self);
      }
    }
  }
  Runtime& rt = rt_;
  rt_.ib().post_send(self, endpoint(), requester, 0, [st, &rt, requester] {
    st->done->fire();
    rt.notify_pe(requester);
  });
}

void ProxyDaemon::do_put(sim::Process& self, CtrlMsg& req) {
  // Staged put: grant our staging to the requester, then perform the final
  // H->D IPC copy for each window it streams in.
  ++puts_served_;
  auto st = std::static_pointer_cast<ProxyPutState>(req.state);
  const int requester = req.from;
  Runtime& rt = rt_;
  const std::size_t window = staging_.size();
  rt_.metrics()
      .gauge("proxy/staging_used_bytes")
      .set(std::min(window, req.bytes));
  rt_.ib().post_send(self, endpoint(), requester, 16,
                        [st, this, &rt, requester, window] {
                          st->staging = staging_.data();
                          st->window = window;
                          st->cts.fire();
                          rt.notify_pe(requester);
                        });

  std::size_t copied = 0;
  while (copied < req.bytes) {
    CtrlMsg m;
    if (!stash_.empty() && stash_.front().kind == CtrlMsg::Kind::kProxyPutFin &&
        stash_.front().state == req.state) {
      m = stash_.front();
      stash_.pop_front();
    } else if (rt_.faults_enabled()) {
      // Timed receive at twice the requester's per-stage timeout: if the
      // requester gave up on this transfer (it saw us crash and reissued,
      // or died itself) the window notifications stop coming and we must
      // not serve this orphan forever. Requesters always time out first,
      // so an abort here can never strand a live requester.
      auto maybe = mb_.receive_until(
          self, rt_.engine().now() +
                    Duration::us(2 * rt_.tuning().proxy_timeout_us));
      if (!maybe) return;  // orphaned transfer: drop it, serve the next
      m = *maybe;
    } else {
      m = mb_.receive(self);
    }
    if (m.kind != CtrlMsg::Kind::kProxyPutFin || m.state != req.state) {
      stash_.push_back(m);  // another transfer's message: serve it later
      continue;
    }
    auto* dst = static_cast<std::byte*>(m.remote) + m.offset;
    rt_.cuda().memcpy_sync(self, dst, staging_.data(), m.bytes);
    copied += m.bytes;
    ++st->windows_done;
    rt_.notify_pe(requester);
  }
  rt_.ib().post_send(self, endpoint(), requester, 0, [st, &rt, requester] {
    st->done->fire();
    rt.notify_pe(requester);
  });
}

void ProxyDaemon::do_device_cmd(sim::Process& self, CtrlMsg& msg) {
  // Reverse offload: a local PE's kernel wrote this command descriptor into
  // our ring; execute it on the kernel's behalf. Protocol accounting runs on
  // the requester's Ctx (its op_kind_ was set by the issuing DeviceCtx), so
  // device-initiated ops land in the same tables as host-initiated ones.
  ++device_cmds_served_;
  auto cmd = std::static_pointer_cast<DeviceCmd>(msg.state);
  const int requester = cmd->requester;
  Ctx& rctx = rt_.ctx(requester);
  Runtime& rt = rt_;
  const bool faulty = rt_.faults_enabled();
  const RmaOp& op = cmd->rma;

  switch (cmd->op) {
    case DeviceCmd::Op::kAmoFadd:
    case DeviceCmd::Op::kAmoCswap: {
      rctx.count_protocol(Protocol::kAtomicHw, sizeof(std::uint64_t));
      std::uint64_t* result = cmd->amo_result.get();
      auto post = [this, &self, cmd, result] {
        if (cmd->op == DeviceCmd::Op::kAmoFadd) {
          return rt_.ib().atomic_fadd64(self, endpoint(),
                                           cmd->rma.target_pe, cmd->amo_word,
                                           cmd->amo_a, result);
        }
        return rt_.ib().atomic_cswap64(self, endpoint(), cmd->rma.target_pe,
                                          cmd->amo_word, cmd->amo_a,
                                          cmd->amo_b, result);
      };
      auto comp = post();
      if (faulty) {
        rctx.await_reliable(self, std::move(comp), post);
      } else {
        comp->wait(self);
      }
      break;
    }
    case DeviceCmd::Op::kPut:
    case DeviceCmd::Op::kGet: {
      const bool is_get = cmd->op == DeviceCmd::Op::kGet;
      const bool dev_leg =
          op.local_is_device || op.remote_domain == Domain::kGpu;
      if (op.same_node) {
        // Peer copy through our IPC mappings — one hop, no network.
        void* dst = is_get ? op.local : op.remote;
        const void* src = is_get ? op.remote : op.local;
        rctx.count_protocol(dev_leg ? Protocol::kIpcCopy : Protocol::kHostShm,
                            op.bytes);
        rt_.cuda().memcpy_sync(self, dst, src, op.bytes);
        rt_.notify_pe(op.target_pe);
      } else if (!rt_.selector().offload_staged(op, is_get, requester)) {
        // Small enough for one direct posting from this node's HCA, issued
        // under the requester's endpoint so registration and delivery match
        // a host-initiated call.
        rt_.verbs().reg_cache().get_or_register(self, requester, op.local,
                                                op.bytes);
        rctx.count_protocol(
            dev_leg ? Protocol::kDirectGdr : Protocol::kDirectRdma, op.bytes);
        auto post = [this, &self, requester, &op, is_get] {
          if (is_get) {
            return rt_.ib().rdma_read(self, requester, op.local,
                                         op.target_pe, op.remote, op.bytes);
          }
          return rt_.ib().rdma_write(self, requester, op.local,
                                        op.target_pe, op.remote, op.bytes);
        };
        auto comp = post();
        if (faulty) {
          rctx.await_reliable(self, std::move(comp), post);
        } else {
          comp->wait(self);
        }
      } else if (is_get) {
        staged_device_get(self, rctx, op);
      } else {
        staged_device_put(self, rctx, op);
      }
      break;
    }
  }
  // Completion notification: the CQ entry (or ring status word) the kernel
  // polls. Fires even for commands the requester already reissued — the
  // stale `done` is simply never looked at again.
  rt_.ib().post_send(self, endpoint(), requester, 0, [cmd, &rt, requester] {
    cmd->done->fire();
    rt.notify_pe(requester);
  });
}

void ProxyDaemon::staged_device_put(sim::Process& self, Ctx& rctx,
                                    const RmaOp& op) {
  // Large device-initiated put: D->H IPC chunks out of the requester's GPU
  // heap into our staging, RDMA-write each chunk out — the do_get pipeline
  // shape, running at the *source* node. The final write lands directly in
  // the target heap (a GDR leg when the target is GPU-resident).
  const bool faulty = rt_.faults_enabled();
  const std::size_t chunk =
      std::min(rt_.tuning().pipeline_chunk, staging_.size() / 2);
  rctx.count_protocol(Protocol::kProxyPut, op.bytes);
  rt_.metrics()
      .gauge("proxy/staging_used_bytes")
      .set(std::min(2 * chunk, op.bytes));
  auto* src = static_cast<const std::byte*>(op.local);
  auto* dst = static_cast<std::byte*>(op.remote);
  sim::CompletionPtr slot_comp[2];
  std::function<sim::CompletionPtr()> slot_repost[2];
  for (std::size_t off = 0; off < op.bytes; off += chunk) {
    std::size_t c = std::min(chunk, op.bytes - off);
    std::size_t s = (off / chunk) % 2;
    if (slot_comp[s]) {
      if (faulty) {
        slot_comp[s] =
            rctx.await_reliable(self, std::move(slot_comp[s]), slot_repost[s]);
      } else {
        slot_comp[s]->wait(self);
      }
    }
    rt_.cuda().memcpy_sync(self, staging_.data() + s * chunk, src + off, c);
    auto post = [this, &self, s, chunk, target = op.target_pe, dst, off, c] {
      return rt_.ib().rdma_write(self, endpoint(),
                                    staging_.data() + s * chunk, target,
                                    dst + off, c);
    };
    slot_comp[s] = post();
    if (faulty) slot_repost[s] = std::move(post);
  }
  // Drain both slots before signalling completion: done must imply every
  // byte is at its final destination.
  for (std::size_t s = 0; s < 2; ++s) {
    if (!slot_comp[s]) continue;
    if (faulty) {
      rctx.await_reliable(self, std::move(slot_comp[s]), slot_repost[s]);
    } else {
      slot_comp[s]->wait(self);
    }
  }
}

void ProxyDaemon::staged_device_get(sim::Process& self, Ctx& rctx,
                                    const RmaOp& op) {
  // Large device-initiated get: RDMA-read chunks into our staging, then
  // H->D IPC them into the requester's buffer. Reads into staging are
  // idempotent, so fault replays re-post in place.
  const int requester = rctx.my_pe();
  const bool faulty = rt_.faults_enabled();
  const std::size_t chunk =
      std::min(rt_.tuning().pipeline_chunk, staging_.size());
  rctx.count_protocol(Protocol::kProxyGet, op.bytes);
  rt_.metrics()
      .gauge("proxy/staging_used_bytes")
      .set(std::min(chunk, op.bytes));
  auto* src = static_cast<const std::byte*>(op.remote);
  auto* dst = static_cast<std::byte*>(op.local);
  for (std::size_t off = 0; off < op.bytes; off += chunk) {
    std::size_t c = std::min(chunk, op.bytes - off);
    auto post = [this, &self, target = op.target_pe, src, off, c] {
      return rt_.ib().rdma_read(self, endpoint(), staging_.data(), target,
                                   src + off, c);
    };
    auto comp = post();
    if (faulty) {
      rctx.await_reliable(self, std::move(comp), post);
    } else {
      comp->wait(self);
    }
    rt_.cuda().memcpy_sync(self, dst + off, staging_.data(), c);
  }
  rt_.notify_pe(requester);
}

}  // namespace gdrshmem::core
