#include "core/proxy.hpp"

#include "core/ctx.hpp"
#include "core/runtime.hpp"

namespace gdrshmem::core {

using sim::Duration;

ProxyDaemon::ProxyDaemon(Runtime& rt, int node, std::size_t staging_bytes)
    : rt_(rt), node_(node), staging_(staging_bytes) {
  // Proxy staging is registered under the node's service endpoint so PEs
  // can RDMA-write into it.
  rt_.verbs().reg_cache().register_at_init(endpoint(), staging_.data(),
                                           staging_.size());
}

int ProxyDaemon::endpoint() const { return rt_.cluster().service_endpoint(node_); }

void ProxyDaemon::start() {
  rt_.engine().spawn(
      "proxy-node" + std::to_string(node_),
      [this](sim::Process& self) {
        // Map every local PE's GPU heap once, at startup (III-C: "the IPC
        // mapping is performed only during the heap creation").
        for (int pe = 0; pe < rt_.num_pes(); ++pe) {
          if (rt_.cluster().placement(pe).node == node_) {
            rt_.map_peer_gpu_heap(self, endpoint(), pe);
          }
        }
        serve(self);
      },
      /*daemon=*/true);
}

void ProxyDaemon::serve(sim::Process& self) {
  while (true) {
    CtrlMsg msg;
    if (!stash_.empty()) {
      msg = stash_.front();
      stash_.pop_front();
    } else {
      msg = mb_.receive(self);
    }
    self.delay(Duration::us(rt_.cluster().params().progress_wakeup_us));
    switch (msg.kind) {
      case CtrlMsg::Kind::kProxyGet:
        do_get(self, msg);
        break;
      case CtrlMsg::Kind::kProxyPutReq:
        do_put(self, msg);
        break;
      default:
        throw ShmemError("proxy: unexpected control message");
    }
  }
}

void ProxyDaemon::do_get(sim::Process& self, CtrlMsg& msg) {
  // Reverse pipeline GDR write (Fig 5): IPC-copy D->H out of the local PE's
  // GPU heap into proxy staging, RDMA-write chunks to the requester. The
  // owning PE never participates.
  ++gets_served_;
  auto st = std::static_pointer_cast<ProxyGetState>(msg.state);
  const int requester = msg.from;
  const std::size_t chunk =
      std::min(rt_.tuning().pipeline_chunk, staging_.size() / 2);
  auto* src = static_cast<const std::byte*>(msg.remote);
  auto* dst = static_cast<std::byte*>(msg.local);
  sim::CompletionPtr slot_comp[2];
  sim::CompletionPtr last;
  for (std::size_t off = 0; off < msg.bytes; off += chunk) {
    std::size_t c = std::min(chunk, msg.bytes - off);
    std::size_t s = (off / chunk) % 2;
    if (slot_comp[s]) slot_comp[s]->wait(self);
    rt_.cuda().memcpy_sync(self, staging_.data() + s * chunk, src + off, c);
    auto comp = rt_.verbs().rdma_write(self, endpoint(), staging_.data() + s * chunk,
                                       requester, dst + off, c);
    slot_comp[s] = comp;
    last = std::move(comp);
  }
  if (last) last->wait(self);
  Runtime& rt = rt_;
  rt_.verbs().post_send(self, endpoint(), requester, 0, [st, &rt, requester] {
    st->done->fire();
    rt.notify_pe(requester);
  });
}

void ProxyDaemon::do_put(sim::Process& self, CtrlMsg& req) {
  // Staged put: grant our staging to the requester, then perform the final
  // H->D IPC copy for each window it streams in.
  ++puts_served_;
  auto st = std::static_pointer_cast<ProxyPutState>(req.state);
  const int requester = req.from;
  Runtime& rt = rt_;
  const std::size_t window = staging_.size();
  rt_.verbs().post_send(self, endpoint(), requester, 16,
                        [st, this, &rt, requester, window] {
                          st->staging = staging_.data();
                          st->window = window;
                          st->cts.fire();
                          rt.notify_pe(requester);
                        });

  std::size_t copied = 0;
  while (copied < req.bytes) {
    CtrlMsg m;
    if (!stash_.empty() && stash_.front().kind == CtrlMsg::Kind::kProxyPutFin &&
        stash_.front().state == req.state) {
      m = stash_.front();
      stash_.pop_front();
    } else {
      m = mb_.receive(self);
    }
    if (m.kind != CtrlMsg::Kind::kProxyPutFin || m.state != req.state) {
      stash_.push_back(m);  // another transfer's message: serve it later
      continue;
    }
    auto* dst = static_cast<std::byte*>(m.remote) + m.offset;
    rt_.cuda().memcpy_sync(self, dst, staging_.data(), m.bytes);
    copied += m.bytes;
    ++st->windows_done;
    rt_.notify_pe(requester);
  }
  rt_.verbs().post_send(self, endpoint(), requester, 0, [st, &rt, requester] {
    st->done->fire();
    rt.notify_pe(requester);
  });
}

}  // namespace gdrshmem::core
