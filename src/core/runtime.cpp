#include "core/runtime.hpp"

#include <cstring>

#include "core/ctx.hpp"
#include "core/device_api.hpp"
#include "core/protocol_selector.hpp"
#include "core/proxy.hpp"
#include "core/transports.hpp"

namespace gdrshmem::core {

Runtime::Runtime(const hw::ClusterConfig& cluster_cfg, const RuntimeOptions& opts)
    : opts_(opts),
      engine_(opts.sim_backend, opts.sim_queue),
      cluster_(cluster_cfg),
      cuda_(engine_, cluster_),
      verbs_(engine_, cluster_, cuda_),
      injector_(opts.faults) {
  const int np = cluster_.num_pes();

  engine_.set_batch_wakeups(opts_.sim_batch);
  if (opts_.trace) tracer_.enable();
  tracer_.set_capacity(opts_.trace_cap);

  ib::TransportConfig ib_cfg;
  ib_cfg.kind = opts_.ib_transport;
  ib_cfg.rails = opts_.ib_rails;
  ib_cfg.srq = opts_.ib_srq;
  ib_cfg.srd_seed = opts_.ib_srd_seed;
  ib_cfg.srd_jitter_us = opts_.ib_srd_jitter_us;
  ib_ = ib::make_transport(verbs_, ib_cfg);

  verbs_.set_fault_injector(&injector_);
  // Mirror fault/recovery events into the metrics registry and — when
  // enabled — the operation tracer.
  injector_.set_hook([this](sim::FaultEvent ev, int endpoint) {
    metrics_.counter(std::string("faults/") + sim::to_string(ev)).add();
    if (!tracer_.enabled()) return;
    TraceEvent::Kind kind;
    switch (ev) {
      case sim::FaultEvent::kRetransmit: kind = TraceEvent::Kind::kRetransmit; break;
      case sim::FaultEvent::kCompletionError: kind = TraceEvent::Kind::kError; break;
      case sim::FaultEvent::kSwReplay: kind = TraceEvent::Kind::kReplay; break;
      case sim::FaultEvent::kGdrFallback: kind = TraceEvent::Kind::kFallback; break;
      case sim::FaultEvent::kProxyCrash: kind = TraceEvent::Kind::kProxyCrash; break;
      case sim::FaultEvent::kProxyRestart: kind = TraceEvent::Kind::kProxyRestart; break;
      case sim::FaultEvent::kProxyReissue: kind = TraceEvent::Kind::kProxyReissue; break;
      case sim::FaultEvent::kStaleCtrlDrop: kind = TraceEvent::Kind::kStaleDrop; break;
      case sim::FaultEvent::kP2pRevoke: kind = TraceEvent::Kind::kRevoke; break;
      default: return;
    }
    TraceEvent ev_out;
    ev_out.pe = endpoint;
    ev_out.kind = kind;
    ev_out.start = ev_out.end = engine_.now();
    tracer_.record(ev_out);
  });

  // Symmetric heaps: one host + one GPU heap per PE, registered with the HCA
  // at init (III-A). make_unique<T[]> value-initializes, so heaps are zeroed.
  heaps_.reserve(static_cast<std::size_t>(np));
  for (int pe = 0; pe < np; ++pe) {
    hw::PePlacement pl = cluster_.placement(pe);
    host_heap_storage_.push_back(std::make_unique<std::byte[]>(opts_.host_heap_bytes));
    std::byte* host_base = host_heap_storage_.back().get();
    auto* gpu_base = static_cast<std::byte*>(
        cuda_.malloc_device(pl.node, pl.gpu, opts_.gpu_heap_bytes));
    std::memset(gpu_base, 0, opts_.gpu_heap_bytes);
    // Optional pmem heap (off by default): plain host memory in the model —
    // host-like on the wire — with durable semantics asserted by the
    // checkpoint service. Zero size leaves a null heap so contains() is
    // always false and shmalloc(kPmem) reports exhaustion.
    std::byte* pmem_base = nullptr;
    if (opts_.pmem_heap_bytes > 0) {
      pmem_heap_storage_.push_back(
          std::make_unique<std::byte[]>(opts_.pmem_heap_bytes));
      pmem_base = pmem_heap_storage_.back().get();
    }
    heaps_.push_back(PeHeaps{
        SymmetricHeap(Domain::kHost, host_base, opts_.host_heap_bytes),
        SymmetricHeap(Domain::kGpu, gpu_base, opts_.gpu_heap_bytes),
        SymmetricHeap(Domain::kPmem, pmem_base, opts_.pmem_heap_bytes)});
    verbs_.reg_cache().register_at_init(pe, host_base, opts_.host_heap_bytes);
    verbs_.reg_cache().register_at_init(pe, gpu_base, opts_.gpu_heap_bytes);
    if (pmem_base != nullptr) {
      verbs_.reg_cache().register_at_init(pe, pmem_base, opts_.pmem_heap_bytes);
    }
  }

  // Eager slot regions (baseline transport): one slot per source PE.
  const std::size_t slot = opts_.tuning.eager_limit;
  for (int pe = 0; pe < np; ++pe) {
    eager_storage_.push_back(
        std::make_unique<std::byte[]>(slot * static_cast<std::size_t>(np)));
    verbs_.reg_cache().register_at_init(pe, eager_storage_.back().get(),
                                        slot * static_cast<std::size_t>(np));
  }

  // Per-PE contexts. Each reserves the runtime-internal sync region as the
  // first (symmetric) allocation of its host heap.
  ctxs_.reserve(static_cast<std::size_t>(np));
  for (int pe = 0; pe < np; ++pe) {
    ctxs_.push_back(std::make_unique<Ctx>(*this, pe));
  }

  selector_ = std::make_unique<ProtocolSelector>(*this);

  switch (opts_.transport) {
    case TransportKind::kNaive:
      transport_ = std::make_unique<NaiveTransport>(*this);
      break;
    case TransportKind::kHostPipeline:
      transport_ = std::make_unique<HostPipelineTransport>(*this);
      break;
    case TransportKind::kEnhancedGdr:
      transport_ = std::make_unique<EnhancedGdrTransport>(*this);
      if (opts_.tuning.use_proxy) {
        for (int node = 0; node < cluster_.num_nodes(); ++node) {
          proxies_.push_back(std::make_unique<ProxyDaemon>(*this, node));
        }
      }
      break;
  }

  device_backend_ = make_device_backend(*this, opts_.device_backend);

  // Deliveries (RDMA data, atomics, ACKs) wake the owning PE's progress
  // engine; service-endpoint deliveries are bookkeeping only.
  verbs_.set_delivery_hook([this, np](int endpoint) {
    if (endpoint < np) ctx(endpoint).notify_progress();
  });
}

Runtime::~Runtime() { engine_.shutdown_daemons(); }

void Runtime::run(std::function<void(Ctx&)> program) {
  if (ran_) throw ShmemError("Runtime::run is single-shot; create a new Runtime");
  ran_ = true;
  for (auto& proxy : proxies_) proxy->start();
  if (faults_enabled()) {
    // Schedule the planned point faults. Flap windows and error rates need
    // no events — the injector answers them analytically per attempt.
    for (const auto& r : opts_.faults.revokes) {
      engine_.schedule_at(sim::Time::zero() + sim::Duration::us(r.at_us),
                          [this, node = r.node] {
                            if (node >= cluster_.num_nodes()) return;
                            cluster_.set_p2p_available(node, false);
                            injector_.on_event(sim::FaultEvent::kP2pRevoke, node);
                          });
    }
    for (const auto& c : opts_.faults.crashes) {
      engine_.schedule_at(sim::Time::zero() + sim::Duration::us(c.at_us),
                          [this, node = c.node] {
                            if (node >= static_cast<int>(proxies_.size())) return;
                            proxies_[static_cast<std::size_t>(node)]->crash();
                          });
    }
  }
  if (opts_.service_thread) {
    // One service thread per PE, draining its control mailbox concurrently
    // with (and racing) the PE's own progress engine.
    for (int pe = 0; pe < num_pes(); ++pe) {
      engine_.spawn(
          "svc-pe" + std::to_string(pe),
          [this, pe](sim::Process& self) {
            Ctx& c = ctx(pe);
            while (true) {
              CtrlMsg m = c.rx().receive(self);
              self.delay(sim::Duration::us(
                  cluster_.params().progress_wakeup_us));
              transport_->handle_ctrl(c, m, self);
              c.notify_progress();
            }
          },
          /*daemon=*/true);
    }
  }
  for (int pe = 0; pe < num_pes(); ++pe) {
    engine_.spawn("pe" + std::to_string(pe),
                  [this, pe, program](sim::Process& p) {
                    Ctx& c = ctx(pe);
                    c.proc_ = &p;
                    program(c);
                  });
  }
  engine_.run();
}

void* Runtime::translate(const void* sym, int owner_pe, int target_pe,
                         std::size_t n, Domain* domain_out) {
  auto& own = heaps_.at(static_cast<std::size_t>(owner_pe));
  auto& tgt = heaps_.at(static_cast<std::size_t>(target_pe));
  for (auto [mine, theirs] : {std::pair{&own.host, &tgt.host},
                              std::pair{&own.gpu, &tgt.gpu},
                              std::pair{&own.pmem, &tgt.pmem}}) {
    if (mine->contains(sym)) {
      std::size_t off = mine->offset_of(sym);
      if (off + n > mine->size()) {
        throw ShmemError("symmetric access overruns the heap");
      }
      if (domain_out) *domain_out = mine->domain();
      return theirs->base() + off;
    }
  }
  throw ShmemError("address is not symmetric (not in any heap of PE " +
                   std::to_string(owner_pe) + ")");
}

bool Runtime::gdr_inter_socket(int pe) const {
  hw::PePlacement pl = cluster_.placement(pe);
  return cluster_.node(pl.node).hcas.at(static_cast<std::size_t>(pl.hca)).socket !=
         pl.socket;
}

void* Runtime::eager_slot(int dst_pe, int src_pe) {
  return eager_storage_.at(static_cast<std::size_t>(dst_pe)).get() +
         static_cast<std::size_t>(src_pe) * opts_.tuning.eager_limit;
}

std::size_t Runtime::eager_slot_bytes() const { return opts_.tuning.eager_limit; }

std::byte* Runtime::map_peer_gpu_heap(sim::Process& proc, int opener_pe,
                                      int owner_pe) {
  auto& h = heaps_.at(static_cast<std::size_t>(owner_pe)).gpu;
  cudart::IpcHandle handle = cuda_.ipc_get_handle(h.base());
  hw::PePlacement pl = cluster_.placement(opener_pe);
  return static_cast<std::byte*>(
      cuda_.ipc_open_handle(proc, handle, pl.node, opener_pe));
}

void Runtime::notify_pe(int pe) { ctx(pe).notify_progress(); }

void Runtime::snapshot_metrics() {
  metrics_.counter("reg_cache/hits").set(verbs_.reg_cache().hits());
  metrics_.counter("reg_cache/misses").set(verbs_.reg_cache().misses());
  metrics_.counter("reg_cache/evictions").set(verbs_.reg_cache().evictions());
  metrics_.counter("reg_cache/grows").set(verbs_.reg_cache().grows());
  metrics_.counter("ib/ops_posted").set(verbs_.ops_posted());
  // Transport-layer diagnostics: the modeled per-endpoint QP footprint (for
  // the mesh the job would form) plus the per-kind activity counters.
  const int endpoints = num_pes() + cluster_.num_nodes();
  ib::QpFootprint fp = ib_->footprint(endpoints);
  metrics_.gauge("ib/qps_per_endpoint").set(fp.qps);
  metrics_.gauge("ib/qp_mem_bytes_per_endpoint").set(fp.total_bytes());
  metrics_.counter("ib/dc_reconnects").set(ib_->dc_reconnects());
  metrics_.counter("ib/ud_packets").set(ib_->ud_packets());
  metrics_.counter("ib/striped_ops").set(ib_->striped_ops());
  metrics_.counter("ib/srd/segments").set(ib_->srd_segments());
  metrics_.counter("ib/srd/ooo_deliveries").set(ib_->srd_ooo_deliveries());
  metrics_.gauge("ib/srd/reorder_bytes_hwm").set(ib_->srd_reorder_bytes_hwm());
  metrics_.gauge("ib/srd/reorder_entries_hwm")
      .set(ib_->srd_reorder_entries_hwm());
  if (proxies_enabled()) {
    std::uint64_t gets = 0, puts = 0, device_cmds = 0, restarts = 0;
    for (const auto& p : proxies_) {
      gets += p->gets_served();
      puts += p->puts_served();
      device_cmds += p->device_cmds_served();
      restarts += static_cast<std::uint64_t>(p->restarts());
    }
    metrics_.counter("proxy/gets_served").set(gets);
    metrics_.counter("proxy/puts_served").set(puts);
    metrics_.counter("proxy/device_cmds_served").set(device_cmds);
    metrics_.counter("proxy/restarts").set(restarts);
  }
  std::size_t host_used = 0, gpu_used = 0, pmem_used = 0;
  for (const PeHeaps& hs : heaps_) {
    host_used += hs.host.used();
    gpu_used += hs.gpu.used();
    pmem_used += hs.pmem.used();
  }
  metrics_.gauge("heap/host_used_bytes").set(host_used);
  metrics_.gauge("heap/gpu_used_bytes").set(gpu_used);
  metrics_.gauge("heap/pmem_used_bytes").set(pmem_used);
  // Engine scale diagnostics: queue/slot-pool high-water marks reveal the
  // peak burst size (O(PE count) on a barrier release); retained_bytes
  // should return to near zero after release-on-quiescence.
  metrics_.gauge("engine/queue_hwm").set(engine_.queue_size_hwm());
  metrics_.gauge("engine/slot_pool_hwm").set(engine_.slot_pool_hwm());
  metrics_.gauge("engine/retained_bytes").set(engine_.retained_bytes());
  metrics_.counter("trace/recorded").set(tracer_.size());
  metrics_.counter("trace/dropped").set(tracer_.dropped());
}

void Runtime::check_symmetric_alloc(std::uint64_t seq, std::size_t bytes, Domain d) {
  if (seq < alloc_log_.size()) {
    const AllocRecord& rec = alloc_log_[seq];
    if (rec.bytes != bytes || rec.domain != d) {
      throw ShmemError(
          "shmalloc divergence: PEs disagree on collective allocation #" +
          std::to_string(seq));
    }
  } else if (seq == alloc_log_.size()) {
    alloc_log_.push_back(AllocRecord{bytes, d});
  } else {
    throw ShmemError("shmalloc sequence number out of order");
  }
}

}  // namespace gdrshmem::core
