// Operation-level tracing: when enabled, every put/get/atomic records
// (PE, kind, protocol, bytes, target, start, end) in virtual time. Useful
// for understanding protocol selection and communication phases; exports
// CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace gdrshmem::core {

struct TraceEvent {
  int pe = -1;
  int target = -1;
  enum class Kind { kPut, kGet, kAtomic } kind = Kind::kPut;
  Protocol protocol = Protocol::kCount_;  // kCount_ = unknown/none
  std::size_t bytes = 0;
  sim::Time start;
  sim::Time end;
};

inline const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kPut: return "put";
    case TraceEvent::Kind::kGet: return "get";
    case TraceEvent::Kind::kAtomic: return "atomic";
  }
  return "?";
}

class Tracer {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }
  void record(TraceEvent ev) {
    if (enabled_) events_.push_back(ev);
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// One line per event: pe,kind,target,bytes,protocol,start_us,end_us.
  std::string to_csv() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace gdrshmem::core
