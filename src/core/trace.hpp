// Operation-level tracing: when enabled, every put/get/atomic records
// (PE, kind, protocol, bytes, target, start, end) in virtual time. Useful
// for understanding protocol selection and communication phases; exports
// CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace gdrshmem::core {

struct TraceEvent {
  int pe = -1;
  int target = -1;
  // kPut/kGet/kAtomic are operations; the remaining kinds are point-in-time
  // fault/recovery records (start == end) mirrored from the fault injector.
  enum class Kind {
    kPut,
    kGet,
    kAtomic,
    kRetransmit,    // tier-1 HCA retransmit of a failed attempt
    kError,         // retry envelope exhausted; CQ error surfaced
    kReplay,        // software re-posted an op after an error/timeout
    kFallback,      // op rerouted off a GDR protocol (P2P revoked)
    kProxyCrash,    // proxy daemon killed by the fault plan
    kProxyRestart,  // proxy daemon respawned
    kProxyReissue,  // requester timed out and re-sent a proxy request
    kStaleDrop,     // recovering proxy discarded a stale ctrl message
    kRevoke,        // P2P capability withdrawn on a node
  } kind = Kind::kPut;
  Protocol protocol = Protocol::kCount_;  // kCount_ = unknown/none
  std::size_t bytes = 0;
  sim::Time start;
  sim::Time end;
};

inline const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kPut: return "put";
    case TraceEvent::Kind::kGet: return "get";
    case TraceEvent::Kind::kAtomic: return "atomic";
    case TraceEvent::Kind::kRetransmit: return "retransmit";
    case TraceEvent::Kind::kError: return "cq-error";
    case TraceEvent::Kind::kReplay: return "sw-replay";
    case TraceEvent::Kind::kFallback: return "gdr-fallback";
    case TraceEvent::Kind::kProxyCrash: return "proxy-crash";
    case TraceEvent::Kind::kProxyRestart: return "proxy-restart";
    case TraceEvent::Kind::kProxyReissue: return "proxy-reissue";
    case TraceEvent::Kind::kStaleDrop: return "stale-drop";
    case TraceEvent::Kind::kRevoke: return "p2p-revoke";
  }
  return "?";
}

class Tracer {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }
  void record(TraceEvent ev) {
    if (enabled_) events_.push_back(ev);
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// One line per event: pe,kind,target,bytes,protocol,start_us,end_us.
  std::string to_csv() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace gdrshmem::core
