// Operation-level tracing: when enabled, every put/get/atomic records
// (PE, kind, protocol, bytes, target, start, end) in virtual time. Useful
// for understanding protocol selection and communication phases; exports
// CSV for external plotting and Chrome trace-event JSON for
// chrome://tracing / Perfetto.
//
// Storage is a bounded ring: the newest `capacity()` events are kept and a
// dropped-event counter records how many fell off the front
// (GDRSHMEM_TRACE_CAP sizes the ring). Recording is pure bookkeeping — it
// never schedules events or charges virtual time, so an enabled tracer is
// guaranteed not to perturb a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"

namespace gdrshmem::core {

struct TraceEvent {
  int pe = -1;
  int target = -1;
  // kPut/kGet/kAtomic are operations; the remaining kinds are point-in-time
  // fault/recovery records (start == end) mirrored from the fault injector.
  enum class Kind {
    kPut,
    kGet,
    kAtomic,
    kRetransmit,    // tier-1 HCA retransmit of a failed attempt
    kError,         // retry envelope exhausted; CQ error surfaced
    kReplay,        // software re-posted an op after an error/timeout
    kFallback,      // op rerouted off a GDR protocol (P2P revoked)
    kProxyCrash,    // proxy daemon killed by the fault plan
    kProxyRestart,  // proxy daemon respawned
    kProxyReissue,  // requester timed out and re-sent a proxy request
    kStaleDrop,     // recovering proxy discarded a stale ctrl message
    kRevoke,        // P2P capability withdrawn on a node
    // Collective slices (core/collectives.*): one per engine entry, spanning
    // the PE's time inside the collective. target = -1, protocol unset.
    kCollBarrier,
    kCollBcast,
    kCollReduce,
    kCollFcollect,
    kCollAlltoall,
  } kind = Kind::kPut;
  Protocol protocol = Protocol::kCount_;  // kCount_ = unknown/none
  std::size_t bytes = 0;
  sim::Time start;
  sim::Time end;

  /// Operations render as complete ("X") slices in the Chrome trace; the
  /// fault/recovery kinds are instants.
  bool is_op() const {
    return kind == Kind::kPut || kind == Kind::kGet || kind == Kind::kAtomic;
  }
  /// Collective slices also render as "X", under their own category.
  bool is_coll() const { return kind >= Kind::kCollBarrier; }
};

inline const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kPut: return "put";
    case TraceEvent::Kind::kGet: return "get";
    case TraceEvent::Kind::kAtomic: return "atomic";
    case TraceEvent::Kind::kRetransmit: return "retransmit";
    case TraceEvent::Kind::kError: return "cq-error";
    case TraceEvent::Kind::kReplay: return "sw-replay";
    case TraceEvent::Kind::kFallback: return "gdr-fallback";
    case TraceEvent::Kind::kProxyCrash: return "proxy-crash";
    case TraceEvent::Kind::kProxyRestart: return "proxy-restart";
    case TraceEvent::Kind::kProxyReissue: return "proxy-reissue";
    case TraceEvent::Kind::kStaleDrop: return "stale-drop";
    case TraceEvent::Kind::kRevoke: return "p2p-revoke";
    case TraceEvent::Kind::kCollBarrier: return "barrier";
    case TraceEvent::Kind::kCollBcast: return "bcast";
    case TraceEvent::Kind::kCollReduce: return "allreduce";
    case TraceEvent::Kind::kCollFcollect: return "fcollect";
    case TraceEvent::Kind::kCollAlltoall: return "alltoall";
  }
  return "?";
}

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1) {}

  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// Resize the ring. Shrinking keeps the newest events (older ones count
  /// as dropped).
  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }

  void record(TraceEvent ev) {
    if (!enabled_) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
      return;
    }
    ring_[head_] = ev;  // overwrite the oldest slot
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  /// Number of retained events (<= capacity()).
  std::size_t size() const { return ring_.size(); }
  /// Events that fell off the front of the ring.
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events in chronological order.
  std::vector<TraceEvent> events() const;

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// One line per event: pe,kind,target,bytes,protocol,start_us,end_us.
  std::string to_csv() const;

  /// Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev):
  /// complete "X" events on one track per PE for operations, instant "i"
  /// events for the fault/recovery kinds, plus dropped-event metadata.
  std::string to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

/// GDRSHMEM_TRACE / GDRSHMEM_TRACE_CAP, consumed by the RuntimeOptions
/// defaults (so benches constructing options programmatically still honor
/// the environment). Throw std::invalid_argument on garbage;
/// RuntimeOptions::from_env re-surfaces that as a ShmemError.
bool trace_from_env();
std::size_t trace_cap_from_env();

}  // namespace gdrshmem::core
