#include "core/protocol_selector.hpp"

#include <algorithm>
#include <climits>

#include "core/runtime.hpp"

namespace gdrshmem::core {

const char* to_string(PathChoice c) {
  switch (c) {
    case PathChoice::kHostShm: return "host-shm";
    case PathChoice::kLoopbackGdr: return "loopback-gdr";
    case PathChoice::kIpcCopy: return "ipc-copy";
    case PathChoice::kShmemPtrCopy: return "shmem-ptr-copy";
    case PathChoice::kDirectRdma: return "direct-rdma";
    case PathChoice::kDirectGdr: return "direct-gdr";
    case PathChoice::kPipelineGdrWrite: return "pipeline-gdr-write";
    case PathChoice::kHostStagedGet: return "host-staged-get";
    case PathChoice::kProxyPut: return "proxy-put";
    case PathChoice::kStagedProxyPut: return "staged-proxy-put";
    case PathChoice::kProxyGet: return "proxy-get";
  }
  return "?";
}

bool ProtocolSelector::proxy_usable() const {
  return rt_.tuning().use_proxy && rt_.proxies_enabled();
}

std::size_t ProtocolSelector::gdr_limit(const RmaOp& op, bool is_get,
                                        bool intra_node, int issuer) const {
  const Tuning& t = rt_.tuning();
  const std::size_t wl =
      intra_node ? t.loopback_gdr_write_limit : t.direct_gdr_write_limit;
  const std::size_t rl =
      intra_node ? t.loopback_gdr_read_limit : t.direct_gdr_read_limit;
  auto adj = [&](int pe, std::size_t base) -> std::size_t {
    if (!rt_.gdr_available(pe)) return 0;  // P2P revoked: no GDR on this leg
    return rt_.gdr_inter_socket(pe) ? base / t.inter_socket_gdr_divisor : base;
  };
  std::size_t limit = SIZE_MAX;
  // The local GDR leg belongs to the issuing PE, the remote leg to
  // op.target_pe. For limits we only need socket placement, identical for
  // all PEs sharing a GPU/HCA pair, so this is exact.
  if (!is_get) {
    if (op.local_is_device) limit = std::min(limit, adj(issuer, rl));
    if (op.remote_domain == Domain::kGpu) {
      limit = std::min(limit, adj(op.target_pe, wl));
    }
  } else {
    if (op.remote_domain == Domain::kGpu) {
      limit = std::min(limit, adj(op.target_pe, rl));
    }
    if (op.local_is_device) limit = std::min(limit, adj(issuer, wl));
  }
  return limit;
}

PathChoice ProtocolSelector::select_put(const RmaOp& op, int issuer) const {
  const bool src_dev = op.local_is_device;
  const bool dst_dev = op.remote_domain == Domain::kGpu;
  if (op.same_node) {
    if (!src_dev && !dst_dev) return PathChoice::kHostShm;
    if (op.bytes <= gdr_limit(op, /*is_get=*/false, /*intra=*/true, issuer)) {
      return PathChoice::kLoopbackGdr;
    }
    // One IPC copy into the mapped destination, or a cudaMemcpy straight
    // into the peer's host heap (the shmem_ptr design, Fig 3).
    return dst_dev ? PathChoice::kIpcCopy : PathChoice::kShmemPtrCopy;
  }
  if (!src_dev && !dst_dev) return PathChoice::kDirectRdma;
  if (op.bytes <= gdr_limit(op, /*is_get=*/false, /*intra=*/false, issuer)) {
    return PathChoice::kDirectGdr;
  }
  // GDR writes are near wire speed intra-socket; inter-socket they collapse
  // (Table III), and with P2P revoked on the target node they are
  // unavailable outright. Stage through the target-side proxy in both cases
  // (its final hop is a plain IPC H->D copy, no GDR needed).
  const bool target_gdr_poor =
      dst_dev && (rt_.gdr_inter_socket(op.target_pe) ||
                  !rt_.gdr_available(op.target_pe));
  if (src_dev) {
    if (target_gdr_poor && proxy_usable()) return PathChoice::kStagedProxyPut;
    if (dst_dev && !rt_.gdr_available(op.target_pe)) {
      throw ShmemError(
          "enhanced-gdr: target GPU lost P2P and no proxy is available");
    }
    return PathChoice::kPipelineGdrWrite;
  }
  if (target_gdr_poor && proxy_usable()) return PathChoice::kProxyPut;
  if (dst_dev && !rt_.gdr_available(op.target_pe)) {
    throw ShmemError(
        "enhanced-gdr: target GPU lost P2P and no proxy is available");
  }
  return PathChoice::kDirectGdr;
}

PathChoice ProtocolSelector::select_get(const RmaOp& op, int issuer) const {
  const bool loc_dev = op.local_is_device;
  const bool rem_dev = op.remote_domain == Domain::kGpu;
  if (op.same_node) {
    if (!loc_dev && !rem_dev) return PathChoice::kHostShm;
    if (op.bytes <= gdr_limit(op, /*is_get=*/true, /*intra=*/true, issuer)) {
      return PathChoice::kLoopbackGdr;
    }
    return rem_dev ? PathChoice::kIpcCopy : PathChoice::kShmemPtrCopy;
  }
  if (!loc_dev && !rem_dev) return PathChoice::kDirectRdma;
  if (op.bytes <= gdr_limit(op, /*is_get=*/true, /*intra=*/false, issuer)) {
    return PathChoice::kDirectGdr;
  }
  if (rem_dev && proxy_usable()) {
    // Large read from remote GPU memory would bottleneck on the target's
    // P2P read path: the remote proxy runs the reverse pipeline instead.
    return PathChoice::kProxyGet;
  }
  if (rem_dev && !rt_.gdr_available(op.target_pe)) {
    throw ShmemError(
        "enhanced-gdr: target GPU lost P2P and no proxy is available");
  }
  if (rem_dev) return PathChoice::kDirectGdr;
  // Remote host, local device, large: RDMA-read + local staging when our
  // own GDR write leg is inter-socket or our node's P2P was revoked;
  // otherwise read straight into the GPU.
  if (loc_dev &&
      (rt_.gdr_inter_socket(issuer) || !rt_.gdr_available(issuer))) {
    return PathChoice::kHostStagedGet;
  }
  return PathChoice::kDirectGdr;
}

bool ProtocolSelector::offload_staged(const RmaOp& op, bool is_get,
                                      int issuer) const {
  if (op.same_node) return false;
  if (!op.local_is_device && op.remote_domain != Domain::kGpu) return false;
  return op.bytes > gdr_limit(op, is_get, /*intra_node=*/false, issuer);
}

}  // namespace gdrshmem::core
