// Internal helpers shared by the transport implementations.
#pragma once

#include <cstring>

#include "core/ctx.hpp"

namespace gdrshmem::core::detail {

/// Process-to-process copy through host shared memory on the caller's node,
/// charged to the caller.
inline void host_shm_copy_by(Ctx& ctx, sim::Process& worker, void* dst,
                             const void* src, std::size_t n, int wake_pe) {
  Runtime& rt = ctx.runtime();
  sim::Path p = rt.cluster().host_copy(rt.cluster().placement(ctx.my_pe()).node);
  sim::Time done = p.schedule(rt.engine().now(), n);
  worker.delay(done - rt.engine().now());
  std::memcpy(dst, src, n);
  if (wake_pe >= 0) rt.notify_pe(wake_pe);
}

inline void host_shm_copy(Ctx& ctx, void* dst, const void* src, std::size_t n,
                          int wake_pe) {
  host_shm_copy_by(ctx, ctx.proc(), dst, src, n, wake_pe);
}

/// Put over (possibly loopback) RDMA. Small host-resident sources are sent
/// inline from a pre-registered slot so even a blocking put returns right
/// after the post; everything else waits for the ACK when blocking.
///
/// Under a fault plan the inline ring is bypassed: a slot is recycled as
/// soon as its completion fires, which under error completions would let a
/// replay read overwritten data. Instead blocking puts retry-in-place and
/// non-blocking puts carry a repost closure over the (spec-pinned until
/// quiet) user source buffer.
inline void rdma_put(Ctx& ctx, const RmaOp& op, Protocol proto) {
  Runtime& rt = ctx.runtime();
  ctx.count_protocol(proto, op.bytes);
  if (rt.faults_enabled()) {
    auto repost = [&ctx, &rt, op]() {
      return rt.endpoint(ctx.my_pe())
          .rdma_write(ctx.proc(), op.local, op.target_pe, op.remote, op.bytes);
    };
    auto comp = repost();
    if (op.blocking) {
      comp = ctx.await_reliable(ctx.proc(), std::move(comp), repost);
      ctx.track(std::move(comp));
    } else {
      ctx.track_reliable(std::move(comp), repost);
    }
    return;
  }
  bool use_inline =
      !op.local_is_device && op.bytes <= rt.tuning().inline_put_limit;
  if (use_inline) {
    auto [slot, comp_entry] = ctx.inline_slot();
    std::memcpy(slot, op.local, op.bytes);
    auto comp = rt.endpoint(ctx.my_pe())
                    .rdma_write(ctx.proc(), slot, op.target_pe, op.remote,
                                op.bytes);
    *comp_entry = comp;
    ctx.track(std::move(comp));
    return;
  }
  auto comp = rt.endpoint(ctx.my_pe())
                  .rdma_write(ctx.proc(), op.local, op.target_pe, op.remote,
                              op.bytes);
  ctx.track(comp);
  if (op.blocking) comp->wait(ctx.proc());
}

/// Get over (possibly loopback) RDMA read. Reads are idempotent, so replays
/// under a fault plan simply re-post the same descriptor.
inline void rdma_get(Ctx& ctx, const RmaOp& op, Protocol proto) {
  Runtime& rt = ctx.runtime();
  ctx.count_protocol(proto, op.bytes);
  if (rt.faults_enabled()) {
    auto repost = [&ctx, &rt, op]() {
      return rt.endpoint(ctx.my_pe())
          .rdma_read(ctx.proc(), op.local, op.target_pe, op.remote, op.bytes);
    };
    auto comp = repost();
    if (op.blocking) {
      comp = ctx.await_reliable(ctx.proc(), std::move(comp), repost);
      ctx.track(std::move(comp));
    } else {
      ctx.track_reliable(std::move(comp), repost);
    }
    return;
  }
  auto comp = rt.endpoint(ctx.my_pe())
                  .rdma_read(ctx.proc(), op.local, op.target_pe, op.remote,
                             op.bytes);
  ctx.track(comp);
  if (op.blocking) comp->wait(ctx.proc());
}

/// One-copy cudaMemcpy touching a peer's memory: CUDA IPC when the peer
/// buffer is on a GPU (one-time mapping cost), plain access to the peer's
/// host heap otherwise (the Fig 3 shmem_ptr design). Executed and charged
/// entirely on the calling PE — true one-sided.
inline void peer_cuda_copy(Ctx& ctx, void* dst, const void* src, std::size_t n,
                           int peer, Protocol proto, bool peer_mem_is_device) {
  Runtime& rt = ctx.runtime();
  ctx.count_protocol(proto, n);
  if (peer_mem_is_device) rt.map_peer_gpu_heap(ctx.proc(), ctx.my_pe(), peer);
  rt.cuda().memcpy_sync(ctx.proc(), dst, src, n);
  rt.notify_pe(peer);
}

}  // namespace gdrshmem::core::detail
