// OpenSHMEM 1.5-style teams: an ordered subset of the world PEs described
// by a (start, stride, size) triplet, with its own PE numbering, generation
// counter, and a slot in the runtime's collectives sync pool
// (core/collectives.*). Teams are created collectively via
// Ctx::team_split_strided and used by the team-variant collectives.
//
// A Team object is per-PE state: every member holds its own instance with
// the same world-relative triplet and slot but its own member index. PEs
// that did not land in the team get no object (split returns nullptr, the
// SHMEM_TEAM_INVALID analog).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace gdrshmem::core {

class Team {
 public:
  Team(int world_start, int world_stride, int size, int my_idx, int slot)
      : start_(world_start),
        stride_(world_stride),
        size_(size),
        my_idx_(my_idx),
        slot_(slot) {}

  /// Team size / my index within the team (shmem_team_n_pes / my_pe).
  int n_pes() const { return size_; }
  int my_pe() const { return my_idx_; }

  /// World-relative triplet. Nested splits resolve to world numbering at
  /// creation, so stride composes multiplicatively.
  int start() const { return start_; }
  int stride() const { return stride_; }

  /// World PE of team member `team_pe`; throws on out-of-range.
  int world_pe(int team_pe) const;
  /// Team index of `world_pe`, or -1 when it is not a member.
  int index_of_world(int world_pe) const;

  /// shmem_team_translate_pe: `src_pe` of team `src` expressed in `dst`'s
  /// numbering, or -1 when the PE is not a member of `dst`.
  static int translate(const Team& src, int src_pe, const Team& dst);

  /// Slot in the collectives sync pool (0 = TEAM_WORLD).
  int slot() const { return slot_; }
  bool is_world() const { return slot_ == 0; }

  /// Per-team collective generation. Collectives on a team execute in the
  /// same order on every member, so the counter advances identically and
  /// generation-tagged flag values agree without communication.
  std::uint64_t next_gen() { return ++gen_; }
  std::uint64_t gen() const { return gen_; }

 private:
  int start_;
  int stride_;
  int size_;
  int my_idx_;
  int slot_;
  std::uint64_t gen_ = 0;
};

}  // namespace gdrshmem::core
