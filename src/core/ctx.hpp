// Per-PE OpenSHMEM context: the public API a processing element programs
// against. Mirrors the OpenSHMEM 1.x surface the paper exercises —
// symmetric allocation with the GPU-domain extension, one-sided put/get
// (blocking and non-blocking-implicit), fence/quiet, point-to-point
// synchronization, atomics (IB hardware 64-bit, masked <64-bit), and the
// collectives the applications need — plus the CUDA helpers a GPU
// application uses next to OpenSHMEM.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/collectives.hpp"
#include "core/ctrl.hpp"
#include "core/runtime.hpp"
#include "core/team.hpp"
#include "core/transport.hpp"
#include "sim/future.hpp"
#include "sim/mailbox.hpp"

namespace gdrshmem::core {

class DeviceCtx;

/// Comparison operators for wait_until (SHMEM_CMP_*).
enum class Cmp { kEq, kNe, kGt, kGe, kLt, kLe };

class Ctx {
 public:
  Ctx(Runtime& rt, int pe);
  ~Ctx();
  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  // ---- identity -----------------------------------------------------------
  int my_pe() const { return pe_; }
  int n_pes() const { return rt_->num_pes(); }
  Runtime& runtime() { return *rt_; }
  sim::Process& proc();

  // ---- symmetric memory (III-A) -------------------------------------------
  /// shmalloc with the paper's Domain extension. Collective: every PE must
  /// make the same call sequence; includes an implicit barrier.
  void* shmalloc(std::size_t bytes, Domain domain = Domain::kHost);
  void shfree(void* p);
  /// Pointer to `pe`'s copy of a host-domain symmetric object, valid when
  /// `pe` is on the same node (classic shmem_ptr); nullptr otherwise.
  void* shmem_ptr(const void* sym, int pe);

  // ---- RMA ------------------------------------------------------------------
  /// Blocking put: returns when the source buffer is reusable. Remote
  /// completion is guaranteed only after quiet()/barrier_all().
  void putmem(void* dst_sym, const void* src, std::size_t n, int pe);
  /// Blocking get: returns with the data in `dst`.
  void getmem(void* dst, const void* src_sym, std::size_t n, int pe);
  /// Non-blocking-implicit variants: complete at quiet().
  void putmem_nbi(void* dst_sym, const void* src, std::size_t n, int pe);
  void getmem_nbi(void* dst, const void* src_sym, std::size_t n, int pe);

  template <typename T>
  void put(T* dst_sym, const T* src, std::size_t nelems, int pe) {
    putmem(dst_sym, src, nelems * sizeof(T), pe);
  }
  template <typename T>
  void get(T* dst, const T* src_sym, std::size_t nelems, int pe) {
    getmem(dst, src_sym, nelems * sizeof(T), pe);
  }
  template <typename T>
  void put_nbi(T* dst_sym, const T* src, std::size_t nelems, int pe) {
    putmem_nbi(dst_sym, src, nelems * sizeof(T), pe);
  }
  template <typename T>
  void get_nbi(T* dst, const T* src_sym, std::size_t nelems, int pe) {
    getmem_nbi(dst, src_sym, nelems * sizeof(T), pe);
  }
  /// Single-element transfer (shmem_p / shmem_g).
  template <typename T>
  void p(T* dst_sym, T value, int pe) {
    putmem(dst_sym, &value, sizeof(T), pe);
  }
  template <typename T>
  T g(const T* src_sym, int pe) {
    T v{};
    getmem(&v, src_sym, sizeof(T), pe);
    return v;
  }

  /// Strided put (shmem_iput): element i of `src` at stride `src_stride`
  /// lands at element i * dst_stride of the symmetric destination. Elements
  /// travel as individual transfers, as the OpenSHMEM spec implies.
  template <typename T>
  void iput(T* dst_sym, const T* src, std::ptrdiff_t dst_stride,
            std::ptrdiff_t src_stride, std::size_t nelems, int pe) {
    for (std::size_t i = 0; i < nelems; ++i) {
      putmem_nbi(dst_sym + static_cast<std::ptrdiff_t>(i) * dst_stride,
                 src + static_cast<std::ptrdiff_t>(i) * src_stride, sizeof(T), pe);
    }
  }
  /// Strided get (shmem_iget); returns with the data in place.
  template <typename T>
  void iget(T* dst, const T* src_sym, std::ptrdiff_t dst_stride,
            std::ptrdiff_t src_stride, std::size_t nelems, int pe) {
    for (std::size_t i = 0; i < nelems; ++i) {
      getmem_nbi(dst + static_cast<std::ptrdiff_t>(i) * dst_stride,
                 src_sym + static_cast<std::ptrdiff_t>(i) * src_stride, sizeof(T),
                 pe);
    }
    quiet();
  }

  /// Put-with-signal (OpenSHMEM 1.5 shmem_put_signal): deliver the payload,
  /// then set the 64-bit signal word at the target — the signal never
  /// overtakes the data, on any protocol path.
  void put_signal(void* dst_sym, const void* src, std::size_t n,
                  std::uint64_t* sig_sym, std::uint64_t signal, int pe) {
    put_sync(dst_sym, src, n, pe);
    putmem(sig_sym, &signal, sizeof(signal), pe);
  }
  /// Companion wait (shmem_signal_wait_until).
  void signal_wait_until(const std::uint64_t* sig_sym, Cmp op, std::uint64_t v) {
    wait_until(sig_sym, op, v);
  }

  /// Non-blocking probe: one progress pass, then evaluate the comparison.
  template <typename T>
  bool test(const T* sym_addr, Cmp op, T value) {
    progress();
    T cur;
    std::memcpy(&cur, sym_addr, sizeof(T));
    switch (op) {
      case Cmp::kEq: return cur == value;
      case Cmp::kNe: return cur != value;
      case Cmp::kGt: return cur > value;
      case Cmp::kGe: return cur >= value;
      case Cmp::kLt: return cur < value;
      case Cmp::kLe: return cur <= value;
    }
    return false;
  }

  /// Internal strict put: like putmem but always waits for the remote ACK,
  /// so a subsequent op on *any* path is ordered after it. The collectives
  /// use it to sequence data before flags.
  void put_sync(void* dst_sym, const void* src, std::size_t n, int pe);

  // ---- ordering ---------------------------------------------------------------
  /// Wait for remote completion of all pending ops issued by this PE. On a
  /// relaxed-ordering transport (srd) an op's completion fires only once
  /// every sprayed segment has landed, so quiet still guarantees full
  /// visibility of all prior puts at their targets.
  void quiet();
  /// Ordering fence; implemented as quiet (a legal strengthening). On rc/
  /// ud/dc the wire's FIFO would order same-target ops anyway; on srd this
  /// wait is a real ordering point — nothing else sequences two ops whose
  /// segments are independently jittered.
  void fence() { quiet(); }

  // ---- point-to-point synchronization ------------------------------------------
  template <typename T>
  void wait_until(const T* sym_addr, Cmp op, T value) {
    wait_for([&] {
      T cur;
      std::memcpy(&cur, sym_addr, sizeof(T));  // re-read delivered memory
      switch (op) {
        case Cmp::kEq: return cur == value;
        case Cmp::kNe: return cur != value;
        case Cmp::kGt: return cur > value;
        case Cmp::kGe: return cur >= value;
        case Cmp::kLt: return cur < value;
        case Cmp::kLe: return cur <= value;
      }
      return false;
    });
  }

  // ---- atomics (III-D) -----------------------------------------------------------
  /// 64-bit ops map 1:1 onto IB hardware atomics (works on host and GPU
  /// symmetric memory via GDR).
  std::int64_t atomic_fetch_add(std::int64_t* sym, std::int64_t value, int pe);
  void atomic_add(std::int64_t* sym, std::int64_t value, int pe);
  std::int64_t atomic_fetch_inc(std::int64_t* sym, int pe) {
    return atomic_fetch_add(sym, 1, pe);
  }
  void atomic_inc(std::int64_t* sym, int pe) { atomic_add(sym, 1, pe); }
  std::int64_t atomic_compare_swap(std::int64_t* sym, std::int64_t cond,
                                   std::int64_t value, int pe);
  std::int64_t atomic_swap(std::int64_t* sym, std::int64_t value, int pe);
  std::int64_t atomic_fetch(const std::int64_t* sym, int pe);
  /// 32-bit ops use the paper's mask technique on the containing 64-bit
  /// word (retry loop around hardware compare-and-swap).
  std::int32_t atomic_fetch_add32(std::int32_t* sym, std::int32_t value, int pe);
  std::int32_t atomic_compare_swap32(std::int32_t* sym, std::int32_t cond,
                                     std::int32_t value, int pe);

  // ---- collectives (thin wrappers over core::coll on TEAM_WORLD) ------------
  void barrier_all();
  /// Broadcast `n` bytes from root's `src_sym` into everyone else's
  /// `dst_sym` (root's dst untouched, per OpenSHMEM).
  void broadcastmem(void* dst_sym, const void* src_sym, std::size_t n, int root);
  /// Allreduce on symmetric buffers (dst may alias src).
  template <typename T>
  void sum_to_all(T* dst_sym, const T* src_sym, std::size_t nreduce) {
    coll::allreduce(*this, team_world(), dst_sym, src_sym, nreduce,
                    ReduceOp::kSum, scalar_tag<T>());
  }
  template <typename T>
  void min_to_all(T* dst_sym, const T* src_sym, std::size_t nreduce) {
    coll::allreduce(*this, team_world(), dst_sym, src_sym, nreduce,
                    ReduceOp::kMin, scalar_tag<T>());
  }
  template <typename T>
  void max_to_all(T* dst_sym, const T* src_sym, std::size_t nreduce) {
    coll::allreduce(*this, team_world(), dst_sym, src_sym, nreduce,
                    ReduceOp::kMax, scalar_tag<T>());
  }
  /// Concatenate every PE's `nbytes` block into each PE's dst (fcollect).
  void fcollectmem(void* dst_sym, const void* src_sym, std::size_t nbytes);

  // ---- teams (OpenSHMEM 1.5 shapes; see core/team.hpp) ----------------------
  /// The predefined world team (every PE, slot 0 of the sync pool).
  Team& team_world() { return world_team_; }
  /// Collective over `parent`: members with parent index start + i * stride
  /// (0 <= i < size) form a new team. Returns the new team, or nullptr on
  /// PEs that are not members. Throws when the triplet is invalid or all
  /// sync-pool slots are taken (deterministically on every member).
  Team* team_split_strided(Team& parent, int start, int stride, int size);
  /// Collective over the team; releases its sync-pool slot for reuse.
  void team_destroy(Team* team);
  /// Team-wide sync (no implicit quiet, unlike barrier_all).
  void team_sync(Team& team) { coll::sync(*this, team); }
  void team_broadcast(Team& team, void* dst_sym, const void* src_sym,
                      std::size_t nbytes, int root) {
    coll::broadcast(*this, team, dst_sym, src_sym, nbytes, root);
  }
  template <typename T>
  void team_reduce(Team& team, T* dst_sym, const T* src_sym,
                   std::size_t nreduce, ReduceOp op) {
    coll::allreduce(*this, team, dst_sym, src_sym, nreduce, op,
                    scalar_tag<T>());
  }
  void team_fcollect(Team& team, void* dst_sym, const void* src_sym,
                     std::size_t nbytes) {
    coll::fcollect(*this, team, dst_sym, src_sym, nbytes);
  }
  void team_alltoall(Team& team, void* dst_sym, const void* src_sym,
                     std::size_t nbytes) {
    coll::alltoall(*this, team, dst_sym, src_sym, nbytes);
  }

  // ---- collectives-engine support (used by core::coll) ----------------------
  const coll::SyncLayout& coll_layout() const { return coll_layout_; }
  /// This PE's copy of the sync pool (head of its host heap).
  std::byte* coll_pool() { return coll_pool_; }
  /// Account one finished collective: coll_bytes / coll_latency_ns
  /// histograms keyed kind x algo, plus a trace slice when tracing.
  void record_collective(CollKind kind, CollAlgo algo, std::size_t bytes,
                         sim::Time t0);

  // ---- locks (shmem_set_lock family, on IB hardware atomics) --------------
  /// Acquire a global lock (the lock word lives on PE 0's heap copy).
  void set_lock(std::int64_t* lock_sym);
  /// Release; throws if this PE does not hold it.
  void clear_lock(std::int64_t* lock_sym);
  /// Try-acquire; true on success.
  bool test_lock(std::int64_t* lock_sym);

  /// Barrier over an arbitrary team of PEs, using a user-provided symmetric
  /// 2-word psync array (counter + release generation). One barrier in
  /// flight per psync, as the OpenSHMEM pSync rules require.
  void team_barrier(const std::vector<int>& pes, std::int64_t* psync);
  /// All-to-all personalized exchange: block j of my src lands at block
  /// my_pe of PE j's dst (both symmetric, np * nbytes long).
  void alltoallmem(void* dst_sym, const void* src_sym, std::size_t nbytes);

  // ---- CUDA-side helpers ------------------------------------------------------------
  /// cudaMalloc on this PE's GPU (non-symmetric local device memory).
  void* cuda_malloc(std::size_t bytes);
  void cuda_free(void* p) { rt_->cuda().free_device(p); }
  /// cudaMemcpy (any direction) charged to this PE.
  void cuda_memcpy(void* dst, const void* src, std::size_t n);
  /// Launch a GPU kernel over `cells` with the functional update `body`.
  void launch_kernel(std::size_t cells, double per_cell_ns,
                     const std::function<void()>& body);
  /// Launch a *resident* kernel that issues OpenSHMEM operations from the
  /// device through the DeviceCtx handle (the shmemx_* surface). The kernel
  /// keeps running across communication — no kernel-split round trips. The
  /// scope models which thread group cooperates on each operation's WQE.
  void launch_kernel_device(double per_cell_ns, DeviceScope scope,
                            const std::function<void(DeviceCtx&)>& body);
  /// Busy CPU compute (no progress — the Fig 10 overlap victim).
  void compute(sim::Duration d);

  sim::Time now();

  // ---- runtime internals (used by transports / proxy) ----------------------------
  /// Run the progress engine until `pred()` holds.
  template <typename Pred>
  void wait_for(Pred&& pred) {
    while (true) {
      progress();
      if (pred()) return;
      if (!rx_.empty()) continue;  // more target-side work already queued
      proc().await(progress_note_);
    }
  }
  /// wait_for with a give-up instant: returns false if `pred` still does not
  /// hold at `deadline`. Schedules one wake event at the deadline, so it is
  /// reserved for fault-recovery paths (proxy request timeouts).
  template <typename Pred>
  bool wait_for_deadline(Pred&& pred, sim::Time deadline) {
    rt_->engine().schedule_at(sim::max(deadline, now()),
                              [this] { notify_progress(); });
    while (true) {
      progress();
      if (pred()) return true;
      if (now() >= deadline) return false;
      if (!rx_.empty()) continue;
      proc().await(progress_note_);
    }
  }
  void progress();
  void notify_progress() { progress_note_.notify(); }
  /// Account an operation under `proto`: runtime-wide stats, the per-kind x
  /// per-protocol message-size histogram in the metrics registry, and a
  /// per-PE note for the tracer. The registry's histogram totals therefore
  /// match the protocol table by construction.
  void count_protocol(Protocol proto, std::size_t bytes);
  Protocol last_protocol() const { return last_protocol_; }
  sim::Mailbox<CtrlMsg>& rx() { return rx_; }
  void track(sim::CompletionPtr c) {
    pending_.push_back(PendingOp{std::move(c), nullptr, 0});
  }
  /// Track a non-blocking op together with a closure that re-posts it. When
  /// fault injection surfaces the completion in error state, quiet() calls
  /// `repost` (with capped exponential backoff) until the op lands or the
  /// replay budget is exhausted. Re-posted ops must be idempotent — every
  /// caller replays from still-valid source data.
  void track_reliable(sim::CompletionPtr c,
                      std::function<sim::CompletionPtr()> repost) {
    pending_.push_back(PendingOp{std::move(c), std::move(repost), 0});
  }
  /// Block `worker` until `comp` fires successfully; error completions
  /// (fault plans only) are re-posted via `repost` with capped exponential
  /// backoff. Returns the completion that finally succeeded.
  sim::CompletionPtr await_reliable(
      sim::Process& worker, sim::CompletionPtr comp,
      const std::function<sim::CompletionPtr()>& repost);
  /// Backoff before software replay number `replays` (1-based).
  sim::Duration replay_backoff(int replays) const;
  /// Keep a snapshot buffer alive until pending ops drain (inline puts).
  void keep_alive(std::shared_ptr<std::vector<std::byte>> buf) {
    snapshots_.push_back(std::move(buf));
  }
  /// Host bounce buffer (registered at init) for staging pipelines.
  std::byte* bounce(std::size_t min_bytes);
  /// Acquire a pre-registered inline-send slot (second member is the slot's
  /// completion entry to fill); recycles a small ring, waiting when the
  /// oldest slot is still in flight.
  std::pair<std::byte*, sim::CompletionPtr*> inline_slot();
  cudart::Stream& stream() { return stream_; }
  /// Target-side rendezvous staging (baseline): serialized by a busy flag.
  /// Registration cost (on growth) is charged to `worker`.
  std::byte* rendezvous_staging(std::size_t bytes);
  std::byte* rendezvous_staging(std::size_t bytes, sim::Process& worker);
  bool staging_busy() const { return staging_busy_; }
  void set_staging_busy(bool b) { staging_busy_ = b; }
  std::deque<CtrlMsg>& deferred_rts() { return deferred_rts_; }
  /// Eager flow control: at most one outstanding eager message per peer.
  std::map<int, sim::CompletionPtr>& eager_outstanding() {
    return eager_outstanding_;
  }
  /// Registered source-side bounce slot for eager sends to `peer`
  /// (safe to reuse once the previous eager to that peer is ACKed).
  std::byte* eager_src_slot(int peer);

 private:
  friend class Runtime;
  /// The device-initiated surface mirrors this Ctx's accounting brackets
  /// (op_kind_, make_op, finish_op) so host- and device-issued operations
  /// land in the same stats, histograms, and traces.
  friend class DeviceCtx;

  /// One tracked non-blocking operation. `repost` is null for ops issued on
  /// a healthy fabric (their completions can only fire successfully).
  struct PendingOp {
    sim::CompletionPtr comp;
    std::function<sim::CompletionPtr()> repost;
    int replays = 0;
  };

  /// Replay every pending op whose completion surfaced in error state
  /// (fault plans only; called from quiet's predicate).
  void recover_pending();

  RmaOp make_op(void* remote_sym, void* local, std::size_t n, int pe,
                bool blocking);

  Runtime* rt_;
  int pe_;
  sim::Process* proc_ = nullptr;  // bound by Runtime::run

  std::vector<PendingOp> pending_;
  std::vector<std::shared_ptr<std::vector<std::byte>>> snapshots_;
  sim::Mailbox<CtrlMsg> rx_;
  sim::Notification progress_note_;

  std::vector<std::byte> bounce_;
  static constexpr std::size_t kInlineSlots = 128;
  std::vector<std::byte> inline_ring_;
  std::vector<sim::CompletionPtr> inline_comps_;
  std::size_t inline_next_ = 0;
  cudart::Stream stream_;
  std::vector<std::byte> rendezvous_staging_;
  bool staging_busy_ = false;
  std::deque<CtrlMsg> deferred_rts_;
  std::map<int, sim::CompletionPtr> eager_outstanding_;
  std::map<int, std::vector<std::byte>> eager_src_slots_;

  /// Record the just-finished blocking op's latency in the metrics registry
  /// (keyed kind x protocol) and, when enabled, the tracer.
  void finish_op(TraceEvent::Kind kind, int target_pe, std::size_t bytes,
                 sim::Time t0);

  Protocol last_protocol_ = Protocol::kCount_;
  /// Kind of the operation currently being issued by this PE; consumed by
  /// count_protocol for histogram keying. All count_protocol calls happen on
  /// the initiator's Ctx inside the put/get/atomic entry points, so this is
  /// always current.
  TraceEvent::Kind op_kind_ = TraceEvent::Kind::kPut;
  /// Cache of histogram slots so the hot path does one map lookup per
  /// (kind, protocol) pair per Ctx lifetime, not per operation.
  struct OpHists {
    Histogram* bytes = nullptr;
    Histogram* latency = nullptr;
  };
  std::array<std::array<OpHists, static_cast<std::size_t>(Protocol::kCount_)>, 3>
      op_hists_{};
  OpHists& op_hists(TraceEvent::Kind kind, Protocol proto);
  /// Histogram-slot cache for record_collective, keyed (kind, algo).
  std::map<std::pair<int, int>, OpHists> coll_hists_;

  std::uint64_t alloc_seq_ = 0;

  // ---- collectives / teams state -------------------------------------------
  coll::SyncLayout coll_layout_;
  std::byte* coll_pool_ = nullptr;  // first allocation of this PE's host heap
  Team world_team_;
  std::vector<std::unique_ptr<Team>> teams_;
  /// Sync-pool slots this PE currently uses (bit 0 = TEAM_WORLD). Per-PE
  /// state: disjoint teams may share a slot, the split allreduce over the
  /// parent guarantees no member double-books one.
  std::uint32_t team_slots_used_ = 1;
};

}  // namespace gdrshmem::core
