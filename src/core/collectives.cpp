#include "core/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/ctx.hpp"

namespace gdrshmem::core::coll {
namespace {

using sim::Duration;

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

// ---------------------------------------------------------------------------
// Layout

std::size_t SyncLayout::flags_bytes() const {
  // barrier rounds + data + ack + reserve, all u64.
  return sizeof(std::uint64_t) *
         (static_cast<std::size_t>(kBarrierRounds) +
          3 * static_cast<std::size_t>(np));
}

std::size_t SyncLayout::block_bytes() const {
  return align_up(flags_bytes()) + align_up(workspace_bytes);
}

SyncLayout SyncLayout::make(int np, const Tuning& t,
                            std::size_t host_heap_bytes) {
  SyncLayout lay;
  lay.np = np;
  lay.workspace_bytes = align_up(2 * t.coll_chunk);
  // The pool may take at most a quarter of the heap; shrink the workspace
  // (the flags are non-negotiable) until it fits.
  std::size_t budget = host_heap_bytes / 4;
  std::size_t flags = align_up(lay.flags_bytes());
  if (flags * kMaxTeams > budget) {
    throw ShmemError("host heap too small for the collectives sync pool (" +
                     std::to_string(flags * kMaxTeams) +
                     " bytes of flags alone; raise GDRSHMEM_HOST_HEAP)");
  }
  std::size_t ws_budget = budget / kMaxTeams - flags;
  ws_budget = (ws_budget / kAlign) * kAlign;
  lay.workspace_bytes = std::max(std::min(lay.workspace_bytes, ws_budget),
                                 align_up(kMinWorkspace));
  return lay;
}

std::uint64_t* SyncLayout::barrier_flags(std::byte* pool, int slot) const {
  return reinterpret_cast<std::uint64_t*>(
      pool + static_cast<std::size_t>(slot) * block_bytes());
}

std::uint64_t* SyncLayout::data_flags(std::byte* pool, int slot) const {
  return barrier_flags(pool, slot) + kBarrierRounds;
}

std::uint64_t* SyncLayout::ack_flags(std::byte* pool, int slot) const {
  return data_flags(pool, slot) + np;
}

std::uint64_t* SyncLayout::reserve(std::byte* pool, int slot) const {
  return ack_flags(pool, slot) + np;
}

std::byte* SyncLayout::workspace(std::byte* pool, int slot) const {
  return pool + static_cast<std::size_t>(slot) * block_bytes() +
         align_up(flags_bytes());
}

// ---------------------------------------------------------------------------
// Algorithm names / support

CollAlgo algo_from_string(const std::string& s) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(CollAlgo::kCount_); ++i) {
    if (s == to_string(static_cast<CollAlgo>(i))) return static_cast<CollAlgo>(i);
  }
  throw std::invalid_argument(
      "unknown collective algorithm \"" + s +
      "\" (known: auto, linear, dissemination, binomial, ring, recdbl, "
      "bruck, pairwise)");
}

bool algo_supported(CollKind kind, CollAlgo algo) {
  if (algo == CollAlgo::kAuto) return true;
  switch (kind) {
    case CollKind::kBarrier:
      return algo == CollAlgo::kDissemination || algo == CollAlgo::kLinear;
    case CollKind::kBroadcast:
      return algo == CollAlgo::kLinear || algo == CollAlgo::kBinomial ||
             algo == CollAlgo::kRing;
    case CollKind::kAllreduce:
      return algo == CollAlgo::kLinear || algo == CollAlgo::kRecDbl ||
             algo == CollAlgo::kRing;
    case CollKind::kFcollect:
      return algo == CollAlgo::kLinear || algo == CollAlgo::kBruck ||
             algo == CollAlgo::kRing;
    case CollKind::kAlltoall:
      return algo == CollAlgo::kLinear || algo == CollAlgo::kPairwise;
    case CollKind::kCount_: break;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Selection

CollAlgo select(const Tuning& t, const SyncLayout& lay, CollKind kind, int np,
                std::size_t nbytes, bool gpu_domain) {
  const std::size_t ws = lay.workspace_bytes;
  const std::size_t div = gpu_domain ? std::max<std::size_t>(t.coll_gpu_ceiling_divisor, 1) : 1;
  auto need = [&](bool ok, const char* what) {
    if (!ok) {
      throw ShmemError(std::string("forced collective algorithm does not fit: ") +
                       what + " (workspace " + std::to_string(ws) + " bytes)");
    }
  };
  CollAlgo forced = t.coll_force[static_cast<std::size_t>(kind)];
  if (forced != CollAlgo::kAuto) {
    if (!algo_supported(kind, forced)) {
      throw ShmemError(std::string(to_string(forced)) + " is not a " +
                       to_string(kind) + " algorithm");
    }
    // Workspace-bound algorithms must fit; the caps in auto mode guarantee it.
    if (kind == CollKind::kAllreduce && forced == CollAlgo::kRecDbl) {
      need(nbytes <= ws, "recursive doubling needs nbytes <= workspace");
    }
    if (kind == CollKind::kAllreduce && forced == CollAlgo::kLinear) {
      need(nbytes * static_cast<std::size_t>(np) <= ws,
           "linear allreduce needs np * nbytes <= workspace");
    }
    if (kind == CollKind::kFcollect && forced == CollAlgo::kBruck) {
      need(nbytes * static_cast<std::size_t>(np) <= ws,
           "bruck fcollect needs np * nbytes <= workspace");
    }
    return forced;
  }
  switch (kind) {
    case CollKind::kBarrier:
      return CollAlgo::kDissemination;
    case CollKind::kBroadcast:
      if (np <= 2 || nbytes <= t.coll_bcast_binomial_max / div)
        return CollAlgo::kBinomial;
      return CollAlgo::kRing;
    case CollKind::kAllreduce:
      if (nbytes <= std::min(t.coll_rd_max / div, ws)) return CollAlgo::kRecDbl;
      return CollAlgo::kRing;
    case CollKind::kFcollect:
      if (np <= 2) return CollAlgo::kLinear;
      if (nbytes <= t.coll_bruck_max / div &&
          nbytes * static_cast<std::size_t>(np) <= ws)
        return CollAlgo::kBruck;
      return CollAlgo::kRing;
    case CollKind::kAlltoall:
      if (np <= 2 || nbytes < t.coll_pairwise_min) return CollAlgo::kLinear;
      return CollAlgo::kPairwise;
    case CollKind::kCount_: break;
  }
  return CollAlgo::kLinear;
}

// ---------------------------------------------------------------------------
// Per-call context shared by all algorithms

namespace {

struct TeamCtx {
  Ctx& ctx;
  Team& t;
  const SyncLayout& lay;
  std::byte* pool;  // this PE's copy of the pool
  int slot;
  int np;
  int me;                 // my team index
  std::uint64_t gen = 0;  // this collective's generation

  TeamCtx(Ctx& c, Team& team)
      : ctx(c),
        t(team),
        lay(c.coll_layout()),
        pool(c.coll_pool()),
        slot(team.slot()),
        np(team.n_pes()),
        me(team.my_pe()) {}

  int world(int idx) const { return t.world_pe(idx); }
  std::uint64_t* bar(int r) const { return lay.barrier_flags(pool, slot) + r; }
  std::uint64_t* dflag(int writer) const {
    return lay.data_flags(pool, slot) + writer;
  }
  std::uint64_t* aflag(int writer) const {
    return lay.ack_flags(pool, slot) + writer;
  }
  std::byte* ws() const { return lay.workspace(pool, slot); }

  std::uint64_t fv(std::uint64_t seq) const { return (gen << 32) | seq; }

  /// 8-byte flag write. Flag puts are uniform in size, so two writes from
  /// one PE to one slot arrive in issue order on a healthy in-order fabric;
  /// under an active fault plan retransmits could reorder them, and on a
  /// relaxed-ordering transport (srd) delivery jitter can — a newer
  /// generation-tagged value overwritten by a stale one after the waiter
  /// already passed would strand a later kGe wait forever. Flush each flag
  /// before the next can be issued in either regime.
  void put_flag(std::uint64_t* my_slot, std::uint64_t v, int peer_idx) {
    ctx.putmem(my_slot, &v, sizeof(v), world(peer_idx));
    if (ctx.runtime().faults_enabled() ||
        !ctx.runtime().ib().in_order_delivery()) {
      ctx.quiet();
    }
  }
  void wait_flag(const std::uint64_t* my_slot, std::uint64_t v) {
    ctx.wait_until<std::uint64_t>(my_slot, Cmp::kGe, v);
  }
  /// Data strictly before any flag announcing it (remote ACK awaited).
  void put_data(void* dst_sym, const void* src, std::size_t n, int peer_idx) {
    ctx.put_sync(dst_sym, src, n, world(peer_idx));
  }
};

/// Local copy with a realistic charge (dst may alias src: no-op then).
void local_copy(Ctx& ctx, void* dst, const void* src, std::size_t n) {
  if (dst == src || n == 0) return;
  ctx.cuda_memcpy(dst, src, n);
}

bool in_gpu_domain(Ctx& ctx, const void* p) {
  return ctx.runtime().heap(ctx.my_pe(), Domain::kGpu).contains(p);
}

/// Elementwise acc = op(acc, in) over `nelems`, charged per hw::params:
/// a CPU pass for host buffers, the cudart kernel model for device ones
/// (launch overhead + gpu_reduce_ns_per_byte).
void combine(Ctx& ctx, void* acc, const void* in, std::size_t nelems,
             ReduceOp op, ScalarType st, bool gpu) {
  if (nelems == 0) return;
  if (op == ReduceOp::kBand && (st == ScalarType::kF32 || st == ScalarType::kF64)) {
    throw ShmemError("band reduction requires an integer type");
  }
  auto one = [op](auto* a, auto v) {
    using V = std::remove_reference_t<decltype(*a)>;
    switch (op) {
      case ReduceOp::kSum: *a += v; break;
      case ReduceOp::kMin: *a = v < *a ? v : *a; break;
      case ReduceOp::kMax: *a = v > *a ? v : *a; break;
      case ReduceOp::kBand:
        if constexpr (std::is_integral_v<V>) *a &= v;
        break;
    }
  };
  auto body = [&] {
    for (std::size_t e = 0; e < nelems; ++e) {
      switch (st) {
        case ScalarType::kF32:
          one(static_cast<float*>(acc) + e, static_cast<const float*>(in)[e]);
          break;
        case ScalarType::kF64:
          one(static_cast<double*>(acc) + e, static_cast<const double*>(in)[e]);
          break;
        case ScalarType::kI32:
          one(static_cast<std::int32_t*>(acc) + e,
              static_cast<const std::int32_t*>(in)[e]);
          break;
        case ScalarType::kI64:
          one(static_cast<std::int64_t*>(acc) + e,
              static_cast<const std::int64_t*>(in)[e]);
          break;
      }
    }
  };
  const auto& p = ctx.runtime().cluster().params();
  const std::size_t elsize = scalar_size(st);
  if (gpu) {
    ctx.launch_kernel(nelems, p.gpu_reduce_ns_per_byte * static_cast<double>(elsize),
                      body);
  } else {
    body();
    ctx.proc().delay(Duration::ns(static_cast<std::int64_t>(
        static_cast<double>(nelems * elsize) * p.cpu_reduce_ns_per_byte)));
  }
}

// ---- barrier --------------------------------------------------------------

void dissemination_sync(TeamCtx& tc) {
  for (int r = 0; (1 << r) < tc.np; ++r) {
    int peer = (tc.me + (1 << r)) % tc.np;
    std::uint64_t v = tc.fv(1);
    tc.put_flag(tc.bar(r), v, peer);
    tc.wait_flag(tc.bar(r), v);
  }
}

void linear_barrier(TeamCtx& tc) {
  if (tc.me != 0) {
    tc.put_flag(tc.dflag(tc.me), tc.fv(1), 0);
    tc.wait_flag(tc.dflag(0), tc.fv(2));
  } else {
    for (int i = 1; i < tc.np; ++i) tc.wait_flag(tc.dflag(i), tc.fv(1));
    for (int i = 1; i < tc.np; ++i) tc.put_flag(tc.dflag(0), tc.fv(2), i);
  }
}

// ---- broadcast ------------------------------------------------------------

/// Binomial tree rooted at team PE `root`. Children announce readiness at
/// entry (rendezvous), so a parent racing ahead into a later generation
/// cannot overwrite a dst a slow child still forwards from; the data flag
/// is generation-tagged and written per parent, so a later generation's
/// flag (necessarily from the same parent, issued after this generation's
/// data was ACKed) can never release a waiter early.
void binomial_bcast(TeamCtx& tc, void* dst, const void* src, std::size_t n,
                    int root, std::uint64_t seq) {
  const int np = tc.np;
  int vrank = (tc.me - root + np) % np;
  int mask = 1;
  while (mask < np) {
    if (vrank & mask) {
      int parent = ((vrank ^ mask) + root) % np;
      tc.put_flag(tc.aflag(tc.me), tc.fv(seq), parent);  // ready to receive
      tc.wait_flag(tc.dflag(parent), tc.fv(seq));
      break;
    }
    mask <<= 1;
  }
  const void* data = (tc.me == root) ? src : dst;
  mask >>= 1;
  while (mask > 0) {
    int peer_v = vrank + mask;
    if (peer_v < np) {
      int peer = (peer_v + root) % np;
      tc.wait_flag(tc.aflag(peer), tc.fv(seq));
      tc.put_data(dst, data, n, peer);
      tc.put_flag(tc.dflag(tc.me), tc.fv(seq), peer);
    }
    mask >>= 1;
  }
}

/// Root blasts to everyone. The leading sync pins every member into this
/// generation before any data lands (dst stability for non-forwarders).
void linear_bcast(TeamCtx& tc, void* dst, const void* src, std::size_t n,
                  int root) {
  dissemination_sync(tc);
  if (tc.me == root) {
    for (int i = 0; i < tc.np; ++i) {
      if (i == root) continue;
      tc.ctx.putmem(dst, src, n, tc.world(i));
    }
    tc.ctx.quiet();  // all data ACKed before any flag
    for (int i = 0; i < tc.np; ++i) {
      if (i == root) continue;
      tc.put_flag(tc.dflag(root), tc.fv(1), i);
    }
  } else {
    tc.wait_flag(tc.dflag(root), tc.fv(1));
  }
}

/// Chunked ring pipeline: the root streams coll_chunk pieces down the
/// vrank-ordered chain; each PE forwards a chunk as soon as its flag lands.
/// Successors post an entry-ready so a predecessor in a later generation
/// cannot clobber a dst still being forwarded from.
void ring_bcast(TeamCtx& tc, void* dst, const void* src, std::size_t n,
                int root) {
  const int np = tc.np;
  const std::size_t piece = std::max<std::size_t>(
      tc.ctx.runtime().tuning().coll_chunk, 1);
  int vrank = (tc.me - root + np) % np;
  if (vrank > 0) {
    int pred = ((vrank - 1) + root) % np;
    tc.put_flag(tc.aflag(tc.me), tc.fv(1), pred);
  }
  int succ = vrank + 1 < np ? (vrank + 1 + root) % np : -1;
  if (succ >= 0) tc.wait_flag(tc.aflag(succ), tc.fv(1));
  const std::byte* sdata = static_cast<const std::byte*>(
      tc.me == root ? src : static_cast<const void*>(dst));
  int pred = ((vrank - 1 + np) + root) % np;
  const std::size_t nchunks = (n + piece - 1) / piece;
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * piece;
    std::size_t len = std::min(piece, n - off);
    if (vrank > 0) tc.wait_flag(tc.dflag(pred), tc.fv(c + 1));
    if (succ >= 0) {
      tc.put_data(static_cast<std::byte*>(dst) + off, sdata + off, len, succ);
      tc.put_flag(tc.dflag(tc.me), tc.fv(c + 1), succ);
    }
  }
}

// ---- allreduce ------------------------------------------------------------

/// Legacy shape, kept for forcing/comparison: gather every contribution
/// into the root's workspace, combine there, binomial-broadcast the result.
/// Capacity-capped at np * nbytes <= workspace.
void linear_allreduce(TeamCtx& tc, void* dst, const void* src,
                      std::size_t nelems, ReduceOp op, ScalarType st,
                      bool gpu) {
  const std::size_t nbytes = nelems * scalar_size(st);
  if (tc.me != 0) {
    tc.put_data(tc.ws() + static_cast<std::size_t>(tc.me) * nbytes, src, nbytes, 0);
    tc.put_flag(tc.dflag(tc.me), tc.fv(1), 0);
  } else {
    local_copy(tc.ctx, dst, src, nbytes);
    for (int i = 1; i < tc.np; ++i) {
      tc.wait_flag(tc.dflag(i), tc.fv(1));
      combine(tc.ctx, dst, tc.ws() + static_cast<std::size_t>(i) * nbytes,
              nelems, op, st, gpu);
    }
  }
  binomial_bcast(tc, dst, dst, nbytes, 0, /*seq=*/2);
}

/// Recursive doubling with the standard non-power-of-two fold/unfold.
/// Every exchange is a rendezvous (ready -> data -> flag -> combine), so
/// the single workspace region is reused safely across rounds and
/// generations.
void recdbl_allreduce(TeamCtx& tc, void* dst, const void* src,
                      std::size_t nelems, ReduceOp op, ScalarType st,
                      bool gpu) {
  const std::size_t nbytes = nelems * scalar_size(st);
  const int np = tc.np, me = tc.me;
  local_copy(tc.ctx, dst, src, nbytes);
  int pof2 = 1;
  while (pof2 * 2 <= np) pof2 *= 2;
  const int rem = np - pof2;
  std::uint64_t seq = 1;

  auto send_to = [&](int partner) {
    tc.wait_flag(tc.aflag(partner), tc.fv(seq));
    tc.put_data(tc.ws(), dst, nbytes, partner);
    tc.put_flag(tc.dflag(me), tc.fv(seq), partner);
  };
  auto recv_from = [&](int partner) {
    tc.put_flag(tc.aflag(me), tc.fv(seq), partner);
    tc.wait_flag(tc.dflag(partner), tc.fv(seq));
    combine(tc.ctx, dst, tc.ws(), nelems, op, st, gpu);
  };

  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      send_to(me + 1);
      newrank = -1;
    } else {
      recv_from(me - 1);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  ++seq;

  for (int mask = 1; mask < pof2; mask <<= 1, ++seq) {
    if (newrank < 0) continue;
    int partner_new = newrank ^ mask;
    int partner = partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
    // Bidirectional: both post ready first (no deadlock), then exchange.
    tc.put_flag(tc.aflag(me), tc.fv(seq), partner);
    tc.wait_flag(tc.aflag(partner), tc.fv(seq));
    tc.put_data(tc.ws(), dst, nbytes, partner);
    tc.put_flag(tc.dflag(me), tc.fv(seq), partner);
    tc.wait_flag(tc.dflag(partner), tc.fv(seq));
    combine(tc.ctx, dst, tc.ws(), nelems, op, st, gpu);
  }

  // Unfold: odd ranks hand the finished vector back. Direct into dst (the
  // fold phase of the *next* generation already orders reuse).
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      tc.put_data(dst, dst, nbytes, me - 1);
      tc.put_flag(tc.dflag(me), tc.fv(seq), me - 1);
    } else {
      tc.wait_flag(tc.dflag(me + 1), tc.fv(seq));
    }
  }
}

/// Ring allreduce: element-partitioned reduce-scatter with coll_chunk piece
/// pipelining through the workspace halves (credit-2 ready flow control),
/// then a ring allgather straight into dst. O(nbytes) virtual time per PE,
/// independent of team size, with no buffer-size cap.
void ring_allreduce(TeamCtx& tc, void* dst, const void* src,
                    std::size_t nelems, ReduceOp op, ScalarType st, bool gpu) {
  const std::size_t elsize = scalar_size(st);
  const int np = tc.np, me = tc.me;
  const int right = (me + 1) % np;
  const int left = (me + np - 1) % np;
  local_copy(tc.ctx, dst, src, nelems * elsize);
  auto* d = static_cast<std::byte*>(dst);

  std::size_t piece = std::min(tc.ctx.runtime().tuning().coll_chunk,
                               tc.lay.workspace_bytes / 2);
  piece = std::max((piece / elsize) * elsize, elsize);  // element-aligned
  const std::size_t half = tc.lay.workspace_bytes / 2;

  auto chunk_lo = [&](int c) {
    return (nelems * static_cast<std::size_t>(c)) / static_cast<std::size_t>(np);
  };
  auto chunk_elems = [&](int c) { return chunk_lo(c + 1) - chunk_lo(c); };
  auto npieces = [&](int c) {
    return (chunk_elems(c) * elsize + piece - 1) / piece;
  };
  // My receive-piece sequence is exactly my left neighbor's send sequence
  // (same chunks, computed identically), so flag values agree end to end.
  std::size_t total_recv = 0, total_send = 0;
  for (int s = 1; s < np; ++s) {
    total_recv += npieces((me - s + 2 * np) % np);
    total_send += npieces((me - s + 1 + 2 * np) % np);
  }

  // Credit-2: announce the first two workspace halves free.
  for (std::size_t g = 0; g < std::min<std::size_t>(2, total_recv); ++g) {
    tc.put_flag(tc.aflag(me), tc.fv(g + 1), left);
  }

  std::size_t gs = 0, gr = 0;  // global send / recv piece indices
  for (int s = 1; s < np; ++s) {
    const int send_c = (me - s + 1 + 2 * np) % np;
    const int recv_c = (me - s + 2 * np) % np;
    const std::size_t sp = npieces(send_c), rp = npieces(recv_c);
    const std::size_t send_off = chunk_lo(send_c) * elsize;
    const std::size_t send_len = chunk_elems(send_c) * elsize;
    const std::size_t recv_off = chunk_lo(recv_c) * elsize;
    const std::size_t recv_len = chunk_elems(recv_c) * elsize;
    for (std::size_t p = 0; p < std::max(sp, rp); ++p) {
      if (p < sp) {
        std::size_t off = p * piece;
        std::size_t len = std::min(piece, send_len - off);
        tc.wait_flag(tc.aflag(right), tc.fv(gs + 1));  // peer half free
        tc.put_data(tc.ws() + (gs % 2) * half, d + send_off + off, len, right);
        tc.put_flag(tc.dflag(me), tc.fv(gs + 1), right);
        ++gs;
      }
      if (p < rp) {
        std::size_t off = p * piece;
        std::size_t len = std::min(piece, recv_len - off);
        tc.wait_flag(tc.dflag(left), tc.fv(gr + 1));
        combine(tc.ctx, d + recv_off + off, tc.ws() + (gr % 2) * half,
                len / elsize, op, st, gpu);
        if (gr + 2 < total_recv) {
          tc.put_flag(tc.aflag(me), tc.fv(gr + 3), left);
        }
        ++gr;
      }
    }
  }

  // Allgather ring: fully-reduced chunks travel once around, straight into
  // each dst (single writer per chunk per generation). The entry-ready pins
  // the right neighbor into this generation before its dst is written.
  tc.put_flag(tc.aflag(me), tc.fv(total_recv + 1), left);
  tc.wait_flag(tc.aflag(right), tc.fv(total_send + 1));
  for (int s = 1; s < np; ++s) {
    const int sc = (me + 2 - s + 2 * np) % np;
    const int rc = (me + 1 - s + 2 * np) % np;
    tc.put_data(d + chunk_lo(sc) * elsize, d + chunk_lo(sc) * elsize,
                chunk_elems(sc) * elsize, right);
    tc.put_flag(tc.dflag(me), tc.fv(total_send + 1 + static_cast<std::size_t>(s)),
                right);
    tc.wait_flag(tc.dflag(left),
                 tc.fv(total_recv + 1 + static_cast<std::size_t>(s)));
  }
}

// ---- fcollect -------------------------------------------------------------

void linear_fcollect(TeamCtx& tc, void* dst, const void* src,
                     std::size_t nbytes) {
  dissemination_sync(tc);  // pin every member into this generation
  auto* d = static_cast<std::byte*>(dst);
  local_copy(tc.ctx, d + static_cast<std::size_t>(tc.me) * nbytes, src, nbytes);
  for (int i = 1; i < tc.np; ++i) {
    int peer = (tc.me + i) % tc.np;
    tc.ctx.putmem(d + static_cast<std::size_t>(tc.me) * nbytes, src, nbytes,
                  tc.world(peer));
  }
  tc.ctx.quiet();
  for (int i = 1; i < tc.np; ++i) {
    tc.put_flag(tc.dflag(tc.me), tc.fv(1), (tc.me + i) % tc.np);
  }
  for (int i = 0; i < tc.np; ++i) {
    if (i != tc.me) tc.wait_flag(tc.dflag(i), tc.fv(1));
  }
}

/// Bruck's concatenation doubling through the workspace: log2(np) steps,
/// then a two-piece unrotate into dst. Per-step readies posted at entry
/// gate workspace reuse across generations.
void bruck_fcollect(TeamCtx& tc, void* dst, const void* src,
                    std::size_t nbytes) {
  const int np = tc.np, me = tc.me;
  auto* d = static_cast<std::byte*>(dst);
  // Announce readiness for every step to the PE that sends to me in it.
  {
    int cnt = 1, k = 0;
    while (cnt < np) {
      int from = (me + cnt) % np;
      tc.put_flag(tc.aflag(me), tc.fv(static_cast<std::uint64_t>(k) + 1), from);
      cnt += std::min(cnt, np - cnt);
      ++k;
    }
  }
  local_copy(tc.ctx, tc.ws(), src, nbytes);
  int cnt = 1, k = 0;
  while (cnt < np) {
    const int s = std::min(cnt, np - cnt);
    const int to = (me - cnt + np) % np;
    const int from = (me + cnt) % np;
    const std::uint64_t v = tc.fv(static_cast<std::uint64_t>(k) + 1);
    tc.wait_flag(tc.aflag(to), v);
    tc.put_data(tc.ws() + static_cast<std::size_t>(cnt) * nbytes, tc.ws(),
                static_cast<std::size_t>(s) * nbytes, to);
    tc.put_flag(tc.dflag(me), v, to);
    tc.wait_flag(tc.dflag(from), v);
    cnt += s;
    ++k;
  }
  // ws holds blocks me..me+np-1 (mod np); unrotate into dst.
  const std::size_t tail = static_cast<std::size_t>(np - me) * nbytes;
  local_copy(tc.ctx, d + static_cast<std::size_t>(me) * nbytes, tc.ws(), tail);
  if (me > 0) {
    local_copy(tc.ctx, d, tc.ws() + tail, static_cast<std::size_t>(me) * nbytes);
  }
}

/// Blocks travel once around the ring, each PE forwarding out of its dst.
void ring_fcollect(TeamCtx& tc, void* dst, const void* src,
                   std::size_t nbytes) {
  const int np = tc.np, me = tc.me;
  const int right = (me + 1) % np;
  const int left = (me + np - 1) % np;
  auto* d = static_cast<std::byte*>(dst);
  tc.put_flag(tc.aflag(me), tc.fv(1), left);  // my dst is writable this gen
  local_copy(tc.ctx, d + static_cast<std::size_t>(me) * nbytes, src, nbytes);
  tc.wait_flag(tc.aflag(right), tc.fv(1));
  for (int s = 1; s < np; ++s) {
    const int b = (me - s + 1 + np) % np;
    tc.put_data(d + static_cast<std::size_t>(b) * nbytes,
                d + static_cast<std::size_t>(b) * nbytes, nbytes, right);
    tc.put_flag(tc.dflag(me), tc.fv(static_cast<std::uint64_t>(s)), right);
    tc.wait_flag(tc.dflag(left), tc.fv(static_cast<std::uint64_t>(s)));
  }
}

// ---- alltoall -------------------------------------------------------------

void linear_alltoall(TeamCtx& tc, void* dst, const void* src,
                     std::size_t nbytes) {
  dissemination_sync(tc);
  auto* d = static_cast<std::byte*>(dst);
  auto* s = static_cast<const std::byte*>(src);
  local_copy(tc.ctx, d + static_cast<std::size_t>(tc.me) * nbytes,
             s + static_cast<std::size_t>(tc.me) * nbytes, nbytes);
  for (int i = 1; i < tc.np; ++i) {
    int peer = (tc.me + i) % tc.np;
    tc.ctx.putmem(d + static_cast<std::size_t>(tc.me) * nbytes,
                  s + static_cast<std::size_t>(peer) * nbytes, nbytes,
                  tc.world(peer));
  }
  tc.ctx.quiet();
  for (int i = 1; i < tc.np; ++i) {
    tc.put_flag(tc.dflag(tc.me), tc.fv(1), (tc.me + i) % tc.np);
  }
  for (int i = 0; i < tc.np; ++i) {
    if (i != tc.me) tc.wait_flag(tc.dflag(i), tc.fv(1));
  }
}

/// Round-structured pairwise exchange: round i pairs me with me±i, spreading
/// the np^2 transfers evenly instead of blasting them all at once.
void pairwise_alltoall(TeamCtx& tc, void* dst, const void* src,
                       std::size_t nbytes) {
  dissemination_sync(tc);
  auto* d = static_cast<std::byte*>(dst);
  auto* s = static_cast<const std::byte*>(src);
  local_copy(tc.ctx, d + static_cast<std::size_t>(tc.me) * nbytes,
             s + static_cast<std::size_t>(tc.me) * nbytes, nbytes);
  for (int i = 1; i < tc.np; ++i) {
    const int to = (tc.me + i) % tc.np;
    const int from = (tc.me - i + tc.np) % tc.np;
    tc.put_data(d + static_cast<std::size_t>(tc.me) * nbytes,
                s + static_cast<std::size_t>(to) * nbytes, nbytes, to);
    tc.put_flag(tc.dflag(tc.me), tc.fv(static_cast<std::uint64_t>(i)), to);
    tc.wait_flag(tc.dflag(from), tc.fv(static_cast<std::uint64_t>(i)));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine entry points

void sync(Ctx& ctx, Team& team) {
  sim::Time t0 = ctx.now();
  TeamCtx tc(ctx, team);
  CollAlgo algo = select(ctx.runtime().tuning(), tc.lay, CollKind::kBarrier,
                         tc.np, 0, false);
  if (tc.np > 1) {
    tc.gen = team.next_gen();
    if (algo == CollAlgo::kLinear) {
      linear_barrier(tc);
    } else {
      dissemination_sync(tc);
    }
  }
  ctx.record_collective(CollKind::kBarrier, algo, 0, t0);
}

void broadcast(Ctx& ctx, Team& team, void* dst, const void* src,
               std::size_t nbytes, int root) {
  if (root < 0 || root >= team.n_pes()) {
    throw ShmemError("broadcast root out of range for the team");
  }
  sim::Time t0 = ctx.now();
  TeamCtx tc(ctx, team);
  bool gpu = in_gpu_domain(ctx, dst);
  CollAlgo algo = select(ctx.runtime().tuning(), tc.lay, CollKind::kBroadcast,
                         tc.np, nbytes, gpu);
  if (tc.np > 1 && nbytes > 0) {
    tc.gen = team.next_gen();
    switch (algo) {
      case CollAlgo::kLinear: linear_bcast(tc, dst, src, nbytes, root); break;
      case CollAlgo::kRing: ring_bcast(tc, dst, src, nbytes, root); break;
      default: binomial_bcast(tc, dst, src, nbytes, root, 1); break;
    }
  }
  ctx.record_collective(CollKind::kBroadcast, algo, nbytes, t0);
}

void allreduce(Ctx& ctx, Team& team, void* dst, const void* src,
               std::size_t nelems, ReduceOp op, ScalarType type) {
  sim::Time t0 = ctx.now();
  TeamCtx tc(ctx, team);
  const std::size_t nbytes = nelems * scalar_size(type);
  bool gpu = in_gpu_domain(ctx, dst);
  CollAlgo algo = select(ctx.runtime().tuning(), tc.lay, CollKind::kAllreduce,
                         tc.np, nbytes, gpu);
  if (tc.np <= 1 || nelems == 0) {
    local_copy(ctx, dst, src, nbytes);
  } else {
    tc.gen = team.next_gen();
    switch (algo) {
      case CollAlgo::kLinear:
        linear_allreduce(tc, dst, src, nelems, op, type, gpu);
        break;
      case CollAlgo::kRing:
        ring_allreduce(tc, dst, src, nelems, op, type, gpu);
        break;
      default:
        recdbl_allreduce(tc, dst, src, nelems, op, type, gpu);
        break;
    }
  }
  ctx.record_collective(CollKind::kAllreduce, algo, nbytes, t0);
}

void fcollect(Ctx& ctx, Team& team, void* dst, const void* src,
              std::size_t nbytes) {
  sim::Time t0 = ctx.now();
  TeamCtx tc(ctx, team);
  bool gpu = in_gpu_domain(ctx, dst);
  CollAlgo algo = select(ctx.runtime().tuning(), tc.lay, CollKind::kFcollect,
                         tc.np, nbytes, gpu);
  if (tc.np <= 1 || nbytes == 0) {
    local_copy(ctx, dst, src, nbytes);
  } else {
    tc.gen = team.next_gen();
    switch (algo) {
      case CollAlgo::kBruck: bruck_fcollect(tc, dst, src, nbytes); break;
      case CollAlgo::kRing: ring_fcollect(tc, dst, src, nbytes); break;
      default: linear_fcollect(tc, dst, src, nbytes); break;
    }
  }
  ctx.record_collective(CollKind::kFcollect, algo, nbytes, t0);
}

void alltoall(Ctx& ctx, Team& team, void* dst, const void* src,
              std::size_t nbytes) {
  sim::Time t0 = ctx.now();
  TeamCtx tc(ctx, team);
  bool gpu = in_gpu_domain(ctx, dst);
  CollAlgo algo = select(ctx.runtime().tuning(), tc.lay, CollKind::kAlltoall,
                         tc.np, nbytes, gpu);
  if (tc.np <= 1 || nbytes == 0) {
    local_copy(ctx, static_cast<std::byte*>(dst),
               static_cast<const std::byte*>(src), nbytes);
  } else {
    tc.gen = team.next_gen();
    if (algo == CollAlgo::kPairwise) {
      pairwise_alltoall(tc, dst, src, nbytes);
    } else {
      linear_alltoall(tc, dst, src, nbytes);
    }
  }
  ctx.record_collective(CollKind::kAlltoall, algo, nbytes, t0);
}

}  // namespace gdrshmem::core::coll
