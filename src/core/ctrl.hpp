// Control messages exchanged between PEs and proxy daemons over IB send.
//
// Messages that require *work* at the receiver (copies, staging) are posted
// into the receiver's mailbox and serviced inside its progress engine —
// charging the receiver's time, which is exactly the target involvement the
// paper's baseline suffers from. Pure bookkeeping (ACKs, CTS flags) fires
// shared state directly, like a CQ entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace gdrshmem::core {

struct CtrlMsg {
  enum class Kind {
    kEagerData,      // baseline small put: payload parked in an eager slot
    kEagerGetReq,    // baseline small get: please eager-send me this range
    kRendezvousRts,  // baseline large transfer: request to send
    kRendezvousChunk,// baseline: one pipeline chunk has landed in staging
    kRendezvousFin,  // baseline: all chunks posted
    kRendezvousGetReq,  // baseline large get: please rendezvous-send me this
    kProxyGet,       // enhanced: proxy, reverse-pipeline this device range
    kProxyPutReq,    // enhanced: proxy, I will stream into your staging
    kProxyPutFin,    // enhanced: streaming done, do the final H2D hop
    kDeviceCmd,      // device-initiated: reverse-offload command descriptor
  };

  Kind kind{};
  int from = -1;           // sending endpoint id
  void* local = nullptr;   // sender-side buffer involved (if any)
  void* remote = nullptr;  // receiver-side buffer involved (if any)
  std::size_t bytes = 0;
  std::size_t offset = 0;  // chunk offset for kRendezvousChunk
  /// True when this message answers a get request (the receiver is the
  /// original requester and completes locally instead of ACKing back).
  bool is_reply = false;
  /// Per-transfer shared state (cast by the protocol that created it);
  /// carrying the pointer models the 8-byte cookie real protocols embed.
  std::shared_ptr<void> state;
};

}  // namespace gdrshmem::core
